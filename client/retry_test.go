package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// recordSleeps replaces the client's clock so tests assert exact backoff
// durations without ever actually sleeping.
func recordSleeps(c *Client) *[]time.Duration {
	rec := &[]time.Duration{}
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		*rec = append(*rec, d)
		return nil
	}
	return rec
}

func TestDelayExponentialWithEqualJitter(t *testing.T) {
	c := New("http://unused", WithRetries(3, 100*time.Millisecond))
	c.jitter = func() float64 { return 0 }
	// Equal jitter: half the exponential base is deterministic, half random.
	if d := c.delay(0, nil); d != 50*time.Millisecond {
		t.Errorf("attempt 0, jitter 0: %v, want 50ms", d)
	}
	if d := c.delay(1, nil); d != 100*time.Millisecond {
		t.Errorf("attempt 1, jitter 0: %v, want 100ms", d)
	}
	c.jitter = func() float64 { return 0.5 }
	if d := c.delay(0, nil); d != 75*time.Millisecond {
		t.Errorf("attempt 0, jitter 0.5: %v, want 75ms", d)
	}
	if d := c.delay(2, nil); d != 300*time.Millisecond {
		t.Errorf("attempt 2, jitter 0.5: %v, want 300ms", d)
	}
	// The full jitter range stays within [base/2, base).
	c.jitter = func() float64 { return 0.999999 }
	if d := c.delay(0, nil); d < 50*time.Millisecond || d >= 100*time.Millisecond {
		t.Errorf("attempt 0, jitter ~1: %v escapes [50ms, 100ms)", d)
	}
}

func TestDelayHonorsRetryAfter(t *testing.T) {
	c := New("http://unused", WithRetries(2, 100*time.Millisecond))
	c.jitter = func() float64 { return 0.5 }
	hint := &APIError{StatusCode: 503, Code: "queue_full", RetryAfter: 700 * time.Millisecond}
	// The server hint dominates the exponential schedule (plus the random
	// half, so hinted clients still spread out).
	if d := c.delay(0, hint); d != 725*time.Millisecond {
		t.Errorf("hinted delay %v, want 725ms", d)
	}
	// Wrapped errors still surface the hint.
	if d := c.delay(0, fmt.Errorf("submit: %w", hint)); d != 725*time.Millisecond {
		t.Errorf("wrapped hinted delay %v, want 725ms", d)
	}
	// A hint below the exponential schedule does not shorten it.
	small := &APIError{StatusCode: 503, RetryAfter: 10 * time.Millisecond}
	if d := c.delay(0, small); d != 75*time.Millisecond {
		t.Errorf("small hint delay %v, want 75ms", d)
	}
}

func TestSubmitRetriesQueueFullWithServerHint(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"queue full","code":"queue_full","queue_depth":4,"retry_after_ms":250}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-000001","status":"queued"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(3, 100*time.Millisecond))
	c.jitter = func() float64 { return 0 }
	slept := recordSleeps(c)
	st, err := c.Submit(context.Background(), JobRequest{QASM: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-000001" || attempts != 3 {
		t.Errorf("id %q after %d attempts, want job-000001 after 3", st.ID, attempts)
	}
	// retry_after_ms (250ms) dominates the 50ms/100ms exponential schedule.
	want := []time.Duration{250 * time.Millisecond, 250 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Errorf("slept %v, want %v", *slept, want)
	}
}

func TestAPIErrorCarriesBackpressureFields(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"queue full","code":"queue_full","queue_depth":7,"retry_after_ms":1500}`)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(0, time.Millisecond))
	recordSleeps(c)
	_, err := c.Submit(context.Background(), JobRequest{QASM: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %T %v, want *APIError", err, err)
	}
	if apiErr.RetryAfter != 1500*time.Millisecond || apiErr.QueueDepth != 7 {
		t.Errorf("RetryAfter %v QueueDepth %d, want 1.5s / 7", apiErr.RetryAfter, apiErr.QueueDepth)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Error("queue_full code does not unwrap to ErrQueueFull")
	}
}

func TestAPIErrorRetryAfterHeaderFallback(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining","code":"shutdown"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(0, time.Millisecond))
	_, err := c.Submit(context.Background(), JobRequest{QASM: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %T, want *APIError", err)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter %v, want 2s (from header)", apiErr.RetryAfter)
	}
}
