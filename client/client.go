// Package client is the typed Go client for the simd simulation service
// (cmd/simd, internal/serve): job submission, polling, cancellation, result
// and stats retrieval, and live consumption of the per-job Server-Sent
// Events stream — with context plumbing throughout and bounded retries for
// transient failures.
//
// Minimal round trip:
//
//	cl := client.New("http://localhost:8555")
//	st, err := cl.Submit(ctx, client.JobRequest{QASM: src, Strategy: "memory",
//		Threshold: 1 << 12, RoundFidelity: 0.99})
//	...
//	final, err := cl.Wait(ctx, st.ID, 0)       // poll until terminal
//	res, err := cl.Result(ctx, st.ID)          // typed payload
//
// Or stream the simulation's mid-run events instead of polling:
//
//	final, err := cl.Stream(ctx, st.ID, func(e client.Event) error {
//		if e.Type == client.EventApproximation {
//			log.Printf("round at gate %d: %d -> %d nodes",
//				e.GateIndex, e.Round.SizeBefore, e.Round.SizeAfter)
//		}
//		return nil
//	})
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/serve"
)

// Wire types re-exported from the service so callers need only this package.
type (
	// JobRequest is the POST /v1/jobs submission body.
	JobRequest = serve.JobRequest
	// GateSpec is one gate of an inline circuit submission.
	GateSpec = serve.GateSpec
	// JobStatus is the per-job API envelope.
	JobStatus = serve.JobStatus
	// ResultPayload is the payload of a finished job.
	ResultPayload = serve.ResultPayload
	// Stats is the GET /v1/stats body.
	Stats = serve.Stats
	// PoolState is the worker-pool snapshot in Stats, including per-worker
	// utilization and arena occupancy.
	PoolState = batch.PoolState
	// PoolWorkerState is one worker's entry in PoolState.PerWorker.
	PoolWorkerState = batch.PoolWorkerState
	// ReorderStats aggregates variable-reordering activity in Stats.
	ReorderStats = serve.ReorderStats
	// Event is one entry of a job's event stream.
	Event = serve.Event
)

// Event types streamed by GET /v1/jobs/{id}/events.
const (
	EventGate          = serve.EventGate
	EventApproximation = serve.EventApproximation
	EventCleanup       = serve.EventCleanup
	EventReorder       = serve.EventReorder
	EventChannel       = serve.EventChannel
	EventFinish        = serve.EventFinish
	EventStatus        = serve.EventStatus
)

// Terminal job statuses (JobStatus.Status).
const (
	StatusQueued   = serve.StatusQueued
	StatusRunning  = serve.StatusRunning
	StatusDone     = serve.StatusDone
	StatusFailed   = serve.StatusFailed
	StatusCanceled = serve.StatusCanceled
	StatusDeadline = serve.StatusDeadline
)

// Typed service errors, shared with the batch engine end to end: the
// service tags rejections with a machine-readable code, and APIError maps
// the code back so errors.Is(err, client.ErrQueueFull) works against the
// same sentinel values the in-process pool returns.
var (
	// ErrQueueFull: the submission queue was full (HTTP 503, load shed) —
	// retry after a backoff.
	ErrQueueFull = batch.ErrQueueFull
	// ErrShutdown: the service stopped accepting jobs.
	ErrShutdown = batch.ErrShutdown
	// ErrCanceled: the job was canceled.
	ErrCanceled = batch.ErrCanceled
)

// APIError is a non-2xx response decoded from the service's error envelope.
type APIError struct {
	StatusCode int
	Message    string
	// Code is the service's machine-readable error code ("queue_full",
	// "shutdown", "canceled", and from the router "no_backend",
	// "backend_down"), empty for untyped errors.
	Code string
	// RetryAfter is the server's backpressure hint (from the envelope's
	// retry_after_ms, falling back to the Retry-After header), zero when the
	// server offered none. Retrying clients wait at least this long.
	RetryAfter time.Duration
	// QueueDepth is the rejecting backend's queue depth at rejection time
	// (queue-full envelopes only, 0 otherwise).
	QueueDepth int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("simd: HTTP %d: %s", e.StatusCode, e.Message)
}

// Unwrap maps the error code to its typed sentinel, making APIError
// errors.Is-able against ErrQueueFull, ErrShutdown, and ErrCanceled.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case serve.CodeQueueFull:
		return ErrQueueFull
	case serve.CodeShutdown:
		return ErrShutdown
	case serve.CodeCanceled:
		return ErrCanceled
	}
	return nil
}

// Temporary reports whether retrying the same request can succeed (queue
// full, shutting down, gateway hiccups).
func (e *APIError) Temporary() bool {
	return e.StatusCode == http.StatusServiceUnavailable || e.StatusCode >= 502
}

// Client is a typed HTTP client for one simd base URL. It is safe for
// concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration

	// jitter returns a uniform sample in [0, 1); sleepFn blocks for d or
	// until ctx is done. Both are swapped out by tests for a fake clock.
	jitter  func() float64
	sleepFn func(ctx context.Context, d time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom transport,
// timeouts, instrumentation). The default client has no global timeout —
// deadlines come from the per-call contexts.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times transient failures (connection errors,
// 502/503/504) are retried and the base backoff between attempts. The actual
// wait doubles per retry with equal jitter, and waits at least as long as
// any server Retry-After hint. The default is 2 retries, 100 ms.
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = n, backoff }
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8555"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{},
		retries: 2,
		backoff: 100 * time.Millisecond,
		jitter:  rand.Float64,
		sleepFn: func(ctx context.Context, d time.Duration) error {
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-time.After(d):
				return nil
			}
		},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Submit posts a job. The returned status is either "queued" (HTTP 202) or,
// for content-cache hits, "done" with Cached set (HTTP 200). Queue-full
// rejections (503) are retried with backoff before giving up — submission is
// content-addressed on the server, so a retry can only land the same job.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding submission: %w", err)
	}
	var st JobStatus
	if err := c.call(ctx, http.MethodPost, "/v1/jobs", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current envelope (result attached once done).
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.call(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches the typed result payload of a finished job. Unfinished or
// non-done jobs surface as an *APIError with status 409.
func (c *Client) Result(ctx context.Context, id string) (*ResultPayload, error) {
	var res ResultPayload
	if err := c.call(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel requests cancellation and returns the job's current (possibly still
// running) status; poll or Wait for the terminal state.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.call(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stats fetches the service's cache/pool/DD counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.call(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state or ctx expires. poll ≤ 0
// selects 50 ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case StatusQueued, StatusRunning:
		default:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-t.C:
		}
	}
}

// Stream consumes the job's Server-Sent Events: fn is called for every event
// in order, including the terminal status event, after which Stream fetches
// and returns the job's final envelope. A non-nil error from fn aborts the
// stream and is returned. Dropped connections resume transparently from the
// last seen event (bounded by the server's per-job buffer; a gap surfaces as
// Event.Dropped on the first event after it).
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) (*JobStatus, error) {
	cursor := int64(-1) // seq of the last event seen
	attempt := 0
	for {
		terminal, err := c.streamOnce(ctx, id, &cursor, fn)
		if terminal {
			return c.Status(ctx, id)
		}
		if err == nil {
			err = io.ErrUnexpectedEOF // stream ended without a terminal event
		}
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		var callerErr *callerAbort
		if errors.As(err, &callerErr) {
			return nil, callerErr.err
		}
		if !c.retryable(err) || attempt >= c.retries {
			return nil, err
		}
		if serr := c.sleep(ctx, attempt, err); serr != nil {
			return nil, serr
		}
		attempt++
	}
}

// callerAbort marks an error returned by the caller's event callback, which
// must not be retried.
type callerAbort struct{ err error }

func (e *callerAbort) Error() string { return e.err.Error() }

// streamOnce runs one SSE connection. It advances *cursor past every
// delivered event and reports whether the terminal status event was seen.
func (c *Client) streamOnce(ctx context.Context, id string, cursor *int64, fn func(Event) error) (bool, error) {
	url := c.base + "/v1/jobs/" + id + "/events"
	if *cursor >= 0 {
		url += "?from=" + strconv.FormatInt(*cursor+1, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			return false, fmt.Errorf("client: malformed event: %w", err)
		}
		*cursor = e.Seq
		if err := fn(e); err != nil {
			return false, &callerAbort{err}
		}
		if e.Type == EventStatus {
			return true, nil
		}
	}
	return false, sc.Err()
}

// call performs one JSON request/response cycle with retries for transient
// failures. GETs and DELETEs are idempotent; POST /v1/jobs is retried only
// on temporary API errors (the connection-error case could have submitted,
// but resubmission is content-addressed and therefore safe).
func (c *Client) call(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		lastErr = c.doJSON(req, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil || !c.retryable(lastErr) || attempt >= c.retries {
			return lastErr
		}
		if err := c.sleep(ctx, attempt, lastErr); err != nil {
			return err
		}
	}
}

func (c *Client) doJSON(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", req.Method, req.URL.Path, err)
	}
	return nil
}

func (c *Client) retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	// Everything else at this point is a transport-level failure.
	var abort *callerAbort
	return !errors.As(err, &abort)
}

// sleep backs off before retry number attempt. The base delay is exponential
// (backoff << attempt) with equal jitter — half deterministic, half uniform —
// so a fleet of clients rejected together does not retry together. When the
// failure carried a server Retry-After hint, the wait is at least that long
// (plus the random half, keeping the herd spread).
func (c *Client) sleep(ctx context.Context, attempt int, lastErr error) error {
	return c.sleepFn(ctx, c.delay(attempt, lastErr))
}

func (c *Client) delay(attempt int, lastErr error) time.Duration {
	base := c.backoff << attempt
	if base <= 0 {
		base = time.Millisecond
	}
	spread := time.Duration(c.jitter() * float64(base/2))
	d := base/2 + spread
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 && apiErr.RetryAfter+spread > d {
		d = apiErr.RetryAfter + spread
	}
	return d
}

func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env struct {
		Error        string `json:"error"`
		Status       string `json:"status"`
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
		QueueDepth   int    `json:"queue_depth"`
	}
	msg := strings.TrimSpace(string(raw))
	if err := json.Unmarshal(raw, &env); err == nil {
		switch {
		case env.Error != "" && env.Status != "":
			msg = env.Status + ": " + env.Error
		case env.Error != "":
			msg = env.Error
		case env.Status != "":
			msg = env.Status
		}
	}
	ra := time.Duration(env.RetryAfterMS) * time.Millisecond
	if ra == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
	}
	return &APIError{
		StatusCode: resp.StatusCode,
		Message:    msg,
		Code:       env.Code,
		RetryAfter: ra,
		QueueDepth: env.QueueDepth,
	}
}
