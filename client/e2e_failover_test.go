package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestE2ERouterFailoverCompletesAllAcceptedJobs is the cluster's crash drill:
// a router fronts two real backends, one backend is killed mid-load, and
// every request still reaches a terminal done state — submissions reroute to
// the survivor, jobs lost with the dead backend are resubmitted (content
// addressing makes that free of duplicate side effects), and the router's
// stats record the mark-down. Runs under -race with the rest of the suite.
func TestE2ERouterFailoverCompletesAllAcceptedJobs(t *testing.T) {
	backends := startKillableBackends(t, 2)
	rt, err := cluster.New(cluster.Config{
		Backends:      []string{backends[0].hs.URL, backends[1].hs.URL},
		ProbeInterval: 15 * time.Millisecond,
		MarkDownAfter: 2,
		MarkUpAfter:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	routerHS := httptest.NewServer(rt.Handler())
	defer routerHS.Close()
	cl := New(routerHS.URL, WithRetries(2, time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const n = 10
	reqs := make([]JobRequest, n)
	for i := range reqs {
		reqs[i] = JobRequest{QASM: clusterQASM, Shots: 16, Seed: int64(i + 1)}
	}

	// The first accepted job names the victim: its owner dies immediately,
	// so some jobs are guaranteed to be in flight against a dying backend.
	var killOnce sync.Once
	var victimMu sync.Mutex
	victim := ""
	killOwner := func(routedID string) {
		killOnce.Do(func() {
			name, _, _ := strings.Cut(routedID, ".")
			victimMu.Lock()
			victim = name
			victimMu.Unlock()
			for i, kb := range backends {
				if name == []string{"b0", "b1"}[i] {
					kb.kill()
				}
			}
		})
	}

	// run drives one request to a terminal state through the router,
	// resubmitting whenever the job's owner becomes unreachable (502) or is
	// marked down (503) — the client's jittered backoff honors the router's
	// Retry-After hints along the way.
	run := func(req JobRequest) (*JobStatus, error) {
		for {
			st, err := cl.Submit(ctx, req)
			if err != nil {
				if ctx.Err() != nil {
					return nil, err
				}
				time.Sleep(5 * time.Millisecond)
				continue
			}
			killOwner(st.ID)
			for {
				cur, err := cl.Status(ctx, st.ID)
				if err != nil {
					if ctx.Err() != nil {
						return nil, err
					}
					break // owner gone: resubmit from the top
				}
				switch cur.Status {
				case StatusQueued, StatusRunning:
					time.Sleep(5 * time.Millisecond)
				default:
					return cur, nil
				}
			}
		}
	}

	finals := make([]*JobStatus, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 3)
	for i := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			finals[i], errs[i] = run(reqs[i])
		}()
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d never completed: %v", i, errs[i])
		}
		if finals[i].Status != StatusDone {
			t.Fatalf("request %d ended %q: %s", i, finals[i].Status, finals[i].Error)
		}
	}

	// The prober records the crash: exactly one backend marked down.
	victimMu.Lock()
	deadName := victim
	victimMu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cs := rt.Stats(ctx)
		if cs.Down == 1 && cs.Up == 1 {
			for _, b := range cs.Backends {
				if b.Name == deadName && b.Up {
					t.Errorf("victim %s still reported up: %+v", deadName, b)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mark-down never reflected in stats: %+v", cs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// No duplicate side effects: once a request's result exists on the
	// survivor, resubmitting it answers from the cache instead of executing
	// again.
	for i, req := range reqs {
		st, err := run(req) // lands every result on the survivor
		if err != nil || st.Status != StatusDone {
			t.Fatalf("request %d resubmission: %v / %+v", i, err, st)
		}
		again, err := cl.Submit(ctx, req)
		if err != nil {
			t.Fatalf("request %d cached resubmission: %v", i, err)
		}
		if !again.Cached || again.Status != StatusDone {
			t.Errorf("request %d re-executed instead of hitting the cache: %+v", i, again)
		}
	}
}
