package client

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestReplaceStrategyTypedClient drives strategy=replace end to end through
// the typed client: submit, wait, and read the typed result including the
// replaced_nodes round field, then stream the SSE events and expect an
// approximation event carrying replacements.
func TestReplaceStrategyTypedClient(t *testing.T) {
	cl := newService(t, serve.Config{Workers: 1})
	ctx := t.Context()

	req := JobRequest{Name: "pairs-replace", Qubits: 12, Strategy: "replace",
		StrategyParams: json.RawMessage(`{"node_budget":24,"fidelity_floor":0.5,"kinds":["collapse","promote"]}`)}
	for i := 0; i < 6; i++ {
		req.Gates = append(req.Gates,
			GateSpec{Name: "h", Target: i},
			GateSpec{Name: "x", Target: i + 6, Controls: []int{i}})
	}

	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}
	res, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "replace" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
	replaced := 0
	for _, r := range res.Rounds {
		replaced += r.ReplacedNodes
	}
	if replaced == 0 {
		t.Fatalf("typed result carries no replaced nodes: %+v", res.Rounds)
	}
	if res.EstimatedFidelity < 0.5-1e-9 {
		t.Fatalf("estimated fidelity %v below the requested floor", res.EstimatedFidelity)
	}

	sawReplace := false
	if _, err := cl.Stream(ctx, st.ID, func(ev Event) error {
		if ev.Type == EventApproximation && ev.Round != nil && ev.Round.ReplacedNodes > 0 {
			sawReplace = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawReplace {
		t.Fatal("no SSE approximation event with replaced nodes reached the typed client")
	}
}
