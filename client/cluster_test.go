package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

const clusterQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`

// killableBackend is a real serve backend behind a kill switch: once killed,
// every new request's connection is aborted mid-flight, which a client sees
// as a transport failure — the same signature as a crashed process.
type killableBackend struct {
	hs     *httptest.Server
	srv    *serve.Server
	killed atomic.Bool
}

func (kb *killableBackend) kill() {
	kb.killed.Store(true)
	kb.hs.CloseClientConnections()
}

func startKillableBackends(t *testing.T, n int) []*killableBackend {
	t.Helper()
	var out []*killableBackend
	for i := 0; i < n; i++ {
		kb := &killableBackend{srv: serve.New(serve.Config{Workers: 1})}
		inner := kb.srv.Handler()
		kb.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if kb.killed.Load() {
				panic(http.ErrAbortHandler)
			}
			inner.ServeHTTP(w, r)
		}))
		out = append(out, kb)
		t.Cleanup(func() {
			kb.hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			kb.srv.Shutdown(ctx)
			cancel()
		})
	}
	return out
}

func newTestCluster(t *testing.T, backends []*killableBackend) *Cluster {
	t.Helper()
	urls := make([]string, len(backends))
	for i, kb := range backends {
		urls[i] = kb.hs.URL
	}
	cc, err := NewCluster(urls,
		WithCooldown(time.Minute),
		WithClientOptions(WithRetries(1, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	// Never actually sleep in tests.
	for _, cl := range cc.clients {
		cl.sleepFn = func(ctx context.Context, d time.Duration) error { return nil }
	}
	return cc
}

func TestClusterHashAffinityAndPrefixedIDs(t *testing.T) {
	backends := startKillableBackends(t, 3)
	cc := newTestCluster(t, backends)
	ctx := context.Background()

	req := JobRequest{QASM: clusterQASM, Shots: 8}
	job, err := cc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.ID(), job.Backend()+idSep) {
		t.Errorf("cluster id %q lacks backend prefix %q", job.ID(), job.Backend())
	}
	final, err := job.Wait(ctx, 0)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("wait: %v / %+v", err, final)
	}
	if !strings.HasPrefix(final.ID, job.Backend()+idSep) {
		t.Errorf("status id %q not cluster-scoped", final.ID)
	}
	if _, err := job.Result(ctx); err != nil {
		t.Fatalf("result: %v", err)
	}

	// The identical request pins to the same backend and hits its cache.
	for i := 0; i < 3; i++ {
		job2, err := cc.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if job2.Backend() != job.Backend() {
			t.Fatalf("resubmission %d routed to %q, first went to %q", i, job2.Backend(), job.Backend())
		}
		st, err := job2.Status(ctx)
		if err != nil || !st.Cached {
			t.Fatalf("resubmission %d missed the cache: %+v %v", i, st, err)
		}
	}
}

func TestClusterSubmitFailsOverToRingSuccessor(t *testing.T) {
	backends := startKillableBackends(t, 2)
	cc := newTestCluster(t, backends)
	ctx := context.Background()

	req := JobRequest{QASM: clusterQASM}
	job, err := cc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(ctx, 0); err != nil {
		t.Fatal(err)
	}
	primary := job.Backend()

	// Kill the primary; the same submission fails over to the survivor.
	for i, name := range cc.names {
		if name == primary {
			backends[i].kill()
		}
	}
	job2, err := cc.Submit(ctx, req)
	if err != nil {
		t.Fatalf("failover submit: %v", err)
	}
	if job2.Backend() == primary {
		t.Fatalf("submission still routed to dead backend %q", primary)
	}
	final, err := job2.Wait(ctx, 0)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("failover job: %v / %+v", err, final)
	}

	// The dead backend is now in cooldown: the next submission goes straight
	// to the survivor without a transport round-trip against the corpse.
	job3, err := cc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if job3.Backend() == primary {
		t.Errorf("cooldown ignored: submission routed to dead backend %q", primary)
	}
	st3, err := job3.Status(ctx)
	if err != nil || !st3.Cached {
		t.Errorf("survivor cache missed after failover: %+v %v", st3, err)
	}
}

func TestClusterStatusFailsOverWithResubmission(t *testing.T) {
	backends := startKillableBackends(t, 2)
	cc := newTestCluster(t, backends)
	ctx := context.Background()

	job, err := cc.Submit(ctx, JobRequest{QASM: clusterQASM})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(ctx, 0); err != nil {
		t.Fatal(err)
	}
	primary := job.Backend()
	for i, name := range cc.names {
		if name == primary {
			backends[i].kill()
		}
	}
	// Status against the dead owner resubmits elsewhere and answers from the
	// replacement job (recomputed — content addressing makes that safe).
	st, err := job.Status(ctx)
	if err != nil {
		t.Fatalf("status after owner death: %v", err)
	}
	if job.Backend() == primary {
		t.Errorf("handle still bound to dead backend %q", primary)
	}
	final, err := job.Wait(ctx, 0)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("post-failover wait: %v / %+v (first status %+v)", err, final, st)
	}
	if _, err := job.Result(ctx); err != nil {
		t.Fatalf("post-failover result: %v", err)
	}
}

func TestClusterStreamResumesOnFailoverTarget(t *testing.T) {
	backends := startKillableBackends(t, 2)
	cc := newTestCluster(t, backends)
	ctx := context.Background()

	// A wide inline circuit keeps the job running long enough that the kill
	// lands mid-stream.
	req := JobRequest{Qubits: 4, Shots: 4}
	for i := 0; i < 400; i++ {
		req.Gates = append(req.Gates, GateSpec{Name: "h", Target: i % 4})
	}
	job, err := cc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	primary := job.Backend()

	var events []Event
	var sawTerminal bool
	killOnce := sync.OnceFunc(func() {
		for i, name := range cc.names {
			if name == primary {
				backends[i].kill()
			}
		}
	})
	final, err := job.Stream(ctx, func(e Event) error {
		events = append(events, e)
		if e.Type == EventStatus {
			sawTerminal = true
		}
		killOnce()
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if final.Status != StatusDone {
		t.Fatalf("final status %q: %s", final.Status, final.Error)
	}
	if job.Backend() == primary {
		t.Errorf("stream finished against dead backend %q", primary)
	}
	if !sawTerminal {
		t.Error("terminal status event never delivered")
	}
	// Failover must not replay data events: sequence numbers of non-status
	// events are strictly increasing across the backend switch.
	last := int64(-1)
	for _, e := range events {
		if e.Type == EventStatus {
			continue
		}
		if e.Seq <= last {
			t.Fatalf("duplicate or reordered event seq %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
	if last < 0 {
		t.Error("no data events delivered at all")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewCluster([]string{"http://x"}, WithBackendNames([]string{"a", "b"})); err == nil {
		t.Error("name/backend length mismatch accepted")
	}
	if _, err := NewCluster([]string{"http://x"}, WithBackendNames([]string{"a.b"})); err == nil {
		t.Error("dotted name accepted")
	}
	if _, err := NewCluster([]string{"http://x", "http://y"}, WithBackendNames([]string{"a", "a"})); err == nil {
		t.Error("duplicate names accepted")
	}
}
