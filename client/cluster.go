package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// Cluster is a cluster-aware client that talks directly to N simd backends,
// routing each submission by its canonical circuit content hash over the same
// consistent-hash ring the simd-router uses — identical circuits always land
// on the backend whose result cache already holds them. When a backend stops
// answering, the Cluster marks it down for a cooldown and transparently fails
// over to the next backend on the ring; because submissions are
// content-addressed, failover simply resubmits the same request, so a lost
// job can only be recomputed, never duplicated.
//
//	cc, _ := client.NewCluster([]string{"http://n0:8555", "http://n1:8555"})
//	job, err := cc.Submit(ctx, client.JobRequest{QASM: src})
//	final, err := job.Wait(ctx, 0)
//
// A Cluster is safe for concurrent use.
type Cluster struct {
	names    []string
	clients  []*Client
	ring     *cluster.Ring
	cooldown time.Duration
	now      func() time.Time

	mu        sync.Mutex
	downUntil []time.Time
}

// ClusterOption configures NewCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	names      []string
	vnodes     int
	cooldown   time.Duration
	clientOpts []Option
}

// WithBackendNames sets the backend names used for ring placement and job-id
// prefixes (default b0, b1, ...). Use the same names as the simd-router so
// both route identically. Names must be unique and must not contain ".".
func WithBackendNames(names []string) ClusterOption {
	return func(c *clusterConfig) { c.names = names }
}

// WithVNodes sets the ring points per backend (default 64).
func WithVNodes(n int) ClusterOption {
	return func(c *clusterConfig) { c.vnodes = n }
}

// WithCooldown sets how long a backend stays marked down after a transport
// failure before the Cluster tries it again (default 5s).
func WithCooldown(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.cooldown = d }
}

// WithClientOptions applies per-backend Client options (retries, HTTP
// client) to every backend client the Cluster creates.
func WithClientOptions(opts ...Option) ClusterOption {
	return func(c *clusterConfig) { c.clientOpts = append(c.clientOpts, opts...) }
}

// NewCluster builds a cluster-aware client over the given backend base URLs.
func NewCluster(backends []string, opts ...ClusterOption) (*Cluster, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("client: cluster needs at least one backend")
	}
	cfg := clusterConfig{cooldown: 5 * time.Second}
	for _, opt := range opts {
		opt(&cfg)
	}
	names := cfg.names
	if len(names) == 0 {
		names = make([]string, len(backends))
		for i := range names {
			names[i] = fmt.Sprintf("b%d", i)
		}
	}
	if len(names) != len(backends) {
		return nil, fmt.Errorf("client: %d names for %d backends", len(names), len(backends))
	}
	for _, n := range names {
		if n == "" || strings.Contains(n, idSep) {
			return nil, fmt.Errorf("client: invalid backend name %q", n)
		}
	}
	ring, err := cluster.NewRing(names, cfg.vnodes)
	if err != nil {
		return nil, err
	}
	cc := &Cluster{
		names:     names,
		ring:      ring,
		cooldown:  cfg.cooldown,
		now:       time.Now,
		downUntil: make([]time.Time, len(backends)),
	}
	for _, b := range backends {
		cc.clients = append(cc.clients, New(b, cfg.clientOpts...))
	}
	return cc, nil
}

// idSep separates the backend-name prefix from the backend-local job id,
// matching the simd-router's scheme ("b0.job-000042").
const idSep = "."

// Backends returns the configured backend names in ring order for an
// arbitrary fixed key — primarily for diagnostics.
func (cc *Cluster) Backends() []string {
	out := make([]string, len(cc.names))
	copy(out, cc.names)
	return out
}

// Submit routes the request to its ring owner (failing over across the ring
// when backends are down) and returns a handle bound to the request, so
// every later operation can re-route if the owning backend dies.
func (cc *Cluster) Submit(ctx context.Context, req JobRequest) (*ClusterJob, error) {
	job := &ClusterJob{cc: cc, req: req}
	if _, err := job.place(ctx); err != nil {
		return nil, err
	}
	return job, nil
}

// order returns backend indexes to try for req: ring order with backends in
// cooldown moved to the back (still tried last-resort, so a fully-down
// cluster degrades to an error only after every backend refused).
func (cc *Cluster) order(req JobRequest) ([]int, error) {
	hash, err := serve.CanonicalHash(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	ringOrder := cc.ring.Order(cluster.Key(hash))
	now := cc.now()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	var up, down []int
	for _, i := range ringOrder {
		if cc.downUntil[i].After(now) {
			down = append(down, i)
		} else {
			up = append(up, i)
		}
	}
	return append(up, down...), nil
}

func (cc *Cluster) markDown(i int) {
	cc.mu.Lock()
	cc.downUntil[i] = cc.now().Add(cc.cooldown)
	cc.mu.Unlock()
}

func (cc *Cluster) markUp(i int) {
	cc.mu.Lock()
	cc.downUntil[i] = time.Time{}
	cc.mu.Unlock()
}

// ClusterJob is a job handle that survives backend failure: it remembers the
// original request, and any operation hitting a dead backend resubmits the
// request to the next ring candidate and carries on there.
type ClusterJob struct {
	cc  *Cluster
	req JobRequest

	mu      sync.Mutex
	backend int    // index into cc.clients
	localID string // backend-local job id
}

// ID returns the cluster-scoped job id, prefixed with the owning backend's
// name ("b1.job-000007"). The suffix changes if the job fails over.
func (j *ClusterJob) ID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cc.names[j.backend] + idSep + j.localID
}

// Backend returns the name of the backend currently owning the job.
func (j *ClusterJob) Backend() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cc.names[j.backend]
}

func (j *ClusterJob) current() (*Client, string, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cc.clients[j.backend], j.localID, j.backend
}

// place (re)submits the request along the ring order, binding the handle to
// the first backend that accepts. Transport failures mark the backend down
// and move on; API-level rejections (bad request, queue-full after the inner
// client's own Retry-After-honoring backoff) are the answer and propagate.
func (j *ClusterJob) place(ctx context.Context) (*JobStatus, error) {
	order, err := j.cc.order(j.req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for _, idx := range order {
		st, err := j.cc.clients[idx].Submit(ctx, j.req)
		if err == nil {
			j.cc.markUp(idx)
			j.mu.Lock()
			j.backend, j.localID = idx, st.ID
			j.mu.Unlock()
			return j.decorate(st), nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			// The backend answered: that answer is authoritative for this
			// content hash — reshuffling it elsewhere would defeat affinity.
			return nil, err
		}
		j.cc.markDown(idx)
	}
	return nil, fmt.Errorf("client: no backend accepted the submission: %w", lastErr)
}

// failoverable reports whether err means "this backend is gone" (transport
// failure after the inner client's retries) rather than an API answer.
func (j *ClusterJob) failoverable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var apiErr *APIError
	return !errors.As(err, &apiErr)
}

// failover marks the current backend down and re-places the job elsewhere.
func (j *ClusterJob) failover(ctx context.Context) error {
	_, _, idx := j.current()
	j.cc.markDown(idx)
	_, err := j.place(ctx)
	return err
}

// decorate rewrites a backend-local status to carry the cluster-scoped id.
func (j *ClusterJob) decorate(st *JobStatus) *JobStatus {
	if st == nil {
		return nil
	}
	out := *st
	out.ID = j.Backend() + idSep + out.ID
	return &out
}

// Status fetches the job's current envelope, failing over (with
// resubmission) if the owning backend died.
func (j *ClusterJob) Status(ctx context.Context) (*JobStatus, error) {
	for hop := 0; ; hop++ {
		cl, id, _ := j.current()
		st, err := cl.Status(ctx, id)
		if err == nil {
			return j.decorate(st), nil
		}
		if !j.failoverable(ctx, err) || hop >= len(j.cc.clients) {
			return nil, err
		}
		if ferr := j.failover(ctx); ferr != nil {
			return nil, err
		}
	}
}

// Wait polls until the job reaches a terminal state, following failovers.
// poll <= 0 selects 50 ms.
func (j *ClusterJob) Wait(ctx context.Context, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := j.Status(ctx)
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case StatusQueued, StatusRunning:
		default:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-t.C:
		}
	}
}

// Result waits for the job to finish and fetches its payload, failing over
// (with resubmission and recomputation) if the owning backend died.
func (j *ClusterJob) Result(ctx context.Context) (*ResultPayload, error) {
	for hop := 0; ; hop++ {
		st, err := j.Wait(ctx, 0)
		if err != nil {
			return nil, err
		}
		if st.Status != StatusDone {
			return nil, fmt.Errorf("client: job %s ended %s: %s", st.ID, st.Status, st.Error)
		}
		cl, id, _ := j.current()
		res, err := cl.Result(ctx, id)
		if err == nil {
			return res, nil
		}
		if !j.failoverable(ctx, err) || hop >= len(j.cc.clients) {
			return nil, err
		}
		if ferr := j.failover(ctx); ferr != nil {
			return nil, err
		}
	}
}

// Cancel requests cancellation on the owning backend. No failover: if the
// backend is gone, so is the running job.
func (j *ClusterJob) Cancel(ctx context.Context) (*JobStatus, error) {
	cl, id, _ := j.current()
	st, err := cl.Cancel(ctx, id)
	if err != nil {
		return nil, err
	}
	return j.decorate(st), nil
}

// Stream consumes the job's Server-Sent Events like Client.Stream, but
// resumes against the next ring backend when the owning backend dies
// mid-stream: the request is resubmitted there and the stream continues.
// Because the replacement job re-executes from the start, already-delivered
// data events are suppressed by sequence number; the terminal status event is
// always delivered. fn errors abort the stream and are returned verbatim.
func (j *ClusterJob) Stream(ctx context.Context, fn func(Event) error) (*JobStatus, error) {
	seen := int64(-1) // highest data-event seq delivered to fn
	wfn := func(e Event) error {
		if e.Type != EventStatus && e.Seq <= seen {
			return nil // duplicate from a post-failover re-execution
		}
		if e.Seq > seen {
			seen = e.Seq
		}
		return fn(e)
	}
	cursor := int64(-1) // same-connection resume cursor (?from=), per backend
	attempt, strikes := 0, 0
	for {
		cl, id, _ := j.current()
		terminal, err := cl.streamOnce(ctx, id, &cursor, wfn)
		if terminal {
			return j.Status(ctx)
		}
		if err == nil {
			err = fmt.Errorf("client: stream for %s ended without a terminal event", j.ID())
		}
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		var abort *callerAbort
		if errors.As(err, &abort) {
			return nil, abort.err
		}
		if attempt >= 2*len(j.cc.clients)+cl.retries {
			return nil, err
		}
		attempt++
		if j.failoverable(ctx, err) {
			// One transient drop resumes in place (?from= cursor); a second
			// consecutive transport failure writes the backend off.
			strikes++
			if strikes >= 2 {
				strikes = 0
				if ferr := j.failover(ctx); ferr != nil {
					return nil, err
				}
				cursor = -1 // fresh job on the new backend: new sequence space
				continue
			}
		} else if !cl.retryable(err) {
			return nil, err
		} else {
			strikes = 0
		}
		if serr := cl.sleep(ctx, attempt-1, err); serr != nil {
			return nil, serr
		}
	}
}
