package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/serve"
)

const bellQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`

// slowRequest is a circuit slow enough to still be running when the test
// inspects or cancels it (a dense random Clifford+T register builds a large
// DD and the simulator checks cancellation between gates).
func slowRequest(name string) JobRequest {
	c := gen.RandomCliffordT(14, 50000, 1)
	req := JobRequest{Name: name, Qubits: c.NumQubits}
	for _, g := range c.Gates() {
		gs := GateSpec{Name: g.Name, Params: g.Params, Target: g.Target}
		for _, ctl := range g.Controls {
			if ctl.Positive {
				gs.Controls = append(gs.Controls, ctl.Qubit)
			} else {
				gs.NegControls = append(gs.NegControls, ctl.Qubit)
			}
		}
		req.Gates = append(req.Gates, gs)
	}
	return req
}

func newService(t *testing.T, cfg serve.Config) *Client {
	t.Helper()
	s := serve.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return New(hs.URL)
}

func TestSubmitWaitResultRoundTrip(t *testing.T) {
	cl := newService(t, serve.Config{Workers: 1})
	ctx := t.Context()
	st, err := cl.Submit(ctx, JobRequest{Name: "ghz3", QASM: bellQASM, Shots: 32})
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}
	res, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQubits != 3 || res.GateCount != 3 {
		t.Errorf("result shape: %+v", res)
	}
	shots := 0
	for _, n := range res.Samples {
		shots += n
	}
	if shots != 32 {
		t.Errorf("samples total %d, want 32", shots)
	}

	// An identical submission answers from the cache with status done.
	st2, err := cl.Submit(ctx, JobRequest{Name: "ghz3", QASM: bellQASM, Shots: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.Status != StatusDone {
		t.Errorf("repeat submission: cached=%v status=%q", st2.Cached, st2.Status)
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits != 1 {
		t.Errorf("cache hits %d, want 1", stats.Cache.Hits)
	}
}

func TestStreamDeliversEventsAndTerminalStatus(t *testing.T) {
	cl := newService(t, serve.Config{Workers: 1, EventBufferSize: 4096})
	ctx := t.Context()
	st, err := cl.Submit(ctx, JobRequest{Name: "stream", QASM: bellQASM})
	if err != nil {
		t.Fatal(err)
	}
	var gates, finishes int
	var terminal Event
	final, err := cl.Stream(ctx, st.ID, func(e Event) error {
		switch e.Type {
		case EventGate:
			gates++
		case EventFinish:
			finishes++
		case EventStatus:
			terminal = e
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gates != 3 || finishes != 1 {
		t.Errorf("stream events: %d gates, %d finishes", gates, finishes)
	}
	if terminal.Status != StatusDone || final.Status != StatusDone {
		t.Errorf("terminal %q, final %q", terminal.Status, final.Status)
	}
	if final.Result == nil {
		t.Error("final envelope missing result")
	}
}

func TestStreamCallbackAbort(t *testing.T) {
	cl := newService(t, serve.Config{Workers: 1})
	ctx := t.Context()
	st, err := cl.Submit(ctx, JobRequest{QASM: bellQASM})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("enough")
	_, err = cl.Stream(ctx, st.ID, func(e Event) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("callback abort surfaced as %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	cl := newService(t, serve.Config{Workers: 1, QueueDepth: 8})
	ctx := t.Context()
	first, err := cl.Submit(ctx, slowRequest("holder"))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(ctx, JobRequest{Name: "victim", QASM: bellQASM})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	// A queued job's terminal state publishes once a worker pops it, so
	// unblock the single worker by canceling the holder too.
	if _, err := cl.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, queued.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled && final.Status != StatusDone {
		t.Errorf("canceled job ended %q", final.Status)
	}
	holder, err := cl.Wait(ctx, first.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if holder.Status != StatusCanceled {
		t.Errorf("holder ended %q, want canceled", holder.Status)
	}
}

func TestAPIErrorsAreTyped(t *testing.T) {
	cl := newService(t, serve.Config{Workers: 1})
	ctx := t.Context()
	_, err := cl.Status(ctx, "job-999999")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("missing job error: %v", err)
	}
	if apiErr.Temporary() {
		t.Error("404 reported as temporary")
	}

	// Result of an unfinished job is a 409.
	st, err := cl.Submit(ctx, slowRequest("slow"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Result(ctx, st.ID)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("unfinished result error: %v", err)
	}
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "job-000001", Status: StatusQueued})
	}))
	defer backend.Close()
	cl := New(backend.URL, WithRetries(3, time.Millisecond))
	st, err := cl.Submit(t.Context(), JobRequest{QASM: bellQASM})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-000001" || calls.Load() != 3 {
		t.Errorf("retry behavior: %+v after %d calls", st, calls.Load())
	}

	// Retries are bounded: a permanently failing backend surfaces the error.
	calls.Store(-100)
	if _, err := cl.Submit(t.Context(), JobRequest{QASM: bellQASM}); err == nil {
		t.Error("unbounded retries?")
	}
}

// TestErrorCodesMapToSentinels pins the cross-boundary error contract: the
// service's machine-readable "code" field maps back to the batch package's
// typed sentinels, so errors.Is works across the HTTP boundary without
// message matching.
func TestErrorCodesMapToSentinels(t *testing.T) {
	cases := []struct {
		code   string
		status int
		want   error
	}{
		{"queue_full", http.StatusServiceUnavailable, ErrQueueFull},
		{"shutdown", http.StatusServiceUnavailable, ErrShutdown},
		{"canceled", http.StatusConflict, ErrCanceled},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				json.NewEncoder(w).Encode(map[string]string{"error": "nope", "code": tc.code})
			}))
			defer backend.Close()
			cl := New(backend.URL, WithRetries(0, 0))
			_, err := cl.Submit(t.Context(), JobRequest{QASM: bellQASM})
			if !errors.Is(err, tc.want) {
				t.Errorf("code %q: errors.Is(%v, %v) = false", tc.code, err, tc.want)
			}
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.Code != tc.code {
				t.Errorf("code %q not carried on APIError: %v", tc.code, err)
			}
		})
	}
}

// TestQueueFullSentinelEndToEnd drives a real server into queue overflow and
// asserts the client classifies the refusal via the typed sentinel.
func TestQueueFullSentinelEndToEnd(t *testing.T) {
	cl := newService(t, serve.Config{Workers: 1, QueueDepth: 1})
	ctx := t.Context()
	first, err := cl.Submit(ctx, slowRequest("head"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Status(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("head job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := cl.Submit(ctx, slowRequest("fill")); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit(ctx, slowRequest("overflow"))
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit: errors.Is(err, ErrQueueFull) = false: %v", err)
	}
}
