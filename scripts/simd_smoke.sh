#!/bin/sh
# End-to-end smoke test for cmd/simd: build the daemon, boot it, submit a
# small QASM job, poll to completion, verify the content-addressed cache
# answers a repeat submission, stream the SSE events endpoint, run the typed
# client round-trip (examples/stream: submit → stream events → result), and
# shut down cleanly. CI runs this via `make simd-smoke`; it needs only a Go
# toolchain and curl.
set -eu

ADDR="127.0.0.1:${SIMD_PORT:-18555}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/simd"
LOG="$(mktemp)"

fail() {
	echo "simd-smoke: FAIL: $*" >&2
	echo "--- simd log ---" >&2
	cat "$LOG" >&2
	exit 1
}

go build -o "$BIN" ./cmd/simd || fail "build"

"$BIN" -addr "$ADDR" -workers 2 -grace 5s >"$LOG" 2>&1 &
SIMD_PID=$!
trap 'kill "$SIMD_PID" 2>/dev/null || true' EXIT INT TERM

# Wait for the health endpoint.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 100 ] || fail "server never became healthy on $ADDR"
	sleep 0.1
done

BODY='{"name":"ghz4","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n","strategy":"fidelity","final_fidelity":0.8,"round_fidelity":0.9,"shots":64}'

# Submit and extract the job id.
RESP="$(curl -sf -X POST -d "$BODY" "$BASE/v1/jobs")" || fail "submit"
JOB="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "no job id in: $RESP"

# Poll until the job leaves queued/running.
i=0
while :; do
	ST="$(curl -sf "$BASE/v1/jobs/$JOB")" || fail "poll"
	case "$ST" in
	*'"status":"done"'*) break ;;
	*'"status":"queued"'* | *'"status":"running"'*) ;;
	*) fail "job ended badly: $ST" ;;
	esac
	i=$((i + 1))
	[ "$i" -lt 200 ] || fail "job never finished: $ST"
	sleep 0.1
done

# The finished job must expose a result with the right shape.
RES="$(curl -sf "$BASE/v1/jobs/$JOB/result")" || fail "result fetch"
case "$RES" in
*'"num_qubits":4'*) ;;
*) fail "unexpected result payload: $RES" ;;
esac

# An identical submission must be answered from the result cache.
RESP2="$(curl -sf -X POST -d "$BODY" "$BASE/v1/jobs")" || fail "resubmit"
case "$RESP2" in
*'"cached":true'*'"status":"done"'* | *'"status":"done"'*'"cached":true'*) ;;
*) fail "repeat submission missed the cache: $RESP2" ;;
esac

STATS="$(curl -sf "$BASE/v1/stats")" || fail "stats"
case "$STATS" in
*'"hits":1'*) ;;
*) fail "cache hit not visible in stats: $STATS" ;;
esac

# The SSE endpoint must replay the finished job's events and close with a
# terminal status frame.
EVENTS="$(curl -sf -N --max-time 10 "$BASE/v1/jobs/$JOB/events")" || fail "events stream"
case "$EVENTS" in
*'event: gate'*) ;;
*) fail "no gate events in stream: $EVENTS" ;;
esac
case "$EVENTS" in
*'event: status'*'"status":"done"'*) ;;
*) fail "no terminal status event in stream: $EVENTS" ;;
esac

# Typed client round-trip: examples/stream submits an approximated circuit,
# consumes its live event stream, and cross-checks the result payload.
STREAM_OUT="$(go run ./examples/stream -addr "$BASE")" || fail "typed client round-trip (examples/stream)"
case "$STREAM_OUT" in
*'terminal status: done'*) ;;
*) fail "typed client stream missed the terminal event: $STREAM_OUT" ;;
esac
case "$STREAM_OUT" in
*'round after gate'*) ;;
*) fail "typed client stream carried no approximation rounds: $STREAM_OUT" ;;
esac

# Graceful shutdown on SIGTERM.
kill "$SIMD_PID"
i=0
while kill -0 "$SIMD_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -lt 100 ] || fail "server did not shut down on SIGTERM"
	sleep 0.1
done
trap - EXIT INT TERM

echo "simd-smoke: OK (job $JOB simulated, cache hit verified, SSE + typed client round-trip passed)"
