#!/bin/sh
# End-to-end smoke test for cmd/simd: build the daemon, boot it, submit a
# small QASM job, poll to completion, verify the content-addressed cache
# answers a repeat submission, stream the SSE events endpoint, run the typed
# client round-trip (examples/stream: submit → stream events → result), and
# shut down cleanly. CI runs this via `make simd-smoke`; it needs only a Go
# toolchain and curl.
set -eu

ADDR="127.0.0.1:${SIMD_PORT:-18555}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/simd"
LOG="$(mktemp)"

fail() {
	echo "simd-smoke: FAIL: $*" >&2
	echo "--- simd log ---" >&2
	cat "$LOG" >&2
	exit 1
}

# retry_until DEADLINE_SECONDS CMD...: a bounded retry loop driven by wall
# clock, not a fixed sleep count, so the smoke test tolerates loaded CI
# runners. The probe runs immediately, then with exponentially growing
# sleeps (50 ms up to 1 s) until it succeeds or the deadline passes; the
# caller handles failure. The overall budget is SIMD_SMOKE_TIMEOUT seconds
# per wait (default 60).
retry_until() {
	rt_deadline=$(($(date +%s) + $1))
	shift
	rt_delay=0.05
	until "$@"; do
		[ "$(date +%s)" -lt "$rt_deadline" ] || return 1
		sleep "$rt_delay"
		rt_delay=$(awk -v d="$rt_delay" 'BEGIN { d *= 2; if (d > 1) d = 1; print d }')
	done
}
WAIT="${SIMD_SMOKE_TIMEOUT:-60}"

go build -o "$BIN" ./cmd/simd || fail "build"

"$BIN" -addr "$ADDR" -workers 2 -grace 5s >"$LOG" 2>&1 &
SIMD_PID=$!
trap 'kill "$SIMD_PID" 2>/dev/null || true' EXIT INT TERM

# Wait for the health endpoint.
healthy() { curl -sf "$BASE/healthz" >/dev/null 2>&1; }
retry_until "$WAIT" healthy || fail "server never became healthy on $ADDR within ${WAIT}s"

BODY='{"name":"ghz4","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n","strategy":"fidelity","final_fidelity":0.8,"round_fidelity":0.9,"shots":64}'

# Submit and extract the job id.
RESP="$(curl -sf -X POST -d "$BODY" "$BASE/v1/jobs")" || fail "submit"
JOB="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "no job id in: $RESP"

# Poll until the job leaves queued/running (a terminal non-done status
# fails immediately rather than burning the deadline).
job_done() {
	ST="$(curl -sf "$BASE/v1/jobs/$JOB")" || fail "poll"
	case "$ST" in
	*'"status":"done"'*) return 0 ;;
	*'"status":"queued"'* | *'"status":"running"'*) return 1 ;;
	*) fail "job ended badly: $ST" ;;
	esac
}
retry_until "$WAIT" job_done || fail "job never finished within ${WAIT}s: $ST"

# The finished job must expose a result with the right shape.
RES="$(curl -sf "$BASE/v1/jobs/$JOB/result")" || fail "result fetch"
case "$RES" in
*'"num_qubits":4'*) ;;
*) fail "unexpected result payload: $RES" ;;
esac

# An identical submission must be answered from the result cache.
RESP2="$(curl -sf -X POST -d "$BODY" "$BASE/v1/jobs")" || fail "resubmit"
case "$RESP2" in
*'"cached":true'*'"status":"done"'* | *'"status":"done"'*'"cached":true'*) ;;
*) fail "repeat submission missed the cache: $RESP2" ;;
esac

STATS="$(curl -sf "$BASE/v1/stats")" || fail "stats"
case "$STATS" in
*'"hits":1'*) ;;
*) fail "cache hit not visible in stats: $STATS" ;;
esac

# The SSE endpoint must replay the finished job's events and close with a
# terminal status frame.
EVENTS="$(curl -sf -N --max-time 10 "$BASE/v1/jobs/$JOB/events")" || fail "events stream"
case "$EVENTS" in
*'event: gate'*) ;;
*) fail "no gate events in stream: $EVENTS" ;;
esac
case "$EVENTS" in
*'event: status'*'"status":"done"'*) ;;
*) fail "no terminal status event in stream: $EVENTS" ;;
esac

# Typed client round-trip: examples/stream submits an approximated circuit,
# consumes its live event stream, and cross-checks the result payload.
STREAM_OUT="$(go run ./examples/stream -addr "$BASE")" || fail "typed client round-trip (examples/stream)"
case "$STREAM_OUT" in
*'terminal status: done'*) ;;
*) fail "typed client stream missed the terminal event: $STREAM_OUT" ;;
esac
case "$STREAM_OUT" in
*'round after gate'*) ;;
*) fail "typed client stream carried no approximation rounds: $STREAM_OUT" ;;
esac

# The reorder strategy must be routable end-to-end: the entangled-pairs
# workload under the scored ordering has to peak below the identity order.
PAIRS='OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[8];\nh q[0];\nh q[1];\nh q[2];\nh q[3];\ncx q[0],q[4];\ncx q[1],q[5];\ncx q[2],q[6];\ncx q[3],q[7];\n'
peak_for_order() {
	RB='{"name":"pairs-'$1'","qasm":"'$PAIRS'","strategy":"reorder","strategy_params":{"order":"'$1'"}}'
	RESP="$(curl -sf -X POST -d "$RB" "$BASE/v1/jobs")" || fail "reorder submit ($1)"
	JOB="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
	[ -n "$JOB" ] || fail "no job id in: $RESP"
	retry_until "$WAIT" job_done || fail "reorder job ($1) never finished: $ST"
	curl -sf "$BASE/v1/jobs/$JOB/result" | sed -n 's/.*"max_dd_size":\([0-9]*\).*/\1/p'
}
IDENT_PEAK="$(peak_for_order identity)"
SCORED_PEAK="$(peak_for_order scored)"
[ -n "$IDENT_PEAK" ] && [ -n "$SCORED_PEAK" ] || fail "reorder results missing max_dd_size (identity='$IDENT_PEAK' scored='$SCORED_PEAK')"
[ "$SCORED_PEAK" -lt "$IDENT_PEAK" ] || fail "scored ordering did not shrink the DD over HTTP (identity $IDENT_PEAK, scored $SCORED_PEAK)"

# A noisy submission (noise + noise_params, no explicit backend) must run on
# the density backend: the result carries the backend, purity, and channel
# counters, and the event stream carries channel frames.
NOISY='{"name":"noisy-ghz4","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n","noise":"depolarizing","noise_params":{"p":0.05},"shots":64}'
RESP="$(curl -sf -X POST -d "$NOISY" "$BASE/v1/jobs")" || fail "noisy submit"
JOB="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "no job id in: $RESP"
retry_until "$WAIT" job_done || fail "noisy job never finished within ${WAIT}s: $ST"
RES="$(curl -sf "$BASE/v1/jobs/$JOB/result")" || fail "noisy result fetch"
case "$RES" in
*'"backend":"density"'*) ;;
*) fail "noisy job did not run on the density backend: $RES" ;;
esac
case "$RES" in
*'"noise":"depolarizing"'*'"purity":0.'*) ;;
*) fail "noisy result missing noise echo or mixed-state purity: $RES" ;;
esac
case "$RES" in
*'"channel_applications":'*) ;;
*) fail "noisy result missing channel_applications: $RES" ;;
esac
EVENTS="$(curl -sf -N --max-time 10 "$BASE/v1/jobs/$JOB/events")" || fail "noisy events stream"
case "$EVENTS" in
*'event: channel'*'"kind":"depolarizing"'*) ;;
*) fail "no channel events in noisy stream: $EVENTS" ;;
esac

# Graceful shutdown on SIGTERM.
kill "$SIMD_PID"
server_gone() { ! kill -0 "$SIMD_PID" 2>/dev/null; }
retry_until "$WAIT" server_gone || fail "server did not shut down on SIGTERM within ${WAIT}s"
trap - EXIT INT TERM

echo "simd-smoke: OK (job simulated, cache hit verified, SSE + typed client round-trip passed, reorder peak $IDENT_PEAK -> $SCORED_PEAK, noisy density job verified)"
