#!/bin/sh
# fuzz_smoke.sh runs every native fuzz target concurrently under one shared
# wall-clock budget (FUZZ_SMOKE_BUDGET, default 10s), instead of the old
# serial 10s-per-target loop. The targets fuzz different packages, so their
# build caches and corpus directories never collide; total wall time is one
# budget plus build overhead rather than targets x budget.
#
# Per-target output is captured to $TMPDIR logs and replayed only on
# failure, so an interleaved success run stays readable.
set -u

BUDGET="${FUZZ_SMOKE_BUDGET:-10s}"
GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# target-name package pairs, one per line
TARGETS='FuzzApproximate ./internal/core
FuzzQASMParse ./internal/qasm
FuzzKrausChannel ./internal/density
FuzzFromSpec ./internal/gen'

i=0
pids=""
names=""
while read -r name pkg; do
    [ -n "$name" ] || continue
    i=$((i + 1))
    log="$TMP/$i.log"
    (
        "$GO" test -run '^$' -fuzz "^${name}\$" -fuzztime "$BUDGET" "$pkg" \
            >"$log" 2>&1
    ) &
    pids="$pids $!"
    names="$names ${name}:${pkg}:${log}"
done <<EOF
$TARGETS
EOF

fail=0
set -- $pids
for entry in $names; do
    pid=$1
    shift
    name="${entry%%:*}"
    rest="${entry#*:}"
    pkg="${rest%%:*}"
    log="${rest#*:}"
    if wait "$pid"; then
        echo "fuzz-smoke: $name ($pkg) ok"
    else
        echo "fuzz-smoke: $name ($pkg) FAILED:"
        cat "$log"
        fail=1
    fi
done

exit "$fail"
