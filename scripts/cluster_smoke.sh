#!/bin/sh
# End-to-end smoke test for the cluster tier: build cmd/simd and
# cmd/simd-router, boot two backends plus the router, run a QASM job through
# the router, verify hash affinity by resubmitting (the repeat must be a
# cache hit on the same backend), check /v1/cluster/stats reflects the
# routing, and shut everything down gracefully on SIGTERM. CI runs this via
# `make cluster-smoke`; it needs only a Go toolchain and curl.
set -eu

B0_ADDR="127.0.0.1:${SIMD_CLUSTER_PORT0:-18561}"
B1_ADDR="127.0.0.1:${SIMD_CLUSTER_PORT1:-18562}"
RT_ADDR="127.0.0.1:${SIMD_CLUSTER_ROUTER_PORT:-18560}"
BASE="http://$RT_ADDR"
TMP="$(mktemp -d)"
LOG0="$TMP/b0.log"
LOG1="$TMP/b1.log"
LOGR="$TMP/router.log"

fail() {
	echo "cluster-smoke: FAIL: $*" >&2
	for f in "$LOGR" "$LOG0" "$LOG1"; do
		echo "--- $f ---" >&2
		cat "$f" >&2 2>/dev/null || true
	done
	exit 1
}

# retry_until DEADLINE_SECONDS CMD...: bounded wall-clock retry loop (see
# scripts/simd_smoke.sh for rationale).
retry_until() {
	rt_deadline=$(($(date +%s) + $1))
	shift
	rt_delay=0.05
	until "$@"; do
		[ "$(date +%s)" -lt "$rt_deadline" ] || return 1
		sleep "$rt_delay"
		rt_delay=$(awk -v d="$rt_delay" 'BEGIN { d *= 2; if (d > 1) d = 1; print d }')
	done
}
WAIT="${SIMD_SMOKE_TIMEOUT:-60}"

go build -o "$TMP/simd" ./cmd/simd || fail "build simd"
go build -o "$TMP/simd-router" ./cmd/simd-router || fail "build simd-router"

"$TMP/simd" -addr "$B0_ADDR" -workers 1 -grace 5s >"$LOG0" 2>&1 &
B0_PID=$!
"$TMP/simd" -addr "$B1_ADDR" -workers 1 -grace 5s >"$LOG1" 2>&1 &
B1_PID=$!
"$TMP/simd-router" -addr "$RT_ADDR" \
	-backends "http://$B0_ADDR,http://$B1_ADDR" \
	-probe-interval 250ms -grace 5s >"$LOGR" 2>&1 &
RT_PID=$!
trap 'kill "$RT_PID" "$B0_PID" "$B1_PID" 2>/dev/null || true' EXIT INT TERM

# The router is healthy once it sees at least one healthy backend.
healthy() { curl -sf "$BASE/healthz" >/dev/null 2>&1; }
retry_until "$WAIT" healthy || fail "router never became healthy on $RT_ADDR within ${WAIT}s"

BODY='{"name":"ghz4","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n","shots":64}'

# Submit through the router; the routed id must carry a backend prefix and
# the routing headers must name the owner.
HDRS="$TMP/headers"
RESP="$(curl -sf -D "$HDRS" -X POST -d "$BODY" "$BASE/v1/jobs")" || fail "submit"
JOB="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "no job id in: $RESP"
case "$JOB" in
b0.* | b1.*) ;;
*) fail "routed id $JOB lacks a backend prefix" ;;
esac
OWNER="$(sed -n 's/^[Xx]-[Cc]luster-[Bb]ackend: *\([a-z0-9]*\).*/\1/p' "$HDRS" | head -1)"
[ -n "$OWNER" ] || fail "no X-Cluster-Backend header in: $(cat "$HDRS")"
case "$JOB" in
"$OWNER".*) ;;
*) fail "id $JOB does not match routed backend $OWNER" ;;
esac

# Poll the routed id to completion.
job_done() {
	ST="$(curl -sf "$BASE/v1/jobs/$JOB")" || fail "poll"
	case "$ST" in
	*'"status":"done"'*) return 0 ;;
	*'"status":"queued"'* | *'"status":"running"'*) return 1 ;;
	*) fail "job ended badly: $ST" ;;
	esac
}
retry_until "$WAIT" job_done || fail "job never finished within ${WAIT}s: $ST"

# The result routes by prefix through the router.
RES="$(curl -sf "$BASE/v1/jobs/$JOB/result")" || fail "result fetch"
case "$RES" in
*'"num_qubits":4'*) ;;
*) fail "unexpected result payload: $RES" ;;
esac

# Hash affinity: the identical submission must route to the same backend and
# be answered from its cache.
RESP2="$(curl -sf -D "$HDRS" -X POST -d "$BODY" "$BASE/v1/jobs")" || fail "resubmit"
OWNER2="$(sed -n 's/^[Xx]-[Cc]luster-[Bb]ackend: *\([a-z0-9]*\).*/\1/p' "$HDRS" | head -1)"
[ "$OWNER2" = "$OWNER" ] || fail "repeat submission routed to $OWNER2, first went to $OWNER"
case "$RESP2" in
*'"cached":true'*) ;;
*) fail "repeat submission missed the cache: $RESP2" ;;
esac

# The SSE events endpoint proxies through the router.
EVENTS="$(curl -sf -N --max-time 10 "$BASE/v1/jobs/$JOB/events")" || fail "events stream"
case "$EVENTS" in
*'event: gate'*) ;;
*) fail "no gate events in proxied stream: $EVENTS" ;;
esac

# Cluster stats: both backends up, submissions routed, exactly the owner
# carries the cache hit.
STATS="$(curl -sf "$BASE/v1/cluster/stats")" || fail "cluster stats"
case "$STATS" in
*'"up":2'*) ;;
*) fail "cluster stats do not report 2 backends up: $STATS" ;;
esac
case "$STATS" in
*'"routed":2'*) ;;
*) fail "cluster stats do not report 2 routed submissions: $STATS" ;;
esac
case "$STATS" in
*'"cache_hits":1'*) ;;
*) fail "cluster stats do not aggregate the cache hit: $STATS" ;;
esac

# Graceful drain: router and both backends exit on SIGTERM.
kill "$RT_PID" "$B0_PID" "$B1_PID"
all_gone() {
	! kill -0 "$RT_PID" 2>/dev/null &&
		! kill -0 "$B0_PID" 2>/dev/null &&
		! kill -0 "$B1_PID" 2>/dev/null
}
retry_until "$WAIT" all_gone || fail "cluster did not shut down on SIGTERM within ${WAIT}s"
trap - EXIT INT TERM

echo "cluster-smoke: OK (routed to $OWNER, hash-affinity cache hit verified, stats aggregated, graceful drain)"
