// Command benchsummary turns the raw `go test -json` benchmark stream that
// `make bench-smoke` captures (BENCH_dd.json) into a parsed, stable-schema
// BENCH_summary.json, and doubles as the CI perf-regression gate:
//
//	benchsummary -in BENCH_dd.json -out BENCH_summary.json
//	benchsummary -check -baseline bench_baseline.json -summary BENCH_summary.json
//
// Summary schema (bench-summary/v1): benchmark name (CPU-count suffix
// stripped) → ns/op, allocs/op, B/op, and any custom metrics the benchmark
// reported (e.g. peak_nodes from BenchmarkSessionOrdering).
//
// In -check mode the tool fails (exit 1) when
//
//   - a baseline benchmark matching -match is missing from the summary, or
//   - its ns/op regressed by more than -threshold (relative, after scaling
//     the baseline by the machines' calibration ratio; -min-ns optionally
//     floors out benchmarks measured too briefly to trust), or
//   - its allocs/op or B/op regressed by more than -threshold (these are
//     machine-independent, so they gate unscaled), or
//   - the batch engine stopped scaling: BenchmarkBatchRun/workers4 must be
//     at least -min-scaling times faster than workers1 (skipped with a note
//     when the summary was measured on fewer than 4 CPUs), or
//   - manager reuse stopped paying: BenchmarkBatchRun/workers4_arena must
//     allocate at least -min-alloc-factor times fewer allocs/op and B/op
//     than the fresh-manager workers4 configuration, or
//   - the ordering win disappeared: BenchmarkSessionOrdering/scored must
//     keep its peak_nodes metric below BenchmarkSessionOrdering/identity, or
//   - the replace-vs-delete frontier regressed: BenchmarkFrontierPairs must
//     report frontier_dominated == frontier_points (the replace pass keeps
//     fidelity >= delete within the node budget at every swept budget), or
//   - with -cluster set, the cluster routing gate fails: hash-affinity
//     routing must beat round-robin on cluster cache hit rate, and the
//     hash-routed p99 latency in BENCH_cluster.json must stay within
//     -cluster-threshold of the committed bench_cluster_baseline.json after
//     calibration adjustment (see internal/loadgen and cmd/loadgen).
//
// The summary also records scaling_gate ("ran" or "skipped_num_cpu") so the
// artifact is explicit about whether the parallel-scaling gate could run on
// the producing machine.
//
// New benchmarks absent from the baseline pass with a note; refresh the
// committed baseline with `make bench-baseline`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/loadgen"
)

// Schema is the summary format identifier.
const Schema = "bench-summary/v1"

// Summary is the BENCH_summary.json document.
type Summary struct {
	Schema string `json:"schema"`
	// CalibrationNs is the runtime of a fixed arithmetic loop measured
	// while the summary was produced (min of several runs). The check
	// scales baseline ns/op by the calibration ratio, so the gate compares
	// work, not machine speed — the committed baseline stays meaningful on
	// faster/slower/throttled runners.
	CalibrationNs float64 `json:"calibration_ns"`
	// NumCPU is the logical CPU count of the machine that produced the
	// summary. The parallel-scaling gate self-skips when the current
	// summary was measured on fewer than 4 CPUs — there is no speedup to
	// measure there.
	NumCPU int `json:"num_cpu"`
	// ScalingGate records whether this machine can run the parallel-scaling
	// gate at all: "ran" on 4+ CPU machines, "skipped_num_cpu" otherwise —
	// so a summary artifact is self-describing about which gates its green
	// status actually covers.
	ScalingGate string               `json:"scaling_gate"`
	Benchmarks  map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	in := flag.String("in", "BENCH_dd.json", "go test -json stream to parse")
	out := flag.String("out", "BENCH_summary.json", "summary file to write")
	check := flag.Bool("check", false, "compare -summary against -baseline instead of parsing")
	baseline := flag.String("baseline", "bench_baseline.json", "committed baseline summary (check mode)")
	summaryPath := flag.String("summary", "BENCH_summary.json", "freshly produced summary (check mode)")
	threshold := flag.Float64("threshold", 0.25, "relative ns/op (and allocs/bytes) regression that fails the gate")
	minNs := flag.Float64("min-ns", 0, "ignore ns/op regressions when the baseline is below this floor (escape hatch for benchmarks too small for their -benchtime)")
	// The multi-worker BatchRun configurations measure parallel scaling,
	// which depends on ambient machine load no calibration can correct, so
	// the gate covers the Batch engine through its serial configuration.
	match := flag.String("match", `Gate|Session|Channel|BatchRun/workers1$`, "regexp selecting the gated benchmarks")
	minScaling := flag.Float64("min-scaling", 2.5, "required BatchRun workers1/workers4 ns/op speedup; skipped below 4 CPUs (0 disables)")
	minAllocFactor := flag.Float64("min-alloc-factor", 5, "required allocs/op and B/op reduction of BatchRun/workers4_arena vs workers4 (0 disables)")
	clusterPath := flag.String("cluster", "", "BENCH_cluster.json from cmd/loadgen to gate (check mode; empty skips the cluster gate)")
	clusterBaseline := flag.String("cluster-baseline", "bench_cluster_baseline.json", "committed cluster latency baseline (check mode)")
	clusterThreshold := flag.Float64("cluster-threshold", 0.25, "relative calibration-adjusted p99 regression that fails the cluster gate")
	flag.Parse()

	if *check {
		if err := runCheck(*baseline, *summaryPath, *threshold, *minNs, *match, *minScaling, *minAllocFactor); err != nil {
			fmt.Fprintf(os.Stderr, "benchsummary: %v\n", err)
			os.Exit(1)
		}
		if *clusterPath != "" {
			if err := runClusterCheck(*clusterBaseline, *clusterPath, *clusterThreshold); err != nil {
				fmt.Fprintf(os.Stderr, "benchsummary: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := runSummarize(*in, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchsummary: %v\n", err)
		os.Exit(1)
	}
}

func runSummarize(in, out string) error {
	sum, err := parseStream(in)
	if err != nil {
		return err
	}
	if len(sum.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in %s", in)
	}
	sum.CalibrationNs = loadgen.Calibrate()
	sum.NumCPU = runtime.NumCPU()
	if sum.NumCPU >= 4 {
		sum.ScalingGate = "ran"
	} else {
		sum.ScalingGate = "skipped_num_cpu"
	}
	raw, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchsummary: %d benchmarks -> %s\n", len(sum.Benchmarks), out)
	return nil
}

// parseStream reconstructs each package's plain-text output from the JSON
// event stream (go test splits single result lines across events) and parses
// every benchmark result line.
func parseStream(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	perPkg := map[string]*strings.Builder{}
	var pkgs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate non-JSON noise (build warnings interleaved).
			continue
		}
		if ev.Action != "output" {
			continue
		}
		b := perPkg[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// bench-smoke runs every benchmark -count times; keep the fastest run
	// per name (the noise-robust estimator — the minimum is the run least
	// disturbed by the machine), so the 1-iteration numbers are stable
	// enough for a relative regression gate.
	sum := &Summary{Schema: Schema, Benchmarks: map[string]Benchmark{}}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			name, bench, ok := parseResultLine(line)
			if !ok {
				continue
			}
			if prev, seen := sum.Benchmarks[name]; !seen || bench.NsPerOp < prev.NsPerOp {
				sum.Benchmarks[name] = bench
			}
		}
	}
	return sum, nil
}

// procSuffix strips the trailing GOMAXPROCS suffix from a benchmark name
// ("BenchmarkFoo/sub-8" → "BenchmarkFoo/sub").
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseResultLine parses one "BenchmarkX-8  N  123 ns/op  45 B/op ..." line.
func parseResultLine(line string) (string, Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Benchmark{}, false
	}
	// "#NN"-suffixed names are go test's disambiguation of duplicate
	// registrations (e.g. a workers=GOMAXPROCS sub-benchmark colliding
	// with an explicit workers=N one). Which name collides depends on the
	// machine's CPU count, so these must not enter a summary that is
	// compared across machines.
	if strings.Contains(line, "#") {
		return "", Benchmark{}, false
	}
	fields := strings.Fields(line)
	// name, iteration count, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", Benchmark{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", Benchmark{}, false
	}
	b := Benchmark{}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp, sawNs = val, true
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		case "MB/s":
			// throughput is derivable from ns/op; skip
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	if !sawNs {
		return "", Benchmark{}, false
	}
	return procSuffix.ReplaceAllString(fields[0], ""), b, true
}

// loadClusterReport reads a bench-cluster/v1 document (BENCH_cluster.json
// from cmd/loadgen, or the committed baseline).
func loadClusterReport(path string) (*loadgen.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r loadgen.Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != loadgen.Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, loadgen.Schema)
	}
	return &r, nil
}

// runClusterCheck is the cluster routing gate: content-hash affinity must
// keep beating round-robin on cluster-wide cache hit rate (the point of the
// router), and hash-routed p99 latency must stay within the
// calibration-adjusted envelope of the committed baseline.
func runClusterCheck(baselinePath, reportPath string, threshold float64) error {
	base, err := loadClusterReport(baselinePath)
	if err != nil {
		return err
	}
	cur, err := loadClusterReport(reportPath)
	if err != nil {
		return err
	}

	speed := 1.0
	if base.CalibrationNs > 0 && cur.CalibrationNs > 0 {
		speed = cur.CalibrationNs / base.CalibrationNs
		if speed < 0.25 {
			speed = 0.25
		}
		if speed > 4 {
			speed = 4
		}
	}

	var failures []string
	a := cur.Aggregate
	if a.HashHitRate <= a.RRHitRate {
		failures = append(failures, fmt.Sprintf(
			"cluster: hash-affinity cache hit rate %.1f%% does not beat round-robin %.1f%%",
			100*a.HashHitRate, 100*a.RRHitRate))
	}
	if a.HashP99MS <= 0 {
		failures = append(failures, "cluster: hash p99 missing from report aggregate")
	} else if allowed := base.Aggregate.HashP99MS * speed * (1 + threshold); a.HashP99MS > allowed {
		failures = append(failures, fmt.Sprintf(
			"cluster: hash p99 regressed %.1fms -> %.1fms (speed-adjusted gate is %.1fms, +%.0f%%)",
			base.Aggregate.HashP99MS*speed, a.HashP99MS, allowed, 100*threshold))
	}
	for _, run := range cur.Runs {
		if run.Sent > 0 && run.Completed == 0 {
			failures = append(failures, fmt.Sprintf(
				"cluster: %s q=%d %s phase completed 0 of %d submissions",
				run.Route, run.Qubits, run.Strategy, run.Sent))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("cluster gate failed (machine speed ratio %.2f):\n  %s", speed, strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchsummary: cluster gate OK (hash hit %.0f%% > rr %.0f%%, hash p99 %.1fms within %.1fms, speed ratio %.2f)\n",
		100*a.HashHitRate, 100*a.RRHitRate, a.HashP99MS, base.Aggregate.HashP99MS*speed*(1+threshold), speed)
	return nil
}

func loadSummary(path string) (*Summary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, Schema)
	}
	return &s, nil
}

func runCheck(baselinePath, summaryPath string, threshold, minNs float64, match string, minScaling, minAllocFactor float64) error {
	matcher, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("bad -match: %w", err)
	}
	base, err := loadSummary(baselinePath)
	if err != nil {
		return err
	}
	cur, err := loadSummary(summaryPath)
	if err != nil {
		return err
	}

	// Normalize for machine speed: scale the baseline by the calibration
	// ratio (how much slower/faster this machine ran the probe than the
	// baseline machine), clamped so a corrupt calibration cannot disable
	// the gate.
	speed := 1.0
	if base.CalibrationNs > 0 && cur.CalibrationNs > 0 {
		speed = cur.CalibrationNs / base.CalibrationNs
		if speed < 0.25 {
			speed = 0.25
		}
		if speed > 4 {
			speed = 4
		}
	}

	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	checked := 0
	for _, name := range names {
		if !matcher.MatchString(name) {
			continue
		}
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from summary", name))
			continue
		}
		checked++
		if b.NsPerOp < minNs {
			continue // too small to measure at one iteration
		}
		allowed := b.NsPerOp * speed * (1 + threshold)
		if c.NsPerOp > allowed {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (+%.0f%% speed-adjusted, gate is +%.0f%%)",
				name, b.NsPerOp*speed, c.NsPerOp, 100*(c.NsPerOp/(b.NsPerOp*speed)-1), 100*threshold))
		}
		// Allocation counts and bytes are machine-independent, so they gate
		// unscaled. Small absolute slacks keep pool warm-up jitter and
		// one-off allocations from tripping the relative threshold on tiny
		// benchmarks.
		if c.AllocsPerOp > b.AllocsPerOp*(1+threshold)+64 {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %.0f -> %.0f (gate is +%.0f%%)",
				name, b.AllocsPerOp, c.AllocsPerOp, 100*threshold))
		}
		if c.BytesPerOp > b.BytesPerOp*(1+threshold)+4096 {
			failures = append(failures, fmt.Sprintf("%s: B/op regressed %.0f -> %.0f (gate is +%.0f%%)",
				name, b.BytesPerOp, c.BytesPerOp, 100*threshold))
		}
	}

	// Parallel-scaling gate: the multi-worker configurations are excluded
	// from the cross-machine ns/op gate, but within one summary the
	// workers1/workers4 ratio is a load-normalized speedup. It needs real
	// cores; on fewer than 4 CPUs the gate self-skips with a note.
	if minScaling > 0 {
		w1, ok1 := cur.Benchmarks["BenchmarkBatchRun/workers1"]
		w4, ok4 := cur.Benchmarks["BenchmarkBatchRun/workers4"]
		switch {
		case cur.NumCPU < 4:
			fmt.Printf("benchsummary: note: parallel-scaling gate skipped (summary measured on %d CPUs, need 4)\n", cur.NumCPU)
		case !ok1 || !ok4:
			failures = append(failures, "BenchmarkBatchRun/{workers1,workers4}: missing from summary (parallel scaling unverified)")
		case w1.NsPerOp < minScaling*w4.NsPerOp:
			failures = append(failures, fmt.Sprintf(
				"BenchmarkBatchRun: workers4 speedup %.2fx over workers1, gate requires >= %.2fx",
				w1.NsPerOp/w4.NsPerOp, minScaling))
		default:
			fmt.Printf("benchsummary: parallel scaling OK (workers4 %.2fx faster than workers1 on %d CPUs)\n",
				w1.NsPerOp/w4.NsPerOp, cur.NumCPU)
		}
	}

	// Arena gate: reusing per-worker managers must keep cutting allocation
	// traffic by at least minAllocFactor against the fresh-manager
	// configuration. Allocation counts do not depend on core count, so this
	// gate runs everywhere.
	if minAllocFactor > 0 {
		fresh, okF := cur.Benchmarks["BenchmarkBatchRun/workers4"]
		arena, okA := cur.Benchmarks["BenchmarkBatchRun/workers4_arena"]
		switch {
		case !okF || !okA:
			failures = append(failures, "BenchmarkBatchRun/{workers4,workers4_arena}: missing from summary (arena reduction unverified)")
		case arena.AllocsPerOp*minAllocFactor > fresh.AllocsPerOp:
			failures = append(failures, fmt.Sprintf(
				"BenchmarkBatchRun: arena allocs/op %.0f vs fresh %.0f (%.1fx reduction, gate requires >= %.1fx)",
				arena.AllocsPerOp, fresh.AllocsPerOp, fresh.AllocsPerOp/arena.AllocsPerOp, minAllocFactor))
		case arena.BytesPerOp*minAllocFactor > fresh.BytesPerOp:
			failures = append(failures, fmt.Sprintf(
				"BenchmarkBatchRun: arena B/op %.0f vs fresh %.0f (%.1fx reduction, gate requires >= %.1fx)",
				arena.BytesPerOp, fresh.BytesPerOp, fresh.BytesPerOp/arena.BytesPerOp, minAllocFactor))
		default:
			fmt.Printf("benchsummary: arena reduction OK (allocs %.1fx, bytes %.1fx below fresh managers)\n",
				fresh.AllocsPerOp/arena.AllocsPerOp, fresh.BytesPerOp/arena.BytesPerOp)
		}
	}

	// The ordering win is part of the gate: the scored ordering must keep
	// its peak below identity on the pairs workload.
	ident, okI := cur.Benchmarks["BenchmarkSessionOrdering/identity"]
	scored, okS := cur.Benchmarks["BenchmarkSessionOrdering/scored"]
	switch {
	case !okI || !okS:
		failures = append(failures, "BenchmarkSessionOrdering/{identity,scored}: missing from summary (ordering win unverified)")
	case scored.Metrics["peak_nodes"] <= 0 || ident.Metrics["peak_nodes"] <= 0:
		failures = append(failures, "BenchmarkSessionOrdering: peak_nodes metric missing")
	case scored.Metrics["peak_nodes"] >= ident.Metrics["peak_nodes"]:
		failures = append(failures, fmt.Sprintf(
			"BenchmarkSessionOrdering: scored peak_nodes %.0f did not improve on identity %.0f",
			scored.Metrics["peak_nodes"], ident.Metrics["peak_nodes"]))
	}

	// The replace-vs-delete frontier gate: on the pairs workload the replace
	// pass must dominate or match the delete pass at every swept budget
	// (frontier_dominated == frontier_points, emitted by
	// BenchmarkFrontierPairs in internal/benchtab).
	frontier, okFr := cur.Benchmarks["BenchmarkFrontierPairs"]
	switch {
	case !okFr:
		failures = append(failures, "BenchmarkFrontierPairs: missing from summary (replace-vs-delete frontier unverified)")
	case frontier.Metrics["frontier_points"] <= 0:
		failures = append(failures, "BenchmarkFrontierPairs: frontier_points metric missing or zero")
	case frontier.Metrics["frontier_dominated"] < frontier.Metrics["frontier_points"]:
		failures = append(failures, fmt.Sprintf(
			"BenchmarkFrontierPairs: replace dominated delete on only %.0f of %.0f budgets",
			frontier.Metrics["frontier_dominated"], frontier.Metrics["frontier_points"]))
	}

	for name := range cur.Benchmarks {
		if matcher.MatchString(name) {
			if _, ok := base.Benchmarks[name]; !ok {
				fmt.Printf("benchsummary: note: %s is new (not in baseline); run `make bench-baseline` to pin it\n", name)
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed (machine speed ratio %.2f):\n  %s", speed, strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchsummary: perf gate OK (%d benchmarks checked, threshold +%.0f%%, machine speed ratio %.2f, ordering win verified: scored %.0f < identity %.0f peak nodes)\n",
		checked, 100*threshold, speed, scored.Metrics["peak_nodes"], ident.Metrics["peak_nodes"])
	return nil
}
