// Package circuit provides the quantum circuit intermediate representation
// shared by the generators, the QASM parser, the optimizer, and the
// simulator.
//
// A circuit is a sequence of gates over NumQubits qubits. Two gate kinds
// exist: standard (controlled) single-qubit unitaries, and (controlled)
// permutation gates acting on the low qubits of the register — the latter
// realize Shor's modular multiplications the way the paper's simulator
// does. Mid-circuit measurement and reset are represented as pseudo-gates.
// Block boundaries mark positions between the algorithm's logical blocks
// (Fig. 2) and steer the fidelity-driven placement of approximation rounds.
//
// AppendCanonical encodes everything simulation-relevant — gates,
// parameters, controls, permutation payloads, block boundaries — into a
// deterministic byte string, which the simulation service hashes to
// content-address its result cache.
package circuit
