package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix1Q returns the 2×2 matrix (row-major [u00 u01 u10 u11]) for a named
// single-qubit gate. Parameterized gates take their angles from params.
//
// Supported names (OpenQASM-compatible where applicable):
//
//	id x y z h s sdg t tdg sx sxdg sy sydg
//	rx(θ) ry(θ) rz(θ) p(λ) u1(λ) u2(φ,λ) u3(θ,φ,λ) u(θ,φ,λ)
func Matrix1Q(name string, params []float64) ([4]complex128, error) {
	need := func(n int) error {
		if len(params) != n {
			return fmt.Errorf("circuit: gate %q takes %d parameter(s), got %d", name, n, len(params))
		}
		return nil
	}
	s2 := complex(1/math.Sqrt2, 0)
	switch name {
	case "id", "i":
		return [4]complex128{1, 0, 0, 1}, need(0)
	case "x":
		return [4]complex128{0, 1, 1, 0}, need(0)
	case "y":
		return [4]complex128{0, -1i, 1i, 0}, need(0)
	case "z":
		return [4]complex128{1, 0, 0, -1}, need(0)
	case "h":
		return [4]complex128{s2, s2, s2, -s2}, need(0)
	case "s":
		return [4]complex128{1, 0, 0, 1i}, need(0)
	case "sdg":
		return [4]complex128{1, 0, 0, -1i}, need(0)
	case "t":
		return [4]complex128{1, 0, 0, cmplx.Exp(1i * math.Pi / 4)}, need(0)
	case "tdg":
		return [4]complex128{1, 0, 0, cmplx.Exp(-1i * math.Pi / 4)}, need(0)
	case "sx":
		// √X as used by the supremacy circuits: X^(1/2).
		return [4]complex128{
			complex(0.5, 0.5), complex(0.5, -0.5),
			complex(0.5, -0.5), complex(0.5, 0.5),
		}, need(0)
	case "sxdg":
		return [4]complex128{
			complex(0.5, -0.5), complex(0.5, 0.5),
			complex(0.5, 0.5), complex(0.5, -0.5),
		}, need(0)
	case "sy":
		// √Y = Y^(1/2).
		return [4]complex128{
			complex(0.5, 0.5), complex(-0.5, -0.5),
			complex(0.5, 0.5), complex(0.5, 0.5),
		}, need(0)
	case "sydg":
		return [4]complex128{
			complex(0.5, -0.5), complex(0.5, -0.5),
			complex(-0.5, 0.5), complex(0.5, -0.5),
		}, need(0)
	case "rx":
		if err := need(1); err != nil {
			return [4]complex128{}, err
		}
		c, s := math.Cos(params[0]/2), math.Sin(params[0]/2)
		return [4]complex128{complex(c, 0), complex(0, -s), complex(0, -s), complex(c, 0)}, nil
	case "ry":
		if err := need(1); err != nil {
			return [4]complex128{}, err
		}
		c, s := math.Cos(params[0]/2), math.Sin(params[0]/2)
		return [4]complex128{complex(c, 0), complex(-s, 0), complex(s, 0), complex(c, 0)}, nil
	case "rz":
		if err := need(1); err != nil {
			return [4]complex128{}, err
		}
		return [4]complex128{cmplx.Exp(complex(0, -params[0]/2)), 0, 0, cmplx.Exp(complex(0, params[0]/2))}, nil
	case "p", "u1", "phase":
		if err := need(1); err != nil {
			return [4]complex128{}, err
		}
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, params[0]))}, nil
	case "u2":
		if err := need(2); err != nil {
			return [4]complex128{}, err
		}
		return u3Matrix(math.Pi/2, params[0], params[1]), nil
	case "u3", "u":
		if err := need(3); err != nil {
			return [4]complex128{}, err
		}
		return u3Matrix(params[0], params[1], params[2]), nil
	default:
		return [4]complex128{}, fmt.Errorf("circuit: unknown gate %q", name)
	}
}

func u3Matrix(theta, phi, lambda float64) [4]complex128 {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return [4]complex128{
		complex(c, 0),
		-cmplx.Exp(complex(0, lambda)) * complex(s, 0),
		cmplx.Exp(complex(0, phi)) * complex(s, 0),
		cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0),
	}
}

// InverseGate returns the name and parameters of the adjoint of the named
// gate, used by Circuit.Inverse.
func InverseGate(name string, params []float64) (string, []float64, error) {
	neg := func(ps []float64) []float64 {
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = -p
		}
		return out
	}
	switch name {
	case "id", "i", "x", "y", "z", "h":
		return name, nil, nil
	case "s":
		return "sdg", nil, nil
	case "sdg":
		return "s", nil, nil
	case "t":
		return "tdg", nil, nil
	case "tdg":
		return "t", nil, nil
	case "sx":
		return "sxdg", nil, nil
	case "sxdg":
		return "sx", nil, nil
	case "sy":
		return "sydg", nil, nil
	case "sydg":
		return "sy", nil, nil
	case "rx", "ry", "rz", "p", "u1", "phase":
		return name, neg(params), nil
	case "u2":
		// u2(φ,λ)† = u3(-π/2, -λ, -φ)
		if len(params) != 2 {
			return "", nil, fmt.Errorf("circuit: u2 takes 2 parameters")
		}
		return "u3", []float64{-math.Pi / 2, -params[1], -params[0]}, nil
	case "u3", "u":
		// u3(θ,φ,λ)† = u3(-θ, -λ, -φ)
		if len(params) != 3 {
			return "", nil, fmt.Errorf("circuit: u3 takes 3 parameters")
		}
		return "u3", []float64{-params[0], -params[2], -params[1]}, nil
	default:
		return "", nil, fmt.Errorf("circuit: cannot invert unknown gate %q", name)
	}
}
