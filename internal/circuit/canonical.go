package circuit

import (
	"encoding/binary"
	"math"
)

// AppendCanonical appends a deterministic binary encoding of the circuit's
// full simulation-relevant content to b and returns the extended slice: the
// qubit count, every gate (kind, name, parameters as IEEE-754 bits, target,
// controls with polarity, permutation payload), and the block boundaries
// (which steer fidelity-driven round placement and therefore change
// results). The circuit's display Name is deliberately excluded.
//
// The encoding is the content-addressing key for the simulation service's
// result cache: two circuits encode identically iff the simulator treats
// them identically, regardless of whether they arrived as inline gate lists
// or as OpenQASM source.
func (c *Circuit) AppendCanonical(b []byte) []byte {
	b = appendUvarint(b, uint64(c.NumQubits))
	b = appendUvarint(b, uint64(len(c.gates)))
	for _, g := range c.gates {
		b = appendUvarint(b, uint64(g.Kind))
		b = appendString(b, g.Name)
		b = appendUvarint(b, uint64(g.Target))
		b = appendUvarint(b, uint64(len(g.Params)))
		for _, p := range g.Params {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(p))
		}
		b = appendUvarint(b, uint64(len(g.Controls)))
		for _, ctl := range g.Controls {
			b = appendUvarint(b, uint64(ctl.Qubit))
			if ctl.Positive {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
		b = appendUvarint(b, uint64(g.PermWidth))
		b = appendUvarint(b, uint64(len(g.Perm)))
		for _, p := range g.Perm {
			b = appendUvarint(b, uint64(p))
		}
	}
	b = appendUvarint(b, uint64(len(c.blocks)))
	for _, blk := range c.blocks {
		b = appendUvarint(b, uint64(blk))
	}
	return b
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
