package circuit

import (
	"math"
	"math/cmplx"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dd"
)

var allFixedGates = []string{
	"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg", "sy", "sydg",
}

func mul2x2(a, b [4]complex128) [4]complex128 {
	return [4]complex128{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

func isIdentity2x2(u [4]complex128, tol float64) bool {
	return cmplx.Abs(u[0]-1) < tol && cmplx.Abs(u[1]) < tol &&
		cmplx.Abs(u[2]) < tol && cmplx.Abs(u[3]-1) < tol
}

func adjoint2x2(u [4]complex128) [4]complex128 {
	conj := func(c complex128) complex128 { return complex(real(c), -imag(c)) }
	return [4]complex128{conj(u[0]), conj(u[2]), conj(u[1]), conj(u[3])}
}

func TestAllGatesAreUnitary(t *testing.T) {
	cases := map[string][]float64{}
	for _, name := range allFixedGates {
		cases[name] = nil
	}
	cases["rx"] = []float64{0.7}
	cases["ry"] = []float64{1.3}
	cases["rz"] = []float64{-2.1}
	cases["p"] = []float64{0.9}
	cases["u1"] = []float64{0.4}
	cases["u2"] = []float64{0.3, -1.2}
	cases["u3"] = []float64{1.1, 0.2, -0.8}
	cases["u"] = []float64{0.5, 0.6, 0.7}
	for name, params := range cases {
		u, err := Matrix1Q(name, params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !isIdentity2x2(mul2x2(u, adjoint2x2(u)), 1e-12) {
			t.Errorf("%s is not unitary: %v", name, u)
		}
	}
}

func TestSquareRootGates(t *testing.T) {
	sx, _ := Matrix1Q("sx", nil)
	x, _ := Matrix1Q("x", nil)
	got := mul2x2(sx, sx)
	for i := range got {
		if cmplx.Abs(got[i]-x[i]) > 1e-12 {
			t.Fatalf("sx² != x: %v vs %v", got, x)
		}
	}
	sy, _ := Matrix1Q("sy", nil)
	y, _ := Matrix1Q("y", nil)
	got = mul2x2(sy, sy)
	for i := range got {
		if cmplx.Abs(got[i]-y[i]) > 1e-12 {
			t.Fatalf("sy² != y: %v vs %v", got, y)
		}
	}
}

func TestRotationIdentities(t *testing.T) {
	// rz(π) == Z up to global phase; p(π) == Z exactly.
	rz, _ := Matrix1Q("rz", []float64{math.Pi})
	z, _ := Matrix1Q("z", nil)
	phase := z[0] / rz[0]
	for i := range rz {
		if cmplx.Abs(rz[i]*phase-z[i]) > 1e-12 {
			t.Fatalf("rz(π) != Z up to phase")
		}
	}
	p, _ := Matrix1Q("p", []float64{math.Pi})
	for i := range p {
		if cmplx.Abs(p[i]-z[i]) > 1e-12 {
			t.Fatalf("p(π) != Z")
		}
	}
	// u3(π/2, 0, π) == H up to phase.
	u, _ := Matrix1Q("u3", []float64{math.Pi / 2, 0, math.Pi})
	h, _ := Matrix1Q("h", nil)
	phase = h[0] / u[0]
	for i := range u {
		if cmplx.Abs(u[i]*phase-h[i]) > 1e-12 {
			t.Fatalf("u3(π/2,0,π) != H up to phase")
		}
	}
}

func TestUnknownGateRejected(t *testing.T) {
	if _, err := Matrix1Q("frobnicate", nil); err == nil {
		t.Error("unknown gate accepted")
	}
	if _, err := Matrix1Q("rx", nil); err == nil {
		t.Error("rx without parameter accepted")
	}
	if _, err := Matrix1Q("h", []float64{1}); err == nil {
		t.Error("h with parameter accepted")
	}
}

func TestInverseGateMatrices(t *testing.T) {
	cases := []struct {
		name   string
		params []float64
	}{
		{"x", nil}, {"h", nil}, {"s", nil}, {"sdg", nil}, {"t", nil}, {"tdg", nil},
		{"sx", nil}, {"sy", nil},
		{"rx", []float64{0.8}}, {"ry", []float64{-1.1}}, {"rz", []float64{2.2}},
		{"p", []float64{0.3}}, {"u2", []float64{0.4, 1.7}}, {"u3", []float64{0.5, -0.6, 0.7}},
	}
	for _, tc := range cases {
		u, err := Matrix1Q(tc.name, tc.params)
		if err != nil {
			t.Fatal(err)
		}
		invName, invParams, err := InverseGate(tc.name, tc.params)
		if err != nil {
			t.Fatalf("InverseGate(%s): %v", tc.name, err)
		}
		v, err := Matrix1Q(invName, invParams)
		if err != nil {
			t.Fatal(err)
		}
		if !isIdentity2x2(mul2x2(u, v), 1e-12) {
			t.Errorf("%s · %s != I", tc.name, invName)
		}
	}
}

func TestBuilderAndBlocks(t *testing.T) {
	c := New(3, "demo")
	c.H(0)
	c.CX(0, 1)
	c.EndBlock()
	c.T(2)
	c.EndBlock()
	c.EndBlock() // duplicate, ignored
	if c.Len() != 3 {
		t.Fatalf("len %d", c.Len())
	}
	if got := c.Blocks(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("blocks %v", got)
	}
	empty := New(2, "empty")
	empty.EndBlock() // before any gate, ignored
	if len(empty.Blocks()) != 0 {
		t.Error("boundary before first gate recorded")
	}
}

func TestAppendValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	c := New(2, "v")
	mustPanic("target out of range", func() { c.H(2) })
	mustPanic("control out of range", func() { c.CX(5, 0) })
	mustPanic("control==target", func() { c.CX(0, 0) })
	mustPanic("unknown gate", func() { c.Apply("nope", nil, 0) })
	mustPanic("bad perm width", func() { c.Permutation([]int{0, 1}, 3) })
	mustPanic("bad perm length", func() { c.Permutation([]int{0, 1, 2}, 2) })
	mustPanic("perm control overlap", func() {
		c.Permutation([]int{0, 1}, 1, dd.PosControl(0))
	})
	mustPanic("zero qubits", func() { New(0, "x") })
}

func TestSwapViaCNOTs(t *testing.T) {
	c := New(2, "swap")
	c.SWAP(0, 1)
	if c.Len() != 3 {
		t.Errorf("SWAP expands to %d gates, want 3", c.Len())
	}
}

func TestInverseCircuit(t *testing.T) {
	c := New(3, "fwd")
	c.H(0)
	c.CX(0, 1)
	c.T(2)
	c.RZ(0.7, 1)
	c.Permutation([]int{1, 2, 0, 3}, 2, dd.PosControl(2))
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Len() != c.Len() {
		t.Fatalf("inverse length %d", inv.Len())
	}
	// Inverse of the permutation [1,2,0,3] is [2,0,1,3].
	g := inv.Gates()[0]
	if g.Kind != KindPerm || !reflect.DeepEqual(g.Perm, []int{2, 0, 1, 3}) {
		t.Errorf("inverse permutation = %v", g.Perm)
	}
	// Last gate of inverse is h q0 (self-inverse).
	last := inv.Gates()[inv.Len()-1]
	if last.Name != "h" || last.Target != 0 {
		t.Errorf("last inverse gate = %v", last)
	}
	// t must become tdg.
	found := false
	for _, g := range inv.Gates() {
		if g.Name == "tdg" {
			found = true
		}
	}
	if !found {
		t.Error("t was not inverted to tdg")
	}
}

func TestAppendCircuit(t *testing.T) {
	a := New(2, "a")
	a.H(0)
	a.EndBlock()
	b := New(2, "b")
	b.X(1)
	b.EndBlock()
	a.AppendCircuit(b)
	if a.Len() != 2 {
		t.Fatalf("len %d", a.Len())
	}
	if got := a.Blocks(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("blocks %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched qubit append did not panic")
		}
	}()
	a.AppendCircuit(New(3, "c"))
}

func TestDepthAndCounts(t *testing.T) {
	c := New(3, "d")
	c.H(0) // layer 1
	c.H(1) // layer 1
	c.CX(0, 1)
	c.H(2) // layer 1
	c.CX(1, 2)
	if got := c.Depth(); got != 3 {
		t.Errorf("depth %d, want 3", got)
	}
	counts := c.CountByName()
	if counts["h"] != 3 || counts["x"] != 2 {
		t.Errorf("counts %v", counts)
	}
	if !strings.Contains(c.String(), "3 qubits") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestGateString(t *testing.T) {
	c := New(3, "s")
	c.CP(0.5, 2, 0)
	s := c.Gates()[0].String()
	if !strings.Contains(s, "p(0.5)") || !strings.Contains(s, "c+q2") || !strings.Contains(s, "q0") {
		t.Errorf("gate string %q", s)
	}
	c.Permutation([]int{0, 1, 2, 3}, 2)
	s = c.Gates()[1].String()
	if !strings.Contains(s, "perm") {
		t.Errorf("perm string %q", s)
	}
}
