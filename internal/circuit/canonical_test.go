package circuit

import (
	"bytes"
	"testing"
)

func TestAppendCanonical(t *testing.T) {
	build := func(name string, block bool) *Circuit {
		c := New(3, name)
		c.H(0)
		c.CX(0, 1)
		if block {
			c.EndBlock()
		}
		c.RZ(0.25, 2)
		return c
	}
	a := build("a", false).AppendCanonical(nil)
	b := build("completely different name", false).AppendCanonical(nil)
	if !bytes.Equal(a, b) {
		t.Error("canonical encoding must ignore the display name")
	}
	withBlock := build("a", true).AppendCanonical(nil)
	if bytes.Equal(a, withBlock) {
		t.Error("block boundaries change round placement and must change the encoding")
	}
	other := New(3, "a")
	other.H(0)
	other.CX(0, 1)
	other.RZ(0.5, 2)
	if bytes.Equal(a, other.AppendCanonical(nil)) {
		t.Error("different parameters must encode differently")
	}
}
