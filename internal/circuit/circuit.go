package circuit

import (
	"fmt"

	"repro/internal/dd"
)

// Kind discriminates gate representations.
type Kind int

// Gate kinds.
const (
	// KindUnitary is a named single-qubit unitary with optional controls.
	KindUnitary Kind = iota
	// KindPerm is a permutation on the PermWidth low qubits with optional
	// controls on higher qubits.
	KindPerm
	// KindMeasure is a mid-circuit measurement of Target in the
	// computational basis, collapsing the state.
	KindMeasure
	// KindReset measures Target and flips it to |0⟩ if the outcome was 1.
	KindReset
)

// Gate is one circuit operation.
type Gate struct {
	Kind     Kind
	Name     string
	Target   int
	Controls []dd.Control
	Params   []float64

	// Permutation payload (KindPerm only).
	Perm      []int
	PermWidth int
}

// Matrix returns the 2×2 matrix of a KindUnitary gate.
func (g Gate) Matrix() ([4]complex128, error) {
	if g.Kind != KindUnitary {
		return [4]complex128{}, fmt.Errorf("circuit: gate %q has no 2x2 matrix", g.Name)
	}
	return Matrix1Q(g.Name, g.Params)
}

// String renders the gate compactly, e.g. "cx q1 -> q0" or "rz(0.5) q2".
func (g Gate) String() string {
	s := g.Name
	if len(g.Params) > 0 {
		s += "("
		for i, p := range g.Params {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%g", p)
		}
		s += ")"
	}
	for _, c := range g.Controls {
		sign := "+"
		if !c.Positive {
			sign = "-"
		}
		s += fmt.Sprintf(" c%sq%d", sign, c.Qubit)
	}
	if g.Kind == KindPerm {
		return fmt.Sprintf("%s [perm on q0..q%d]", s, g.PermWidth-1)
	}
	return fmt.Sprintf("%s q%d", s, g.Target)
}

// Circuit is an ordered gate list over a fixed qubit register.
type Circuit struct {
	Name      string
	NumQubits int

	gates  []Gate
	blocks []int // gate indices after which a block boundary sits
}

// New returns an empty circuit on n qubits.
func New(n int, name string) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: qubit count %d must be positive", n))
	}
	return &Circuit{Name: name, NumQubits: n}
}

// Gates returns the gate list (not a copy; callers must not mutate).
func (c *Circuit) Gates() []Gate { return c.gates }

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.gates) }

// Blocks returns the block-boundary gate indices in order.
func (c *Circuit) Blocks() []int {
	out := make([]int, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// EndBlock records a block boundary after the most recently appended gate.
// Boundaries before any gate, or duplicates, are ignored.
func (c *Circuit) EndBlock() {
	idx := len(c.gates) - 1
	if idx < 0 {
		return
	}
	if len(c.blocks) > 0 && c.blocks[len(c.blocks)-1] == idx {
		return
	}
	c.blocks = append(c.blocks, idx)
}

func (c *Circuit) checkQubit(q int) {
	if q < 0 || q >= c.NumQubits {
		panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
	}
}

// Append adds a gate after validating targets and controls.
func (c *Circuit) Append(g Gate) {
	switch g.Kind {
	case KindUnitary:
		c.checkQubit(g.Target)
		if _, err := g.Matrix(); err != nil {
			panic(err.Error())
		}
		seen := map[int]bool{g.Target: true}
		for _, ctl := range g.Controls {
			c.checkQubit(ctl.Qubit)
			if seen[ctl.Qubit] {
				panic(fmt.Sprintf("circuit: duplicate qubit %d in gate %q", ctl.Qubit, g.Name))
			}
			seen[ctl.Qubit] = true
		}
	case KindPerm:
		if g.PermWidth <= 0 || g.PermWidth > c.NumQubits {
			panic(fmt.Sprintf("circuit: permutation width %d out of range", g.PermWidth))
		}
		if len(g.Perm) != 1<<uint(g.PermWidth) {
			panic(fmt.Sprintf("circuit: permutation length %d, want %d", len(g.Perm), 1<<uint(g.PermWidth)))
		}
		for _, ctl := range g.Controls {
			c.checkQubit(ctl.Qubit)
			if ctl.Qubit < g.PermWidth {
				panic(fmt.Sprintf("circuit: permutation control %d overlaps permuted qubits", ctl.Qubit))
			}
		}
	case KindMeasure, KindReset:
		c.checkQubit(g.Target)
		if len(g.Controls) != 0 {
			panic("circuit: measurement cannot be controlled")
		}
	default:
		panic(fmt.Sprintf("circuit: unknown gate kind %d", g.Kind))
	}
	c.gates = append(c.gates, g)
}

// Apply appends a named single-qubit gate with optional controls.
func (c *Circuit) Apply(name string, params []float64, target int, controls ...dd.Control) {
	c.Append(Gate{Kind: KindUnitary, Name: name, Params: params, Target: target, Controls: controls})
}

// Convenience builders for the common gate set.

// H appends a Hadamard.
func (c *Circuit) H(q int) { c.Apply("h", nil, q) }

// X appends a NOT.
func (c *Circuit) X(q int) { c.Apply("x", nil, q) }

// Y appends a Pauli-Y.
func (c *Circuit) Y(q int) { c.Apply("y", nil, q) }

// Z appends a Pauli-Z.
func (c *Circuit) Z(q int) { c.Apply("z", nil, q) }

// S appends the S phase gate.
func (c *Circuit) S(q int) { c.Apply("s", nil, q) }

// Sdg appends S†.
func (c *Circuit) Sdg(q int) { c.Apply("sdg", nil, q) }

// T appends the T gate.
func (c *Circuit) T(q int) { c.Apply("t", nil, q) }

// Tdg appends T†.
func (c *Circuit) Tdg(q int) { c.Apply("tdg", nil, q) }

// SX appends √X.
func (c *Circuit) SX(q int) { c.Apply("sx", nil, q) }

// SY appends √Y.
func (c *Circuit) SY(q int) { c.Apply("sy", nil, q) }

// RX appends a rotation around X by theta.
func (c *Circuit) RX(theta float64, q int) { c.Apply("rx", []float64{theta}, q) }

// RY appends a rotation around Y by theta.
func (c *Circuit) RY(theta float64, q int) { c.Apply("ry", []float64{theta}, q) }

// RZ appends a rotation around Z by theta.
func (c *Circuit) RZ(theta float64, q int) { c.Apply("rz", []float64{theta}, q) }

// P appends a phase gate diag(1, e^{iλ}).
func (c *Circuit) P(lambda float64, q int) { c.Apply("p", []float64{lambda}, q) }

// U appends the generic u3(θ,φ,λ) gate.
func (c *Circuit) U(theta, phi, lambda float64, q int) {
	c.Apply("u3", []float64{theta, phi, lambda}, q)
}

// CX appends a CNOT with the given control and target.
func (c *Circuit) CX(ctrl, target int) { c.Apply("x", nil, target, dd.PosControl(ctrl)) }

// CZ appends a controlled-Z (the supremacy circuits' conditional phase gate).
func (c *Circuit) CZ(ctrl, target int) { c.Apply("z", nil, target, dd.PosControl(ctrl)) }

// CP appends a controlled phase gate.
func (c *Circuit) CP(lambda float64, ctrl, target int) {
	c.Apply("p", []float64{lambda}, target, dd.PosControl(ctrl))
}

// CCX appends a Toffoli.
func (c *Circuit) CCX(ctrl1, ctrl2, target int) {
	c.Apply("x", nil, target, dd.PosControl(ctrl1), dd.PosControl(ctrl2))
}

// MCX appends a multi-controlled NOT.
func (c *Circuit) MCX(ctrls []int, target int) {
	controls := make([]dd.Control, len(ctrls))
	for i, q := range ctrls {
		controls[i] = dd.PosControl(q)
	}
	c.Apply("x", nil, target, controls...)
}

// MCZ appends a multi-controlled Z (used by Grover's diffusion operator).
func (c *Circuit) MCZ(ctrls []int, target int) {
	controls := make([]dd.Control, len(ctrls))
	for i, q := range ctrls {
		controls[i] = dd.PosControl(q)
	}
	c.Apply("z", nil, target, controls...)
}

// SWAP appends a swap of two qubits (three CNOTs).
func (c *Circuit) SWAP(a, b int) {
	c.CX(a, b)
	c.CX(b, a)
	c.CX(a, b)
}

// Permutation appends a permutation gate on the width low qubits.
func (c *Circuit) Permutation(perm []int, width int, controls ...dd.Control) {
	c.Append(Gate{Kind: KindPerm, Name: "perm", Perm: perm, PermWidth: width, Controls: controls})
}

// Measure appends a mid-circuit computational-basis measurement of q.
func (c *Circuit) Measure(q int) {
	c.Append(Gate{Kind: KindMeasure, Name: "measure", Target: q})
}

// Reset appends a reset of q to |0⟩ (measure, then conditionally flip).
func (c *Circuit) Reset(q int) {
	c.Append(Gate{Kind: KindReset, Name: "reset", Target: q})
}

// AppendCircuit concatenates another circuit's gates (and block boundaries)
// onto c. Both circuits must have the same qubit count.
func (c *Circuit) AppendCircuit(o *Circuit) {
	if o.NumQubits != c.NumQubits {
		panic(fmt.Sprintf("circuit: appending %d-qubit circuit to %d-qubit circuit", o.NumQubits, c.NumQubits))
	}
	offset := len(c.gates)
	c.gates = append(c.gates, o.gates...)
	for _, b := range o.blocks {
		c.blocks = append(c.blocks, b+offset)
	}
}

// Inverse returns the adjoint circuit: gates reversed and inverted. Block
// boundaries are mapped to the mirrored positions.
func (c *Circuit) Inverse() (*Circuit, error) {
	inv := New(c.NumQubits, c.Name+"_inv")
	for i := len(c.gates) - 1; i >= 0; i-- {
		g := c.gates[i]
		switch g.Kind {
		case KindUnitary:
			name, params, err := InverseGate(g.Name, g.Params)
			if err != nil {
				return nil, err
			}
			inv.Apply(name, params, g.Target, g.Controls...)
		case KindPerm:
			p := make([]int, len(g.Perm))
			for x, y := range g.Perm {
				p[y] = x
			}
			inv.Permutation(p, g.PermWidth, g.Controls...)
		case KindMeasure, KindReset:
			return nil, fmt.Errorf("circuit: %s on qubit %d is not invertible", g.Name, g.Target)
		}
	}
	return inv, nil
}

// CountByName returns a histogram of gate names (permutation gates count
// under "perm").
func (c *Circuit) CountByName() map[string]int {
	out := make(map[string]int)
	for _, g := range c.gates {
		out[g.Name]++
	}
	return out
}

// Depth returns the circuit depth: the length of the longest chain of gates
// where each gate occupies its target and control qubits for one time step.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.gates {
		qubits := gateQubits(g)
		maxLvl := 0
		for _, q := range qubits {
			if level[q] > maxLvl {
				maxLvl = level[q]
			}
		}
		for _, q := range qubits {
			level[q] = maxLvl + 1
		}
		if maxLvl+1 > depth {
			depth = maxLvl + 1
		}
	}
	return depth
}

func gateQubits(g Gate) []int {
	var qs []int
	if g.Kind == KindPerm {
		for q := 0; q < g.PermWidth; q++ {
			qs = append(qs, q)
		}
	} else {
		qs = append(qs, g.Target)
	}
	for _, c := range g.Controls {
		qs = append(qs, c.Qubit)
	}
	return qs
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %d qubits, %d gates, depth %d, %d blocks",
		c.Name, c.NumQubits, len(c.gates), c.Depth(), len(c.blocks))
}
