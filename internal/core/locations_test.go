package core

import (
	"reflect"
	"testing"
)

func TestSpreadLocationsSubset(t *testing.T) {
	locs := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	got := spreadLocations(locs, 200, 4)
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	// Must include the last location and span the range.
	if got[len(got)-1] != 100 {
		t.Errorf("last location not included: %v", got)
	}
	if got[0] > 40 {
		t.Errorf("early region not covered: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not strictly increasing: %v", got)
		}
	}
}

func TestSpreadLocationsFewerThanRounds(t *testing.T) {
	got := spreadLocations([]int{5, 15}, 100, 6)
	if !reflect.DeepEqual(got, []int{5, 15}) {
		t.Errorf("got %v", got)
	}
}

func TestSpreadLocationsFiltersInvalid(t *testing.T) {
	// Negative, duplicate and end-of-circuit locations are dropped.
	got := spreadLocations([]int{-1, 5, 5, 99, 120}, 100, 10)
	if !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("got %v", got)
	}
	if spreadLocations([]int{5}, 100, 0) != nil {
		t.Error("zero rounds should plan nothing")
	}
}

func TestFidelityDrivenExplicitLocations(t *testing.T) {
	s := NewFidelityDriven(0.5, 0.9) // 6 rounds max
	s.Locations = []int{3, 7, 11, 15, 19, 23, 27, 31, 35, 39}
	if err := s.Init(100, []int{50, 60}); err != nil {
		t.Fatal(err)
	}
	locs := s.PlannedLocations()
	if len(locs) != 6 {
		t.Fatalf("planned %d rounds, want 6: %v", len(locs), locs)
	}
	// Explicit locations take precedence over block boundaries.
	for _, l := range locs {
		if l == 50 || l == 60 {
			t.Errorf("block boundary used despite explicit locations: %v", locs)
		}
	}
	if locs[len(locs)-1] != 39 {
		t.Errorf("last explicit location not used: %v", locs)
	}
}
