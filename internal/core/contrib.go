package core

import (
	"sort"

	"repro/internal/dd"
)

// Contributions computes the norm contribution of every node reachable from
// the state edge e (Definition 2): the sum of squared magnitudes of the
// amplitudes whose root-to-terminal paths pass through the node.
//
// With the |w0|²+|w1|² = 1 node normalization the subtree below any node
// carries unit mass, so the contribution equals the accumulated squared path
// weight from the root down to the node, propagated level by level.
func Contributions(m *dd.Manager, e dd.VEdge) map[*dd.VNode]float64 {
	contrib := make(map[*dd.VNode]float64)
	if m.IsVZero(e) || e.N == nil || e.N.IsTerminal() {
		return contrib
	}
	nodes := dd.CollectVNodes(e)
	// Propagate in level order (parents strictly above children).
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Var > nodes[j].Var })
	contrib[e.N] = e.W.Abs2()
	for _, n := range nodes {
		c := contrib[n]
		if c == 0 {
			continue
		}
		for idx := 0; idx < 2; idx++ {
			child := n.E[idx]
			if child.N == nil || child.N.IsTerminal() || child.W.Abs2() == 0 {
				continue
			}
			contrib[child.N] += c * child.W.Abs2()
		}
	}
	return contrib
}

// LevelContributionSums returns, for each qubit level, the sum of the
// contributions of the nodes on that level. By Definition 2 every entry is 1
// for a normalized state (tested as an invariant).
func LevelContributionSums(m *dd.Manager, e dd.VEdge, n int) []float64 {
	sums := make([]float64, n)
	for node, c := range Contributions(m, e) {
		if int(node.Var) < n {
			sums[node.Var] += c
		}
	}
	return sums
}
