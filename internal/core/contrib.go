package core

import (
	"repro/internal/dd"
)

// Contributions computes the norm contribution of every node reachable from
// the state edge e (Definition 2): the sum of squared magnitudes of the
// amplitudes whose root-to-terminal paths pass through the node.
//
// With the |w0|²+|w1|² = 1 node normalization the subtree below any node
// carries unit mass, so the contribution equals the accumulated squared path
// weight from the root down to the node, propagated level by level.
//
// The returned map is owned by the caller. The approximation pipeline avoids
// this allocation by computing into pooled scratch (contributionsInto).
func Contributions(m *dd.Manager, e dd.VEdge) map[*dd.VNode]float64 {
	sc := getScratch()
	contributionsInto(m, e, sc)
	contrib := make(map[*dd.VNode]float64, len(sc.contrib))
	for n, c := range sc.contrib {
		contrib[n] = c
	}
	putScratch(sc)
	return contrib
}

// LevelContributionSums returns, for each qubit level, the sum of the
// contributions of the nodes on that level. By Definition 2 every entry is 1
// for a normalized state (tested as an invariant).
func LevelContributionSums(m *dd.Manager, e dd.VEdge, n int) []float64 {
	sums := make([]float64, n)
	sc := getScratch()
	contributionsInto(m, e, sc)
	for node, c := range sc.contrib {
		if int(node.Var) < n {
			sums[node.Var] += c
		}
	}
	putScratch(sc)
	return sums
}
