package core

// FidelityTracker accumulates the fidelity accounting across approximation
// rounds, following Section V: the end-to-end fidelity is tracked as the
// product of the per-round fidelities. Lemma 1 makes the product exact for
// hierarchically composed truncations (e.g. back-to-back rounds); with
// unitaries between rounds it is the tracked estimate the paper reports, and
// the product of the per-round *targets* is the quantity the fidelity-driven
// strategy budgets against f_final.
type FidelityTracker struct {
	rounds []Round
	// product of Report.Achieved
	achieved float64
	// product of Report.Requested
	bound float64
}

// NewFidelityTracker returns a tracker at fidelity 1 (no rounds yet).
func NewFidelityTracker() *FidelityTracker {
	return &FidelityTracker{achieved: 1, bound: 1}
}

// Record adds one approximation round.
func (t *FidelityTracker) Record(r Round) {
	t.rounds = append(t.rounds, r)
	t.achieved *= r.Report.Achieved
	t.bound *= r.Report.Requested
}

// Achieved returns the tracked end-to-end fidelity: the product of the
// per-round measured fidelities (Section V).
func (t *FidelityTracker) Achieved() float64 { return t.achieved }

// Bound returns the product of the per-round target fidelities, the budget
// quantity of the fidelity-driven strategy.
func (t *FidelityTracker) Bound() float64 { return t.bound }

// Rounds returns the recorded rounds in order.
func (t *FidelityTracker) Rounds() []Round {
	out := make([]Round, len(t.rounds))
	copy(out, t.rounds)
	return out
}

// Count returns the number of rounds that actually modified the state.
func (t *FidelityTracker) Count() int { return len(t.rounds) }
