package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dd"
)

func TestPaperExample8Removal(t *testing.T) {
	// Removing the left q1 node (contribution 0.2) from the Fig. 1b DD must
	// yield the Fig. 1d state (|101⟩+|111⟩)/√2 with fidelity 0.8.
	m := dd.New()
	e := fig1State(t, m)
	contribs := Contributions(m, e)

	var leftQ1 *dd.VNode
	for n, c := range contribs {
		if n.Var == 1 && math.Abs(c-0.2) < 1e-12 {
			leftQ1 = n
		}
	}
	if leftQ1 == nil {
		t.Fatal("did not find the q1 node with contribution 0.2")
	}
	ne := RemoveNodes(m, e, map[*dd.VNode]bool{leftQ1: true})
	if f := m.Fidelity(e, ne); math.Abs(f-0.8) > 1e-12 {
		t.Errorf("fidelity after removing 0.2-node = %v, want 0.8", f)
	}
	// Fig. 1d: 3 nodes, state (|101⟩+|111⟩)/√2.
	if got := dd.CountVNodes(ne); got != 3 {
		t.Errorf("approximated DD has %d nodes, want 3 (Fig. 1d)", got)
	}
	s := complex(1/math.Sqrt2, 0)
	want := []complex128{0, 0, 0, 0, 0, s, 0, s}
	got := m.ToVector(ne, 3)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("amplitude %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestApproximateFidelityLowerBound(t *testing.T) {
	// Property: for random states and random f_round, the achieved fidelity
	// never drops below f_round and matches the exact inner product.
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 40; trial++ {
		m := dd.New()
		n := 3 + rng.Intn(6)
		e := randomState(t, m, n, 0.3+rng.Float64()*0.7, rng)
		fround := 0.5 + rng.Float64()*0.5
		ne, rep, err := ApproximateToFidelity(m, e, fround)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Achieved < fround-1e-9 {
			t.Fatalf("achieved %v < requested %v", rep.Achieved, fround)
		}
		if exact := m.Fidelity(e, ne); math.Abs(exact-rep.Achieved) > 1e-9 {
			t.Fatalf("reported achieved %v != exact fidelity %v", rep.Achieved, exact)
		}
		if !rep.NoOp() {
			if rep.SizeAfter >= rep.SizeBefore {
				t.Fatalf("removal did not shrink DD: %d -> %d", rep.SizeBefore, rep.SizeAfter)
			}
			if norm := m.Norm(ne); math.Abs(norm-1) > 1e-9 {
				t.Fatalf("approximated state norm %v", norm)
			}
			if 1-rep.Achieved > rep.RemovedMass+1e-9 {
				t.Fatalf("lost mass %v exceeds raw removed mass %v", 1-rep.Achieved, rep.RemovedMass)
			}
		}
	}
}

func TestApproximateUniformState(t *testing.T) {
	// Uniform superposition has a single path-shared chain: every node's
	// contribution is 1, so nothing is removable.
	m := dd.New()
	n := 6
	vec := make([]complex128, 1<<uint(n))
	amp := complex(1/math.Sqrt(float64(len(vec))), 0)
	for i := range vec {
		vec[i] = amp
	}
	e, _ := m.FromAmplitudes(vec)
	ne, rep, err := ApproximateToFidelity(m, e, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NoOp() {
		t.Errorf("uniform state lost %d nodes", rep.RemovedNodes)
	}
	if ne != e {
		t.Error("no-op approximation returned a different edge")
	}
}

func TestApproximateFullBudgetRejected(t *testing.T) {
	m := dd.New()
	e := m.BasisState(3, 0)
	if _, _, err := ApproximateToFidelity(m, e, 0); err == nil {
		t.Error("f_round = 0 accepted")
	}
	if _, _, err := ApproximateToFidelity(m, e, 1.5); err == nil {
		t.Error("f_round > 1 accepted")
	}
}

func TestApproximateRoundOne(t *testing.T) {
	// f_round = 1 must be a strict no-op.
	m := dd.New()
	rng := rand.New(rand.NewSource(61))
	e := randomState(t, m, 5, 0.5, rng)
	ne, rep, err := ApproximateToFidelity(m, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NoOp() || ne != e {
		t.Error("f_round = 1 modified the state")
	}
}

func TestApproximateBelowContribution(t *testing.T) {
	m := dd.New()
	e := fig1State(t, m)
	// Threshold 0.15 kills exactly the two 0.1/0.2-contribution nodes...
	// the 0.1 q0 node and the 0.2 q1 node; killing the q1 ancestor already
	// removes the paths, the q0 node dies with it.
	ne, rep, err := ApproximateBelowContribution(m, e, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoOp() {
		t.Fatal("threshold removal was a no-op")
	}
	if f := m.Fidelity(e, ne); math.Abs(f-0.9) > 1e-12 {
		t.Errorf("fidelity %v, want 0.9 (only the 0.1 mass is actually lost)", f)
	}
}

func TestLemma1TruncationFactorization(t *testing.T) {
	// Lemma 1 on raw truncations: F(ψ, φ_I) = F(ψ, ψ_I)·F(ψ_I, φ_I) where
	// φ = ψ_J is itself a truncation of ψ. Realized with DD approximations:
	// approximate twice in sequence and compare fidelities.
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		m := dd.New()
		n := 4 + rng.Intn(5)
		psi := randomState(t, m, n, 0.6, rng)
		psi1, rep1, err := ApproximateToFidelity(m, psi, 0.8+rng.Float64()*0.15)
		if err != nil {
			t.Fatal(err)
		}
		psi2, rep2, err := ApproximateToFidelity(m, psi1, 0.8+rng.Float64()*0.15)
		if err != nil {
			t.Fatal(err)
		}
		if rep1.NoOp() && rep2.NoOp() {
			continue
		}
		lhs := m.Fidelity(psi, psi2)
		rhs := m.Fidelity(psi, psi1) * m.Fidelity(psi1, psi2)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("Lemma 1 violated: F(ψ,ψ'') = %v, F(ψ,ψ')·F(ψ',ψ'') = %v", lhs, rhs)
		}
	}
}

func TestRemoveNodesPreservesUntouchedAmplitudeRatios(t *testing.T) {
	// Truncation only zeroes and rescales: surviving amplitudes keep their
	// relative values (Eq. (1)).
	rng := rand.New(rand.NewSource(63))
	m := dd.New()
	n := 5
	e := randomState(t, m, n, 0.5, rng)
	ne, rep, err := ApproximateToFidelity(m, e, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoOp() {
		t.Skip("nothing removed for this seed")
	}
	orig := m.ToVector(e, n)
	appr := m.ToVector(ne, n)
	scale := complex128(0)
	for i := range appr {
		if cmplx.Abs(appr[i]) > 1e-9 {
			if scale == 0 {
				scale = orig[i] / appr[i]
			} else if cmplx.Abs(orig[i]/appr[i]-scale) > 1e-6 {
				t.Fatalf("surviving amplitude %d rescaled inconsistently: %v vs %v",
					i, orig[i]/appr[i], scale)
			}
		}
	}
	if scale == 0 {
		t.Fatal("approximation left no surviving amplitudes")
	}
	// |scale| = ‖P_I ψ‖ = sqrt(F).
	if math.Abs(cmplx.Abs(scale)-math.Sqrt(rep.Achieved)) > 1e-9 {
		t.Errorf("rescale factor |%v| != sqrt(F)=%v", cmplx.Abs(scale), math.Sqrt(rep.Achieved))
	}
}

func TestApproximateBelowContributionFullRemovalRejected(t *testing.T) {
	// A threshold above every contribution would erase the whole state; the
	// call must fail and leave the input untouched.
	m := dd.New()
	rng := rand.New(rand.NewSource(64))
	e := randomState(t, m, 4, 0.8, rng)
	if _, _, err := ApproximateBelowContribution(m, e, 2.0); err == nil {
		t.Error("threshold 2.0 (removes everything) accepted")
	}
}

func TestApproximateBelowContributionNoOp(t *testing.T) {
	m := dd.New()
	e := m.BasisState(4, 5) // all contributions are 1
	ne, rep, err := ApproximateBelowContribution(m, e, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NoOp() || ne != e {
		t.Error("basis state was modified")
	}
}
