package core

import (
	"fmt"
	"math"

	"repro/internal/dd"
)

// SubstituteKind names one node-replacement shape of the replace strategy
// (Yan, Hillmich, Wille, Mayr — arXiv 2507.04335). Where the delete-based
// pass (ApproximateToFidelity/ApproximateToSize) zeroes a low-contribution
// node's subtree — severing every path through it — a substitute keeps a
// cheap stand-in, holding fidelity higher at the same node budget.
type SubstituteKind string

const (
	// SubstituteCollapse replaces a node's subtree with its dominant basis
	// path: the single root-to-terminal path that follows the larger-weight
	// child at every level, weighted by the exact projection coefficient
	// (the product of the path weights). The substitute is a chain of
	// Var+1 nodes, shared across all collapsed subtrees with the same
	// dominant suffix — this is the size workhorse.
	SubstituteCollapse SubstituteKind = "collapse"
	// SubstitutePromote drops a node's weaker child (the one with smaller
	// |w|²) and keeps the dominant child's full subtree. It forfeits the
	// least mass of the two kinds but frees only the weak subtree.
	SubstitutePromote SubstituteKind = "promote"
)

// DefaultSubstitutes is the default preference order: collapse first (it
// shrinks hardest), promotion as the cheaper fallback when a collapse would
// overdraw the fidelity budget.
func DefaultSubstitutes() []SubstituteKind {
	return []SubstituteKind{SubstituteCollapse, SubstitutePromote}
}

// ParseSubstituteKinds validates a list of kind names (as they appear in
// JSON strategy params) preserving order; nil or empty input selects
// DefaultSubstitutes.
func ParseSubstituteKinds(names []string) ([]SubstituteKind, error) {
	if len(names) == 0 {
		return DefaultSubstitutes(), nil
	}
	out := make([]SubstituteKind, 0, len(names))
	for _, s := range names {
		switch k := SubstituteKind(s); k {
		case SubstituteCollapse, SubstitutePromote:
			out = append(out, k)
		default:
			return nil, fmt.Errorf("core: unknown substitute kind %q (known: %q, %q)",
				s, SubstituteCollapse, SubstitutePromote)
		}
	}
	return out, nil
}

// dominantPathAbs2 returns |w|², the squared magnitude of the dominant basis
// path's weight product — the exact fraction of n's subtree mass a collapse
// substitute keeps. Node weights are normalized (|w0|²+|w1|² = 1), so the
// result is always positive.
func dominantPathAbs2(n *dd.VNode) float64 {
	kept := 1.0
	for cur := n; cur != nil && !cur.IsTerminal(); {
		idx := 0
		if cur.E[1].W.Abs2() > cur.E[0].W.Abs2() {
			idx = 1
		}
		kept *= cur.E[idx].W.Abs2()
		cur = cur.E[idx].N
	}
	return kept
}

// collapseEdge builds the collapse substitute for n: the dominant basis
// path as a fresh chain of n.Var+1 nodes, scaled by the exact projection
// coefficient ⟨path|subtree⟩ (the complex product of the path weights).
// Chains intern through the unique table, so equal suffixes share nodes.
func collapseEdge(m *dd.Manager, n *dd.VNode) dd.VEdge {
	w := complex(1, 0)
	bits := make([]int, 0, n.Var+1)
	for cur := n; cur != nil && !cur.IsTerminal(); {
		idx := 0
		if cur.E[1].W.Abs2() > cur.E[0].W.Abs2() {
			idx = 1
		}
		w *= cur.E[idx].W.Complex()
		bits = append(bits, idx)
		cur = cur.E[idx].N
	}
	e := dd.VEdge{W: m.CN.One, N: m.VTerminal()}
	for lvl := 0; lvl < len(bits); lvl++ {
		b := bits[len(bits)-1-lvl]
		var c [2]dd.VEdge
		c[1-b] = m.VZero()
		c[b] = e
		e = m.MakeVNode(int32(lvl), c[0], c[1])
	}
	return m.ScaleV(e, w)
}

// lossFrac returns the fraction of n's subtree mass the substitute kind
// forfeits, or 0 when the substitution is a structural no-op (the node
// already is a basis chain, or already has a single child) and should be
// skipped.
func lossFrac(n *dd.VNode, kind SubstituteKind) float64 {
	switch kind {
	case SubstituteCollapse:
		return 1 - dominantPathAbs2(n)
	case SubstitutePromote:
		l := n.E[0].W.Abs2()
		if r := n.E[1].W.Abs2(); r < l {
			l = r
		}
		return l
	}
	return 0
}

// replaceNodes rebuilds the state with every node in repl swapped for its
// substitute, then renormalizes preserving the root phase (the replace-pass
// analogue of removeNodes). Substitutes are built from the node's original
// subtree; a promoted node's kept child is itself rebuilt, so nested
// replacements below it still apply.
func replaceNodes(m *dd.Manager, e dd.VEdge, repl map[*dd.VNode]SubstituteKind, memo map[*dd.VNode]dd.VEdge) dd.VEdge {
	if m.IsVZero(e) {
		return e
	}
	var rebuild func(n *dd.VNode) dd.VEdge
	rebuild = func(n *dd.VNode) dd.VEdge {
		if n.IsTerminal() {
			return dd.VEdge{W: m.CN.One, N: m.VTerminal()}
		}
		if res, ok := memo[n]; ok {
			return res
		}
		var res dd.VEdge
		switch repl[n] {
		case SubstituteCollapse:
			res = collapseEdge(m, n)
		case SubstitutePromote:
			keep := 0
			if n.E[1].W.Abs2() > n.E[0].W.Abs2() {
				keep = 1
			}
			var children [2]dd.VEdge
			children[1-keep] = m.VZero()
			children[keep] = m.ScaleV(rebuild(n.E[keep].N), n.E[keep].W.Complex())
			res = m.MakeVNode(n.Var, children[0], children[1])
		default:
			var children [2]dd.VEdge
			for i := 0; i < 2; i++ {
				child := n.E[i]
				if child.W.Abs2() == 0 {
					children[i] = m.VZero()
					continue
				}
				children[i] = m.ScaleV(rebuild(child.N), child.W.Complex())
			}
			res = m.MakeVNode(n.Var, children[0], children[1])
		}
		memo[n] = res
		return res
	}
	root := rebuild(e.N)
	if m.IsVZero(root) {
		return root
	}
	final := m.ScaleV(root, e.W.Complex())
	return m.NormalizeRootWeight(final)
}

// ReplaceNodes rebuilds the state DD with every node in repl replaced by its
// substitute shape, then renormalizes to unit norm preserving the root
// phase. Unlike RemoveNodes, substitutes keep at least one root-to-terminal
// path through every replaced node alive, so the result is never the zero
// vector for a non-zero input.
func ReplaceNodes(m *dd.Manager, e dd.VEdge, repl map[*dd.VNode]SubstituteKind) dd.VEdge {
	return replaceNodes(m, e, repl, make(map[*dd.VNode]dd.VEdge))
}

// ApproximateToSizeReplace shrinks the state DD to at most maxNodes nodes by
// replacing nodes in ascending contribution order with cheaper substitutes,
// tried in the caller's preference order (nil kinds = DefaultSubstitutes).
// minFidelity > 0 bounds the loss: the sum of estimated forfeited masses
// (contribution × loss fraction, an upper bound on the true loss by the same
// union-bound argument as the delete pass) stays within 1−minFidelity, so
// the achieved fidelity is guaranteed ≥ minFidelity; minFidelity = 0 means
// no floor. If substitution alone cannot reach the target — a replaced
// subtree shared elsewhere frees nothing, while its substitute chain adds
// nodes — remaining surplus is deleted the classic way within the same loss
// budget, so the pass never does worse on size than ApproximateToSize.
func ApproximateToSizeReplace(m *dd.Manager, e dd.VEdge, maxNodes int, minFidelity float64, kinds []SubstituteKind) (dd.VEdge, Report, error) {
	if maxNodes < 1 {
		return e, Report{}, fmt.Errorf("core: size target %d must be positive", maxNodes)
	}
	if minFidelity < 0 || minFidelity >= 1 {
		return e, Report{}, fmt.Errorf("core: fidelity floor %v outside [0, 1)", minFidelity)
	}
	if len(kinds) == 0 {
		kinds = DefaultSubstitutes()
	}
	sizeBefore := m.CountV(e)
	rep := Report{Requested: minFidelity, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	if sizeBefore <= maxNodes || m.IsVZero(e) {
		return e, rep, nil
	}
	// minFidelity = 0 means no floor: the loss budget is unbounded, exactly
	// like ApproximateToSize (which this pass must never lose to on size).
	budget := math.Inf(1)
	if minFidelity > 0 {
		budget = 1 - minFidelity
	}
	orig := e
	sc := getScratch()
	defer putScratch(sc)
	const slack = 1e-12
	const maxPasses = 8
	// deleteToSize is the classic delete pass under the same loss budget:
	// it removes ascending-contribution nodes (with zero-state backoff)
	// until the target fits, the pass budget runs out, or further removal
	// would overdraw the floor. Counts and mass accumulate into rep.
	deleteToSize := func(e dd.VEdge, spent float64, rep *Report) (dd.VEdge, float64) {
		for pass := 0; pass < maxPasses; pass++ {
			size := m.CountV(e)
			if size <= maxNodes {
				break
			}
			sc.reuse()
			contributionsInto(m, e, sc)
			cands := sc.sortedCandidates(e.N)
			need := size - maxNodes
			limit, mass := 0, 0.0
			for _, cand := range cands {
				if limit >= need {
					break
				}
				// Never remove a pass's entire remaining mass (per-pass, as in
				// ApproximateToSize: contributions are measured on the current
				// renormalized state), and never overdraw the cumulative floor.
				if mass+cand.c >= 1 || spent+mass+cand.c > budget+slack {
					break
				}
				limit++
				mass += cand.c
			}
			ne, removed, remMass := removeWithBackoff(m, e, sc, cands, limit)
			if removed == 0 {
				break
			}
			e = ne
			spent += remMass
			rep.RemovedNodes += removed
			rep.RemovedMass += remMass
		}
		return e, spent
	}
	type pick struct {
		n    *dd.VNode
		kind SubstituteKind
		loss float64
	}
	var picks []pick
	spent := 0.0
	for pass := 0; pass < maxPasses; pass++ {
		size := m.CountV(e)
		if size <= maxNodes {
			break
		}
		sc.reuse()
		contributionsInto(m, e, sc)
		cands := sc.sortedCandidates(e.N)
		need := size - maxNodes
		picks = picks[:0]
		passSpent := 0.0
		for _, cand := range cands {
			if len(picks) >= need {
				break
			}
			for _, kind := range kinds {
				frac := lossFrac(cand.n, kind)
				if frac <= 0 {
					continue // structural no-op for this node
				}
				loss := cand.c * frac
				if spent+passSpent+loss > budget+slack {
					continue // overdraws the floor; a cheaper kind may fit
				}
				picks = append(picks, pick{cand.n, kind, loss})
				passSpent += loss
				break
			}
		}
		if len(picks) == 0 {
			break // budget exhausted or nothing substitutable
		}
		// Build with a prefix of the ascending-contribution picks. One
		// collapse can free a whole subtree, overshooting the target and
		// wasting fidelity a smaller prefix would have kept, so when the
		// full set fits, binary-search the smallest prefix that still fits.
		build := func(count int) (dd.VEdge, float64) {
			clear(sc.repl)
			clear(sc.memo)
			cost := 0.0
			for _, p := range picks[:count] {
				sc.repl[p.n] = p.kind
				cost += p.loss
			}
			return replaceNodes(m, e, sc.repl, sc.memo), cost
		}
		ne, passCost := build(len(picks))
		chosen := len(picks)
		if newSize := m.CountV(ne); newSize <= maxNodes && chosen > 1 {
			lo, hi := 1, chosen
			for lo < hi {
				mid := (lo + hi) / 2
				if cand, cost := build(mid); m.CountV(cand) <= maxNodes {
					ne, passCost, chosen = cand, cost, mid
					hi = mid
				} else {
					lo = mid + 1
				}
			}
		}
		newSize := m.CountV(ne)
		if m.IsVZero(ne) || newSize >= size {
			// Substitution stopped shrinking (shared subtrees freed nothing
			// while the chains added nodes); keep the smaller state and let
			// the delete fallback finish the job.
			break
		}
		e = ne
		spent += passCost
		rep.ReplacedNodes += chosen
		rep.RemovedMass += passCost
	}
	// Delete fallback: force any remaining surplus out the classic way,
	// spending what is left of the same loss budget.
	e, _ = deleteToSize(e, spent, &rep)
	// Pure floored delete from the original state is the reference this pass
	// must never lose to: on dense states substitution can spend fidelity
	// without freeing nodes (shared subtrees, chains adding nodes) and the
	// fallback then deletes on top of that damage. Keep whichever result is
	// better — fits the budget first, then higher fidelity, then smaller.
	alt := Report{Requested: minFidelity, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	ae, _ := deleteToSize(orig, 0, &alt)
	eSize, aSize := m.CountV(e), m.CountV(ae)
	eFid, aFid := m.Fidelity(orig, e), m.Fidelity(orig, ae)
	takeAlt := false
	switch {
	case aSize <= maxNodes && eSize > maxNodes:
		takeAlt = true
	case aSize > maxNodes && eSize > maxNodes:
		takeAlt = aSize < eSize
	case aSize <= maxNodes && eSize <= maxNodes:
		takeAlt = aFid > eFid
	}
	if takeAlt {
		e, rep, eFid = ae, alt, aFid
	}
	rep.SizeAfter = m.CountV(e)
	rep.Achieved = eFid
	return e, rep, nil
}

// ReplaceDriven is the node-replacement strategy (arXiv 2507.04335): after
// each gate, if the state DD exceeds NodeBudget nodes, shrink it back under
// the budget with ApproximateToSizeReplace. Unlike MemoryDriven's growing
// threshold, the budget is a fixed memory ceiling; the FidelityFloor bounds
// the cumulative damage instead — each round's loss allowance is what keeps
// the product of achieved round fidelities (a lower bound on the final
// fidelity by the composition lemma) above the floor, and once the floor is
// reached no further rounds run.
type ReplaceDriven struct {
	// NodeBudget is the node-count ceiling the state is shrunk back to.
	NodeBudget int
	// FidelityFloor is the cumulative fidelity the strategy refuses to go
	// below across all rounds; 0 means no floor.
	FidelityFloor float64
	// Kinds is the substitute preference order; nil selects
	// DefaultSubstitutes (collapse, then promote).
	Kinds []SubstituteKind

	fid       float64
	exhausted bool
}

// Name implements Strategy.
func (s *ReplaceDriven) Name() string { return "replace" }

// Init implements Strategy.
func (s *ReplaceDriven) Init(int, []int) error {
	if s.NodeBudget <= 0 {
		return fmt.Errorf("core: replace node budget %d must be positive", s.NodeBudget)
	}
	if s.FidelityFloor < 0 || s.FidelityFloor >= 1 {
		return fmt.Errorf("core: replace fidelity floor %v outside [0, 1)", s.FidelityFloor)
	}
	if len(s.Kinds) == 0 {
		s.Kinds = DefaultSubstitutes()
	}
	for _, k := range s.Kinds {
		if k != SubstituteCollapse && k != SubstitutePromote {
			return fmt.Errorf("core: unknown substitute kind %q", k)
		}
	}
	s.fid = 1
	s.exhausted = false
	return nil
}

// AchievedFidelity returns the product of achieved round fidelities so far,
// a guaranteed lower bound on the overall fidelity.
func (s *ReplaceDriven) AchievedFidelity() float64 { return s.fid }

// AfterGate implements Strategy.
func (s *ReplaceDriven) AfterGate(m *dd.Manager, gateIdx, size int, state dd.VEdge) (dd.VEdge, *Round, error) {
	if size <= s.NodeBudget || s.exhausted {
		return state, nil, nil
	}
	minRound := 0.0
	if s.FidelityFloor > 0 {
		minRound = s.FidelityFloor / s.fid
		if minRound >= 1 {
			s.exhausted = true
			return state, nil, nil
		}
	}
	ne, rep, err := ApproximateToSizeReplace(m, state, s.NodeBudget, minRound, s.Kinds)
	if err != nil {
		return state, nil, err
	}
	if rep.NoOp() {
		return state, nil, nil
	}
	s.fid *= rep.Achieved
	return ne, &Round{GateIndex: gateIdx, Report: rep}, nil
}
