package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// StrategyFactory builds a fresh Strategy from JSON-encoded parameters.
// Factories must return a new instance on every call (strategies are stateful
// per run) and should reject unknown fields or invalid parameters with an
// error; params may be nil or empty when the caller supplied none.
type StrategyFactory func(params json.RawMessage) (Strategy, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]StrategyFactory)
)

// RegisterStrategy makes a strategy constructible by name — in-process via
// NewStrategyByName and over HTTP via the simulation service's `strategy`
// field. Names are case-sensitive; registering an empty name, a nil factory,
// or a name already taken (including the builtins "exact", "memory",
// "fidelity") is an error. The registry is append-only and safe for
// concurrent use.
func RegisterStrategy(name string, factory StrategyFactory) error {
	if name == "" {
		return fmt.Errorf("core: strategy name must be non-empty")
	}
	if factory == nil {
		return fmt.Errorf("core: strategy %q registered with nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("core: strategy %q already registered", name)
	}
	registry[name] = factory
	return nil
}

// NewStrategyByName builds a fresh strategy instance from its registered
// factory. The empty name selects "exact". The returned strategy has not been
// Init'ed; the simulation driver does that at session start.
func NewStrategyByName(name string, params json.RawMessage) (Strategy, error) {
	if name == "" {
		name = "exact"
	}
	registryMu.RLock()
	factory := registry[name]
	registryMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("core: unknown strategy %q (registered: %v)", name, StrategyNames())
	}
	s, err := factory(params)
	if err != nil {
		return nil, fmt.Errorf("core: strategy %q: %w", name, err)
	}
	if s == nil {
		return nil, fmt.Errorf("core: strategy %q factory returned nil", name)
	}
	return s, nil
}

// StrategyNames returns every registered strategy name, sorted.
func StrategyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MemoryDrivenParams are the JSON parameters of the builtin "memory"
// strategy (Section IV-B). Zero values select MemoryDriven's defaults; the
// threshold itself is validated by Init.
type MemoryDrivenParams struct {
	Threshold     int     `json:"threshold"`
	RoundFidelity float64 `json:"round_fidelity"`
	Growth        float64 `json:"growth,omitempty"`
}

// FidelityDrivenParams are the JSON parameters of the builtin "fidelity"
// strategy (Section IV-C). PreferEarlyBlocks flips the default late-block
// placement; Locations overrides automatic placement entirely.
type FidelityDrivenParams struct {
	FinalFidelity     float64 `json:"final_fidelity"`
	RoundFidelity     float64 `json:"round_fidelity"`
	PreferEarlyBlocks bool    `json:"prefer_early_blocks,omitempty"`
	Locations         []int   `json:"locations,omitempty"`
}

// ReplaceDrivenParams are the JSON parameters of the builtin "replace"
// strategy (node replacement, arXiv 2507.04335). NodeBudget is required;
// FidelityFloor 0 means no floor; Kinds is the substitute preference order
// ("collapse", "promote"), defaulting to both in that order.
type ReplaceDrivenParams struct {
	NodeBudget    int      `json:"node_budget"`
	FidelityFloor float64  `json:"fidelity_floor,omitempty"`
	Kinds         []string `json:"kinds,omitempty"`
}

func decodeParams(params json.RawMessage, into any) error {
	if len(params) == 0 {
		return nil
	}
	return json.Unmarshal(params, into)
}

func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(RegisterStrategy("exact", func(params json.RawMessage) (Strategy, error) {
		return Exact{}, nil
	}))
	must(RegisterStrategy("memory", func(params json.RawMessage) (Strategy, error) {
		var p MemoryDrivenParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		return &MemoryDriven{Threshold: p.Threshold, RoundFidelity: p.RoundFidelity, Growth: p.Growth}, nil
	}))
	must(RegisterStrategy("replace", func(params json.RawMessage) (Strategy, error) {
		var p ReplaceDrivenParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		kinds, err := ParseSubstituteKinds(p.Kinds)
		if err != nil {
			return nil, err
		}
		return &ReplaceDriven{NodeBudget: p.NodeBudget, FidelityFloor: p.FidelityFloor, Kinds: kinds}, nil
	}))
	must(RegisterStrategy("fidelity", func(params json.RawMessage) (Strategy, error) {
		var p FidelityDrivenParams
		if err := decodeParams(params, &p); err != nil {
			return nil, err
		}
		return &FidelityDriven{
			FinalFidelity:    p.FinalFidelity,
			RoundFidelity:    p.RoundFidelity,
			PreferLateBlocks: !p.PreferEarlyBlocks,
			Locations:        p.Locations,
		}, nil
	}))
}
