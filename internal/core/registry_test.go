package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestBuiltinStrategiesRegistered(t *testing.T) {
	names := StrategyNames()
	for _, want := range []string{"exact", "memory", "fidelity"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q missing from registry: %v", want, names)
		}
	}
}

func TestNewStrategyByNameBuildsFreshInstances(t *testing.T) {
	params := json.RawMessage(`{"threshold": 64, "round_fidelity": 0.95}`)
	a, err := NewStrategyByName("memory", params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStrategyByName("memory", params)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("factory returned a shared instance; strategies are stateful per run")
	}
	md, ok := a.(*MemoryDriven)
	if !ok {
		t.Fatalf("memory strategy has type %T", a)
	}
	if md.Threshold != 64 || md.RoundFidelity != 0.95 {
		t.Errorf("params not applied: %+v", md)
	}
	if err := md.Init(100, nil); err != nil {
		t.Fatalf("built strategy rejects Init: %v", err)
	}
}

func TestNewStrategyByNameDefaults(t *testing.T) {
	s, err := NewStrategyByName("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "exact" {
		t.Errorf("empty name resolved to %q, want exact", s.Name())
	}
}

func TestNewStrategyByNameUnknown(t *testing.T) {
	_, err := NewStrategyByName("no-such-strategy", nil)
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if !strings.Contains(err.Error(), "exact") {
		t.Errorf("error should list registered names: %v", err)
	}
}

func TestNewStrategyByNameBadParams(t *testing.T) {
	if _, err := NewStrategyByName("memory", json.RawMessage(`{"threshold": "big"}`)); err == nil {
		t.Fatal("malformed params accepted")
	}
}

func TestFidelityParamsPlacementControls(t *testing.T) {
	s, err := NewStrategyByName("fidelity", json.RawMessage(
		`{"final_fidelity": 0.5, "round_fidelity": 0.9, "locations": [3, 7]}`))
	if err != nil {
		t.Fatal(err)
	}
	fd := s.(*FidelityDriven)
	if !fd.PreferLateBlocks {
		t.Error("late-block placement should be the default")
	}
	if err := fd.Init(20, nil); err != nil {
		t.Fatal(err)
	}
	if got := fd.PlannedLocations(); len(got) == 0 || got[0] != 3 {
		t.Errorf("explicit locations ignored: %v", got)
	}
}

func TestRegisterStrategyRejectsDuplicatesAndNil(t *testing.T) {
	if err := RegisterStrategy("exact", func(json.RawMessage) (Strategy, error) { return Exact{}, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterStrategy("", func(json.RawMessage) (Strategy, error) { return Exact{}, nil }); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterStrategy("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}
}
