package core

import (
	"fmt"

	"repro/internal/dd"
)

// Report describes one approximation round.
type Report struct {
	// Requested is the single-round target fidelity f_round; the achieved
	// fidelity is guaranteed to be ≥ Requested.
	Requested float64
	// Achieved is the exact fidelity between the state before and after the
	// round, F = |⟨ψ|ψ_I⟩|² = ‖P_I ψ‖², computed by inner product.
	Achieved float64
	// RemovedNodes is the number of nodes selected for removal.
	RemovedNodes int
	// ReplacedNodes is the number of nodes swapped for cheaper substitutes
	// by the replace pass (zero for delete-based rounds).
	ReplacedNodes int
	// RemovedMass is the sum of raw contributions of the removed nodes. It
	// over-counts overlapping paths, so 1−Achieved ≤ RemovedMass ≤ 1−Requested.
	RemovedMass float64
	// SizeBefore and SizeAfter are the DD node counts around the round.
	SizeBefore, SizeAfter int
}

// NoOp reports whether the round left the state untouched.
func (r Report) NoOp() bool { return r.RemovedNodes == 0 && r.ReplacedNodes == 0 }

// ApproximateToFidelity removes the smallest-contribution nodes from the
// state whose total contribution fits within the budget 1−fround, rescales
// (Eq. (1)), and returns the approximated state together with a Report.
//
// The achieved fidelity is guaranteed to be at least fround: the sum of raw
// node contributions upper-bounds the removed amplitude mass (shared paths
// are counted once per killed node), so staying within budget keeps
// ‖P_I ψ‖² ≥ fround.
func ApproximateToFidelity(m *dd.Manager, e dd.VEdge, fround float64) (dd.VEdge, Report, error) {
	if fround <= 0 || fround > 1 {
		return e, Report{}, fmt.Errorf("core: round fidelity %v outside (0, 1]", fround)
	}
	budget := 1 - fround
	sizeBefore := m.CountV(e)
	rep := Report{Requested: fround, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	if m.IsVZero(e) || budget == 0 {
		return e, rep, nil
	}
	sc := getScratch()
	defer putScratch(sc)
	contributionsInto(m, e, sc)
	// Greedily take nodes by ascending contribution while the total raw
	// contribution stays within the budget. The root is never a candidate;
	// ties break on node id for determinism.
	cands := sc.sortedCandidates(e.N)
	limit, total := 0, 0.0
	const slack = 1e-12 // tolerate float summation error at the boundary
	for _, cand := range cands {
		if total+cand.c > budget+slack {
			break
		}
		total += cand.c
		limit++
	}
	ne, removed, mass := removeWithBackoff(m, e, sc, cands, limit)
	if removed == 0 {
		return e, rep, nil
	}
	rep.RemovedNodes = removed
	rep.RemovedMass = mass
	rep.Achieved = m.Fidelity(e, ne)
	rep.SizeAfter = m.CountV(ne)
	return ne, rep, nil
}

// ApproximateBelowContribution removes every node whose contribution is
// strictly below minContrib (the absolute-threshold variant of [27]); the
// fidelity loss is reported but not bounded a priori. Used by the ablation
// benches.
func ApproximateBelowContribution(m *dd.Manager, e dd.VEdge, minContrib float64) (dd.VEdge, Report, error) {
	sizeBefore := m.CountV(e)
	rep := Report{Requested: 0, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	if m.IsVZero(e) {
		return e, rep, nil
	}
	sc := getScratch()
	defer putScratch(sc)
	contributionsInto(m, e, sc)
	for n, c := range sc.contrib {
		if c < minContrib && n != e.N {
			sc.kill[n] = true
			rep.RemovedMass += c
		}
	}
	if len(sc.kill) == 0 {
		return e, rep, nil
	}
	ne := removeNodes(m, e, sc.kill, sc.memo)
	if m.IsVZero(ne) {
		return e, rep, fmt.Errorf("core: contribution threshold %v removed the entire state", minContrib)
	}
	rep.RemovedNodes = len(sc.kill)
	rep.Achieved = m.Fidelity(e, ne)
	rep.SizeAfter = m.CountV(ne)
	return ne, rep, nil
}

// RemoveNodes rebuilds the state DD with every node in kill replaced by the
// zero vector, then renormalizes to unit norm preserving the root phase.
// This realizes the truncation |ψ_I⟩ = P_I|ψ⟩ / ‖P_I|ψ⟩‖ of Eq. (1) with I
// the set of basis states whose paths avoid the killed nodes.
func RemoveNodes(m *dd.Manager, e dd.VEdge, kill map[*dd.VNode]bool) dd.VEdge {
	return removeNodes(m, e, kill, make(map[*dd.VNode]dd.VEdge))
}
