package core

import (
	"fmt"
	"sort"

	"repro/internal/dd"
)

// Report describes one approximation round.
type Report struct {
	// Requested is the single-round target fidelity f_round; the achieved
	// fidelity is guaranteed to be ≥ Requested.
	Requested float64
	// Achieved is the exact fidelity between the state before and after the
	// round, F = |⟨ψ|ψ_I⟩|² = ‖P_I ψ‖², computed by inner product.
	Achieved float64
	// RemovedNodes is the number of nodes selected for removal.
	RemovedNodes int
	// RemovedMass is the sum of raw contributions of the removed nodes. It
	// over-counts overlapping paths, so 1−Achieved ≤ RemovedMass ≤ 1−Requested.
	RemovedMass float64
	// SizeBefore and SizeAfter are the DD node counts around the round.
	SizeBefore, SizeAfter int
}

// NoOp reports whether the round left the state untouched.
func (r Report) NoOp() bool { return r.RemovedNodes == 0 }

// ApproximateToFidelity removes the smallest-contribution nodes from the
// state whose total contribution fits within the budget 1−fround, rescales
// (Eq. (1)), and returns the approximated state together with a Report.
//
// The achieved fidelity is guaranteed to be at least fround: the sum of raw
// node contributions upper-bounds the removed amplitude mass (shared paths
// are counted once per killed node), so staying within budget keeps
// ‖P_I ψ‖² ≥ fround.
func ApproximateToFidelity(m *dd.Manager, e dd.VEdge, fround float64) (dd.VEdge, Report, error) {
	if fround <= 0 || fround > 1 {
		return e, Report{}, fmt.Errorf("core: round fidelity %v outside (0, 1]", fround)
	}
	budget := 1 - fround
	sizeBefore := dd.CountVNodes(e)
	rep := Report{Requested: fround, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	if m.IsVZero(e) || budget == 0 {
		return e, rep, nil
	}
	contribs := Contributions(m, e)
	kill := selectKillSet(e, contribs, budget)
	if len(kill) == 0 {
		return e, rep, nil
	}
	ne := RemoveNodes(m, e, kill)
	if m.IsVZero(ne) {
		return e, rep, fmt.Errorf("core: approximation removed the entire state (budget %v)", budget)
	}
	rep.RemovedNodes = len(kill)
	for n := range kill {
		rep.RemovedMass += contribs[n]
	}
	rep.Achieved = m.Fidelity(e, ne)
	rep.SizeAfter = dd.CountVNodes(ne)
	return ne, rep, nil
}

// ApproximateBelowContribution removes every node whose contribution is
// strictly below minContrib (the absolute-threshold variant of [27]); the
// fidelity loss is reported but not bounded a priori. Used by the ablation
// benches.
func ApproximateBelowContribution(m *dd.Manager, e dd.VEdge, minContrib float64) (dd.VEdge, Report, error) {
	sizeBefore := dd.CountVNodes(e)
	rep := Report{Requested: 0, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	if m.IsVZero(e) {
		return e, rep, nil
	}
	contribs := Contributions(m, e)
	kill := make(map[*dd.VNode]bool)
	for n, c := range contribs {
		if c < minContrib && n != e.N {
			kill[n] = true
			rep.RemovedMass += c
		}
	}
	if len(kill) == 0 {
		return e, rep, nil
	}
	ne := RemoveNodes(m, e, kill)
	if m.IsVZero(ne) {
		return e, rep, fmt.Errorf("core: contribution threshold %v removed the entire state", minContrib)
	}
	rep.RemovedNodes = len(kill)
	rep.Achieved = m.Fidelity(e, ne)
	rep.SizeAfter = dd.CountVNodes(ne)
	return ne, rep, nil
}

// selectKillSet greedily picks nodes by ascending contribution while the
// total raw contribution stays within the budget. The root is never
// eligible. Ties break on node id for determinism.
func selectKillSet(e dd.VEdge, contribs map[*dd.VNode]float64, budget float64) map[*dd.VNode]bool {
	type nc struct {
		n *dd.VNode
		c float64
	}
	cands := make([]nc, 0, len(contribs))
	for n, c := range contribs {
		if n == e.N {
			continue
		}
		cands = append(cands, nc{n, c})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].c != cands[j].c {
			return cands[i].c < cands[j].c
		}
		return cands[i].n.ID() < cands[j].n.ID()
	})
	kill := make(map[*dd.VNode]bool)
	total := 0.0
	const slack = 1e-12 // tolerate float summation error at the boundary
	for _, cand := range cands {
		if total+cand.c > budget+slack {
			break
		}
		kill[cand.n] = true
		total += cand.c
	}
	return kill
}

// RemoveNodes rebuilds the state DD with every node in kill replaced by the
// zero vector, then renormalizes to unit norm preserving the root phase.
// This realizes the truncation |ψ_I⟩ = P_I|ψ⟩ / ‖P_I|ψ⟩‖ of Eq. (1) with I
// the set of basis states whose paths avoid the killed nodes.
func RemoveNodes(m *dd.Manager, e dd.VEdge, kill map[*dd.VNode]bool) dd.VEdge {
	if m.IsVZero(e) {
		return e
	}
	memo := make(map[*dd.VNode]dd.VEdge)
	var rebuild func(n *dd.VNode) dd.VEdge
	rebuild = func(n *dd.VNode) dd.VEdge {
		if n.IsTerminal() {
			return dd.VEdge{W: m.CN.One, N: m.VTerminal()}
		}
		if kill[n] {
			return m.VZero()
		}
		if res, ok := memo[n]; ok {
			return res
		}
		var children [2]dd.VEdge
		for i := 0; i < 2; i++ {
			child := n.E[i]
			if child.W.Abs2() == 0 {
				children[i] = m.VZero()
				continue
			}
			sub := rebuild(child.N)
			children[i] = m.ScaleV(sub, child.W.Complex())
		}
		res := m.MakeVNode(n.Var, children[0], children[1])
		memo[n] = res
		return res
	}
	root := rebuild(e.N)
	if m.IsVZero(root) {
		return root
	}
	// Re-apply the original root weight, then renormalize: the rebuild has
	// folded the surviving mass ‖P_I ψ‖ into the root weight.
	final := m.ScaleV(root, e.W.Complex())
	return m.NormalizeRootWeight(final)
}
