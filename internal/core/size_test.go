package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dd"
)

func TestApproximateToSizeReachesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 15; trial++ {
		m := dd.New()
		n := 6 + rng.Intn(4)
		e := randomState(t, m, n, 1.0, rng)
		before := dd.CountVNodes(e)
		target := before / (2 + rng.Intn(3))
		if target < n {
			target = n
		}
		ne, rep, err := ApproximateToSize(m, e, target)
		if err != nil {
			t.Fatal(err)
		}
		after := dd.CountVNodes(ne)
		// Unsharing can leave a small overshoot after the pass budget, but
		// the bulk of the reduction must happen.
		if after > target+target/4 {
			t.Errorf("n=%d: size %d -> %d, target %d", n, before, after, target)
		}
		if rep.SizeAfter != after {
			t.Errorf("report size %d != measured %d", rep.SizeAfter, after)
		}
		if f := m.Fidelity(e, ne); math.Abs(f-rep.Achieved) > 1e-9 {
			t.Errorf("reported fidelity %v != exact %v", rep.Achieved, f)
		}
		if norm := m.Norm(ne); math.Abs(norm-1) > 1e-9 {
			t.Errorf("result not normalized: %v", norm)
		}
	}
}

func TestApproximateToSizeNoOpWhenSmall(t *testing.T) {
	m := dd.New()
	e := m.BasisState(5, 3)
	ne, rep, err := ApproximateToSize(m, e, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ne != e || !rep.NoOp() || rep.Achieved != 1 {
		t.Error("small DD was modified")
	}
}

func TestApproximateToSizeValidation(t *testing.T) {
	m := dd.New()
	e := m.BasisState(3, 0)
	if _, _, err := ApproximateToSize(m, e, 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestApproximateToSizeKeepsDominantMass(t *testing.T) {
	// A state with one dominant amplitude and much small noise: shrinking
	// hard must keep the dominant basis state.
	m := dd.New()
	rng := rand.New(rand.NewSource(101))
	n := 8
	vec := make([]complex128, 1<<uint(n))
	for i := range vec {
		vec[i] = complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
	}
	vec[137] = 1
	var norm float64
	for _, a := range vec {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	for i := range vec {
		vec[i] /= complex(math.Sqrt(norm), 0)
	}
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	ne, rep, err := ApproximateToSize(m, e, n+2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoOp() {
		t.Fatal("nothing removed")
	}
	if p := m.Probability(ne, 137, n); p < 0.9 {
		t.Errorf("dominant amplitude lost: P = %v", p)
	}
}
