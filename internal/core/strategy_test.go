package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dd"
)

func TestMemoryDrivenThresholdDoubling(t *testing.T) {
	m := dd.New()
	rng := rand.New(rand.NewSource(70))
	s := &MemoryDriven{Threshold: 4, RoundFidelity: 0.9}
	if err := s.Init(100, nil); err != nil {
		t.Fatal(err)
	}
	if s.CurrentThreshold() != 4 {
		t.Fatalf("initial threshold %d", s.CurrentThreshold())
	}
	// A dense random state on 6 qubits exceeds 4 nodes.
	e := randomState(t, m, 6, 1.0, rng)
	size := dd.CountVNodes(e)
	ne, round, err := s.AfterGate(m, 0, size, e)
	if err != nil {
		t.Fatal(err)
	}
	if round == nil {
		t.Fatal("approximation did not trigger above threshold")
	}
	if s.CurrentThreshold() != 8 {
		t.Errorf("threshold after round = %d, want 8 (doubled)", s.CurrentThreshold())
	}
	if round.Report.Achieved < 0.9-1e-9 {
		t.Errorf("round fidelity %v below target", round.Report.Achieved)
	}
	if dd.CountVNodes(ne) >= size {
		t.Error("state did not shrink")
	}
	// Below threshold: no trigger.
	small := m.BasisState(6, 0)
	_, round, err = s.AfterGate(m, 1, dd.CountVNodes(small), small)
	if err != nil {
		t.Fatal(err)
	}
	if round != nil {
		t.Error("approximation triggered below threshold")
	}
}

func TestMemoryDrivenValidation(t *testing.T) {
	if err := (&MemoryDriven{Threshold: 0, RoundFidelity: 0.9}).Init(1, nil); err == nil {
		t.Error("zero threshold accepted")
	}
	if err := (&MemoryDriven{Threshold: 10, RoundFidelity: 0}).Init(1, nil); err == nil {
		t.Error("zero fidelity accepted")
	}
	if err := (&MemoryDriven{Threshold: 10, RoundFidelity: 0.9, Growth: 0.5}).Init(1, nil); err == nil {
		t.Error("shrinking growth accepted")
	}
}

func TestFidelityDrivenMaxRounds(t *testing.T) {
	// Paper Section IV-C / Table I: f_final = 0.5, f_round = 0.9 → 6 rounds.
	s := NewFidelityDriven(0.5, 0.9)
	if got := s.MaxRounds(); got != 6 {
		t.Errorf("MaxRounds(0.5, 0.9) = %d, want 6", got)
	}
	// 0.9^6 ≈ 0.531 ≥ 0.5; one more round would violate the bound.
	if math.Pow(0.9, float64(s.MaxRounds())) < s.FinalFidelity {
		t.Error("MaxRounds violates the guarantee")
	}
	if math.Pow(0.9, float64(s.MaxRounds()+1)) >= s.FinalFidelity {
		t.Error("MaxRounds is not maximal")
	}
	if got := NewFidelityDriven(0.5, 0.99).MaxRounds(); got != 68 {
		t.Errorf("MaxRounds(0.5, 0.99) = %d, want 68", got)
	}
}

func TestFidelityDrivenValidation(t *testing.T) {
	if err := NewFidelityDriven(0, 0.9).Init(10, nil); err == nil {
		t.Error("zero final fidelity accepted")
	}
	if err := NewFidelityDriven(0.9, 0.5).Init(10, nil); err == nil {
		t.Error("round fidelity below final accepted")
	}
	if err := NewFidelityDriven(0.5, 0.9).Init(10, nil); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPlanRoundsWithBlocks(t *testing.T) {
	blocks := []int{9, 19, 29, 39, 49, 59, 69, 79}
	got := PlanRounds(100, blocks, 3, true)
	if !reflect.DeepEqual(got, []int{59, 69, 79}) {
		t.Errorf("late-block plan = %v", got)
	}
	got = PlanRounds(100, blocks, 3, false)
	if !reflect.DeepEqual(got, []int{9, 19, 29}) {
		t.Errorf("early-block plan = %v", got)
	}
	// Fewer boundaries than rounds: use all of them.
	got = PlanRounds(100, []int{10, 20}, 5, true)
	if !reflect.DeepEqual(got, []int{10, 20}) {
		t.Errorf("all-blocks plan = %v", got)
	}
}

func TestPlanRoundsEvenSpacing(t *testing.T) {
	got := PlanRounds(100, nil, 4, true)
	if len(got) != 4 {
		t.Fatalf("plan = %v", got)
	}
	for i, idx := range got {
		if idx < 0 || idx >= 99 {
			t.Errorf("plan[%d] = %d out of range", i, idx)
		}
		if i > 0 && idx <= got[i-1] {
			t.Errorf("plan not strictly increasing: %v", got)
		}
	}
	// Boundary at the final gate is dropped (nothing follows it).
	got = PlanRounds(10, []int{9}, 1, true)
	if len(got) != 1 || got[0] == 9 {
		t.Errorf("final-gate boundary not handled: %v", got)
	}
	if PlanRounds(0, nil, 3, true) != nil {
		t.Error("plan for empty circuit not nil")
	}
	if PlanRounds(10, nil, 0, true) != nil {
		t.Error("plan for zero rounds not nil")
	}
}

func TestFidelityDrivenSchedule(t *testing.T) {
	m := dd.New()
	rng := rand.New(rand.NewSource(71))
	s := NewFidelityDriven(0.5, 0.9)
	if err := s.Init(50, []int{10, 20, 30, 40, 45, 47, 48}); err != nil {
		t.Fatal(err)
	}
	locs := s.PlannedLocations()
	if len(locs) != 6 {
		t.Fatalf("planned %d rounds, want 6", len(locs))
	}
	e := randomState(t, m, 7, 0.9, rng)
	// Unscheduled index: no-op.
	_, round, err := s.AfterGate(m, 5, dd.CountVNodes(e), e)
	if err != nil {
		t.Fatal(err)
	}
	if round != nil {
		t.Error("round ran at unscheduled gate")
	}
	// Scheduled index: runs.
	_, round, err = s.AfterGate(m, locs[0], dd.CountVNodes(e), e)
	if err != nil {
		t.Fatal(err)
	}
	if round == nil {
		t.Error("round did not run at scheduled gate")
	}
}

func TestExactStrategyIsNoOp(t *testing.T) {
	m := dd.New()
	var s Exact
	if err := s.Init(10, nil); err != nil {
		t.Fatal(err)
	}
	e := m.BasisState(3, 1)
	ne, round, err := s.AfterGate(m, 0, 3, e)
	if err != nil || round != nil || ne != e {
		t.Error("Exact strategy modified the state")
	}
	if s.Name() != "exact" {
		t.Error("name")
	}
}

func TestFidelityTrackerProduct(t *testing.T) {
	tr := NewFidelityTracker()
	if tr.Achieved() != 1 || tr.Bound() != 1 || tr.Count() != 0 {
		t.Fatal("fresh tracker not at fidelity 1")
	}
	tr.Record(Round{GateIndex: 3, Report: Report{Requested: 0.9, Achieved: 0.95}})
	tr.Record(Round{GateIndex: 7, Report: Report{Requested: 0.9, Achieved: 0.92}})
	if math.Abs(tr.Achieved()-0.95*0.92) > 1e-15 {
		t.Errorf("achieved product %v", tr.Achieved())
	}
	if math.Abs(tr.Bound()-0.81) > 1e-15 {
		t.Errorf("bound product %v", tr.Bound())
	}
	if tr.Count() != 2 || len(tr.Rounds()) != 2 {
		t.Error("round bookkeeping wrong")
	}
}
