package core

import (
	"testing"

	"repro/internal/dd"
)

// Regression: in this state the four smallest-contribution nodes are all of
// level 1 — a full level cut. Killing them removes every path (true removed
// mass exactly 1) while their summed contributions land one ulp below the
// <1 guard, so the single-shot rebuild produced the zero state and
// ApproximateToSize errored. The removal now backs off to a smaller kill
// prefix instead.
func TestApproximateToSizeLevelCutBackoff(t *testing.T) {
	vec := []complex128{0, 0, 0, 0.1841756497840385 + 0.4322476989581267i,
		0.21068305193683035 + 0.07251403439625055i, 0, 0.4493079660395935 + 0.16302094040069626i, 0,
		-0.15369462899885028 + 0.24842399774520801i, 0, 0, 0.3663640018625997 + 0.36608900899315083i,
		0, -0.2545526701251826 - 0.16486589505397525i, -0.06480720039412846 - 0.2266805757239144i, 0}
	m := dd.New()
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	before := dd.CountVNodes(e)
	target := before/2 + 1
	ne, rep, err := ApproximateToSize(m, e, target)
	if err != nil {
		t.Fatalf("ApproximateToSize: %v", err)
	}
	if m.IsVZero(ne) {
		t.Fatal("approximation removed the entire state")
	}
	after := dd.CountVNodes(ne)
	if after > before {
		t.Errorf("size grew: %d -> %d", before, after)
	}
	if rep.SizeAfter != after {
		t.Errorf("rep.SizeAfter = %d, actual %d", rep.SizeAfter, after)
	}
	if rep.Achieved <= 0 || rep.Achieved > 1+1e-9 {
		t.Errorf("achieved fidelity %v outside (0, 1]", rep.Achieved)
	}
}
