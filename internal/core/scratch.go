package core

import (
	"cmp"
	"slices"
	"sync"

	"repro/internal/dd"
)

// Per-round working memory of the approximation pipeline. A single
// approximation round walks the state several times (contribution
// propagation, kill-set selection, rebuild memoization); at hundreds of
// rounds per job the per-round maps dominated the engine's allocation
// profile, so rounds draw their scratch from a pool instead. The pool is
// GC-aware (sync.Pool drops retained scratch under memory pressure) and safe
// for concurrent batch workers.
type approxScratch struct {
	contrib map[*dd.VNode]float64
	kill    map[*dd.VNode]bool
	repl    map[*dd.VNode]SubstituteKind
	memo    map[*dd.VNode]dd.VEdge
	seen    map[*dd.VNode]struct{}
	nodes   []*dd.VNode
	cands   []nodeContrib
}

type nodeContrib struct {
	n *dd.VNode
	c float64
}

var scratchPool = sync.Pool{
	New: func() any {
		return &approxScratch{
			contrib: make(map[*dd.VNode]float64, 256),
			kill:    make(map[*dd.VNode]bool, 64),
			repl:    make(map[*dd.VNode]SubstituteKind, 64),
			memo:    make(map[*dd.VNode]dd.VEdge, 256),
			seen:    make(map[*dd.VNode]struct{}, 256),
		}
	},
}

func getScratch() *approxScratch { return scratchPool.Get().(*approxScratch) }

// putScratch clears (keeping buckets and backing arrays) and repools.
func putScratch(s *approxScratch) {
	clear(s.contrib)
	clear(s.kill)
	clear(s.repl)
	clear(s.memo)
	clear(s.seen)
	s.nodes = s.nodes[:0]
	s.cands = s.cands[:0]
	scratchPool.Put(s)
}

// reuse clears the round-local state so one scratch serves several passes
// within a call (ApproximateToSize's removal passes).
func (s *approxScratch) reuse() {
	clear(s.contrib)
	clear(s.kill)
	clear(s.repl)
	clear(s.memo)
	clear(s.seen)
	s.nodes = s.nodes[:0]
	s.cands = s.cands[:0]
}

// collect appends every distinct non-terminal node reachable from n to
// s.nodes, in the same depth-first order as dd.CollectVNodes (determinism:
// the contribution propagation sorts this slice, and sort order ties break
// on input order).
func (s *approxScratch) collect(n *dd.VNode) {
	if n == nil || n.IsTerminal() {
		return
	}
	if _, ok := s.seen[n]; ok {
		return
	}
	s.seen[n] = struct{}{}
	s.nodes = append(s.nodes, n)
	s.collect(n.E[0].N)
	s.collect(n.E[1].N)
}

// contributionsInto computes Definition 2's per-node contributions into
// s.contrib (see Contributions for the semantics). s must be freshly cleared.
func contributionsInto(m *dd.Manager, e dd.VEdge, s *approxScratch) {
	if m.IsVZero(e) || e.N == nil || e.N.IsTerminal() {
		return
	}
	s.collect(e.N)
	nodes := s.nodes
	// Propagate in level order (parents strictly above children); the ID
	// tie-break makes the within-level order — and hence the float summation
	// order into shared children — a total order independent of the sort
	// algorithm. slices.SortFunc avoids sort.Slice's per-call reflection
	// allocations on this per-round hot path.
	slices.SortFunc(nodes, func(a, b *dd.VNode) int {
		if a.Var != b.Var {
			return cmp.Compare(b.Var, a.Var)
		}
		return cmp.Compare(a.ID(), b.ID())
	})
	s.contrib[e.N] = e.W.Abs2()
	for _, n := range nodes {
		c := s.contrib[n]
		if c == 0 {
			continue
		}
		for idx := 0; idx < 2; idx++ {
			child := n.E[idx]
			if child.N == nil || child.N.IsTerminal() || child.W.Abs2() == 0 {
				continue
			}
			s.contrib[child.N] += c * child.W.Abs2()
		}
	}
}

// sortedCandidates fills s.cands with every contributing node except the
// root, sorted ascending by contribution with node-id tie-breaks for
// determinism (map iteration order must never reach the result).
func (s *approxScratch) sortedCandidates(root *dd.VNode) []nodeContrib {
	for n, c := range s.contrib {
		if n == root {
			continue
		}
		s.cands = append(s.cands, nodeContrib{n, c})
	}
	slices.SortFunc(s.cands, func(a, b nodeContrib) int {
		if a.c != b.c {
			return cmp.Compare(a.c, b.c)
		}
		return cmp.Compare(a.n.ID(), b.n.ID())
	})
	return s.cands
}

// removeWithBackoff removes the first limit candidates from the state,
// halving the prefix and rebuilding whenever the removal zeroes the state:
// a kill set whose total raw contribution stays below 1 can still cover
// every root-to-terminal path when the union bound is tight — killing all
// nodes of one level has true removed mass exactly 1, and float summation
// can land its contribution total one ulp below the guard. It returns the
// rebuilt state with the removed-node count and mass; a zero count means
// even a single-node removal zeroes the state and e is returned unchanged.
// Uses s.kill and s.memo; s.contrib/s.cands are left intact.
func removeWithBackoff(m *dd.Manager, e dd.VEdge, s *approxScratch, cands []nodeContrib, limit int) (dd.VEdge, int, float64) {
	for limit > 0 {
		clear(s.kill)
		clear(s.memo)
		mass := 0.0
		for _, cand := range cands[:limit] {
			s.kill[cand.n] = true
			mass += cand.c
		}
		if ne := removeNodes(m, e, s.kill, s.memo); !m.IsVZero(ne) {
			return ne, limit, mass
		}
		limit /= 2
	}
	return e, 0, 0
}

// removeNodes is RemoveNodes with a caller-provided rebuild memo.
func removeNodes(m *dd.Manager, e dd.VEdge, kill map[*dd.VNode]bool, memo map[*dd.VNode]dd.VEdge) dd.VEdge {
	if m.IsVZero(e) {
		return e
	}
	var rebuild func(n *dd.VNode) dd.VEdge
	rebuild = func(n *dd.VNode) dd.VEdge {
		if n.IsTerminal() {
			return dd.VEdge{W: m.CN.One, N: m.VTerminal()}
		}
		if kill[n] {
			return m.VZero()
		}
		if res, ok := memo[n]; ok {
			return res
		}
		var children [2]dd.VEdge
		for i := 0; i < 2; i++ {
			child := n.E[i]
			if child.W.Abs2() == 0 {
				children[i] = m.VZero()
				continue
			}
			sub := rebuild(child.N)
			children[i] = m.ScaleV(sub, child.W.Complex())
		}
		res := m.MakeVNode(n.Var, children[0], children[1])
		memo[n] = res
		return res
	}
	root := rebuild(e.N)
	if m.IsVZero(root) {
		return root
	}
	// Re-apply the original root weight, then renormalize: the rebuild has
	// folded the surviving mass ‖P_I ψ‖ into the root weight.
	final := m.ScaleV(root, e.W.Complex())
	return m.NormalizeRootWeight(final)
}
