package core

// ReorderPolicy is a strategy's variable-ordering request, read by the
// simulation session before the initial state is built (static part) and at
// the between-gate safe point (dynamic part). The policy names an ordering
// rather than carrying a permutation because computing one needs the
// circuit, which strategies never see — the session resolves the name
// through the ordering package.
type ReorderPolicy struct {
	// Static names the qubit→level ordering installed at session start:
	// "identity", "reversed", or "scored" (gate-locality heuristic). Empty
	// keeps the manager's current order.
	Static string
	// Sift enables dynamic sifting passes at the between-gate safe point.
	Sift bool
	// SiftThreshold is the state-DD node count that triggers a pass
	// (0 = 4096). After a pass the effective threshold grows so a workload
	// sifting cannot compress is not re-sifted after every gate.
	SiftThreshold int
	// SiftMaxPasses caps the passes per run (0 = 2).
	SiftMaxPasses int
	// SiftMaxVars caps the qubits sifted per pass, widest level first
	// (0 = all).
	SiftMaxVars int
}

// Reorderer is implemented by strategies that request variable reordering.
// The simulation driver queries it once after Strategy.Init; strategies that
// do not implement it run under the manager's current (normally identity)
// order.
type Reorderer interface {
	ReorderPolicy() ReorderPolicy
}
