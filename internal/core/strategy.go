package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dd"
)

// Round records one approximation round applied during simulation.
type Round struct {
	GateIndex int // gate after which the round ran (0-based)
	Report    Report
}

// Strategy decides when to approximate during simulation. Implementations
// are stateful per run; Init is called once before the first gate.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Init receives the total gate count and the sorted gate indices of
	// block boundaries (circuit positions after which a logical block ends).
	Init(totalGates int, blocks []int) error
	// AfterGate is called after gate gateIdx has been applied; size is the
	// current node count of the state DD. A nil Round means no
	// approximation was performed; otherwise the returned edge replaces the
	// state.
	AfterGate(m *dd.Manager, gateIdx, size int, state dd.VEdge) (dd.VEdge, *Round, error)
}

// Exact is the no-approximation strategy (the paper's reference baseline).
type Exact struct{}

// Name implements Strategy.
func (Exact) Name() string { return "exact" }

// Init implements Strategy.
func (Exact) Init(int, []int) error { return nil }

// AfterGate implements Strategy.
func (Exact) AfterGate(_ *dd.Manager, _, _ int, state dd.VEdge) (dd.VEdge, *Round, error) {
	return state, nil, nil
}

// MemoryDriven is the reactive strategy of Section IV-B: after each gate, if
// the state DD exceeds Threshold nodes, approximate to RoundFidelity and
// multiply the threshold by Growth (the paper doubles it) so the number of
// rounds stays bounded.
type MemoryDriven struct {
	// Threshold is the initial node-count threshold.
	Threshold int
	// RoundFidelity is the per-round target fidelity f_round.
	RoundFidelity float64
	// Growth is the threshold multiplier applied after every round;
	// 0 means the paper's default of 2.
	Growth float64

	current int
}

// Name implements Strategy.
func (s *MemoryDriven) Name() string { return "memory-driven" }

// Init implements Strategy.
func (s *MemoryDriven) Init(int, []int) error {
	if s.Threshold <= 0 {
		return fmt.Errorf("core: memory-driven threshold %d must be positive", s.Threshold)
	}
	if s.RoundFidelity <= 0 || s.RoundFidelity > 1 {
		return fmt.Errorf("core: memory-driven round fidelity %v outside (0, 1]", s.RoundFidelity)
	}
	if s.Growth == 0 {
		s.Growth = 2
	}
	if s.Growth < 1 {
		return fmt.Errorf("core: memory-driven growth %v must be ≥ 1", s.Growth)
	}
	s.current = s.Threshold
	return nil
}

// CurrentThreshold returns the active (possibly grown) threshold.
func (s *MemoryDriven) CurrentThreshold() int { return s.current }

// AfterGate implements Strategy.
func (s *MemoryDriven) AfterGate(m *dd.Manager, gateIdx, size int, state dd.VEdge) (dd.VEdge, *Round, error) {
	if size <= s.current {
		return state, nil, nil
	}
	ne, rep, err := ApproximateToFidelity(m, state, s.RoundFidelity)
	if err != nil {
		return state, nil, err
	}
	s.current = int(math.Ceil(float64(s.current) * s.Growth))
	if rep.NoOp() {
		// Nothing removable within budget; the grown threshold avoids
		// re-trying after every subsequent gate.
		return state, nil, nil
	}
	return ne, &Round{GateIndex: gateIdx, Report: rep}, nil
}

// FidelityDriven is the proactive strategy of Section IV-C: given a minimum
// final fidelity f_final and per-round fidelity f_round, at most
// ⌊log_{f_round}(f_final)⌋ rounds are planned up front, placed at block
// boundaries when available (for Shor: during the inverse QFT) and evenly
// spaced otherwise.
type FidelityDriven struct {
	// FinalFidelity is the guaranteed lower bound f_final for the end state.
	FinalFidelity float64
	// RoundFidelity is the per-round target f_round.
	RoundFidelity float64
	// PreferLateBlocks selects the last block boundaries (where, e.g.,
	// Shor's inverse QFT lives) rather than the first ones. Default true in
	// NewFidelityDriven.
	PreferLateBlocks bool
	// Locations, when non-empty, overrides automatic placement with
	// explicit gate indices (the paper's "exploiting knowledge of the
	// algorithm" mode: Shor places rounds across the inverse QFT). When
	// more locations than rounds are given, an evenly spaced subset is
	// used so the rounds cover the whole region.
	Locations []int

	schedule map[int]bool
	planned  []int
}

// NewFidelityDriven returns a fidelity-driven strategy with the paper's
// placement preference (late blocks).
func NewFidelityDriven(finalFidelity, roundFidelity float64) *FidelityDriven {
	return &FidelityDriven{
		FinalFidelity:    finalFidelity,
		RoundFidelity:    roundFidelity,
		PreferLateBlocks: true,
	}
}

// Name implements Strategy.
func (s *FidelityDriven) Name() string { return "fidelity-driven" }

// MaxRounds returns ⌊log_{f_round}(f_final)⌋, the largest round count that
// keeps the guaranteed product fidelity above f_final (Section IV-C).
func (s *FidelityDriven) MaxRounds() int {
	if s.RoundFidelity >= 1 {
		return 0
	}
	return int(math.Floor(math.Log(s.FinalFidelity) / math.Log(s.RoundFidelity)))
}

// Init implements Strategy.
func (s *FidelityDriven) Init(totalGates int, blocks []int) error {
	if s.FinalFidelity <= 0 || s.FinalFidelity > 1 {
		return fmt.Errorf("core: final fidelity %v outside (0, 1]", s.FinalFidelity)
	}
	if s.RoundFidelity <= 0 || s.RoundFidelity > 1 {
		return fmt.Errorf("core: round fidelity %v outside (0, 1]", s.RoundFidelity)
	}
	if s.RoundFidelity < s.FinalFidelity {
		return fmt.Errorf("core: round fidelity %v below final fidelity %v (a single round would already violate the bound)",
			s.RoundFidelity, s.FinalFidelity)
	}
	rounds := s.MaxRounds()
	if len(s.Locations) > 0 {
		s.planned = spreadLocations(s.Locations, totalGates, rounds)
	} else {
		s.planned = PlanRounds(totalGates, blocks, rounds, s.PreferLateBlocks)
	}
	s.schedule = make(map[int]bool, len(s.planned))
	for _, idx := range s.planned {
		s.schedule[idx] = true
	}
	return nil
}

// spreadLocations filters explicit locations to valid gate indices and,
// when there are more candidates than rounds, picks an evenly spaced subset
// covering the whole candidate range (always including the last location).
func spreadLocations(locations []int, totalGates, rounds int) []int {
	if rounds <= 0 {
		return nil
	}
	seen := make(map[int]bool)
	var cand []int
	for _, l := range locations {
		if l >= 0 && l < totalGates-1 && !seen[l] {
			seen[l] = true
			cand = append(cand, l)
		}
	}
	sort.Ints(cand)
	if len(cand) <= rounds {
		return cand
	}
	out := make([]int, 0, rounds)
	for k := 0; k < rounds; k++ {
		idx := (k + 1) * len(cand) / rounds
		pick := cand[idx-1]
		if len(out) == 0 || out[len(out)-1] != pick {
			out = append(out, pick)
		}
	}
	return out
}

// PlannedLocations returns the gate indices after which rounds will run.
func (s *FidelityDriven) PlannedLocations() []int {
	out := make([]int, len(s.planned))
	copy(out, s.planned)
	return out
}

// AfterGate implements Strategy.
func (s *FidelityDriven) AfterGate(m *dd.Manager, gateIdx, size int, state dd.VEdge) (dd.VEdge, *Round, error) {
	if !s.schedule[gateIdx] {
		return state, nil, nil
	}
	ne, rep, err := ApproximateToFidelity(m, state, s.RoundFidelity)
	if err != nil {
		return state, nil, err
	}
	if rep.NoOp() {
		return state, nil, nil
	}
	return ne, &Round{GateIndex: gateIdx, Report: rep}, nil
}

// PlanRounds chooses up to `rounds` gate indices at which to approximate.
// Block boundaries are used when present (Section IV-C: "promising
// candidates for such locations are between circuit blocks"); otherwise the
// rounds are evenly spaced through the circuit. preferLate selects the last
// boundaries, matching the paper's Shor setup where the approximation rounds
// run during the inverse QFT at the end of the circuit.
func PlanRounds(totalGates int, blocks []int, rounds int, preferLate bool) []int {
	if rounds <= 0 || totalGates <= 0 {
		return nil
	}
	// Filter boundaries to valid gate indices, deduplicate, sort. A
	// boundary at the very last gate is pointless (nothing follows), so it
	// is dropped.
	seen := make(map[int]bool)
	var cand []int
	for _, b := range blocks {
		if b >= 0 && b < totalGates-1 && !seen[b] {
			seen[b] = true
			cand = append(cand, b)
		}
	}
	sort.Ints(cand)
	if len(cand) >= rounds {
		if preferLate {
			return append([]int(nil), cand[len(cand)-rounds:]...)
		}
		return append([]int(nil), cand[:rounds]...)
	}
	if len(cand) > 0 {
		return cand // fewer boundaries than rounds: use them all
	}
	// No block structure: evenly space the rounds.
	out := make([]int, 0, rounds)
	for k := 1; k <= rounds; k++ {
		idx := k*totalGates/(rounds+1) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= totalGates-1 {
			idx = totalGates - 2
		}
		if len(out) == 0 || out[len(out)-1] != idx {
			out = append(out, idx)
		}
	}
	return out
}
