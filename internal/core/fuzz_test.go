package core

import (
	"encoding/binary"
	"math"
	"math/bits"
	"testing"

	"repro/internal/dd"
)

// fuzzAmps decodes fuzz bytes into a normalized amplitude vector: 16-byte
// chunks are (re, im) float64 bit patterns, padded with zeros to the next
// power of two (at least 4 entries, at most 256). Returns false when the
// bytes decode to nothing usable (non-finite, overflowing, or all-zero).
func fuzzAmps(data []byte) ([]complex128, bool) {
	if len(data) > 256*16 {
		data = data[:256*16]
	}
	var amps []complex128
	for off := 0; off+16 <= len(data); off += 16 {
		re := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return nil, false
		}
		// Extreme magnitudes make the norm accumulation under/overflow
		// (re² can hit 0 or +Inf while re/√norm stays finite), producing a
		// non-normalized "normalized" vector — a harness artifact, not an
		// engine input.
		if a := math.Abs(re); a > 1e6 || (a != 0 && a < 1e-6) {
			return nil, false
		}
		if a := math.Abs(im); a > 1e6 || (a != 0 && a < 1e-6) {
			return nil, false
		}
		amps = append(amps, complex(re, im))
	}
	if len(amps) == 0 {
		return nil, false
	}
	size := 4
	for size < len(amps) {
		size *= 2
	}
	vec := make([]complex128, size)
	copy(vec, amps)
	var norm float64
	for _, a := range vec {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if norm == 0 || math.IsInf(norm, 0) {
		return nil, false
	}
	inv := complex(1/math.Sqrt(norm), 0)
	var check float64
	for i := range vec {
		vec[i] *= inv
		check += real(vec[i])*real(vec[i]) + imag(vec[i])*imag(vec[i])
	}
	if math.Abs(check-1) > 1e-9 {
		return nil, false
	}
	return vec, true
}

func encodeAmps(vec []complex128) []byte {
	out := make([]byte, 0, len(vec)*16)
	for _, a := range vec {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(real(a)))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(imag(a)))
	}
	return out
}

// FuzzApproximate drives every approximation primitive over fuzzed states
// and enforces the shared invariant suite (valid normalized DD, exact
// Report accounting, never-severed state, fidelity floors). Seeded with the
// 16-amplitude vector that exposed the level-cut backoff bug the fuzz
// harness exists to keep fixed.
func FuzzApproximate(f *testing.F) {
	// The PR 6 regression vector: a kill set whose raw contribution stayed
	// under budget but covered a whole level, zeroing the state without the
	// backoff in removeWithBackoff.
	regression := []complex128{0, 0, 0, 0.1841756497840385 + 0.4322476989581267i,
		0.21068305193683035 + 0.07251403439625055i, 0, 0.4493079660395935 + 0.16302094040069626i, 0,
		-0.15369462899885028 + 0.24842399774520801i, 0, 0, 0.3663640018625997 + 0.36608900899315083i,
		0, -0.2545526701251826 - 0.16486589505397525i, -0.06480720039412846 - 0.2266805757239144i, 0}
	f.Add(encodeAmps(regression))
	f.Add(encodeAmps([]complex128{1, 0, 0, 0}))
	f.Add(encodeAmps([]complex128{0.5, 0.5, 0.5, 0.5}))
	f.Add(encodeAmps([]complex128{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		vec, ok := fuzzAmps(data)
		if !ok {
			t.Skip()
		}
		n := bits.TrailingZeros(uint(len(vec)))
		m := dd.New()
		e, err := m.FromAmplitudes(vec)
		if err != nil {
			t.Skip()
		}
		tc := approxCase{n: n, vec: vec, fround: 0.9}
		before := dd.CountVNodes(e)
		target := before/2 + 1
		for _, op := range approxOps() {
			ne, rep, err := op.run(m, e, tc, target)
			if err != nil {
				t.Fatalf("%s: %v", op.name, err)
			}
			if err := checkInvariants(m, e, ne, rep, n, op.floor(tc)); err != nil {
				t.Fatalf("%s: %v", op.name, err)
			}
		}
	})
}
