package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dd"
)

func fig1State(t *testing.T, m *dd.Manager) dd.VEdge {
	t.Helper()
	s := 1 / math.Sqrt(10)
	vec := []complex128{
		complex(s, 0), 0, 0, complex(-s, 0),
		0, complex(2*s, 0), 0, complex(2*s, 0),
	}
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomState(t *testing.T, m *dd.Manager, n int, fill float64, rng *rand.Rand) dd.VEdge {
	t.Helper()
	vec := make([]complex128, 1<<uint(n))
	var norm float64
	nonzero := 0
	for i := range vec {
		if rng.Float64() < fill {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			vec[i] = complex(re, im)
			norm += re*re + im*im
			nonzero++
		}
	}
	if nonzero == 0 {
		vec[0] = 1
		norm = 1
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range vec {
		vec[i] *= inv
	}
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPaperExample7Contributions(t *testing.T) {
	// Example 7 walks the Fig. 1b DD: root q2 has contribution 1, the
	// right-hand q1 and q0 nodes 0.8 each, the left q1 node 0.2 and its q0
	// successors 0.1 each. The canonical (maximally shared) DD merges the
	// paper's two |1⟩-pattern q0 nodes into one, whose contribution is the
	// sum 0.8 + 0.1 = 0.9; the remaining q0 node keeps 0.1.
	m := dd.New()
	e := fig1State(t, m)
	contribs := Contributions(m, e)

	byLevel := map[int32][]float64{}
	for n, c := range contribs {
		byLevel[n.Var] = append(byLevel[n.Var], c)
	}
	if len(byLevel[2]) != 1 || math.Abs(byLevel[2][0]-1) > 1e-12 {
		t.Errorf("q2 contributions = %v, want [1]", byLevel[2])
	}
	wantSet := func(got []float64, want []float64) bool {
		if len(got) != len(want) {
			return false
		}
		used := make([]bool, len(want))
	outer:
		for _, g := range got {
			for i, w := range want {
				if !used[i] && math.Abs(g-w) < 1e-12 {
					used[i] = true
					continue outer
				}
			}
			return false
		}
		return true
	}
	if !wantSet(byLevel[1], []float64{0.2, 0.8}) {
		t.Errorf("q1 contributions = %v, want {0.2, 0.8}", byLevel[1])
	}
	if !wantSet(byLevel[0], []float64{0.1, 0.9}) {
		t.Errorf("q0 contributions = %v, want {0.1, 0.9} (0.8+0.1 merged by sharing)", byLevel[0])
	}
}

func TestLevelSumsAreOne(t *testing.T) {
	// Definition 2: "for each level i, the contributions of nodes on this
	// level add up to 1".
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 20; trial++ {
		m := dd.New()
		n := 2 + rng.Intn(7)
		e := randomState(t, m, n, 0.2+rng.Float64()*0.8, rng)
		sums := LevelContributionSums(m, e, n)
		for q, s := range sums {
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("n=%d level %d contribution sum = %v, want 1", n, q, s)
			}
		}
	}
}

func TestContributionsOfBasisState(t *testing.T) {
	m := dd.New()
	e := m.BasisState(5, 0b10110)
	contribs := Contributions(m, e)
	if len(contribs) != 5 {
		t.Fatalf("basis state has %d contributing nodes, want 5", len(contribs))
	}
	for n, c := range contribs {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("node q%d contribution %v, want 1", n.Var, c)
		}
	}
}

func TestContributionsZeroEdge(t *testing.T) {
	m := dd.New()
	if got := Contributions(m, m.VZero()); len(got) != 0 {
		t.Errorf("zero edge has %d contributions", len(got))
	}
}
