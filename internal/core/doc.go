// Package core implements the paper's primary contribution: controlled
// approximation of decision-diagram quantum states.
//
// It provides
//
//   - node contribution analysis (Definition 2),
//   - constructive approximation with a guaranteed fidelity lower bound
//     (Section IV-A, following Zulehner et al., ASP-DAC 2020 [27]),
//   - size-targeted approximation (shrink to at most N nodes, reporting the
//     fidelity cost),
//   - the reactive memory-driven strategy (Section IV-B), and
//   - the proactive fidelity-driven strategy (Section IV-C),
//
// together with the multi-round fidelity accounting justified by Lemma 1
// (Section V): the end-to-end fidelity is the product of the per-round
// fidelities. Strategies are stateful per run and plug into simulation via
// sim.Options.Strategy; each run needs a fresh instance (the batch engine's
// Job.NewStrategy and the serve service construct one per job).
//
// Two extension seams make mid-run behavior first-class:
//
//   - The strategy registry (RegisterStrategy / NewStrategyByName) maps
//     names plus JSON parameters to factories, so custom strategies are
//     constructible by name — in-process and over the simulation service's
//     HTTP API. The builtins register as "exact", "memory", "fidelity".
//   - The Observer interface (OnGate, OnApproximation, OnCleanup,
//     OnReorder, OnFinish) receives simulation lifecycle events between
//     gates; the simulation driver invokes it on the hot path with
//     NopObserver as the free default.
//
// A third seam, Reorderer, lets a strategy request a variable-ordering
// policy (static order plus dynamic sifting bounds) that the simulation
// session executes; the "reorder" strategy in internal/order implements it.
package core
