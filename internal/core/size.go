package core

import (
	"fmt"

	"repro/internal/dd"
)

// ApproximateToSize shrinks the state DD to at most maxNodes nodes by
// removing nodes in ascending contribution order until the rebuilt DD fits.
// Unlike ApproximateToFidelity it bounds memory instead of fidelity — the
// natural dual for the memory-driven use case (Section IV-B) when staying
// under a hard memory budget matters more than accuracy. The fidelity cost
// is reported, not bounded.
//
// Because removing one node can unshare formerly shared suffixes, hitting
// the target can require several removal passes; the pass budget keeps the
// worst case bounded.
func ApproximateToSize(m *dd.Manager, e dd.VEdge, maxNodes int) (dd.VEdge, Report, error) {
	if maxNodes < 1 {
		return e, Report{}, fmt.Errorf("core: size target %d must be positive", maxNodes)
	}
	sizeBefore := m.CountV(e)
	rep := Report{Requested: 0, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	if sizeBefore <= maxNodes || m.IsVZero(e) {
		return e, rep, nil
	}
	orig := e
	sc := getScratch()
	defer putScratch(sc)
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		size := m.CountV(e)
		if size <= maxNodes {
			break
		}
		sc.reuse()
		contributionsInto(m, e, sc)
		// Remove at least the surplus; unsharing may offset some of it, so
		// later passes finish the job.
		cands := sc.sortedCandidates(e.N)
		need := size - maxNodes
		limit, mass := 0, 0.0
		for _, cand := range cands {
			if limit >= need {
				break
			}
			// Never remove the entire remaining mass.
			if mass+cand.c >= 1 {
				break
			}
			limit++
			mass += cand.c
		}
		ne, removed, remMass := removeWithBackoff(m, e, sc, cands, limit)
		if removed == 0 {
			// Even a single-node removal would zero the state; settle for
			// the current size.
			break
		}
		e = ne
		rep.RemovedNodes += removed
		rep.RemovedMass += remMass
	}
	rep.SizeAfter = m.CountV(e)
	rep.Achieved = m.Fidelity(orig, e)
	return e, rep, nil
}
