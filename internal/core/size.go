package core

import (
	"fmt"
	"sort"

	"repro/internal/dd"
)

// ApproximateToSize shrinks the state DD to at most maxNodes nodes by
// removing nodes in ascending contribution order until the rebuilt DD fits.
// Unlike ApproximateToFidelity it bounds memory instead of fidelity — the
// natural dual for the memory-driven use case (Section IV-B) when staying
// under a hard memory budget matters more than accuracy. The fidelity cost
// is reported, not bounded.
//
// Because removing one node can unshare formerly shared suffixes, hitting
// the target can require several removal passes; the pass budget keeps the
// worst case bounded.
func ApproximateToSize(m *dd.Manager, e dd.VEdge, maxNodes int) (dd.VEdge, Report, error) {
	if maxNodes < 1 {
		return e, Report{}, fmt.Errorf("core: size target %d must be positive", maxNodes)
	}
	sizeBefore := dd.CountVNodes(e)
	rep := Report{Requested: 0, Achieved: 1, SizeBefore: sizeBefore, SizeAfter: sizeBefore}
	if sizeBefore <= maxNodes || m.IsVZero(e) {
		return e, rep, nil
	}
	orig := e
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		size := dd.CountVNodes(e)
		if size <= maxNodes {
			break
		}
		contribs := Contributions(m, e)
		type nc struct {
			n *dd.VNode
			c float64
		}
		cands := make([]nc, 0, len(contribs))
		for n, c := range contribs {
			if n == e.N {
				continue
			}
			cands = append(cands, nc{n, c})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].c != cands[j].c {
				return cands[i].c < cands[j].c
			}
			return cands[i].n.ID() < cands[j].n.ID()
		})
		// Remove at least the surplus; unsharing may offset some of it, so
		// later passes finish the job.
		need := size - maxNodes
		kill := make(map[*dd.VNode]bool, need)
		var mass float64
		for _, cand := range cands {
			if len(kill) >= need {
				break
			}
			// Never remove the entire remaining mass.
			if mass+cand.c >= 1 {
				break
			}
			kill[cand.n] = true
			mass += cand.c
		}
		if len(kill) == 0 {
			break
		}
		ne := RemoveNodes(m, e, kill)
		if m.IsVZero(ne) {
			return orig, rep, fmt.Errorf("core: size target %d would remove the entire state", maxNodes)
		}
		e = ne
		rep.RemovedNodes += len(kill)
		rep.RemovedMass += mass
	}
	rep.SizeAfter = dd.CountVNodes(e)
	rep.Achieved = m.Fidelity(orig, e)
	return e, rep, nil
}
