package core

// Observer receives simulation lifecycle events as they happen, turning the
// paper's mid-run interventions (memory-driven contraction, fidelity-driven
// rounds) into a stream callers can watch live instead of reconstructing from
// post-hoc Result fields. The simulation driver invokes every method on the
// simulating goroutine, strictly in event order; implementations must be fast
// (they sit between gates on the hot path) and must not retain the state DD.
//
// NopObserver is the cheap default; embed it to implement a subset.
type Observer interface {
	// OnGate fires after each gate has been applied (and before any
	// approximation round that gate triggers).
	OnGate(e GateEvent)
	// OnApproximation fires after an approximation round modified the
	// state (no-op rounds are not reported, matching Result.Rounds).
	OnApproximation(r Round)
	// OnCleanup fires after a mark-sweep node-pool collection.
	OnCleanup(e CleanupEvent)
	// OnReorder fires after a dynamic variable-reordering (sifting) pass
	// changed the qubit→level order mid-run.
	OnReorder(e ReorderEvent)
	// OnChannel fires after a noise-channel application: once per touched
	// qubit per gate on the density backend (exact superoperator), and on
	// the statevector backend only when a trajectory sampled a non-identity
	// Kraus branch (a quantum jump).
	OnChannel(e ChannelEvent)
	// OnFinish fires exactly once when the session ends: after the last
	// gate, on a mid-run error, or on Session.Abort.
	OnFinish(e FinishEvent)
}

// GateEvent describes one applied gate.
type GateEvent struct {
	// Index is the 0-based position of the gate just applied.
	Index int
	// Size is the node count of the state DD after the gate (before any
	// approximation round at this position).
	Size int
}

// CleanupEvent describes one mark-sweep node-pool collection.
type CleanupEvent struct {
	// GateIndex is the gate after which the sweep ran.
	GateIndex int
	// Live is the pool occupancy after the sweep; Freed is how many nodes
	// the sweep returned to the free lists.
	Live, Freed int
}

// ReorderEvent describes one dynamic variable-reordering pass.
type ReorderEvent struct {
	// GateIndex is the gate after which the pass ran.
	GateIndex int
	// SizeBefore and SizeAfter are the state-DD node counts around the
	// pass (the reduction is exact — reordering never changes amplitudes).
	SizeBefore, SizeAfter int
	// Swaps counts the adjacent-level swaps the pass performed.
	Swaps int
	// Order is the qubit→level permutation after the pass.
	Order []int
}

// ChannelEvent describes one noise-channel application.
type ChannelEvent struct {
	// GateIndex is the gate after which the channel was applied.
	GateIndex int
	// Qubit the channel acted on.
	Qubit int
	// Kind is the channel kind name (e.g. "depolarizing").
	Kind string
	// Strength is the channel's error probability / damping rate.
	Strength float64
	// Branch is -1 for an exact superoperator application (density
	// backend); for a trajectory it is the index (≥ 1) of the sampled
	// non-identity Kraus branch.
	Branch int
	// Size is the node count of the state DD after the application.
	Size int
}

// FinishEvent summarizes a finished (or aborted/failed) simulation.
type FinishEvent struct {
	// GatesApplied is how many gates actually ran (equals the circuit
	// length on success).
	GatesApplied int
	// MaxDDSize and FinalDDSize mirror the Result fields; FinalDDSize is
	// the size at the moment the session ended.
	MaxDDSize, FinalDDSize int
	// Rounds is the number of approximation rounds that modified the state.
	Rounds int
	// EstimatedFidelity is the tracked product of per-round fidelities.
	EstimatedFidelity float64
	// Aborted marks sessions ended by Abort rather than completion.
	Aborted bool
	// Err is the error that ended the session early, nil on success and
	// on Abort.
	Err error
}

// NopObserver ignores every event. It is the default observer and the
// embedding base for partial implementations.
type NopObserver struct{}

// OnGate implements Observer.
func (NopObserver) OnGate(GateEvent) {}

// OnApproximation implements Observer.
func (NopObserver) OnApproximation(Round) {}

// OnCleanup implements Observer.
func (NopObserver) OnCleanup(CleanupEvent) {}

// OnReorder implements Observer.
func (NopObserver) OnReorder(ReorderEvent) {}

// OnChannel implements Observer.
func (NopObserver) OnChannel(ChannelEvent) {}

// OnFinish implements Observer.
func (NopObserver) OnFinish(FinishEvent) {}
