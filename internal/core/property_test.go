package core

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dd"
)

// approxOp is one approximation primitive under the shared invariant suite.
// floor is the fidelity the op guarantees for the given case (0 = none).
type approxOp struct {
	name  string
	run   func(m *dd.Manager, e dd.VEdge, tc approxCase, target int) (dd.VEdge, Report, error)
	floor func(tc approxCase) float64
	sized bool // op targets a node budget
}

func approxOps() []approxOp {
	none := func(approxCase) float64 { return 0 }
	return []approxOp{
		{
			name: "fidelity-delete",
			run: func(m *dd.Manager, e dd.VEdge, tc approxCase, _ int) (dd.VEdge, Report, error) {
				return ApproximateToFidelity(m, e, tc.fround)
			},
			floor: func(tc approxCase) float64 { return tc.fround },
		},
		{
			name: "size-delete",
			run: func(m *dd.Manager, e dd.VEdge, _ approxCase, target int) (dd.VEdge, Report, error) {
				return ApproximateToSize(m, e, target)
			},
			floor: none,
			sized: true,
		},
		{
			name: "size-replace",
			run: func(m *dd.Manager, e dd.VEdge, _ approxCase, target int) (dd.VEdge, Report, error) {
				return ApproximateToSizeReplace(m, e, target, 0, nil)
			},
			floor: none,
			sized: true,
		},
		{
			name: "size-replace-floored",
			run: func(m *dd.Manager, e dd.VEdge, tc approxCase, target int) (dd.VEdge, Report, error) {
				return ApproximateToSizeReplace(m, e, target, tc.fround, nil)
			},
			floor: func(tc approxCase) float64 { return tc.fround },
			sized: true,
		},
		{
			name: "size-replace-collapse",
			run: func(m *dd.Manager, e dd.VEdge, _ approxCase, target int) (dd.VEdge, Report, error) {
				return ApproximateToSizeReplace(m, e, target, 0, []SubstituteKind{SubstituteCollapse})
			},
			floor: none,
			sized: true,
		},
		{
			name: "size-replace-promote",
			run: func(m *dd.Manager, e dd.VEdge, _ approxCase, target int) (dd.VEdge, Report, error) {
				return ApproximateToSizeReplace(m, e, target, 0, []SubstituteKind{SubstitutePromote})
			},
			floor: none,
			sized: true,
		},
		{
			name: "below-contribution",
			run: func(m *dd.Manager, e dd.VEdge, _ approxCase, _ int) (dd.VEdge, Report, error) {
				return ApproximateBelowContribution(m, e, 0.01)
			},
			floor: none,
		},
	}
}

// validateVDD walks the result and checks it is a structurally valid,
// canonically normalized vector DD over n qubits: nonzero child edges step
// down exactly one level (reaching the terminal only below level 0), every
// node's child weights satisfy |w0|²+|w1|² = 1, and the first nonzero child
// weight is real positive (the canonical phase choice of MakeVNode).
func validateVDD(m *dd.Manager, e dd.VEdge, n int) error {
	if m.IsVZero(e) {
		return fmt.Errorf("state is the zero vector")
	}
	if e.N == nil || e.N.IsTerminal() || int(e.N.Var) != n-1 {
		return fmt.Errorf("root not at level %d", n-1)
	}
	seen := make(map[*dd.VNode]bool)
	var walk func(node *dd.VNode) error
	walk = func(node *dd.VNode) error {
		if node.IsTerminal() || seen[node] {
			return nil
		}
		seen[node] = true
		sum := node.E[0].W.Abs2() + node.E[1].W.Abs2()
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("node at level %d: |w0|²+|w1|² = %v", node.Var, sum)
		}
		first := true
		for i := 0; i < 2; i++ {
			child := node.E[i]
			if child.W.Abs2() == 0 {
				continue
			}
			if first {
				w := child.W.Complex()
				if math.Abs(imag(w)) > 1e-9 || real(w) <= 0 {
					return fmt.Errorf("node at level %d: first nonzero child weight %v not canonical", node.Var, w)
				}
				first = false
			}
			if node.Var == 0 {
				if child.N == nil || !child.N.IsTerminal() {
					return fmt.Errorf("level-0 child is not terminal")
				}
				continue
			}
			if child.N == nil || child.N.IsTerminal() || child.N.Var != node.Var-1 {
				return fmt.Errorf("node at level %d: nonzero child not at level %d", node.Var, node.Var-1)
			}
			if err := walk(child.N); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(e.N)
}

// bruteForceFidelity computes |⟨a|b⟩|² straight from the expanded state
// vectors, independent of the DD inner-product code under test.
func bruteForceFidelity(m *dd.Manager, a, b dd.VEdge, n int) float64 {
	va, vb := m.ToVector(a, n), m.ToVector(b, n)
	var ip complex128
	for i := range va {
		ip += cmplx.Conj(va[i]) * vb[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// checkInvariants enforces the invariant set shared by every approximation
// primitive: valid normalized DD, unit norm, exact Report accounting against
// a brute-force ToVector inner product, never-severed state, and any
// fidelity floor the op guarantees.
func checkInvariants(m *dd.Manager, before, after dd.VEdge, rep Report, n int, floor float64) error {
	if err := validateVDD(m, after, n); err != nil {
		return fmt.Errorf("invalid DD: %w", err)
	}
	if norm := m.Norm(after); math.Abs(norm-1) > 1e-9 {
		return fmt.Errorf("norm %v after approximation", norm)
	}
	bf := bruteForceFidelity(m, before, after, n)
	if math.Abs(bf-rep.Achieved) > 1e-9 {
		return fmt.Errorf("reported fidelity %v, brute force %v", rep.Achieved, bf)
	}
	if rep.Achieved < floor-1e-9 {
		return fmt.Errorf("achieved fidelity %v below floor %v", rep.Achieved, floor)
	}
	if got := dd.CountVNodes(after); got != rep.SizeAfter {
		return fmt.Errorf("reported SizeAfter %d, counted %d", rep.SizeAfter, got)
	}
	if got := dd.CountVNodes(before); got != rep.SizeBefore {
		return fmt.Errorf("reported SizeBefore %d, counted %d", rep.SizeBefore, got)
	}
	return nil
}

// Property: every approximation primitive preserves the invariant set on
// random states (the headline correctness evidence for the strategy layer).
func TestQuickApproxInvariants(t *testing.T) {
	for _, op := range approxOps() {
		op := op
		t.Run(op.name, func(t *testing.T) {
			f := func(tc approxCase) bool {
				m := dd.New()
				e, err := m.FromAmplitudes(tc.vec)
				if err != nil {
					t.Logf("FromAmplitudes: %v", err)
					return false
				}
				before := dd.CountVNodes(e)
				target := before/2 + 1
				ne, rep, err := op.run(m, e, tc, target)
				if err != nil {
					t.Logf("%s: %v", op.name, err)
					return false
				}
				if err := checkInvariants(m, e, ne, rep, tc.n, op.floor(tc)); err != nil {
					t.Logf("%s: %v", op.name, err)
					return false
				}
				if op.sized && dd.CountVNodes(ne) > before {
					t.Logf("%s: node count grew %d → %d", op.name, before, dd.CountVNodes(ne))
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: at an equal node budget, the replace pass never ends larger than
// the delete pass — whenever delete can meet the budget, replace meets it
// too (the delete fallback guarantees it), so frontier comparisons at a
// fixed budget are fair.
func TestQuickReplaceMeetsBudget(t *testing.T) {
	f := func(tc approxCase) bool {
		m := dd.New()
		e, err := m.FromAmplitudes(tc.vec)
		if err != nil {
			return false
		}
		before := dd.CountVNodes(e)
		target := before/2 + 1
		nd, _, err := ApproximateToSize(m, e, target)
		if err != nil {
			return false
		}
		nr, _, err := ApproximateToSizeReplace(m, e, target, 0, nil)
		if err != nil {
			return false
		}
		afterDelete, afterReplace := dd.CountVNodes(nd), dd.CountVNodes(nr)
		if afterDelete <= target && afterReplace > target {
			t.Logf("delete met budget %d (%d) but replace did not (%d)", target, afterDelete, afterReplace)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: replacement keeps at least one root-to-terminal path through
// every replaced node alive — replacing every non-root node still yields a
// valid nonzero state.
func TestQuickReplaceNeverSevers(t *testing.T) {
	for _, kind := range DefaultSubstitutes() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			f := func(tc approxCase) bool {
				m := dd.New()
				e, err := m.FromAmplitudes(tc.vec)
				if err != nil {
					return false
				}
				repl := make(map[*dd.VNode]SubstituteKind)
				for _, node := range dd.CollectVNodes(e) {
					if node != e.N {
						repl[node] = kind
					}
				}
				ne := ReplaceNodes(m, e, repl)
				if m.IsVZero(ne) {
					t.Log("replacement zeroed the state")
					return false
				}
				return validateVDD(m, ne, tc.n) == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Error(err)
			}
		})
	}
}
