package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dd"
)

// approxCase generates a random normalized state plus a random round
// fidelity in [0.5, 1).
type approxCase struct {
	n      int
	vec    []complex128
	fround float64
}

func (approxCase) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 2 + rng.Intn(6)
	vec := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range vec {
		if rng.Float64() < 0.7 {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			vec[i] = complex(re, im)
			norm += re*re + im*im
		}
	}
	if norm == 0 {
		vec[0] = 1
		norm = 1
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range vec {
		vec[i] *= inv
	}
	return reflect.ValueOf(approxCase{n: n, vec: vec, fround: 0.5 + rng.Float64()*0.499})
}

// Property (the paper's §IV-A guarantee): the achieved fidelity of a single
// approximation round never drops below the requested f_round, matches the
// exact inner product, and the result stays normalized.
func TestQuickFidelityGuarantee(t *testing.T) {
	f := func(tc approxCase) bool {
		m := dd.New()
		e, err := m.FromAmplitudes(tc.vec)
		if err != nil {
			return false
		}
		ne, rep, err := ApproximateToFidelity(m, e, tc.fround)
		if err != nil {
			return false
		}
		if rep.Achieved < tc.fround-1e-9 {
			return false
		}
		if math.Abs(m.Fidelity(e, ne)-rep.Achieved) > 1e-9 {
			return false
		}
		if !rep.NoOp() && math.Abs(m.Norm(ne)-1) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property (Definition 2): contributions on every level sum to 1.
func TestQuickLevelSums(t *testing.T) {
	f := func(tc approxCase) bool {
		m := dd.New()
		e, err := m.FromAmplitudes(tc.vec)
		if err != nil {
			return false
		}
		for _, s := range LevelContributionSums(m, e, tc.n) {
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property (Lemma 1 for back-to-back truncations): two consecutive
// approximation rounds compose multiplicatively, exactly.
func TestQuickLemma1Composition(t *testing.T) {
	f := func(tc approxCase) bool {
		m := dd.New()
		psi, err := m.FromAmplitudes(tc.vec)
		if err != nil {
			return false
		}
		psi1, _, err := ApproximateToFidelity(m, psi, tc.fround)
		if err != nil {
			return false
		}
		psi2, _, err := ApproximateToFidelity(m, psi1, tc.fround)
		if err != nil {
			return false
		}
		lhs := m.Fidelity(psi, psi2)
		rhs := m.Fidelity(psi, psi1) * m.Fidelity(psi1, psi2)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: size-targeted approximation never increases the node count and
// reports its own result consistently.
func TestQuickSizeTargetMonotone(t *testing.T) {
	f := func(tc approxCase) bool {
		m := dd.New()
		e, err := m.FromAmplitudes(tc.vec)
		if err != nil {
			return false
		}
		before := dd.CountVNodes(e)
		target := before/2 + 1
		ne, rep, err := ApproximateToSize(m, e, target)
		if err != nil {
			return false
		}
		after := dd.CountVNodes(ne)
		return after <= before && rep.SizeAfter == after && rep.Achieved <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
