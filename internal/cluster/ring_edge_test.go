package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// TestRingSingleBackend: a one-backend ring owns the whole circle — every
// key, including the extremes, maps to it and the failover order is just it.
func TestRingSingleBackend(t *testing.T) {
	r, err := NewRing([]string{"only"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []uint64{0, 1, 1 << 32, ^uint64(0), r.points[0].hash, r.points[len(r.points)-1].hash + 1} {
		if got := r.Primary(key); got != 0 {
			t.Fatalf("Primary(%#x) = %d on a single-backend ring", key, got)
		}
		if order := r.Order(key); len(order) != 1 || order[0] != 0 {
			t.Fatalf("Order(%#x) = %v on a single-backend ring", key, order)
		}
	}
}

// TestRingBoundaryAndCollidingKeys pins the ownership rule at exact ring
// points: a key equal to a point's hash is served by that point (sort.Search
// uses >=), a key one past the last point wraps to the first, and repeated
// lookups of the same colliding key are stable.
func TestRingBoundaryAndCollidingKeys(t *testing.T) {
	r, err := NewRing([]string{"b0", "b1", "b2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range r.points {
		if got := r.Primary(p.hash); got != p.idx {
			t.Fatalf("key at point %d (%#x): Primary = %d, want owner %d", i, p.hash, got, p.idx)
		}
	}
	last := r.points[len(r.points)-1]
	if last.hash != ^uint64(0) {
		if got, want := r.Primary(last.hash+1), r.points[0].idx; got != want {
			t.Fatalf("key past the last point wraps to %d, want %d", got, want)
		}
	}
	// A key between two points belongs to the clockwise (next) point.
	if len(r.points) >= 2 {
		a, b := r.points[0], r.points[1]
		if b.hash-a.hash > 1 {
			if got := r.Primary(a.hash + 1); got != b.idx {
				t.Fatalf("key between points: Primary = %d, want %d", got, b.idx)
			}
		}
	}
	// Colliding keys (same key, repeated) must be deterministic.
	key := r.points[7].hash
	want := r.Primary(key)
	for i := 0; i < 100; i++ {
		if got := r.Primary(key); got != want {
			t.Fatalf("Primary(%#x) flapped %d -> %d without membership change", key, want, got)
		}
	}
}

// TestRingOrderUniqueSingleVnode: with one point per backend (the worst case
// for the dedup walk — the failover scan must traverse the whole circle) the
// order is still a permutation of all backends for every key.
func TestRingOrderUniqueSingleVnode(t *testing.T) {
	names := make([]string, 9)
	for i := range names {
		names[i] = fmt.Sprintf("host-%d", i)
	}
	r, err := NewRing(names, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{0, ^uint64(0)}
	for _, p := range r.points {
		keys = append(keys, p.hash, p.hash+1)
	}
	for _, key := range keys {
		order := r.Order(key)
		if len(order) != len(names) {
			t.Fatalf("Order(%#x) has %d entries, want %d", key, len(order), len(names))
		}
		seen := make([]bool, len(names))
		for _, idx := range order {
			if idx < 0 || idx >= len(names) || seen[idx] {
				t.Fatalf("Order(%#x) = %v repeats or escapes range", key, order)
			}
			seen[idx] = true
		}
		if order[0] != r.Primary(key) {
			t.Fatalf("Order(%#x)[0] = %d, Primary = %d", key, order[0], r.Primary(key))
		}
	}
}

// TestMemberFlapConcurrent hammers one member with concurrent up/down
// observations and health snapshots (the race-detector target), then checks
// the hysteresis invariants sequentially: markDownAfter consecutive failures
// take it down exactly once, markUpAfter consecutive successes bring it
// back, and a lone blip in either direction does nothing.
func TestMemberFlapConcurrent(t *testing.T) {
	const markDownAfter, markUpAfter = 3, 2
	m := &member{name: "b0", url: "http://b0"}
	m.up.Store(true)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.observe((i+g)%2 == 0, "probe failed", markDownAfter, markUpAfter)
				if i%10 == 0 {
					m.health()
					m.up.Load()
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic hysteresis from a known state: force up.
	for i := 0; i < markUpAfter; i++ {
		m.observe(true, "", markDownAfter, markUpAfter)
	}
	if !m.up.Load() {
		t.Fatal("member not up after markUpAfter consecutive successes")
	}
	_, _, _, downsBefore := m.health()
	// One blip must not eject it.
	m.observe(false, "blip", markDownAfter, markUpAfter)
	if !m.up.Load() {
		t.Fatal("single failure ejected the member despite hysteresis")
	}
	m.observe(true, "", markDownAfter, markUpAfter)
	// A full run of failures takes it down exactly once.
	for i := 0; i < markDownAfter+2; i++ {
		m.observe(false, "down", markDownAfter, markUpAfter)
	}
	if m.up.Load() {
		t.Fatal("member still up after markDownAfter consecutive failures")
	}
	_, lastErr, _, downsAfter := m.health()
	if downsAfter != downsBefore+1 {
		t.Fatalf("markDowns %d -> %d, want exactly one transition", downsBefore, downsAfter)
	}
	if lastErr != "down" {
		t.Fatalf("lastErr = %q, want the failing observation's message", lastErr)
	}
	// One success is not enough to readmit; markUpAfter is.
	m.observe(true, "", markDownAfter, markUpAfter)
	if m.up.Load() {
		t.Fatal("single success readmitted the member despite hysteresis")
	}
	m.observe(true, "", markDownAfter, markUpAfter)
	if !m.up.Load() {
		t.Fatal("member not readmitted after markUpAfter consecutive successes")
	}
}
