// Package cluster is the coordinator/router tier that shards the simd
// simulation service horizontally: a stateless HTTP router that
// consistent-hashes submissions by their canonical circuit content hash
// (serve.CanonicalHash) across N simd backends, so each backend's
// content-addressed result cache stays naturally partition-hot — identical
// circuits always land on the same backend, and aggregate cache hit rate
// scales with the cluster instead of diluting across it.
//
// The router layers three concerns over the hash ring:
//
//   - Membership: every backend is probed on /healthz at a fixed interval
//     and marked down/up with hysteresis (MarkDownAfter consecutive
//     failures, MarkUpAfter consecutive successes), with transport errors
//     during proxying counted as passive probe failures.
//   - Failover and backpressure: a submission whose primary backend is
//     marked down (or fails at the transport level) is rerouted to the next
//     backend on the ring; a backend's queue-full 503 is NOT failed over —
//     it is backpressure, propagated to the caller as retriable with its
//     Retry-After intact, preserving hash affinity.
//   - Load shedding: when no backend on the ring is reachable the router
//     sheds the submission with a retriable 503 ("no_backend") instead of
//     queueing unboundedly.
//
// Job ids returned through the router are prefixed with the owning
// backend's name ("b0.job-000042"), which keeps the router stateless: every
// job-scoped request (status, result, events, cancel) routes by parsing the
// prefix, and the SSE event stream is proxied through with flushing.
// GET /v1/cluster/stats aggregates per-backend health, queue depth, cache
// hit rate, and utilization with the router's own routed/rerouted/shed
// counters.
package cluster
