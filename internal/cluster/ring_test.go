package cluster

import (
	"fmt"
	"testing"
)

func TestRingOrderCoversAllBackendsOnce(t *testing.T) {
	names := []string{"b0", "b1", "b2", "b3", "b4"}
	r, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 1000; key += 37 {
		order := r.Order(key * 0x9E3779B97F4A7C15)
		if len(order) != len(names) {
			t.Fatalf("order length %d, want %d", len(order), len(names))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= len(names) || seen[idx] {
				t.Fatalf("order %v repeats or escapes range", order)
			}
			seen[idx] = true
		}
		if order[0] != r.Primary(key*0x9E3779B97F4A7C15) {
			t.Fatalf("order[0] %d != Primary %d", order[0], r.Primary(key))
		}
	}
}

func TestRingDistributionRoughlyUniform(t *testing.T) {
	names := make([]string, 4)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}
	r, err := NewRing(names, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(names))
	const samples = 20000
	x := uint64(12345)
	for i := 0; i < samples; i++ {
		// SplitMix64 stream stands in for content-hash keys.
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		counts[r.Primary(z)]++
	}
	for i, c := range counts {
		share := float64(c) / samples
		if share < 0.10 || share > 0.45 {
			t.Errorf("backend %d owns %.1f%% of the key space (counts %v)", i, 100*share, counts)
		}
	}
}

// TestRingConsistency pins the "consistent" in consistent hashing: dropping
// one backend must only remap the keys it owned — every key owned by a
// surviving backend keeps its owner.
func TestRingConsistency(t *testing.T) {
	all := []string{"b0", "b1", "b2", "b3"}
	rAll, err := NewRing(all, 64)
	if err != nil {
		t.Fatal(err)
	}
	rLess, err := NewRing(all[:3], 64) // b3 removed
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const samples = 5000
	for i := 0; i < samples; i++ {
		key := uint64(i) * 0x9E3779B97F4A7C15
		before := rAll.Primary(key)
		after := rLess.Primary(key)
		if before != 3 && before != after {
			t.Fatalf("key %d moved %d -> %d though its owner survived", key, before, after)
		}
		if before == 3 {
			moved++
		}
	}
	if moved == 0 || moved > samples/2 {
		t.Errorf("removed backend owned %d/%d keys; expected a ~quarter share", moved, samples)
	}
}

func TestRingRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 64); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestKeyParsesHexPrefix(t *testing.T) {
	if k := Key("00000000000000ff" + "aa"); k != 0xff {
		t.Errorf("Key parsed %x, want ff", k)
	}
	// Non-hex input still maps somewhere deterministic.
	if Key("not-hex!") != Key("not-hex!") {
		t.Error("fallback key not deterministic")
	}
}
