package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`

// testCluster is a router fronting real serve backends, all on httptest.
type testCluster struct {
	t        *testing.T
	router   *Router
	routerHS *httptest.Server
	backends []*httptest.Server
	servers  []*serve.Server
}

func startCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{Workers: 1})
		hs := httptest.NewServer(s.Handler())
		tc.servers = append(tc.servers, s)
		tc.backends = append(tc.backends, hs)
		cfg.Backends = append(cfg.Backends, hs.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.routerHS = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		tc.routerHS.Close()
		rt.Close()
		for i, hs := range tc.backends {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			tc.servers[i].Shutdown(ctx)
			cancel()
		}
	})
	return tc
}

func (tc *testCluster) submit(body any) (*http.Response, []byte) {
	tc.t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := http.Post(tc.routerHS.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		tc.t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func (tc *testCluster) get(path string) (int, []byte) {
	tc.t.Helper()
	resp, err := http.Get(tc.routerHS.URL + path)
	if err != nil {
		tc.t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, out
}

func (tc *testCluster) await(id string) serve.JobStatus {
	tc.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := tc.get("/v1/jobs/" + id)
		if code != http.StatusOK {
			tc.t.Fatalf("status %s: HTTP %d: %s", id, code, body)
		}
		var st serve.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			tc.t.Fatalf("status %s: %v in %s", id, err, body)
		}
		if st.Status != serve.StatusQueued && st.Status != serve.StatusRunning {
			return st
		}
		if time.Now().After(deadline) {
			tc.t.Fatalf("job %s never finished", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHashAffinityPinsIdenticalSubmissions(t *testing.T) {
	tc := startCluster(t, 3, Config{})
	req := serve.JobRequest{QASM: ghzQASM, Shots: 8}
	resp, body := tc.submit(req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	backend := resp.Header.Get(HeaderBackend)
	if backend == "" || resp.Header.Get(HeaderHash) == "" {
		t.Fatalf("routing headers missing: %v", resp.Header)
	}
	if got := resp.Header.Get(HeaderRoute); got != RouteHash {
		t.Errorf("route header %q, want %q", got, RouteHash)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.ID, backend+idSep) {
		t.Fatalf("routed id %q lacks backend prefix %q", st.ID, backend)
	}
	final := tc.await(st.ID)
	if final.Status != serve.StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}

	// Identical resubmissions pin to the same backend and hit its cache.
	for i := 0; i < 3; i++ {
		resp2, body2 := tc.submit(req)
		if got := resp2.Header.Get(HeaderBackend); got != backend {
			t.Fatalf("resubmission routed to %q, first went to %q", got, backend)
		}
		var st2 serve.JobStatus
		json.Unmarshal(body2, &st2)
		if !st2.Cached || st2.Status != serve.StatusDone {
			t.Fatalf("resubmission %d missed the cache: %s", i, body2)
		}
	}

	// The result routes by prefix and carries the payload.
	code, res := tc.get("/v1/jobs/" + st.ID + "/result")
	if code != http.StatusOK || !strings.Contains(string(res), `"num_qubits":3`) {
		t.Fatalf("result: HTTP %d: %s", code, res)
	}

	// Cluster stats see exactly one backend with cache hits.
	code, raw := tc.get("/v1/cluster/stats")
	if code != http.StatusOK {
		t.Fatalf("cluster stats: HTTP %d", code)
	}
	var cs ClusterStats
	if err := json.Unmarshal(raw, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Up != 3 || cs.Routed != 4 || cs.CacheHits != 3 {
		t.Errorf("cluster stats up=%d routed=%d hits=%d, want 3/4/3: %s", cs.Up, cs.Routed, cs.CacheHits, raw)
	}
	withHits := 0
	for _, b := range cs.Backends {
		if b.CacheHits > 0 {
			withHits++
			if b.Name != backend {
				t.Errorf("cache hits on %q, submissions went to %q", b.Name, backend)
			}
		}
	}
	if withHits != 1 {
		t.Errorf("%d backends saw cache hits, want exactly 1 (affinity)", withHits)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	tc := startCluster(t, 2, Config{RouteMode: RouteRR})
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		req := serve.JobRequest{QASM: ghzQASM, Seed: int64(i + 1)}
		resp, body := tc.submit(req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		seen[resp.Header.Get(HeaderBackend)]++
	}
	if len(seen) != 2 || seen["b0"] != 2 || seen["b1"] != 2 {
		t.Errorf("round-robin distribution %v, want 2/2", seen)
	}
}

func TestUnknownJobIDsAre404(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	if code, _ := tc.get("/v1/jobs/job-000001"); code != http.StatusNotFound {
		t.Errorf("unprefixed id: HTTP %d, want 404", code)
	}
	if code, _ := tc.get("/v1/jobs/zz.job-000001"); code != http.StatusNotFound {
		t.Errorf("unknown backend prefix: HTTP %d, want 404", code)
	}
	// A well-formed prefix with an unknown local id proxies the backend 404.
	if code, _ := tc.get("/v1/jobs/b0.job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown local id: HTTP %d, want 404", code)
	}
}

// TestQueueFullPropagatesWithoutFailover pins the backpressure contract: a
// backend's queue-full 503 is relayed verbatim (Retry-After and envelope
// intact) instead of being rerouted to a backend that will never own the
// hash.
func TestQueueFullPropagatesWithoutFailover(t *testing.T) {
	var otherHits atomic.Int64
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"queue full","code":"queue_full","queue_depth":9,"retry_after_ms":7000}`)
	}))
	defer full.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			otherHits.Add(1)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer other.Close()

	// Both ring orders start at the "full" backend for whichever hash the
	// GHZ submission produces, because the other backend is only reachable
	// through failover — so pin the order by making "full" every candidate's
	// primary: use a 2-backend ring and try until the submission routes to
	// it (deterministic for a fixed circuit, so just flip the backend list
	// if needed).
	for _, backends := range [][]string{{full.URL, other.URL}, {other.URL, full.URL}} {
		rt, err := New(Config{Backends: backends, ProbeInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(rt.Handler())
		otherHits.Store(0) // only hits from THIS ordering's submission count
		raw, _ := json.Marshal(serve.JobRequest{QASM: ghzQASM})
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		hs.Close()
		rt.Close()
		fullName := "b0"
		if backends[0] != full.URL {
			fullName = "b1"
		}
		if resp.Header.Get(HeaderBackend) != fullName {
			continue // this ordering routed the hash to the healthy backend
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("queue-full relay: HTTP %d: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") != "7" {
			t.Errorf("Retry-After %q not propagated", resp.Header.Get("Retry-After"))
		}
		if !strings.Contains(string(body), `"code":"queue_full"`) ||
			!strings.Contains(string(body), `"queue_depth":9`) {
			t.Errorf("backpressure envelope not propagated verbatim: %s", body)
		}
		if n := otherHits.Load(); n != 0 {
			t.Errorf("queue-full was failed over to the other backend (%d hits)", n)
		}
		return
	}
	t.Fatal("submission never routed to the saturated backend under either ordering")
}

// TestFailoverAndShed kills backends and watches routing degrade gracefully:
// first failover to the ring successor, then load-shedding with a retriable
// envelope once nothing is reachable.
func TestFailoverAndShed(t *testing.T) {
	tc := startCluster(t, 2, Config{ProbeInterval: 15 * time.Millisecond, MarkDownAfter: 2, MarkUpAfter: 2})
	req := serve.JobRequest{QASM: ghzQASM}
	resp, body := tc.submit(req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	primary := resp.Header.Get(HeaderBackend)
	var st serve.JobStatus
	json.Unmarshal(body, &st)
	tc.await(st.ID)

	// Kill the primary abruptly (connection-refused from now on).
	for i, hs := range tc.backends {
		if tc.router.members[i].name == primary {
			hs.CloseClientConnections()
			hs.Close()
		}
	}

	// The same submission now fails over to the survivor (the first attempt
	// may pay one transport error; the router reroutes within the request).
	resp2, body2 := tc.submit(req)
	if resp2.StatusCode != http.StatusAccepted && resp2.StatusCode != http.StatusOK {
		t.Fatalf("failover submit: HTTP %d: %s", resp2.StatusCode, body2)
	}
	survivor := resp2.Header.Get(HeaderBackend)
	if survivor == primary {
		t.Fatalf("submission still routed to dead backend %q", primary)
	}
	if got := resp2.Header.Get(HeaderRoute); got != "failover" {
		t.Errorf("route header %q, want failover", got)
	}
	var st2 serve.JobStatus
	json.Unmarshal(body2, &st2)
	final := tc.await(st2.ID)
	if final.Status != serve.StatusDone {
		t.Fatalf("failover job ended %q: %s", final.Status, final.Error)
	}

	// The prober marks the dead backend down (visible in stats), after which
	// job-scoped requests against it come back retriable.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, raw := tc.get("/v1/cluster/stats")
		if code != http.StatusOK {
			t.Fatalf("cluster stats: HTTP %d", code)
		}
		var cs ClusterStats
		if err := json.Unmarshal(raw, &cs); err != nil {
			t.Fatal(err)
		}
		if cs.Down == 1 && cs.Up == 1 {
			if cs.Rerouted < 1 {
				t.Errorf("rerouted counter %d, want >= 1", cs.Rerouted)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mark-down never reflected in stats: %s", raw)
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, raw := tc.get("/v1/jobs/" + st.ID)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(raw), CodeBackendDown) {
		t.Errorf("job on dead backend: HTTP %d %s, want 503 %s", code, raw, CodeBackendDown)
	}

	// Kill the survivor too: submissions shed with a retriable envelope once
	// the prober notices.
	for i, hs := range tc.backends {
		if tc.router.members[i].name == survivor {
			hs.CloseClientConnections()
			hs.Close()
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp3, body3 := tc.submit(req)
		if resp3.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body3), CodeNoBackend) {
			if resp3.Header.Get("Retry-After") == "" {
				t.Error("shed response lacks Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never shed: HTTP %d: %s", resp3.StatusCode, body3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Router health reflects the dead cluster once the prober's hysteresis
	// marks the survivor down (shedding via in-request transport failures can
	// precede the membership flip, so poll).
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, _ = tc.get("/healthz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("router healthz with all backends down: HTTP %d, want 503", code)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st3 := tc.router.Stats(context.Background())
	if st3.Shed < 1 {
		t.Errorf("shed counter %d, want >= 1", st3.Shed)
	}
}

// TestEventsProxyStreams pins SSE proxying: the routed events endpoint
// replays the backend stream including the terminal status frame.
func TestEventsProxyStreams(t *testing.T) {
	tc := startCluster(t, 2, Config{})
	resp, body := tc.submit(serve.JobRequest{QASM: ghzQASM})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st serve.JobStatus
	json.Unmarshal(body, &st)
	tc.await(st.ID)
	code, stream := tc.get("/v1/jobs/" + st.ID + "/events")
	if code != http.StatusOK {
		t.Fatalf("events: HTTP %d", code)
	}
	if !strings.Contains(string(stream), "event: gate") ||
		!strings.Contains(string(stream), `"status":"done"`) {
		t.Errorf("proxied stream incomplete: %s", stream)
	}
}

func TestListMergesBackends(t *testing.T) {
	tc := startCluster(t, 2, Config{RouteMode: RouteRR})
	ids := map[string]bool{}
	for i := 0; i < 2; i++ {
		_, body := tc.submit(serve.JobRequest{QASM: ghzQASM, Seed: int64(i + 1)})
		var st serve.JobStatus
		json.Unmarshal(body, &st)
		ids[st.ID] = true
		tc.await(st.ID)
	}
	code, raw := tc.get("/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	var l struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &l); err != nil {
		t.Fatal(err)
	}
	if len(l.Jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2: %s", len(l.Jobs), raw)
	}
	for _, j := range l.Jobs {
		if !ids[j.ID] {
			t.Errorf("listed id %q was never returned to a client", j.ID)
		}
	}
}

func TestRouterRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no backends accepted")
	}
	if _, err := New(Config{Backends: []string{"http://x"}, RouteMode: "zigzag"}); err == nil {
		t.Error("unknown route mode accepted")
	}
	if _, err := New(Config{Backends: []string{"http://x"}, Names: []string{"a.b"}}); err == nil {
		t.Error("dotted backend name accepted")
	}
	if _, err := New(Config{Backends: []string{"http://x", "http://y"}, Names: []string{"a"}}); err == nil {
		t.Error("name/backend length mismatch accepted")
	}
}

func TestBadSubmissionsRejectedAtTheRouter(t *testing.T) {
	tc := startCluster(t, 1, Config{})
	resp, body := tc.submit(map[string]any{"qasm": ghzQASM, "sots": 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = tc.submit(map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty submission: HTTP %d: %s", resp.StatusCode, body)
	}
}
