package cluster

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over a fixed set of backends. Each backend
// owns VNodes points on a uint64 circle; a key is served by the backend
// owning the first point at or clockwise of it. Virtual nodes smooth the
// per-backend share of the key space, and consistency means adding or
// removing one backend only remaps the hash ranges it owned — every other
// backend's result cache stays hot.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash uint64
	idx  int
}

// NewRing builds a ring over n backends identified by name (names must be
// distinct — they, not positions, determine ring placement, so a stable
// naming scheme keeps the mapping stable across restarts). vnodes <= 0
// selects 64 points per backend.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{points: make([]ringPoint, 0, len(names)*vnodes), n: len(names)}
	for i, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			h.Write([]byte(name))
			h.Write([]byte{'#'})
			h.Write([]byte(strconv.Itoa(v)))
			// FNV alone clusters similar inputs ("b0#1" vs "b0#2"); the
			// SplitMix64 finalizer spreads the points uniformly around the
			// circle, which is what bounds per-backend load skew.
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r, nil
}

// Backends returns the number of backends on the ring.
func (r *Ring) Backends() int { return r.n }

// Primary returns the backend index owning key.
func (r *Ring) Primary(key uint64) int {
	return r.points[r.at(key)].idx
}

// Order returns every backend index in ring order starting from key's
// owner: element 0 is the primary, the rest are the failover sequence. The
// returned slice is freshly allocated.
func (r *Ring) Order(key uint64) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i, p := 0, r.at(key); len(out) < r.n && i < len(r.points); i, p = i+1, p+1 {
		if p == len(r.points) {
			p = 0
		}
		if idx := r.points[p].idx; !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// mix64 is the SplitMix64 finalizer: a cheap bijective avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// at returns the index of the first ring point at or after key (wrapping).
func (r *Ring) at(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Key maps a canonical content hash (hex sha256 from serve.CanonicalHash)
// onto the ring's key space using its leading 64 bits. Non-hex input (which
// a well-formed submission can never produce) falls back to hashing the
// whole string, so Key is total.
func Key(contentHash string) uint64 {
	if len(contentHash) >= 16 {
		if raw, err := hex.DecodeString(contentHash[:16]); err == nil {
			var k uint64
			for _, b := range raw {
				k = k<<8 | uint64(b)
			}
			return k
		}
	}
	h := fnv.New64a()
	h.Write([]byte(contentHash))
	return h.Sum64()
}
