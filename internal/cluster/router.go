package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/serve"
)

// Routing modes.
const (
	// RouteHash consistent-hashes submissions by content hash (the default):
	// identical circuits always land on the same backend, keeping its result
	// cache partition-hot.
	RouteHash = "hash"
	// RouteRR round-robins submissions across up backends — the affinity-free
	// baseline the load generator compares hash routing against.
	RouteRR = "rr"
)

// Response headers the router adds to every routed submission.
const (
	// HeaderBackend names the backend that served the request.
	HeaderBackend = "X-Cluster-Backend"
	// HeaderRoute records how the backend was chosen: "hash", "rr", or
	// "failover" (the primary was down or unreachable).
	HeaderRoute = "X-Cluster-Route"
	// HeaderHash carries the submission's canonical content hash.
	HeaderHash = "X-Cluster-Hash"
)

// Machine-readable error codes the router adds to the serve error-envelope
// vocabulary. Both are retriable and carry Retry-After.
const (
	// CodeNoBackend: every backend that could own the submission is marked
	// down or unreachable; the request was shed.
	CodeNoBackend = "no_backend"
	// CodeBackendDown: the backend owning the requested job id is marked
	// down; the job may resume when it returns, or the caller can resubmit
	// (submissions are content-addressed, so resubmission is idempotent).
	CodeBackendDown = "backend_down"
)

// idSep joins a backend name and its local job id into a routed job id
// ("b0.job-000042"). Backend names must not contain it.
const idSep = "."

// Config describes the cluster a Router fronts.
type Config struct {
	// Backends are the simd base URLs ("http://host:port"), one per backend.
	Backends []string
	// Names optionally names each backend (same length as Backends). Names
	// determine ring placement and job-id prefixes; they must be distinct
	// and must not contain ".". Empty selects "b0", "b1", ...
	Names []string
	// RouteMode is RouteHash (default) or RouteRR.
	RouteMode string
	// VNodes is the number of ring points per backend (<= 0 selects 64).
	VNodes int
	// ProbeInterval is the /healthz cadence (<= 0 selects 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe or stats fetch (<= 0 selects 2s).
	ProbeTimeout time.Duration
	// MarkDownAfter and MarkUpAfter are the hysteresis widths: consecutive
	// failed observations before a backend stops receiving traffic, and
	// consecutive healthy probes before it resumes (<= 0 selects 2 each).
	MarkDownAfter int
	MarkUpAfter   int
	// MaxBodyBytes bounds submission bodies (<= 0 selects 8 MiB).
	MaxBodyBytes int64
	// Client overrides the HTTP client used for proxying and probing.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.RouteMode == "" {
		c.RouteMode = RouteHash
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.MarkDownAfter <= 0 {
		c.MarkDownAfter = 2
	}
	if c.MarkUpAfter <= 0 {
		c.MarkUpAfter = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Router is the coordinator tier: an http.Handler that routes the serve API
// across the configured backends. Create with New, mount via Handler, and
// stop the health prober with Close.
type Router struct {
	cfg     Config
	ring    *Ring
	members []*member
	byName  map[string]*member
	hc      *http.Client
	mux     *http.ServeMux

	rrNext   atomic.Int64
	routed   atomic.Int64
	rerouted atomic.Int64
	shed     atomic.Int64

	probeStop context.CancelFunc
	probeWG   sync.WaitGroup
}

// New validates cfg, builds the hash ring, starts the health prober
// (backends start marked up so traffic flows before the first probe
// completes), and returns the running router.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	if cfg.RouteMode != RouteHash && cfg.RouteMode != RouteRR {
		return nil, fmt.Errorf("cluster: unknown route mode %q (want %q or %q)", cfg.RouteMode, RouteHash, RouteRR)
	}
	names := cfg.Names
	if len(names) == 0 {
		names = make([]string, len(cfg.Backends))
		for i := range names {
			names[i] = "b" + strconv.Itoa(i)
		}
	}
	if len(names) != len(cfg.Backends) {
		return nil, fmt.Errorf("cluster: %d names for %d backends", len(names), len(cfg.Backends))
	}
	for _, n := range names {
		if n == "" || strings.Contains(n, idSep) {
			return nil, fmt.Errorf("cluster: backend name %q is empty or contains %q", n, idSep)
		}
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	rt := &Router{
		cfg:     cfg,
		ring:    ring,
		members: make([]*member, len(cfg.Backends)),
		byName:  make(map[string]*member, len(cfg.Backends)),
		hc:      hc,
	}
	for i, url := range cfg.Backends {
		m := &member{name: names[i], url: strings.TrimRight(url, "/")}
		m.up.Store(true)
		rt.members[i] = m
		rt.byName[m.name] = m
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", rt.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/cluster/stats", rt.handleClusterStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux = mux

	ctx, stop := context.WithCancel(context.Background())
	rt.probeStop = stop
	rt.probeWG.Add(1)
	go rt.probeLoop(ctx)
	return rt, nil
}

// Handler returns the HTTP handler serving the routed API.
func (rt *Router) Handler() http.Handler { return rt.mux }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the health prober. In-flight proxied requests are unaffected.
func (rt *Router) Close() {
	rt.probeStop()
	rt.probeWG.Wait()
}

// candidateOrder returns the backend indexes to try for a submission, best
// first: ring order from the content hash under RouteHash, a rotating start
// under RouteRR (followed by the others as failover candidates).
func (rt *Router) candidateOrder(key uint64) []int {
	if rt.cfg.RouteMode == RouteRR {
		start := int(rt.rrNext.Add(1)-1) % len(rt.members)
		order := make([]int, len(rt.members))
		for i := range order {
			order[i] = (start + i) % len(rt.members)
		}
		return order
	}
	return rt.ring.Order(key)
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("reading submission: %w", err), "")
		return
	}
	var req serve.JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err), "")
		return
	}
	// The routing key is the same canonical content hash the backend result
	// caches are addressed by — that identity is what makes hash routing
	// keep each backend's cache partition-hot.
	hash, err := serve.CanonicalHash(req)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err, "")
		return
	}

	order := rt.candidateOrder(Key(hash))
	primary := order[0]
	for _, idx := range order {
		m := rt.members[idx]
		if !m.up.Load() {
			continue
		}
		resp, err := rt.forward(r.Context(), m, http.MethodPost, "/v1/jobs", "", bytes.NewReader(body))
		if err != nil {
			// The caller's own canceled/expired request must not count
			// against the backend's health.
			if r.Context().Err() != nil {
				writeRouterError(w, http.StatusBadRequest, r.Context().Err(), "")
				return
			}
			rt.observe(m, false, err.Error())
			continue
		}
		rt.observe(m, true, "")
		rt.routed.Add(1)
		m.routed.Add(1)
		route := rt.cfg.RouteMode
		if idx != primary {
			route = "failover"
			rt.rerouted.Add(1)
		}
		w.Header().Set(HeaderBackend, m.name)
		w.Header().Set(HeaderRoute, route)
		w.Header().Set(HeaderHash, hash)
		// 2xx responses carry a JobStatus whose id gains the backend prefix;
		// everything else (the backend's queue-full 503 with its Retry-After,
		// 400s, ...) propagates verbatim — backpressure is per-backend and
		// deliberately NOT failed over, or a hot partition would flood the
		// rest of the ring with jobs they will never see again.
		rt.relay(w, resp, m.name)
		return
	}

	// Every candidate was marked down or unreachable: shed.
	rt.shed.Add(1)
	retry := rt.recoveryHorizon()
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	writeRouterJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":          "no backend available for this submission",
		"code":           CodeNoBackend,
		"retry_after_ms": retry.Milliseconds(),
	})
}

// recoveryHorizon estimates how long until a down backend can return: the
// probe cadence times the mark-up hysteresis width, floored at one second.
func (rt *Router) recoveryHorizon() time.Duration {
	d := rt.cfg.ProbeInterval * time.Duration(rt.cfg.MarkUpAfter)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// handleJob proxies a job-scoped request (status, result, events, cancel) to
// the backend encoded in the job id prefix.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	routedID := r.PathValue("id")
	name, localID, ok := strings.Cut(routedID, idSep)
	m := rt.byName[name]
	if !ok || m == nil || localID == "" {
		writeRouterError(w, http.StatusNotFound,
			fmt.Errorf("unknown job %q (routed ids look like b0%sjob-000001)", routedID, idSep), "")
		return
	}
	if !m.up.Load() {
		retry := rt.recoveryHorizon()
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeRouterJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":          fmt.Sprintf("backend %s (owner of %s) is marked down", name, routedID),
			"code":           CodeBackendDown,
			"retry_after_ms": retry.Milliseconds(),
		})
		return
	}
	path := "/v1/jobs/" + localID
	if suffix, okSuffix := pathSuffix(r.URL.Path); okSuffix {
		path += "/" + suffix
	}
	if suffix, _ := pathSuffix(r.URL.Path); suffix == "events" {
		rt.proxyStream(w, r, m, path)
		return
	}
	resp, err := rt.forward(r.Context(), m, r.Method, path, r.URL.RawQuery, nil)
	if err != nil {
		if r.Context().Err() == nil {
			rt.observe(m, false, err.Error())
		}
		writeRouterError(w, http.StatusBadGateway,
			fmt.Errorf("backend %s unreachable: %w", name, err), "")
		return
	}
	rt.observe(m, true, "")
	w.Header().Set(HeaderBackend, m.name)
	rt.relay(w, resp, m.name)
}

// pathSuffix extracts the trailing segment after the job id ("result",
// "events"), if any.
func pathSuffix(p string) (string, bool) {
	rest := strings.TrimPrefix(p, "/v1/jobs/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[i+1:], true
	}
	return "", false
}

// forward performs one proxied request against a backend.
func (rt *Router) forward(ctx context.Context, m *member, method, path, query string, body io.Reader) (*http.Response, error) {
	url := m.url + path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return rt.hc.Do(req)
}

// relay copies a backend response to the caller. 2xx JobStatus bodies get
// their job id rewritten to the routed form; other bodies (error envelopes,
// result payloads) pass through byte-identically, with Retry-After and
// Content-Type preserved.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, backendName string) {
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, fmt.Errorf("reading backend response: %w", err), "")
		return
	}
	if resp.StatusCode/100 == 2 {
		if rewritten, ok := rewriteJobID(raw, backendName); ok {
			raw = rewritten
		}
	}
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(resp.StatusCode)
	w.Write(raw)
}

// rewriteJobID prefixes the backend name onto a JobStatus body's id field.
// Bodies without an id (result payloads) are reported unmodified.
func rewriteJobID(raw []byte, backendName string) ([]byte, bool) {
	var st serve.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil || st.ID == "" {
		return nil, false
	}
	st.ID = backendName + idSep + st.ID
	out, err := json.Marshal(st)
	if err != nil {
		return nil, false
	}
	return out, true
}

// proxyStream pipes a backend SSE stream (GET /v1/jobs/{id}/events) to the
// caller chunk by chunk, flushing after every read so live events are not
// buffered, until either side closes.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, m *member, path string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeRouterError(w, http.StatusInternalServerError,
			fmt.Errorf("response writer does not support streaming"), "")
		return
	}
	url := m.url + path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, err, "")
		return
	}
	// Resume cursors pass straight through: seqs are per-job, not per-router.
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		req.Header.Set("Last-Event-ID", last)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := rt.hc.Do(req)
	if err != nil {
		if r.Context().Err() == nil {
			rt.observe(m, false, err.Error())
		}
		writeRouterError(w, http.StatusBadGateway,
			fmt.Errorf("backend %s unreachable: %w", m.name, err), "")
		return
	}
	defer resp.Body.Close()
	rt.observe(m, true, "")
	w.Header().Set(HeaderBackend, m.name)
	if resp.StatusCode != http.StatusOK {
		rt.relay(w, resp, m.name)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			flusher.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleList fans GET /v1/jobs out to every up backend and merges the
// listings under routed ids. Down or unreachable backends are skipped and
// named in the response so a partial listing is visible as such.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	var (
		mu          sync.Mutex
		jobs        []serve.JobStatus
		unreachable []string
	)
	var wg sync.WaitGroup
	for _, m := range rt.members {
		if !m.up.Load() {
			mu.Lock()
			unreachable = append(unreachable, m.name)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			resp, err := rt.forward(r.Context(), m, http.MethodGet, "/v1/jobs", "", nil)
			if err != nil {
				mu.Lock()
				unreachable = append(unreachable, m.name)
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			var l listing
			if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
				mu.Lock()
				unreachable = append(unreachable, m.name)
				mu.Unlock()
				return
			}
			for i := range l.Jobs {
				l.Jobs[i].ID = m.name + idSep + l.Jobs[i].ID
			}
			mu.Lock()
			jobs = append(jobs, l.Jobs...)
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	body := map[string]any{"jobs": jobs}
	if len(unreachable) > 0 {
		body["unreachable"] = unreachable
	}
	writeRouterJSON(w, http.StatusOK, body)
}

// handleHealthz reports the router's own health: 200 while at least one
// backend is up (it can route), 503 when the whole cluster is down.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, m := range rt.members {
		if m.up.Load() {
			up++
		}
	}
	status, code := "ok", http.StatusOK
	if up == 0 {
		status, code = "no_backends", http.StatusServiceUnavailable
	}
	writeRouterJSON(w, code, map[string]any{
		"status": status, "backends_up": up, "backends": len(rt.members),
	})
}

func writeRouterJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeRouterError(w http.ResponseWriter, code int, err error, errCode string) {
	body := map[string]any{"error": err.Error()}
	if errCode != "" {
		body["code"] = errCode
	}
	writeRouterJSON(w, code, body)
}

// BackendStats is one backend's entry in ClusterStats: router-side
// membership state plus the live counters fetched from the backend's own
// /v1/stats (zero-valued with Reachable=false when that fetch fails).
type BackendStats struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Up   bool   `json:"up"`
	// ConsecutiveFailures, LastError, and LastProbe describe the hysteresis
	// state; MarkDowns counts lifetime up→down transitions.
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	LastProbe           string `json:"last_probe,omitempty"`
	MarkDowns           int64  `json:"mark_downs"`
	// Routed counts submissions this backend accepted through the router.
	Routed int64 `json:"routed"`

	// Reachable marks the live /v1/stats fetch below as fresh.
	Reachable bool `json:"reachable"`
	// Workers/QueueDepth echo the backend's pool configuration; Queued and
	// Running are its current backlog and occupancy.
	Workers    int `json:"workers,omitempty"`
	QueueDepth int `json:"queue_depth,omitempty"`
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	// Utilization is the mean per-worker busy fraction since backend start.
	Utilization float64 `json:"utilization"`
	// Cache hit accounting for the backend's content-addressed result cache.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ClusterStats is the GET /v1/cluster/stats body.
type ClusterStats struct {
	Route    string         `json:"route"`
	Backends []BackendStats `json:"backends"`
	// Up and Down count backends by membership state.
	Up   int `json:"up"`
	Down int `json:"down"`
	// Routed counts accepted submissions, Rerouted the subset served by a
	// failover backend, Shed the submissions rejected because no backend was
	// reachable.
	Routed   int64 `json:"routed"`
	Rerouted int64 `json:"rerouted"`
	Shed     int64 `json:"shed"`
	// Aggregate cache accounting across reachable backends.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Stats assembles the aggregated cluster snapshot (the /v1/cluster/stats
// body): membership and router counters locally, per-backend queue/cache/
// utilization numbers via concurrent /v1/stats fetches bounded by the probe
// timeout.
func (rt *Router) Stats(ctx context.Context) ClusterStats {
	st := ClusterStats{
		Route:    rt.cfg.RouteMode,
		Backends: make([]BackendStats, len(rt.members)),
		Routed:   rt.routed.Load(),
		Rerouted: rt.rerouted.Load(),
		Shed:     rt.shed.Load(),
	}
	var wg sync.WaitGroup
	for i, m := range rt.members {
		bs := &st.Backends[i]
		bs.Name, bs.URL, bs.Up = m.name, m.url, m.up.Load()
		bs.Routed = m.routed.Load()
		consecFail, lastErr, lastProbe, markDowns := m.health()
		bs.ConsecutiveFailures, bs.LastError, bs.MarkDowns = consecFail, lastErr, markDowns
		if !lastProbe.IsZero() {
			bs.LastProbe = lastProbe.UTC().Format(time.RFC3339Nano)
		}
		if !bs.Up {
			continue
		}
		wg.Add(1)
		go func(m *member, bs *BackendStats) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			resp, err := rt.forward(fctx, m, http.MethodGet, "/v1/stats", "", nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var bst serve.Stats
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&bst) != nil {
				return
			}
			bs.Reachable = true
			bs.Workers = bst.Pool.Workers
			bs.QueueDepth = bst.Pool.QueueDepth
			bs.Queued = bst.Pool.Queued
			bs.Running = bst.Pool.Running
			bs.Utilization = meanUtilization(bst.Pool)
			bs.CacheHits = bst.Cache.Hits
			bs.CacheMisses = bst.Cache.Misses
			bs.CacheHitRate = hitRate(bst.Cache.Hits, bst.Cache.Misses)
		}(m, bs)
	}
	wg.Wait()
	for i := range st.Backends {
		bs := &st.Backends[i]
		if bs.Up {
			st.Up++
		} else {
			st.Down++
		}
		st.CacheHits += bs.CacheHits
		st.CacheMisses += bs.CacheMisses
	}
	st.CacheHitRate = hitRate(st.CacheHits, st.CacheMisses)
	return st
}

func (rt *Router) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	writeRouterJSON(w, http.StatusOK, rt.Stats(r.Context()))
}

func meanUtilization(p batch.PoolState) float64 {
	if len(p.PerWorker) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range p.PerWorker {
		sum += w.Utilization
	}
	return sum / float64(len(p.PerWorker))
}

func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
