package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// member is one backend's membership state: its routing identity plus the
// hysteresis bookkeeping that decides whether the router offers it traffic.
type member struct {
	name string
	url  string // base URL, no trailing slash

	// up is the routing decision bit, read on every request without locks.
	up atomic.Bool
	// routed counts submissions this backend accepted through the router.
	routed atomic.Int64

	mu         sync.Mutex
	consecFail int
	consecOK   int
	lastErr    string
	lastProbe  time.Time
	markDowns  int64
}

// observe folds one health observation (an active /healthz probe or a
// passive proxied-request outcome) into the hysteresis state: a backend is
// marked down after markDownAfter consecutive failures and back up after
// markUpAfter consecutive successes, so a single dropped packet neither
// ejects a healthy backend nor readmits a flapping one.
func (m *member) observe(ok bool, errMsg string, markDownAfter, markUpAfter int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastProbe = time.Now()
	if ok {
		m.consecOK++
		m.consecFail = 0
		m.lastErr = ""
		if !m.up.Load() && m.consecOK >= markUpAfter {
			m.up.Store(true)
		}
		return
	}
	m.consecFail++
	m.consecOK = 0
	m.lastErr = errMsg
	if m.up.Load() && m.consecFail >= markDownAfter {
		m.up.Store(false)
		m.markDowns++
	}
}

// health snapshots the hysteresis state for /v1/cluster/stats.
func (m *member) health() (consecFail int, lastErr string, lastProbe time.Time, markDowns int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.consecFail, m.lastErr, m.lastProbe, m.markDowns
}

// probeLoop probes every member's /healthz at cfg.ProbeInterval until ctx is
// canceled. The first round runs immediately so a backend that is already
// dead at router start is marked down within MarkDownAfter intervals, not
// only after traffic hits it.
func (rt *Router) probeLoop(ctx context.Context) {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		rt.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probeAll probes every member concurrently and folds the results into the
// membership state.
func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			rt.observeMember(m, rt.probeOne(ctx, m))
		}(m)
	}
	wg.Wait()
}

// probeOne performs one /healthz probe, returning nil when the backend is
// healthy.
func (rt *Router) probeOne(ctx context.Context, m *member) error {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &probeStatusError{code: resp.StatusCode}
	}
	return nil
}

type probeStatusError struct{ code int }

func (e *probeStatusError) Error() string {
	return "healthz returned HTTP " + http.StatusText(e.code)
}

// observeMember records one observation, counting router-level mark-down
// transitions.
func (rt *Router) observeMember(m *member, err error) {
	if err == nil {
		rt.observe(m, true, "")
		return
	}
	rt.observe(m, false, err.Error())
}

func (rt *Router) observe(m *member, ok bool, errMsg string) {
	m.observe(ok, errMsg, rt.cfg.MarkDownAfter, rt.cfg.MarkUpAfter)
}
