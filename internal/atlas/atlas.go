package atlas

import (
	"sort"

	// The winner table references the "reorder" strategy; importing the
	// order package registers it, so any consumer resolving a Config via
	// core.NewStrategyByName finds every name the table can mention.
	_ "repro/internal/order"
)

// Generic is the fallback class key for circuits no generator family
// claims; the generated table always carries an entry for it.
const Generic = "generic"

// Config is one class's winning strategy configuration, in the exact shape
// serve's strategy/strategy_params request fields (and
// core.NewStrategyByName) accept.
type Config struct {
	// Class is the workload class key (gen.Classify vocabulary).
	Class string
	// Strategy is the registry name to install ("memory", "reorder", ...).
	Strategy string
	// Params is the strategy's JSON parameters; empty means none.
	Params string
	// Base and Order describe the configuration for humans: the base
	// approximation strategy inside any reorder wrapper, and the variable
	// ordering it runs under.
	Base, Order string
}

// Winner returns the committed winning configuration for a workload class.
func Winner(class string) (Config, bool) {
	c, ok := winners[class]
	return c, ok
}

// Resolve returns the winner for class, falling back to the Generic entry
// for unknown classes. The generated table guarantees Generic exists.
func Resolve(class string) Config {
	if c, ok := winners[class]; ok {
		return c
	}
	return winners[Generic]
}

// Classes returns every class with a committed winner, sorted.
func Classes() []string {
	out := make([]string, 0, len(winners))
	for c := range winners {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
