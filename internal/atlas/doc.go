// Package atlas holds the committed approximability-atlas winner table:
// for every workload class (see gen.Classify) the strategy configuration
// that won the benchtab.SweepAtlas grid — smallest peak DD size at
// fidelity ≥ benchtab.AtlasFidelityFloor. The table is generated into
// winners_gen.go by cmd/atlas (`make atlas`), committed alongside
// docs/ATLAS.md, and kept fresh by the `make atlas-check` CI gate; serve's
// strategy=auto resolves submissions through Winner.
package atlas
