package atlas

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestWinnersCoverEveryGeneratorClass(t *testing.T) {
	for _, class := range []string{
		gen.ClassQFT, gen.ClassGrover, gen.ClassSupremacy, gen.ClassPairs,
		gen.ClassQAOA, gen.ClassVQE, gen.ClassCliffordT, Generic,
	} {
		if _, ok := Winner(class); !ok {
			t.Errorf("no committed winner for class %q", class)
		}
	}
}

func TestResolveFallsBackToGeneric(t *testing.T) {
	want, ok := Winner(Generic)
	if !ok {
		t.Fatal("generated table is missing the generic entry")
	}
	if got := Resolve("no-such-class"); got != want {
		t.Errorf("Resolve(unknown) = %+v, want generic %+v", got, want)
	}
	if got := Resolve("qaoa"); got.Class != "qaoa" {
		t.Errorf("Resolve(qaoa) returned class %q", got.Class)
	}
}

func TestClassesSortedAndComplete(t *testing.T) {
	classes := Classes()
	if len(classes) != len(winners) {
		t.Fatalf("Classes() returned %d entries, table has %d", len(classes), len(winners))
	}
	for i := 1; i < len(classes); i++ {
		if classes[i-1] >= classes[i] {
			t.Fatalf("Classes() not strictly sorted: %q before %q", classes[i-1], classes[i])
		}
	}
}

// TestWinnersInstantiate builds every committed configuration through the
// strategy registry — the same call serve's compile path makes — so a stale
// or hand-mangled winners_gen.go fails here rather than at submit time.
func TestWinnersInstantiate(t *testing.T) {
	for _, class := range Classes() {
		cfg := Resolve(class)
		if cfg.Class != class {
			t.Errorf("%s: entry carries class %q", class, cfg.Class)
		}
		if cfg.Strategy == "" || cfg.Base == "" || cfg.Order == "" {
			t.Errorf("%s: incomplete config %+v", class, cfg)
			continue
		}
		s, err := core.NewStrategyByName(cfg.Strategy, json.RawMessage(cfg.Params))
		if err != nil {
			t.Errorf("%s: registry rejected committed winner (%s, %s): %v",
				class, cfg.Strategy, cfg.Params, err)
			continue
		}
		if s == nil && cfg.Strategy != "exact" {
			t.Errorf("%s: registry returned nil strategy for %q", class, cfg.Strategy)
		}
	}
}
