package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnum"
	"repro/internal/core"
	"repro/internal/sim"
)

// Job is one independent simulation.
type Job struct {
	// Name labels the job in results and progress reports.
	Name string
	// Circuit to simulate. Must be non-nil; a nil circuit fails the job
	// (not the batch).
	Circuit *circuit.Circuit
	// Options for the run. Options.Strategy must not be shared with any
	// other job in the batch: strategies are stateful per run, so two
	// workers driving one strategy instance race. Prefer NewStrategy.
	// A zero Options.MeasurementSeed is replaced by the derived per-job
	// seed (see Seed); a non-zero seed is kept verbatim.
	Options sim.Options
	// NewStrategy, when non-nil, constructs a fresh strategy for this
	// job's run, overriding Options.Strategy. This is the safe way to give
	// many jobs the "same" (stateful) strategy configuration.
	NewStrategy func() core.Strategy
	// Observer, when non-nil, receives this job's simulation lifecycle
	// events (per-gate sizes, approximation rounds, cleanups, completion),
	// overriding Options.Observer. It is invoked on the worker goroutine
	// running the job; like strategies, observers that keep state must not
	// be shared between jobs unless they synchronize internally. The
	// simulation service uses this to feed per-job event streams.
	Observer core.Observer
	// Timeout bounds this job's simulation; it takes precedence over
	// Options.JobTimeout. Zero means no per-job override. An explicit
	// Options.Deadline wins over both.
	Timeout time.Duration
	// Finalize, when non-nil, runs on the worker goroutine immediately
	// after the simulation finishes (on success and on failure alike),
	// while the worker's DD manager is still exclusively owned by this job.
	// This is the only safe place to post-process a result when managers
	// are reused: r.Result.Manager (when r.Result is non-nil) is valid for
	// sampling or fidelity computations here, but may be recycled as soon
	// as Finalize returns. Mutations to r are reflected in the reported
	// JobResult.
	Finalize func(r *JobResult)
}

// JobResult is the outcome of one job.
type JobResult struct {
	// Index is the job's position in the input slice.
	Index int
	// Name echoes Job.Name.
	Name string
	// Worker is the worker that ran the job, -1 if it was never started.
	Worker int
	// Seed is the measurement seed the run actually used.
	Seed int64
	// Result is the simulation result, nil on error.
	Result *sim.Result
	// Elapsed is the wall-clock time the job occupied its worker,
	// including failed and timed-out attempts (zero for jobs that never
	// started).
	Elapsed time.Duration
	// Err is the simulation error, the per-job deadline error (wrapping
	// sim.ErrDeadlineExceeded), or the batch context's cancellation cause
	// for jobs that never started.
	Err error
}

// Canceled reports whether the job was aborted by cancellation — standard
// context cancellation, a context deadline, or the pool's ErrCanceled cause
// (either before starting or between gates) — rather than failing on its
// own. Run additionally classifies jobs aborted with a custom cancellation
// cause (context.WithCancelCause) as canceled when counting Result.Canceled.
func (r JobResult) Canceled() bool {
	return errors.Is(r.Err, context.Canceled) ||
		errors.Is(r.Err, context.DeadlineExceeded) ||
		errors.Is(r.Err, ErrCanceled)
}

// Result aggregates a finished batch.
type Result struct {
	// Jobs holds one entry per input job, ordered by job index.
	Jobs []JobResult
	// Workers is the number of worker goroutines used.
	Workers int
	// WallTime is the elapsed time of the whole batch.
	WallTime time.Duration
	// CPUTime is the sum of the per-job elapsed times, including failed
	// and timed-out jobs. Each job's elapsed time is its own wall clock,
	// so as long as workers do not oversubscribe physical cores this is
	// the cost a one-worker run would pay, and WallTime approaches
	// CPUTime/Workers for balanced jobs; with more workers than cores,
	// time-sharing inflates it.
	CPUTime time.Duration
	// Completed, Failed, and Canceled count jobs by outcome.
	Completed, Failed, Canceled int
	// PerWorker holds one aggregate entry per worker goroutine, indexed by
	// worker id (JobResult.Worker).
	PerWorker []WorkerStats
}

// Options configures a batch run.
type Options struct {
	// Workers is the worker-pool size; values ≤ 0 select
	// runtime.GOMAXPROCS(0). The pool never exceeds the job count.
	Workers int
	// BaseSeed derives each job's measurement seed as Seed(BaseSeed,
	// index), keeping measurement and reset outcomes deterministic and
	// distinct across jobs for any worker count.
	BaseSeed int64
	// JobTimeout bounds every job's simulation (Job.Timeout overrides it
	// per job). Zero means no limit.
	JobTimeout time.Duration
	// ReuseManagers keeps one manager per worker alive across that
	// worker's jobs instead of building a fresh one per job. Between jobs
	// the worker resets the manager (sim.Simulator.Reset), so later jobs
	// allocate from warm node pools, cache backings, and the interned-weight
	// arena instead of growing them from scratch. Reset restores bit-level
	// reproducibility: every job's result is bit-identical to a run on a
	// fresh manager regardless of worker count or job-to-worker assignment.
	// The remaining trade-off is lifetime, not accuracy: a job's
	// Result.Final is only valid until its worker starts the next job, so
	// post-processing must happen in Job.Finalize.
	ReuseManagers bool
	// Arena sizes the per-worker memory arenas used when ReuseManagers is
	// set (ignored otherwise); see ArenaConfig. Workers draw reset
	// simulators from a process-wide arena at batch start and return them
	// at batch end, so consecutive batches share warm memory.
	Arena ArenaConfig
	// Observer, when non-nil, receives batch-lifecycle events: per-job
	// start/done on the job's worker, and one WorkerStats summary per
	// worker. See Observer for the concurrency contract.
	Observer Observer
	// Progress, when non-nil, is called after each job finishes with the
	// number of finished jobs, the total, and that job's result. Calls are
	// serialized; done reaches total unless the batch is canceled.
	Progress func(done, total int, r JobResult)
}

// Run executes the jobs on a worker pool and returns the aggregated result.
// Per-job failures are reported in Result.Jobs, not as a Run error; the
// returned error is non-nil only when ctx was canceled, in which case the
// partial Result is still returned (unstarted jobs carry the cancellation
// cause as their Err).
func Run(ctx context.Context, jobs []Job, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	res := &Result{
		Jobs:      make([]JobResult, len(jobs)),
		Workers:   workers,
		PerWorker: make([]WorkerStats, workers),
	}
	if len(jobs) == 0 {
		return res, nil
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes the done counter and Progress calls
		done int
	)
	report := func(jr JobResult) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), jr)
		}
	}

	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var s *sim.Simulator
			if opts.ReuseManagers {
				s = acquireSim(opts.Arena)
				defer releaseSim(s, opts.Arena)
			}
			ws := &res.PerWorker[worker] // workers only touch their own entry
			first := true
			for idx := range idxCh {
				if s != nil && !first {
					// Reset — not merely recycle — so the next job replays
					// bit-identically to a fresh manager while reusing the
					// pools, cache backings, and weight arena.
					s.Reset()
				}
				first = false
				if opts.Observer != nil {
					opts.Observer.OnJobStart(worker, idx, jobs[idx].Name)
				}
				jr := runJob(ctx, worker, idx, jobs[idx], opts, s)
				res.Jobs[idx] = jr // each index is written exactly once
				ws.Jobs++
				ws.Busy += jr.Elapsed
				if s != nil {
					ws.ArenaNodes = s.M.Pool().Capacity
					ws.ArenaWeights = s.M.CN.Size()
				}
				if opts.Observer != nil {
					opts.Observer.OnJobDone(worker, jr)
				}
				report(jr)
			}
			if opts.Observer != nil {
				opts.Observer.OnWorkerDone(worker, *ws)
			}
		}(w)
	}

	// Dispatch in index order; on cancellation, mark the undispatched tail
	// (no worker ever observes those indices, so the writes are safe).
	next := len(jobs)
dispatch:
	for i := range jobs {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			next = i
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()
	for i := next; i < len(jobs); i++ {
		res.Jobs[i] = JobResult{
			Index: i, Name: jobs[i].Name, Worker: -1, Err: context.Cause(ctx),
		}
	}

	cause := context.Cause(ctx)
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		res.CPUTime += jr.Elapsed
		switch {
		case jr.Err == nil:
			res.Completed++
		case jr.Canceled(), cause != nil && errors.Is(jr.Err, cause):
			res.Canceled++
		default:
			res.Failed++
		}
	}
	res.WallTime = time.Since(start)
	return res, cause
}

// runJob executes one job on the worker's simulator (or a fresh one when
// managers are not reused).
func runJob(ctx context.Context, worker, idx int, job Job, opts Options, s *sim.Simulator) (jr JobResult) {
	if job.Finalize != nil {
		defer func() { job.Finalize(&jr) }()
	}
	jr = JobResult{Index: idx, Name: job.Name, Worker: worker}
	if err := context.Cause(ctx); err != nil {
		jr.Err = err
		return jr
	}
	if job.Circuit == nil {
		jr.Err = fmt.Errorf("batch: job %d (%s): nil circuit", idx, job.Name)
		return jr
	}
	o := job.Options
	if o.Context == nil {
		o.Context = ctx
	}
	if o.MeasurementSeed == 0 {
		o.MeasurementSeed = Seed(opts.BaseSeed, idx)
	}
	jr.Seed = o.MeasurementSeed
	if o.Deadline.IsZero() {
		timeout := job.Timeout
		if timeout <= 0 {
			timeout = opts.JobTimeout
		}
		if timeout > 0 {
			o.Deadline = time.Now().Add(timeout)
		}
	}
	if job.NewStrategy != nil {
		o.Strategy = job.NewStrategy()
	}
	if job.Observer != nil {
		o.Observer = job.Observer
	}
	if s == nil {
		s = sim.New()
	}
	begin := time.Now()
	jr.Result, jr.Err = s.Run(job.Circuit, o)
	jr.Elapsed = time.Since(begin)
	return jr
}

// Seed derives the measurement seed for the job at the given index from a
// batch base seed, via the SplitMix64 finalizer: well-spread, non-zero
// for index ≥ 0, and stable across worker counts.
func Seed(base int64, index int) int64 {
	z := cnum.Mix64(uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15)
	if z == 0 { // zero means "derive" to the engine; never hand it back
		z = 0x9E3779B97F4A7C15
	}
	return int64(z)
}
