package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// snapshotJobs builds approximation jobs whose Finalize captures the full
// final-state amplitude vector while the worker's manager is still owned by
// the job — the only safe place to sample when managers are reused.
func snapshotJobs(n, qubits int, vecs [][]complex128) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		idx := i
		c := gen.RandomCliffordT(qubits, 120, int64(i))
		jobs[i] = Job{
			Name:    fmt.Sprintf("rct_seed%d", i),
			Circuit: c,
			NewStrategy: func() core.Strategy {
				return &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.95, Growth: 1.2}
			},
			Finalize: func(r *JobResult) {
				if r.Result != nil {
					vecs[idx] = r.Result.Manager.ToVector(r.Result.Final, qubits)
				}
			},
		}
	}
	return jobs
}

// TestBitIdenticalAcrossWorkersAndReuse is the engine's central determinism
// claim: every job's full amplitude vector (and every deterministic result
// field) is bit-identical — no tolerance — across worker counts 1/2/4 and
// across fresh-manager vs reused-manager execution, because reused managers
// are Reset to a bit-level fresh state between jobs.
func TestBitIdenticalAcrossWorkersAndReuse(t *testing.T) {
	const nJobs, qubits = 8, 7
	type mode struct {
		name    string
		workers int
		reuse   bool
		arena   ArenaConfig
	}
	modes := []mode{
		{"serial_fresh", 1, false, ArenaConfig{}},
		{"workers4_fresh", 4, false, ArenaConfig{}},
		{"serial_reuse", 1, true, ArenaConfig{}},
		{"workers2_reuse", 2, true, ArenaConfig{}},
		{"workers4_arena", 4, true, ArenaConfig{PrewarmNodes: 4096, MaxRetainedNodes: 1 << 20}},
	}

	var refVecs [][]complex128
	var refKeys []jobKey
	for _, md := range modes {
		vecs := make([][]complex128, nJobs)
		jobs := snapshotJobs(nJobs, qubits, vecs)
		res, err := Run(context.Background(), jobs, Options{
			Workers: md.workers, BaseSeed: 42, ReuseManagers: md.reuse, Arena: md.arena,
		})
		if err != nil {
			t.Fatalf("%s: %v", md.name, err)
		}
		if res.Completed != nJobs {
			t.Fatalf("%s: completed %d of %d", md.name, res.Completed, nJobs)
		}
		keys := make([]jobKey, nJobs)
		for i := range res.Jobs {
			keys[i] = keyOf(res.Jobs[i])
		}
		if refVecs == nil {
			refVecs, refKeys = vecs, keys
			continue
		}
		for i := 0; i < nJobs; i++ {
			if keys[i] != refKeys[i] {
				t.Errorf("%s: job %d result fields diverged: %+v vs %+v",
					md.name, i, keys[i], refKeys[i])
			}
			if len(vecs[i]) != len(refVecs[i]) {
				t.Fatalf("%s: job %d amplitude count %d vs %d",
					md.name, i, len(vecs[i]), len(refVecs[i]))
			}
			for a := range vecs[i] {
				if vecs[i][a] != refVecs[i][a] { // bit-exact, no tolerance
					t.Fatalf("%s: job %d amplitude %d differs: %v vs %v",
						md.name, i, a, vecs[i][a], refVecs[i][a])
				}
			}
		}
	}
}

// batchRecorder tallies Observer events across workers.
type batchRecorder struct {
	mu      sync.Mutex
	starts  int
	dones   int
	workers map[int]WorkerStats
}

func (r *batchRecorder) OnJobStart(worker, index int, name string) {
	r.mu.Lock()
	r.starts++
	r.mu.Unlock()
}

func (r *batchRecorder) OnJobDone(worker int, jr JobResult) {
	r.mu.Lock()
	r.dones++
	r.mu.Unlock()
}

func (r *batchRecorder) OnWorkerDone(worker int, ws WorkerStats) {
	r.mu.Lock()
	if r.workers == nil {
		r.workers = make(map[int]WorkerStats)
	}
	r.workers[worker] = ws
	r.mu.Unlock()
}

func TestBatchObserverAndPerWorkerStats(t *testing.T) {
	rec := &batchRecorder{}
	res, err := Run(context.Background(), approxJobs(10), NewOptions(
		WithWorkers(2), WithBaseSeed(7), WithReuseManagers(), WithObserver(rec),
	))
	if err != nil {
		t.Fatal(err)
	}
	if rec.starts != 10 || rec.dones != 10 {
		t.Errorf("observer saw %d starts / %d dones, want 10/10", rec.starts, rec.dones)
	}
	if len(rec.workers) != 2 {
		t.Fatalf("OnWorkerDone fired for %d workers, want 2", len(rec.workers))
	}
	if len(res.PerWorker) != 2 {
		t.Fatalf("PerWorker has %d entries, want 2", len(res.PerWorker))
	}
	jobs, busy := 0, time.Duration(0)
	for w, ws := range res.PerWorker {
		if ws != rec.workers[w] {
			t.Errorf("worker %d: result stats %+v != observer stats %+v", w, ws, rec.workers[w])
		}
		if ws.Jobs > 0 && (ws.ArenaNodes == 0 || ws.ArenaWeights == 0) {
			t.Errorf("worker %d ran %d jobs but reports empty arena: %+v", w, ws.Jobs, ws)
		}
		jobs += ws.Jobs
		busy += ws.Busy
	}
	if jobs != 10 {
		t.Errorf("per-worker jobs sum to %d, want 10", jobs)
	}
	if busy != res.CPUTime {
		t.Errorf("per-worker busy sums to %v, CPUTime is %v", busy, res.CPUTime)
	}
}

func TestNewOptionsFoldsBatchOptions(t *testing.T) {
	o := NewOptions(
		WithWorkers(3),
		WithBaseSeed(11),
		WithJobTimeout(time.Second),
		WithArena(ArenaConfig{PrewarmNodes: 100, MaxRetainedNodes: 200}),
	)
	if o.Workers != 3 || o.BaseSeed != 11 || o.JobTimeout != time.Second {
		t.Errorf("options not applied: %+v", o)
	}
	if !o.ReuseManagers {
		t.Error("WithArena must imply ReuseManagers")
	}
	if o.Arena.PrewarmNodes != 100 || o.Arena.MaxRetainedNodes != 200 {
		t.Errorf("arena config not applied: %+v", o.Arena)
	}
}

// TestTypedSentinels pins the errors.Is contract of the pool's typed errors,
// including the deprecated ErrPoolClosed alias and the default cancel cause.
func TestTypedSentinels(t *testing.T) {
	if !errors.Is(ErrPoolClosed, ErrShutdown) {
		t.Error("ErrPoolClosed must alias ErrShutdown")
	}
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1})
	slow := Job{Name: "slow", Circuit: gen.RandomCliffordT(14, 100000, 1)}
	h1, err := p.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	for !h1.Started() {
		time.Sleep(time.Millisecond)
	}
	h2, err := p.Submit(poolJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(poolJob(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err %v, want ErrQueueFull", err)
	}

	// nil cancel cause defaults to ErrCanceled and counts as canceled.
	h2.Cancel(nil)
	h1.Cancel(nil)
	jr, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(jr.Err, ErrCanceled) {
		t.Errorf("queued job cancel cause = %v, want ErrCanceled", jr.Err)
	}
	if !jr.Canceled() {
		t.Error("ErrCanceled outcome not classified as canceled")
	}
	if jr, _ := h1.Wait(context.Background()); !jr.Canceled() {
		t.Errorf("running job cancel outcome %v not classified as canceled", jr.Err)
	}

	p.Close()
	if _, err := p.Submit(poolJob(4)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after close: err %v, want ErrShutdown", err)
	}
}

func TestPoolStatePerWorker(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 2, ReuseManagers: true, Arena: ArenaConfig{PrewarmNodes: 2048}})
	defer p.Close()
	handles := make([]*Handle, 6)
	for i := range handles {
		h, err := p.Submit(poolJob(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for _, h := range handles {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := p.State()
	if st.Uptime <= 0 {
		t.Error("pool uptime missing")
	}
	if len(st.PerWorker) != 2 {
		t.Fatalf("PerWorker has %d entries, want 2", len(st.PerWorker))
	}
	jobs := 0
	for w, ws := range st.PerWorker {
		jobs += ws.Jobs
		if ws.Jobs > 0 {
			if ws.Busy <= 0 {
				t.Errorf("worker %d ran %d jobs with no busy time", w, ws.Jobs)
			}
			if ws.Utilization <= 0 || ws.Utilization > 1 {
				t.Errorf("worker %d utilization %v outside (0, 1]", w, ws.Utilization)
			}
			if ws.ArenaNodes == 0 || ws.ArenaWeights == 0 {
				t.Errorf("worker %d reports empty arena in reuse mode: %+v", w, ws.WorkerStats)
			}
		}
	}
	if jobs != len(handles) {
		t.Errorf("per-worker jobs sum to %d, want %d", jobs, len(handles))
	}
}
