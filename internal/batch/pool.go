package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Typed pool errors. Submit returns the first two; the third is the default
// cancellation cause. All are errors.Is-able end to end: the HTTP service
// maps them to error codes and the client maps the codes back to these
// sentinels.
var (
	// ErrShutdown is returned by Submit after Close or Shutdown.
	ErrShutdown = errors.New("batch: pool closed")
	// ErrQueueFull is returned by Submit when the bounded queue is full,
	// so callers (e.g. an HTTP service) can shed load instead of blocking.
	ErrQueueFull = errors.New("batch: pool queue full")
	// ErrCanceled is the cancellation cause used by CancelAll and
	// Handle.Cancel when the caller passes nil; JobResult.Canceled reports
	// true for it.
	ErrCanceled = errors.New("batch: job canceled")
)

// ErrPoolClosed is the former name of ErrShutdown.
//
// Deprecated: use ErrShutdown.
var ErrPoolClosed = ErrShutdown

// PoolOptions configures an open-ended worker pool.
type PoolOptions struct {
	// Workers is the worker-goroutine count; values ≤ 0 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of submitted-but-not-yet-started jobs;
	// values ≤ 0 select 4×Workers. When the queue is full Submit fails
	// with ErrQueueFull instead of blocking, so callers (e.g. an HTTP
	// service) can shed load.
	QueueDepth int
	// BaseSeed derives measurement seeds for jobs whose Options leave
	// MeasurementSeed zero, exactly as Options.BaseSeed does for Run:
	// Seed(BaseSeed, submissionIndex).
	BaseSeed int64
	// JobTimeout bounds every job's simulation unless the job carries its
	// own Timeout. Zero means no limit.
	JobTimeout time.Duration
	// ReuseManagers keeps one DD manager per worker alive across jobs,
	// resetting it between jobs so warm pooled memory is reused while
	// results stay bit-identical to fresh managers (see Options.
	// ReuseManagers). A job's Result.Final is then only valid inside
	// Job.Finalize.
	ReuseManagers bool
	// Arena sizes the per-worker memory arenas when ReuseManagers is set;
	// see ArenaConfig.
	Arena ArenaConfig
}

// Pool is the open-ended counterpart of Run: instead of executing one closed
// batch, it accepts jobs one at a time and returns a Handle per job, so
// long-lived callers (the simulation service in internal/serve) can submit,
// poll, and cancel independent simulations against a fixed worker pool.
//
// The determinism contract matches Run: a job's outcome depends only on its
// circuit, its options, and the seed derived from PoolOptions.BaseSeed and
// its submission index — never on which worker runs it, in either manager
// mode (ReuseManagers resets workers' managers between jobs, which keeps
// results bit-identical while reusing their memory).
type Pool struct {
	opts    PoolOptions
	workers int
	depth   int

	ctx    context.Context // parent of every job context; canceled by CancelAll
	cancel context.CancelCauseFunc

	queue chan *Handle
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	next   int

	start time.Time

	queued    atomic.Int64
	running   atomic.Int64
	finished  atomic.Int64
	submitted atomic.Int64

	perWorker []workerCounters
}

// workerCounters holds one worker's lifetime statistics, padded to a cache
// line: every worker bumps its own counters after every job, and co-locating
// two workers' hot counters on one line makes those updates contend
// (false sharing) even though they touch disjoint fields.
type workerCounters struct {
	jobs         atomic.Int64
	busyNanos    atomic.Int64
	arenaNodes   atomic.Int64
	arenaWeights atomic.Int64
	_            [32]byte
}

// Handle tracks one submitted job through the pool.
type Handle struct {
	index  int
	job    Job
	ctx    context.Context
	cancel context.CancelCauseFunc

	started atomic.Bool
	done    chan struct{}
	res     JobResult // written by the worker before done is closed
}

// NewPool starts the workers and returns a pool ready for Submit.
func NewPool(opts PoolOptions) *Pool {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	p := &Pool{
		opts:      opts,
		workers:   workers,
		depth:     depth,
		ctx:       ctx,
		cancel:    cancel,
		queue:     make(chan *Handle, depth),
		start:     time.Now(),
		perWorker: make([]workerCounters, workers),
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	var s *sim.Simulator
	if p.opts.ReuseManagers {
		s = acquireSim(p.opts.Arena)
		defer releaseSim(s, p.opts.Arena)
	}
	wc := &p.perWorker[id]
	first := true
	opts := Options{
		BaseSeed:   p.opts.BaseSeed,
		JobTimeout: p.opts.JobTimeout,
	}
	for h := range p.queue {
		p.queued.Add(-1)
		if s != nil && !first {
			// Reset — not merely recycle — so the next job replays
			// bit-identically to a fresh manager on warm memory, as the
			// closed-batch worker loop does.
			s.Reset()
		}
		first = false
		h.started.Store(true)
		p.running.Add(1)
		h.res = runJob(h.ctx, id, h.index, h.job, opts, s)
		wc.jobs.Add(1)
		wc.busyNanos.Add(int64(h.res.Elapsed))
		if s != nil {
			wc.arenaNodes.Store(int64(s.M.Pool().Capacity))
			wc.arenaWeights.Store(int64(s.M.CN.Size()))
		}
		// Release the job context: this detaches it from the pool context's
		// children (it would otherwise stay registered — and leak — for the
		// pool's lifetime). The job is over, so the cause is never observed.
		h.cancel(context.Canceled)
		p.running.Add(-1)
		p.finished.Add(1)
		close(h.done)
	}
}

// Submit enqueues one job and returns its handle without blocking. It fails
// with ErrQueueFull when the bounded queue is full and ErrShutdown after
// Close/Shutdown. The job's measurement seed derives from the submission
// index exactly as in a closed batch (see PoolOptions.BaseSeed).
func (p *Pool) Submit(job Job) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrShutdown
	}
	ctx, cancel := context.WithCancelCause(p.ctx)
	h := &Handle{
		index:  p.next,
		job:    job,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	select {
	case p.queue <- h:
		p.next++
		p.queued.Add(1)
		p.submitted.Add(1)
		return h, nil
	default:
		cancel(ErrQueueFull) // release the context; the handle is dropped
		return nil, ErrQueueFull
	}
}

// Close stops accepting new jobs, drains the queue, and waits for in-flight
// jobs to finish. It is safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// CancelAll cancels every queued and in-flight job with the given cause
// (ErrCanceled when nil). The pool keeps accepting new jobs; combine
// with Close (or use Shutdown) to tear the pool down.
func (p *Pool) CancelAll(cause error) {
	if cause == nil {
		cause = ErrCanceled
	}
	p.cancel(cause)
}

// Shutdown closes the pool gracefully: it stops accepting jobs and waits for
// queued and running jobs to drain. If ctx expires first, every remaining
// job is canceled (with the context's cause) and Shutdown waits for the
// workers to acknowledge, returning ctx.Err().
func (p *Pool) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.CancelAll(context.Cause(ctx))
		<-done
		return ctx.Err()
	}
}

// PoolState is a point-in-time snapshot of pool occupancy.
type PoolState struct {
	// Workers and QueueDepth echo the resolved configuration.
	Workers    int
	QueueDepth int
	// Queued and Running count jobs waiting in the queue and executing on
	// workers right now.
	Queued  int
	Running int
	// Submitted and Finished count jobs over the pool's lifetime (Finished
	// includes failed and canceled jobs).
	Submitted int64
	Finished  int64
	// Uptime is the time since the pool started.
	Uptime time.Duration
	// PerWorker holds one lifetime entry per worker goroutine, indexed by
	// worker id.
	PerWorker []PoolWorkerState
}

// PoolWorkerState is one worker's lifetime statistics in a PoolState
// snapshot.
type PoolWorkerState struct {
	WorkerStats
	// Utilization is the fraction of the pool's uptime this worker spent
	// running jobs (Busy / Uptime).
	Utilization float64
}

// State returns a snapshot of pool occupancy.
func (p *Pool) State() PoolState {
	uptime := time.Since(p.start)
	st := PoolState{
		Workers:    p.workers,
		QueueDepth: p.depth,
		Queued:     int(p.queued.Load()),
		Running:    int(p.running.Load()),
		Submitted:  p.submitted.Load(),
		Finished:   p.finished.Load(),
		Uptime:     uptime,
		PerWorker:  make([]PoolWorkerState, p.workers),
	}
	for i := range p.perWorker {
		wc := &p.perWorker[i]
		busy := time.Duration(wc.busyNanos.Load())
		st.PerWorker[i] = PoolWorkerState{
			WorkerStats: WorkerStats{
				Jobs:         int(wc.jobs.Load()),
				Busy:         busy,
				ArenaNodes:   int(wc.arenaNodes.Load()),
				ArenaWeights: int(wc.arenaWeights.Load()),
			},
		}
		if uptime > 0 {
			st.PerWorker[i].Utilization = float64(busy) / float64(uptime)
		}
	}
	return st
}

// Index returns the job's submission index (the seed-derivation index).
func (h *Handle) Index() int { return h.index }

// Started reports whether a worker has picked the job up. It keeps reporting
// true after the job finishes.
func (h *Handle) Started() bool { return h.started.Load() }

// Done returns a channel closed when the job has finished (in any state).
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result returns the job result and true once the job has finished, or a
// zero JobResult and false while it is still queued or running.
func (h *Handle) Result() (JobResult, bool) {
	select {
	case <-h.done:
		return h.res, true
	default:
		return JobResult{}, false
	}
}

// Wait blocks until the job finishes or ctx expires. Note that ctx expiring
// does not cancel the job itself — use Cancel for that.
func (h *Handle) Wait(ctx context.Context) (JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-h.done:
		return h.res, nil
	case <-ctx.Done():
		return JobResult{}, context.Cause(ctx)
	}
}

// Cancel aborts the job with the given cause (ErrCanceled when nil):
// queued jobs fail without running, in-flight simulations stop between
// gates. Canceling a finished job is a no-op.
func (h *Handle) Cancel(cause error) {
	if cause == nil {
		cause = ErrCanceled
	}
	h.cancel(cause)
}
