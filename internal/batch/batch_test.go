package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sim"
)

// approxJobs builds jobs that exercise the memory-driven strategy on seeded
// random circuits — enough structure that approximation rounds actually
// fire, small enough that a batch of dozens stays fast.
func approxJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		c := gen.RandomCliffordT(7, 120, int64(i))
		jobs[i] = Job{
			Name:    fmt.Sprintf("rct_seed%d", i),
			Circuit: c,
			NewStrategy: func() core.Strategy {
				return &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.95, Growth: 1.2}
			},
		}
	}
	return jobs
}

func TestRunCompletesAllJobs(t *testing.T) {
	jobs := approxJobs(9)
	res, err := Run(context.Background(), jobs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 3 {
		t.Errorf("workers = %d, want 3", res.Workers)
	}
	if res.Completed != len(jobs) || res.Failed != 0 || res.Canceled != 0 {
		t.Fatalf("completed/failed/canceled = %d/%d/%d, want %d/0/0",
			res.Completed, res.Failed, res.Canceled, len(jobs))
	}
	var cpu time.Duration
	for i, jr := range res.Jobs {
		if jr.Index != i {
			t.Errorf("job %d reported index %d", i, jr.Index)
		}
		if jr.Name != jobs[i].Name {
			t.Errorf("job %d name %q, want %q", i, jr.Name, jobs[i].Name)
		}
		if jr.Err != nil || jr.Result == nil {
			t.Fatalf("job %d: err=%v result=%v", i, jr.Err, jr.Result)
		}
		if jr.Worker < 0 || jr.Worker >= 3 {
			t.Errorf("job %d ran on worker %d", i, jr.Worker)
		}
		if jr.Elapsed < jr.Result.Runtime {
			t.Errorf("job %d elapsed %v below its simulation runtime %v",
				i, jr.Elapsed, jr.Result.Runtime)
		}
		cpu += jr.Elapsed
	}
	if res.CPUTime != cpu {
		t.Errorf("CPUTime %v != sum of elapsed times %v", res.CPUTime, cpu)
	}
}

// jobKey collects every deterministic field of a job result.
type jobKey struct {
	seed           int64
	maxDD, finalDD int
	rounds         int
	estFid, bound  float64
}

func keyOf(jr JobResult) jobKey {
	return jobKey{
		seed:    jr.Seed,
		maxDD:   jr.Result.MaxDDSize,
		finalDD: jr.Result.FinalDDSize,
		rounds:  len(jr.Result.Rounds),
		estFid:  jr.Result.EstimatedFidelity,
		bound:   jr.Result.FidelityBound,
	}
}

func TestSerialAndParallelAgreeBitExactly(t *testing.T) {
	jobs := approxJobs(8)
	serial, err := Run(context.Background(), jobs, Options{Workers: 1, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), approxJobs(8), Options{Workers: 8, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Jobs {
		s, p := keyOf(serial.Jobs[i]), keyOf(parallel.Jobs[i])
		if s != p {
			t.Errorf("job %d diverged: serial %+v parallel %+v", i, s, p)
		}
	}
}

func TestMeasurementSeedDerivation(t *testing.T) {
	// A register of minus states measured mid-circuit: outcomes are
	// RNG-driven, so they depend only on the derived seed.
	mkJob := func(name string, seed int64) Job {
		c := circuit.New(4, "meas")
		for q := 0; q < 4; q++ {
			c.H(q)
		}
		for q := 0; q < 4; q++ {
			c.Measure(q)
		}
		return Job{Name: name, Circuit: c, Options: sim.Options{MeasurementSeed: seed}}
	}
	jobs := []Job{mkJob("derived0", 0), mkJob("derived1", 0), mkJob("explicit", 123)}
	res, err := Run(context.Background(), jobs, Options{Workers: 3, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Jobs[0].Seed, Seed(7, 0); got != want {
		t.Errorf("job 0 seed %d, want derived %d", got, want)
	}
	if got, want := res.Jobs[1].Seed, Seed(7, 1); got != want {
		t.Errorf("job 1 seed %d, want derived %d", got, want)
	}
	if res.Jobs[0].Seed == res.Jobs[1].Seed {
		t.Error("distinct jobs derived the same seed")
	}
	if res.Jobs[2].Seed != 123 {
		t.Errorf("explicit seed overridden: got %d", res.Jobs[2].Seed)
	}

	// Re-running with the same base seed reproduces the measurement record.
	res2, err := Run(context.Background(), []Job{mkJob("derived0", 0)}, Options{Workers: 1, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Jobs[0].Result.Measurements, res2.Jobs[0].Result.Measurements
	if len(a) != len(b) {
		t.Fatalf("measurement counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("measurement %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSeedStableAndSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := Seed(99, i)
		if s == 0 {
			t.Fatalf("Seed(99, %d) = 0; zero means 'derive' to the engine", i)
		}
		if seen[s] {
			t.Fatalf("Seed(99, %d) collides", i)
		}
		seen[s] = true
		if s != Seed(99, i) {
			t.Fatalf("Seed(99, %d) not stable", i)
		}
	}
}

func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var firstDone int
	opts := Options{
		Workers: 2,
		Progress: func(done, total int, jr JobResult) {
			if done == 1 {
				firstDone++
				cancel() // stop the batch as soon as anything finishes
			}
		},
	}
	res, err := Run(ctx, approxJobs(24), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if firstDone != 1 {
		t.Fatalf("progress(done=1) fired %d times", firstDone)
	}
	if res.Canceled == 0 {
		t.Error("no jobs reported canceled")
	}
	if res.Completed == 0 {
		t.Error("expected at least the first job to complete")
	}
	if res.Completed+res.Failed+res.Canceled != 24 {
		t.Errorf("outcome counts %d+%d+%d don't sum to 24",
			res.Completed, res.Failed, res.Canceled)
	}
	for _, jr := range res.Jobs {
		if jr.Err != nil && !jr.Canceled() {
			t.Errorf("job %d failed with non-cancellation error: %v", jr.Index, jr.Err)
		}
		if jr.Worker == -1 && jr.Err == nil {
			t.Errorf("job %d never started yet has no error", jr.Index)
		}
	}
}

func TestContextCancelAbortsInFlightRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the simulation must abort between gates
	s := sim.New()
	_, err := s.Run(gen.QFT(8), sim.Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrapped context.Canceled", err)
	}
}

func TestPerJobTimeout(t *testing.T) {
	jobs := approxJobs(3)
	jobs[1].Timeout = -1 // negative per-job override falls back to batch timeout
	res, err := Run(context.Background(), jobs, Options{
		Workers:    1,
		JobTimeout: time.Nanosecond, // expires immediately, between gates
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != len(jobs) {
		t.Fatalf("failed = %d, want %d", res.Failed, len(jobs))
	}
	for _, jr := range res.Jobs {
		if !errors.Is(jr.Err, sim.ErrDeadlineExceeded) {
			t.Errorf("job %d error %v does not wrap ErrDeadlineExceeded", jr.Index, jr.Err)
		}
		if jr.Canceled() {
			t.Errorf("job %d deadline miscounted as cancellation", jr.Index)
		}
		if jr.Elapsed <= 0 {
			t.Errorf("job %d ran (and failed) but has no elapsed time", jr.Index)
		}
	}
	if res.CPUTime <= 0 {
		t.Error("CPUTime omits failed jobs")
	}
}

func TestCustomCancelCauseCountsAsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	boom := errors.New("user abort")
	var once sync.Once
	res, err := Run(ctx, approxJobs(16), Options{
		Workers: 2,
		Progress: func(done, total int, jr JobResult) {
			once.Do(func() { cancel(boom) })
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the custom cause", err)
	}
	if res.Canceled == 0 {
		t.Error("custom-cause cancellation not counted as Canceled")
	}
	if res.Failed != 0 {
		t.Errorf("custom-cause cancellation miscounted as %d failures", res.Failed)
	}
}

func TestExplicitDeadlineWinsOverTimeout(t *testing.T) {
	jobs := approxJobs(1)
	jobs[0].Options.Deadline = time.Now().Add(time.Minute)
	jobs[0].Timeout = time.Nanosecond
	res, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Err != nil {
		t.Fatalf("explicit future deadline overridden by timeout: %v", res.Jobs[0].Err)
	}
}

func TestNilCircuitFailsJobNotBatch(t *testing.T) {
	jobs := approxJobs(2)
	jobs = append(jobs, Job{Name: "broken"})
	res, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Failed != 1 {
		t.Fatalf("completed/failed = %d/%d, want 2/1", res.Completed, res.Failed)
	}
	if res.Jobs[2].Err == nil {
		t.Fatal("nil circuit accepted")
	}
}

func TestEmptyBatch(t *testing.T) {
	res, err := Run(context.Background(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 0 || res.Completed != 0 {
		t.Fatalf("unexpected result for empty batch: %+v", res)
	}
}

func TestNilContextDefaultsToBackground(t *testing.T) {
	res, err := Run(nil, approxJobs(2), Options{Workers: 2}) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want 2", res.Completed)
	}
}

func TestReuseManagersCompletes(t *testing.T) {
	res, err := Run(context.Background(), approxJobs(6), Options{Workers: 2, ReuseManagers: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed = %d, want 6", res.Completed)
	}
}

// TestStressMoreJobsThanWorkers floods a small pool; run under -race this
// doubles as the engine's data-race stress test (CI runs go test -race).
func TestStressMoreJobsThanWorkers(t *testing.T) {
	const n = 64
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name:    fmt.Sprintf("ghz%d", i),
			Circuit: gen.GHZ(3 + i%5),
			NewStrategy: func() core.Strategy {
				return &core.MemoryDriven{Threshold: 4, RoundFidelity: 0.9, Growth: 1.5}
			},
		}
	}
	var calls int
	res, err := Run(context.Background(), jobs, Options{
		Workers: 4,
		Progress: func(done, total int, jr JobResult) {
			calls++
			if done != calls {
				t.Errorf("progress done=%d after %d calls (not serialized?)", done, calls)
			}
			if total != n {
				t.Errorf("progress total=%d, want %d", total, n)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d, want %d", res.Completed, n)
	}
	if calls != n {
		t.Fatalf("progress fired %d times, want %d", calls, n)
	}
}

// jobEventCounter is a per-job observer tallying lifecycle events.
type jobEventCounter struct {
	core.NopObserver
	gates, finishes int
}

func (o *jobEventCounter) OnGate(core.GateEvent)     { o.gates++ }
func (o *jobEventCounter) OnFinish(core.FinishEvent) { o.finishes++ }

func TestPerJobObserverPlumbing(t *testing.T) {
	circs := []*circuit.Circuit{gen.QFT(6), gen.GHZ(7), gen.QFT(5)}
	observers := make([]*jobEventCounter, len(circs))
	jobs := make([]Job, len(circs))
	for i, c := range circs {
		observers[i] = &jobEventCounter{}
		jobs[i] = Job{Name: c.Name, Circuit: c, Observer: observers[i]}
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed %d of %d", res.Completed, len(jobs))
	}
	for i, obs := range observers {
		if obs.gates != circs[i].Len() {
			t.Errorf("job %d: OnGate fired %d times for %d gates", i, obs.gates, circs[i].Len())
		}
		if obs.finishes != 1 {
			t.Errorf("job %d: OnFinish fired %d times", i, obs.finishes)
		}
	}
}
