// Package batch fans independent simulation jobs out across a pool of
// worker goroutines. Each worker owns one sim.Simulator — DD managers are
// not goroutine-safe, so a manager is never shared between workers.
//
// Two execution shapes share one Job type and one determinism contract:
//
//   - Run executes a closed batch: all jobs known up front, dispatched in
//     index order with results reported in index order. This drives the
//     Table I halves and the hyper-parameter sweeps in internal/benchtab.
//   - Pool accepts jobs one at a time and hands back a Handle per job
//     (Done/Result/Wait/Cancel), so long-lived callers — the HTTP
//     simulation service in internal/serve — can submit, poll, and cancel
//     against a fixed worker pool with a bounded queue.
//
// The engine guarantees determinism: a job's outcome depends only on its
// circuit, its options, and the seed derived from the base seed and the
// job (or submission) index — never on the worker it lands on or the
// worker count. By default every job runs on a fresh manager; with
// ReuseManagers each worker keeps one manager and resets it between jobs,
// reusing its node pools, cache backings, and interned-weight arena. Reset
// restores the manager to a bit-level fresh state, so in both modes node
// identities, value-table contents, and therefore every reported metric
// are bit-identical between a serial (one-worker) and a parallel run; only
// wall-clock timing fields differ. The one reuse trade-off is lifetime: a
// job's Result.Final is only valid inside Job.Finalize, which runs on the
// worker before the manager is reset for the next job.
//
// Cancellation is cooperative and two-level: the batch context (or a
// Handle's Cancel) stops dispatch of not-yet-started jobs and aborts
// in-flight simulations between gates (via sim.Options.Context), and
// per-job deadlines (Job.Timeout or the batch/pool JobTimeout) bound each
// simulation individually, mirroring the paper's 3 h timeout column.
//
// The root package re-exports the closed-batch entry point as
// repro.BatchRun.
package batch
