package batch

import (
	"sync"

	"repro/internal/sim"
)

// Process-wide arena of reset simulators. Workers draw from it at batch
// start and return their simulator at batch end, so the node-pool chunks,
// cache backings, and interned-weight arenas a batch grows are reused by the
// next batch instead of being re-allocated — the dominant cost of short
// repeated batches (benchmark sweeps, the HTTP service under load).
//
// Safety: sim.Simulator.Reset restores a simulator to a state that replays
// any circuit bit-identically to a brand-new one (tested in internal/dd and
// internal/batch), so drawing warm simulators never changes results. The
// arena is a sync.Pool, so retained memory is dropped by the GC under
// pressure rather than held forever.
var simArena sync.Pool

// acquireSim returns a reset simulator, warm when the arena has one.
func acquireSim(cfg ArenaConfig) *sim.Simulator {
	if v := simArena.Get(); v != nil {
		s := v.(*sim.Simulator)
		if cfg.PrewarmNodes > 0 {
			s.M.Prewarm(cfg.PrewarmNodes) // no-op when already warm enough
		}
		return s
	}
	s := sim.New()
	if cfg.PrewarmNodes > 0 {
		s.M.Prewarm(cfg.PrewarmNodes)
	}
	return s
}

// releaseSim resets the simulator and returns it to the arena, trimming its
// pools first when they outgrew the configured retention cap.
func releaseSim(s *sim.Simulator, cfg ArenaConfig) {
	s.Reset()
	if cfg.MaxRetainedNodes > 0 && s.M.Pool().Capacity > cfg.MaxRetainedNodes {
		s.M.TrimPools()
	}
	simArena.Put(s)
}
