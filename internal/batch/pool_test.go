package batch

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sim"
)

func poolJob(seed int64) Job {
	return Job{
		Name:    "rct",
		Circuit: gen.RandomCliffordT(6, 60, seed),
		NewStrategy: func() core.Strategy {
			return &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.97}
		},
	}
}

func TestPoolMatchesClosedBatch(t *testing.T) {
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = poolJob(int64(i))
	}
	closed, err := Run(context.Background(), jobs, Options{Workers: 2, BaseSeed: 9})
	if err != nil {
		t.Fatal(err)
	}

	p := NewPool(PoolOptions{Workers: 2, BaseSeed: 9})
	defer p.Close()
	handles := make([]*Handle, len(jobs))
	for i := range jobs {
		h, err := p.Submit(jobs[i])
		if err != nil {
			t.Fatal(err)
		}
		if h.Index() != i {
			t.Fatalf("submission index %d, want %d", h.Index(), i)
		}
		handles[i] = h
	}
	for i, h := range handles {
		jr, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		want := closed.Jobs[i]
		if jr.Seed != want.Seed {
			t.Errorf("job %d seed %d, want %d (pool must derive seeds like Run)", i, jr.Seed, want.Seed)
		}
		if jr.Result.MaxDDSize != want.Result.MaxDDSize ||
			jr.Result.EstimatedFidelity != want.Result.EstimatedFidelity {
			t.Errorf("job %d diverges from closed batch: maxDD %d vs %d, fidelity %v vs %v",
				i, jr.Result.MaxDDSize, want.Result.MaxDDSize,
				jr.Result.EstimatedFidelity, want.Result.EstimatedFidelity)
		}
	}
	st := p.State()
	if st.Submitted != 5 || st.Finished != 5 || st.Queued != 0 || st.Running != 0 {
		t.Errorf("pool state after drain: %+v", st)
	}
}

func TestPoolQueueFullAndClosed(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1})
	// Block the single worker with a canceled-later job so the queue fills.
	slow := Job{Name: "slow", Circuit: gen.RandomCliffordT(14, 100000, 1)}
	h1, err := p.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked h1 up, then fill the one queue slot.
	for !h1.Started() {
		time.Sleep(time.Millisecond)
	}
	h2, err := p.Submit(poolJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(poolJob(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err %v, want ErrQueueFull", err)
	}
	h1.Cancel(nil)
	if jr, err := h1.Wait(context.Background()); err != nil || !jr.Canceled() {
		t.Fatalf("canceled in-flight job: res %+v wait err %v", jr, err)
	}
	if jr, err := h2.Wait(context.Background()); err != nil || jr.Err != nil {
		t.Fatalf("queued job after cancel: %+v, %v", jr, err)
	}
	p.Close()
	if _, err := p.Submit(poolJob(4)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: err %v, want ErrPoolClosed", err)
	}
}

func TestPoolCancelQueued(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4})
	defer p.Close()
	slow := Job{Name: "slow", Circuit: gen.RandomCliffordT(14, 100000, 1)}
	h1, err := p.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.Submit(poolJob(1))
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("not needed anymore")
	h2.Cancel(cause)
	h1.Cancel(nil)
	jr, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(jr.Err, cause) {
		t.Fatalf("queued cancel cause: got %v, want %v", jr.Err, cause)
	}
	if jr.Result != nil {
		t.Error("canceled queued job must not carry a result")
	}
}

func TestPoolJobTimeout(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, JobTimeout: 20 * time.Millisecond})
	defer p.Close()
	h, err := p.Submit(Job{Name: "slow", Circuit: gen.RandomCliffordT(14, 100000, 1)})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(jr.Err, sim.ErrDeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", jr.Err)
	}
}

func TestPoolFinalizeRunsOnWorkerWithLiveManager(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 2, ReuseManagers: true})
	defer p.Close()
	handles := make([]*Handle, 6)
	probs := make([]float64, len(handles))
	for i := range handles {
		i := i
		job := Job{
			Name:    "ghz",
			Circuit: gen.GHZ(5),
			// With ReuseManagers the final state is only valid here, on the
			// worker, before the next job recycles the pools.
			Finalize: func(r *JobResult) {
				if r.Err != nil || r.Result == nil {
					return
				}
				probs[i] = r.Result.Manager.Probability(r.Result.Final, 0, 5)
				r.Name = r.Name + "-finalized"
			},
		}
		h, err := p.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		jr, err := h.Wait(context.Background())
		if err != nil || jr.Err != nil {
			t.Fatalf("job %d: %v / %v", i, err, jr.Err)
		}
		if jr.Name != "ghz-finalized" {
			t.Errorf("job %d: Finalize mutation lost (name %q)", i, jr.Name)
		}
		if d := probs[i] - 0.5; d > 1e-9 || d < -1e-9 {
			t.Errorf("job %d: P(|00000⟩) = %v, want 0.5", i, probs[i])
		}
	}
}

func TestPoolShutdownCancelsOnContextExpiry(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	h, err := p.Submit(Job{Name: "slow", Circuit: gen.RandomCliffordT(14, 100000, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for !h.Started() {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err %v, want deadline exceeded", err)
	}
	jr, ok := h.Result()
	if !ok {
		t.Fatal("job still unfinished after Shutdown returned")
	}
	if !jr.Canceled() {
		t.Fatalf("job err %v, want canceled", jr.Err)
	}
}

func TestClosedBatchFinalize(t *testing.T) {
	jobs := []Job{poolJob(1), {Name: "nil circuit"}}
	ran := make([]bool, 2)
	for i := range jobs {
		i := i
		jobs[i].Finalize = func(r *JobResult) { ran[i] = true }
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ran[0] || !ran[1] {
		t.Errorf("Finalize ran = %v, want on success and failure alike", ran)
	}
	if res.Completed != 1 || res.Failed != 1 {
		t.Errorf("batch counts: %+v", res)
	}
}
