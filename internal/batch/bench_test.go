package batch

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkBatchRun measures the fan-out speedup of the worker pool on a
// fleet of independent approximate simulations (the Table I / sweep
// workload shape). On a multi-core machine ns/op drops as workers rise
// while cpu-s/op stays flat; on a single core the pool degrades gracefully
// to serial throughput.
func BenchmarkBatchRun(b *testing.B) {
	mkJobs := func() []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			jobs[i] = Job{
				Name:    fmt.Sprintf("rct_seed%d", i),
				Circuit: gen.RandomCliffordT(10, 220, int64(i)),
				NewStrategy: func() core.Strategy {
					return &core.MemoryDriven{Threshold: 64, RoundFidelity: 0.97, Growth: 1.1}
				},
			}
		}
		return jobs
	}
	// Jobs are built once per configuration, outside the timed region: the
	// benchmark measures the engine, not circuit construction.
	runBatch := func(b *testing.B, opts Options) {
		jobs := mkJobs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), jobs, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Completed != 16 {
				b.Fatalf("completed %d of 16", res.Completed)
			}
			b.ReportMetric(res.CPUTime.Seconds()/float64(b.N), "cpu-s/op")
		}
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			runBatch(b, Options{Workers: workers})
		})
	}
	// The arena configuration measures the steady state the batch engine is
	// designed for: per-worker managers reused across jobs, drawing from the
	// process-wide simulator arena. One untimed warmup batch populates the
	// arena so even a single timed iteration exercises the warm path.
	b.Run("workers4_arena", func(b *testing.B) {
		opts := NewOptions(WithWorkers(4), WithArena(ArenaConfig{PrewarmNodes: 1 << 15}))
		if _, err := Run(context.Background(), mkJobs(), opts); err != nil {
			b.Fatal(err)
		}
		runBatch(b, opts)
	})
}
