package batch

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkBatchRun measures the fan-out speedup of the worker pool on a
// fleet of independent approximate simulations (the Table I / sweep
// workload shape). On a multi-core machine ns/op drops as workers rise
// while cpu-s/op stays flat; on a single core the pool degrades gracefully
// to serial throughput.
func BenchmarkBatchRun(b *testing.B) {
	mkJobs := func() []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			jobs[i] = Job{
				Name:    fmt.Sprintf("rct_seed%d", i),
				Circuit: gen.RandomCliffordT(10, 220, int64(i)),
				NewStrategy: func() core.Strategy {
					return &core.MemoryDriven{Threshold: 64, RoundFidelity: 0.97, Growth: 1.1}
				},
			}
		}
		return jobs
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), mkJobs(), Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != 16 {
					b.Fatalf("completed %d of 16", res.Completed)
				}
				b.ReportMetric(res.CPUTime.Seconds()/float64(b.N), "cpu-s/op")
			}
		})
	}
}
