package batch

import "time"

// Option mutates an Options value. The functional-option constructors below
// are the preferred way to configure a batch at the API facade (mirroring
// sim.Option); Options stays the underlying representation, so struct-literal
// callers and the pool keep working.
type Option func(*Options)

// NewOptions folds functional options into an Options value.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithWorkers sets the worker-pool size (values ≤ 0 select GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithBaseSeed sets the base seed that per-job measurement seeds derive from.
func WithBaseSeed(seed int64) Option {
	return func(o *Options) { o.BaseSeed = seed }
}

// WithJobTimeout bounds every job's simulation (Job.Timeout overrides it per
// job).
func WithJobTimeout(d time.Duration) Option {
	return func(o *Options) { o.JobTimeout = d }
}

// WithReuseManagers keeps one DD manager per worker alive across that
// worker's jobs, resetting (not discarding) it between jobs: warm node pools,
// cache backings, and the interned-weight arena carry over, cutting steady-
// state allocation to near zero while results stay bit-identical to fresh
// managers (see Options.ReuseManagers).
func WithReuseManagers() Option {
	return func(o *Options) { o.ReuseManagers = true }
}

// WithArena enables manager reuse with explicit arena sizing: workers draw
// pre-warmed simulators from a process-wide arena and return them after the
// batch, so consecutive BatchRun calls share warm memory too.
func WithArena(cfg ArenaConfig) Option {
	return func(o *Options) {
		o.ReuseManagers = true
		o.Arena = cfg
	}
}

// WithObserver wires a batch-lifecycle observer (per-job start/done and
// per-worker summaries) into the run.
func WithObserver(obs Observer) Option {
	return func(o *Options) { o.Observer = obs }
}

// WithProgress registers a serialized progress callback invoked after each
// job finishes.
func WithProgress(fn func(done, total int, r JobResult)) Option {
	return func(o *Options) { o.Progress = fn }
}

// ArenaConfig sizes the per-worker memory arenas used when managers are
// reused. The zero value is valid: no pre-warming, unbounded retention.
type ArenaConfig struct {
	// PrewarmNodes pre-allocates about this many DD node slots in a fresh
	// worker simulator before its first job, so even the first job builds
	// against warm chunks instead of growing the pools incrementally.
	PrewarmNodes int
	// MaxRetainedNodes caps the node-pool capacity a simulator may keep when
	// it is returned to the arena after a batch; above the cap its pools are
	// trimmed back to zero (the GC reclaims the chunks). Zero means no cap.
	MaxRetainedNodes int
}

// Observer receives batch-lifecycle events. Methods are invoked on worker
// goroutines (concurrently across workers, sequentially within one worker);
// implementations that aggregate across workers must synchronize internally.
// It complements core.Observer, which streams one simulation's internals.
type Observer interface {
	// OnJobStart fires on the job's worker just before the simulation runs.
	OnJobStart(worker, index int, name string)
	// OnJobDone fires on the job's worker after the job (and its Finalize)
	// finished.
	OnJobDone(worker int, r JobResult)
	// OnWorkerDone fires once per worker after its last job, with the
	// worker's aggregate statistics.
	OnWorkerDone(worker int, ws WorkerStats)
}

// WorkerStats aggregates one worker's activity over a batch (Result.PerWorker)
// or a pool's lifetime (PoolState.PerWorker).
type WorkerStats struct {
	// Jobs is the number of jobs the worker ran.
	Jobs int
	// Busy is the summed wall-clock time of those jobs; dividing by the
	// batch WallTime (or pool uptime) gives the worker's utilization.
	Busy time.Duration
	// ArenaNodes is the node-slot capacity of the worker's retained manager
	// arena — warm memory later jobs allocate from — sampled after its last
	// job. Zero when managers are not reused (each job got a fresh manager).
	ArenaNodes int
	// ArenaWeights is the interned complex-weight count of the worker's
	// retained weight-table arena, sampled with ArenaNodes.
	ArenaWeights int
}
