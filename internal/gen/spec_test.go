package gen

import (
	"strings"
	"testing"
)

func TestFromSpecValid(t *testing.T) {
	cases := map[string]struct {
		qubits int
		name   string
	}{
		"qft:5":        {5, "qft"},
		"iqft:3":       {3, "iqft"},
		"ghz:7":        {7, "ghz"},
		"w:4":          {4, "wstate"},
		"grover:6:9":   {6, "grover"},
		"bv:5:21":      {6, "bv"}, // +1 oracle qubit
		"dj:4:5":       {5, "deutsch-jozsa"},
		"qpe:4:1:8":    {5, "qpe"},
		"adder:3:2:5":  {7, "adder"}, // 2n+1
		"random:4:30":  {4, "clifford+t"},
		"qsup:2x3:8:1": {6, "qsup_2x3_8_1"},
	}
	for spec, want := range cases {
		c, err := FromSpec(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if c.NumQubits != want.qubits {
			t.Errorf("%s: %d qubits, want %d", spec, c.NumQubits, want.qubits)
		}
		if !strings.HasPrefix(c.Name, want.name) {
			t.Errorf("%s: name %q, want prefix %q", spec, c.Name, want.name)
		}
	}
}

func TestFromSpecDefaults(t *testing.T) {
	for _, spec := range []string{"qft", "ghz", "grover", "bv", "dj", "qpe", "adder", "random"} {
		if _, err := FromSpec(spec); err != nil {
			t.Errorf("%s with defaults: %v", spec, err)
		}
	}
}

func TestFromSpecInvalid(t *testing.T) {
	bad := []string{
		"", "nope:3", "qft:x", "qsup:3:8", "qsup:axb:8", "qsup:2x2:z",
		"qpe:4:1:0", "grover:4:bad",
	}
	for _, spec := range bad {
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}
