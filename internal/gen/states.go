package gen

import (
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// GHZ returns the circuit preparing (|0...0⟩+|1...1⟩)/√2 on n qubits.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n, "ghz")
	c.H(n - 1)
	for q := n - 1; q > 0; q-- {
		c.CX(q, q-1)
	}
	return c
}

// WState returns the circuit preparing the n-qubit W state
// (|10...0⟩ + |01...0⟩ + ... + |00...1⟩)/√n, built with the standard
// cascade of controlled rotations.
func WState(n int) *circuit.Circuit {
	c := circuit.New(n, "wstate")
	// Start with |10...0⟩ on the top qubit.
	c.X(n - 1)
	for k := n - 1; k > 0; k-- {
		// Split amplitude from qubit k onto qubit k-1 with a controlled
		// rotation, then uncopy with a CNOT.
		theta := 2 * math.Acos(math.Sqrt(1.0/float64(k+1)))
		c.Apply("ry", []float64{theta}, k-1, dd.PosControl(k))
		c.CX(k-1, k)
	}
	return c
}

// BernsteinVazirani returns the circuit recovering the n-bit secret s with a
// single oracle query; measuring the data qubits yields s with certainty.
// The oracle qubit is qubit n.
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	c := circuit.New(n+1, "bv")
	c.X(n)
	c.H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if secret>>uint(q)&1 == 1 {
			c.CX(q, n)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// Grover returns a Grover search circuit on n qubits marking the single
// basis state `marked`, with the given number of iterations (0 selects the
// optimal ⌊π/4·√(2^n)⌋). The oracle and diffusion operator use
// multi-controlled Z gates, exercising the DD engine's arbitrary control
// sets. Block boundaries separate the iterations.
func Grover(n int, marked uint64, iterations int) *circuit.Circuit {
	if iterations <= 0 {
		iterations = int(math.Floor(math.Pi / 4 * math.Sqrt(float64(uint64(1)<<uint(n)))))
		if iterations < 1 {
			iterations = 1
		}
	}
	c := circuit.New(n, "grover")
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.EndBlock()
	ctrls := make([]int, n-1)
	for i := range ctrls {
		ctrls[i] = i + 1
	}
	for it := 0; it < iterations; it++ {
		// Oracle: flip the phase of |marked⟩. Conjugate a multi-controlled
		// Z with X on the zero bits of the marked string.
		for q := 0; q < n; q++ {
			if marked>>uint(q)&1 == 0 {
				c.X(q)
			}
		}
		c.MCZ(ctrls, 0)
		for q := 0; q < n; q++ {
			if marked>>uint(q)&1 == 0 {
				c.X(q)
			}
		}
		// Diffusion: H⊗n · (phase flip about |0...0⟩) · H⊗n.
		for q := 0; q < n; q++ {
			c.H(q)
		}
		for q := 0; q < n; q++ {
			c.X(q)
		}
		c.MCZ(ctrls, 0)
		for q := 0; q < n; q++ {
			c.X(q)
		}
		for q := 0; q < n; q++ {
			c.H(q)
		}
		c.EndBlock()
	}
	return c
}

// RandomCliffordT returns a seeded random circuit over {H, S, T, CX} with
// the given depth (gate count), a common stress workload for DD engines.
func RandomCliffordT(n, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n, "clifford+t")
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.S(rng.Intn(n))
		case 2:
			c.T(rng.Intn(n))
		default:
			if n == 1 {
				c.H(0)
				continue
			}
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CX(a, b)
		}
	}
	return c
}
