package gen

import (
	"fmt"
	"sort"

	"math/rand"

	"repro/internal/circuit"
)

// CliffordTConfig describes a seeded random Clifford+T circuit with an
// exact T-count: TCount of the Gates positions (chosen by the seed) carry a
// T or T† gate, every other position carries a uniformly drawn Clifford
// gate from {H, S, S†, X, Z, CX}. TCount = 0 yields a pure Clifford
// (stabilizer) circuit, which any exact simulator — and the DD backend —
// handles without approximation pressure; the T-count knob dials in the
// "magic" that makes instances hard. Block boundaries are inserted every
// ⌈Gates/8⌉ gates so round-placing strategies have interior anchors.
type CliffordTConfig struct {
	// Qubits is the register width, 1..32.
	Qubits int
	// Gates is the total gate count, 0..100000.
	Gates int
	// TCount is the exact number of T/T† gates, 0..Gates.
	TCount int
	// Seed drives gate sampling; the same seed reproduces the same circuit.
	Seed int64
}

// Generate builds the circuit.
func (c CliffordTConfig) Generate() (*circuit.Circuit, error) {
	if c.Qubits < 1 || c.Qubits > 32 {
		return nil, fmt.Errorf("gen: cliffordt qubits %d outside 1..32", c.Qubits)
	}
	if c.Gates < 0 || c.Gates > 100000 {
		return nil, fmt.Errorf("gen: cliffordt gates %d outside 0..100000", c.Gates)
	}
	if c.TCount < 0 || c.TCount > c.Gates {
		return nil, fmt.Errorf("gen: cliffordt t-count %d outside 0..%d", c.TCount, c.Gates)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	// Pick the T positions first so the same seed pins them regardless of
	// what the Clifford draws consume from the stream.
	tPos := make(map[int]bool, c.TCount)
	if c.TCount > 0 {
		perm := rng.Perm(c.Gates)[:c.TCount]
		sort.Ints(perm)
		for _, p := range perm {
			tPos[p] = true
		}
	}
	circ := circuit.New(c.Qubits, fmt.Sprintf("cliffordt_n%d_g%d_t%d_s%d", c.Qubits, c.Gates, c.TCount, c.Seed))
	blockEvery := c.Gates / 8
	if blockEvery < 1 {
		blockEvery = 1
	}
	for i := 0; i < c.Gates; i++ {
		if tPos[i] {
			if rng.Intn(2) == 0 {
				circ.T(rng.Intn(c.Qubits))
			} else {
				circ.Tdg(rng.Intn(c.Qubits))
			}
		} else {
			kinds := 6
			if c.Qubits == 1 {
				kinds = 5 // no CX on a single qubit
			}
			switch rng.Intn(kinds) {
			case 0:
				circ.H(rng.Intn(c.Qubits))
			case 1:
				circ.S(rng.Intn(c.Qubits))
			case 2:
				circ.Sdg(rng.Intn(c.Qubits))
			case 3:
				circ.X(rng.Intn(c.Qubits))
			case 4:
				circ.Z(rng.Intn(c.Qubits))
			default:
				a := rng.Intn(c.Qubits)
				b := rng.Intn(c.Qubits)
				for b == a {
					b = rng.Intn(c.Qubits)
				}
				circ.CX(a, b)
			}
		}
		if (i+1)%blockEvery == 0 {
			circ.EndBlock()
		}
	}
	return circ, nil
}

// CliffordT builds a seeded random Clifford+T circuit with exactly tCount
// T/T† gates among gates total. It panics on out-of-range arguments; use
// CliffordTConfig.Generate for error returns.
func CliffordT(qubits, gates, tCount int, seed int64) *circuit.Circuit {
	c, err := CliffordTConfig{Qubits: qubits, Gates: gates, TCount: tCount, Seed: seed}.Generate()
	if err != nil {
		panic(err)
	}
	return c
}
