package gen

import (
	"math"

	"repro/internal/circuit"
)

// AppendQFT appends the quantum Fourier transform on the given qubits to c.
// qs lists the register's qubits from least significant (qs[0]) upward. The
// transform maps |x⟩ → (1/√Q)·Σ_y e^{2πi·x·y/Q}|y⟩ with Q = 2^len(qs),
// where bit j of x and y lives on qs[j]. withSwaps selects whether the
// final bit-reversal swaps are emitted (true gives the textbook map above).
// blockPerQubit records a block boundary after each qubit's rotation group,
// the granularity at which Shor's fidelity-driven rounds are placed.
func AppendQFT(c *circuit.Circuit, qs []int, withSwaps, blockPerQubit bool) {
	k := len(qs)
	// Process from the most significant qubit down; each H is followed by
	// controlled phase rotations conditioned on all lower significances.
	for i := k - 1; i >= 0; i-- {
		c.H(qs[i])
		for j := i - 1; j >= 0; j-- {
			angle := math.Pi / float64(int(1)<<uint(i-j))
			c.CP(angle, qs[j], qs[i])
		}
		if blockPerQubit {
			c.EndBlock()
		}
	}
	if withSwaps {
		for i := 0; i < k/2; i++ {
			c.SWAP(qs[i], qs[k-1-i])
		}
		if blockPerQubit {
			c.EndBlock()
		}
	}
}

// AppendInverseQFT appends the inverse QFT on the given qubits (the adjoint
// of AppendQFT with the same conventions).
func AppendInverseQFT(c *circuit.Circuit, qs []int, withSwaps, blockPerQubit bool) {
	k := len(qs)
	if withSwaps {
		for i := 0; i < k/2; i++ {
			c.SWAP(qs[i], qs[k-1-i])
		}
		if blockPerQubit {
			c.EndBlock()
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			angle := -math.Pi / float64(int(1)<<uint(i-j))
			c.CP(angle, qs[j], qs[i])
		}
		c.H(qs[i])
		if blockPerQubit {
			c.EndBlock()
		}
	}
}

// QFT returns a standalone n-qubit QFT circuit.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n, "qft")
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	AppendQFT(c, qs, true, false)
	return c
}

// InverseQFT returns a standalone n-qubit inverse QFT circuit.
func InverseQFT(n int) *circuit.Circuit {
	c := circuit.New(n, "iqft")
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	AppendInverseQFT(c, qs, true, false)
	return c
}
