package gen

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/supremacy"
)

func TestClassifyGeneratedFamilies(t *testing.T) {
	sup, err := supremacy.Config{Rows: 3, Cols: 3, Depth: 10, Seed: 0}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	pairs := circuit.New(8, "pairs")
	for i := 0; i < 4; i++ {
		pairs.H(i)
		pairs.CX(i, i+4)
	}
	cases := []struct {
		circ *circuit.Circuit
		want string
	}{
		{QFT(10), ClassQFT},
		{InverseQFT(8), ClassQFT},
		{PhaseEstimation(5, 0.125), ClassQFT},
		{Grover(8, 0b1011, 2), ClassGrover},
		{RippleCarryAdder(3, 2, 5), ClassGrover},
		{sup, ClassSupremacy},
		{QAOAMaxCut(10, 2, 1), ClassQAOA},
		{VQEAnsatz(10, 3, VQELinear, 1), ClassVQE},
		{CliffordT(10, 200, 40, 1), ClassCliffordT},
		{CliffordT(10, 200, 0, 1), ClassCliffordT},
		{RandomCliffordT(8, 100, 1), ClassCliffordT},
		{pairs, ClassPairs},
		{GHZ(8), ClassPairs},
		{circuit.New(4, "empty"), ClassGeneric},
	}
	for _, tc := range cases {
		if got := Classify(tc.circ); got != tc.want {
			t.Errorf("%s: classified %q, want %q (fingerprint %+v)",
				tc.circ.Name, got, tc.want, FingerprintOf(tc.circ))
		}
	}
}
