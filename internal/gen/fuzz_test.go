package gen

import (
	"strings"
	"testing"
)

// FuzzFromSpec holds FromSpec's no-panic contract: any spec string either
// builds a circuit or returns an error. Specs are length-capped so the
// mutation engine explores grammar, not gate-count scaling.
func FuzzFromSpec(f *testing.F) {
	for _, seed := range []string{
		"qft:8", "iqft:4", "ghz:6", "w:5", "grover:6:3", "bv:7:11", "dj:5:2",
		"qpe:4:1:8", "adder:3:2:5", "random:6:50:1", "qsup:3x3:8:0",
		"qaoa:8:2:3", "vqe:6:2:full:1", "cliffordt:6:40:8:2",
		"qft", "qft:", "qaoa:::", "bogus:1", "qsup:3x:5", "adder:21",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 40 || strings.ContainsAny(spec, "\x00") {
			t.Skip()
		}
		c, err := FromSpec(spec)
		if err == nil && c == nil {
			t.Fatalf("FromSpec(%q) returned nil circuit and nil error", spec)
		}
	})
}
