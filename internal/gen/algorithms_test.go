package gen

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestDeutschJozsaConstant(t *testing.T) {
	n := 6
	s := sim.New()
	res, err := s.Run(DeutschJozsa(n, false, 0), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Data qubits must be |0...0⟩ (oracle qubit in |-⟩ may be 0 or 1).
	p := s.M.Probability(res.Final, 0, n+1) +
		s.M.Probability(res.Final, 1<<uint(n), n+1)
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("constant oracle: P(data=0) = %v", p)
	}
}

func TestDeutschJozsaBalanced(t *testing.T) {
	n := 6
	mask := uint64(0b110101)
	s := sim.New()
	res, err := s.Run(DeutschJozsa(n, true, mask), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := s.M.Probability(res.Final, mask, n+1) +
		s.M.Probability(res.Final, mask|1<<uint(n), n+1)
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("balanced oracle: P(data=mask) = %v", p)
	}
	// Zero mask is promoted to a balanced function, not constant.
	c := DeutschJozsa(3, true, 0)
	if counts := c.CountByName(); counts["x"] < 2 {
		t.Error("zero mask did not produce an oracle")
	}
}

func TestPhaseEstimationExactPhase(t *testing.T) {
	// φ = k/2^t is represented exactly: the counting register reads k with
	// probability 1.
	tBits := 5
	for _, k := range []uint64{1, 7, 19, 31} {
		phi := float64(k) / 32
		s := sim.New()
		res, err := s.Run(PhaseEstimation(tBits, phi), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(1) | k<<1 // eigenstate qubit is |1⟩, counting bits above
		if p := s.M.Probability(res.Final, want, tBits+1); math.Abs(p-1) > 1e-9 {
			t.Errorf("φ=%v: P(counting=%d) = %v", phi, k, p)
		}
	}
}

func TestPhaseEstimationInexactPhaseConcentrates(t *testing.T) {
	// An irrational phase concentrates on the two nearest grid values with
	// total probability ≥ 8/π² ≈ 0.81.
	tBits := 6
	phi := 1 / math.Pi
	s := sim.New()
	res, err := s.Run(PhaseEstimation(tBits, phi), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid := phi * 64
	lo := uint64(math.Floor(grid))
	hi := (lo + 1) % 64
	p := s.M.Probability(res.Final, 1|lo<<1, tBits+1) +
		s.M.Probability(res.Final, 1|hi<<1, tBits+1)
	if p < 0.8 {
		t.Errorf("neighbour probability %v < 0.8", p)
	}
}

func TestPhaseEstimationBlocks(t *testing.T) {
	c := PhaseEstimation(4, 0.25)
	if len(c.Blocks()) < 6 {
		t.Errorf("QPE blocks = %v, want H + 4 controlled powers + IQFT groups", c.Blocks())
	}
	defer func() {
		if recover() == nil {
			t.Error("t=0 accepted")
		}
	}()
	PhaseEstimation(0, 0.5)
}

func TestRippleCarryAdder(t *testing.T) {
	n := 4
	for _, tc := range [][2]uint64{{0, 0}, {1, 1}, {5, 9}, {15, 15}, {7, 12}, {8, 8}} {
		a, b := tc[0], tc[1]
		c := RippleCarryAdder(n, a, b)
		s := sim.New()
		res, err := s.Run(c, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The circuit is classical: the state must be a single basis state
		// whose b register holds (a+b) mod 16.
		want := (a + b) % 16
		found := false
		for idx := uint64(0); idx < 1<<uint(2*n+1); idx++ {
			p := s.M.Probability(res.Final, idx, 2*n+1)
			if p > 0.5 {
				got := AdderSumRegister(idx, n)
				if got != want {
					t.Errorf("%d + %d: sum register %d, want %d", a, b, got, want)
				}
				// a register must be restored.
				aReg := idx >> 1 & (1<<uint(n) - 1)
				if aReg != a {
					t.Errorf("%d + %d: a register corrupted: %d", a, b, aReg)
				}
				// carry ancilla restored to 0.
				if idx&1 != 0 {
					t.Errorf("%d + %d: carry ancilla not cleared", a, b)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%d + %d: final state is not a basis state", a, b)
		}
	}
}

func TestAdderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 0 accepted")
		}
	}()
	RippleCarryAdder(0, 0, 0)
}
