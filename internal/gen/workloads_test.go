package gen

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/sim"
)

// --- gate-count / depth formulas ---

func TestQAOAGateCountFormula(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{2, 1}, {6, 2}, {10, 3}} {
		cfg := QAOAConfig{Nodes: tc.n, Layers: tc.p, Seed: 7}
		c, err := cfg.Generate()
		if err != nil {
			t.Fatal(err)
		}
		m := len(cfg.Graph())
		want := tc.n + tc.p*(3*m+tc.n)
		if c.Len() != want {
			t.Errorf("qaoa n=%d p=%d (m=%d): %d gates, want %d", tc.n, tc.p, m, c.Len(), want)
		}
		if got := len(c.Blocks()); got != tc.p+1 {
			t.Errorf("qaoa n=%d p=%d: %d blocks, want %d", tc.n, tc.p, got, tc.p+1)
		}
	}
	// Fully determined instance: 2 nodes, 1 edge (EdgeProb 1), 1 layer:
	// H H · CX RZ CX · RX RX = 7 gates, depth 1+3+1 = 5.
	c, err := QAOAConfig{Nodes: 2, Layers: 1, EdgeProb: 1, Seed: 0}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 7 || c.Depth() != 5 {
		t.Errorf("qaoa 2-node instance: %d gates depth %d, want 7 gates depth 5", c.Len(), c.Depth())
	}
}

func TestVQEGateCountAndDepthFormula(t *testing.T) {
	for _, tc := range []struct {
		n, l  int
		topo  string
		pairs int
	}{
		{5, 2, VQELinear, 4},
		{6, 3, VQEFull, 15},
		{8, 1, "", 7}, // default topology is linear
	} {
		cfg := VQEConfig{Qubits: tc.n, Layers: tc.l, Topology: tc.topo, Seed: 3}
		c, err := cfg.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want := (tc.l+1)*2*tc.n + tc.l*tc.pairs
		if c.Len() != want {
			t.Errorf("vqe n=%d l=%d %s: %d gates, want %d", tc.n, tc.l, tc.topo, c.Len(), want)
		}
		if tc.topo != VQEFull {
			// Linear-chain entanglers serialize into an n-1-step wavefront per
			// layer; rotations on already-passed qubits overlap it, so only
			// the first rotation layer (2) and the last qubit's final RY/RZ
			// (2) add to the critical path: depth = L·(n−1) + 4.
			wantDepth := tc.l*(tc.n-1) + 4
			if c.Depth() != wantDepth {
				t.Errorf("vqe n=%d l=%d linear: depth %d, want %d", tc.n, tc.l, c.Depth(), wantDepth)
			}
		}
	}
}

func TestCliffordTGateAndTCount(t *testing.T) {
	for _, tc := range []struct{ n, gates, tcount int }{{4, 80, 0}, {8, 200, 31}, {2, 50, 50}, {1, 10, 3}} {
		c, err := CliffordTConfig{Qubits: tc.n, Gates: tc.gates, TCount: tc.tcount, Seed: 11}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() != tc.gates {
			t.Errorf("cliffordt n=%d: %d gates, want %d", tc.n, c.Len(), tc.gates)
		}
		counts := c.CountByName()
		if got := counts["t"] + counts["tdg"]; got != tc.tcount {
			t.Errorf("cliffordt n=%d g=%d: t-count %d, want %d", tc.n, tc.gates, got, tc.tcount)
		}
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	if _, err := (QAOAConfig{Nodes: 0, Layers: 1}).Generate(); err == nil {
		t.Error("qaoa nodes=0 accepted")
	}
	if _, err := (QAOAConfig{Nodes: 4, Layers: 1, Gammas: []float64{1, 2}, Betas: []float64{1, 2}}).Generate(); err == nil {
		t.Error("qaoa schedule length mismatch accepted")
	}
	if _, err := (VQEConfig{Qubits: 4, Layers: 1, Topology: "ring"}).Generate(); err == nil {
		t.Error("vqe unknown topology accepted")
	}
	if _, err := (VQEConfig{Qubits: 4, Layers: 1, Angles: []float64{1}}).Generate(); err == nil {
		t.Error("vqe short angle list accepted")
	}
	if _, err := (CliffordTConfig{Qubits: 4, Gates: 10, TCount: 11}).Generate(); err == nil {
		t.Error("cliffordt t-count > gates accepted")
	}
}

// --- seed determinism ---

func TestWorkloadSeedDeterminism(t *testing.T) {
	builders := map[string]func() (*circuit.Circuit, error){
		"qaoa": func() (*circuit.Circuit, error) { return QAOAConfig{Nodes: 8, Layers: 2, Seed: 42}.Generate() },
		"vqe":  func() (*circuit.Circuit, error) { return VQEConfig{Qubits: 8, Layers: 2, Seed: 42}.Generate() },
		"cliffordt": func() (*circuit.Circuit, error) {
			return CliffordTConfig{Qubits: 8, Gates: 120, TCount: 24, Seed: 42}.Generate()
		},
	}
	for name, build := range builders {
		a, err := build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil)) {
			t.Errorf("%s: same seed produced different canonical encodings", name)
		}
	}
	// Different seeds must diverge (or the seed would be decorative).
	a := CliffordT(8, 120, 24, 1)
	b := CliffordT(8, 120, 24, 2)
	if bytes.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil)) {
		t.Error("cliffordt: different seeds produced identical circuits")
	}
}

// --- QASM export / reparse round-trip ---

func TestWorkloadQASMRoundTrip(t *testing.T) {
	circs := []*circuit.Circuit{
		QAOAMaxCut(6, 2, 5),
		VQEAnsatz(6, 2, VQEFull, 5),
		CliffordT(6, 100, 17, 5),
	}
	for _, c := range circs {
		src, err := qasm.Export(c)
		if err != nil {
			t.Fatalf("%s: export: %v", c.Name, err)
		}
		back, err := qasm.Parse(src, c.Name)
		if err != nil {
			t.Fatalf("%s: reparse: %v", c.Name, err)
		}
		if !bytes.Equal(c.AppendCanonical(nil), back.Circuit.AppendCanonical(nil)) {
			t.Errorf("%s: QASM round-trip changed the canonical encoding", c.Name)
		}
	}
}

// --- Clifford-only instances stay exactly simulable ---

// TestCliffordOnlyExactAtAnyThreshold runs a TCount=0 instance under the
// memory-driven strategy with round fidelity 1.0 at aggressive thresholds:
// the zero-budget rounds must all be no-ops, so the final state is
// amplitude-identical to the exact reference and the tracked fidelity
// stays exactly 1.0 regardless of threshold.
func TestCliffordOnlyExactAtAnyThreshold(t *testing.T) {
	const n = 8
	c := CliffordT(n, 200, 0, 9)

	exact := sim.New()
	eres, err := exact.Run(c, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := exact.M.ToVector(eres.Final, n)

	// Stabilizer-state sanity: every nonzero amplitude has equal magnitude
	// and the support size is a power of two.
	support := 0
	mag := 0.0
	for _, a := range want {
		if cmplx.Abs(a) > 1e-9 {
			support++
			if mag == 0 {
				mag = cmplx.Abs(a)
			} else if math.Abs(cmplx.Abs(a)-mag) > 1e-9 {
				t.Fatalf("clifford-only state has unequal nonzero magnitudes: %v vs %v", cmplx.Abs(a), mag)
			}
		}
	}
	if support == 0 || support&(support-1) != 0 {
		t.Fatalf("clifford-only state support %d is not a power of two", support)
	}

	for _, threshold := range []int{4, 16, 64} {
		s := sim.New()
		res, err := s.Run(c, sim.Options{
			Strategy: &core.MemoryDriven{Threshold: threshold, RoundFidelity: 1.0, Growth: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimatedFidelity != 1.0 {
			t.Errorf("threshold=%d: tracked fidelity %v, want exactly 1.0", threshold, res.EstimatedFidelity)
		}
		got := s.M.ToVector(res.Final, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threshold=%d: amplitude[%d] = %v differs from exact %v", threshold, i, got[i], want[i])
			}
		}
	}
}

// --- spec round-trips for the new families ---

func TestFromSpecNewFamilies(t *testing.T) {
	for spec, wantClass := range map[string]string{
		"qaoa:8:2:3":           ClassQAOA,
		"vqe:8:3:full:1":       ClassVQE,
		"cliffordt:8:100:20:1": ClassCliffordT,
		"cliffordt:8:100:0:1":  ClassCliffordT,
	} {
		c, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got := Classify(c); got != wantClass {
			t.Errorf("%s: classified %q, want %q", spec, got, wantClass)
		}
	}
}

func TestFromSpecRejectsWithoutPanic(t *testing.T) {
	for _, spec := range []string{
		"qft:0", "qft:-3", "adder:100", "random:0:10", "qaoa:40", "qaoa:8:0",
		"vqe:8:3:ring", "cliffordt:8:10:11", "qsup:99x99:5", "random:8:999999999",
	} {
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("%s: accepted, want error", spec)
		}
	}
}
