package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/supremacy"
)

// FromSpec builds a circuit from a compact textual spec, used by the CLI
// tools:
//
//	qft:N       iqft:N      ghz:N      w:N
//	grover:N[:marked]       bv:N[:secret]
//	dj:N[:mask]             qpe:T[:numerator:denominator]
//	adder:N[:a:b]           random:N:GATES[:seed]
//	qsup:RxC:DEPTH[:seed]
func FromSpec(spec string) (*circuit.Circuit, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	argInt := func(i, def int) (int, error) {
		if len(parts) <= i || parts[i] == "" {
			return def, nil
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return 0, fmt.Errorf("gen: spec %q: bad integer %q", spec, parts[i])
		}
		return v, nil
	}
	switch name {
	case "qft":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return QFT(n), nil
	case "iqft":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return InverseQFT(n), nil
	case "ghz":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return GHZ(n), nil
	case "w":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return WState(n), nil
	case "grover":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		marked, err := argInt(2, 1)
		if err != nil {
			return nil, err
		}
		return Grover(n, uint64(marked), 0), nil
	case "bv":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		secret, err := argInt(2, 0b1011)
		if err != nil {
			return nil, err
		}
		return BernsteinVazirani(n, uint64(secret)), nil
	case "dj":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		mask, err := argInt(2, 0)
		if err != nil {
			return nil, err
		}
		return DeutschJozsa(n, mask != 0, uint64(mask)), nil
	case "qpe":
		t, err := argInt(1, 5)
		if err != nil {
			return nil, err
		}
		num, err := argInt(2, 1)
		if err != nil {
			return nil, err
		}
		den, err := argInt(3, 8)
		if err != nil {
			return nil, err
		}
		if den == 0 {
			return nil, fmt.Errorf("gen: spec %q: zero denominator", spec)
		}
		return PhaseEstimation(t, float64(num)/float64(den)), nil
	case "adder":
		n, err := argInt(1, 4)
		if err != nil {
			return nil, err
		}
		a, err := argInt(2, 3)
		if err != nil {
			return nil, err
		}
		b, err := argInt(3, 5)
		if err != nil {
			return nil, err
		}
		return RippleCarryAdder(n, uint64(a), uint64(b)), nil
	case "random":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		gates, err := argInt(2, 100)
		if err != nil {
			return nil, err
		}
		seed, err := argInt(3, 0)
		if err != nil {
			return nil, err
		}
		return RandomCliffordT(n, gates, int64(seed)), nil
	case "qsup":
		if len(parts) < 3 {
			return nil, fmt.Errorf("gen: spec %q: qsup needs RxC:DEPTH", spec)
		}
		dims := strings.Split(parts[1], "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("gen: spec %q: bad grid %q", spec, parts[1])
		}
		rows, err := strconv.Atoi(dims[0])
		if err != nil {
			return nil, fmt.Errorf("gen: spec %q: bad rows", spec)
		}
		cols, err := strconv.Atoi(dims[1])
		if err != nil {
			return nil, fmt.Errorf("gen: spec %q: bad cols", spec)
		}
		depth, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("gen: spec %q: bad depth", spec)
		}
		seed, err := argInt(3, 0)
		if err != nil {
			return nil, err
		}
		cfg := supremacy.Config{Rows: rows, Cols: cols, Depth: depth, Seed: int64(seed)}
		return cfg.Generate()
	default:
		return nil, fmt.Errorf("gen: unknown generator %q (try qft, ghz, grover, qsup, ...)", name)
	}
}
