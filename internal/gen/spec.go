package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/supremacy"
)

// FromSpec builds a circuit from a compact textual spec, used by the CLI
// tools:
//
//	qft:N       iqft:N      ghz:N      w:N
//	grover:N[:marked]       bv:N[:secret]
//	dj:N[:mask]             qpe:T[:numerator:denominator]
//	adder:N[:a:b]           random:N:GATES[:seed]
//	qsup:RxC:DEPTH[:seed]   qaoa:N[:P[:seed]]
//	vqe:N[:L[:topo[:seed]]] cliffordt:N[:GATES[:TCOUNT[:seed]]]
//
// Malformed or out-of-range specs return errors, never panic: integer
// arguments are capped at ±100000 and generator validation panics are
// converted to errors at this boundary (FuzzFromSpec holds the line).
func FromSpec(spec string) (c *circuit.Circuit, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("gen: spec %q: %v", spec, r)
		}
	}()
	parts := strings.Split(spec, ":")
	name := parts[0]
	argInt := func(i, def int) (int, error) {
		if len(parts) <= i || parts[i] == "" {
			return def, nil
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return 0, fmt.Errorf("gen: spec %q: bad integer %q", spec, parts[i])
		}
		if v < -100000 || v > 100000 {
			return 0, fmt.Errorf("gen: spec %q: argument %d out of range", spec, v)
		}
		return v, nil
	}
	switch name {
	case "qft":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return QFT(n), nil
	case "iqft":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return InverseQFT(n), nil
	case "ghz":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return GHZ(n), nil
	case "w":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		return WState(n), nil
	case "grover":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		marked, err := argInt(2, 1)
		if err != nil {
			return nil, err
		}
		return Grover(n, uint64(marked), 0), nil
	case "bv":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		secret, err := argInt(2, 0b1011)
		if err != nil {
			return nil, err
		}
		return BernsteinVazirani(n, uint64(secret)), nil
	case "dj":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		mask, err := argInt(2, 0)
		if err != nil {
			return nil, err
		}
		return DeutschJozsa(n, mask != 0, uint64(mask)), nil
	case "qpe":
		t, err := argInt(1, 5)
		if err != nil {
			return nil, err
		}
		num, err := argInt(2, 1)
		if err != nil {
			return nil, err
		}
		den, err := argInt(3, 8)
		if err != nil {
			return nil, err
		}
		if den == 0 {
			return nil, fmt.Errorf("gen: spec %q: zero denominator", spec)
		}
		return PhaseEstimation(t, float64(num)/float64(den)), nil
	case "adder":
		n, err := argInt(1, 4)
		if err != nil {
			return nil, err
		}
		a, err := argInt(2, 3)
		if err != nil {
			return nil, err
		}
		b, err := argInt(3, 5)
		if err != nil {
			return nil, err
		}
		return RippleCarryAdder(n, uint64(a), uint64(b)), nil
	case "random":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		gates, err := argInt(2, 100)
		if err != nil {
			return nil, err
		}
		seed, err := argInt(3, 0)
		if err != nil {
			return nil, err
		}
		return RandomCliffordT(n, gates, int64(seed)), nil
	case "qaoa":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		layers, err := argInt(2, 2)
		if err != nil {
			return nil, err
		}
		seed, err := argInt(3, 0)
		if err != nil {
			return nil, err
		}
		return QAOAConfig{Nodes: n, Layers: layers, Seed: int64(seed)}.Generate()
	case "vqe":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		layers, err := argInt(2, 3)
		if err != nil {
			return nil, err
		}
		topo := VQELinear
		if len(parts) > 3 && parts[3] != "" {
			topo = parts[3]
		}
		seed, err := argInt(4, 0)
		if err != nil {
			return nil, err
		}
		return VQEConfig{Qubits: n, Layers: layers, Topology: topo, Seed: int64(seed)}.Generate()
	case "cliffordt":
		n, err := argInt(1, 8)
		if err != nil {
			return nil, err
		}
		gates, err := argInt(2, 100)
		if err != nil {
			return nil, err
		}
		tcount, err := argInt(3, 20)
		if err != nil {
			return nil, err
		}
		seed, err := argInt(4, 0)
		if err != nil {
			return nil, err
		}
		return CliffordTConfig{Qubits: n, Gates: gates, TCount: tcount, Seed: int64(seed)}.Generate()
	case "qsup":
		if len(parts) < 3 {
			return nil, fmt.Errorf("gen: spec %q: qsup needs RxC:DEPTH", spec)
		}
		dims := strings.Split(parts[1], "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("gen: spec %q: bad grid %q", spec, parts[1])
		}
		rows, err := strconv.Atoi(dims[0])
		if err != nil {
			return nil, fmt.Errorf("gen: spec %q: bad rows", spec)
		}
		cols, err := strconv.Atoi(dims[1])
		if err != nil {
			return nil, fmt.Errorf("gen: spec %q: bad cols", spec)
		}
		depth, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("gen: spec %q: bad depth", spec)
		}
		if rows < 1 || rows > 16 || cols < 1 || cols > 16 || depth < 0 || depth > 10000 {
			return nil, fmt.Errorf("gen: spec %q: qsup dimensions out of range", spec)
		}
		seed, err := argInt(3, 0)
		if err != nil {
			return nil, err
		}
		cfg := supremacy.Config{Rows: rows, Cols: cols, Depth: depth, Seed: int64(seed)}
		return cfg.Generate()
	default:
		return nil, fmt.Errorf("gen: unknown generator %q (try qft, ghz, grover, qsup, ...)", name)
	}
}
