package gen

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/sim"
)

func TestQFTMatchesDFT(t *testing.T) {
	for n := 1; n <= 5; n++ {
		Q := 1 << uint(n)
		for x := 0; x < Q; x++ {
			s := sim.New()
			res, err := s.Run(QFT(n), sim.Options{InitialState: uint64(x)})
			if err != nil {
				t.Fatal(err)
			}
			got := s.M.ToVector(res.Final, n)
			// Global phase of the DD root may differ; fix it via y=0, whose
			// DFT amplitude is always 1/√Q.
			want0 := complex(1/math.Sqrt(float64(Q)), 0)
			phase := want0 / got[0]
			phase /= complex(cmplx.Abs(phase), 0)
			for y := 0; y < Q; y++ {
				angle := 2 * math.Pi * float64(x) * float64(y) / float64(Q)
				want := cmplx.Exp(complex(0, angle)) / complex(math.Sqrt(float64(Q)), 0)
				if cmplx.Abs(got[y]*phase-want) > 1e-9 {
					t.Fatalf("n=%d x=%d: QFT amplitude[%d] = %v, want %v",
						n, x, y, got[y]*phase, want)
				}
			}
		}
	}
}

func TestInverseQFTInvertsQFT(t *testing.T) {
	n := 4
	c := QFT(n)
	c.AppendCircuit(InverseQFT(n))
	for x := uint64(0); x < 1<<uint(n); x += 3 {
		s := sim.New()
		res, err := s.Run(c, sim.Options{InitialState: x})
		if err != nil {
			t.Fatal(err)
		}
		if p := s.M.Probability(res.Final, x, n); math.Abs(p-1) > 1e-9 {
			t.Fatalf("IQFT∘QFT|%d⟩: P = %v", x, p)
		}
	}
}

func TestGHZState(t *testing.T) {
	n := 6
	s := sim.New()
	res, err := s.Run(GHZ(n), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := uint64(1<<uint(n)) - 1
	p0 := s.M.Probability(res.Final, 0, n)
	p1 := s.M.Probability(res.Final, all, n)
	if math.Abs(p0-0.5) > 1e-9 || math.Abs(p1-0.5) > 1e-9 {
		t.Errorf("GHZ probabilities %v, %v", p0, p1)
	}
	if res.MaxDDSize > 2*n {
		t.Errorf("GHZ DD grew to %d nodes", res.MaxDDSize)
	}
}

func TestWState(t *testing.T) {
	n := 5
	s := sim.New()
	res, err := s.Run(WState(n), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(n)
	var total float64
	for q := 0; q < n; q++ {
		p := s.M.Probability(res.Final, 1<<uint(q), n)
		total += p
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("W state P(|e_%d⟩) = %v, want %v", q, p, want)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("W state mass off single-excitation subspace: %v", 1-total)
	}
}

func TestBernsteinVazirani(t *testing.T) {
	n := 7
	secret := uint64(0b1011001)
	s := sim.New()
	res, err := s.Run(BernsteinVazirani(n, secret), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Data qubits must read the secret with probability 1 (oracle qubit in
	// |-⟩ is traced out by considering both of its values).
	p := s.M.Probability(res.Final, secret, n+1) +
		s.M.Probability(res.Final, secret|1<<uint(n), n+1)
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("BV recovered secret with probability %v", p)
	}
}

func TestGroverAmplifiesMarked(t *testing.T) {
	n := 6
	marked := uint64(0b101101 & ((1 << uint(n)) - 1))
	s := sim.New()
	res, err := s.Run(Grover(n, marked, 0), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := s.M.Probability(res.Final, marked, n)
	if p < 0.9 {
		t.Errorf("Grover P(marked) = %v, want > 0.9", p)
	}
	if len(res.SizeHistory) != 0 && res.SizeHistory[len(res.SizeHistory)-1] == 0 {
		t.Error("bogus size history")
	}
}

func TestGroverBlocks(t *testing.T) {
	c := Grover(4, 3, 2)
	if len(c.Blocks()) != 3 { // init + 2 iterations
		t.Errorf("Grover blocks = %v", c.Blocks())
	}
}

func TestRandomCliffordTDeterministic(t *testing.T) {
	a := RandomCliffordT(5, 50, 42)
	b := RandomCliffordT(5, 50, 42)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Gates() {
		if a.Gates()[i].String() != b.Gates()[i].String() {
			t.Fatalf("gate %d differs between same-seed circuits", i)
		}
	}
	c := RandomCliffordT(5, 50, 43)
	same := true
	for i := range a.Gates() {
		if a.Gates()[i].String() != c.Gates()[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical circuits")
	}
}
