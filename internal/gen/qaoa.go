package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
)

// Edge is one undirected graph edge of a QAOA MaxCut instance, with A < B.
type Edge struct{ A, B int }

// QAOAConfig describes a QAOA MaxCut circuit on a seeded Erdős–Rényi
// random graph G(n, p). Each of the Layers QAOA layers applies the cost
// unitary exp(-iγ_k Σ_edges Z_a Z_b / 2) — compiled per edge as
// CX·RZ(2γ_k)·CX — followed by the mixer exp(-iβ_k Σ_q X_q) as RX(2β_k)
// on every qubit. A block boundary closes the initial H layer and every
// QAOA layer, so fidelity-driven rounds land between layers.
type QAOAConfig struct {
	// Nodes is the graph size (one qubit per node), 1..32.
	Nodes int
	// Layers is the QAOA depth p, 1..99.
	Layers int
	// EdgeProb is the G(n, p) edge probability; 0 means the 0.5 default.
	EdgeProb float64
	// Gammas and Betas are the per-layer cost/mixer angles. Nil selects the
	// deterministic linear-ramp schedule (γ ramps up to π/2, β ramps down
	// from π/4 — the INTERP-style heuristic initialization). When set, both
	// must have length Layers.
	Gammas, Betas []float64
	// Seed drives graph sampling; the same seed reproduces the same circuit.
	Seed int64
}

// Graph returns the instance's edge list: every pair (i, j) with i < j is
// included with probability EdgeProb, drawn in row-major pair order from a
// generator seeded with Seed, so the edge list is a pure function of
// (Nodes, EdgeProb, Seed).
func (c QAOAConfig) Graph() []Edge {
	p := c.EdgeProb
	if p == 0 {
		p = 0.5
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var edges []Edge
	for i := 0; i < c.Nodes; i++ {
		for j := i + 1; j < c.Nodes; j++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{i, j})
			}
		}
	}
	return edges
}

// Schedule returns the per-layer (γ, β) angles: the explicit Gammas/Betas
// when set, otherwise the deterministic linear-ramp default.
func (c QAOAConfig) Schedule() (gammas, betas []float64) {
	if c.Gammas != nil && c.Betas != nil {
		return c.Gammas, c.Betas
	}
	gammas = make([]float64, c.Layers)
	betas = make([]float64, c.Layers)
	for k := 0; k < c.Layers; k++ {
		frac := (float64(k) + 0.5) / float64(c.Layers)
		gammas[k] = frac * math.Pi / 2
		betas[k] = (1 - frac) * math.Pi / 4
	}
	return gammas, betas
}

// Generate builds the circuit. Gate count: Nodes + Layers·(3·|E| + Nodes).
func (c QAOAConfig) Generate() (*circuit.Circuit, error) {
	if c.Nodes < 1 || c.Nodes > 32 {
		return nil, fmt.Errorf("gen: qaoa nodes %d outside 1..32", c.Nodes)
	}
	if c.Layers < 1 || c.Layers > 99 {
		return nil, fmt.Errorf("gen: qaoa layers %d outside 1..99", c.Layers)
	}
	if c.EdgeProb < 0 || c.EdgeProb > 1 {
		return nil, fmt.Errorf("gen: qaoa edge probability %v outside [0, 1]", c.EdgeProb)
	}
	if (c.Gammas == nil) != (c.Betas == nil) {
		return nil, fmt.Errorf("gen: qaoa gammas and betas must be set together")
	}
	if c.Gammas != nil && (len(c.Gammas) != c.Layers || len(c.Betas) != c.Layers) {
		return nil, fmt.Errorf("gen: qaoa schedule length %d/%d != layers %d",
			len(c.Gammas), len(c.Betas), c.Layers)
	}
	edges := c.Graph()
	gammas, betas := c.Schedule()
	circ := circuit.New(c.Nodes, fmt.Sprintf("qaoa_n%d_p%d_s%d", c.Nodes, c.Layers, c.Seed))
	for q := 0; q < c.Nodes; q++ {
		circ.H(q)
	}
	circ.EndBlock()
	for k := 0; k < c.Layers; k++ {
		for _, e := range edges {
			circ.CX(e.A, e.B)
			circ.RZ(2*gammas[k], e.B)
			circ.CX(e.A, e.B)
		}
		for q := 0; q < c.Nodes; q++ {
			circ.RX(2*betas[k], q)
		}
		circ.EndBlock()
	}
	return circ, nil
}

// QAOAMaxCut builds a QAOA MaxCut circuit on a seeded G(n, 0.5) random
// graph with the default angle schedule. It panics on out-of-range
// arguments; use QAOAConfig.Generate for error returns.
func QAOAMaxCut(nodes, layers int, seed int64) *circuit.Circuit {
	c, err := QAOAConfig{Nodes: nodes, Layers: layers, Seed: seed}.Generate()
	if err != nil {
		panic(err)
	}
	return c
}
