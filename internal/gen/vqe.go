package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
)

// VQE entangler topologies.
const (
	VQELinear = "linear" // CX chain q→q+1
	VQEFull   = "full"   // CX on every ordered pair i<j
)

// VQEConfig describes a hardware-efficient VQE ansatz: Layers+1 rotation
// layers (RY then RZ on every qubit, seeded angles) interleaved with Layers
// CX entangler layers in the chosen topology. A block boundary closes each
// rotation+entangler pair and the final rotation layer.
type VQEConfig struct {
	// Qubits is the register width, 1..32.
	Qubits int
	// Layers is the entangler layer count, 1..99.
	Layers int
	// Topology is VQELinear (default) or VQEFull.
	Topology string
	// Angles optionally fixes all (Layers+1)·2·Qubits rotation angles in
	// layer-major (RY q0..qn, RZ q0..qn) order; nil draws them uniformly
	// from [0, 2π) with Seed.
	Angles []float64
	// Seed drives angle sampling; the same seed reproduces the same circuit.
	Seed int64
}

// EntanglerPairs returns the CX (control, target) pairs of one entangler
// layer for the configured topology.
func (c VQEConfig) EntanglerPairs() ([][2]int, error) {
	topo := c.Topology
	if topo == "" {
		topo = VQELinear
	}
	var pairs [][2]int
	switch topo {
	case VQELinear:
		for q := 0; q+1 < c.Qubits; q++ {
			pairs = append(pairs, [2]int{q, q + 1})
		}
	case VQEFull:
		for i := 0; i < c.Qubits; i++ {
			for j := i + 1; j < c.Qubits; j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	default:
		return nil, fmt.Errorf("gen: vqe topology %q (want %q or %q)", topo, VQELinear, VQEFull)
	}
	return pairs, nil
}

// Generate builds the ansatz. Gate count: (Layers+1)·2·Qubits rotations
// plus Layers·|pairs| entangler CXs.
func (c VQEConfig) Generate() (*circuit.Circuit, error) {
	if c.Qubits < 1 || c.Qubits > 32 {
		return nil, fmt.Errorf("gen: vqe qubits %d outside 1..32", c.Qubits)
	}
	if c.Layers < 1 || c.Layers > 99 {
		return nil, fmt.Errorf("gen: vqe layers %d outside 1..99", c.Layers)
	}
	pairs, err := c.EntanglerPairs()
	if err != nil {
		return nil, err
	}
	need := (c.Layers + 1) * 2 * c.Qubits
	angles := c.Angles
	if angles == nil {
		rng := rand.New(rand.NewSource(c.Seed))
		angles = make([]float64, need)
		for i := range angles {
			angles[i] = rng.Float64() * 2 * math.Pi
		}
	} else if len(angles) != need {
		return nil, fmt.Errorf("gen: vqe %d angles supplied, need %d", len(angles), need)
	}
	topo := c.Topology
	if topo == "" {
		topo = VQELinear
	}
	circ := circuit.New(c.Qubits, fmt.Sprintf("vqe_n%d_l%d_%s_s%d", c.Qubits, c.Layers, topo, c.Seed))
	next := 0
	rotationLayer := func() {
		for q := 0; q < c.Qubits; q++ {
			circ.RY(angles[next], q)
			next++
		}
		for q := 0; q < c.Qubits; q++ {
			circ.RZ(angles[next], q)
			next++
		}
	}
	for k := 0; k < c.Layers; k++ {
		rotationLayer()
		for _, p := range pairs {
			circ.CX(p[0], p[1])
		}
		circ.EndBlock()
	}
	rotationLayer()
	circ.EndBlock()
	return circ, nil
}

// VQEAnsatz builds a hardware-efficient ansatz with seeded angles. It
// panics on out-of-range arguments; use VQEConfig.Generate for error
// returns.
func VQEAnsatz(qubits, layers int, topology string, seed int64) *circuit.Circuit {
	c, err := VQEConfig{Qubits: qubits, Layers: layers, Topology: topology, Seed: seed}.Generate()
	if err != nil {
		panic(err)
	}
	return c
}
