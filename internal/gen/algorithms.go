package gen

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// DeutschJozsa returns a Deutsch–Jozsa circuit on n data qubits (oracle
// qubit is qubit n). For balanced == false the oracle is constant-zero and
// the data qubits measure |0...0⟩ with certainty; for balanced == true the
// oracle computes the parity of the data bits against `mask` (a balanced
// function for any non-zero mask) and the data qubits measure |mask⟩.
func DeutschJozsa(n int, balanced bool, mask uint64) *circuit.Circuit {
	c := circuit.New(n+1, "deutsch-jozsa")
	c.X(n)
	c.H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	if balanced {
		if mask == 0 {
			mask = 1
		}
		for q := 0; q < n; q++ {
			if mask>>uint(q)&1 == 1 {
				c.CX(q, n)
			}
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// PhaseEstimation returns a quantum phase-estimation circuit estimating the
// eigenphase φ of the single-qubit unitary p(2πφ) on its |1⟩ eigenstate,
// with t counting qubits. Layout: qubit 0 is the eigenstate register
// (prepared in |1⟩), qubits [1, t+1) count. Measuring the counting register
// yields round(φ·2^t) with high probability.
func PhaseEstimation(t int, phi float64) *circuit.Circuit {
	if t < 1 {
		panic(fmt.Sprintf("gen: phase estimation needs at least one counting qubit, got %d", t))
	}
	c := circuit.New(t+1, "qpe")
	c.X(0) // eigenstate |1⟩ of the phase gate
	for j := 0; j < t; j++ {
		c.H(1 + j)
	}
	c.EndBlock()
	// Controlled-U^(2^j): U = p(2πφ) so U^(2^j) = p(2πφ·2^j).
	for j := 0; j < t; j++ {
		angle := 2 * math.Pi * phi * float64(uint64(1)<<uint(j))
		c.Apply("p", []float64{angle}, 0, dd.PosControl(1+j))
		c.EndBlock()
	}
	qs := make([]int, t)
	for j := 0; j < t; j++ {
		qs[j] = 1 + j
	}
	AppendInverseQFT(c, qs, true, true)
	return c
}

// RippleCarryAdder returns a circuit computing (a + b) mod 2^n into the b
// register using the Cuccaro ripple-carry construction with Toffoli gates.
// Layout: qubit 0 is the carry ancilla, qubits [1, n+1) hold a, qubits
// [n+1, 2n+1) hold b. Inputs are classical constants loaded with X gates;
// the sum appears in the b register.
func RippleCarryAdder(n int, a, b uint64) *circuit.Circuit {
	if n < 1 || n > 20 {
		panic(fmt.Sprintf("gen: adder width %d out of range", n))
	}
	c := circuit.New(2*n+1, "adder")
	aq := func(i int) int { return 1 + i }
	bq := func(i int) int { return 1 + n + i }

	for i := 0; i < n; i++ {
		if a>>uint(i)&1 == 1 {
			c.X(aq(i))
		}
		if b>>uint(i)&1 == 1 {
			c.X(bq(i))
		}
	}
	c.EndBlock()

	// MAJ cascade (majority): carry in qubit 0.
	maj := func(cIn, aBit, bBit int) {
		c.CX(aBit, bBit)
		c.CX(aBit, cIn)
		c.CCX(cIn, bBit, aBit)
	}
	uma := func(cIn, aBit, bBit int) {
		c.CCX(cIn, bBit, aBit)
		c.CX(aBit, cIn)
		c.CX(cIn, bBit)
	}
	carry := 0
	for i := 0; i < n; i++ {
		maj(carryQubit(carry, aq, i), aq(i), bq(i))
	}
	// (The carry-out would land on a(n-1); this mod-2^n adder drops it.)
	for i := n - 1; i >= 0; i-- {
		uma(carryQubit(carry, aq, i), aq(i), bq(i))
	}
	c.EndBlock()
	return c
}

// carryQubit returns the carry-in wire for bit i: the dedicated ancilla for
// bit 0, and a(i-1) afterwards (Cuccaro's in-place trick).
func carryQubit(carry int, aq func(int) int, i int) int {
	if i == 0 {
		return carry
	}
	return aq(i - 1)
}

// AdderSumRegister extracts the b-register value from a sampled basis state
// of a RippleCarryAdder circuit.
func AdderSumRegister(sample uint64, n int) uint64 {
	return sample >> uint(n+1) & (1<<uint(n) - 1)
}
