// Package gen generates standard quantum circuits used by the examples,
// tests, benchmarks, and the ddsim command's -gen flag:
//
//   - QFT and InverseQFT (the inverse transform ends Shor's order finding,
//     where the paper places its fidelity-driven approximation rounds),
//   - GHZ and WState preparation (small entangled states with compact DDs),
//   - Grover search and BernsteinVazirani (oracle workloads),
//   - RandomCliffordT, a seeded random {H, S, T, CX} circuit whose DD grows
//     irregularly — the stress generator used throughout the tests.
//
// All generators are deterministic functions of their arguments (seeds
// included), so generated workloads are reproducible everywhere they are
// referenced — including inside the simulation service's content-addressed
// result cache.
package gen
