package gen

import "repro/internal/circuit"

// Workload class keys. These are the row keys of the approximability atlas
// (internal/atlas, docs/ATLAS.md): Classify maps an arbitrary circuit onto
// one of them so serve's strategy=auto can install the per-class winner.
const (
	ClassQFT       = "qft"       // controlled-phase ladders: QFT, IQFT, QPE
	ClassGrover    = "grover"    // multi-controlled oracles: Grover, DJ, adders
	ClassSupremacy = "supremacy" // √X/√Y + CZ random circuits
	ClassQAOA      = "qaoa"      // RX mixer + ZZ cost layers
	ClassVQE       = "vqe"       // RY/RZ rotation + CX entangler ansätze
	ClassCliffordT = "cliffordt" // discrete Clifford(+T) gate soups
	ClassPairs     = "pairs"     // H+CX entangling (GHZ/graph-state-like)
	ClassGeneric   = "generic"   // anything else
)

// Fingerprint is the gate-mix summary Classify decides on. Counts split by
// control arity because the builder reuses base names for controlled forms
// (CX is "x" with one control, CP is "p" with one control).
type Fingerprint struct {
	Qubits, Gates int

	// Uncontrolled single-qubit counts.
	H, T, S, SqrtXY, RX, RY, RZ, Phase, Pauli int
	// Singly-controlled counts.
	CX, CZ, CPhase int
	// MultiCtrl counts gates with two or more controls.
	MultiCtrl int
	// Other counts everything not binned above (permutations included).
	Other int
}

// FingerprintOf summarizes a circuit's gate mix.
func FingerprintOf(c *circuit.Circuit) Fingerprint {
	f := Fingerprint{Qubits: c.NumQubits, Gates: c.Len()}
	for _, g := range c.Gates() {
		switch {
		case len(g.Controls) >= 2:
			f.MultiCtrl++
		case len(g.Controls) == 1:
			switch g.Name {
			case "x":
				f.CX++
			case "z":
				f.CZ++
			case "p":
				f.CPhase++
			default:
				f.Other++
			}
		default:
			switch g.Name {
			case "h":
				f.H++
			case "t", "tdg":
				f.T++
			case "s", "sdg":
				f.S++
			case "sx", "sy":
				f.SqrtXY++
			case "rx":
				f.RX++
			case "ry":
				f.RY++
			case "rz":
				f.RZ++
			case "p":
				f.Phase++
			case "x", "y", "z":
				f.Pauli++
			default:
				f.Other++
			}
		}
	}
	return f
}

// Class maps the fingerprint onto a workload class. The rules mirror how
// the generators in this package compile their families (most structurally
// specific first), so generated instances always land in their own class;
// hand-written circuits land in the structurally closest one.
func (f Fingerprint) Class() string {
	switch {
	case f.Gates == 0:
		return ClassGeneric
	case f.MultiCtrl > 0:
		// Multi-controlled oracles/diffusers: Grover, Deutsch–Jozsa, adders.
		return ClassGrover
	case f.SqrtXY > 0 && f.CZ > 0:
		// √X/√Y between CZ layers is the supremacy-style signature.
		return ClassSupremacy
	case f.CPhase > 0 && f.H > 0 && 4*f.CPhase >= f.Gates:
		// Controlled-phase ladders dominate QFT-shaped circuits.
		return ClassQFT
	case f.RX > 0 && f.RZ > 0 && f.CX > 0 && f.RY == 0:
		// ZZ cost terms (CX·RZ·CX) plus an RX mixer.
		return ClassQAOA
	case f.RY > 0 && f.RZ > 0 && f.CX > 0 && f.RX == 0:
		// RY/RZ rotation layers with CX entanglers.
		return ClassVQE
	case f.T+f.S > 0 && f.RX+f.RY+f.RZ+f.Phase+f.CPhase+f.SqrtXY == 0:
		// Discrete Clifford(+T) basis, no continuous rotations. Covers both
		// T-carrying instances and the TCount=0 pure-stabilizer soups.
		return ClassCliffordT
	case f.H > 0 && f.CX > 0 && f.H+f.CX+f.Pauli == f.Gates:
		// Pure H+CX(+Pauli) entangling: GHZ, Bell pairs, graph states.
		return ClassPairs
	default:
		return ClassGeneric
	}
}

// Classify returns the workload class of a circuit.
func Classify(c *circuit.Circuit) string { return FingerprintOf(c).Class() }
