// Package opt implements conservative peephole optimization of circuits:
// cancellation of adjacent inverse pairs, merging of adjacent rotations
// about the same axis, and removal of identity gates. Such optimizations
// matter to the paper's workflow in two ways: they are the standard
// pre-processing before simulation, and — as Section IV-C notes — they can
// destroy the block structure that guides approximation-round placement,
// which is why placement falls back to even spacing ("when no such circuit
// blocks can be identified, e.g., after certain types of circuit
// optimization").
//
// Every rewrite is sound under commutation with qubit-disjoint gates only,
// so optimized circuits are exactly equivalent (verified in the tests with
// internal/verify).
package opt
