package opt

import (
	"math"

	"repro/internal/circuit"
)

// Stats reports what an optimization pass did.
type Stats struct {
	CancelledPairs int
	MergedGates    int
	DroppedGates   int // identity/zero-angle gates removed
	Passes         int
}

// rotation axes whose adjacent applications merge by angle addition.
var mergeable = map[string]bool{"rx": true, "ry": true, "rz": true, "p": true, "u1": true, "phase": true}

const angleEps = 1e-12

// Optimize returns an equivalent, usually shorter circuit. Block boundaries
// are dropped (the optimization may move or remove the gates they pointed
// at — the paper's observation about optimized circuits losing their block
// structure).
func Optimize(c *circuit.Circuit) (*circuit.Circuit, Stats) {
	gates := append([]circuit.Gate(nil), c.Gates()...)
	var stats Stats
	for {
		stats.Passes++
		changed := false
		removed := make([]bool, len(gates))

		for i := 0; i < len(gates); i++ {
			if removed[i] {
				continue
			}
			gi := gates[i]
			if !optimizable(gi) {
				continue
			}
			qi := qubitSet(gi)
			for j := i + 1; j < len(gates); j++ {
				if removed[j] {
					continue
				}
				gj := gates[j]
				qj := qubitSet(gj)
				if disjoint(qi, qj) {
					continue // commutes trivially; keep scanning
				}
				// First interacting gate decides; only exact-footprint
				// matches are rewritten.
				if sameFootprint(gi, gj) && optimizable(gj) {
					if isInversePair(gi, gj) {
						removed[i], removed[j] = true, true
						stats.CancelledPairs++
						changed = true
					} else if merged, ok := mergeRotations(gi, gj); ok {
						gates[i] = merged
						removed[j] = true
						stats.MergedGates++
						changed = true
					}
				}
				break
			}
		}

		next := gates[:0:0]
		for i, g := range gates {
			if removed[i] {
				continue
			}
			if isIdentityGate(g) {
				stats.DroppedGates++
				changed = true
				continue
			}
			next = append(next, g)
		}
		gates = next
		if !changed {
			break
		}
	}

	out := circuit.New(c.NumQubits, c.Name+"_opt")
	for _, g := range gates {
		out.Append(g)
	}
	return out, stats
}

func optimizable(g circuit.Gate) bool {
	return g.Kind == circuit.KindUnitary
}

func qubitSet(g circuit.Gate) map[int]bool {
	qs := make(map[int]bool, 1+len(g.Controls))
	if g.Kind == circuit.KindPerm {
		for q := 0; q < g.PermWidth; q++ {
			qs[q] = true
		}
	} else {
		qs[g.Target] = true
	}
	for _, c := range g.Controls {
		qs[c.Qubit] = true
	}
	return qs
}

func disjoint(a, b map[int]bool) bool {
	for q := range b {
		if a[q] {
			return false
		}
	}
	return true
}

// sameFootprint reports whether two gates act on the same target with the
// same control set (order-insensitive, polarity-sensitive).
func sameFootprint(a, b circuit.Gate) bool {
	if a.Target != b.Target || len(a.Controls) != len(b.Controls) {
		return false
	}
	for _, ca := range a.Controls {
		found := false
		for _, cb := range b.Controls {
			if ca == cb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func isInversePair(a, b circuit.Gate) bool {
	invName, invParams, err := circuit.InverseGate(a.Name, a.Params)
	if err != nil {
		return false
	}
	if !namesMatch(invName, b.Name) || len(invParams) != len(b.Params) {
		return false
	}
	for i := range invParams {
		if !anglesEqual(invParams[i], b.Params[i]) {
			return false
		}
	}
	return true
}

// namesMatch treats gate-name aliases as equal.
func namesMatch(a, b string) bool {
	alias := func(n string) string {
		switch n {
		case "u1", "phase":
			return "p"
		case "u":
			return "u3"
		case "i":
			return "id"
		default:
			return n
		}
	}
	return alias(a) == alias(b)
}

// anglesEqual compares rotation angles modulo 4π (the period of SU(2)
// rotations; p/u1 have period 2π, for which 4π-equality is sufficient too).
func anglesEqual(a, b float64) bool {
	d := math.Mod(a-b, 4*math.Pi)
	if d < 0 {
		d += 4 * math.Pi
	}
	return d < angleEps || 4*math.Pi-d < angleEps
}

func mergeRotations(a, b circuit.Gate) (circuit.Gate, bool) {
	if !namesMatch(a.Name, b.Name) || !mergeable[aliasName(a.Name)] {
		return circuit.Gate{}, false
	}
	if len(a.Params) != 1 || len(b.Params) != 1 {
		return circuit.Gate{}, false
	}
	merged := a
	merged.Params = []float64{a.Params[0] + b.Params[0]}
	return merged, true
}

func aliasName(n string) string {
	switch n {
	case "u1", "phase":
		return "p"
	default:
		return n
	}
}

// isIdentityGate recognizes explicit identities and zero-angle rotations.
func isIdentityGate(g circuit.Gate) bool {
	if g.Kind != circuit.KindUnitary {
		return false
	}
	switch g.Name {
	case "id", "i":
		return true
	case "rx", "ry", "rz":
		return len(g.Params) == 1 && anglesEqual(g.Params[0], 0)
	case "p", "u1", "phase":
		if len(g.Params) != 1 {
			return false
		}
		d := math.Mod(g.Params[0], 2*math.Pi)
		if d < 0 {
			d += 2 * math.Pi
		}
		return d < angleEps || 2*math.Pi-d < angleEps
	default:
		return false
	}
}
