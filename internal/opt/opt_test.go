package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/verify"
)

func TestCancelAdjacentInverses(t *testing.T) {
	c := circuit.New(2, "cancel")
	c.H(0)
	c.H(0) // H·H = I
	c.T(1)
	c.Tdg(1) // T·T† = I
	c.S(0)
	out, stats := Optimize(c)
	if out.Len() != 1 {
		t.Fatalf("optimized to %d gates, want 1: %v", out.Len(), out.Gates())
	}
	if stats.CancelledPairs != 2 {
		t.Errorf("cancelled %d pairs, want 2", stats.CancelledPairs)
	}
	if out.Gates()[0].Name != "s" {
		t.Errorf("surviving gate %v", out.Gates()[0])
	}
}

func TestCancellationAcrossDisjointGates(t *testing.T) {
	c := circuit.New(3, "across")
	c.H(0)
	c.X(1) // disjoint — H pair still cancels through it
	c.H(0)
	out, _ := Optimize(c)
	if out.Len() != 1 || out.Gates()[0].Name != "x" {
		t.Fatalf("optimized gates: %v", out.Gates())
	}
}

func TestNoCancellationAcrossInterferingGate(t *testing.T) {
	c := circuit.New(2, "blocked")
	c.H(0)
	c.CX(0, 1) // shares qubit 0 — blocks the H pair
	c.H(0)
	out, _ := Optimize(c)
	if out.Len() != 3 {
		t.Fatalf("unsound cancellation: %v", out.Gates())
	}
}

func TestControlledInversePair(t *testing.T) {
	c := circuit.New(3, "cx")
	c.CX(2, 0)
	c.CX(2, 0)
	out, _ := Optimize(c)
	if out.Len() != 0 {
		t.Fatalf("CX pair not cancelled: %v", out.Gates())
	}
	// Different control polarity must NOT cancel.
	c2 := circuit.New(3, "mixed")
	c2.Apply("x", nil, 0, dd.PosControl(2))
	c2.Apply("x", nil, 0, dd.NegControl(2))
	out2, _ := Optimize(c2)
	if out2.Len() != 2 {
		t.Fatalf("polarity-mismatched pair cancelled: %v", out2.Gates())
	}
}

func TestRotationMerging(t *testing.T) {
	c := circuit.New(1, "rot")
	c.RZ(0.3, 0)
	c.RZ(0.5, 0)
	c.RZ(-0.8, 0) // total 0 → dropped entirely
	out, stats := Optimize(c)
	if out.Len() != 0 {
		t.Fatalf("rotations did not merge to identity: %v", out.Gates())
	}
	// The chain can resolve as merge+merge+drop or merge+cancel; either way
	// at least one merge happened and nothing remains.
	if stats.MergedGates == 0 {
		t.Errorf("stats %+v", stats)
	}
	c2 := circuit.New(1, "rot2")
	c2.P(0.25, 0)
	c2.P(0.5, 0)
	out2, _ := Optimize(c2)
	if out2.Len() != 1 || math.Abs(out2.Gates()[0].Params[0]-0.75) > 1e-12 {
		t.Fatalf("phase merge wrong: %v", out2.Gates())
	}
}

func TestIdentityRemoval(t *testing.T) {
	c := circuit.New(2, "ids")
	c.Apply("id", nil, 0)
	c.RX(0, 1)
	c.P(2*math.Pi, 0)
	c.X(1)
	out, stats := Optimize(c)
	if out.Len() != 1 || out.Gates()[0].Name != "x" {
		t.Fatalf("identities survived: %v", out.Gates())
	}
	if stats.DroppedGates != 3 {
		t.Errorf("dropped %d, want 3", stats.DroppedGates)
	}
}

func TestMeasurementActsAsBarrier(t *testing.T) {
	c := circuit.New(1, "meas")
	c.H(0)
	c.Measure(0)
	c.H(0)
	out, _ := Optimize(c)
	if out.Len() != 3 {
		t.Fatalf("cancellation across measurement: %v", out.Gates())
	}
}

func TestOptimizePreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		c := circuit.New(n, "rand")
		names := []string{"h", "x", "s", "sdg", "t", "tdg"}
		for k := 0; k < 30; k++ {
			switch rng.Intn(3) {
			case 0:
				c.Apply(names[rng.Intn(len(names))], nil, rng.Intn(n))
			case 1:
				c.RZ(math.Round(rng.Float64()*8)/4*math.Pi, rng.Intn(n))
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.CX(a, b)
				}
			}
		}
		out, _ := Optimize(c)
		res, err := verify.Equivalent(c, out)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("optimization broke equivalence (trial %d):\n in: %v\nout: %v",
				trial, c.Gates(), out.Gates())
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	c := gen.RandomCliffordT(4, 60, 11)
	once, _ := Optimize(c)
	twice, stats := Optimize(once)
	if twice.Len() != once.Len() {
		t.Errorf("second pass changed length %d -> %d", once.Len(), twice.Len())
	}
	if stats.CancelledPairs+stats.MergedGates+stats.DroppedGates != 0 {
		t.Errorf("second pass did work: %+v", stats)
	}
}

func TestOptimizeShrinksRealCircuit(t *testing.T) {
	// QFT followed by its inverse collapses substantially (swap chains meet
	// their mirror images).
	n := 5
	c := gen.QFT(n)
	c.AppendCircuit(gen.InverseQFT(n))
	out, _ := Optimize(c)
	if out.Len() >= c.Len() {
		t.Errorf("no shrink: %d -> %d gates", c.Len(), out.Len())
	}
	res, err := verify.Equivalent(c, out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("QFT·IQFT optimization broke equivalence")
	}
}
