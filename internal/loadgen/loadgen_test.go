package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestSweepMeasuresAffinityAdvantage runs a miniature sweep and pins the
// property the perf gate depends on: hash routing repeats circuits into the
// backend that already cached them, so its cluster hit rate beats
// round-robin's on the same workload.
func TestSweepMeasuresAffinityAdvantage(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Sweep(ctx, Options{
		Backends:   2,
		Qubits:     []int{3},
		Strategies: []string{"exact"},
		RPS:        50,
		Phase:      600 * time.Millisecond,
		WorkingSet: 5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.CalibrationNs <= 0 || rep.NumCPU < 1 {
		t.Fatalf("report header malformed: %+v", rep)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("%d runs, want 2 (hash + rr)", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if run.Completed == 0 || run.Failed != 0 {
			t.Errorf("%s run completed=%d failed=%d of %d sent", run.Route, run.Completed, run.Failed, run.Sent)
		}
		if run.P50MS <= 0 || run.P99MS < run.P50MS {
			t.Errorf("%s percentiles inconsistent: p50=%.2f p99=%.2f", run.Route, run.P50MS, run.P99MS)
		}
		if run.CacheHitRate < 0 || run.CacheHitRate > 1 {
			t.Errorf("%s hit rate %.2f escapes [0,1]", run.Route, run.CacheHitRate)
		}
	}
	// The gate's core claim: affinity routing concentrates repeats.
	if rep.Aggregate.HashHitRate <= rep.Aggregate.RRHitRate {
		t.Errorf("hash hit rate %.2f does not beat rr %.2f",
			rep.Aggregate.HashHitRate, rep.Aggregate.RRHitRate)
	}
	if rep.Aggregate.HashP99MS <= 0 || rep.Aggregate.RRP99MS <= 0 {
		t.Errorf("aggregate p99s missing: %+v", rep.Aggregate)
	}
}

func TestStartLocalBootsAndReportsStats(t *testing.T) {
	lc, err := StartLocal(2, 1, 16, cluster.RouteHash)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	cs, err := lc.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Up != 2 || cs.Route != cluster.RouteHash {
		t.Errorf("cluster stats up=%d route=%q, want 2/hash", cs.Up, cs.Route)
	}
}
