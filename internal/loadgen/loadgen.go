package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/client"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// Schema identifies the Report format.
const Schema = "bench-cluster/v1"

// Options configures a sweep. Zero values select the CI-sized defaults.
type Options struct {
	// Backends is the number of simd backends behind the router (default 2).
	Backends int
	// Workers is the worker-pool size of each backend (default 1).
	Workers int
	// Qubits are the GHZ circuit widths to sweep (default {4}).
	Qubits []int
	// Strategies are the simulation strategies to sweep (default {"exact"}).
	Strategies []string
	// RPS is the offered submission rate per phase (default 40).
	RPS float64
	// Phase is the duration of one (route, qubits, strategy) phase
	// (default 2s).
	Phase time.Duration
	// WorkingSet is the number of distinct circuits cycled during a phase
	// (default 5; keep it coprime with Backends so round-robin genuinely
	// spreads repeats instead of accidentally pinning them).
	WorkingSet int
	// Routes are the routing modes to compare (default {hash, rr}).
	Routes []string
	// VNodes is the router's ring points per backend (default 64).
	VNodes int
}

func (o Options) withDefaults() Options {
	if o.Backends <= 0 {
		o.Backends = 2
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if len(o.Qubits) == 0 {
		o.Qubits = []int{4}
	}
	if len(o.Strategies) == 0 {
		o.Strategies = []string{serve.StrategyExact}
	}
	if o.RPS <= 0 {
		o.RPS = 40
	}
	if o.Phase <= 0 {
		o.Phase = 2 * time.Second
	}
	if o.WorkingSet <= 0 {
		o.WorkingSet = 5
	}
	if len(o.Routes) == 0 {
		o.Routes = []string{cluster.RouteHash, cluster.RouteRR}
	}
	return o
}

// Run is one phase's measured outcome.
type Run struct {
	Route         string  `json:"route"`
	Qubits        int     `json:"qubits"`
	Strategy      string  `json:"strategy"`
	OfferedRPS    float64 `json:"offered_rps"`
	Sent          int     `json:"sent"`
	Completed     int     `json:"completed"`
	Failed        int     `json:"failed"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// CacheHitRate is the cluster-wide result-cache hit rate over this
	// phase alone (deltas of the router's aggregated counters).
	CacheHitRate float64 `json:"cache_hit_rate"`
	DurationMS   float64 `json:"duration_ms"`
}

// Aggregate condenses a Report for the perf gate: per-route cache hit rate
// (from counter deltas summed over every phase) and overall p99 latency.
type Aggregate struct {
	HashHitRate float64 `json:"hash_hit_rate"`
	RRHitRate   float64 `json:"rr_hit_rate"`
	HashP99MS   float64 `json:"hash_p99_ms"`
	RRP99MS     float64 `json:"rr_p99_ms"`
}

// Report is the BENCH_cluster.json document.
type Report struct {
	Schema        string    `json:"schema"`
	CalibrationNs float64   `json:"calibration_ns"`
	NumCPU        int       `json:"num_cpu"`
	Backends      int       `json:"backends"`
	Runs          []Run     `json:"runs"`
	Aggregate     Aggregate `json:"aggregate"`
}

// LocalCluster is a router plus K backends on loopback listeners, all
// in-process — the unit the sweeps run against.
type LocalCluster struct {
	// URL is the router's base URL.
	URL string

	router   *cluster.Router
	servers  []*serve.Server
	httpSrvs []*http.Server
}

// StartLocal boots k backends and a fronting router in the given route mode.
// Close releases everything.
func StartLocal(k, workers, vnodes int, route string) (*LocalCluster, error) {
	lc := &LocalCluster{}
	var urls []string
	for i := 0; i < k; i++ {
		s := serve.New(serve.Config{Workers: workers})
		url, err := lc.listen(s.Handler())
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.servers = append(lc.servers, s)
		urls = append(urls, url)
	}
	rt, err := cluster.New(cluster.Config{
		Backends:      urls,
		RouteMode:     route,
		VNodes:        vnodes,
		ProbeInterval: 250 * time.Millisecond,
	})
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.router = rt
	if lc.URL, err = lc.listen(rt.Handler()); err != nil {
		lc.Close()
		return nil, err
	}
	return lc, nil
}

func (lc *LocalCluster) listen(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: h}
	lc.httpSrvs = append(lc.httpSrvs, hs)
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), nil
}

// Close tears the local cluster down: listeners first, then the router's
// prober, then the backend pools.
func (lc *LocalCluster) Close() {
	for _, hs := range lc.httpSrvs {
		hs.Close()
	}
	if lc.router != nil {
		lc.router.Close()
	}
	for _, s := range lc.servers {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		s.Shutdown(ctx)
		cancel()
	}
}

// Stats fetches the router's aggregated cluster stats.
func (lc *LocalCluster) Stats(ctx context.Context) (*cluster.ClusterStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, lc.URL+"/v1/cluster/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: cluster stats: HTTP %d", resp.StatusCode)
	}
	var cs cluster.ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

// Sweep runs the full (route × qubits × strategy) grid and assembles the
// Report. Each route gets a freshly booted cluster, so cache hit rates
// compare routing policy, not cache warm-up order. progress (optional)
// receives one line per completed phase.
func Sweep(ctx context.Context, opts Options, progress func(string)) (*Report, error) {
	o := opts.withDefaults()
	if progress == nil {
		progress = func(string) {}
	}
	rep := &Report{Schema: Schema, NumCPU: runtime.NumCPU(), Backends: o.Backends}
	routeLats := map[string][]time.Duration{}
	routeHits := map[string][2]int64{} // hits, misses
	for _, route := range o.Routes {
		lc, err := StartLocal(o.Backends, o.Workers, o.VNodes, route)
		if err != nil {
			return nil, err
		}
		cl := client.New(lc.URL, client.WithRetries(3, 50*time.Millisecond))
		for _, q := range o.Qubits {
			for _, strat := range o.Strategies {
				run, lats, hits, misses, err := phase(ctx, cl, lc, route, q, strat, o)
				if err != nil {
					lc.Close()
					return nil, err
				}
				rep.Runs = append(rep.Runs, run)
				routeLats[route] = append(routeLats[route], lats...)
				hm := routeHits[route]
				routeHits[route] = [2]int64{hm[0] + hits, hm[1] + misses}
				progress(fmt.Sprintf("loadgen: %-4s q=%d %-8s rps=%g: p50=%.1fms p95=%.1fms p99=%.1fms thr=%.1f/s hit=%.0f%%",
					route, q, strat, run.OfferedRPS, run.P50MS, run.P95MS, run.P99MS, run.ThroughputRPS, 100*run.CacheHitRate))
			}
		}
		lc.Close()
	}
	rep.Aggregate = Aggregate{
		HashHitRate: rate(routeHits[cluster.RouteHash]),
		RRHitRate:   rate(routeHits[cluster.RouteRR]),
		HashP99MS:   ms(percentile(routeLats[cluster.RouteHash], 0.99)),
		RRP99MS:     ms(percentile(routeLats[cluster.RouteRR], 0.99)),
	}
	rep.CalibrationNs = Calibrate()
	return rep, nil
}

// phase drives one open-loop load phase: submissions fire on a fixed
// interval regardless of completions (so queueing shows up as latency, the
// way it does for real independent clients), each job is driven to a
// terminal state, and the cache-hit delta is read from the router.
func phase(ctx context.Context, cl *client.Client, lc *LocalCluster, route string, qubits int, strategy string, o Options) (Run, []time.Duration, int64, int64, error) {
	before, err := lc.Stats(ctx)
	if err != nil {
		return Run{}, nil, 0, 0, err
	}
	total := int(o.RPS * o.Phase.Seconds())
	if total < 1 {
		total = 1
	}
	interval := o.Phase / time.Duration(total)

	var (
		mu        sync.Mutex
		lats      []time.Duration
		failed    int
		completed int
	)
	var wg sync.WaitGroup
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < total; i++ {
		req := ghzRequest(qubits, strategy, i%o.WorkingSet)
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			st, err := cl.Submit(ctx, req)
			if err == nil && (st.Status == serve.StatusQueued || st.Status == serve.StatusRunning) {
				st, err = cl.Wait(ctx, st.ID, 2*time.Millisecond)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil || st.Status != serve.StatusDone {
				failed++
				return
			}
			completed++
			lats = append(lats, time.Since(t0))
		}()
		if i < total-1 {
			select {
			case <-ctx.Done():
				wg.Wait()
				return Run{}, nil, 0, 0, context.Cause(ctx)
			case <-tick.C:
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	after, err := lc.Stats(ctx)
	if err != nil {
		return Run{}, nil, 0, 0, err
	}

	hits := after.CacheHits - before.CacheHits
	misses := after.CacheMisses - before.CacheMisses
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	run := Run{
		Route:         route,
		Qubits:        qubits,
		Strategy:      strategy,
		OfferedRPS:    o.RPS,
		Sent:          total,
		Completed:     completed,
		Failed:        failed,
		P50MS:         ms(percentile(lats, 0.50)),
		P95MS:         ms(percentile(lats, 0.95)),
		P99MS:         ms(percentile(lats, 0.99)),
		ThroughputRPS: float64(completed) / elapsed.Seconds(),
		CacheHitRate:  rate([2]int64{hits, misses}),
		DurationMS:    ms(elapsed),
	}
	return run, lats, hits, misses, nil
}

// ghzRequest builds the working-set circuit: a GHZ ladder on q qubits, made
// distinct per working-set slot through the seed (which enters the content
// hash, so each slot is its own cache entry).
func ghzRequest(q int, strategy string, slot int) client.JobRequest {
	gates := []serve.GateSpec{{Name: "h", Target: 0}}
	for i := 1; i < q; i++ {
		gates = append(gates, serve.GateSpec{Name: "x", Target: i, Controls: []int{i - 1}})
	}
	return client.JobRequest{
		Qubits:   q,
		Gates:    gates,
		Shots:    32,
		Seed:     int64(slot + 1),
		Strategy: strategy,
	}
}

// percentile returns the q-quantile of sorted (nearest-rank on a sorted
// slice); zero when empty.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if !sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a] < sorted[b] }) {
		s := append([]time.Duration(nil), sorted...)
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		sorted = s
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func rate(hm [2]int64) float64 {
	if hm[0]+hm[1] == 0 {
		return 0
	}
	return float64(hm[0]) / float64(hm[0]+hm[1])
}

// calibSink keeps the calibration loop observable so it cannot be elided.
var calibSink uint64

// Calibrate times a fixed SplitMix64 chain (single-threaded, cache-resident,
// allocation-free) and returns the fastest of several runs in nanoseconds —
// a pure CPU-speed probe. scripts/benchsummary stamps the same probe into
// BENCH_summary.json, which lets perf gates scale committed baselines by
// machine speed instead of comparing raw wall clock across machines.
func Calibrate() float64 {
	best := 0.0
	for run := 0; run < 5; run++ {
		x := uint64(0x9E3779B97F4A7C15)
		start := time.Now()
		for i := 0; i < 50_000_000; i++ {
			x ^= x >> 30
			x *= 0xBF58476D1CE4E5B9
			x ^= x >> 27
			x *= 0x94D049BB133111EB
			x ^= x >> 31
		}
		elapsed := float64(time.Since(start).Nanoseconds())
		calibSink += x
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}
