// Package loadgen is the cluster latency and throughput harness behind
// `make bench-cluster`: it boots a local simd cluster (router + K backends
// on loopback listeners), drives phase-timed open-loop sweeps over qubit
// counts × strategies × offered request rates, and reports p50/p95/p99
// end-to-end job latency, achieved throughput, and per-phase cluster cache
// hit rate for both routing modes (content-hash affinity and round-robin).
//
// The resulting Report (schema bench-cluster/v1, written to
// BENCH_cluster.json by cmd/loadgen) is gated by scripts/benchsummary
// -check: hash-affinity routing must beat round-robin on cache hit rate,
// and p99 latency must stay within a calibration-adjusted envelope of the
// committed baseline. Calibrate is the shared CPU-speed probe that makes
// the cross-machine latency comparison meaningful.
package loadgen
