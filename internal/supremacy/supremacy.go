package supremacy

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// Config describes one supremacy circuit instance.
type Config struct {
	Rows, Cols int
	// Depth is the number of clock cycles after the initial Hadamard layer
	// (the paper's benchmarks use depth 15 on a 4×5 grid).
	Depth int
	// Seed selects the instance (the paper's trailing _0/_1/_2).
	Seed int64
}

// Name returns the paper-style benchmark name, e.g. "qsup_4x5_15_0".
func (c Config) Name() string {
	return fmt.Sprintf("qsup_%dx%d_%d_%d", c.Rows, c.Cols, c.Depth, c.Seed)
}

// Qubits returns the number of qubits (grid size).
func (c Config) Qubits() int { return c.Rows * c.Cols }

type bond struct{ a, b int } // qubit indices, a < b

// bondPatterns returns the eight CZ layers: four staggered horizontal
// phases interleaved with four staggered vertical phases. Within a layer
// all bonds are disjoint; over the eight layers every grid bond appears
// exactly once.
func bondPatterns(rows, cols int) [8][]bond {
	var patterns [8][]bond
	idx := func(r, c int) int { return r*cols + c }
	// Horizontal bonds (r,c)-(r,c+1) in phase (c + 2*(r%2)) mod 4.
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			phase := (c + 2*(r%2)) % 4
			patterns[2*phase] = append(patterns[2*phase], bond{idx(r, c), idx(r, c+1)})
		}
	}
	// Vertical bonds (r,c)-(r+1,c) in phase (r + 2*(c%2)) mod 4.
	for r := 0; r+1 < rows; r++ {
		for c := 0; c < cols; c++ {
			phase := (r + 2*(c%2)) % 4
			patterns[2*phase+1] = append(patterns[2*phase+1], bond{idx(r, c), idx(r+1, c)})
		}
	}
	return patterns
}

// Generate builds the circuit. Deterministic per Config (including Seed).
// A block boundary is recorded after every clock cycle.
func (c Config) Generate() (*circuit.Circuit, error) {
	if c.Rows < 1 || c.Cols < 1 {
		return nil, fmt.Errorf("supremacy: grid %dx%d invalid", c.Rows, c.Cols)
	}
	if c.Rows*c.Cols < 2 {
		return nil, fmt.Errorf("supremacy: grid needs at least 2 qubits")
	}
	if c.Depth < 1 {
		return nil, fmt.Errorf("supremacy: depth %d must be positive", c.Depth)
	}
	n := c.Qubits()
	rng := rand.New(rand.NewSource(c.Seed))
	circ := circuit.New(n, c.Name())

	// Cycle 0: Hadamard on every qubit.
	for q := 0; q < n; q++ {
		circ.H(q)
	}
	circ.EndBlock()

	patterns := bondPatterns(c.Rows, c.Cols)

	const (
		gNone = iota
		gT
		gSX
		gSY
	)
	lastGate := make([]int, n)  // last single-qubit gate per qubit (gNone after H)
	hadT := make([]bool, n)     // whether the qubit already received its T
	inCZPrev := make([]bool, n) // CZ participation in the previous cycle

	for cycle := 0; cycle < c.Depth; cycle++ {
		layer := patterns[cycle%8]
		inCZNow := make([]bool, n)
		for _, b := range layer {
			inCZNow[b.a], inCZNow[b.b] = true, true
		}
		// Single-qubit gates go on qubits that just left a CZ.
		for q := 0; q < n; q++ {
			if inCZNow[q] || !inCZPrev[q] {
				continue
			}
			switch {
			case !hadT[q]:
				circ.T(q)
				hadT[q] = true
				lastGate[q] = gT
			default:
				choice := gSX
				if rng.Intn(2) == 0 {
					choice = gSY
				}
				if choice == lastGate[q] { // never repeat the previous gate
					if choice == gSX {
						choice = gSY
					} else {
						choice = gSX
					}
				}
				if choice == gSX {
					circ.SX(q)
				} else {
					circ.SY(q)
				}
				lastGate[q] = choice
			}
		}
		// The CZ layer (the paper's conditional phase gates).
		for _, b := range layer {
			circ.CZ(b.a, b.b)
		}
		circ.EndBlock()
		inCZPrev = inCZNow
	}
	return circ, nil
}
