// Package supremacy generates random quantum-supremacy circuits in the style
// of Boixo et al., "Characterizing quantum supremacy in near-term devices"
// (Nature Physics 2018) — the paper's memory-driven benchmarks
// ("qsup_AxB_depth_seed", using conditional phase gates).
//
// The construction follows the published rules: qubits on an A×B grid,
// an initial layer of Hadamards, then per clock cycle one layer of CZ gates
// drawn from a repeating sequence of eight staggered bond patterns, with
// single-qubit gates from {T, √X, √Y} filling qubits that just left a CZ:
//
//   - a qubit receives a single-qubit gate in cycle k only if it was acted
//     on by a CZ in cycle k−1 and is not in a CZ in cycle k;
//   - the first such gate on a qubit is always T (delaying T gates lowers
//     circuit hardness);
//   - subsequent gates are chosen uniformly from {√X, √Y}, never repeating
//     the qubit's previous single-qubit gate.
//
// The exact eight bond patterns of the original paper are tied to their
// specific device figure; this generator uses staggered patterns with the
// same structure (four horizontal + four vertical phases, each bond covered
// once per eight cycles, disjoint bonds within a layer), which preserves the
// property the DATE'21 paper relies on: minimal redundancy, so the state DD
// grows toward the 2^n worst case (see DESIGN.md, substitutions).
package supremacy
