package supremacy

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestBondPatternsCoverEveryBondOnce(t *testing.T) {
	for _, grid := range [][2]int{{2, 2}, {3, 3}, {4, 5}, {5, 4}, {1, 6}} {
		rows, cols := grid[0], grid[1]
		patterns := bondPatterns(rows, cols)
		seen := map[bond]int{}
		for _, layer := range patterns {
			occupied := map[int]bool{}
			for _, b := range layer {
				if occupied[b.a] || occupied[b.b] {
					t.Fatalf("%dx%d: overlapping bonds within a layer", rows, cols)
				}
				occupied[b.a], occupied[b.b] = true, true
				seen[b]++
			}
		}
		wantBonds := rows*(cols-1) + (rows-1)*cols
		if len(seen) != wantBonds {
			t.Fatalf("%dx%d: %d distinct bonds over 8 layers, want %d", rows, cols, len(seen), wantBonds)
		}
		for b, count := range seen {
			if count != 1 {
				t.Fatalf("%dx%d: bond %v appears %d times per 8 cycles", rows, cols, b, count)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg := Config{Rows: 3, Cols: 3, Depth: 10, Seed: 0}
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cfg.Generate()
	if a.Len() != b.Len() {
		t.Fatal("same config produced different lengths")
	}
	for i := range a.Gates() {
		if a.Gates()[i].String() != b.Gates()[i].String() {
			t.Fatalf("gate %d differs for identical seeds", i)
		}
	}
	cfg.Seed = 1
	c, _ := cfg.Generate()
	diff := c.Len() != a.Len()
	if !diff {
		for i := range a.Gates() {
			if a.Gates()[i].String() != c.Gates()[i].String() {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical circuits")
	}
}

func TestRuleConformance(t *testing.T) {
	cfg := Config{Rows: 4, Cols: 4, Depth: 16, Seed: 2}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Qubits()
	// Replay the circuit cycle by cycle using the block boundaries.
	blocks := c.Blocks()
	gates := c.Gates()
	start := 0
	hadT := make([]bool, n)
	lastSingle := make([]string, n)
	inCZPrev := make([]bool, n)
	for cycleIdx, end := range blocks {
		inCZNow := make([]bool, n)
		singles := map[int]string{}
		for _, g := range gates[start : end+1] {
			switch g.Name {
			case "h":
				if cycleIdx != 0 {
					t.Fatalf("H outside cycle 0 (cycle %d)", cycleIdx)
				}
			case "z": // CZ
				inCZNow[g.Target] = true
				inCZNow[g.Controls[0].Qubit] = true
			case "t", "sx", "sy":
				singles[g.Target] = g.Name
			default:
				t.Fatalf("unexpected gate %q", g.Name)
			}
		}
		for q, name := range singles {
			if cycleIdx == 0 {
				t.Fatal("single-qubit rule gate in the Hadamard cycle")
			}
			if !inCZPrev[q] {
				t.Fatalf("cycle %d: single-qubit gate on q%d which had no CZ in previous cycle", cycleIdx, q)
			}
			if inCZNow[q] {
				t.Fatalf("cycle %d: single-qubit gate on q%d which is in a CZ this cycle", cycleIdx, q)
			}
			if !hadT[q] && name != "t" {
				t.Fatalf("cycle %d: first single-qubit gate on q%d is %q, want t", cycleIdx, q, name)
			}
			if hadT[q] && name == "t" {
				t.Fatalf("cycle %d: second T on q%d", cycleIdx, q)
			}
			if name != "t" && name == lastSingle[q] {
				t.Fatalf("cycle %d: repeated %q on q%d", cycleIdx, name, q)
			}
			if name == "t" {
				hadT[q] = true
			}
			lastSingle[q] = name
		}
		inCZPrev = inCZNow
		start = end + 1
	}
	counts := c.CountByName()
	if counts["h"] != n {
		t.Errorf("%d Hadamards, want %d", counts["h"], n)
	}
	if counts["t"] == 0 || counts["z"] == 0 {
		t.Errorf("missing T or CZ gates: %v", counts)
	}
}

func TestBlocksPerCycle(t *testing.T) {
	cfg := Config{Rows: 2, Cols: 3, Depth: 9, Seed: 0}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Blocks()); got != 1+cfg.Depth {
		t.Errorf("%d blocks, want %d (H layer + one per cycle)", got, 1+cfg.Depth)
	}
	if c.Name != cfg.Name() || cfg.Name() != "qsup_2x3_9_0" {
		t.Errorf("name %q / %q", c.Name, cfg.Name())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 0, Cols: 3, Depth: 5},
		{Rows: 1, Cols: 1, Depth: 5},
		{Rows: 2, Cols: 2, Depth: 0},
	}
	for _, cfg := range bad {
		if _, err := cfg.Generate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSupremacyCircuitIsDDHostile(t *testing.T) {
	// The motivating property (Example 9): the state DD of a supremacy
	// circuit grows rapidly toward the 2^n worst case, unlike structured
	// circuits. 3x3 at depth 12 should blow well past the GHZ-scale sizes.
	cfg := Config{Rows: 3, Cols: 3, Depth: 12, Seed: 0}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	res, err := s.Run(c, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Qubits()
	if res.MaxDDSize < 1<<(uint(n)-3) {
		t.Errorf("supremacy DD stayed small: max %d nodes on %d qubits", res.MaxDDSize, n)
	}
	_ = circuit.KindUnitary // keep import for clarity of gate kinds used above
}
