package dense

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// State is a dense n-qubit state vector; amplitude index bit q is the value
// of qubit q, matching the DD convention.
type State struct {
	N   int
	Amp []complex128
}

// NewState returns |0...0⟩ on n qubits.
func NewState(n int) *State {
	if n <= 0 || n > 30 {
		panic(fmt.Sprintf("dense: qubit count %d out of range", n))
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[0] = 1
	return s
}

// NewBasisState returns |bits⟩ on n qubits.
func NewBasisState(n int, bits uint64) *State {
	s := NewState(n)
	s.Amp[0] = 0
	s.Amp[bits] = 1
	return s
}

// FromAmplitudes wraps an amplitude vector (not copied).
func FromAmplitudes(amp []complex128) (*State, error) {
	n := 0
	for 1<<uint(n) < len(amp) {
		n++
	}
	if len(amp) == 0 || 1<<uint(n) != len(amp) {
		return nil, fmt.Errorf("dense: length %d is not a power of two", len(amp))
	}
	return &State{N: n, Amp: amp}, nil
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	amp := make([]complex128, len(s.Amp))
	copy(amp, s.Amp)
	return &State{N: s.N, Amp: amp}
}

// Norm returns the 2-norm of the state.
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.Amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Normalize rescales the state to unit norm.
func (s *State) Normalize() {
	n := s.Norm()
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range s.Amp {
		s.Amp[i] *= inv
	}
}

// ApplyGate applies the single-qubit gate u (row-major [u00 u01 u10 u11]) to
// target, guarded by the given controls. Control values: qubit index and
// whether the control is positive (fires on 1).
func (s *State) ApplyGate(u [4]complex128, target int, controls ...ControlSpec) {
	if target < 0 || target >= s.N {
		panic(fmt.Sprintf("dense: target %d out of range", target))
	}
	tBit := uint64(1) << uint(target)
	for i := uint64(0); i < uint64(len(s.Amp)); i++ {
		if i&tBit != 0 {
			continue // handle each (i0, i1) pair once, from the 0 side
		}
		if !controlsSatisfied(i, controls) {
			continue
		}
		j := i | tBit
		a0, a1 := s.Amp[i], s.Amp[j]
		s.Amp[i] = u[0]*a0 + u[1]*a1
		s.Amp[j] = u[2]*a0 + u[3]*a1
	}
}

// ControlSpec mirrors dd.Control without importing it.
type ControlSpec struct {
	Qubit    int
	Positive bool
}

func controlsSatisfied(idx uint64, controls []ControlSpec) bool {
	for _, c := range controls {
		bit := idx>>uint(c.Qubit)&1 == 1
		if bit != c.Positive {
			return false
		}
	}
	return true
}

// ApplyPermutation applies the permutation |x⟩→|perm[x]⟩ on the k low qubits
// [0, k), optionally guarded by controls on higher qubits.
func (s *State) ApplyPermutation(perm []int, k int, controls ...ControlSpec) {
	dim := 1 << uint(k)
	if len(perm) != dim {
		panic(fmt.Sprintf("dense: permutation length %d, want %d", len(perm), dim))
	}
	newAmp := make([]complex128, len(s.Amp))
	mask := uint64(dim - 1)
	for i := uint64(0); i < uint64(len(s.Amp)); i++ {
		if controlsSatisfied(i, controls) {
			low := int(i & mask)
			j := (i &^ mask) | uint64(perm[low])
			newAmp[j] = s.Amp[i]
		} else {
			newAmp[i] = s.Amp[i]
		}
	}
	s.Amp = newAmp
}

// Fidelity returns |⟨s|o⟩|².
func (s *State) Fidelity(o *State) float64 {
	ip := s.InnerProduct(o)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// InnerProduct returns ⟨s|o⟩.
func (s *State) InnerProduct(o *State) complex128 {
	if s.N != o.N {
		panic("dense: qubit count mismatch")
	}
	var sum complex128
	for i := range s.Amp {
		sum += cmplx.Conj(s.Amp[i]) * o.Amp[i]
	}
	return sum
}

// Probability returns |amp[idx]|².
func (s *State) Probability(idx uint64) float64 {
	a := s.Amp[idx]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Sample draws a basis state from the measurement distribution.
func (s *State) Sample(rng *rand.Rand) uint64 {
	r := rng.Float64()
	var cum float64
	for i := range s.Amp {
		cum += s.Probability(uint64(i))
		if r < cum {
			return uint64(i)
		}
	}
	return uint64(len(s.Amp) - 1)
}

// Truncate zeroes every amplitude not in keep (the truncation procedure of
// Eq. (1)), renormalizes, and returns the fidelity to the pre-truncation
// state, F = ‖P_I ψ‖².
func (s *State) Truncate(keep map[uint64]bool) float64 {
	var kept float64
	for i := range s.Amp {
		if keep[uint64(i)] {
			kept += s.Probability(uint64(i))
		} else {
			s.Amp[i] = 0
		}
	}
	s.Normalize()
	return kept
}
