package dense

import (
	"math"
	"math/rand"
	"testing"
)

var (
	gateX = [4]complex128{0, 1, 1, 0}
	gateH = [4]complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	}
)

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Amp[0] != 1 {
		t.Error("amp[0] != 1")
	}
	for i := 1; i < len(s.Amp); i++ {
		if s.Amp[i] != 0 {
			t.Errorf("amp[%d] != 0", i)
		}
	}
}

func TestApplyXFlipsQubit(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(gateX, 1)
	if s.Amp[0b10] != 1 {
		t.Errorf("X on qubit 1: %v", s.Amp)
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(gateH, 1)
	s.ApplyGate(gateX, 0, ControlSpec{Qubit: 1, Positive: true})
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amp[0])-want) > 1e-12 || math.Abs(real(s.Amp[3])-want) > 1e-12 {
		t.Errorf("Bell state amplitudes: %v", s.Amp)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm %v", s.Norm())
	}
}

func TestNegativeControl(t *testing.T) {
	s := NewState(2) // |00⟩
	s.ApplyGate(gateX, 0, ControlSpec{Qubit: 1, Positive: false})
	if s.Amp[0b01] != 1 {
		t.Errorf("negative control did not fire: %v", s.Amp)
	}
}

func TestPermutation(t *testing.T) {
	s := NewBasisState(3, 0b011)
	// Swap the low two qubits: perm on 2 qubits [0,2,1,3].
	s.ApplyPermutation([]int{0, 2, 1, 3}, 2)
	if s.Amp[0b011] != 1 {
		// 0b11 low bits → perm[3] = 3, unchanged.
		t.Errorf("permutation of fixed point moved: %v", s.Amp)
	}
	s = NewBasisState(3, 0b001)
	s.ApplyPermutation([]int{0, 2, 1, 3}, 2)
	if s.Amp[0b010] != 1 {
		t.Errorf("permutation |01⟩→|10⟩ failed: %v", s.Amp)
	}
}

func TestControlledPermutationIdentityWhenControlOff(t *testing.T) {
	s := NewBasisState(3, 0b001)
	s.ApplyPermutation([]int{1, 0}, 1, ControlSpec{Qubit: 2, Positive: true})
	if s.Amp[0b001] != 1 {
		t.Errorf("controlled permutation fired with control off: %v", s.Amp)
	}
	s = NewBasisState(3, 0b101)
	s.ApplyPermutation([]int{1, 0}, 1, ControlSpec{Qubit: 2, Positive: true})
	if s.Amp[0b100] != 1 {
		t.Errorf("controlled permutation did not fire: %v", s.Amp)
	}
}

func TestFidelityAndTruncate(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(gateH, 0)
	s.ApplyGate(gateH, 1) // uniform over 4 states
	orig := s.Clone()
	kept := s.Truncate(map[uint64]bool{0: true, 3: true})
	if math.Abs(kept-0.5) > 1e-12 {
		t.Errorf("kept mass %v, want 0.5", kept)
	}
	if f := orig.Fidelity(s); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("fidelity after truncation %v, want 0.5 (Example 6)", f)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("truncated state not renormalized: %v", s.Norm())
	}
}

func TestSampleMatchesProbabilities(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(gateH, 1)
	rng := rand.New(rand.NewSource(5))
	counts := map[uint64]int{}
	const shots = 100000
	for i := 0; i < shots; i++ {
		counts[s.Sample(rng)]++
	}
	for _, idx := range []uint64{0, 2} {
		frac := float64(counts[idx]) / shots
		if math.Abs(frac-0.5) > 0.01 {
			t.Errorf("P(|%02b⟩) sampled %v, want 0.5", idx, frac)
		}
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Error("sampled zero-amplitude state")
	}
}

func TestFromAmplitudesValidates(t *testing.T) {
	if _, err := FromAmplitudes(make([]complex128, 5)); err == nil {
		t.Error("length 5 accepted")
	}
	if _, err := FromAmplitudes(nil); err == nil {
		t.Error("nil accepted")
	}
}
