// Package dense implements a straightforward dense state-vector simulator.
//
// It is the paper's Section III baseline ("a series of matrix-vector
// multiplications" with 2^n-entry vectors) and doubles as the correctness
// oracle for the decision-diagram engine: every DD operation is cross-checked
// against this implementation on small systems in the dd and sim test
// suites. It is deliberately unoptimized — clarity over speed — and never
// used on hot paths.
package dense
