package dense

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomUnitary returns a Haar-style random 2×2 unitary from three angles,
// row-major [u00 u01 u10 u11].
func randomUnitary(rng *rand.Rand) [4]complex128 {
	theta := rng.Float64() * math.Pi
	phi := rng.Float64() * 2 * math.Pi
	lam := rng.Float64() * 2 * math.Pi
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return [4]complex128{
		complex(c, 0),
		-cmplx.Exp(complex(0, lam)) * complex(s, 0),
		cmplx.Exp(complex(0, phi)) * complex(s, 0),
		cmplx.Exp(complex(0, phi+lam)) * complex(c, 0),
	}
}

// dagger returns the conjugate transpose of a row-major 2×2 matrix.
func dagger(u [4]complex128) [4]complex128 {
	return [4]complex128{
		cmplx.Conj(u[0]), cmplx.Conj(u[2]),
		cmplx.Conj(u[1]), cmplx.Conj(u[3]),
	}
}

// randomDenseState returns a normalized random state on n qubits.
func randomDenseState(rng *rand.Rand, n int) *State {
	amp := make([]complex128, 1<<uint(n))
	for i := range amp {
		amp[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s, err := FromAmplitudes(amp)
	if err != nil {
		panic(err)
	}
	s.Normalize()
	return s
}

// TestPropertyGatePreservesNorm: unitary application is an isometry.
func TestPropertyGatePreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		s := randomDenseState(rng, n)
		s.ApplyGate(randomUnitary(rng), rng.Intn(n))
		if math.Abs(s.Norm()-1) > 1e-12 {
			t.Fatalf("trial %d: norm %v after unitary on %d qubits", trial, s.Norm(), n)
		}
	}
}

// TestPropertyGateInverse: applying U then U† restores the state, controls
// included.
func TestPropertyGateInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		s := randomDenseState(rng, n)
		before := s.Clone()
		u := randomUnitary(rng)
		target := rng.Intn(n)
		var controls []ControlSpec
		if ctl := rng.Intn(n); ctl != target {
			controls = append(controls, ControlSpec{Qubit: ctl, Positive: rng.Intn(2) == 0})
		}
		s.ApplyGate(u, target, controls...)
		s.ApplyGate(dagger(u), target, controls...)
		for i := range s.Amp {
			if cmplx.Abs(s.Amp[i]-before.Amp[i]) > 1e-12 {
				t.Fatalf("trial %d: amplitude %d drifted: %v vs %v", trial, i, s.Amp[i], before.Amp[i])
			}
		}
	}
}

// TestPropertyPermutationInverse: a permutation followed by its inverse is
// the identity, and permutations preserve the norm.
func TestPropertyPermutationInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		k := 1 + rng.Intn(n)
		perm := rng.Perm(1 << uint(k))
		inv := make([]int, len(perm))
		for i, p := range perm {
			inv[p] = i
		}
		s := randomDenseState(rng, n)
		before := s.Clone()
		s.ApplyPermutation(perm, k)
		if math.Abs(s.Norm()-1) > 1e-12 {
			t.Fatalf("trial %d: permutation changed the norm to %v", trial, s.Norm())
		}
		s.ApplyPermutation(inv, k)
		for i := range s.Amp {
			if cmplx.Abs(s.Amp[i]-before.Amp[i]) > 1e-12 {
				t.Fatalf("trial %d: permutation round trip drifted at %d", trial, i)
			}
		}
	}
}

// TestPropertyInnerProduct: ⟨s|o⟩ = conj(⟨o|s⟩), fidelity is symmetric and
// in [0,1] for unit vectors, and F(s,s) = 1.
func TestPropertyInnerProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		s, o := randomDenseState(rng, n), randomDenseState(rng, n)
		ip, pi := s.InnerProduct(o), o.InnerProduct(s)
		if cmplx.Abs(ip-cmplx.Conj(pi)) > 1e-12 {
			t.Fatalf("trial %d: inner product not conjugate-symmetric: %v vs %v", trial, ip, pi)
		}
		f, g := s.Fidelity(o), o.Fidelity(s)
		if math.Abs(f-g) > 1e-12 || f < -1e-12 || f > 1+1e-12 {
			t.Fatalf("trial %d: fidelity %v / %v out of contract", trial, f, g)
		}
		if self := s.Fidelity(s); math.Abs(self-1) > 1e-12 {
			t.Fatalf("trial %d: self-fidelity %v", trial, self)
		}
	}
}

// TestPropertyTruncate: the returned fidelity equals the kept probability
// mass, the truncated state is normalized, and every removed amplitude is
// exactly zero.
func TestPropertyTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		s := randomDenseState(rng, n)
		keep := map[uint64]bool{}
		var want float64
		for i := range s.Amp {
			if rng.Intn(2) == 0 {
				keep[uint64(i)] = true
				want += s.Probability(uint64(i))
			}
		}
		got := s.Truncate(keep)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: truncation fidelity %v, want kept mass %v", trial, got, want)
		}
		for i := range s.Amp {
			if !keep[uint64(i)] && s.Amp[i] != 0 {
				t.Fatalf("trial %d: removed amplitude %d survived: %v", trial, i, s.Amp[i])
			}
		}
		if len(keep) > 0 && math.Abs(s.Norm()-1) > 1e-12 {
			t.Fatalf("trial %d: truncated state has norm %v", trial, s.Norm())
		}
	}
}
