package benchtab

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/shor"
)

// SweepPoint is one configuration of a hyper-parameter sweep (the series
// behind the paper's hyper-parameter discussion; E8/E9 in DESIGN.md).
type SweepPoint struct {
	Label string // swept value, e.g. "threshold=1024" or "fround=0.9"
	// Params is the full strategy configuration behind this row (strategy
	// name plus every parameter, not just the swept one), so sweep tables
	// are self-describing.
	Params    string
	Rounds    int
	MaxDD     int
	Runtime   time.Duration
	FinalFid  float64 // tracked fidelity product
	FidBound  float64
	ExactMax  int           // exact reference (same for all points)
	ExactTime time.Duration // exact reference runtime
}

// SweepOptions configures how a sweep executes; it is the same options
// type the Table I drivers take. The zero value runs serially, matching
// the historical behavior of SweepThreshold and SweepRoundFidelity.
type SweepOptions = RunOptions

// SweepThreshold runs the memory-driven strategy on one circuit across a
// range of thresholds at fixed f_round (E8), serially.
func SweepThreshold(c *circuit.Circuit, thresholds []int, fround, growth float64) ([]SweepPoint, error) {
	return SweepThresholdBatch(context.Background(), c, thresholds, fround, growth, SweepOptions{})
}

// SweepThresholdBatch is SweepThreshold on the batch engine: the exact
// reference and every threshold configuration are independent jobs fanned
// out across opts.Parallel workers, with context cancellation.
func SweepThresholdBatch(ctx context.Context, c *circuit.Circuit, thresholds []int, fround, growth float64, opts SweepOptions) ([]SweepPoint, error) {
	jobs := make([]batch.Job, 0, len(thresholds)+1)
	jobs = append(jobs, batch.Job{Name: "exact", Circuit: c})
	params := make([]string, 0, len(thresholds))
	for _, th := range thresholds {
		jobs = append(jobs, batch.Job{
			Name:    fmt.Sprintf("threshold=%d", th),
			Circuit: c,
			NewStrategy: func() core.Strategy {
				return &core.MemoryDriven{Threshold: th, RoundFidelity: fround, Growth: growth}
			},
		})
		params = append(params, fmt.Sprintf("memory threshold=%d fround=%g growth=%g", th, fround, growth))
	}
	return runSweep(ctx, jobs, params, opts)
}

// SweepRoundFidelity runs the fidelity-driven strategy on a Shor instance
// across a range of per-round fidelities at fixed f_final (E9: few
// aggressive rounds vs many gentle ones), serially.
func SweepRoundFidelity(inst *shor.Instance, frounds []float64, ffinal float64) ([]SweepPoint, error) {
	return SweepRoundFidelityBatch(context.Background(), inst, frounds, ffinal, SweepOptions{})
}

// SweepRoundFidelityBatch is SweepRoundFidelity on the batch engine.
func SweepRoundFidelityBatch(ctx context.Context, inst *shor.Instance, frounds []float64, ffinal float64, opts SweepOptions) ([]SweepPoint, error) {
	c := inst.BuildCircuit()
	locations := inst.IQFTBoundaries(c) // shared read-only across jobs
	jobs := make([]batch.Job, 0, len(frounds)+1)
	jobs = append(jobs, batch.Job{Name: "exact", Circuit: c})
	params := make([]string, 0, len(frounds))
	for _, fr := range frounds {
		jobs = append(jobs, batch.Job{
			Name:    fmt.Sprintf("fround=%g", fr),
			Circuit: c,
			NewStrategy: func() core.Strategy {
				strat := core.NewFidelityDriven(ffinal, fr)
				strat.Locations = locations
				return strat
			},
		})
		params = append(params, fmt.Sprintf("fidelity fround=%g ffinal=%g locations=%d", fr, ffinal, len(locations)))
	}
	return runSweep(ctx, jobs, params, opts)
}

// runSweep executes jobs[0] as the exact reference plus one job per swept
// configuration and assembles the points in job order; params[i] is the
// self-describing strategy configuration of jobs[i+1].
func runSweep(ctx context.Context, jobs []batch.Job, params []string, opts SweepOptions) ([]SweepPoint, error) {
	bres, err := batch.Run(ctx, jobs, opts.batchOptions())
	if err != nil {
		return nil, err
	}
	exact := bres.Jobs[0]
	if exact.Err != nil {
		return nil, exact.Err
	}
	out := make([]SweepPoint, 0, len(bres.Jobs)-1)
	for i, jr := range bres.Jobs[1:] {
		if jr.Err != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", jr.Name, jr.Err)
		}
		res := jr.Result
		out = append(out, SweepPoint{
			Label:     jr.Name,
			Params:    params[i],
			Rounds:    len(res.Rounds),
			MaxDD:     res.MaxDDSize,
			Runtime:   res.Runtime,
			FinalFid:  res.EstimatedFidelity,
			FidBound:  res.FidelityBound,
			ExactMax:  exact.Result.MaxDDSize,
			ExactTime: exact.Result.Runtime,
		})
	}
	return out, nil
}

// FormatSweepMarkdown renders sweep points as a markdown table.
func FormatSweepMarkdown(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("| Config | Params | Rounds | Max DD | Runtime | f_final | Bound | Exact Max DD | Exact Time |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %s | %.3f | %.3f | %d | %s |\n",
			p.Label, p.Params, p.Rounds, p.MaxDD, fmtDur(p.Runtime), p.FinalFid, p.FidBound,
			p.ExactMax, fmtDur(p.ExactTime))
	}
	return b.String()
}

// FormatSweepCSV renders sweep points as CSV.
func FormatSweepCSV(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("config,params,rounds,max_dd,seconds,f_final,fid_bound,exact_max_dd,exact_seconds\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%.6f,%.6f,%.6f,%d,%.6f\n",
			p.Label, p.Params, p.Rounds, p.MaxDD, p.Runtime.Seconds(), p.FinalFid, p.FidBound,
			p.ExactMax, p.ExactTime.Seconds())
	}
	return b.String()
}
