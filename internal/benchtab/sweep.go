package benchtab

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/shor"
	"repro/internal/sim"
)

// SweepPoint is one configuration of a hyper-parameter sweep (the series
// behind the paper's hyper-parameter discussion; E8/E9 in DESIGN.md).
type SweepPoint struct {
	Label     string // swept value, e.g. "threshold=1024" or "fround=0.9"
	Rounds    int
	MaxDD     int
	Runtime   time.Duration
	FinalFid  float64 // tracked fidelity product
	FidBound  float64
	ExactMax  int           // exact reference (same for all points)
	ExactTime time.Duration // exact reference runtime
}

// SweepThreshold runs the memory-driven strategy on one circuit across a
// range of thresholds at fixed f_round (E8).
func SweepThreshold(c *circuit.Circuit, thresholds []int, fround, growth float64) ([]SweepPoint, error) {
	ref := sim.New()
	exact, err := ref.Run(c, sim.Options{})
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, th := range thresholds {
		s := sim.New()
		res, err := s.Run(c, sim.Options{Strategy: &core.MemoryDriven{
			Threshold: th, RoundFidelity: fround, Growth: growth,
		}})
		if err != nil {
			return nil, fmt.Errorf("benchtab: threshold %d: %w", th, err)
		}
		out = append(out, SweepPoint{
			Label:     fmt.Sprintf("threshold=%d", th),
			Rounds:    len(res.Rounds),
			MaxDD:     res.MaxDDSize,
			Runtime:   res.Runtime,
			FinalFid:  res.EstimatedFidelity,
			FidBound:  res.FidelityBound,
			ExactMax:  exact.MaxDDSize,
			ExactTime: exact.Runtime,
		})
	}
	return out, nil
}

// SweepRoundFidelity runs the fidelity-driven strategy on a Shor instance
// across a range of per-round fidelities at fixed f_final (E9: few
// aggressive rounds vs many gentle ones).
func SweepRoundFidelity(inst *shor.Instance, frounds []float64, ffinal float64) ([]SweepPoint, error) {
	c := inst.BuildCircuit()
	ref := sim.New()
	exact, err := ref.Run(c, sim.Options{})
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, fr := range frounds {
		strat := core.NewFidelityDriven(ffinal, fr)
		strat.Locations = inst.IQFTBoundaries(c)
		s := sim.New()
		res, err := s.Run(c, sim.Options{Strategy: strat})
		if err != nil {
			return nil, fmt.Errorf("benchtab: fround %v: %w", fr, err)
		}
		out = append(out, SweepPoint{
			Label:     fmt.Sprintf("fround=%g", fr),
			Rounds:    len(res.Rounds),
			MaxDD:     res.MaxDDSize,
			Runtime:   res.Runtime,
			FinalFid:  res.EstimatedFidelity,
			FidBound:  res.FidelityBound,
			ExactMax:  exact.MaxDDSize,
			ExactTime: exact.Runtime,
		})
	}
	return out, nil
}

// FormatSweepMarkdown renders sweep points as a markdown table.
func FormatSweepMarkdown(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("| Config | Rounds | Max DD | Runtime | f_final | Bound | Exact Max DD | Exact Time |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %s | %d | %d | %s | %.3f | %.3f | %d | %s |\n",
			p.Label, p.Rounds, p.MaxDD, fmtDur(p.Runtime), p.FinalFid, p.FidBound,
			p.ExactMax, fmtDur(p.ExactTime))
	}
	return b.String()
}

// FormatSweepCSV renders sweep points as CSV.
func FormatSweepCSV(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("config,rounds,max_dd,seconds,f_final,fid_bound,exact_max_dd,exact_seconds\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.6f,%.6f,%d,%.6f\n",
			p.Label, p.Rounds, p.MaxDD, p.Runtime.Seconds(), p.FinalFid, p.FidBound,
			p.ExactMax, p.ExactTime.Seconds())
	}
	return b.String()
}
