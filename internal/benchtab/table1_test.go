package benchtab

import (
	"strings"
	"testing"
	"time"

	"repro/internal/supremacy"
)

// tinySuite keeps unit-test runtime low while exercising both halves.
func tinySuite() Suite {
	return Suite{
		Name: "tiny",
		Supremacy: []SupremacyCase{
			{
				Config:    supremacy.Config{Rows: 2, Cols: 4, Depth: 12, Seed: 0},
				Threshold: 1 << 5, Growth: 1.1,
				Frounds: []float64{0.99, 0.95},
			},
		},
		Shor: []ShorCase{
			{N: 15, A: 7, FinalFidelity: 0.5, RoundFidelity: 0.9},
			{N: 21, A: 2, FinalFidelity: 0.5, RoundFidelity: 0.9},
		},
		Timeout:    time.Minute,
		SampleTrue: true,
	}
}

func TestMemoryDrivenHalf(t *testing.T) {
	rows, err := tinySuite().RunMemoryDriven()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (one per f_round)", len(rows))
	}
	for _, r := range rows {
		if r.ApproxFailed != "" {
			t.Fatalf("row %s failed: %s", r.Name, r.ApproxFailed)
		}
		if r.Approach != "memory-driven" || r.Qubits != 8 {
			t.Errorf("row metadata wrong: %+v", r)
		}
		if r.ExactMaxDD == 0 || r.ApproxMaxDD == 0 {
			t.Errorf("missing DD sizes: %+v", r)
		}
		if r.Rounds > 0 {
			if r.FinalFid >= 1 || r.FinalFid < r.FidBound-1e-9 {
				t.Errorf("fidelity accounting wrong: final %v bound %v", r.FinalFid, r.FidBound)
			}
			if r.TrueFidelity >= 0 && r.TrueFidelity < r.FidBound-0.05 {
				t.Errorf("true fidelity %v far below bound %v", r.TrueFidelity, r.FidBound)
			}
		}
	}
	// Lower f_round must not yield higher final fidelity (more mass removed
	// per round, same trigger schedule).
	if rows[0].Rounds > 0 && rows[1].Rounds > 0 && rows[1].FinalFid > rows[0].FinalFid+0.05 {
		t.Errorf("f_round=0.95 kept more fidelity (%v) than f_round=0.99 (%v)",
			rows[1].FinalFid, rows[0].FinalFid)
	}
}

func TestFidelityDrivenHalf(t *testing.T) {
	rows, err := tinySuite().RunFidelityDriven()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ApproxFailed != "" {
			t.Fatalf("row %s failed: %s", r.Name, r.ApproxFailed)
		}
		if r.FidBound < 0.5-1e-9 {
			t.Errorf("%s: designed bound %v below f_final 0.5", r.Name, r.FidBound)
		}
		if r.TrueFidelity >= 0 && r.TrueFidelity < 0.5-0.02 {
			t.Errorf("%s: true fidelity %v below target 0.5", r.Name, r.TrueFidelity)
		}
		if r.Rounds > 6 {
			t.Errorf("%s: %d rounds exceed ⌊log_0.9(0.5)⌋ = 6", r.Name, r.Rounds)
		}
	}
	// shor_21_2 is large enough that approximation must shrink the DD.
	last := rows[len(rows)-1]
	if last.Rounds > 0 && last.ApproxMaxDD >= last.ExactMaxDD {
		t.Errorf("%s: approximation did not shrink max DD (%d vs %d)",
			last.Name, last.ApproxMaxDD, last.ExactMaxDD)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{PresetSmall, PresetMedium, PresetPaper} {
		s, err := NewSuite(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if len(s.Supremacy) == 0 || len(s.Shor) == 0 {
			t.Errorf("preset %s missing cases", name)
		}
	}
	if _, err := NewSuite("bogus"); err == nil {
		t.Error("unknown preset accepted")
	}
	// The paper preset must contain the original instances.
	p, _ := NewSuite(PresetPaper)
	if p.Supremacy[0].Config.Name() != "qsup_4x5_15_0" {
		t.Errorf("paper preset supremacy instance %s", p.Supremacy[0].Config.Name())
	}
	found1157 := false
	for _, c := range p.Shor {
		if c.N == 1157 && c.A == 8 {
			found1157 = true
		}
	}
	if !found1157 {
		t.Error("paper preset missing shor_1157_8")
	}
	if p.Timeout != 3*time.Hour {
		t.Errorf("paper timeout %v, want 3h", p.Timeout)
	}
}

func TestFormatters(t *testing.T) {
	rows := []Row{
		{
			Approach: "memory-driven", Name: "qsup_2x2_4_0", Qubits: 4,
			ExactMaxDD: 15, ExactTime: 1500 * time.Microsecond,
			ApproxMaxDD: 10, Rounds: 2, RoundFid: 0.99,
			ApproxTime: 800 * time.Microsecond, FinalFid: 0.98, FidBound: 0.9801,
			TrueFidelity: 0.981,
		},
		{
			Approach: "fidelity-driven", Name: "shor_629_8", Qubits: 30,
			ExactTimeout: true, ApproxMaxDD: 57710, Rounds: 5, RoundFid: 0.9,
			ApproxTime: 2 * time.Second, FinalFid: 0.596, FidBound: 0.59,
			TrueFidelity: -1,
		},
		{
			Approach: "memory-driven", Name: "broken", Qubits: 2,
			ApproxFailed: "deadline exceeded",
		},
	}
	md := FormatMarkdown(rows)
	for _, want := range []string{"qsup_2x2_4_0", "shor_629_8", "Timeout", "failed", "0.98", "1.88x"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	csv := FormatCSV(rows)
	if lines := strings.Count(csv, "\n"); lines != 4 {
		t.Errorf("CSV has %d lines, want 4", lines)
	}
	if !strings.Contains(csv, "shor_629_8") || !strings.Contains(csv, "true") {
		t.Errorf("CSV content wrong:\n%s", csv)
	}
}

func TestDeadlineProducesTimeoutRow(t *testing.T) {
	s := tinySuite()
	s.Timeout = time.Nanosecond // force immediate deadline
	s.SampleTrue = false
	rows, err := s.RunFidelityDriven()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.ExactTimeout {
			t.Errorf("%s: expected timeout marker, got %+v", r.Name, r)
		}
	}
}
