package benchtab

import (
	"fmt"
	"strings"
	"time"
)

// FormatMarkdown renders rows in the layout of Table I as a markdown table.
func FormatMarkdown(rows []Row) string {
	var b strings.Builder
	b.WriteString("| Approach | Benchmark | Qubits | Exact Max DD | Exact Time | Approx Max DD | Rounds | f_round | Approx Time | f_final | True F | Speed-up |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		exactDD, exactT := fmt.Sprintf("%d", r.ExactMaxDD), fmtDur(r.ExactTime)
		if r.ExactTimeout {
			exactDD, exactT = "–", "Timeout"
		}
		if r.ApproxFailed != "" {
			fmt.Fprintf(&b, "| %s | %s | %d | %s | %s | failed: %s | | | | | | |\n",
				r.Approach, r.Name, r.Qubits, exactDD, exactT, r.ApproxFailed)
			continue
		}
		trueF := "–"
		if r.TrueFidelity >= 0 {
			trueF = fmt.Sprintf("%.3f", r.TrueFidelity)
		}
		speedup := "–"
		if s := r.SpeedUp(); s > 0 {
			speedup = fmt.Sprintf("%.2fx", s)
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %s | %s | %d | %d | %g | %s | %.3f | %s | %s |\n",
			r.Approach, r.Name, r.Qubits, exactDD, exactT,
			r.ApproxMaxDD, r.Rounds, r.RoundFid, fmtDur(r.ApproxTime), r.FinalFid,
			trueF, speedup)
	}
	return b.String()
}

// FormatCSV renders rows as CSV with a header line.
func FormatCSV(rows []Row) string {
	var b strings.Builder
	b.WriteString("approach,benchmark,qubits,exact_max_dd,exact_seconds,exact_timeout,approx_max_dd,rounds,f_round,approx_seconds,f_final,fid_bound,true_fidelity,speedup,error\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%.6f,%t,%d,%d,%g,%.6f,%.6f,%.6f,%.6f,%.3f,%q\n",
			r.Approach, r.Name, r.Qubits,
			r.ExactMaxDD, r.ExactTime.Seconds(), r.ExactTimeout,
			r.ApproxMaxDD, r.Rounds, r.RoundFid, r.ApproxTime.Seconds(),
			r.FinalFid, r.FidBound, r.TrueFidelity, r.SpeedUp(), r.ApproxFailed)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
