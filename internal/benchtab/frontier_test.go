package benchtab

import (
	"context"
	"strings"
	"testing"

	"repro/internal/circuit"
)

// TestSweepFrontierReplaceDominates runs the standard frontier workloads and
// checks the differential claim the bench-check gate pins: at every budget,
// the replace pass keeps fidelity at least as high as the delete pass while
// ending no larger.
func TestSweepFrontierReplaceDominates(t *testing.T) {
	circs, err := FrontierCircuits()
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepFrontier(context.Background(), circs, []int{16, 24, 32, 48}, nil, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("frontier sweep produced no points")
	}
	// Points come in delete/replace pairs at the same (circuit, budget).
	for i := 0; i+1 < len(points); i += 2 {
		del, rep := points[i], points[i+1]
		if del.Strategy != "delete" || rep.Strategy != "replace" ||
			del.Circuit != rep.Circuit || del.Budget != rep.Budget {
			t.Fatalf("rows %d,%d are not a delete/replace pair: %+v / %+v", i, i+1, del, rep)
		}
		if rep.Fidelity < del.Fidelity-1e-9 {
			t.Errorf("%s budget %d: replace fidelity %v below delete %v",
				rep.Circuit, rep.Budget, rep.Fidelity, del.Fidelity)
		}
		// Delete may overshoot far below the budget (one removal can free a
		// whole subtree); replace staying anywhere within the budget is a
		// win, not a loss. Only a replace result over budget AND over the
		// delete size is dominated.
		if rep.Size > rep.Budget && rep.Size > del.Size {
			t.Errorf("%s budget %d: replace size %d above budget and delete size %d",
				rep.Circuit, rep.Budget, rep.Size, del.Size)
		}
		if rep.Params == "" || !strings.Contains(rep.Params, "kinds=") {
			t.Errorf("replace row is not self-describing: %+v", rep)
		}
	}

	md := FormatFrontierMarkdown(points)
	if !strings.Contains(md, "| Params |") || !strings.Contains(md, "kinds=collapse,promote") {
		t.Fatalf("markdown table missing the params column:\n%s", md)
	}
	csv := FormatFrontierCSV(points)
	if !strings.Contains(csv, "circuit,strategy,params,") {
		t.Fatalf("csv missing the params column:\n%s", csv)
	}
}

// BenchmarkFrontierPairs emits the pairs-workload frontier as bench metrics
// for the CI perf gate: frontier_points counts the swept budgets,
// frontier_dominated counts those where replace kept fidelity >= delete
// without exceeding its size. bench-check requires dominated == points, so
// the differential claim of the replace strategy is pinned PR over PR.
func BenchmarkFrontierPairs(b *testing.B) {
	circs := []*circuit.Circuit{PairsCircuit(12)}
	budgets := []int{16, 24, 32, 48}
	var points []FrontierPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = SweepFrontier(context.Background(), circs, budgets, nil, SweepOptions{Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	dominated, total := 0, 0
	for i := 0; i+1 < len(points); i += 2 {
		del, rep := points[i], points[i+1]
		total++
		if rep.Fidelity >= del.Fidelity-1e-9 && (rep.Size <= rep.Budget || rep.Size <= del.Size) {
			dominated++
		}
	}
	b.ReportMetric(float64(total), "frontier_points")
	b.ReportMetric(float64(dominated), "frontier_dominated")
}
