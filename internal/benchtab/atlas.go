package benchtab

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/supremacy"
)

// AtlasFidelityFloor is the minimum tracked fidelity a configuration must
// keep to be eligible as a class winner.
const AtlasFidelityFloor = 0.90

// AtlasWorkload is one workload class of the approximability atlas: a
// class key (matching gen.Classify) plus its seeded representative circuit
// at smoke scale.
type AtlasWorkload struct {
	Class   string
	Circuit *circuit.Circuit
}

// AtlasWorkloads returns the seeded representative circuit per workload
// class. Every parameter is pinned so the sweep — and therefore the
// committed docs/ATLAS.md — is a pure function of the code.
func AtlasWorkloads() ([]AtlasWorkload, error) {
	sup, err := supremacy.Config{Rows: 3, Cols: 3, Depth: 10, Seed: 0}.Generate()
	if err != nil {
		return nil, err
	}
	return []AtlasWorkload{
		{gen.ClassQFT, gen.QFT(10)},
		{gen.ClassGrover, gen.Grover(8, 0b1011_0110, 2)},
		{gen.ClassSupremacy, sup},
		{gen.ClassPairs, PairsCircuit(12)},
		{gen.ClassQAOA, gen.QAOAMaxCut(10, 2, 1)},
		{gen.ClassVQE, gen.VQEAnsatz(10, 3, gen.VQELinear, 1)},
		{gen.ClassCliffordT, gen.CliffordT(10, 220, 44, 1)},
	}, nil
}

// AtlasCell is one strategy × ordering × budget configuration of one
// workload class. RegistryStrategy/RegistryParams are exactly what
// core.NewStrategyByName ran, so a serve submission with those fields
// reproduces the cell bit for bit.
type AtlasCell struct {
	Class   string `json:"class"`
	Circuit string `json:"circuit"`

	Strategy string `json:"strategy"` // base strategy: exact/memory/fidelity/replace
	Order    string `json:"order"`    // identity/reversed/scored

	RegistryStrategy string `json:"registry_strategy"`
	RegistryParams   string `json:"registry_params,omitempty"`

	MaxDD    int     `json:"max_dd"`
	FinalDD  int     `json:"final_dd"`
	Rounds   int     `json:"rounds"`
	Fidelity float64 `json:"fidelity"`
	ExactMax int     `json:"exact_max_dd"`

	// Runtime is informational only: it is emitted to BENCH_atlas.json but
	// excluded from the gated docs/ATLAS.md so the committed table stays
	// deterministic.
	Runtime time.Duration `json:"runtime_ns"`
}

// label renders the cell's configuration compactly for tables.
func (c AtlasCell) label() string {
	if c.RegistryParams == "" {
		return c.RegistryStrategy
	}
	return c.RegistryStrategy + " " + c.RegistryParams
}

// AtlasRow is one class of the atlas: the exact reference, the winning
// configuration, and how much of the grid it Pareto-dominates.
type AtlasRow struct {
	Class    string `json:"class"`
	Circuit  string `json:"circuit"`
	Qubits   int    `json:"qubits"`
	Gates    int    `json:"gates"`
	ExactMax int    `json:"exact_max_dd"`

	Winner AtlasCell `json:"winner"`
	// Cells is the grid size behind the winner; Dominated counts the cells
	// the winner Pareto-dominates on (fidelity, peak nodes).
	Cells     int `json:"cells"`
	Dominated int `json:"dominated"`
}

// Atlas is a full approximability-atlas sweep result.
type Atlas struct {
	Rows  []AtlasRow  `json:"rows"`
	Cells []AtlasCell `json:"cells"`
}

// atlasConfig is one grid configuration before it runs.
type atlasConfig struct {
	strategy, order  string // base strategy and ordering
	registry, params string // what core.NewStrategyByName receives
}

// wrapOrder lifts a base (strategy, params) pair into the named ordering:
// identity runs the strategy directly, anything else goes through the
// "reorder" wrapper with the base as inner strategy.
func wrapOrder(strategy, params, ord string) atlasConfig {
	cfg := atlasConfig{strategy: strategy, order: ord, registry: strategy, params: params}
	if ord == order.Identity {
		return cfg
	}
	cfg.registry = "reorder"
	switch {
	case strategy == "exact":
		cfg.params = fmt.Sprintf(`{"order":%q}`, ord)
	default:
		cfg.params = fmt.Sprintf(`{"order":%q,"inner":%q,"inner_params":%s}`, ord, strategy, params)
	}
	return cfg
}

// atlasGrid builds the strategy × ordering × budget grid for one class
// whose exact peak is exactMax. Budgets derive from the peak so every class
// is probed at comparable compression pressure.
func atlasGrid(exactMax int) []atlasConfig {
	orders := []string{order.Identity, order.Reversed, order.Scored}
	quarter := exactMax / 4
	if quarter < 16 {
		quarter = 16
	}
	half := exactMax / 2
	if half < 32 {
		half = 32
	}
	var grid []atlasConfig
	for _, ord := range orders {
		grid = append(grid, wrapOrder("exact", "", ord))
	}
	for _, th := range []int{quarter, half} {
		p := fmt.Sprintf(`{"threshold":%d,"round_fidelity":0.98,"growth":2}`, th)
		for _, ord := range orders {
			grid = append(grid, wrapOrder("memory", p, ord))
		}
	}
	for _, ff := range []string{"0.90", "0.98"} {
		p := fmt.Sprintf(`{"final_fidelity":%s,"round_fidelity":0.995}`, ff)
		for _, ord := range orders {
			grid = append(grid, wrapOrder("fidelity", p, ord))
		}
	}
	for _, nb := range []int{quarter, half} {
		p := fmt.Sprintf(`{"node_budget":%d,"fidelity_floor":0.85}`, nb)
		for _, ord := range orders {
			grid = append(grid, wrapOrder("replace", p, ord))
		}
	}
	return grid
}

// SweepAtlas runs the full strategy × ordering × budget grid over every
// workload class on the batch engine and picks the per-class winner: the
// eligible cell (fidelity ≥ AtlasFidelityFloor) with the smallest peak DD,
// ties broken by higher fidelity, fewer rounds, then grid order. When no
// cell clears the floor the highest-fidelity cell wins. Results are
// bit-identical for every opts.Parallel value.
func SweepAtlas(ctx context.Context, opts RunOptions) (*Atlas, error) {
	workloads, err := AtlasWorkloads()
	if err != nil {
		return nil, err
	}
	// Phase 1: exact references, to size the per-class budget grids.
	exactJobs := make([]batch.Job, len(workloads))
	for i, w := range workloads {
		exactJobs[i] = batch.Job{Name: "exact/" + w.Class, Circuit: w.Circuit}
	}
	exactRes, err := batch.Run(ctx, exactJobs, opts.batchOptions())
	if err != nil {
		return nil, err
	}
	exactMax := make([]int, len(workloads))
	for i, jr := range exactRes.Jobs {
		if jr.Err != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", jr.Name, jr.Err)
		}
		exactMax[i] = jr.Result.MaxDDSize
	}

	// Phase 2: the full grid, one batch job per cell.
	var jobs []batch.Job
	var configs []atlasConfig
	var classIdx []int
	for i, w := range workloads {
		w := w
		for _, cfg := range atlasGrid(exactMax[i]) {
			cfg := cfg
			jobs = append(jobs, batch.Job{
				Name:    fmt.Sprintf("%s/%s/%s", w.Class, cfg.strategy, cfg.order),
				Circuit: w.Circuit,
				NewStrategy: func() core.Strategy {
					s, err := core.NewStrategyByName(cfg.registry, json.RawMessage(cfg.params))
					if err != nil {
						panic(fmt.Sprintf("benchtab: atlas grid config invalid: %v", err))
					}
					return s
				},
			})
			configs = append(configs, cfg)
			classIdx = append(classIdx, i)
		}
	}
	bres, err := batch.Run(ctx, jobs, opts.batchOptions())
	if err != nil {
		return nil, err
	}

	atlas := &Atlas{}
	cellsByClass := make([][]AtlasCell, len(workloads))
	for j, jr := range bres.Jobs {
		if jr.Err != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", jr.Name, jr.Err)
		}
		i := classIdx[j]
		res := jr.Result
		cell := AtlasCell{
			Class:            workloads[i].Class,
			Circuit:          workloads[i].Circuit.Name,
			Strategy:         configs[j].strategy,
			Order:            configs[j].order,
			RegistryStrategy: configs[j].registry,
			RegistryParams:   configs[j].params,
			MaxDD:            res.MaxDDSize,
			FinalDD:          res.FinalDDSize,
			Rounds:           len(res.Rounds),
			Fidelity:         res.EstimatedFidelity,
			ExactMax:         exactMax[i],
			Runtime:          res.Runtime,
		}
		cellsByClass[i] = append(cellsByClass[i], cell)
		atlas.Cells = append(atlas.Cells, cell)
	}
	for i, w := range workloads {
		cells := cellsByClass[i]
		win := pickAtlasWinner(cells)
		dominated := 0
		for _, c := range cells {
			if c == win {
				continue
			}
			if win.MaxDD <= c.MaxDD && win.Fidelity >= c.Fidelity &&
				(win.MaxDD < c.MaxDD || win.Fidelity > c.Fidelity) {
				dominated++
			}
		}
		atlas.Rows = append(atlas.Rows, AtlasRow{
			Class:     w.Class,
			Circuit:   w.Circuit.Name,
			Qubits:    w.Circuit.NumQubits,
			Gates:     w.Circuit.Len(),
			ExactMax:  exactMax[i],
			Winner:    win,
			Cells:     len(cells),
			Dominated: dominated,
		})
	}
	return atlas, nil
}

func pickAtlasWinner(cells []AtlasCell) AtlasCell {
	better := func(a, b AtlasCell) bool { // does a beat b?
		ae, be := a.Fidelity >= AtlasFidelityFloor, b.Fidelity >= AtlasFidelityFloor
		if ae != be {
			return ae
		}
		if !ae { // neither eligible: chase fidelity first
			if a.Fidelity != b.Fidelity {
				return a.Fidelity > b.Fidelity
			}
			return a.MaxDD < b.MaxDD
		}
		if a.MaxDD != b.MaxDD {
			return a.MaxDD < b.MaxDD
		}
		if a.Fidelity != b.Fidelity {
			return a.Fidelity > b.Fidelity
		}
		return a.Rounds < b.Rounds
	}
	win := cells[0]
	for _, c := range cells[1:] {
		if better(c, win) {
			win = c
		}
	}
	return win
}

// FormatAtlasMarkdown renders the per-class winner table plus the full
// grid. Only deterministic columns appear (no runtimes): the output is
// byte-stable across runs and machines, which is what lets atlas-check
// gate the committed docs/ATLAS.md against drift.
func FormatAtlasMarkdown(a *Atlas) string {
	var b strings.Builder
	b.WriteString("| Class | Circuit | Qubits | Gates | Exact peak | Winner | Order | Peak DD | Fidelity | Rounds | Dominates |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | `%s` | %s | %d | %.4f | %d | %d/%d |\n",
			r.Class, r.Circuit, r.Qubits, r.Gates, r.ExactMax,
			r.Winner.label(), r.Winner.Order, r.Winner.MaxDD, r.Winner.Fidelity,
			r.Winner.Rounds, r.Dominated, r.Cells-1)
	}
	return b.String()
}

// FormatAtlasGridMarkdown renders every cell of the sweep (again without
// runtimes), grouped by class in sweep order.
func FormatAtlasGridMarkdown(a *Atlas) string {
	var b strings.Builder
	b.WriteString("| Class | Strategy | Order | Config | Peak DD | Final DD | Fidelity | Rounds | Exact peak |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range a.Cells {
		params := c.RegistryParams
		if params == "" {
			params = "-"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | `%s` | %d | %d | %.4f | %d | %d |\n",
			c.Class, c.Strategy, c.Order, params, c.MaxDD, c.FinalDD, c.Fidelity, c.Rounds, c.ExactMax)
	}
	return b.String()
}
