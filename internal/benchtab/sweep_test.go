package benchtab

import (
	"strings"
	"testing"

	"repro/internal/shor"
	"repro/internal/supremacy"
)

func TestSweepThreshold(t *testing.T) {
	cfg := supremacy.Config{Rows: 2, Cols: 4, Depth: 12, Seed: 0}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepThreshold(c, []int{32, 64, 128}, 0.975, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Higher thresholds trigger fewer (or equal) rounds and keep more
	// fidelity.
	for i := 1; i < len(points); i++ {
		if points[i].Rounds > points[i-1].Rounds {
			t.Errorf("rounds increased with threshold: %v then %v",
				points[i-1], points[i])
		}
		if points[i].FinalFid < points[i-1].FinalFid-1e-9 {
			t.Errorf("fidelity decreased with threshold: %v then %v",
				points[i-1].FinalFid, points[i].FinalFid)
		}
	}
	for _, p := range points {
		if p.ExactMax == 0 || p.MaxDD == 0 {
			t.Errorf("missing sizes in %+v", p)
		}
	}
}

func TestSweepRoundFidelity(t *testing.T) {
	inst, err := shor.NewInstance(21, 2)
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepRoundFidelity(inst, []float64{0.71, 0.9, 0.95}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// MaxRounds grows with f_round: ⌊log_0.71(0.5)⌋=2, log_0.9=6, log_0.95=13.
	if points[0].Rounds > 2 || points[1].Rounds > 6 || points[2].Rounds > 13 {
		t.Errorf("round counts exceed budgets: %+v", points)
	}
	for _, p := range points {
		if p.FidBound < 0.5-1e-9 {
			t.Errorf("%s: bound %v below f_final", p.Label, p.FidBound)
		}
	}
}

func TestSweepFormatters(t *testing.T) {
	points := []SweepPoint{{
		Label: "threshold=64", Params: "memory threshold=64 fround=0.975 growth=1.05",
		Rounds: 3, MaxDD: 100, FinalFid: 0.9,
		FidBound: 0.88, ExactMax: 200,
	}}
	md := FormatSweepMarkdown(points)
	if !strings.Contains(md, "| Params |") || !strings.Contains(md, "threshold=64") || !strings.Contains(md, "| 3 |") {
		t.Errorf("markdown:\n%s", md)
	}
	csv := FormatSweepCSV(points)
	if !strings.Contains(csv, "threshold=64,memory threshold=64 fround=0.975 growth=1.05,3,100") {
		t.Errorf("csv:\n%s", csv)
	}
}
