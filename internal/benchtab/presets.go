package benchtab

import (
	"fmt"
	"time"

	"repro/internal/supremacy"
)

// Preset names accepted by NewSuite.
const (
	PresetSmall  = "small"  // seconds; default for `go test -bench`
	PresetMedium = "medium" // minutes
	PresetPaper  = "paper"  // the original Table I instances; hours
)

// NewSuite returns the Table I suite for a preset.
//
// The paper preset reproduces the original workloads exactly: supremacy
// 4×5 grids at depth 15 (seeds 0–2) with f_round ∈ {0.99, 0.975, 0.95} and
// threshold doubling, and Shor instances up to shor_1157_8 (33 qubits) at
// f_final = 0.5, f_round = 0.9, with the paper's 3 h timeout.
//
// The small/medium presets shrink the grids and semiprimes so exact
// references stay laptop-feasible while keeping every structural parameter:
// same generators, same f_round sweep, same f_final = 0.5 target, thresholds
// placed at the same fraction (~1/4) of the DD ceiling 2^n, and a gentler
// threshold growth so the round counts land in the paper's regime at the
// smaller ceilings (see DESIGN.md substitutions).
func NewSuite(preset string) (Suite, error) {
	switch preset {
	case PresetSmall:
		return Suite{
			Name: preset,
			Supremacy: []SupremacyCase{
				{
					Config:    supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 0},
					Threshold: 1 << 10, Growth: 1.05,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
				{
					Config:    supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 1},
					Threshold: 1 << 10, Growth: 1.05,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
				{
					Config:    supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 2},
					Threshold: 1 << 10, Growth: 1.05,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
			},
			Shor: []ShorCase{
				{N: 15, A: 7, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 21, A: 2, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 33, A: 5, FinalFidelity: 0.5, RoundFidelity: 0.9},
			},
			Timeout:    5 * time.Minute,
			SampleTrue: true,
		}, nil
	case PresetMedium:
		return Suite{
			Name: preset,
			Supremacy: []SupremacyCase{
				{
					Config:    supremacy.Config{Rows: 4, Cols: 4, Depth: 20, Seed: 0},
					Threshold: 1 << 14, Growth: 1.05,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
				{
					Config:    supremacy.Config{Rows: 4, Cols: 4, Depth: 20, Seed: 1},
					Threshold: 1 << 14, Growth: 1.05,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
			},
			Shor: []ShorCase{
				{N: 33, A: 5, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 55, A: 2, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 69, A: 2, FinalFidelity: 0.5, RoundFidelity: 0.9},
			},
			Timeout:    30 * time.Minute,
			SampleTrue: true,
		}, nil
	case PresetPaper:
		return Suite{
			Name: preset,
			Supremacy: []SupremacyCase{
				{
					Config:    supremacy.Config{Rows: 4, Cols: 5, Depth: 15, Seed: 0},
					Threshold: 1 << 18, Growth: 2,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
				{
					Config:    supremacy.Config{Rows: 4, Cols: 5, Depth: 15, Seed: 1},
					Threshold: 1 << 18, Growth: 2,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
				{
					Config:    supremacy.Config{Rows: 4, Cols: 5, Depth: 15, Seed: 2},
					Threshold: 1 << 18, Growth: 2,
					Frounds: []float64{0.99, 0.975, 0.95},
				},
			},
			Shor: []ShorCase{
				{N: 33, A: 5, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 55, A: 2, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 69, A: 2, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 221, A: 4, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 323, A: 8, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 629, A: 8, FinalFidelity: 0.5, RoundFidelity: 0.9},
				{N: 1157, A: 8, FinalFidelity: 0.5, RoundFidelity: 0.9},
			},
			Timeout:    3 * time.Hour,
			SampleTrue: false, // comparing 2^20-node states doubles the cost
		}, nil
	default:
		return Suite{}, fmt.Errorf("benchtab: unknown preset %q (want %s|%s|%s)",
			preset, PresetSmall, PresetMedium, PresetPaper)
	}
}
