// Package benchtab regenerates Table I of the paper: the memory-driven
// validation on quantum-supremacy circuits and the fidelity-driven
// validation on Shor's algorithm, each against the exact (non-approximating)
// simulation as reference.
//
// Presets scale the instances: the `paper` preset reproduces the original
// workloads verbatim (hours of runtime on a laptop, as in the paper's
// server experiments); `small` and `medium` keep the generators and
// hyper-parameter structure but shrink qubit counts so the suite runs in
// seconds to minutes. The substitution is documented in DESIGN.md.
//
// Both halves and the hyper-parameter sweeps (E8: memory-driven threshold,
// E9: fidelity-driven round trade-off) run on the internal/batch worker
// pool: every exact reference and approximate configuration is an
// independent job, so RunOptions.Parallel > 1 fans the table out across
// CPUs while producing rows identical to the serial path (timing columns
// aside). RunOptions.BaseSeed pins every measurement seed, so published
// rows are reproducible from the (preset, workers, seed) triple the
// table1 and experiments commands print in their headers.
package benchtab
