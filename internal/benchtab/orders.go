package benchtab

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/order"
)

// OrderPoint is one circuit × ordering cell of an ordering sweep: the
// Table-1-style size metrics plus the nodes saved against the identity
// order on the same circuit.
type OrderPoint struct {
	Circuit string
	Order   string
	// Params is the full reorder-strategy configuration behind this row
	// (ordering plus sift mode), so ordering tables are self-describing.
	Params  string
	MaxDD   int
	FinalDD int
	Runtime time.Duration
	// IdentityMaxDD is the identity-order peak for the same circuit;
	// NodesSaved = IdentityMaxDD − MaxDD (negative when the ordering hurt).
	IdentityMaxDD int
	NodesSaved    int
	// SiftPasses counts dynamic passes (non-zero only when sift is on).
	SiftPasses int
}

// SweepOrderings runs every circuit under every named ordering on the batch
// engine (identity is always included as the baseline, first) and reports
// nodes saved per ordering. With sift set, each non-identity configuration
// additionally runs dynamic sifting passes.
func SweepOrderings(ctx context.Context, circs []*circuit.Circuit, orders []string, sift bool, opts SweepOptions) ([]OrderPoint, error) {
	names := make([]string, 0, len(orders)+1)
	names = append(names, order.Identity)
	for _, o := range orders {
		if o != order.Identity {
			names = append(names, o)
		}
	}
	var jobs []batch.Job
	for _, c := range circs {
		for _, name := range names {
			name := name
			jobs = append(jobs, batch.Job{
				Name:    fmt.Sprintf("%s/%s", c.Name, name),
				Circuit: c,
				NewStrategy: func() core.Strategy {
					return order.NewReorder(core.ReorderPolicy{Static: name, Sift: sift && name != order.Identity}, nil)
				},
			})
		}
	}
	bres, err := batch.Run(ctx, jobs, opts.batchOptions())
	if err != nil {
		return nil, err
	}
	out := make([]OrderPoint, 0, len(bres.Jobs))
	var identityMax int
	for i, jr := range bres.Jobs {
		if jr.Err != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", jr.Name, jr.Err)
		}
		res := jr.Result
		if i%len(names) == 0 {
			identityMax = res.MaxDDSize
		}
		ci, oi := i/len(names), i%len(names)
		out = append(out, OrderPoint{
			Circuit:       circs[ci].Name,
			Order:         names[oi],
			Params:        fmt.Sprintf("reorder order=%s sift=%t", names[oi], sift && names[oi] != order.Identity),
			MaxDD:         res.MaxDDSize,
			FinalDD:       res.FinalDDSize,
			Runtime:       res.Runtime,
			IdentityMaxDD: identityMax,
			NodesSaved:    identityMax - res.MaxDDSize,
			SiftPasses:    res.SiftPasses,
		})
	}
	return out, nil
}

// FormatOrderMarkdown renders an ordering sweep as a markdown table.
func FormatOrderMarkdown(points []OrderPoint) string {
	var b strings.Builder
	b.WriteString("| Circuit | Order | Params | Max DD | Final DD | Saved | Sifts | Runtime |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %d | %d | %d | %s |\n",
			p.Circuit, p.Order, p.Params, p.MaxDD, p.FinalDD, p.NodesSaved, p.SiftPasses, fmtDur(p.Runtime))
	}
	return b.String()
}

// FormatOrderCSV renders an ordering sweep as CSV.
func FormatOrderCSV(points []OrderPoint) string {
	var b strings.Builder
	b.WriteString("circuit,order,params,max_dd,final_dd,nodes_saved,sift_passes,seconds\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%d,%d,%.6f\n",
			p.Circuit, p.Order, p.Params, p.MaxDD, p.FinalDD, p.NodesSaved, p.SiftPasses, p.Runtime.Seconds())
	}
	return b.String()
}
