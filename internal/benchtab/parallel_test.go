package benchtab

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/shor"
	"repro/internal/supremacy"
)

// stripPointTiming zeroes the wall-clock fields, the only ones that may
// legitimately differ between a serial and a parallel run.
func stripPointTiming(points []SweepPoint) []SweepPoint {
	out := append([]SweepPoint(nil), points...)
	for i := range out {
		out[i].Runtime = 0
		out[i].ExactTime = 0
	}
	return out
}

func stripRowTiming(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	for i := range out {
		out[i].ExactTime = 0
		out[i].ApproxTime = 0
	}
	return out
}

func TestSweepThresholdParallelMatchesSerial(t *testing.T) {
	cfg := supremacy.Config{Rows: 2, Cols: 4, Depth: 12, Seed: 0}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	thresholds := []int{32, 64, 128}
	run := func(parallel int) []SweepPoint {
		t.Helper()
		points, err := SweepThresholdBatch(context.Background(), c, thresholds, 0.975, 1.1,
			SweepOptions{Parallel: parallel, BaseSeed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return stripPointTiming(points)
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("rows diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestSweepRoundFidelityParallelMatchesSerial(t *testing.T) {
	inst, err := shor.NewInstance(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	frounds := []float64{0.71, 0.9, 0.99}
	run := func(parallel int) []SweepPoint {
		t.Helper()
		points, err := SweepRoundFidelityBatch(context.Background(), inst, frounds, 0.5,
			SweepOptions{Parallel: parallel, BaseSeed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return stripPointTiming(points)
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("rows diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestTable1ParallelMatchesSerial(t *testing.T) {
	suite := tinySuite()
	run := func(parallel int) []Row {
		t.Helper()
		opts := RunOptions{Parallel: parallel, BaseSeed: 3}
		mem, err := suite.RunMemoryDrivenBatch(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		fid, err := suite.RunFidelityDrivenBatch(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return stripRowTiming(append(mem, fid...))
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("rows diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// The TrueFidelity column must have been sampled, not left at the
	// -1 sentinel: the parallel SampleTrue phase re-runs inside the exact
	// managers just as the serial one does.
	for _, r := range parallel {
		if r.TrueFidelity < 0 {
			t.Errorf("%s fround=%g: TrueFidelity not sampled", r.Name, r.RoundFid)
		}
	}
}

func TestSweepProgressAndCancellation(t *testing.T) {
	cfg := supremacy.Config{Rows: 2, Cols: 3, Depth: 10, Seed: 0}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	_, err = SweepThresholdBatch(context.Background(), c, []int{16, 32}, 0.975, 1.1,
		SweepOptions{Progress: func(done, total int) {
			calls++
			if total != 3 { // exact + two thresholds
				t.Errorf("progress total = %d, want 3", total)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("progress fired %d times, want 3", calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = SweepThresholdBatch(ctx, c, []int{16, 32}, 0.975, 1.1, SweepOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled sweep returned %v, want context.Canceled", err)
	}
}
