package benchtab

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/shor"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

// Row is one line of Table I (either half).
type Row struct {
	Approach string // "memory-driven" or "fidelity-driven"
	Name     string // benchmark name, e.g. qsup_4x5_15_0 or shor_33_5
	Qubits   int

	// Exact (non-approximating) reference columns.
	ExactMaxDD   int
	ExactTime    time.Duration
	ExactTimeout bool

	// Proposed-approach columns.
	ApproxMaxDD  int
	Rounds       int
	RoundFid     float64 // f_round
	ApproxTime   time.Duration
	FinalFid     float64 // tracked final fidelity (product of rounds)
	FidBound     float64 // guaranteed product of round targets
	ApproxFailed string  // non-empty if the approximate run errored

	// Extra columns beyond the paper (available because both states fit in
	// one manager at reproduction scale): the measured true fidelity, -1
	// when the exact reference is unavailable.
	TrueFidelity float64
}

// SpeedUp returns exact time / approx time (0 when not comparable).
func (r Row) SpeedUp() float64 {
	if r.ExactTimeout || r.ApproxTime == 0 || r.ApproxFailed != "" {
		return 0
	}
	return float64(r.ExactTime) / float64(r.ApproxTime)
}

// SupremacyCase is one memory-driven benchmark: a circuit plus the
// threshold/growth hyper-parameters and the f_round sweep of Table I.
type SupremacyCase struct {
	Config    supremacy.Config
	Threshold int
	// Growth is the threshold multiplier after each round. The paper's text
	// doubles the threshold; the scaled-down presets use a gentler factor so
	// the round counts land in the paper's regime (tens of rounds) at
	// laptop-scale DD ceilings.
	Growth  float64
	Frounds []float64
}

// ShorCase is one fidelity-driven benchmark.
type ShorCase struct {
	N, A          uint64
	FinalFidelity float64
	RoundFidelity float64
}

// Suite is a full Table I configuration.
type Suite struct {
	Name       string
	Supremacy  []SupremacyCase
	Shor       []ShorCase
	Timeout    time.Duration // per-simulation timeout (paper: 3 h)
	SampleTrue bool          // measure true fidelity against the exact state
}

// RunOptions configures how a suite or sweep executes. The zero value runs
// serially, matching the historical behavior of the option-less drivers
// (RunMemoryDriven, RunFidelityDriven, SweepThreshold, SweepRoundFidelity).
type RunOptions struct {
	// Parallel is the batch worker count; values ≤ 1 run serially (use
	// Workers to map a "0 = all CPUs" flag value). Rows are identical for
	// every worker count (timing columns aside) because each job runs on
	// a fresh manager with a seed derived from BaseSeed and its index.
	Parallel int
	// BaseSeed derives per-job measurement seeds.
	BaseSeed int64
	// Reuse keeps one DD manager per worker across jobs, resetting it
	// between jobs (batch.Options.ReuseManagers). Rows stay bit-identical
	// for every worker count — Reset restores a bit-level fresh manager —
	// while warm jobs run out of retained pool memory. Suites with
	// SampleTrue ignore it: the true-fidelity column compares final states
	// after the batch, and a reused manager's states are invalidated once
	// its worker moves on.
	Reuse bool
	// Progress, when non-nil, receives (done, total) after each finished
	// simulation job (exact references and approximate runs; the optional
	// true-fidelity re-runs are not counted).
	Progress func(done, total int)
}

// Workers maps a user-facing parallelism flag to a RunOptions.Parallel
// value: n ≤ 0 selects one worker per CPU, anything else is taken verbatim.
// The table1 and experiments commands share this for their -parallel flags.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func (o RunOptions) workers() int {
	if o.Parallel <= 1 {
		return 1
	}
	return o.Parallel
}

func (o RunOptions) batchOptions() batch.Options {
	bo := batch.Options{BaseSeed: o.BaseSeed, Workers: o.workers(), ReuseManagers: o.Reuse}
	if o.Progress != nil {
		p := o.Progress
		bo.Progress = func(done, total int, _ batch.JobResult) { p(done, total) }
	}
	return bo
}

// RunMemoryDriven produces the memory-driven half of Table I, serially.
func (s Suite) RunMemoryDriven() ([]Row, error) {
	return s.RunMemoryDrivenBatch(context.Background(), RunOptions{})
}

// RunMemoryDrivenBatch produces the memory-driven half on the batch engine:
// one job per exact reference and per (circuit, f_round) configuration.
func (s Suite) RunMemoryDrivenBatch(ctx context.Context, opts RunOptions) ([]Row, error) {
	var jobs []batch.Job
	circuits := make([]*circuit.Circuit, len(s.Supremacy))
	exactIdx := make([]int, len(s.Supremacy))
	approxIdx := make([][]int, len(s.Supremacy))
	for i, cs := range s.Supremacy {
		circ, err := cs.Config.Generate()
		if err != nil {
			return nil, err
		}
		circuits[i] = circ
		exactIdx[i] = len(jobs)
		jobs = append(jobs, batch.Job{
			Name: cs.Config.Name() + "/exact", Circuit: circ, Timeout: s.Timeout,
		})
		approxIdx[i] = make([]int, len(cs.Frounds))
		for j, fround := range cs.Frounds {
			approxIdx[i][j] = len(jobs)
			jobs = append(jobs, batch.Job{
				Name:        fmt.Sprintf("%s/fround=%g", cs.Config.Name(), fround),
				Circuit:     circ,
				Timeout:     s.Timeout,
				NewStrategy: memoryStrategy(cs, fround),
			})
		}
	}

	bo := opts.batchOptions()
	if s.SampleTrue {
		bo.ReuseManagers = false // sampleTrue reads Final states post-batch
	}
	bres, err := batch.Run(ctx, jobs, bo)
	if err != nil {
		return nil, err
	}

	rows := make([]Row, 0, len(jobs)-len(s.Supremacy))
	rowIdx := make([][]int, len(s.Supremacy))
	for i, cs := range s.Supremacy {
		exact := bres.Jobs[exactIdx[i]]
		rowIdx[i] = make([]int, len(cs.Frounds))
		for j, fround := range cs.Frounds {
			row := Row{
				Approach: "memory-driven",
				Name:     cs.Config.Name(),
				Qubits:   cs.Config.Qubits(),
				RoundFid: fround,
			}
			fillExact(&row, exact.Result, exact.Err)
			fillApprox(&row, bres.Jobs[approxIdx[i][j]])
			rowIdx[i][j] = len(rows)
			rows = append(rows, row)
		}
	}

	if s.SampleTrue {
		err := s.sampleTrue(ctx, opts, rows, len(s.Supremacy), func(i int) (batch.JobResult, []sampleRerun) {
			cs := s.Supremacy[i]
			reruns := make([]sampleRerun, len(cs.Frounds))
			for j, fround := range cs.Frounds {
				reruns[j] = sampleRerun{
					row: rowIdx[i][j], circuit: circuits[i], newStrategy: memoryStrategy(cs, fround),
				}
			}
			return bres.Jobs[exactIdx[i]], reruns
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RunFidelityDriven produces the fidelity-driven half of Table I, serially.
func (s Suite) RunFidelityDriven() ([]Row, error) {
	return s.RunFidelityDrivenBatch(context.Background(), RunOptions{})
}

// RunFidelityDrivenBatch produces the fidelity-driven half on the batch
// engine: one exact and one approximate job per Shor instance.
func (s Suite) RunFidelityDrivenBatch(ctx context.Context, opts RunOptions) ([]Row, error) {
	var jobs []batch.Job
	insts := make([]*shor.Instance, len(s.Shor))
	circuits := make([]*circuit.Circuit, len(s.Shor))
	strategies := make([]func() core.Strategy, len(s.Shor))
	for i, cs := range s.Shor {
		inst, err := shor.NewInstance(cs.N, cs.A)
		if err != nil {
			return nil, err
		}
		insts[i] = inst
		circ := inst.BuildCircuit()
		circuits[i] = circ
		strategies[i] = fidelityStrategy(cs, inst.IQFTBoundaries(circ))
		jobs = append(jobs,
			batch.Job{Name: inst.Name() + "/exact", Circuit: circ, Timeout: s.Timeout},
			batch.Job{
				Name:        fmt.Sprintf("%s/fround=%g", inst.Name(), cs.RoundFidelity),
				Circuit:     circ,
				Timeout:     s.Timeout,
				NewStrategy: strategies[i],
			},
		)
	}

	bo := opts.batchOptions()
	if s.SampleTrue {
		bo.ReuseManagers = false // sampleTrue reads Final states post-batch
	}
	bres, err := batch.Run(ctx, jobs, bo)
	if err != nil {
		return nil, err
	}

	rows := make([]Row, 0, len(s.Shor))
	for i, cs := range s.Shor {
		exact := bres.Jobs[2*i]
		row := Row{
			Approach: "fidelity-driven",
			Name:     insts[i].Name(),
			Qubits:   insts[i].Qubits,
			RoundFid: cs.RoundFidelity,
		}
		fillExact(&row, exact.Result, exact.Err)
		fillApprox(&row, bres.Jobs[2*i+1])
		rows = append(rows, row)
	}

	if s.SampleTrue {
		err := s.sampleTrue(ctx, opts, rows, len(s.Shor), func(i int) (batch.JobResult, []sampleRerun) {
			return bres.Jobs[2*i], []sampleRerun{
				{row: i, circuit: circuits[i], newStrategy: strategies[i]},
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func memoryStrategy(cs SupremacyCase, fround float64) func() core.Strategy {
	return func() core.Strategy {
		return &core.MemoryDriven{
			Threshold:     cs.Threshold,
			RoundFidelity: fround,
			Growth:        cs.Growth,
		}
	}
}

func fidelityStrategy(cs ShorCase, locations []int) func() core.Strategy {
	return func() core.Strategy {
		strat := core.NewFidelityDriven(cs.FinalFidelity, cs.RoundFidelity)
		strat.Locations = locations
		return strat
	}
}

// sampleRerun is one approximate re-run inside an exact run's manager, so
// the two final states can be compared for the TrueFidelity column.
type sampleRerun struct {
	row         int // index into rows
	circuit     *circuit.Circuit
	newStrategy func() core.Strategy
}

// sampleTrue fills the TrueFidelity column: for each case whose exact
// reference succeeded, the approximate configurations are re-run inside the
// exact run's manager (each exact job owns a dedicated manager, so cases
// proceed in parallel; re-runs within a case share a manager and run
// sequentially on one goroutine). A re-run that fails on its own merely
// leaves the -1 sentinel in place, but context cancellation is returned so
// callers never mistake an interrupted sampling phase for a finished one.
func (s Suite) sampleTrue(ctx context.Context, opts RunOptions, rows []Row, cases int, plan func(i int) (batch.JobResult, []sampleRerun)) error {
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for i := 0; i < cases; i++ {
		exact, reruns := plan(i)
		if exact.Err != nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			simr := &sim.Simulator{M: exact.Result.Manager}
			for _, r := range reruns {
				if rows[r.row].ApproxFailed != "" {
					continue
				}
				approx2, err := simr.Run(r.circuit, sim.Options{
					Strategy: r.newStrategy(),
					Deadline: s.deadline(),
					Context:  ctx,
					// The exact final state must survive this run's node-pool
					// sweeps for the fidelity comparison below.
					KeepAlive: []dd.VEdge{exact.Result.Final},
				})
				if err == nil {
					rows[r.row].TrueFidelity = simr.M.Fidelity(exact.Result.Final, approx2.Final)
				}
			}
		}()
	}
	wg.Wait()
	return context.Cause(ctx)
}

func (s Suite) deadline() time.Time {
	if s.Timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.Timeout)
}

func fillExact(row *Row, exact *sim.Result, err error) {
	if err != nil {
		row.ExactTimeout = true
		return
	}
	row.ExactMaxDD = exact.MaxDDSize
	row.ExactTime = exact.Runtime
}

func fillApprox(row *Row, jr batch.JobResult) {
	if jr.Err != nil {
		row.ApproxFailed = jr.Err.Error()
		return
	}
	approx := jr.Result
	row.ApproxMaxDD = approx.MaxDDSize
	row.Rounds = len(approx.Rounds)
	row.ApproxTime = approx.Runtime
	row.FinalFid = approx.EstimatedFidelity
	row.FidBound = approx.FidelityBound
	row.TrueFidelity = -1
}

// Validate sanity-checks a suite configuration.
func (s Suite) Validate() error {
	for _, cs := range s.Supremacy {
		if cs.Threshold <= 0 {
			return fmt.Errorf("benchtab: %s: threshold %d", cs.Config.Name(), cs.Threshold)
		}
		if len(cs.Frounds) == 0 {
			return fmt.Errorf("benchtab: %s: no f_round values", cs.Config.Name())
		}
	}
	for _, cs := range s.Shor {
		if cs.FinalFidelity <= 0 || cs.FinalFidelity >= 1 {
			return fmt.Errorf("benchtab: shor_%d_%d: final fidelity %v", cs.N, cs.A, cs.FinalFidelity)
		}
	}
	return nil
}
