// Package benchtab regenerates Table I of the paper: the memory-driven
// validation on quantum-supremacy circuits and the fidelity-driven
// validation on Shor's algorithm, each against the exact (non-approximating)
// simulation as reference.
//
// Presets scale the instances: the `paper` preset reproduces the original
// workloads verbatim (hours of runtime on a laptop, as in the paper's
// server experiments); `small` and `medium` keep the generators and
// hyper-parameter structure but shrink qubit counts so the suite runs in
// seconds to minutes. The substitution is documented in DESIGN.md.
package benchtab

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/shor"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

// Row is one line of Table I (either half).
type Row struct {
	Approach string // "memory-driven" or "fidelity-driven"
	Name     string // benchmark name, e.g. qsup_4x5_15_0 or shor_33_5
	Qubits   int

	// Exact (non-approximating) reference columns.
	ExactMaxDD   int
	ExactTime    time.Duration
	ExactTimeout bool

	// Proposed-approach columns.
	ApproxMaxDD  int
	Rounds       int
	RoundFid     float64 // f_round
	ApproxTime   time.Duration
	FinalFid     float64 // tracked final fidelity (product of rounds)
	FidBound     float64 // guaranteed product of round targets
	ApproxFailed string  // non-empty if the approximate run errored

	// Extra columns beyond the paper (available because both states fit in
	// one manager at reproduction scale): the measured true fidelity, -1
	// when the exact reference is unavailable.
	TrueFidelity float64
}

// SpeedUp returns exact time / approx time (0 when not comparable).
func (r Row) SpeedUp() float64 {
	if r.ExactTimeout || r.ApproxTime == 0 || r.ApproxFailed != "" {
		return 0
	}
	return float64(r.ExactTime) / float64(r.ApproxTime)
}

// SupremacyCase is one memory-driven benchmark: a circuit plus the
// threshold/growth hyper-parameters and the f_round sweep of Table I.
type SupremacyCase struct {
	Config    supremacy.Config
	Threshold int
	// Growth is the threshold multiplier after each round. The paper's text
	// doubles the threshold; the scaled-down presets use a gentler factor so
	// the round counts land in the paper's regime (tens of rounds) at
	// laptop-scale DD ceilings.
	Growth  float64
	Frounds []float64
}

// ShorCase is one fidelity-driven benchmark.
type ShorCase struct {
	N, A          uint64
	FinalFidelity float64
	RoundFidelity float64
}

// Suite is a full Table I configuration.
type Suite struct {
	Name       string
	Supremacy  []SupremacyCase
	Shor       []ShorCase
	Timeout    time.Duration // per-simulation timeout (paper: 3 h)
	SampleTrue bool          // measure true fidelity against the exact state
}

// RunMemoryDriven produces the memory-driven half of Table I.
func (s Suite) RunMemoryDriven() ([]Row, error) {
	var rows []Row
	for _, cs := range s.Supremacy {
		circ, err := cs.Config.Generate()
		if err != nil {
			return nil, err
		}
		simr := sim.New()
		exact, exactErr := simr.Run(circ, sim.Options{Deadline: s.deadline()})
		for _, fround := range cs.Frounds {
			row := Row{
				Approach: "memory-driven",
				Name:     cs.Config.Name(),
				Qubits:   cs.Config.Qubits(),
				RoundFid: fround,
			}
			fillExact(&row, exact, exactErr)
			strat := &core.MemoryDriven{
				Threshold:     cs.Threshold,
				RoundFidelity: fround,
				Growth:        cs.Growth,
			}
			approxSim := sim.New()
			approx, err := approxSim.Run(circ, sim.Options{Strategy: strat, Deadline: s.deadline()})
			if err != nil {
				row.ApproxFailed = err.Error()
				rows = append(rows, row)
				continue
			}
			row.ApproxMaxDD = approx.MaxDDSize
			row.Rounds = len(approx.Rounds)
			row.ApproxTime = approx.Runtime
			row.FinalFid = approx.EstimatedFidelity
			row.FidBound = approx.FidelityBound
			row.TrueFidelity = -1
			if s.SampleTrue && exactErr == nil {
				// Re-run the approximate strategy inside the exact run's
				// manager so the two final states can be compared.
				strat2 := &core.MemoryDriven{
					Threshold:     cs.Threshold,
					RoundFidelity: fround,
					Growth:        cs.Growth,
				}
				approx2, err := simr.Run(circ, sim.Options{Strategy: strat2, Deadline: s.deadline()})
				if err == nil {
					row.TrueFidelity = simr.M.Fidelity(exact.Final, approx2.Final)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunFidelityDriven produces the fidelity-driven half of Table I.
func (s Suite) RunFidelityDriven() ([]Row, error) {
	var rows []Row
	for _, cs := range s.Shor {
		inst, err := shor.NewInstance(cs.N, cs.A)
		if err != nil {
			return nil, err
		}
		circ := inst.BuildCircuit()
		row := Row{
			Approach: "fidelity-driven",
			Name:     inst.Name(),
			Qubits:   inst.Qubits,
			RoundFid: cs.RoundFidelity,
		}
		simr := sim.New()
		exact, exactErr := simr.Run(circ, sim.Options{Deadline: s.deadline()})
		fillExact(&row, exact, exactErr)

		strat := core.NewFidelityDriven(cs.FinalFidelity, cs.RoundFidelity)
		strat.Locations = inst.IQFTBoundaries(circ)
		approxSim := sim.New()
		approx, err := approxSim.Run(circ, sim.Options{Strategy: strat, Deadline: s.deadline()})
		if err != nil {
			row.ApproxFailed = err.Error()
			rows = append(rows, row)
			continue
		}
		row.ApproxMaxDD = approx.MaxDDSize
		row.Rounds = len(approx.Rounds)
		row.ApproxTime = approx.Runtime
		row.FinalFid = approx.EstimatedFidelity
		row.FidBound = approx.FidelityBound
		row.TrueFidelity = -1
		if s.SampleTrue && exactErr == nil {
			strat2 := core.NewFidelityDriven(cs.FinalFidelity, cs.RoundFidelity)
			strat2.Locations = inst.IQFTBoundaries(circ)
			approx2, err := simr.Run(circ, sim.Options{Strategy: strat2, Deadline: s.deadline()})
			if err == nil {
				row.TrueFidelity = simr.M.Fidelity(exact.Final, approx2.Final)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (s Suite) deadline() time.Time {
	if s.Timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.Timeout)
}

func fillExact(row *Row, exact *sim.Result, err error) {
	if err != nil {
		row.ExactTimeout = true
		return
	}
	row.ExactMaxDD = exact.MaxDDSize
	row.ExactTime = exact.Runtime
}

// Validate sanity-checks a suite configuration.
func (s Suite) Validate() error {
	for _, cs := range s.Supremacy {
		if cs.Threshold <= 0 {
			return fmt.Errorf("benchtab: %s: threshold %d", cs.Config.Name(), cs.Threshold)
		}
		if len(cs.Frounds) == 0 {
			return fmt.Errorf("benchtab: %s: no f_round values", cs.Config.Name())
		}
	}
	for _, cs := range s.Shor {
		if cs.FinalFidelity <= 0 || cs.FinalFidelity >= 1 {
			return fmt.Errorf("benchtab: shor_%d_%d: final fidelity %v", cs.N, cs.A, cs.FinalFidelity)
		}
	}
	return nil
}
