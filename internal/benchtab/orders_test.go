package benchtab

import (
	"context"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/order"
)

func TestSweepOrderings(t *testing.T) {
	pairs := circuit.New(10, "pairs")
	for i := 0; i < 5; i++ {
		pairs.H(i)
		pairs.CX(i, i+5)
	}
	circs := []*circuit.Circuit{pairs, gen.QFT(6)}
	points, err := SweepOrderings(context.Background(), circs,
		[]string{order.Reversed, order.Scored}, false, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	// Row 0 of each circuit is the identity baseline: zero saved by
	// definition.
	for i := 0; i < len(points); i += 3 {
		if points[i].Order != order.Identity || points[i].NodesSaved != 0 {
			t.Fatalf("baseline row %d = %+v", i, points[i])
		}
		for j := i; j < i+3; j++ {
			if points[j].IdentityMaxDD != points[i].MaxDD {
				t.Fatalf("row %d baseline mismatch: %+v vs %+v", j, points[j], points[i])
			}
		}
	}
	// The pairs circuit must show a scored-order win.
	var scored *OrderPoint
	for i := range points {
		if points[i].Circuit == "pairs" && points[i].Order == order.Scored {
			scored = &points[i]
		}
	}
	if scored == nil || scored.NodesSaved <= 0 {
		t.Fatalf("scored ordering saved nothing on pairs: %+v", scored)
	}

	md := FormatOrderMarkdown(points)
	if !strings.Contains(md, "| pairs | scored |") {
		t.Fatalf("markdown missing scored row:\n%s", md)
	}
	csv := FormatOrderCSV(points)
	if !strings.Contains(csv, "pairs,scored,") {
		t.Fatalf("csv missing scored row:\n%s", csv)
	}
}

// TestSweepOrderingsParallelMatchesSerial: rows must be identical whether
// the sweep fans out or runs serially (the determinism bar every batch
// driver in this repo clears).
func TestSweepOrderingsParallelMatchesSerial(t *testing.T) {
	pairs := circuit.New(8, "pairs")
	for i := 0; i < 4; i++ {
		pairs.H(i)
		pairs.CX(i, i+4)
	}
	circs := []*circuit.Circuit{pairs, gen.QFT(5)}
	serial, err := SweepOrderings(context.Background(), circs, []string{order.Scored}, true, SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepOrderings(context.Background(), circs, []string{order.Scored}, true, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a, b := serial[i], par[i]
		a.Runtime, b.Runtime = 0, 0 // wall clock legitimately differs
		if a != b {
			t.Fatalf("row %d differs: serial %+v, parallel %+v", i, serial[i], par[i])
		}
	}
}
