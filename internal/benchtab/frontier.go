package benchtab

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/supremacy"
)

// FrontierPoint is one (circuit, pass, budget) cell of a delete-vs-replace
// frontier sweep: the fidelity kept against the exact final state when the
// one-shot approximation pass trims it to the node budget.
type FrontierPoint struct {
	Circuit  string
	Strategy string // "delete" or "replace"
	Params   string // self-describing pass parameters for this row
	Budget   int
	Size     int     // node count after the pass
	Fidelity float64 // |⟨exact|approx⟩|²
	ExactDD  int     // node count of the exact final state
}

// SweepFrontier simulates each circuit exactly once on the batch engine and,
// in Job.Finalize (while the worker's manager is still live), applies the
// one-shot delete and replace passes to the final state at every node
// budget. The result is the fidelity/size frontier of the two approximation
// families at genuinely equal budgets — the delete-vs-replace comparison of
// arXiv 2507.04335 on this repo's workloads. Budgets larger than the exact
// final size are skipped (both passes are no-ops there).
func SweepFrontier(ctx context.Context, circs []*circuit.Circuit, budgets []int, kinds []core.SubstituteKind, opts SweepOptions) ([]FrontierPoint, error) {
	if kinds == nil {
		kinds = core.DefaultSubstitutes()
	}
	kindNames := make([]string, len(kinds))
	for i, k := range kinds {
		kindNames[i] = string(k)
	}
	replParams := "kinds=" + strings.Join(kindNames, ",")

	perJob := make([][]FrontierPoint, len(circs))
	errs := make([]error, len(circs))
	jobs := make([]batch.Job, 0, len(circs))
	for i, c := range circs {
		i, c := i, c
		jobs = append(jobs, batch.Job{
			Name:    c.Name,
			Circuit: c,
			Finalize: func(r *batch.JobResult) {
				if r.Err != nil || r.Result == nil {
					return
				}
				m, e := r.Result.Manager, r.Result.Final
				exact := dd.CountVNodes(e)
				for _, budget := range budgets {
					if budget < 1 || budget >= exact {
						continue
					}
					nd, repD, err := core.ApproximateToSize(m, e, budget)
					if err != nil {
						errs[i] = fmt.Errorf("delete at budget %d: %w", budget, err)
						return
					}
					nr, repR, err := core.ApproximateToSizeReplace(m, e, budget, 0, kinds)
					if err != nil {
						errs[i] = fmt.Errorf("replace at budget %d: %w", budget, err)
						return
					}
					perJob[i] = append(perJob[i],
						FrontierPoint{Circuit: c.Name, Strategy: "delete", Params: fmt.Sprintf("max_nodes=%d", budget),
							Budget: budget, Size: repD.SizeAfter, Fidelity: m.Fidelity(e, nd), ExactDD: exact},
						FrontierPoint{Circuit: c.Name, Strategy: "replace", Params: fmt.Sprintf("max_nodes=%d %s", budget, replParams),
							Budget: budget, Size: repR.SizeAfter, Fidelity: m.Fidelity(e, nr), ExactDD: exact})
				}
			},
		})
	}
	bres, err := batch.Run(ctx, jobs, opts.batchOptions())
	if err != nil {
		return nil, err
	}
	var out []FrontierPoint
	for i, jr := range bres.Jobs {
		if jr.Err != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", jr.Name, jr.Err)
		}
		if errs[i] != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", jr.Name, errs[i])
		}
		out = append(out, perJob[i]...)
	}
	return out, nil
}

// FrontierCircuits builds the standard frontier workload set: QFT, Grover,
// a small supremacy grid, and the entangled-pairs circuit whose identity
// order peaks exponentially.
func FrontierCircuits() ([]*circuit.Circuit, error) {
	sup, err := supremacy.Config{Rows: 3, Cols: 3, Depth: 10, Seed: 0}.Generate()
	if err != nil {
		return nil, err
	}
	return []*circuit.Circuit{
		gen.QFT(10),
		gen.Grover(8, 0b1011_0110, 2),
		sup,
		PairsCircuit(12),
	}, nil
}

// PairsCircuit is the entangled-pairs workload (H on the low half, CX to
// the partner in the high half) shared by the ordering and frontier sweeps.
func PairsCircuit(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("pairs_%d", n))
	for i := 0; i < n/2; i++ {
		c.Apply("h", nil, i)
		c.Apply("x", nil, i+n/2, dd.PosControl(i))
	}
	return c
}

// FormatFrontierMarkdown renders a frontier sweep as a markdown table.
func FormatFrontierMarkdown(points []FrontierPoint) string {
	var b strings.Builder
	b.WriteString("| Circuit | Strategy | Params | Budget | Nodes | Fidelity | Exact DD |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, p := range points {
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %d | %.4f | %d |\n",
			p.Circuit, p.Strategy, p.Params, p.Budget, p.Size, p.Fidelity, p.ExactDD)
	}
	return b.String()
}

// FormatFrontierCSV renders a frontier sweep as CSV.
func FormatFrontierCSV(points []FrontierPoint) string {
	var b strings.Builder
	b.WriteString("circuit,strategy,params,budget,nodes,fidelity,exact_dd\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%.6f,%d\n",
			p.Circuit, p.Strategy, p.Params, p.Budget, p.Size, p.Fidelity, p.ExactDD)
	}
	return b.String()
}
