package benchtab

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/order"
)

// TestAtlasWorkloadsClassifyToTheirOwnClass pins the contract the auto
// strategy depends on: each class's representative circuit must be
// classified back to the class key it is filed under, or serving would
// resolve a different row than the sweep measured.
func TestAtlasWorkloadsClassifyToTheirOwnClass(t *testing.T) {
	workloads, err := AtlasWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(workloads) < 7 {
		t.Fatalf("atlas covers %d classes, want at least 7", len(workloads))
	}
	seen := map[string]bool{}
	for _, w := range workloads {
		if seen[w.Class] {
			t.Errorf("class %q appears twice", w.Class)
		}
		seen[w.Class] = true
		if got := gen.Classify(w.Circuit); got != w.Class {
			t.Errorf("%s representative %q classified as %q", w.Class, w.Circuit.Name, got)
		}
	}
}

// TestAtlasGridConfigsInstantiate feeds every grid configuration through
// the strategy registry exactly as SweepAtlas does, so a malformed params
// template fails here instead of panicking inside a batch worker.
func TestAtlasGridConfigsInstantiate(t *testing.T) {
	for _, exactMax := range []int{10, 100, 1000} {
		grid := atlasGrid(exactMax)
		if len(grid) != 21 {
			t.Fatalf("exactMax=%d: grid has %d cells, want 21", exactMax, len(grid))
		}
		for _, cfg := range grid {
			if _, err := core.NewStrategyByName(cfg.registry, json.RawMessage(cfg.params)); err != nil {
				t.Errorf("exactMax=%d: (%s, %s): %v", exactMax, cfg.registry, cfg.params, err)
			}
		}
	}
}

func TestWrapOrder(t *testing.T) {
	direct := wrapOrder("memory", `{"threshold":32}`, order.Identity)
	if direct.registry != "memory" || direct.params != `{"threshold":32}` {
		t.Errorf("identity wrap changed the config: %+v", direct)
	}
	wrapped := wrapOrder("memory", `{"threshold":32}`, order.Scored)
	if wrapped.registry != "reorder" {
		t.Errorf("scored wrap registry %q, want reorder", wrapped.registry)
	}
	if want := `{"order":"scored","inner":"memory","inner_params":{"threshold":32}}`; wrapped.params != want {
		t.Errorf("scored wrap params %s, want %s", wrapped.params, want)
	}
	exact := wrapOrder("exact", "", order.Reversed)
	if exact.registry != "reorder" || exact.params != `{"order":"reversed"}` {
		t.Errorf("exact reversed wrap: %+v", exact)
	}
}

func TestPickAtlasWinner(t *testing.T) {
	eligibleSmall := AtlasCell{Strategy: "memory", Fidelity: 0.95, MaxDD: 40}
	eligibleBig := AtlasCell{Strategy: "exact", Fidelity: 1.0, MaxDD: 100}
	ineligible := AtlasCell{Strategy: "replace", Fidelity: 0.50, MaxDD: 5}
	if win := pickAtlasWinner([]AtlasCell{eligibleBig, ineligible, eligibleSmall}); win != eligibleSmall {
		t.Errorf("winner %+v, want the eligible cell with the smallest peak", win)
	}
	// No cell clears the floor: highest fidelity wins regardless of size.
	low := AtlasCell{Strategy: "replace", Fidelity: 0.70, MaxDD: 5}
	high := AtlasCell{Strategy: "memory", Fidelity: 0.85, MaxDD: 80}
	if win := pickAtlasWinner([]AtlasCell{low, high}); win != high {
		t.Errorf("winner %+v, want the highest-fidelity ineligible cell", win)
	}
	// Equal peaks: higher fidelity breaks the tie.
	a := AtlasCell{Strategy: "memory", Fidelity: 0.92, MaxDD: 40}
	b := AtlasCell{Strategy: "fidelity", Fidelity: 0.98, MaxDD: 40}
	if win := pickAtlasWinner([]AtlasCell{a, b}); win != b {
		t.Errorf("winner %+v, want the higher-fidelity cell at equal peak", win)
	}
}

// TestSweepAtlasDeterministicAcrossWorkers runs the sweep at smoke scale
// twice (serial and parallel) on downsized workloads via the real entry
// point and compares the deterministic projection byte for byte.
func TestSweepAtlasDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("atlas sweep is seconds-long; skipped with -short")
	}
	serial, err := SweepAtlas(context.Background(), RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepAtlas(context.Background(), RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := FormatAtlasMarkdown(serial) + FormatAtlasGridMarkdown(serial)
	b := FormatAtlasMarkdown(parallel) + FormatAtlasGridMarkdown(parallel)
	if a != b {
		t.Error("atlas output differs between 1 and 4 workers")
	}
	for _, r := range serial.Rows {
		if len(serial.Cells) == 0 || r.Cells != 21 {
			t.Errorf("%s: %d cells, want 21", r.Class, r.Cells)
		}
	}
}
