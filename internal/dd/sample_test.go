package dd

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleDistribution(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(40))
	n := 4
	vec := randomSparseAmplitudes(n, 0.5, rng)
	e, _ := m.FromAmplitudes(vec)

	const shots = 200000
	hist := m.SampleMany(e, n, shots, rng)
	for idx := uint64(0); idx < 1<<uint(n); idx++ {
		p := m.Probability(e, idx, n)
		got := float64(hist[idx]) / shots
		// 5-sigma binomial bound.
		sigma := math.Sqrt(p*(1-p)/shots) + 1e-9
		if math.Abs(got-p) > 5*sigma+1e-3 {
			t.Errorf("P(|%d⟩): sampled %v, want %v (±%v)", idx, got, p, 5*sigma)
		}
	}
}

func TestSampleBellState(t *testing.T) {
	m := New()
	s := complex(1/math.Sqrt2, 0)
	e, _ := m.FromAmplitudes([]complex128{s, 0, 0, s})
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 1000; i++ {
		idx := m.Sample(e, 2, rng)
		if idx != 0b00 && idx != 0b11 {
			t.Fatalf("sampled impossible outcome |%02b⟩ from Bell state", idx)
		}
	}
}

func TestProbabilityOne(t *testing.T) {
	m := New()
	// |+⟩⊗|1⟩: qubit 0 is |1⟩ always, qubit 1 is 50/50.
	s := complex(1/math.Sqrt2, 0)
	e, _ := m.FromAmplitudes([]complex128{0, s, 0, s})
	if p := m.ProbabilityOne(e, 0, 2); math.Abs(p-1) > 1e-9 {
		t.Errorf("P(q0=1) = %v, want 1", p)
	}
	if p := m.ProbabilityOne(e, 1, 2); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(q1=1) = %v, want 0.5", p)
	}
}

func TestMeasureQubitCollapse(t *testing.T) {
	m := New()
	s := complex(1/math.Sqrt2, 0)
	bell, _ := m.FromAmplitudes([]complex128{s, 0, 0, s})
	rng := rand.New(rand.NewSource(42))
	saw := map[int]bool{}
	for i := 0; i < 50; i++ {
		bit, post := m.MeasureQubit(bell, 0, 2, rng)
		saw[bit] = true
		// After measuring qubit 0 of a Bell pair, qubit 1 must agree.
		want := uint64(0)
		if bit == 1 {
			want = 0b11
		}
		if p := m.Probability(post, want, 2); math.Abs(p-1) > 1e-9 {
			t.Fatalf("collapsed state wrong: P(|%02b⟩) = %v", want, p)
		}
		if norm := m.Norm(post); math.Abs(norm-1) > 1e-9 {
			t.Fatalf("collapsed state not normalized: %v", norm)
		}
	}
	if !saw[0] || !saw[1] {
		t.Error("50 Bell measurements produced only one outcome")
	}
}

func TestProjectZeroProbabilityBranch(t *testing.T) {
	m := New()
	e := m.BasisState(2, 0b01)
	if got := m.ProjectQubit(e, 0, 2, 0); !m.IsVZero(got) {
		t.Error("projection onto zero-probability branch is not the zero edge")
	}
}

func TestRenderAndDOT(t *testing.T) {
	m := New()
	sVal := 1 / math.Sqrt(10)
	vec := []complex128{
		complex(sVal, 0), 0, 0, complex(-sVal, 0),
		0, complex(2*sVal, 0), 0, complex(2*sVal, 0),
	}
	e, _ := m.FromAmplitudes(vec)
	dot := DOT(e, "fig1b")
	if len(dot) == 0 || dot[0] != 'd' {
		t.Error("DOT output malformed")
	}
	for _, want := range []string{"digraph", "q2", "q1", "q0", "->"} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	r := Render(e)
	for _, want := range []string{"root", "q2", "q0"} {
		if !contains(r, want) {
			t.Errorf("Render output missing %q", want)
		}
	}
	// Degenerate edges must not crash.
	_ = DOT(m.VZero(), "zero")
	_ = Render(m.VZero())
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestCleanupKeepsRoots(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(43))
	vec := randomAmplitudes(6, rng)
	e, _ := m.FromAmplitudes(vec)
	// Create garbage.
	for i := 0; i < 20; i++ {
		tmp, _ := m.FromAmplitudes(randomAmplitudes(6, rng))
		_ = tmp
	}
	before := m.Stats().VUniqueSize
	m.Cleanup([]VEdge{e}, nil)
	after := m.Stats().VUniqueSize
	if after >= before {
		t.Errorf("cleanup did not shrink unique table: %d -> %d", before, after)
	}
	// The kept state must still be intact and usable.
	vecApproxEq(t, m.ToVector(e, 6), vec, 1e-9, "state after cleanup")
	g := m.MakeGateDD(6, gateH, 3)
	res := m.MulVec(g, e)
	if norm := m.Norm(res); math.Abs(norm-1) > 1e-9 {
		t.Errorf("post-cleanup operation broken: norm %v", norm)
	}
}

func TestCleanupPreservesIdentityChain(t *testing.T) {
	m := New()
	id5 := m.Identity(5)
	m.Cleanup(nil, nil)
	id5b := m.Identity(5)
	if id5.N != id5b.N {
		t.Error("identity chain invalidated by Cleanup")
	}
}
