package dd

import (
	"math"
	"math/cmplx"
	"testing"
)

// buildProbe runs a fixed gate sequence and returns the final state. The
// sequence mixes Hadamards, controlled ops, and parameterized rotations so
// interning, normalization, caches, and the unique tables all get exercised.
func buildProbe(m *Manager, n int) VEdge {
	inv := 1 / math.Sqrt2
	h := [4]complex128{complex(inv, 0), complex(inv, 0), complex(inv, 0), complex(-inv, 0)}
	tgate := [4]complex128{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
	x := [4]complex128{0, 1, 1, 0}
	state := m.BasisState(n, 0)
	for q := 0; q < n; q++ {
		state = m.MulVec(m.MakeGateDD(n, h, q), state)
		state = m.NormalizeRootWeight(state)
	}
	for q := 0; q+1 < n; q++ {
		cx := m.MakeGateDD(n, x, q+1, Control{Qubit: q, Positive: true})
		state = m.MulVec(cx, state)
		state = m.MulVec(m.MakeGateDD(n, tgate, q), state)
		state = m.NormalizeRootWeight(state)
	}
	return state
}

// TestResetMatchesFreshManager: a manager that did unrelated work and was
// Reset must replay a gate sequence bit-identically to a fresh manager —
// same amplitudes, same node ids, same table pressure. This is the invariant
// that makes ReuseManagers batch runs bit-reproducible.
func TestResetMatchesFreshManager(t *testing.T) {
	const n = 6
	fresh := New()
	want := buildProbe(fresh, n)
	wantVec := fresh.ToVector(want, n)
	wantID := want.N.ID()
	wantSize := CountVNodes(want)
	wantCN := fresh.CN.Size()

	reused := New()
	// Unrelated prior work: different width, different gates, forcing the
	// pools, caches, and weight table to grow along another trajectory.
	buildProbe(reused, 4)
	reused.MakeGateDD(7, [4]complex128{1, 0, 0, -1}, 3)
	reused.Reset()

	got := buildProbe(reused, n)
	gotVec := reused.ToVector(got, n)
	if got.N.ID() != wantID {
		t.Errorf("root node id after reset = %d, fresh = %d", got.N.ID(), wantID)
	}
	if sz := CountVNodes(got); sz != wantSize {
		t.Errorf("DD size after reset = %d, fresh = %d", sz, wantSize)
	}
	if reused.CN.Size() != wantCN {
		t.Errorf("weight table size after reset = %d, fresh = %d", reused.CN.Size(), wantCN)
	}
	for i := range wantVec {
		if gotVec[i] != wantVec[i] { // bit-exact, no tolerance
			t.Fatalf("amplitude %d differs: %v vs %v", i, gotVec[i], wantVec[i])
		}
	}
	if w, g := want.W.Hash(), got.W.Hash(); w != g {
		t.Errorf("root weight hash differs: %x vs %x", w, g)
	}

	// A second reset replays again, this time reusing the already-grown
	// arena (free-list path rather than chunk growth).
	reused.Reset()
	again := buildProbe(reused, n)
	agVec := reused.ToVector(again, n)
	for i := range wantVec {
		if agVec[i] != wantVec[i] {
			t.Fatalf("amplitude %d differs on second reset: %v vs %v", i, agVec[i], wantVec[i])
		}
	}
	if again.N.ID() != wantID {
		t.Errorf("root node id after second reset = %d, want %d", again.N.ID(), wantID)
	}
}

// TestResetCountersAndPoolInvariants: Reset keeps the Capacity == Live + Free
// pool invariant, CountV matches CountVNodes, and Prewarm/TrimPools adjust
// physical capacity without touching logical state.
func TestResetCountersAndPoolInvariants(t *testing.T) {
	m := New()
	state := buildProbe(m, 5)
	if got, want := m.CountV(state), CountVNodes(state); got != want {
		t.Fatalf("CountV = %d, CountVNodes = %d", got, want)
	}
	// Second CountV reuses the retained scratch map.
	if got, want := m.CountV(state), CountVNodes(state); got != want {
		t.Fatalf("CountV (warm) = %d, CountVNodes = %d", got, want)
	}
	m.Reset()
	p := m.Pool()
	if p.Live != 0 {
		t.Errorf("live nodes after Reset = %d", p.Live)
	}
	if p.Capacity != p.Live+p.Free {
		t.Errorf("pool invariant broken after Reset: cap=%d live=%d free=%d", p.Capacity, p.Live, p.Free)
	}
	if p.Free == 0 {
		t.Error("Reset returned no nodes to the free lists")
	}
	m.TrimPools()
	p = m.Pool()
	if p.Capacity != 0 || p.Free != 0 {
		t.Errorf("TrimPools retained capacity: %+v", p)
	}
	m.Prewarm(5000)
	p = m.Pool()
	if p.Free < 5000-poolChunk || p.Capacity != p.Live+p.Free {
		t.Errorf("Prewarm(5000) pool state: %+v", p)
	}
	// The manager still works after trim + prewarm.
	if v := m.ToVector(buildProbe(m, 3), 3); len(v) != 8 {
		t.Fatalf("probe after TrimPools/Prewarm returned %d amplitudes", len(v))
	}
}

// TestCacheGrowthInPlace drives the add cache past several doublings, resets,
// and drives it again: the second growth must reuse the retained backing and
// cached results must survive each doubling (hot entries rehash over).
func TestCacheGrowthOverRetainedBacking(t *testing.T) {
	m := New()
	grow := func() VEdge {
		// Superpositions with many distinct node pairs force add-cache traffic.
		return buildProbe(m, 8)
	}
	grow()
	grownLen := len(m.addCache)
	backing := &m.addBack[0]
	m.Reset()
	if len(m.addCache) != cacheInitialSize {
		t.Fatalf("add cache window after Reset = %d, want %d", len(m.addCache), cacheInitialSize)
	}
	if len(m.addBack) < grownLen {
		t.Fatalf("Reset shrank the backing array: %d < %d", len(m.addBack), grownLen)
	}
	grow()
	if len(m.addCache) > len(m.addBack) {
		t.Fatalf("cache window %d exceeds backing %d", len(m.addCache), len(m.addBack))
	}
	if len(m.addBack) == grownLen && &m.addBack[0] != backing {
		t.Error("regrowth to the same size replaced the backing array instead of reusing it")
	}
}
