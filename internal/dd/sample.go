package dd

import (
	"fmt"
	"math/rand"
)

// Sample draws one basis state from the measurement distribution of the
// n-qubit state e, without collapsing it. With the |w0|²+|w1|² = 1 node
// normalization, sampling is a single weighted walk from the root: at each
// node the squared child-weight magnitudes are the conditional outcome
// probabilities for that qubit.
func (m *Manager) Sample(e VEdge, n int, rng *rand.Rand) uint64 {
	if m.IsVZero(e) {
		panic("dd: Sample on zero state")
	}
	var idx uint64
	node := e.N
	for l := n - 1; l >= 0; l-- {
		if node.IsTerminal() {
			panic("dd: Sample reached terminal early (qubit count mismatch)")
		}
		p0 := node.E[0].W.Abs2()
		p1 := node.E[1].W.Abs2()
		// Guard against floating point drift in the conditional split.
		r := rng.Float64() * (p0 + p1)
		var bit uint64
		if r >= p0 {
			bit = 1
		}
		idx |= bit << uint(m.LevelQubit(l))
		node = node.E[bit].N
	}
	return idx
}

// SampleMany draws shots samples and returns a histogram of basis states.
func (m *Manager) SampleMany(e VEdge, n, shots int, rng *rand.Rand) map[uint64]int {
	hist := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		hist[m.Sample(e, n, rng)]++
	}
	return hist
}

// Probability returns the measurement probability |amplitude|² of basis
// state idx.
func (m *Manager) Probability(e VEdge, idx uint64, n int) float64 {
	a := m.Amplitude(e, idx, n)
	return real(a)*real(a) + imag(a)*imag(a)
}

// ProbabilityOne returns the probability that measuring qubit q yields 1.
func (m *Manager) ProbabilityOne(e VEdge, q, n int) float64 {
	if q < 0 || q >= n {
		panic(fmt.Sprintf("dd: qubit %d out of range", q))
	}
	proj := m.MakeGateDD(n, [4]complex128{0, 0, 0, 1}, q)
	projected := m.MulVec(proj, e)
	norm := m.InnerProduct(projected, projected)
	return clamp01(real(norm) / realNonZero(m.InnerProduct(e, e)))
}

// MeasureQubit measures qubit q of the n-qubit state, collapsing it. It
// returns the observed bit and the renormalized post-measurement state.
func (m *Manager) MeasureQubit(e VEdge, q, n int, rng *rand.Rand) (int, VEdge) {
	p1 := m.ProbabilityOne(e, q, n)
	bit := 0
	if rng.Float64() < p1 {
		bit = 1
	}
	return bit, m.ProjectQubit(e, q, n, bit)
}

// ProjectQubit projects qubit q of the state onto the given bit value and
// renormalizes. Projecting onto a zero-probability branch returns the zero
// edge.
func (m *Manager) ProjectQubit(e VEdge, q, n, bit int) VEdge {
	var u [4]complex128
	if bit == 0 {
		u = [4]complex128{1, 0, 0, 0}
	} else {
		u = [4]complex128{0, 0, 0, 1}
	}
	proj := m.MakeGateDD(n, u, q)
	projected := m.MulVec(proj, e)
	if m.IsVZero(projected) {
		return projected
	}
	norm := m.Norm(projected)
	return m.ScaleV(projected, complex(1/norm, 0))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func realNonZero(c complex128) float64 {
	r := real(c)
	if r == 0 {
		return 1
	}
	return r
}
