package dd

// Cleanup prunes the unique tables down to the nodes reachable from the
// given roots and clears all compute caches. Go's garbage collector then
// reclaims the unreferenced nodes. This plays the role of the reference
// counting + garbage collection machinery in C++ DD packages: without it the
// unique tables and caches would retain every node ever created.
//
// Live DD edges held by the caller but not passed as roots become invalid
// for further Manager operations (their nodes may be re-created as
// duplicates), so callers must pass every edge they intend to keep using.
func (m *Manager) Cleanup(vRoots []VEdge, mRoots []MEdge) {
	liveV := make(map[*VNode]struct{}, len(m.vUnique))
	liveM := make(map[*MNode]struct{}, len(m.mUnique))

	var markV func(n *VNode)
	markV = func(n *VNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := liveV[n]; ok {
			return
		}
		liveV[n] = struct{}{}
		markV(n.E[0].N)
		markV(n.E[1].N)
	}
	var markM func(n *MNode)
	markM = func(n *MNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := liveM[n]; ok {
			return
		}
		liveM[n] = struct{}{}
		for i := 0; i < 4; i++ {
			markM(n.E[i].N)
		}
	}
	for _, e := range vRoots {
		markV(e.N)
	}
	for _, e := range mRoots {
		markM(e.N)
	}
	// The cached identity chain stays live by construction.
	for _, e := range m.idChain {
		markM(e.N)
	}

	newV := make(map[vKey]*VNode, len(liveV)*2)
	for k, n := range m.vUnique {
		if _, ok := liveV[n]; ok {
			newV[k] = n
		}
	}
	m.vUnique = newV

	newM := make(map[mKey]*MNode, len(liveM)*2)
	for k, n := range m.mUnique {
		if _, ok := liveM[n]; ok {
			newM[k] = n
		}
	}
	m.mUnique = newM

	m.ClearCaches()
}

// ClearCaches drops all compute caches (add, multiply, inner product). Safe
// at any time; only costs recomputation.
func (m *Manager) ClearCaches() {
	m.addCache = make(map[addKey]VEdge, 1<<12)
	m.maddCache = make(map[maddKey]MEdge, 1<<10)
	m.mulCache = make(map[mulKey]VEdge, 1<<12)
	m.mmCache = make(map[mmKey]MEdge, 1<<10)
	m.ipCache = make(map[ipKey]complex128, 1<<10)
}

// UniqueTableSize returns the combined size of both unique tables, used by
// callers to decide when a Cleanup is worthwhile.
func (m *Manager) UniqueTableSize() int {
	return len(m.vUnique) + len(m.mUnique)
}
