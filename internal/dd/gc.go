package dd

// Cleanup is the manager's incremental garbage collector: it marks the nodes
// reachable from the given roots with a fresh generation stamp, sweeps every
// unique-table bucket chain in place (unlinking dead nodes onto the pool
// free lists for recycling), and invalidates the compute caches with an O(1)
// generation bump. No table is reallocated and nothing is handed to Go's
// allocator, so a steady-state build/Cleanup cycle runs allocation-free.
//
// Live DD edges held by the caller but not passed as roots become invalid
// for further Manager operations (their nodes are recycled and may be
// reinitialized with different contents), so callers must pass every edge
// they intend to keep using. The cached identity chain stays live by
// construction.
func (m *Manager) Cleanup(vRoots []VEdge, mRoots []MEdge) {
	// gcGen wrap needs no guard (unlike cacheGen in ClearCaches): every
	// sweep either restamps an interned node to the current generation or
	// releases it, and nodes created between sweeps are stamped at creation,
	// so at this point every interned node's gen equals the old gcGen and
	// can never collide with the incremented value, wrapped or not.
	m.gcGen++
	for _, e := range vRoots {
		m.markV(e.N)
	}
	for _, e := range mRoots {
		m.markM(e.N)
	}
	for _, e := range m.idChain {
		m.markM(e.N)
	}

	for i := range m.vLevels {
		lt := &m.vLevels[i]
		for b, head := range lt.buckets {
			var keep *VNode
			for n := head; n != nil; {
				next := n.next
				if n.gen == m.gcGen {
					n.next = keep
					keep = n
				} else {
					lt.count--
					m.vPool.release(n)
				}
				n = next
			}
			lt.buckets[b] = keep
		}
	}
	for i := range m.mLevels {
		lt := &m.mLevels[i]
		for b, head := range lt.buckets {
			var keep *MNode
			for n := head; n != nil; {
				next := n.next
				if n.gen == m.gcGen {
					n.next = keep
					keep = n
				} else {
					lt.count--
					m.mPool.release(n)
				}
				n = next
			}
			lt.buckets[b] = keep
		}
	}

	m.cleanups++
	m.ClearCaches()
}

// markV stamps the subgraph under n with the current GC generation.
func (m *Manager) markV(n *VNode) {
	if n == nil || n.IsTerminal() || n.gen == m.gcGen {
		return
	}
	n.gen = m.gcGen
	m.markV(n.E[0].N)
	m.markV(n.E[1].N)
}

func (m *Manager) markM(n *MNode) {
	if n == nil || n.IsTerminal() || n.gen == m.gcGen {
		return
	}
	n.gen = m.gcGen
	for i := 0; i < 4; i++ {
		m.markM(n.E[i].N)
	}
}

// ClearCaches invalidates all compute caches (add, multiply, inner product)
// by bumping the cache generation — O(1), no reallocation. Safe at any time;
// only costs recomputation.
func (m *Manager) ClearCaches() {
	m.cacheGen++
	if m.cacheGen == 0 {
		// Generation counter wrapped: entries stamped 0 (the zero value)
		// must not read as live, so physically clear once per 2^32 clears.
		// The full backing arrays are cleared, not just the live windows:
		// after a Reset shrinks the windows, stale entries beyond them would
		// otherwise resurrect when a later growth reslices over them.
		clear(m.addBack)
		clear(m.maddBack)
		clear(m.mulBack)
		clear(m.mmBack)
		clear(m.ipBack)
		m.cacheGen = 1
	}
	// Rebase the grow-under-pressure baselines: the cold misses that follow
	// an invalidation are churn, not capacity pressure, and must not ratchet
	// the caches toward their max size. Growth now requires a single cache
	// generation to accumulate the full miss budget.
	m.addMissMark = m.addStats.Misses
	m.maddMissMark = m.maddStats.Misses
	m.mulMissMark = m.mulStats.Misses
	m.mmMissMark = m.mmStats.Misses
	m.ipMissMark = m.ipStats.Misses
}

// UniqueTableSize returns the combined live-node count of both unique
// tables, used by callers to decide when a Cleanup is worthwhile.
func (m *Manager) UniqueTableSize() int {
	return m.vLiveCount() + m.mLiveCount()
}
