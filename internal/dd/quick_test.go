package dd

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// ampVector is a quick.Generator producing random (possibly sparse)
// amplitude vectors on 1..6 qubits.
type ampVector struct {
	n   int
	vec []complex128
}

func (ampVector) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 1 + rng.Intn(6)
	vec := make([]complex128, 1<<uint(n))
	nonzero := 0
	var norm float64
	for i := range vec {
		if rng.Float64() < 0.6 {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			vec[i] = complex(re, im)
			norm += re*re + im*im
			nonzero++
		}
	}
	if nonzero == 0 {
		vec[rng.Intn(len(vec))] = 1
		norm = 1
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range vec {
		vec[i] *= inv
	}
	return reflect.ValueOf(ampVector{n: n, vec: vec})
}

var quickCfg = &quick.Config{MaxCount: 200}

// Property: building a DD from amplitudes and reading it back is lossless
// (up to the interning tolerance).
func TestQuickRoundTrip(t *testing.T) {
	m := New()
	f := func(av ampVector) bool {
		e, err := m.FromAmplitudes(av.vec)
		if err != nil {
			return false
		}
		got := m.ToVector(e, av.n)
		for i := range got {
			if !approxEq(got[i], av.vec[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: every node of every constructed DD satisfies the normalization
// invariant |w0|² + |w1|² = 1.
func TestQuickNormalizationInvariant(t *testing.T) {
	m := New()
	f := func(av ampVector) bool {
		e, err := m.FromAmplitudes(av.vec)
		if err != nil {
			return false
		}
		for _, n := range CollectVNodes(e) {
			if math.Abs(n.E[0].W.Abs2()+n.E[1].W.Abs2()-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: Add is linear — amplitudes of Add(a, b) equal the sums.
func TestQuickAddLinearity(t *testing.T) {
	m := New()
	f := func(a, b ampVector) bool {
		if a.n != b.n {
			return true // only same-size registers are addable
		}
		ea, err := m.FromAmplitudes(a.vec)
		if err != nil {
			return false
		}
		eb, err := m.FromAmplitudes(b.vec)
		if err != nil {
			return false
		}
		sum := m.Add(ea, eb)
		got := m.ToVector(sum, a.n)
		for i := range got {
			if !approxEq(got[i], a.vec[i]+b.vec[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: |⟨a|b⟩|² is symmetric, bounded by 1 (unit vectors), and exactly
// 1 for a == b.
func TestQuickFidelityBounds(t *testing.T) {
	m := New()
	f := func(a, b ampVector) bool {
		ea, err := m.FromAmplitudes(a.vec)
		if err != nil {
			return false
		}
		if fSelf := m.Fidelity(ea, ea); math.Abs(fSelf-1) > 1e-9 {
			return false
		}
		if a.n != b.n {
			return true
		}
		eb, err := m.FromAmplitudes(b.vec)
		if err != nil {
			return false
		}
		fab := m.Fidelity(ea, eb)
		fba := m.Fidelity(eb, ea)
		return fab >= -1e-12 && fab <= 1+1e-9 && math.Abs(fab-fba) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: unique tables deduplicate — building the same vector twice
// yields pointer-identical roots.
func TestQuickCanonicity(t *testing.T) {
	m := New()
	f := func(av ampVector) bool {
		e1, err := m.FromAmplitudes(av.vec)
		if err != nil {
			return false
		}
		e2, err := m.FromAmplitudes(av.vec)
		if err != nil {
			return false
		}
		return e1.N == e2.N && e1.W == e2.W
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: sampling only ever returns basis states with non-zero
// probability.
func TestQuickSampleSupport(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(77))
	f := func(av ampVector) bool {
		e, err := m.FromAmplitudes(av.vec)
		if err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			idx := m.Sample(e, av.n, rng)
			if m.Probability(e, idx, av.n) < 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
