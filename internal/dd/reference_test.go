package dd

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/cnum"
)

// This file retains the original map-based memory system as a reference
// implementation: unique tables keyed on Go-map structs and unbounded map
// compute caches, with the same normalization arithmetic as the production
// Manager. The differential test below drives random circuits through both
// and asserts identical DD structure, amplitudes, and node counts, so any
// canonicity bug introduced by the hashed tables, bounded caches, or node
// pooling shows up as a divergence.

type refVNode struct {
	id uint64
	v  int32
	e  [2]refVEdge
}

type refVEdge struct {
	w *cnum.Value
	n *refVNode
}

type refMNode struct {
	id uint64
	v  int32
	e  [4]refMEdge
}

type refMEdge struct {
	w *cnum.Value
	n *refMNode
}

type refVKey struct {
	v      int32
	w0, w1 *cnum.Value
	n0, n1 *refVNode
}

type refMKey struct {
	v int32
	w [4]*cnum.Value
	n [4]*refMNode
}

type refAddKey struct {
	a, b *refVNode
	r    *cnum.Value
}

type refMulKey struct {
	m *refMNode
	v *refVNode
}

type refManager struct {
	cn        *cnum.Table
	vTerminal *refVNode
	mTerminal *refMNode
	vUnique   map[refVKey]*refVNode
	mUnique   map[refMKey]*refMNode
	addCache  map[refAddKey]refVEdge
	mulCache  map[refMulKey]refVEdge
	idChain   []refMEdge
	nextID    uint64
}

func newRefManager() *refManager {
	m := &refManager{
		cn:       cnum.NewTable(),
		vUnique:  make(map[refVKey]*refVNode),
		mUnique:  make(map[refMKey]*refMNode),
		addCache: make(map[refAddKey]refVEdge),
		mulCache: make(map[refMulKey]refVEdge),
	}
	m.vTerminal = &refVNode{id: m.newID(), v: TerminalVar}
	m.mTerminal = &refMNode{id: m.newID(), v: TerminalVar}
	m.idChain = []refMEdge{{w: m.cn.One, n: m.mTerminal}}
	return m
}

func (m *refManager) newID() uint64 {
	m.nextID++
	return m.nextID
}

func (m *refManager) vZero() refVEdge { return refVEdge{w: m.cn.Zero, n: m.vTerminal} }
func (m *refManager) mZero() refMEdge { return refMEdge{w: m.cn.Zero, n: m.mTerminal} }

func (m *refManager) vEdge(w complex128, n *refVNode) refVEdge {
	wv := m.cn.Lookup(w)
	if wv == m.cn.Zero {
		return m.vZero()
	}
	return refVEdge{w: wv, n: n}
}

func (m *refManager) mEdge(w complex128, n *refMNode) refMEdge {
	wv := m.cn.Lookup(w)
	if wv == m.cn.Zero {
		return m.mZero()
	}
	return refMEdge{w: wv, n: n}
}

func (m *refManager) scaleV(e refVEdge, w complex128) refVEdge {
	if e.w == m.cn.Zero || w == 0 {
		return m.vZero()
	}
	return m.vEdge(e.w.Complex()*w, e.n)
}

func (m *refManager) makeVNode(v int32, e0, e1 refVEdge) refVEdge {
	z0, z1 := e0.w == m.cn.Zero, e1.w == m.cn.Zero
	if z0 && z1 {
		return m.vZero()
	}
	w0, w1 := e0.w.Complex(), e1.w.Complex()
	mag := math.Sqrt(e0.w.Abs2() + e1.w.Abs2())
	var ne0, ne1 refVEdge
	var factor complex128
	if !z0 {
		phase := w0 / complex(e0.w.Abs(), 0)
		factor = complex(mag, 0) * phase
		ne0 = m.vEdge(complex(e0.w.Abs()/mag, 0), e0.n)
		ne1 = m.vEdge(w1/factor, e1.n)
	} else {
		phase := w1 / complex(e1.w.Abs(), 0)
		factor = complex(mag, 0) * phase
		ne0 = m.vZero()
		ne1 = m.vEdge(complex(e1.w.Abs()/mag, 0), e1.n)
	}
	key := refVKey{v: v, w0: ne0.w, w1: ne1.w, n0: ne0.n, n1: ne1.n}
	n, ok := m.vUnique[key]
	if !ok {
		n = &refVNode{id: m.newID(), v: v, e: [2]refVEdge{ne0, ne1}}
		m.vUnique[key] = n
	}
	return refVEdge{w: m.cn.Lookup(factor), n: n}
}

func (m *refManager) makeMNode(v int32, e [4]refMEdge) refMEdge {
	allZero := true
	maxIdx := -1
	maxMag := 0.0
	for i := range e {
		if e[i].w != m.cn.Zero {
			allZero = false
			if mag := e[i].w.Abs(); mag > maxMag {
				maxMag = mag
				maxIdx = i
			}
		}
	}
	if allZero {
		return m.mZero()
	}
	factor := e[maxIdx].w.Complex()
	var ne [4]refMEdge
	var key refMKey
	key.v = v
	for i := range e {
		if e[i].w == m.cn.Zero {
			ne[i] = m.mZero()
		} else if i == maxIdx {
			ne[i] = refMEdge{w: m.cn.One, n: e[i].n}
		} else {
			ne[i] = m.mEdge(e[i].w.Complex()/factor, e[i].n)
		}
		key.w[i] = ne[i].w
		key.n[i] = ne[i].n
	}
	n, ok := m.mUnique[key]
	if !ok {
		n = &refMNode{id: m.newID(), v: v, e: ne}
		m.mUnique[key] = n
	}
	return refMEdge{w: m.cn.Lookup(factor), n: n}
}

func (m *refManager) basisState(n int, bits uint64) refVEdge {
	e := refVEdge{w: m.cn.One, n: m.vTerminal}
	for q := 0; q < n; q++ {
		if bits>>uint(q)&1 == 0 {
			e = m.makeVNode(int32(q), e, m.vZero())
		} else {
			e = m.makeVNode(int32(q), m.vZero(), e)
		}
	}
	return e
}

func (m *refManager) add(a, b refVEdge) refVEdge {
	if a.w == m.cn.Zero {
		return b
	}
	if b.w == m.cn.Zero {
		return a
	}
	if a.n == b.n {
		return m.vEdge(a.w.Complex()+b.w.Complex(), a.n)
	}
	if a.n.v == TerminalVar {
		return m.vEdge(a.w.Complex()+b.w.Complex(), m.vTerminal)
	}
	if a.n.id > b.n.id {
		a, b = b, a
	}
	ratio := b.w.Complex() / a.w.Complex()
	key := refAddKey{a: a.n, b: b.n, r: m.cn.Lookup(ratio)}
	if res, ok := m.addCache[key]; ok {
		return m.scaleV(res, a.w.Complex())
	}
	var children [2]refVEdge
	for i := 0; i < 2; i++ {
		children[i] = m.add(a.n.e[i], m.scaleV(b.n.e[i], ratio))
	}
	res := m.makeVNode(a.n.v, children[0], children[1])
	m.addCache[key] = res
	return m.scaleV(res, a.w.Complex())
}

func (m *refManager) mulVec(op refMEdge, v refVEdge) refVEdge {
	if op.w == m.cn.Zero || v.w == m.cn.Zero {
		return m.vZero()
	}
	res := m.mulVecNodes(op.n, v.n)
	return m.scaleV(res, op.w.Complex()*v.w.Complex())
}

func (m *refManager) mulVecNodes(mn *refMNode, vn *refVNode) refVEdge {
	if mn.v == TerminalVar {
		return refVEdge{w: m.cn.One, n: m.vTerminal}
	}
	key := refMulKey{m: mn, v: vn}
	if res, ok := m.mulCache[key]; ok {
		return res
	}
	var children [2]refVEdge
	for r := 0; r < 2; r++ {
		p0 := m.mulVec(mn.e[2*r+0], vn.e[0])
		p1 := m.mulVec(mn.e[2*r+1], vn.e[1])
		children[r] = m.add(p0, p1)
	}
	res := m.makeVNode(mn.v, children[0], children[1])
	m.mulCache[key] = res
	return res
}

func (m *refManager) identity(n int) refMEdge {
	for len(m.idChain) <= n {
		k := len(m.idChain) - 1
		prev := m.idChain[k]
		next := m.makeMNode(int32(k), [4]refMEdge{prev, m.mZero(), m.mZero(), prev})
		m.idChain = append(m.idChain, next)
	}
	return m.idChain[n]
}

func (m *refManager) makeGateDD(n int, u [4]complex128, target int, controls ...Control) refMEdge {
	ctrl := make(map[int]bool, len(controls))
	for _, c := range controls {
		ctrl[c.Qubit] = c.Positive
	}
	em := [4]refMEdge{
		m.mEdge(u[0], m.mTerminal),
		m.mEdge(u[1], m.mTerminal),
		m.mEdge(u[2], m.mTerminal),
		m.mEdge(u[3], m.mTerminal),
	}
	zero := m.mZero()
	for q := 0; q < target; q++ {
		idBelow := m.identity(q)
		if positive, isCtrl := ctrl[q]; isCtrl {
			for i := 0; i < 4; i++ {
				diag := i == 0 || i == 3
				idPart := zero
				if diag {
					idPart = idBelow
				}
				if positive {
					em[i] = m.makeMNode(int32(q), [4]refMEdge{idPart, zero, zero, em[i]})
				} else {
					em[i] = m.makeMNode(int32(q), [4]refMEdge{em[i], zero, zero, idPart})
				}
			}
		} else {
			for i := 0; i < 4; i++ {
				em[i] = m.makeMNode(int32(q), [4]refMEdge{em[i], zero, zero, em[i]})
			}
		}
	}
	e := m.makeMNode(int32(target), em)
	for q := target + 1; q < n; q++ {
		idBelow := m.identity(q)
		if positive, isCtrl := ctrl[q]; isCtrl {
			if positive {
				e = m.makeMNode(int32(q), [4]refMEdge{idBelow, zero, zero, e})
			} else {
				e = m.makeMNode(int32(q), [4]refMEdge{e, zero, zero, idBelow})
			}
		} else {
			e = m.makeMNode(int32(q), [4]refMEdge{e, zero, zero, e})
		}
	}
	return e
}

func (m *refManager) normalizeRoot(e refVEdge) refVEdge {
	if e.w == m.cn.Zero {
		return e
	}
	mag := e.w.Abs()
	if mag == 0 {
		return m.vZero()
	}
	return m.vEdge(e.w.Complex()/complex(mag, 0), e.n)
}

func (m *refManager) toVector(e refVEdge, n int) []complex128 {
	out := make([]complex128, 1<<uint(n))
	var fill func(w complex128, node *refVNode, level int, base uint64)
	fill = func(w complex128, node *refVNode, level int, base uint64) {
		if w == 0 {
			return
		}
		if level < 0 {
			out[base] = w
			return
		}
		fill(w*node.e[0].w.Complex(), node.e[0].n, level-1, base)
		fill(w*node.e[1].w.Complex(), node.e[1].n, level-1, base|1<<uint(level))
	}
	fill(e.w.Complex(), e.n, n-1, 0)
	return out
}

func (m *refManager) countNodes(e refVEdge) int {
	seen := make(map[*refVNode]struct{})
	var walk func(n *refVNode)
	walk = func(n *refVNode) {
		if n == nil || n.v == TerminalVar {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(n.e[0].n)
		walk(n.e[1].n)
	}
	walk(e.n)
	return len(seen)
}

// refGate is one gate of a generated random circuit.
type refGate struct {
	u      [4]complex128
	target int
	ctrl   []Control
}

func randomCircuitGates(rng *rand.Rand, n, count int) []refGate {
	gateH := [4]complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	}
	gates := make([]refGate, count)
	for i := range gates {
		switch rng.Intn(4) {
		case 0:
			gates[i] = refGate{u: gateH, target: rng.Intn(n)}
		case 1:
			theta := 2 * math.Pi * rng.Float64()
			gates[i] = refGate{
				u:      [4]complex128{1, 0, 0, cmplx.Exp(complex(0, theta))},
				target: rng.Intn(n),
			}
		case 2:
			theta := 2 * math.Pi * rng.Float64()
			c, s := math.Cos(theta/2), math.Sin(theta/2)
			gates[i] = refGate{
				u:      [4]complex128{complex(c, 0), complex(0, -s), complex(0, -s), complex(c, 0)},
				target: rng.Intn(n),
			}
		default:
			t := rng.Intn(n)
			c := rng.Intn(n - 1)
			if c >= t {
				c++
			}
			gates[i] = refGate{u: [4]complex128{0, 1, 1, 0}, target: t, ctrl: []Control{PosControl(c)}}
		}
	}
	return gates
}

// assertStructureIsomorphic walks both DDs in lockstep, asserting the same
// shape: matching variables, matching zero/terminal children, and child
// weights equal within the interning tolerance (the two managers intern
// independently, so a weight's canonical representative can differ by tol).
func assertStructureIsomorphic(t *testing.T, got VEdge, want refVEdge, cn *cnum.Table) {
	t.Helper()
	const tol = 1e-9
	seen := make(map[*VNode]*refVNode)
	var walk func(g *VNode, w *refVNode, path string)
	walk = func(g *VNode, w *refVNode, path string) {
		if g.IsTerminal() != (w.v == TerminalVar) {
			t.Fatalf("%s: terminal mismatch", path)
		}
		if g.IsTerminal() {
			return
		}
		if g.Var != w.v {
			t.Fatalf("%s: var %d != reference %d", path, g.Var, w.v)
		}
		if prev, ok := seen[g]; ok {
			if prev != w {
				t.Fatalf("%s: sharing mismatch: node visited with two reference identities", path)
			}
			return
		}
		seen[g] = w
		for c := 0; c < 2; c++ {
			gw, ww := g.E[c].W.Complex(), w.e[c].w.Complex()
			if cmplx.Abs(gw-ww) > tol {
				t.Fatalf("%s child %d: weight %v != reference %v", path, c, gw, ww)
			}
			gz := g.E[c].W == cn.Zero
			wz := w.e[c].w.Abs2() == 0
			if gz != wz {
				t.Fatalf("%s child %d: zero-edge mismatch", path, c)
			}
			if !gz {
				walk(g.E[c].N, w.e[c].n, fmt.Sprintf("%s/%d", path, c))
			}
		}
	}
	if cmplx.Abs(got.W.Complex()-want.w.Complex()) > tol {
		t.Fatalf("root weight %v != reference %v", got.W.Complex(), want.w.Complex())
	}
	walk(got.N, want.n, "root")
}

// TestDifferentialAgainstMapReference drives random circuits through the
// production tables and the retained map-based reference, asserting equal
// node counts, isomorphic structure, and matching amplitudes after every
// few gates and at the end.
func TestDifferentialAgainstMapReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(4) // 3..6 qubits
			gates := randomCircuitGates(rng, n, 40)

			m := New()
			ref := newRefManager()
			state := m.BasisState(n, 0)
			refState := ref.basisState(n, 0)

			check := func(step int) {
				t.Helper()
				if got, want := CountVNodes(state), ref.countNodes(refState); got != want {
					t.Fatalf("step %d: node count %d != reference %d", step, got, want)
				}
				assertStructureIsomorphic(t, state, refState, m.CN)
				got := m.ToVector(state, n)
				want := ref.toVector(refState, n)
				for i := range got {
					if cmplx.Abs(got[i]-want[i]) > 1e-9 {
						t.Fatalf("step %d: amplitude[%d] %v != reference %v", step, i, got[i], want[i])
					}
				}
			}

			for i, g := range gates {
				op := m.MakeGateDD(n, g.u, g.target, g.ctrl...)
				state = m.MulVec(op, state)
				state = m.NormalizeRootWeight(state)

				refOp := ref.makeGateDD(n, g.u, g.target, g.ctrl...)
				refState = ref.mulVec(refOp, refState)
				refState = ref.normalizeRoot(refState)

				if i%10 == 9 {
					check(i)
				}
			}
			check(len(gates))

			// A Cleanup keeping only the final state must not change it:
			// re-check structure and amplitudes after the sweep, and again
			// after more gates run on the recycled pool.
			m.Cleanup([]VEdge{state}, nil)
			check(len(gates))
			for i, g := range gates[:10] {
				op := m.MakeGateDD(n, g.u, g.target, g.ctrl...)
				state = m.MulVec(op, state)
				state = m.NormalizeRootWeight(state)
				refOp := ref.makeGateDD(n, g.u, g.target, g.ctrl...)
				refState = ref.mulVec(refOp, refState)
				refState = ref.normalizeRoot(refState)
				_ = i
			}
			check(len(gates) + 10)
		})
	}
}
