package dd

import "fmt"

// MakePermutationDD builds the operation DD of the permutation matrix P with
// P[perm[x]][x] = 1 on n = log2(len(perm)) qubits. Permutation matrices are
// how the paper's Shor instances realize the modular multiplications
// U_{a^{2^k} mod N} directly as decision diagrams (cf. [31]).
//
// The construction partitions the non-zero entries (perm[x], x) into matrix
// quadrants recursively; all-zero blocks short-circuit to the shared zero
// edge, so the cost is O(n·2^n) rather than O(4^n).
func (m *Manager) MakePermutationDD(perm []int) (MEdge, error) {
	dim := len(perm)
	n := 0
	for 1<<uint(n) < dim {
		n++
	}
	if dim == 0 || 1<<uint(n) != dim {
		return MEdge{}, fmt.Errorf("dd: permutation length %d is not a power of two", dim)
	}
	seen := make([]bool, dim)
	for x, y := range perm {
		if y < 0 || y >= dim {
			return MEdge{}, fmt.Errorf("dd: perm[%d] = %d out of range", x, y)
		}
		if seen[y] {
			return MEdge{}, fmt.Errorf("dd: perm is not a bijection (row %d repeated)", y)
		}
		seen[y] = true
	}
	points := make([]permPoint, dim)
	for x := 0; x < dim; x++ {
		points[x] = permPoint{col: x, row: perm[x]}
	}
	if n == 0 {
		return MEdge{W: m.CN.One, N: m.mTerminal}, nil
	}
	return m.permBlock(int32(n-1), points), nil
}

type permPoint struct{ col, row int }

// permBlock builds the 2^(level+1)-dimensional block containing the given
// non-zero points, whose coordinates are relative to the block origin.
func (m *Manager) permBlock(level int32, points []permPoint) MEdge {
	if len(points) == 0 {
		return m.MZero()
	}
	if level < 0 {
		// Single cell; a non-empty block at this size is exactly one 1-entry.
		return MEdge{W: m.CN.One, N: m.mTerminal}
	}
	half := 1 << uint(level)
	var quads [4][]permPoint
	for _, p := range points {
		rBit, cBit := 0, 0
		r, c := p.row, p.col
		if r >= half {
			rBit = 1
			r -= half
		}
		if c >= half {
			cBit = 1
			c -= half
		}
		idx := rBit<<1 | cBit
		quads[idx] = append(quads[idx], permPoint{col: c, row: r})
	}
	var e [4]MEdge
	for i := 0; i < 4; i++ {
		e[i] = m.permBlock(level-1, quads[i])
	}
	return m.MakeMNode(level, e)
}
