package dd

import (
	"math"
	"math/rand"
	"testing"
)

func TestBasisStates(t *testing.T) {
	m := New()
	for n := 1; n <= 5; n++ {
		for bits := uint64(0); bits < 1<<uint(n); bits++ {
			e := m.BasisState(n, bits)
			vec := m.ToVector(e, n)
			for i, a := range vec {
				want := complex128(0)
				if uint64(i) == bits {
					want = 1
				}
				if !approxEq(a, want, 1e-12) {
					t.Fatalf("n=%d bits=%d: amp[%d]=%v want %v", n, bits, i, a, want)
				}
			}
			if got := CountVNodes(e); got != n {
				t.Errorf("basis state on %d qubits has %d nodes, want %d", n, got, n)
			}
		}
	}
}

func TestBasisStateSharing(t *testing.T) {
	m := New()
	a := m.BasisState(4, 0b0101)
	b := m.BasisState(4, 0b0101)
	if a.N != b.N || a.W != b.W {
		t.Error("identical basis states are not the same edge (unique table broken)")
	}
}

func TestFromAmplitudesRoundTrip(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 8; n++ {
		vec := randomAmplitudes(n, rng)
		e, err := m.FromAmplitudes(vec)
		if err != nil {
			t.Fatal(err)
		}
		got := m.ToVector(e, n)
		vecApproxEq(t, got, vec, 1e-9, "round trip")
	}
}

func TestFromAmplitudesRejectsBadLength(t *testing.T) {
	m := New()
	if _, err := m.FromAmplitudes(make([]complex128, 3)); err == nil {
		t.Error("length 3 accepted")
	}
	if _, err := m.FromAmplitudes(nil); err == nil {
		t.Error("empty vector accepted")
	}
}

func TestAmplitudeMatchesToVector(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(2))
	n := 6
	vec := randomSparseAmplitudes(n, 0.3, rng)
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	full := m.ToVector(e, n)
	for i := range full {
		if got := m.Amplitude(e, uint64(i), n); !approxEq(got, full[i], 1e-12) {
			t.Fatalf("Amplitude(%d)=%v, ToVector=%v", i, got, full[i])
		}
	}
}

func TestNodeNormalizationInvariant(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(3))
	vec := randomAmplitudes(7, rng)
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range CollectVNodes(e) {
		sum := n.E[0].W.Abs2() + n.E[1].W.Abs2()
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("node %d children norm² = %v, want 1", n.ID(), sum)
		}
		// Canonical phase: first non-zero child weight is real positive.
		for c := 0; c < 2; c++ {
			w := n.E[c].W
			if w.Abs2() == 0 {
				continue
			}
			if !(w.Im == 0 && w.Re > 0) && c == 0 {
				t.Fatalf("node %d first child weight %v is not real positive", n.ID(), w)
			}
			break
		}
	}
}

func TestSharedStructureIsShared(t *testing.T) {
	// The state of the paper's Fig. 1c/1d: (|101⟩+|111⟩)/√2 has a repeated
	// q0 sub-structure that must be shared.
	m := New()
	vec := make([]complex128, 8)
	vec[0b101] = complex(1/math.Sqrt2, 0)
	vec[0b111] = complex(1/math.Sqrt2, 0)
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1d has exactly 3 nodes: q2, q1, q0.
	if got := CountVNodes(e); got != 3 {
		t.Errorf("Fig. 1d state has %d nodes, want 3:\n%s", got, Render(e))
	}
}

func TestPaperFigure1State(t *testing.T) {
	// Fig. 1a: [1/√10, 0, 0, -1/√10, 0, 2/√10, 0, 2/√10] over |q2 q1 q0⟩.
	m := New()
	s := 1 / math.Sqrt(10)
	vec := []complex128{
		complex(s, 0), 0, 0, complex(-s, 0),
		0, complex(2*s, 0), 0, complex(2*s, 0),
	}
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's drawing (Fig. 1b) shows 6 nodes, but it leaves one q0 node
	// unshared for readability: the |1⟩-only q0 structure appears both under
	// the left and the right q1 node. With maximal sharing (which unique
	// tables enforce) the canonical DD has 5 nodes: one q2, two q1, two q0.
	if got := CountVNodes(e); got != 5 {
		t.Errorf("Fig. 1b DD has %d nodes, want 5 (maximally shared):\n%s", got, Render(e))
	}
	counts := LevelCounts(e, 3)
	if counts[2] != 1 || counts[1] != 2 || counts[0] != 2 {
		t.Errorf("level counts = %v, want [2 2 1] (q0..q2)", counts)
	}
	// Example 4: amplitude of |011⟩ is -1/√10.
	if got := m.Amplitude(e, 0b011, 3); !approxEq(got, complex(-s, 0), 1e-12) {
		t.Errorf("amplitude(|011⟩) = %v, want %v", got, -s)
	}
	got := m.ToVector(e, 3)
	vecApproxEq(t, got, vec, 1e-12, "Fig. 1a")
}

func TestScaleAndNormalizeRoot(t *testing.T) {
	m := New()
	e := m.BasisState(3, 5)
	scaled := m.ScaleV(e, complex(0.5, 0.5))
	if math.Abs(scaled.W.Abs()-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("scaled weight magnitude %v", scaled.W.Abs())
	}
	normed := m.NormalizeRootWeight(scaled)
	if math.Abs(normed.W.Abs()-1) > 1e-12 {
		t.Errorf("normalized weight magnitude %v, want 1", normed.W.Abs())
	}
	// Phase must be preserved: 0.5+0.5i has phase e^{iπ/4}.
	want := complex(1/math.Sqrt2, 1/math.Sqrt2)
	if !approxEq(normed.W.Complex(), want, 1e-12) {
		t.Errorf("normalized weight %v, want %v", normed.W.Complex(), want)
	}
	if m.ScaleV(e, 0) != m.VZero() {
		t.Error("scale by zero did not produce canonical zero edge")
	}
}

func TestMakeVNodeZeroChildren(t *testing.T) {
	m := New()
	z := m.MakeVNode(0, m.VZero(), m.VZero())
	if !m.IsVZero(z) {
		t.Error("node with two zero children is not the zero edge")
	}
}

func TestStatsCounters(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(4))
	vec := randomAmplitudes(5, rng)
	if _, err := m.FromAmplitudes(vec); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.VUniqueSize == 0 || st.VNodesCreated == 0 || st.ComplexValues < 2 {
		t.Errorf("stats look empty: %+v", st)
	}
}

func TestNumQubits(t *testing.T) {
	m := New()
	if NumQubits(m.VZero()) != 0 {
		t.Error("zero edge qubits != 0")
	}
	if NumQubits(m.BasisState(7, 0)) != 7 {
		t.Error("basis state qubit count wrong")
	}
}
