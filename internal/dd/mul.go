package dd

// MulVec applies the operation DD op to the state DD v (matrix-vector
// multiplication), the core simulation step of Section II-A performed
// directly on decision diagrams.
func (m *Manager) MulVec(op MEdge, v VEdge) VEdge {
	if m.IsMZero(op) || m.IsVZero(v) {
		return m.VZero()
	}
	res := m.mulVecNodes(op.N, v.N)
	return m.ScaleV(res, op.W.Complex()*v.W.Complex())
}

// mulVecNodes multiplies weight-stripped nodes; results are cached on the
// node-pointer pair, which is sound because the outer weights were factored
// out by MulVec.
func (m *Manager) mulVecNodes(mn *MNode, vn *VNode) VEdge {
	if mn.IsTerminal() {
		if !vn.IsTerminal() {
			panic("dd: MulVec level mismatch")
		}
		return VEdge{W: m.CN.One, N: m.vTerminal}
	}
	if mn.Var != vn.Var {
		panic("dd: MulVec level mismatch")
	}
	if res, ok := m.mulLookup(mn, vn); ok {
		return res
	}
	var children [2]VEdge
	for r := 0; r < 2; r++ {
		p0 := m.MulVec(mn.E[2*r+0], vn.E[0])
		p1 := m.MulVec(mn.E[2*r+1], vn.E[1])
		children[r] = m.Add(p0, p1)
	}
	res := m.MakeVNode(mn.Var, children[0], children[1])
	m.mulStore(mn, vn, res)
	return res
}

// MulMat multiplies two operation DDs: result = a·b (apply b first). This is
// the matrix-matrix alternative studied in Zulehner/Wille DATE 2019 [31] and
// is used by the mat-mat ablation bench.
func (m *Manager) MulMat(a, b MEdge) MEdge {
	if m.IsMZero(a) || m.IsMZero(b) {
		return m.MZero()
	}
	res := m.mulMatNodes(a.N, b.N)
	return m.ScaleM(res, a.W.Complex()*b.W.Complex())
}

func (m *Manager) mulMatNodes(an, bn *MNode) MEdge {
	if an.IsTerminal() {
		if !bn.IsTerminal() {
			panic("dd: MulMat level mismatch")
		}
		return MEdge{W: m.CN.One, N: m.mTerminal}
	}
	if an.Var != bn.Var {
		panic("dd: MulMat level mismatch")
	}
	if res, ok := m.mmLookup(an, bn); ok {
		return res
	}
	var children [4]MEdge
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			// (a·b)[r][c] = Σ_k a[r][k]·b[k][c]
			p0 := m.MulMat(an.E[2*r+0], bn.E[0+c])
			p1 := m.MulMat(an.E[2*r+1], bn.E[2+c])
			children[2*r+c] = m.AddMat(p0, p1)
		}
	}
	res := m.MakeMNode(an.Var, children)
	m.mmStore(an, bn, res)
	return res
}
