package dd

import "fmt"

// Identity returns the identity operation DD on n qubits. The result is
// cached inside the manager.
func (m *Manager) Identity(n int) MEdge {
	if n < 0 {
		panic("dd: Identity on negative qubit count")
	}
	for len(m.idChain) <= n {
		k := len(m.idChain) - 1
		prev := m.idChain[k]
		next := m.MakeMNode(int32(k), [4]MEdge{prev, m.MZero(), m.MZero(), prev})
		m.idChain = append(m.idChain, next)
	}
	return m.idChain[n]
}

// FromMatrix builds a matrix DD from a dense 2^n × 2^n matrix given in
// row-major order. Intended for tests and small operators.
func (m *Manager) FromMatrix(mat [][]complex128) (MEdge, error) {
	dim := len(mat)
	n := 0
	for 1<<uint(n) < dim {
		n++
	}
	if dim == 0 || 1<<uint(n) != dim {
		return MEdge{}, fmt.Errorf("dd: matrix dimension %d is not a power of two", dim)
	}
	for i, row := range mat {
		if len(row) != dim {
			return MEdge{}, fmt.Errorf("dd: matrix row %d has length %d, want %d", i, len(row), dim)
		}
	}
	if n == 0 {
		return m.mEdge(mat[0][0], m.mTerminal), nil
	}
	return m.fromMat(int32(n-1), 0, 0, mat), nil
}

func (m *Manager) fromMat(level int32, row, col int, mat [][]complex128) MEdge {
	if level < 0 {
		return m.mEdge(mat[row][col], m.mTerminal)
	}
	size := 1 << uint(level)
	var e [4]MEdge
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			e[2*r+c] = m.fromMat(level-1, row+r*size, col+c*size, mat)
		}
	}
	return m.MakeMNode(level, e)
}

// ToMatrix expands the n-qubit operation into a dense matrix. Intended for
// tests; cost is O(4^n).
func (m *Manager) ToMatrix(e MEdge, n int) [][]complex128 {
	dim := 1 << uint(n)
	out := make([][]complex128, dim)
	for i := range out {
		out[i] = make([]complex128, dim)
	}
	m.fillMatrix(e.W.Complex(), e.N, n-1, 0, 0, out)
	return out
}

func (m *Manager) fillMatrix(w complex128, node *MNode, level, row, col int, out [][]complex128) {
	if w == 0 {
		return
	}
	if level < 0 {
		out[row][col] = w
		return
	}
	size := 1 << uint(level)
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			child := node.E[2*r+c]
			m.fillMatrix(w*child.W.Complex(), child.N, level-1, row+r*size, col+c*size, out)
		}
	}
}

// ConjugateTranspose returns the conjugate transpose (adjoint) of the
// operation DD.
func (m *Manager) ConjugateTranspose(e MEdge) MEdge {
	res := m.adjointNode(e.N)
	w := e.W.Complex()
	return m.ScaleM(res, complex(real(w), -imag(w)))
}

func (m *Manager) adjointNode(n *MNode) MEdge {
	if n.IsTerminal() {
		return MEdge{W: m.CN.One, N: m.mTerminal}
	}
	var e [4]MEdge
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			child := n.E[2*r+c]
			sub := m.adjointNode(child.N)
			w := child.W.Complex()
			// Transpose swaps (r,c); adjoint also conjugates.
			e[2*c+r] = m.ScaleM(sub, complex(real(w), -imag(w)))
		}
	}
	return m.MakeMNode(n.Var, e)
}
