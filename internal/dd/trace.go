package dd

// MTrace returns the trace of the operation DD e: Σ_i e[i][i]. For a density
// matrix this is the total probability mass, which exact channel application
// preserves at 1 (the density backend asserts this invariant after every
// superoperator). The traversal is memoized per distinct node, so the cost is
// linear in the DD size rather than the 2^n diagonal length.
func (m *Manager) MTrace(e MEdge) complex128 {
	if m.IsMZero(e) {
		return 0
	}
	if m.traceMemo == nil {
		m.traceMemo = make(map[*MNode]complex128, 256)
	} else {
		clear(m.traceMemo)
	}
	return e.W.Complex() * m.traceNode(e.N)
}

// traceNode computes the trace of the weight-stripped subtree under n. Only
// the diagonal quadrants (E[0]: both bits 0, E[3]: both bits 1) contribute.
func (m *Manager) traceNode(n *MNode) complex128 {
	if n.IsTerminal() {
		return 1
	}
	if t, ok := m.traceMemo[n]; ok {
		return t
	}
	var sum complex128
	for _, c := range [2]int{0, 3} {
		child := n.E[c]
		if m.IsMZero(child) {
			continue
		}
		sum += child.W.Complex() * m.traceNode(child.N)
	}
	m.traceMemo[n] = sum
	return sum
}

// CountM is CountMNodes against a visited set retained on the manager, so
// the density backend's per-gate DD size tracking allocates nothing at
// steady state (the matrix counterpart of CountV). Not reentrant.
func (m *Manager) CountM(e MEdge) int {
	if m.visitM == nil {
		m.visitM = make(map[*MNode]struct{}, 256)
	} else {
		clear(m.visitM)
	}
	m.countMWalk(e.N)
	return len(m.visitM)
}

func (m *Manager) countMWalk(n *MNode) {
	if n == nil || n.IsTerminal() {
		return
	}
	if _, ok := m.visitM[n]; ok {
		return
	}
	m.visitM[n] = struct{}{}
	for i := 0; i < 4; i++ {
		m.countMWalk(n.E[i].N)
	}
}

// OuterProduct builds the matrix DD |a⟩⟨b| from two state DDs over the same
// qubits. With a == b this is the density matrix of a pure state, the bridge
// between the statevector and density representations (the noiseless
// differential tests compare U ρ U† evolution against the outer product of
// the statevector result). Memoized on node pairs, so shared state structure
// stays shared in the product.
func (m *Manager) OuterProduct(a, b VEdge) MEdge {
	if m.IsVZero(a) || m.IsVZero(b) {
		return m.MZero()
	}
	memo := make(map[[2]*VNode]MEdge)
	res := m.outerNodes(a.N, b.N, memo)
	wb := b.W.Complex()
	return m.ScaleM(res, a.W.Complex()*complex(real(wb), -imag(wb)))
}

func (m *Manager) outerNodes(an, bn *VNode, memo map[[2]*VNode]MEdge) MEdge {
	if an.IsTerminal() {
		if !bn.IsTerminal() {
			panic("dd: OuterProduct level mismatch")
		}
		return MEdge{W: m.CN.One, N: m.mTerminal}
	}
	if an.Var != bn.Var {
		panic("dd: OuterProduct level mismatch")
	}
	key := [2]*VNode{an, bn}
	if res, ok := memo[key]; ok {
		return res
	}
	var e [4]MEdge
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			ea, eb := an.E[r], bn.E[c]
			if m.IsVZero(ea) || m.IsVZero(eb) {
				e[2*r+c] = m.MZero()
				continue
			}
			sub := m.outerNodes(ea.N, eb.N, memo)
			wb := eb.W.Complex()
			e[2*r+c] = m.ScaleM(sub, ea.W.Complex()*complex(real(wb), -imag(wb)))
		}
	}
	res := m.MakeMNode(an.Var, e)
	memo[key] = res
	return res
}
