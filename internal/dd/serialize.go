package dd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary serialization of state DDs. The format is a topologically sorted
// node list (children before parents), each node carrying its variable and
// two weighted child references; node references are indices into the list,
// with index 0 reserved for the terminal. Weights are float64 pairs. The
// root edge weight and node reference close the stream.
//
// Serialization preserves structure exactly, so a round trip through
// Serialize/Deserialize reproduces the same amplitudes (up to the weight
// table's interning tolerance) and the same node count.

const serializeMagic uint32 = 0xDD5717E5

// Serialize writes the state DD to w.
func (m *Manager) Serialize(w io.Writer, e VEdge) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, serializeMagic); err != nil {
		return err
	}

	nodes := CollectVNodes(e)
	// Children before parents: ascending variable order works because
	// edges always point one level down.
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Var != nodes[j].Var {
			return nodes[i].Var < nodes[j].Var
		}
		return nodes[i].id < nodes[j].id
	})
	index := make(map[*VNode]uint32, len(nodes)+1)
	index[m.vTerminal] = 0
	for i, n := range nodes {
		index[n] = uint32(i + 1)
	}

	if err := binary.Write(bw, binary.LittleEndian, uint32(len(nodes))); err != nil {
		return err
	}
	for _, n := range nodes {
		if err := binary.Write(bw, binary.LittleEndian, n.Var); err != nil {
			return err
		}
		for c := 0; c < 2; c++ {
			child := n.E[c]
			ref, ok := index[child.N]
			if !ok {
				return fmt.Errorf("dd: serialize: dangling child reference")
			}
			if err := binary.Write(bw, binary.LittleEndian, ref); err != nil {
				return err
			}
			if err := writeWeight(bw, child.W.Complex()); err != nil {
				return err
			}
		}
	}
	// Root edge.
	ref, ok := index[e.N]
	if !ok {
		return fmt.Errorf("dd: serialize: root not collected")
	}
	if err := binary.Write(bw, binary.LittleEndian, ref); err != nil {
		return err
	}
	if err := writeWeight(bw, e.W.Complex()); err != nil {
		return err
	}
	return bw.Flush()
}

// Deserialize reads a state DD written by Serialize into this manager,
// re-interning weights and nodes (so structure sharing with existing DDs is
// re-established).
func (m *Manager) Deserialize(r io.Reader) (VEdge, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return VEdge{}, err
	}
	if magic != serializeMagic {
		return VEdge{}, fmt.Errorf("dd: deserialize: bad magic %#x", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return VEdge{}, err
	}
	if count > 1<<28 {
		return VEdge{}, fmt.Errorf("dd: deserialize: implausible node count %d", count)
	}
	edges := make([]VEdge, count+1)
	edges[0] = VEdge{W: m.CN.One, N: m.vTerminal}
	for i := uint32(1); i <= count; i++ {
		var v int32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return VEdge{}, err
		}
		var children [2]VEdge
		for c := 0; c < 2; c++ {
			var ref uint32
			if err := binary.Read(br, binary.LittleEndian, &ref); err != nil {
				return VEdge{}, err
			}
			if ref >= i {
				return VEdge{}, fmt.Errorf("dd: deserialize: forward reference %d at node %d", ref, i)
			}
			w, err := readWeight(br)
			if err != nil {
				return VEdge{}, err
			}
			if w == 0 {
				children[c] = m.VZero()
			} else {
				children[c] = m.ScaleV(edges[ref], w)
			}
		}
		// MakeVNode renormalizes; serialized nodes are already canonical so
		// the outgoing weight is ≈1 and folds into the parent edge weight.
		edges[i] = m.MakeVNode(v, children[0], children[1])
	}
	var rootRef uint32
	if err := binary.Read(br, binary.LittleEndian, &rootRef); err != nil {
		return VEdge{}, err
	}
	if int(rootRef) >= len(edges) {
		return VEdge{}, fmt.Errorf("dd: deserialize: root reference %d out of range", rootRef)
	}
	w, err := readWeight(br)
	if err != nil {
		return VEdge{}, err
	}
	return m.ScaleV(edges[rootRef], w), nil
}

func writeWeight(w io.Writer, c complex128) error {
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(real(c))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, math.Float64bits(imag(c)))
}

func readWeight(r io.Reader) (complex128, error) {
	var re, im uint64
	if err := binary.Read(r, binary.LittleEndian, &re); err != nil {
		return 0, err
	}
	if err := binary.Read(r, binary.LittleEndian, &im); err != nil {
		return 0, err
	}
	return complex(math.Float64frombits(re), math.Float64frombits(im)), nil
}
