package dd

import (
	"fmt"
	"math"
)

// ZeroState returns the n-qubit basis state |0...0⟩.
func (m *Manager) ZeroState(n int) VEdge {
	return m.BasisState(n, 0)
}

// BasisState returns the n-qubit computational basis state |bits⟩, where bit
// q of bits is the value of qubit q (placed at the qubit's level under the
// manager's variable order).
func (m *Manager) BasisState(n int, bits uint64) VEdge {
	if n <= 0 || n > 63 {
		panic(fmt.Sprintf("dd: BasisState qubit count %d out of range", n))
	}
	e := VEdge{W: m.CN.One, N: m.vTerminal}
	for l := 0; l < n; l++ {
		if bits>>uint(m.LevelQubit(l))&1 == 0 {
			e = m.MakeVNode(int32(l), e, m.VZero())
		} else {
			e = m.MakeVNode(int32(l), m.VZero(), e)
		}
	}
	return e
}

// FromAmplitudes builds a state DD from a dense amplitude vector whose length
// must be a power of two. The vector is not required to be normalized; the
// norm is folded into the root weight.
func (m *Manager) FromAmplitudes(vec []complex128) (VEdge, error) {
	n := 0
	for 1<<uint(n) < len(vec) {
		n++
	}
	if len(vec) == 0 || 1<<uint(n) != len(vec) {
		return VEdge{}, fmt.Errorf("dd: amplitude vector length %d is not a power of two", len(vec))
	}
	if n == 0 {
		return m.vEdge(vec[0], m.vTerminal), nil
	}
	return m.fromAmps(int32(n-1), 0, vec), nil
}

func (m *Manager) fromAmps(level int32, base uint64, vec []complex128) VEdge {
	if level < 0 {
		return m.vEdge(vec[base], m.vTerminal)
	}
	bit := uint64(1) << uint(m.LevelQubit(int(level)))
	e0 := m.fromAmps(level-1, base, vec)
	e1 := m.fromAmps(level-1, base|bit, vec)
	return m.MakeVNode(level, e0, e1)
}

// NumQubits returns the number of qubits spanned by the state edge (0 for
// zero/terminal edges).
func NumQubits(e VEdge) int {
	if e.N == nil || e.N.IsTerminal() {
		return 0
	}
	return int(e.N.Var) + 1
}

// Amplitude returns the amplitude of basis state idx in the n-qubit state e,
// by multiplying the edge weights along the path (Example 4 of the paper).
func (m *Manager) Amplitude(e VEdge, idx uint64, n int) complex128 {
	w := e.W.Complex()
	node := e.N
	for l := n - 1; l >= 0; l-- {
		if w == 0 {
			return 0
		}
		if node.IsTerminal() {
			panic("dd: Amplitude reached terminal early (qubit count mismatch)")
		}
		child := node.E[idx>>uint(m.LevelQubit(l))&1]
		w *= child.W.Complex()
		node = child.N
	}
	return w
}

// ToVector expands the n-qubit state into a dense amplitude vector. Intended
// for tests and small systems; cost is O(2^n).
func (m *Manager) ToVector(e VEdge, n int) []complex128 {
	out := make([]complex128, 1<<uint(n))
	m.fillVector(e.W.Complex(), e.N, n-1, 0, out)
	return out
}

func (m *Manager) fillVector(w complex128, node *VNode, level int, base uint64, out []complex128) {
	if w == 0 {
		return
	}
	if level < 0 {
		out[base] = w
		return
	}
	m.fillVector(w*node.E[0].W.Complex(), node.E[0].N, level-1, base, out)
	m.fillVector(w*node.E[1].W.Complex(), node.E[1].N, level-1, base|1<<uint(m.LevelQubit(level)), out)
}

// Norm returns the 2-norm of the state ‖e‖ = sqrt(⟨e|e⟩).
func (m *Manager) Norm(e VEdge) float64 {
	ip := m.InnerProduct(e, e)
	return math.Sqrt(real(ip))
}
