package dd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

func TestAddMatchesDense(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		va := randomSparseAmplitudes(n, 0.5, rng)
		vb := randomSparseAmplitudes(n, 0.5, rng)
		ea, err := m.FromAmplitudes(va)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := m.FromAmplitudes(vb)
		if err != nil {
			t.Fatal(err)
		}
		sum := m.Add(ea, eb)
		got := m.ToVector(sum, n)
		want := make([]complex128, len(va))
		for i := range want {
			want[i] = va[i] + vb[i]
		}
		vecApproxEq(t, got, want, 1e-9, "Add")
	}
}

func TestAddZeroIdentity(t *testing.T) {
	m := New()
	e := m.BasisState(3, 2)
	if got := m.Add(e, m.VZero()); got != e {
		t.Error("a + 0 != a")
	}
	if got := m.Add(m.VZero(), e); got != e {
		t.Error("0 + a != a")
	}
}

func TestAddCancellation(t *testing.T) {
	m := New()
	e := m.BasisState(3, 2)
	neg := m.ScaleV(e, -1)
	if got := m.Add(e, neg); !m.IsVZero(got) {
		t.Errorf("a + (-a) = %v, want zero edge", got)
	}
}

func TestAddCommutative(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(5)
		ea, _ := m.FromAmplitudes(randomSparseAmplitudes(n, 0.4, rng))
		eb, _ := m.FromAmplitudes(randomSparseAmplitudes(n, 0.4, rng))
		ab := m.Add(ea, eb)
		ba := m.Add(eb, ea)
		if ab.N != ba.N || !approxEq(ab.W.Complex(), ba.W.Complex(), 1e-9) {
			t.Fatalf("Add not commutative structurally: %v vs %v", ab, ba)
		}
	}
}

func TestGateDDMatchesDense(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(12))
	mats := map[string][4]complex128{
		"X": gateX, "Y": gateY, "Z": gateZ, "H": gateH, "S": gateS, "T": gateT,
	}
	for name, u := range mats {
		for n := 1; n <= 4; n++ {
			for target := 0; target < n; target++ {
				vec := randomAmplitudes(n, rng)
				e, _ := m.FromAmplitudes(vec)
				g := m.MakeGateDD(n, u, target)
				res := m.MulVec(g, e)

				ds, _ := dense.FromAmplitudes(append([]complex128(nil), vec...))
				ds.ApplyGate(u, target)

				vecApproxEq(t, m.ToVector(res, n), ds.Amp, 1e-9, name)
			}
		}
	}
}

func TestControlledGatesMatchDense(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		gates := randomGateSeq(n, 1, rng)
		g := gates[0]
		vec := randomAmplitudes(n, rng)
		e, _ := m.FromAmplitudes(vec)
		gd := m.MakeGateDD(n, g.u, g.target, g.controls...)
		res := m.MulVec(gd, e)

		ds, _ := dense.FromAmplitudes(append([]complex128(nil), vec...))
		ds.ApplyGate(g.u, g.target, toDenseControls(g.controls)...)

		vecApproxEq(t, m.ToVector(res, n), ds.Amp, 1e-9, "controlled gate")
	}
}

func TestCNOTTruthTable(t *testing.T) {
	m := New()
	// CNOT with control qubit 1, target qubit 0 on 2 qubits.
	cx := m.MakeGateDD(2, gateX, 0, PosControl(1))
	cases := map[uint64]uint64{
		0b00: 0b00, 0b01: 0b01, 0b10: 0b11, 0b11: 0b10,
	}
	for in, want := range cases {
		res := m.MulVec(cx, m.BasisState(2, in))
		if p := m.Probability(res, want, 2); math.Abs(p-1) > 1e-12 {
			t.Errorf("CNOT|%02b⟩: P(|%02b⟩) = %v, want 1", in, want, p)
		}
	}
}

func TestNegativeControl(t *testing.T) {
	m := New()
	cx := m.MakeGateDD(2, gateX, 0, NegControl(1))
	// Fires when qubit 1 is |0⟩.
	res := m.MulVec(cx, m.BasisState(2, 0b00))
	if p := m.Probability(res, 0b01, 2); math.Abs(p-1) > 1e-12 {
		t.Errorf("neg-control did not fire on |00⟩: %v", p)
	}
	res = m.MulVec(cx, m.BasisState(2, 0b10))
	if p := m.Probability(res, 0b10, 2); math.Abs(p-1) > 1e-12 {
		t.Errorf("neg-control fired on |10⟩: %v", p)
	}
}

func TestToffoliViaTwoControls(t *testing.T) {
	m := New()
	ccx := m.MakeGateDD(3, gateX, 0, PosControl(1), PosControl(2))
	for in := uint64(0); in < 8; in++ {
		want := in
		if in&0b110 == 0b110 {
			want = in ^ 1
		}
		res := m.MulVec(ccx, m.BasisState(3, in))
		if p := m.Probability(res, want, 3); math.Abs(p-1) > 1e-12 {
			t.Errorf("CCX|%03b⟩: P(|%03b⟩) = %v, want 1", in, want, p)
		}
	}
}

func TestPaperExample3(t *testing.T) {
	// Example 3: CNOT·(H⊗I)|00⟩ = (|00⟩+|11⟩)/√2. In the paper the Hadamard
	// acts on the "first qubit" (the high/control wire).
	m := New()
	e := m.BasisState(2, 0)
	h := m.MakeGateDD(2, gateH, 1)
	e = m.MulVec(h, e)
	cx := m.MakeGateDD(2, gateX, 0, PosControl(1))
	e = m.MulVec(cx, e)
	want := []complex128{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}
	vecApproxEq(t, m.ToVector(e, 2), want, 1e-12, "Example 3 Bell state")
}

func TestRandomCircuitsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 15; trial++ {
		m := New()
		n := 2 + rng.Intn(6)
		depth := 5 + rng.Intn(30)
		gates := randomGateSeq(n, depth, rng)

		e := m.ZeroState(n)
		ds := dense.NewState(n)
		for _, g := range gates {
			gd := m.MakeGateDD(n, g.u, g.target, g.controls...)
			e = m.MulVec(gd, e)
			e = m.NormalizeRootWeight(e)
			ds.ApplyGate(g.u, g.target, toDenseControls(g.controls)...)
		}
		// Global phase may differ after root renormalization.
		vecApproxEqUpToPhase(t, m.ToVector(e, n), ds.Amp, 1e-7, "random circuit")
		if norm := m.Norm(e); math.Abs(norm-1) > 1e-9 {
			t.Fatalf("norm after circuit = %v", norm)
		}
	}
}

func TestMulMatComposition(t *testing.T) {
	// (A·B)|ψ⟩ == A·(B|ψ⟩)
	m := New()
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		ga := randomGateSeq(n, 1, rng)[0]
		gb := randomGateSeq(n, 1, rng)[0]
		A := m.MakeGateDD(n, ga.u, ga.target, ga.controls...)
		B := m.MakeGateDD(n, gb.u, gb.target, gb.controls...)
		AB := m.MulMat(A, B)

		vec := randomAmplitudes(n, rng)
		e, _ := m.FromAmplitudes(vec)
		direct := m.MulVec(AB, e)
		stepwise := m.MulVec(A, m.MulVec(B, e))
		vecApproxEq(t, m.ToVector(direct, n), m.ToVector(stepwise, n), 1e-9, "MulMat")
	}
}

func TestIdentityDD(t *testing.T) {
	m := New()
	for n := 1; n <= 5; n++ {
		id := m.Identity(n)
		mat := m.ToMatrix(id, n)
		for r := range mat {
			for c := range mat[r] {
				want := complex128(0)
				if r == c {
					want = 1
				}
				if !approxEq(mat[r][c], want, 1e-12) {
					t.Fatalf("Identity(%d)[%d][%d] = %v", n, r, c, mat[r][c])
				}
			}
		}
		if got := CountMNodes(id); got != n {
			t.Errorf("Identity(%d) has %d nodes, want %d", n, got, n)
		}
	}
}

func TestFromToMatrixRoundTrip(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(16))
	for n := 1; n <= 4; n++ {
		dim := 1 << uint(n)
		mat := make([][]complex128, dim)
		for r := range mat {
			mat[r] = make([]complex128, dim)
			for c := range mat[r] {
				if rng.Float64() < 0.3 {
					mat[r][c] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
			}
		}
		e, err := m.FromMatrix(mat)
		if err != nil {
			t.Fatal(err)
		}
		got := m.ToMatrix(e, n)
		for r := range mat {
			vecApproxEq(t, got[r], mat[r], 1e-9, "matrix round trip")
		}
	}
}

func TestConjugateTranspose(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(3)
		g := randomGateSeq(n, 1, rng)[0]
		A := m.MakeGateDD(n, g.u, g.target, g.controls...)
		Adag := m.ConjugateTranspose(A)
		// A·A† should be the identity for unitary gates.
		prod := m.MulMat(A, Adag)
		mat := m.ToMatrix(prod, n)
		for r := range mat {
			for c := range mat[r] {
				want := complex128(0)
				if r == c {
					want = 1
				}
				if !approxEq(mat[r][c], want, 1e-9) {
					t.Fatalf("A·A† not identity at [%d][%d]: %v", r, c, mat[r][c])
				}
			}
		}
	}
}

func TestGatePreservesNorm(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		vec := randomAmplitudes(n, rng)
		e, _ := m.FromAmplitudes(vec)
		g := randomGateSeq(n, 1, rng)[0]
		gd := m.MakeGateDD(n, g.u, g.target, g.controls...)
		res := m.MulVec(gd, e)
		if norm := m.Norm(res); math.Abs(norm-1) > 1e-9 {
			t.Fatalf("norm after unitary = %v", norm)
		}
	}
}
