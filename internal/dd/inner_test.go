package dd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

func TestInnerProductMatchesDense(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		va := randomSparseAmplitudes(n, 0.6, rng)
		vb := randomSparseAmplitudes(n, 0.6, rng)
		ea, _ := m.FromAmplitudes(va)
		eb, _ := m.FromAmplitudes(vb)
		da, _ := dense.FromAmplitudes(va)
		db, _ := dense.FromAmplitudes(vb)
		if got, want := m.InnerProduct(ea, eb), da.InnerProduct(db); !approxEq(got, want, 1e-9) {
			t.Fatalf("inner product %v, want %v", got, want)
		}
	}
}

func TestFidelitySelfIsOne(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(6)
		e, _ := m.FromAmplitudes(randomAmplitudes(n, rng))
		if f := m.Fidelity(e, e); math.Abs(f-1) > 1e-9 {
			t.Fatalf("F(ψ,ψ) = %v", f)
		}
	}
}

func TestFidelitySymmetric(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(5)
		ea, _ := m.FromAmplitudes(randomAmplitudes(n, rng))
		eb, _ := m.FromAmplitudes(randomAmplitudes(n, rng))
		if fa, fb := m.Fidelity(ea, eb), m.Fidelity(eb, ea); math.Abs(fa-fb) > 1e-9 {
			t.Fatalf("F not symmetric: %v vs %v", fa, fb)
		}
	}
}

func TestPaperExample5(t *testing.T) {
	// |ψ⟩ = 1/2·[1 1 1 1]ᵀ, |φ⟩ = 1/√2·[1 0 0 1]ᵀ, F = 1/2.
	m := New()
	psi, _ := m.FromAmplitudes([]complex128{0.5, 0.5, 0.5, 0.5})
	s := complex(1/math.Sqrt2, 0)
	phi, _ := m.FromAmplitudes([]complex128{s, 0, 0, s})
	if f := m.Fidelity(psi, phi); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("Example 5 fidelity = %v, want 0.5", f)
	}
}

func TestPaperExample6(t *testing.T) {
	// Successive truncations: F(ψ,ψ')=1/2, F(ψ',ψ'')=1/2, F(ψ,ψ'')=1/4.
	m := New()
	psi, _ := m.FromAmplitudes([]complex128{0.5, 0.5, 0.5, 0.5})
	s := complex(1/math.Sqrt2, 0)
	psi1, _ := m.FromAmplitudes([]complex128{s, 0, 0, s})
	psi2, _ := m.FromAmplitudes([]complex128{0, 0, 0, 1})
	if f := m.Fidelity(psi, psi1); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("F(ψ,ψ') = %v, want 0.5", f)
	}
	if f := m.Fidelity(psi1, psi2); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("F(ψ',ψ'') = %v, want 0.5", f)
	}
	if f := m.Fidelity(psi, psi2); math.Abs(f-0.25) > 1e-12 {
		t.Errorf("F(ψ,ψ'') = %v, want 0.25", f)
	}
}

func TestFidelityUnitaryInvariance(t *testing.T) {
	// F(Uψ, Uφ) == F(ψ, φ): the property of Section III that lets
	// approximations commute with the remaining circuit.
	m := New()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		ea, _ := m.FromAmplitudes(randomAmplitudes(n, rng))
		eb, _ := m.FromAmplitudes(randomAmplitudes(n, rng))
		before := m.Fidelity(ea, eb)
		for _, g := range randomGateSeq(n, 5, rng) {
			gd := m.MakeGateDD(n, g.u, g.target, g.controls...)
			ea = m.MulVec(gd, ea)
			eb = m.MulVec(gd, eb)
		}
		after := m.Fidelity(ea, eb)
		if math.Abs(before-after) > 1e-9 {
			t.Fatalf("fidelity changed under unitaries: %v -> %v", before, after)
		}
	}
}

func TestNormMatchesDense(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(24))
	vec := randomSparseAmplitudes(6, 0.4, rng)
	// Scale to break normalization.
	for i := range vec {
		vec[i] *= complex(1.7, -0.3)
	}
	e, _ := m.FromAmplitudes(vec)
	ds, _ := dense.FromAmplitudes(vec)
	if got, want := m.Norm(e), ds.Norm(); math.Abs(got-want) > 1e-9 {
		t.Errorf("norm %v, want %v", got, want)
	}
}
