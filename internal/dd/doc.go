// Package dd implements edge-weighted decision diagrams for quantum states
// (vector DDs) and quantum operations (matrix DDs), in the QMDD style used by
// the paper's simulator substrate (Zulehner/Wille, "Advanced simulation of
// quantum computations"; Zulehner/Hillmich/Wille, ICCAD 2019).
//
// Conventions:
//
//   - Qubit q corresponds to bit q of the basis-state index. Nodes are
//     labeled by DD level: the root of an n-qubit DD has Var n-1 and the
//     terminal sits below Var 0 (as in Fig. 1 of the paper). Which level
//     represents which qubit is the manager's variable order (order.go) —
//     identity by default, settable per run (SetOrder), and movable mid-run
//     through adjacent-level swaps (SwapAdjacentLevels) and sifting (Sift).
//     Qubit-indexed entry points consult the order; structural operations
//     pair levels positionally and never see it.
//   - There is no level skipping: every root-to-terminal path visits every
//     variable. This makes the per-level node-contribution identity of
//     Definition 2 hold exactly (contributions on each level sum to 1).
//   - Vector nodes are normalized so |w0|² + |w1|² = 1 and the first
//     non-zero child weight is real and positive. Matrix nodes are
//     normalized so the first largest-magnitude weight equals 1.
//   - Edge weights are interned in a cnum.Table; node identity is pointer
//     identity maintained through unique tables.
//
// Memory system: nodes live in per-manager pools (chunked arrays with free
// lists) and are interned through per-variable hashed unique tables whose
// buckets chain nodes intrusively via the node's next pointer. Compute
// caches (add, madd, mul, mm, ip) are fixed-size power-of-two arrays with
// overwrite-on-collision eviction and generation-tag invalidation, so
// ClearCaches is O(1) and cache memory is bounded. Cleanup is a mark-sweep
// pass: live nodes are stamped with the current GC generation and dead nodes
// are unlinked from their buckets onto the free lists for recycling. Stats
// and Pool snapshot the counters (per-cache hits/misses/evictions, node
// traffic, pool occupancy); the simulation service surfaces them per worker
// on its /v1/stats endpoint. See docs/ARCHITECTURE.md and the
// "Architecture: DD memory system" section of the README for the full
// design.
package dd
