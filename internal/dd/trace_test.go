package dd

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestMTraceMatchesDenseDiagonal(t *testing.T) {
	m := New()
	for n := 1; n <= 4; n++ {
		v, amps := randomState(t, m, n, rand.New(rand.NewSource(int64(n)*17)))
		rho := m.OuterProduct(v, v)
		var want complex128
		for i := range amps {
			want += amps[i] * cmplx.Conj(amps[i])
		}
		got := m.MTrace(rho)
		if cmplx.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: MTrace = %v, dense diagonal sum = %v", n, got, want)
		}
	}
	// Operators too: trace of a CX on 2 qubits is 2, of the identity 2^n.
	cx := m.MakeGateDD(2, [4]complex128{0, 1, 1, 0}, 0, PosControl(1))
	if got := m.MTrace(cx); cmplx.Abs(got-2) > 1e-12 {
		t.Errorf("Tr(CX) = %v, want 2", got)
	}
	for n := 1; n <= 5; n++ {
		if got := m.MTrace(m.Identity(n)); cmplx.Abs(got-complex(float64(int(1)<<uint(n)), 0)) > 1e-12 {
			t.Errorf("Tr(I_%d) = %v, want %d", n, got, 1<<uint(n))
		}
	}
	if got := m.MTrace(m.MZero()); got != 0 {
		t.Errorf("Tr(0) = %v", got)
	}
}

func TestOuterProductMatchesDense(t *testing.T) {
	m := New()
	for n := 1; n <= 3; n++ {
		a, aAmps := randomState(t, m, n, rand.New(rand.NewSource(int64(n)*31)))
		b, bAmps := randomState(t, m, n, rand.New(rand.NewSource(int64(n)*31+7)))
		got := m.ToMatrix(m.OuterProduct(a, b), n)
		for r := range aAmps {
			for c := range bAmps {
				want := aAmps[r] * cmplx.Conj(bAmps[c])
				if cmplx.Abs(got[r][c]-want) > 1e-9 {
					t.Fatalf("n=%d: |a⟩⟨b|[%d][%d] = %v, want %v", n, r, c, got[r][c], want)
				}
			}
		}
	}
}

func TestOuterProductPureStateIsProjector(t *testing.T) {
	m := New()
	v, _ := randomState(t, m, 3, rand.New(rand.NewSource(99)))
	rho := m.OuterProduct(v, v)
	// ρ² = ρ for a pure-state projector, and Tr ρ = 1.
	rho2 := m.MulMat(rho, rho)
	if tr := m.MTrace(rho); cmplx.Abs(tr-1) > 1e-9 {
		t.Errorf("Tr ρ = %v, want 1", tr)
	}
	a, b := m.ToMatrix(rho, 3), m.ToMatrix(rho2, 3)
	for r := range a {
		for c := range a[r] {
			if cmplx.Abs(a[r][c]-b[r][c]) > 1e-9 {
				t.Fatalf("ρ²[%d][%d] = %v != ρ[%d][%d] = %v", r, c, b[r][c], r, c, a[r][c])
			}
		}
	}
}

func TestCountMMatchesCountMNodes(t *testing.T) {
	m := New()
	v, _ := randomState(t, m, 4, rand.New(rand.NewSource(5)))
	rho := m.OuterProduct(v, v)
	if got, want := m.CountM(rho), CountMNodes(rho); got != want {
		t.Errorf("CountM = %d, CountMNodes = %d", got, want)
	}
	cx := m.MakeGateDD(3, [4]complex128{0, 1, 1, 0}, 1, PosControl(0))
	if got, want := m.CountM(cx), CountMNodes(cx); got != want {
		t.Errorf("CountM(CX) = %d, CountMNodes = %d", got, want)
	}
	if got := m.CountM(m.MZero()); got != 0 {
		t.Errorf("CountM(0) = %d", got)
	}
}
