package dd

// Add returns the element-wise sum of two state DDs over the same qubits.
// Addition is the workhorse of matrix-vector multiplication.
func (m *Manager) Add(a, b VEdge) VEdge {
	if m.IsVZero(a) {
		return b
	}
	if m.IsVZero(b) {
		return a
	}
	if a.N == b.N {
		return m.vEdge(a.W.Complex()+b.W.Complex(), a.N)
	}
	if a.N.IsTerminal() != b.N.IsTerminal() {
		panic("dd: Add level mismatch")
	}
	if a.N.IsTerminal() {
		// Both scalars on the terminal (0-qubit edge case).
		return m.vEdge(a.W.Complex()+b.W.Complex(), m.vTerminal)
	}
	if a.N.Var != b.N.Var {
		panic("dd: Add level mismatch")
	}
	// Addition is commutative; order operands by node id so the cache is
	// direction-independent.
	if a.N.id > b.N.id {
		a, b = b, a
	}
	// Factor out a.W: a + b = a.W · (A + (b.W/a.W)·B). Caching on the
	// interned ratio makes the cache scale-invariant.
	ratio := b.W.Complex() / a.W.Complex()
	r := m.CN.Lookup(ratio)
	if res, ok := m.addLookup(a.N, b.N, r); ok {
		return m.ScaleV(res, a.W.Complex())
	}
	var children [2]VEdge
	for i := 0; i < 2; i++ {
		ea := a.N.E[i]
		eb := m.ScaleV(b.N.E[i], ratio)
		children[i] = m.Add(ea, eb)
	}
	res := m.MakeVNode(a.N.Var, children[0], children[1])
	m.addStore(a.N, b.N, r, res)
	return m.ScaleV(res, a.W.Complex())
}

// AddMat returns the element-wise sum of two operation DDs.
func (m *Manager) AddMat(a, b MEdge) MEdge {
	if m.IsMZero(a) {
		return b
	}
	if m.IsMZero(b) {
		return a
	}
	if a.N == b.N {
		return m.mEdge(a.W.Complex()+b.W.Complex(), a.N)
	}
	if a.N.IsTerminal() != b.N.IsTerminal() {
		panic("dd: AddMat level mismatch")
	}
	if a.N.IsTerminal() {
		return m.mEdge(a.W.Complex()+b.W.Complex(), m.mTerminal)
	}
	if a.N.Var != b.N.Var {
		panic("dd: AddMat level mismatch")
	}
	if a.N.id > b.N.id {
		a, b = b, a
	}
	ratio := b.W.Complex() / a.W.Complex()
	r := m.CN.Lookup(ratio)
	if res, ok := m.maddLookup(a.N, b.N, r); ok {
		return m.ScaleM(res, a.W.Complex())
	}
	var children [4]MEdge
	for i := 0; i < 4; i++ {
		ea := a.N.E[i]
		eb := m.ScaleM(b.N.E[i], ratio)
		children[i] = m.AddMat(ea, eb)
	}
	res := m.MakeMNode(a.N.Var, children)
	m.maddStore(a.N, b.N, r, res)
	return m.ScaleM(res, a.W.Complex())
}
