package dd

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestKronMatchesDenseTensor(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 10; trial++ {
		nt := 1 + rng.Intn(3)
		nb := 1 + rng.Intn(3)
		vt := randomAmplitudes(nt, rng)
		vb := randomAmplitudes(nb, rng)
		et, _ := m.FromAmplitudes(vt)
		eb, _ := m.FromAmplitudes(vb)
		res := m.Kron(et, eb)
		got := m.ToVector(res, nt+nb)
		for i := range got {
			hi := i >> uint(nb)
			lo := i & (1<<uint(nb) - 1)
			want := vt[hi] * vb[lo]
			if !approxEq(got[i], want, 1e-9) {
				t.Fatalf("Kron amplitude %d: %v, want %v", i, got[i], want)
			}
		}
	}
}

func TestKronWithZero(t *testing.T) {
	m := New()
	e := m.BasisState(2, 1)
	if got := m.Kron(e, m.VZero()); !m.IsVZero(got) {
		t.Error("a ⊗ 0 != 0")
	}
	if got := m.Kron(m.VZero(), e); !m.IsVZero(got) {
		t.Error("0 ⊗ a != 0")
	}
}

func TestKronOfBasisStates(t *testing.T) {
	m := New()
	top := m.BasisState(2, 0b10)
	bottom := m.BasisState(3, 0b011)
	res := m.Kron(top, bottom)
	if p := m.Probability(res, 0b10011, 5); math.Abs(p-1) > 1e-12 {
		t.Errorf("|10⟩⊗|011⟩: P(|10011⟩) = %v", p)
	}
}

func TestKronMatMatchesDense(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(111))
	gTop := m.MakeGateDD(1, gateH, 0)
	gBot := m.MakeGateDD(2, gateX, 1, PosControl(0))
	res := m.KronMat(gTop, gBot)
	// Compare action on random states against sequential application.
	for trial := 0; trial < 5; trial++ {
		vec := randomAmplitudes(3, rng)
		e, _ := m.FromAmplitudes(vec)
		viaKron := m.MulVec(res, e)

		h3 := m.MakeGateDD(3, gateH, 2)
		cx3 := m.MakeGateDD(3, gateX, 1, PosControl(0))
		viaSeq := m.MulVec(cx3, m.MulVec(h3, e))
		vecApproxEq(t, m.ToVector(viaKron, 3), m.ToVector(viaSeq, 3), 1e-9, "KronMat")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		vec := randomSparseAmplitudes(n, 0.4+rng.Float64()*0.6, rng)
		e, _ := m.FromAmplitudes(vec)

		var buf bytes.Buffer
		if err := m.Serialize(&buf, e); err != nil {
			t.Fatal(err)
		}
		// Round trip into a fresh manager.
		m2 := New()
		e2, err := m2.Deserialize(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if CountVNodes(e2) != CountVNodes(e) {
			t.Fatalf("node count changed: %d -> %d", CountVNodes(e), CountVNodes(e2))
		}
		vecApproxEq(t, m2.ToVector(e2, n), vec, 1e-9, "serialize round trip")
	}
}

func TestSerializeIntoSameManagerShares(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(113))
	vec := randomAmplitudes(6, rng)
	e, _ := m.FromAmplitudes(vec)
	var buf bytes.Buffer
	if err := m.Serialize(&buf, e); err != nil {
		t.Fatal(err)
	}
	e2, err := m.Deserialize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if e2.N != e.N {
		t.Error("deserialization into the same manager did not re-share the root")
	}
	if f := m.Fidelity(e, e2); math.Abs(f-1) > 1e-9 {
		t.Errorf("fidelity after round trip %v", f)
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	m := New()
	if _, err := m.Deserialize(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := m.Deserialize(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated valid stream.
	e := m.BasisState(4, 5)
	var buf bytes.Buffer
	if err := m.Serialize(&buf, e); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-7]
	if _, err := m.Deserialize(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestSerializeZeroAndTerminalEdges(t *testing.T) {
	m := New()
	var buf bytes.Buffer
	if err := m.Serialize(&buf, m.VZero()); err != nil {
		t.Fatal(err)
	}
	e, err := m.Deserialize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsVZero(e) {
		t.Error("zero edge did not round trip")
	}
}
