package dd

// Kron returns the tensor product top ⊗ bottom of two states: bottom
// occupies the low qubits [0, k) and top is shifted up by k levels. The
// result spans NumQubits(top) + NumQubits(bottom) qubits.
func (m *Manager) Kron(top, bottom VEdge) VEdge {
	if m.IsVZero(top) || m.IsVZero(bottom) {
		return m.VZero()
	}
	shift := int32(NumQubits(bottom))
	memo := make(map[*VNode]VEdge)
	var rebuild func(n *VNode) VEdge
	rebuild = func(n *VNode) VEdge {
		if n.IsTerminal() {
			return VEdge{W: m.CN.One, N: bottom.N}
		}
		if res, ok := memo[n]; ok {
			return res
		}
		var children [2]VEdge
		for i := 0; i < 2; i++ {
			c := n.E[i]
			if c.W.Abs2() == 0 {
				children[i] = m.VZero()
				continue
			}
			sub := rebuild(c.N)
			children[i] = m.ScaleV(sub, c.W.Complex())
		}
		res := m.MakeVNode(n.Var+shift, children[0], children[1])
		memo[n] = res
		return res
	}
	res := rebuild(top.N)
	return m.ScaleV(res, top.W.Complex()*bottom.W.Complex())
}

// KronMat returns the operator tensor product top ⊗ bottom, with bottom on
// the low qubits.
func (m *Manager) KronMat(top, bottom MEdge) MEdge {
	if m.IsMZero(top) || m.IsMZero(bottom) {
		return m.MZero()
	}
	shift := mNumQubits(bottom)
	memo := make(map[*MNode]MEdge)
	var rebuild func(n *MNode) MEdge
	rebuild = func(n *MNode) MEdge {
		if n.IsTerminal() {
			return MEdge{W: m.CN.One, N: bottom.N}
		}
		if res, ok := memo[n]; ok {
			return res
		}
		var children [4]MEdge
		for i := 0; i < 4; i++ {
			c := n.E[i]
			if c.W.Abs2() == 0 {
				children[i] = m.MZero()
				continue
			}
			sub := rebuild(c.N)
			children[i] = m.ScaleM(sub, c.W.Complex())
		}
		res := m.MakeMNode(n.Var+shift, children)
		memo[n] = res
		return res
	}
	res := rebuild(top.N)
	return m.ScaleM(res, top.W.Complex()*bottom.W.Complex())
}

func mNumQubits(e MEdge) int32 {
	if e.N == nil || e.N.IsTerminal() {
		return 0
	}
	return e.N.Var + 1
}
