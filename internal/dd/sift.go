package dd

import "sort"

// SiftConfig bounds a dynamic-reordering pass.
type SiftConfig struct {
	// MaxVars caps how many qubits are sifted, widest level first
	// (0 = all). Sifting one qubit costs ~2n adjacent swaps, so this is the
	// main cost knob.
	MaxVars int
	// KeepMatrices lists operation DDs that must survive the pass's final
	// Cleanup. Omit DDs that are stale under the new order (gate caches):
	// letting the sweep recycle them is the point.
	KeepMatrices []MEdge
}

// SiftReport summarizes one sifting pass.
type SiftReport struct {
	// SizeBefore and SizeAfter are the combined root node counts around the
	// pass; SizeAfter ≤ SizeBefore always (a variable is returned to its
	// best observed position before the next one is sifted).
	SizeBefore, SizeAfter int
	// Swaps counts adjacent-level swaps performed.
	Swaps int
	// VarsSifted counts qubits actually moved through the order.
	VarsSifted int
}

// Sift runs one pass of Rudell-style variable sifting over the n-qubit
// vector DDs rooted at roots: each candidate qubit (widest level first) is
// moved through every position via SwapAdjacentLevels and parked at the one
// minimizing the combined node count, then the next candidate is sifted
// under the updated order. The pass finishes with a Cleanup rooted at the
// rewritten roots (plus cfg.KeepMatrices), returning every transient node
// built while exploring positions to the pool free lists and invalidating
// the compute caches.
//
// The rewritten roots are returned in order; as with Cleanup, edges not
// listed in roots become invalid. The pass is deterministic: candidate
// order, tie-breaking, and the swap rewrites depend only on the DD contents.
func (m *Manager) Sift(n int, roots []VEdge, cfg SiftConfig) ([]VEdge, SiftReport) {
	rep := SiftReport{SizeBefore: countRootNodes(roots)}
	rep.SizeAfter = rep.SizeBefore
	if n < 2 {
		return roots, rep
	}

	// Candidate qubits, widest current level first (ties: lower qubit).
	width := make([]int, n)
	seen := make(map[*VNode]struct{})
	var walk func(node *VNode)
	walk = func(node *VNode) {
		if node == nil || node.IsTerminal() {
			return
		}
		if _, ok := seen[node]; ok {
			return
		}
		seen[node] = struct{}{}
		if int(node.Var) < n {
			width[m.LevelQubit(int(node.Var))]++
		}
		walk(node.E[0].N)
		walk(node.E[1].N)
	}
	for _, r := range roots {
		walk(r.N)
	}
	cands := make([]int, n)
	for q := range cands {
		cands[q] = q
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return width[cands[i]] > width[cands[j]]
	})
	if cfg.MaxVars > 0 && cfg.MaxVars < len(cands) {
		cands = cands[:cfg.MaxVars]
	}

	size := rep.SizeBefore
	swap := func(l int) {
		roots = m.SwapAdjacentLevels(l, roots)
		rep.Swaps++
	}
	for _, q := range cands {
		start := m.QubitLevel(q)
		best, bestPos := size, start
		// Down to the bottom…
		for l := start; l > 0; l-- {
			swap(l - 1)
			if s := countRootNodes(roots); s < best {
				best, bestPos = s, l-1
			}
		}
		// …up to the top…
		for l := 0; l < n-1; l++ {
			swap(l)
			if s := countRootNodes(roots); s < best {
				best, bestPos = s, l+1
			}
		}
		// …and back down to the best observed position.
		for l := n - 1; l > bestPos; l-- {
			swap(l - 1)
		}
		size = best
		rep.VarsSifted++
	}
	rep.SizeAfter = size

	// Recycle every transient built while exploring and drop stale compute
	// entries; the caller's roots (and any kept matrices) survive.
	m.Cleanup(roots, cfg.KeepMatrices)
	return roots, rep
}
