package dd

// InnerProduct computes ⟨a|b⟩ = Σ_i conj(a_i)·b_i between two state DDs over
// the same qubits.
func (m *Manager) InnerProduct(a, b VEdge) complex128 {
	if m.IsVZero(a) || m.IsVZero(b) {
		return 0
	}
	wa := a.W.Complex()
	wb := b.W.Complex()
	return complex(real(wa), -imag(wa)) * wb * m.ipNodes(a.N, b.N)
}

func (m *Manager) ipNodes(an, bn *VNode) complex128 {
	if an.IsTerminal() {
		if !bn.IsTerminal() {
			panic("dd: InnerProduct level mismatch")
		}
		return 1
	}
	if an.Var != bn.Var {
		panic("dd: InnerProduct level mismatch")
	}
	if res, ok := m.ipLookup(an, bn); ok {
		return res
	}
	var sum complex128
	for c := 0; c < 2; c++ {
		ea, eb := an.E[c], bn.E[c]
		if m.IsVZero(ea) || m.IsVZero(eb) {
			continue
		}
		wa := ea.W.Complex()
		sum += complex(real(wa), -imag(wa)) * eb.W.Complex() * m.ipNodes(ea.N, eb.N)
	}
	m.ipStore(an, bn, sum)
	return sum
}

// Fidelity computes F(a,b) = |⟨a|b⟩|² (Definition 1 of the paper). For unit
// state vectors the result lies in [0, 1], with 1 iff the states are equal up
// to global phase.
func (m *Manager) Fidelity(a, b VEdge) float64 {
	ip := m.InnerProduct(a, b)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}
