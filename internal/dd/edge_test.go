package dd

import (
	"math"
	"math/rand"
	"testing"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestLevelMismatchPanics(t *testing.T) {
	m := New()
	a := m.BasisState(3, 0)
	b := m.BasisState(4, 0)
	mustPanic(t, "Add level mismatch", func() { m.Add(a, b) })
	g := m.MakeGateDD(3, gateX, 0)
	mustPanic(t, "MulVec level mismatch", func() { m.MulVec(g, b) })
	mustPanic(t, "InnerProduct level mismatch", func() { m.InnerProduct(a, b) })
	g4 := m.MakeGateDD(4, gateX, 0)
	mustPanic(t, "MulMat level mismatch", func() { m.MulMat(g, g4) })
}

func TestGateConstructionValidation(t *testing.T) {
	m := New()
	mustPanic(t, "target out of range", func() { m.MakeGateDD(3, gateX, 5) })
	mustPanic(t, "control out of range", func() { m.MakeGateDD(3, gateX, 0, PosControl(9)) })
	mustPanic(t, "control == target", func() { m.MakeGateDD(3, gateX, 1, PosControl(1)) })
	mustPanic(t, "duplicate control", func() {
		m.MakeGateDD(3, gateX, 0, PosControl(1), NegControl(1))
	})
	mustPanic(t, "ExtendMatrix control below", func() {
		base, _ := m.MakePermutationDD([]int{1, 0})
		m.ExtendMatrix(base, 1, 3, PosControl(0))
	})
	mustPanic(t, "BasisState bad count", func() { m.BasisState(0, 0) })
	mustPanic(t, "Identity negative", func() { m.Identity(-1) })
}

func TestSampleZeroStatePanics(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(1))
	mustPanic(t, "Sample on zero edge", func() { m.Sample(m.VZero(), 2, rng) })
}

func TestAmplitudeOnMismatchedDepth(t *testing.T) {
	m := New()
	// A state with no zero amplitudes, so the walk cannot terminate early
	// by hitting a zero weight before the terminal.
	e, err := m.FromAmplitudes([]complex128{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "Amplitude too deep", func() { m.Amplitude(e, 0, 5) })
}

func TestMakeVNodeLevelCheck(t *testing.T) {
	m := New()
	deep := m.BasisState(3, 0) // root var 2
	mustPanic(t, "child level mismatch", func() {
		m.MakeVNode(1, deep, m.VZero()) // child must be var 0
	})
}

func TestCleanupWithMatrixRoots(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(2))
	g := m.MakeGateDD(5, gateH, 2, PosControl(4))
	e, _ := m.FromAmplitudes(randomAmplitudes(5, rng))
	// garbage
	for i := 0; i < 10; i++ {
		m.MakeGateDD(5, gateT, i%5)
		_, _ = m.FromAmplitudes(randomAmplitudes(5, rng))
	}
	m.Cleanup([]VEdge{e}, []MEdge{g})
	// Kept roots must still work together.
	res := m.MulVec(g, e)
	if norm := m.Norm(res); math.Abs(norm-1) > 1e-9 {
		t.Errorf("norm after cleanup %v", norm)
	}
}

func TestClearCachesKeepsResultsCorrect(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(3))
	a, _ := m.FromAmplitudes(randomAmplitudes(4, rng))
	b, _ := m.FromAmplitudes(randomAmplitudes(4, rng))
	before := m.Add(a, b)
	m.ClearCaches()
	after := m.Add(a, b)
	if before.N != after.N || !approxEq(before.W.Complex(), after.W.Complex(), 1e-12) {
		t.Error("Add result changed after cache clear")
	}
}

func TestScaleEdgeCases(t *testing.T) {
	m := New()
	e := m.BasisState(2, 1)
	if !m.IsVZero(m.ScaleV(m.VZero(), 2)) {
		t.Error("scaling zero edge")
	}
	if !m.IsMZero(m.ScaleM(m.MZero(), 2)) {
		t.Error("scaling zero matrix edge")
	}
	if !m.IsVZero(m.NormalizeRootWeight(m.VZero())) {
		t.Error("normalizing zero edge")
	}
	tiny := m.ScaleV(e, 1e-13) // below interning tolerance → zero
	if !m.IsVZero(tiny) {
		t.Error("sub-tolerance scale did not collapse to zero")
	}
}

func TestAddMatAndScaleM(t *testing.T) {
	m := New()
	x := m.MakeGateDD(2, gateX, 0)
	negX := m.ScaleM(x, -1)
	if got := m.AddMat(x, negX); !m.IsMZero(got) {
		t.Error("X + (-X) != 0")
	}
	if got := m.AddMat(x, m.MZero()); got != x {
		t.Error("X + 0 != X")
	}
	double := m.AddMat(x, x)
	mat := m.ToMatrix(double, 2)
	if !approxEq(mat[0][1], 2, 1e-12) {
		t.Errorf("X + X [0][1] = %v", mat[0][1])
	}
}

func TestIdentityApplicationIsNoOp(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(4))
	e, _ := m.FromAmplitudes(randomAmplitudes(5, rng))
	id := m.Identity(5)
	res := m.MulVec(id, e)
	if res.N != e.N || !approxEq(res.W.Complex(), e.W.Complex(), 1e-12) {
		t.Error("identity application changed the state")
	}
}

func TestDeepCircuitNumericalStability(t *testing.T) {
	// 2000 gates of H/T cycling on 4 qubits: norm must stay 1 to high
	// precision thanks to root renormalization and weight interning.
	m := New()
	e := m.ZeroState(4)
	h := [4]MEdge{}
	tg := [4]MEdge{}
	for q := 0; q < 4; q++ {
		h[q] = m.MakeGateDD(4, gateH, q)
		tg[q] = m.MakeGateDD(4, gateT, q)
	}
	for i := 0; i < 2000; i++ {
		q := i % 4
		if i%2 == 0 {
			e = m.MulVec(h[q], e)
		} else {
			e = m.MulVec(tg[q], e)
		}
		e = m.NormalizeRootWeight(e)
	}
	if norm := m.Norm(e); math.Abs(norm-1) > 1e-8 {
		t.Errorf("norm drifted to %v after 2000 gates", norm)
	}
}
