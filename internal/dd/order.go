package dd

import "fmt"

// Variable ordering. A Manager carries a qubit→level permutation that decides
// which DD level represents which circuit qubit. Level 0 is the bottom of the
// diagram (children of level-1 nodes); level n−1 is the root level of an
// n-qubit state. The identity order maps qubit q to level q, which was the
// only representable order before this layer existed.
//
// Nodes store levels, never qubits: the order map is pure interpretation,
// consulted by every qubit-indexed entry point (BasisState, MakeGateDD,
// Amplitude, Sample, ToVector, FromAmplitudes, MeasureQubit via its gate
// construction). Structural operations — Add, MulVec, InnerProduct, Cleanup,
// approximation — pair levels positionally and never consult the order, so
// two DDs built under the same order compose exactly as before.
//
// The order can change mid-run through SwapAdjacentLevels (the Rudell-style
// swap primitive) and Sift (a bounded dynamic-reordering pass built on it);
// both rebuild the affected levels through the unique tables, leaving the
// displaced nodes for the next Cleanup to recycle.

// SetOrder installs perm as the manager's qubit→level map: qubit q is
// represented at level perm[q]. perm must be a permutation of [0, len(perm));
// qubits ≥ len(perm) stay at their identity level, which keeps the total map
// a bijection. A nil or empty perm restores the identity order.
//
// SetOrder relabels interpretation only — it does not move any existing
// nodes. DDs built under a different order keep their structure and become
// semantically stale, so callers set the order before building states (the
// simulation session does this at start-up, and refuses to combine
// reordering with cross-run KeepAlive states).
func (m *Manager) SetOrder(perm []int) error {
	if len(perm) == 0 {
		m.qubitToLevel, m.levelToQubit = nil, nil
		return nil
	}
	n := len(perm)
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for q, l := range perm {
		if l < 0 || l >= n {
			return fmt.Errorf("dd: order maps qubit %d to level %d, outside [0,%d)", q, l, n)
		}
		if inv[l] != -1 {
			return fmt.Errorf("dd: order maps qubits %d and %d to the same level %d", inv[l], q, l)
		}
		inv[l] = q
	}
	m.qubitToLevel = append([]int(nil), perm...)
	m.levelToQubit = inv
	return nil
}

// ResetOrder restores the identity order (qubit q at level q).
func (m *Manager) ResetOrder() { m.qubitToLevel, m.levelToQubit = nil, nil }

// OrderIsIdentity reports whether every qubit sits at its identity level.
func (m *Manager) OrderIsIdentity() bool {
	for q, l := range m.qubitToLevel {
		if q != l {
			return false
		}
	}
	return true
}

// QubitLevel returns the level representing qubit q.
func (m *Manager) QubitLevel(q int) int {
	if q >= 0 && q < len(m.qubitToLevel) {
		return m.qubitToLevel[q]
	}
	return q
}

// LevelQubit returns the qubit represented at level l.
func (m *Manager) LevelQubit(l int) int {
	if l >= 0 && l < len(m.levelToQubit) {
		return m.levelToQubit[l]
	}
	return l
}

// Order returns the current qubit→level map as an explicit permutation of
// length n (order[q] = level of qubit q).
func (m *Manager) Order(n int) []int {
	out := make([]int, n)
	for q := range out {
		out[q] = m.QubitLevel(q)
	}
	return out
}

// swapOrderLevels updates the order map after the variables at levels l and
// l+1 exchanged places.
func (m *Manager) swapOrderLevels(l int) {
	// Materialize the maps wide enough to hold both levels; until now they
	// may be nil (identity) or shorter than l+2.
	need := l + 2
	if len(m.qubitToLevel) < need {
		q2l := make([]int, need)
		l2q := make([]int, need)
		for i := 0; i < need; i++ {
			q2l[i], l2q[i] = m.QubitLevel(i), m.LevelQubit(i)
		}
		m.qubitToLevel, m.levelToQubit = q2l, l2q
	}
	qa, qb := m.levelToQubit[l], m.levelToQubit[l+1]
	m.qubitToLevel[qa], m.qubitToLevel[qb] = l+1, l
	m.levelToQubit[l], m.levelToQubit[l+1] = qb, qa
}
