package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func reversedOrder(n int) []int {
	p := make([]int, n)
	for q := range p {
		p[q] = n - 1 - q
	}
	return p
}

func TestSetOrderValidation(t *testing.T) {
	m := New()
	if err := m.SetOrder([]int{1, 0, 2}); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if m.OrderIsIdentity() {
		t.Fatal("order should not be identity")
	}
	if err := m.SetOrder([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate level accepted")
	}
	if err := m.SetOrder([]int{0, 3, 1}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := m.SetOrder(nil); err != nil {
		t.Fatalf("reset via nil: %v", err)
	}
	if !m.OrderIsIdentity() {
		t.Fatal("nil order should restore identity")
	}
	// Qubits beyond the permutation stay at their identity level.
	if err := m.SetOrder([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := m.QubitLevel(5); got != 5 {
		t.Fatalf("QubitLevel(5) = %d under a 3-qubit order, want 5", got)
	}
	if got := m.LevelQubit(5); got != 5 {
		t.Fatalf("LevelQubit(5) = %d, want 5", got)
	}
	if got := m.Order(4); got[0] != 2 || got[1] != 0 || got[2] != 1 || got[3] != 3 {
		t.Fatalf("Order(4) = %v", got)
	}
}

// TestBasisStateRoundTripUnderOrder checks BasisState/Amplitude/ToVector
// agree on qubit-indexed semantics for a non-trivial order.
func TestBasisStateRoundTripUnderOrder(t *testing.T) {
	const n = 4
	for _, perm := range [][]int{nil, reversedOrder(n), {2, 0, 3, 1}} {
		m := New()
		if err := m.SetOrder(perm); err != nil {
			t.Fatal(err)
		}
		for bits := uint64(0); bits < 1<<n; bits++ {
			e := m.BasisState(n, bits)
			vec := m.ToVector(e, n)
			for idx := range vec {
				want := complex128(0)
				if uint64(idx) == bits {
					want = 1
				}
				if vec[idx] != want {
					t.Fatalf("order %v: |%04b⟩ ToVector[%04b] = %v, want %v", perm, bits, idx, vec[idx], want)
				}
				if amp := m.Amplitude(e, uint64(idx), n); amp != want {
					t.Fatalf("order %v: |%04b⟩ Amplitude(%04b) = %v, want %v", perm, bits, idx, amp, want)
				}
			}
		}
	}
}

// TestGateSemanticsUnderOrder applies gates qubit-indexed under several
// orders and checks the dense amplitude vectors agree with the identity
// order run.
func TestGateSemanticsUnderOrder(t *testing.T) {
	const n = 4
	apply := func(perm []int) []complex128 {
		m := New()
		if err := m.SetOrder(perm); err != nil {
			t.Fatal(err)
		}
		state := m.BasisState(n, 0)
		h := [4]complex128{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)}
		x := [4]complex128{0, 1, 1, 0}
		tg := [4]complex128{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
		state = m.MulVec(m.MakeGateDD(n, h, 0), state)
		state = m.MulVec(m.MakeGateDD(n, x, 2, PosControl(0)), state)
		state = m.MulVec(m.MakeGateDD(n, tg, 2), state)
		state = m.MulVec(m.MakeGateDD(n, x, 3, PosControl(2), NegControl(1)), state)
		state = m.MulVec(m.MakeGateDD(n, h, 1), state)
		return m.ToVector(state, n)
	}
	want := apply(nil)
	for _, perm := range [][]int{reversedOrder(n), {2, 0, 3, 1}, {1, 3, 0, 2}} {
		got := apply(perm)
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-12 {
				t.Fatalf("order %v: amplitude[%d] = %v, want %v (Δ=%g)", perm, i, got[i], want[i], d)
			}
		}
	}
}

// randomState builds a dense random state and its DD.
func randomState(t *testing.T, m *Manager, n int, rng *rand.Rand) (VEdge, []complex128) {
	t.Helper()
	vec := make([]complex128, 1<<n)
	norm := 0.0
	for i := range vec {
		vec[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(vec[i])*real(vec[i]) + imag(vec[i])*imag(vec[i])
	}
	s := complex(1/math.Sqrt(norm), 0)
	for i := range vec {
		vec[i] *= s
	}
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		t.Fatal(err)
	}
	return e, vec
}

// TestSwapAdjacentLevelsPreservesSemantics swaps every adjacent pair of a
// random state and checks the qubit-indexed amplitudes never change.
func TestSwapAdjacentLevelsPreservesSemantics(t *testing.T) {
	const n = 5
	rng := rand.New(rand.NewSource(7))
	m := New()
	e, vec := randomState(t, m, n, rng)
	for l := 0; l < n-1; l++ {
		before := m.Order(n)
		roots := m.SwapAdjacentLevels(l, []VEdge{e})
		e = roots[0]
		after := m.Order(n)
		qa, qb := -1, -1
		for q := 0; q < n; q++ {
			if before[q] == l {
				qa = q
			}
			if before[q] == l+1 {
				qb = q
			}
		}
		if after[qa] != l+1 || after[qb] != l {
			t.Fatalf("swap(%d): order %v -> %v did not exchange qubits %d,%d", l, before, after, qa, qb)
		}
		got := m.ToVector(e, n)
		for i := range vec {
			if d := cmplx.Abs(got[i] - vec[i]); d > 1e-12 {
				t.Fatalf("after swap(%d): amplitude[%d] Δ=%g", l, i, d)
			}
		}
	}
	if m.Stats().LevelSwaps != n-1 {
		t.Fatalf("LevelSwaps = %d, want %d", m.Stats().LevelSwaps, n-1)
	}
}

// TestSwapRoundTripRestoresStructure checks that swapping the same pair
// twice returns to a DD with the same node count and order.
func TestSwapRoundTripRestoresStructure(t *testing.T) {
	const n = 5
	rng := rand.New(rand.NewSource(11))
	m := New()
	e, _ := randomState(t, m, n, rng)
	size := CountVNodes(e)
	order := m.Order(n)
	roots := m.SwapAdjacentLevels(2, []VEdge{e})
	roots = m.SwapAdjacentLevels(2, roots)
	if got := CountVNodes(roots[0]); got != size {
		t.Fatalf("double swap changed node count %d -> %d", size, got)
	}
	after := m.Order(n)
	for q := range order {
		if order[q] != after[q] {
			t.Fatalf("double swap changed order %v -> %v", order, after)
		}
	}
}

// pairedState builds the entangled-pairs workload: qubit i entangled with
// qubit i+n/2. Under the identity order its DD is exponential in n/2; with
// partners adjacent it is linear.
func pairedState(t *testing.T, m *Manager, n int) VEdge {
	t.Helper()
	h := [4]complex128{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)}
	x := [4]complex128{0, 1, 1, 0}
	state := m.BasisState(n, 0)
	for i := 0; i < n/2; i++ {
		state = m.MulVec(m.MakeGateDD(n, h, i), state)
		state = m.MulVec(m.MakeGateDD(n, x, i+n/2, PosControl(i)), state)
	}
	return state
}

// TestSiftShrinksEntangledPairs runs sifting on the paired workload and
// expects a large node-count reduction with semantics intact.
func TestSiftShrinksEntangledPairs(t *testing.T) {
	const n = 10
	m := New()
	state := pairedState(t, m, n)
	before := m.ToVector(state, n)
	sizeBefore := CountVNodes(state)

	roots, rep := m.Sift(n, []VEdge{state}, SiftConfig{})
	state = roots[0]
	if rep.SizeBefore != sizeBefore {
		t.Fatalf("report SizeBefore = %d, want %d", rep.SizeBefore, sizeBefore)
	}
	if rep.SizeAfter >= sizeBefore/2 {
		t.Fatalf("sift achieved too little: %d -> %d nodes", sizeBefore, rep.SizeAfter)
	}
	if got := CountVNodes(state); got != rep.SizeAfter {
		t.Fatalf("actual size %d != reported %d", got, rep.SizeAfter)
	}
	if rep.Swaps == 0 || rep.VarsSifted == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	after := m.ToVector(state, n)
	for i := range before {
		if d := cmplx.Abs(after[i] - before[i]); d > 1e-12 {
			t.Fatalf("sift changed amplitude[%d] by %g", i, d)
		}
	}
	// The pass's final Cleanup must have recycled the exploration
	// transients: live pool occupancy is the surviving state plus the
	// manager's always-retained identity chain (n matrix nodes).
	if live := m.Pool().Live; live > rep.SizeAfter+n {
		t.Fatalf("pool live = %d after sift, want ≤ %d (transients not recycled)", live, rep.SizeAfter+n)
	}
}

// TestSiftDeterministic runs the same sift twice on fresh managers and
// expects identical orders and reports.
func TestSiftDeterministic(t *testing.T) {
	run := func() ([]int, SiftReport) {
		m := New()
		state := pairedState(t, m, 8)
		_, rep := m.Sift(8, []VEdge{state}, SiftConfig{MaxVars: 4})
		return m.Order(8), rep
	}
	o1, r1 := run()
	o2, r2 := run()
	if r1 != r2 {
		t.Fatalf("reports differ: %+v vs %+v", r1, r2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("orders differ: %v vs %v", o1, o2)
		}
	}
}

// TestStaticOrderShrinksEntangledPairs verifies the headline effect: the
// paired workload built under a partner-adjacent order peaks far below the
// identity order.
func TestStaticOrderShrinksEntangledPairs(t *testing.T) {
	const n = 10
	ident := New()
	si := pairedState(t, ident, n)

	adj := New()
	perm := make([]int, n)
	for i := 0; i < n/2; i++ {
		perm[i] = 2 * i
		perm[i+n/2] = 2*i + 1
	}
	if err := adj.SetOrder(perm); err != nil {
		t.Fatal(err)
	}
	sa := pairedState(t, adj, n)

	if ci, ca := CountVNodes(si), CountVNodes(sa); ca*4 > ci {
		t.Fatalf("adjacent-pairs order did not shrink the DD: identity %d nodes, adjacent %d", ci, ca)
	}
	vi, va := ident.ToVector(si, n), adj.ToVector(sa, n)
	for i := range vi {
		if d := cmplx.Abs(vi[i] - va[i]); d > 1e-12 {
			t.Fatalf("orders disagree at amplitude[%d]: Δ=%g", i, d)
		}
	}
}

// TestSampleUnderOrder checks sampling respects qubit indexing: a basis
// state must always sample to itself regardless of order.
func TestSampleUnderOrder(t *testing.T) {
	const n = 5
	m := New()
	if err := m.SetOrder([]int{3, 1, 4, 0, 2}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for bits := uint64(0); bits < 1<<n; bits += 3 {
		e := m.BasisState(n, bits)
		if got := m.Sample(e, n, rng); got != bits {
			t.Fatalf("Sample(|%05b⟩) = %05b", bits, got)
		}
	}
}
