package dd

import (
	"math/rand"
	"testing"

	"repro/internal/dense"
)

func TestPermutationDDMatrix(t *testing.T) {
	m := New()
	for n := 1; n <= 5; n++ {
		dim := 1 << uint(n)
		rng := rand.New(rand.NewSource(int64(30 + n)))
		perm := rng.Perm(dim)
		e, err := m.MakePermutationDD(perm)
		if err != nil {
			t.Fatal(err)
		}
		mat := m.ToMatrix(e, n)
		for c := 0; c < dim; c++ {
			for r := 0; r < dim; r++ {
				want := complex128(0)
				if perm[c] == r {
					want = 1
				}
				if !approxEq(mat[r][c], want, 1e-12) {
					t.Fatalf("n=%d: P[%d][%d] = %v, want %v", n, r, c, mat[r][c], want)
				}
			}
		}
	}
}

func TestPermutationIdentity(t *testing.T) {
	m := New()
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	e, err := m.MakePermutationDD(perm)
	if err != nil {
		t.Fatal(err)
	}
	if e.N != m.Identity(3).N {
		t.Error("identity permutation does not share the cached identity DD")
	}
}

func TestPermutationRejectsNonBijection(t *testing.T) {
	m := New()
	if _, err := m.MakePermutationDD([]int{0, 0}); err == nil {
		t.Error("non-bijection accepted")
	}
	if _, err := m.MakePermutationDD([]int{0, 5}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := m.MakePermutationDD([]int{0, 1, 2}); err == nil {
		t.Error("non-power-of-two length accepted")
	}
}

func TestPermutationApplication(t *testing.T) {
	// Applying the permutation DD to |x⟩ must yield |perm[x]⟩.
	m := New()
	rng := rand.New(rand.NewSource(31))
	n := 4
	perm := rng.Perm(1 << uint(n))
	e, err := m.MakePermutationDD(perm)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 1<<uint(n); x++ {
		res := m.MulVec(e, m.BasisState(n, uint64(x)))
		if p := m.Probability(res, uint64(perm[x]), n); p < 1-1e-9 {
			t.Fatalf("P(|perm[%d]⟩) = %v", x, p)
		}
	}
}

func TestControlledPermutationViaExtend(t *testing.T) {
	// A permutation on the low 2 qubits controlled by qubit 3 in a 4-qubit
	// system, cross-checked against the dense simulator.
	m := New()
	rng := rand.New(rand.NewSource(32))
	perm := rng.Perm(4)
	base, err := m.MakePermutationDD(perm)
	if err != nil {
		t.Fatal(err)
	}
	full := m.ExtendMatrix(base, 2, 4, PosControl(3))

	vec := randomAmplitudes(4, rng)
	e, _ := m.FromAmplitudes(vec)
	res := m.MulVec(full, e)

	ds, _ := dense.FromAmplitudes(append([]complex128(nil), vec...))
	ds.ApplyPermutation(perm, 2, dense.ControlSpec{Qubit: 3, Positive: true})

	vecApproxEq(t, m.ToVector(res, 4), ds.Amp, 1e-9, "controlled permutation")
}

func TestExtendMatrixPlain(t *testing.T) {
	// Extending without controls is the tensor product with identity.
	m := New()
	rng := rand.New(rand.NewSource(33))
	perm := rng.Perm(4)
	base, err := m.MakePermutationDD(perm)
	if err != nil {
		t.Fatal(err)
	}
	full := m.ExtendMatrix(base, 2, 3)
	vec := randomAmplitudes(3, rng)
	e, _ := m.FromAmplitudes(vec)
	res := m.MulVec(full, e)

	ds, _ := dense.FromAmplitudes(append([]complex128(nil), vec...))
	ds.ApplyPermutation(perm, 2)
	vecApproxEq(t, m.ToVector(res, 3), ds.Amp, 1e-9, "extended permutation")
}

func TestModularMultiplicationPermutation(t *testing.T) {
	// The Shor building block: x → a·x mod N for x < N, identity above.
	m := New()
	const N, a, bits = 15, 7, 4
	perm := make([]int, 1<<bits)
	for x := range perm {
		if x < N {
			perm[x] = (a * x) % N
		} else {
			perm[x] = x
		}
	}
	e, err := m.MakePermutationDD(perm)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < N; x++ {
		res := m.MulVec(e, m.BasisState(bits, uint64(x)))
		want := uint64((a * x) % N)
		if p := m.Probability(res, want, bits); p < 1-1e-9 {
			t.Fatalf("mod-mul |%d⟩ → P(|%d⟩) = %v", x, want, p)
		}
	}
}
