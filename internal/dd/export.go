package dd

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the state DD in Graphviz dot format, in the style of the
// paper's Fig. 1b: one rank per qubit, edges annotated with weights, zero
// edges drawn as stubs.
func DOT(e VEdge, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle fixedsize=true width=0.5];\n")
	fmt.Fprintf(&b, "  root [shape=point];\n")
	if e.N == nil {
		b.WriteString("}\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  root -> n%d [label=%q];\n", e.N.ID(), e.W.String())
	nodes := CollectVNodes(e)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	fmt.Fprintf(&b, "  t [shape=box label=\"1\"];\n")
	for _, n := range nodes {
		fmt.Fprintf(&b, "  n%d [label=\"q%d\"];\n", n.ID(), n.Var)
		for c := 0; c < 2; c++ {
			child := n.E[c]
			style := ""
			if c == 1 {
				style = " style=dashed"
			}
			if child.W.Abs2() == 0 {
				fmt.Fprintf(&b, "  z%d_%d [shape=point];\n", n.ID(), c)
				fmt.Fprintf(&b, "  n%d -> z%d_%d [label=\"0\"%s];\n", n.ID(), n.ID(), c, style)
				continue
			}
			if child.N.IsTerminal() {
				fmt.Fprintf(&b, "  n%d -> t [label=%q%s];\n", n.ID(), child.W.String(), style)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q%s];\n", n.ID(), child.N.ID(), child.W.String(), style)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Render returns a human-readable multi-line description of the state DD:
// one line per node, grouped by level from the root down.
func Render(e VEdge) string {
	var b strings.Builder
	if e.N == nil || e.N.IsTerminal() {
		fmt.Fprintf(&b, "terminal edge w=%s\n", e.W.String())
		return b.String()
	}
	fmt.Fprintf(&b, "root --%s--> #%d\n", e.W.String(), e.N.ID())
	nodes := CollectVNodes(e)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Var != nodes[j].Var {
			return nodes[i].Var > nodes[j].Var
		}
		return nodes[i].ID() < nodes[j].ID()
	})
	for _, n := range nodes {
		fmt.Fprintf(&b, "q%d #%d: ", n.Var, n.ID())
		for c := 0; c < 2; c++ {
			child := n.E[c]
			if c > 0 {
				b.WriteString("  |  ")
			}
			if child.W.Abs2() == 0 {
				fmt.Fprintf(&b, "[%d]->0", c)
			} else if child.N.IsTerminal() {
				fmt.Fprintf(&b, "[%d]--%s-->T", c, child.W.String())
			} else {
				fmt.Fprintf(&b, "[%d]--%s-->#%d", c, child.W.String(), child.N.ID())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
