package dd

import (
	"math"

	"repro/internal/cnum"
)

// Manager owns the node pools, unique tables, compute caches, and the
// complex-number table for a family of decision diagrams. All DDs passed to
// Manager methods must have been created by the same Manager. Managers are
// not safe for concurrent use.
type Manager struct {
	CN *cnum.Table

	vTerminal *VNode
	mTerminal *MNode

	// Per-variable unique tables (see unique.go) and node pools.
	vLevels []vLevelTable
	mLevels []mLevelTable
	vPool   vNodePool
	mPool   mNodePool

	// Bounded compute caches (see cache.go), invalidated as a whole by
	// bumping cacheGen. Each cache is a window into its retained backing
	// array (addCache = addBack[:n]): growth reslices and rehashes in place
	// once the backing has reached a cache's max, and Reset shrinks the
	// window back to the initial size without releasing the backing, so a
	// reused manager re-grows its caches allocation-free. The missMark
	// fields record each cache's miss count at its last resize, driving the
	// grow-under-pressure policy.
	addCache     []addEntry
	maddCache    []maddEntry
	mulCache     []mulEntry
	mmCache      []mmEntry
	ipCache      []ipEntry
	addBack      []addEntry
	maddBack     []maddEntry
	mulBack      []mulEntry
	mmBack       []mmEntry
	ipBack       []ipEntry
	addMissMark  uint64
	maddMissMark uint64
	mulMissMark  uint64
	mmMissMark   uint64
	ipMissMark   uint64
	cacheGen     uint32

	// gcGen is the mark stamp of the most recent Cleanup; nodes whose gen
	// matches it survived that sweep (see gc.go).
	gcGen uint32

	idChain []MEdge // idChain[k] = identity DD on qubits 0..k-1

	// Variable order (see order.go): qubitToLevel[q] is the DD level
	// representing qubit q, levelToQubit its inverse. nil means identity.
	qubitToLevel []int
	levelToQubit []int

	nextID uint64

	// visitV is the retained scratch set behind CountV, so per-gate DD size
	// tracking allocates nothing at steady state. visitM and traceMemo are
	// the matrix counterparts behind CountM and MTrace (hot in the density
	// backend's per-gate loop). All three are cleared per call, never across
	// calls, so node recycling cannot leave stale entries behind.
	visitV    map[*VNode]struct{}
	visitM    map[*MNode]struct{}
	traceMemo map[*MNode]complex128

	// Stats counters.
	vNodesCreated uint64
	mNodesCreated uint64
	cleanups      uint64
	levelSwaps    uint64
	addStats      CacheStats
	maddStats     CacheStats
	mulStats      CacheStats
	mmStats       CacheStats
	ipStats       CacheStats
}

// New returns a Manager with a fresh complex table at the default tolerance.
func New() *Manager { return NewWithTable(cnum.NewTable()) }

// NewWithTable returns a Manager using the given complex table.
func NewWithTable(cn *cnum.Table) *Manager {
	m := &Manager{
		CN:       cn,
		addBack:  make([]addEntry, cacheInitialSize),
		maddBack: make([]maddEntry, cacheInitialSize),
		mulBack:  make([]mulEntry, cacheInitialSize),
		mmBack:   make([]mmEntry, cacheInitialSize),
		ipBack:   make([]ipEntry, cacheInitialSize),
		cacheGen: 1,
		gcGen:    1,
	}
	m.addCache = m.addBack
	m.maddCache = m.maddBack
	m.mulCache = m.mulBack
	m.mmCache = m.mmBack
	m.ipCache = m.ipBack
	m.vTerminal = &VNode{id: m.newID(), Var: TerminalVar}
	m.mTerminal = &MNode{id: m.newID(), Var: TerminalVar}
	m.idChain = []MEdge{{W: cn.One, N: m.mTerminal}}
	return m
}

// Reset returns the manager to the logical state of a freshly constructed
// one while retaining every allocation it has accumulated: node-pool chunks,
// unique-table bucket arrays, compute-cache backing arrays, and the weight
// table's value arena all survive and are reused by subsequent operations.
// The batch engine calls this between jobs when managers are reused, so warm
// jobs run allocation-free at steady state.
//
// Reset is deterministic-equivalent to construction: the node id counter
// restarts after the terminals, the compute caches shrink to their initial
// logical size (cache geometry influences interning order, so it must match
// a fresh manager's), and the weight table keeps only its canonical Zero and
// One — with cell-derived value hashes, every hash, bucket choice, and
// normalization decision replays exactly as on a fresh manager. All edges
// from before the Reset become invalid. Lifetime stats counters are not
// rewound.
func (m *Manager) Reset() {
	m.idChain = m.idChain[:1]
	m.ResetOrder()
	m.Cleanup(nil, nil) // sweeps every node; bumps cacheGen and rebases miss marks
	m.CN.Reset()
	m.addCache = m.addBack[:cacheInitialSize]
	m.maddCache = m.maddBack[:cacheInitialSize]
	m.mulCache = m.mulBack[:cacheInitialSize]
	m.mmCache = m.mmBack[:cacheInitialSize]
	m.ipCache = m.ipBack[:cacheInitialSize]
	m.nextID = 2 // terminals keep ids 1 and 2; the next node gets 3, as in New
}

// Prewarm pre-allocates pooled node capacity (split across vector and matrix
// pools) so a worker's first jobs run against warm chunks instead of growing
// them mid-run. Prewarming is purely physical — it changes no logical state.
func (m *Manager) Prewarm(nodes int) {
	if nodes <= 0 {
		return
	}
	// States dominate operations by roughly this split in the batch
	// workloads; exactness is irrelevant, both pools keep growing on demand.
	m.vPool.prewarm(nodes * 3 / 4)
	m.mPool.prewarm(nodes / 4)
}

// TrimPools releases the node pools' free lists and the weight table's value
// arena to the garbage collector. It is only safe when no live nodes exist —
// in practice, immediately after Reset — and exists so the batch arena can
// cap how much memory an idle worker retains.
func (m *Manager) TrimPools() {
	m.vPool.dropFree()
	m.mPool.dropFree()
	m.CN.Trim()
}

func (m *Manager) newID() uint64 {
	m.nextID++
	return m.nextID
}

// VTerminal returns the vector terminal node.
func (m *Manager) VTerminal() *VNode { return m.vTerminal }

// MTerminal returns the matrix terminal node.
func (m *Manager) MTerminal() *MNode { return m.mTerminal }

// VZero returns the canonical zero vector edge.
func (m *Manager) VZero() VEdge { return VEdge{W: m.CN.Zero, N: m.vTerminal} }

// MZero returns the canonical zero matrix edge.
func (m *Manager) MZero() MEdge { return MEdge{W: m.CN.Zero, N: m.mTerminal} }

// IsVZero reports whether e is a zero vector edge.
func (m *Manager) IsVZero(e VEdge) bool { return e.W == m.CN.Zero }

// IsMZero reports whether e is a zero matrix edge.
func (m *Manager) IsMZero(e MEdge) bool { return e.W == m.CN.Zero }

// vEdge builds a canonical vector edge with weight w: zero weights collapse
// to the canonical zero edge.
func (m *Manager) vEdge(w complex128, n *VNode) VEdge {
	wv := m.CN.Lookup(w)
	if wv == m.CN.Zero {
		return m.VZero()
	}
	return VEdge{W: wv, N: n}
}

// mEdge builds a canonical matrix edge with weight w.
func (m *Manager) mEdge(w complex128, n *MNode) MEdge {
	wv := m.CN.Lookup(w)
	if wv == m.CN.Zero {
		return m.MZero()
	}
	return MEdge{W: wv, N: n}
}

// ScaleV multiplies the weight of e by w, keeping the edge canonical.
func (m *Manager) ScaleV(e VEdge, w complex128) VEdge {
	if m.IsVZero(e) || w == 0 {
		return m.VZero()
	}
	return m.vEdge(e.W.Complex()*w, e.N)
}

// ScaleM multiplies the weight of e by w, keeping the edge canonical.
func (m *Manager) ScaleM(e MEdge, w complex128) MEdge {
	if m.IsMZero(e) || w == 0 {
		return m.MZero()
	}
	return m.mEdge(e.W.Complex()*w, e.N)
}

// NormalizeRootWeight rescales the root weight of a state edge to unit
// magnitude, preserving its phase. Simulation uses this after each gate to
// stop floating-point drift from accumulating in the global norm.
func (m *Manager) NormalizeRootWeight(e VEdge) VEdge {
	if m.IsVZero(e) {
		return e
	}
	mag := e.W.Abs()
	if mag == 0 {
		return m.VZero()
	}
	return m.vEdge(e.W.Complex()/complex(mag, 0), e.N)
}

// Stats reports manager counters: unique-table sizes, node pool traffic, and
// per-cache hit/miss/eviction counts.
type Stats struct {
	VUniqueSize   int
	MUniqueSize   int
	VNodesCreated uint64
	MNodesCreated uint64
	// VNodesRecycled / MNodesRecycled count creations served from the pool
	// free lists (included in the Created totals).
	VNodesRecycled uint64
	MNodesRecycled uint64
	// Per-cache compute-cache counters.
	Add  CacheStats
	MAdd CacheStats
	Mul  CacheStats
	MM   CacheStats
	IP   CacheStats
	// CacheHits / CacheMisses aggregate the per-cache counters (legacy view).
	CacheHits     uint64
	CacheMisses   uint64
	Cleanups      uint64
	ComplexValues int
	// LevelSwaps counts adjacent-level variable swaps (reordering traffic).
	LevelSwaps uint64
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		VNodesCreated:  m.vNodesCreated,
		MNodesCreated:  m.mNodesCreated,
		VNodesRecycled: m.vPool.recycled,
		MNodesRecycled: m.mPool.recycled,
		Add:            m.addStats,
		MAdd:           m.maddStats,
		Mul:            m.mulStats,
		MM:             m.mmStats,
		IP:             m.ipStats,
		Cleanups:       m.cleanups,
		LevelSwaps:     m.levelSwaps,
		ComplexValues:  m.CN.Size(),
	}
	s.VUniqueSize = m.vLiveCount()
	s.MUniqueSize = m.mLiveCount()
	for _, c := range []CacheStats{s.Add, s.MAdd, s.Mul, s.MM, s.IP} {
		s.CacheHits += c.Hits
		s.CacheMisses += c.Misses
	}
	return s
}

// PoolStats reports node-pool occupancy, the signal simulation uses to
// decide when a Cleanup sweep is worthwhile.
type PoolStats struct {
	// Live is the number of nodes currently interned in the unique tables.
	Live int
	// Free is the number of swept nodes waiting on the free lists.
	Free int
	// Capacity is the number of pool slots ever handed out from chunks.
	// Every slot is interned on allocation, so Capacity == Live + Free.
	Capacity int
	// Recycled counts node creations served from the free lists.
	Recycled uint64
}

// Pool returns a snapshot of node-pool occupancy across both node kinds.
func (m *Manager) Pool() PoolStats {
	return PoolStats{
		Live:     m.vLiveCount() + m.mLiveCount(),
		Free:     m.vPool.freeCount + m.mPool.freeCount,
		Capacity: m.vPool.allocated + m.mPool.allocated,
		Recycled: m.vPool.recycled + m.mPool.recycled,
	}
}

// MakeVNode creates (or reuses) a normalized vector node with variable v and
// children e0 (bit 0) and e1 (bit 1), returning the normalized edge pointing
// to it. The children must be canonical edges rooted at variable v-1 (or
// terminal when v == 0).
func (m *Manager) MakeVNode(v int32, e0, e1 VEdge) VEdge {
	if e0.N != nil && !e0.N.IsTerminal() && e0.N.Var != v-1 {
		panic("dd: MakeVNode child 0 level mismatch")
	}
	if e1.N != nil && !e1.N.IsTerminal() && e1.N.Var != v-1 {
		panic("dd: MakeVNode child 1 level mismatch")
	}
	z0, z1 := m.IsVZero(e0), m.IsVZero(e1)
	if z0 && z1 {
		return m.VZero()
	}
	w0, w1 := e0.W.Complex(), e1.W.Complex()
	norm2 := e0.W.Abs2() + e1.W.Abs2()
	mag := math.Sqrt(norm2)
	// Canonical phase: first non-zero child weight becomes real positive.
	// That weight is constructed as exactly real (|w|/mag) rather than via
	// complex division, which would leave a tiny imaginary residue.
	var ne0, ne1 VEdge
	var factor complex128
	if !z0 {
		phase := w0 / complex(e0.W.Abs(), 0)
		factor = complex(mag, 0) * phase
		ne0 = m.vEdge(complex(e0.W.Abs()/mag, 0), e0.N)
		ne1 = m.vEdge(w1/factor, e1.N)
	} else {
		phase := w1 / complex(e1.W.Abs(), 0)
		factor = complex(mag, 0) * phase
		ne0 = m.VZero()
		ne1 = m.vEdge(complex(e1.W.Abs()/mag, 0), e1.N)
	}
	n := m.vLookupInsert(v, ne0, ne1)
	return VEdge{W: m.CN.Lookup(factor), N: n}
}

// MakeMNode creates (or reuses) a normalized matrix node with variable v and
// row-major quadrant children e[2*r+c], returning the normalized edge.
func (m *Manager) MakeMNode(v int32, e [4]MEdge) MEdge {
	allZero := true
	maxIdx := -1
	maxMag := 0.0
	for i := range e {
		if !m.IsMZero(e[i]) {
			allZero = false
			if mag := e[i].W.Abs(); mag > maxMag {
				maxMag = mag
				maxIdx = i
			}
		}
		if e[i].N != nil && !e[i].N.IsTerminal() && e[i].N.Var != v-1 {
			panic("dd: MakeMNode child level mismatch")
		}
	}
	if allZero {
		return m.MZero()
	}
	factor := e[maxIdx].W.Complex()
	var ne [4]MEdge
	for i := range e {
		if m.IsMZero(e[i]) {
			ne[i] = m.MZero()
		} else if i == maxIdx {
			// Exact by construction: w/w == 1.
			ne[i] = MEdge{W: m.CN.One, N: e[i].N}
		} else {
			ne[i] = m.mEdge(e[i].W.Complex()/factor, e[i].N)
		}
	}
	n := m.mLookupInsert(v, &ne)
	return MEdge{W: m.CN.Lookup(factor), N: n}
}
