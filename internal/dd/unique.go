package dd

import "repro/internal/cnum"

// Per-variable hashed unique tables with intrusive bucket chains, and the
// node pools feeding them. The design follows production DD packages
// (MQT's dd_package): a node's identity key is (variable, child weights,
// child nodes); the variable selects the table, a 64-bit hash of the
// children selects the bucket, and the chain hanging off the bucket is
// walked with exact pointer compares. Hashes are built from interned-weight
// hashes (cnum.Value.Hash) and child node ids — never raw pointers — so
// bucket order, sweep order, and therefore freed-node recycling order are
// deterministic and results stay bit-identical across runs and worker
// counts.

const (
	// uniqueInitialBuckets is the starting bucket count of each per-variable
	// table (always a power of two).
	uniqueInitialBuckets = 256
	// uniqueMaxLoad is the average chain length that triggers a bucket-array
	// doubling.
	uniqueMaxLoad = 2
	// poolChunk is the number of nodes allocated per pool chunk.
	poolChunk = 2048
)

// hashCombine folds x into the running hash h (boost::hash_combine style);
// callers finish with hashFinish so low bits (used for power-of-two
// masking) depend on every input.
func hashCombine(h, x uint64) uint64 {
	h ^= x + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	return h
}

// hashFinish applies the shared SplitMix64 finalizer.
func hashFinish(h uint64) uint64 { return cnum.Mix64(h) }

func vNodeHash(e0, e1 VEdge) uint64 {
	h := hashCombine(0, e0.W.Hash())
	h = hashCombine(h, e0.N.id)
	h = hashCombine(h, e1.W.Hash())
	h = hashCombine(h, e1.N.id)
	return hashFinish(h)
}

func mNodeHash(e *[4]MEdge) uint64 {
	var h uint64
	for i := range e {
		h = hashCombine(h, e[i].W.Hash())
		h = hashCombine(h, e[i].N.id)
	}
	return hashFinish(h)
}

// vLevelTable is the unique table for one variable of the vector DD.
type vLevelTable struct {
	buckets []*VNode
	count   int
}

// mLevelTable is the unique table for one variable of the matrix DD.
type mLevelTable struct {
	buckets []*MNode
	count   int
}

func (t *vLevelTable) grow() {
	nb := make([]*VNode, 2*len(t.buckets))
	mask := uint64(len(nb) - 1)
	for _, head := range t.buckets {
		for n := head; n != nil; {
			next := n.next
			idx := n.hash & mask
			n.next = nb[idx]
			nb[idx] = n
			n = next
		}
	}
	t.buckets = nb
}

func (t *mLevelTable) grow() {
	nb := make([]*MNode, 2*len(t.buckets))
	mask := uint64(len(nb) - 1)
	for _, head := range t.buckets {
		for n := head; n != nil; {
			next := n.next
			idx := n.hash & mask
			n.next = nb[idx]
			nb[idx] = n
			n = next
		}
	}
	t.buckets = nb
}

// vLiveCount returns the number of vector nodes interned across all levels.
func (m *Manager) vLiveCount() int {
	total := 0
	for i := range m.vLevels {
		total += m.vLevels[i].count
	}
	return total
}

// mLiveCount returns the number of matrix nodes interned across all levels.
func (m *Manager) mLiveCount() int {
	total := 0
	for i := range m.mLevels {
		total += m.mLevels[i].count
	}
	return total
}

// vLevel returns the table for variable v, growing the level slice on demand.
func (m *Manager) vLevel(v int32) *vLevelTable {
	for int(v) >= len(m.vLevels) {
		m.vLevels = append(m.vLevels, vLevelTable{buckets: make([]*VNode, uniqueInitialBuckets)})
	}
	return &m.vLevels[v]
}

func (m *Manager) mLevel(v int32) *mLevelTable {
	for int(v) >= len(m.mLevels) {
		m.mLevels = append(m.mLevels, mLevelTable{buckets: make([]*MNode, uniqueInitialBuckets)})
	}
	return &m.mLevels[v]
}

// vLookupInsert interns the node (v; e0, e1) — the children must already be
// canonical — returning an existing node or allocating one from the pool.
func (m *Manager) vLookupInsert(v int32, e0, e1 VEdge) *VNode {
	h := vNodeHash(e0, e1)
	lt := m.vLevel(v)
	idx := h & uint64(len(lt.buckets)-1)
	for n := lt.buckets[idx]; n != nil; n = n.next {
		if n.hash == h && n.E[0].W == e0.W && n.E[0].N == e0.N &&
			n.E[1].W == e1.W && n.E[1].N == e1.N {
			return n
		}
	}
	n := m.vPool.alloc()
	n.id = m.newID()
	n.hash = h
	n.gen = m.gcGen
	n.Var = v
	n.E = [2]VEdge{e0, e1}
	n.next = lt.buckets[idx]
	lt.buckets[idx] = n
	lt.count++
	m.vNodesCreated++
	if lt.count > uniqueMaxLoad*len(lt.buckets) {
		lt.grow()
	}
	return n
}

// mLookupInsert is vLookupInsert for matrix nodes.
func (m *Manager) mLookupInsert(v int32, e *[4]MEdge) *MNode {
	h := mNodeHash(e)
	lt := m.mLevel(v)
	idx := h & uint64(len(lt.buckets)-1)
next:
	for n := lt.buckets[idx]; n != nil; n = n.next {
		if n.hash != h {
			continue
		}
		for i := range e {
			if n.E[i].W != e[i].W || n.E[i].N != e[i].N {
				continue next
			}
		}
		return n
	}
	n := m.mPool.alloc()
	n.id = m.newID()
	n.hash = h
	n.gen = m.gcGen
	n.Var = v
	n.E = *e
	n.next = lt.buckets[idx]
	lt.buckets[idx] = n
	lt.count++
	m.mNodesCreated++
	if lt.count > uniqueMaxLoad*len(lt.buckets) {
		lt.grow()
	}
	return n
}

// vNodePool hands out VNodes from chunked arrays, recycling swept nodes
// through a free list threaded on the node next pointer.
type vNodePool struct {
	cur       []VNode
	next      int
	free      *VNode
	allocated int    // nodes ever handed to a chunk slot
	freeCount int    // current free-list length
	recycled  uint64 // nodes served from the free list
}

func (p *vNodePool) alloc() *VNode {
	if n := p.free; n != nil {
		p.free = n.next
		p.freeCount--
		p.recycled++
		return n
	}
	if p.next == len(p.cur) {
		p.cur = make([]VNode, poolChunk)
		p.next = 0
	}
	n := &p.cur[p.next]
	p.next++
	p.allocated++
	return n
}

// release puts a swept node on the free list. Child edges are cleared so a
// pooled node does not pin other nodes' chunks or interned weights beyond
// the table's own retention.
func (p *vNodePool) release(n *VNode) {
	n.E = [2]VEdge{}
	n.next = p.free
	p.free = n
	p.freeCount++
}

// prewarm grows the free list to at least n nodes by allocating chunks up
// front, so a fresh worker's first job builds against warm memory.
func (p *vNodePool) prewarm(n int) {
	for p.freeCount < n {
		if p.next == len(p.cur) {
			p.cur = make([]VNode, poolChunk)
			p.next = 0
		}
		node := &p.cur[p.next]
		p.next++
		p.allocated++
		p.release(node)
	}
}

// dropFree hands the free list and the current chunk back to the garbage
// collector. Only safe when no live nodes reference the chunks — i.e. right
// after a full sweep with no roots (Manager.Reset) — since free-list nodes
// interleave with live ones inside chunks otherwise.
func (p *vNodePool) dropFree() {
	p.allocated -= p.freeCount
	p.freeCount = 0
	p.free = nil
	p.cur = nil
	p.next = 0
}

type mNodePool struct {
	cur       []MNode
	next      int
	free      *MNode
	allocated int
	freeCount int
	recycled  uint64
}

func (p *mNodePool) alloc() *MNode {
	if n := p.free; n != nil {
		p.free = n.next
		p.freeCount--
		p.recycled++
		return n
	}
	if p.next == len(p.cur) {
		p.cur = make([]MNode, poolChunk)
		p.next = 0
	}
	n := &p.cur[p.next]
	p.next++
	p.allocated++
	return n
}

func (p *mNodePool) release(n *MNode) {
	n.E = [4]MEdge{}
	n.next = p.free
	p.free = n
	p.freeCount++
}

func (p *mNodePool) prewarm(n int) {
	for p.freeCount < n {
		if p.next == len(p.cur) {
			p.cur = make([]MNode, poolChunk)
			p.next = 0
		}
		node := &p.cur[p.next]
		p.next++
		p.allocated++
		p.release(node)
	}
}

func (p *mNodePool) dropFree() {
	p.allocated -= p.freeCount
	p.freeCount = 0
	p.free = nil
	p.cur = nil
	p.next = 0
}
