package dd

import (
	"math/rand"
	"testing"
)

// TestCleanupKeepsRootEdgesValid asserts the mark-sweep collector's core
// contract: edges passed as roots survive a sweep bit-identically, while
// everything else is recycled.
func TestCleanupKeepsRootEdgesValid(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(11))
	n := 6

	keep, err := m.FromAmplitudes(randomAmplitudes(n, rng))
	if err != nil {
		t.Fatal(err)
	}
	g := m.MakeGateDD(n, gateH, 3, PosControl(5))
	want := m.ToVector(keep, n)

	// Garbage: states and gates not passed as roots.
	for i := 0; i < 8; i++ {
		if _, err := m.FromAmplitudes(randomAmplitudes(n, rng)); err != nil {
			t.Fatal(err)
		}
		m.MakeGateDD(n, gateT, i%n)
	}

	liveBefore := m.Pool().Live
	m.Cleanup([]VEdge{keep}, []MEdge{g})
	pool := m.Pool()
	if pool.Live >= liveBefore {
		t.Fatalf("sweep freed nothing: live %d -> %d", liveBefore, pool.Live)
	}
	if pool.Free == 0 {
		t.Fatal("sweep left the free lists empty despite garbage")
	}

	got := m.ToVector(keep, n)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("root amplitude[%d] changed across Cleanup: %v != %v", i, got[i], want[i])
		}
	}
	// The kept root and gate must still work together on the swept manager.
	res := m.MulVec(g, keep)
	if m.IsVZero(res) {
		t.Fatal("gate application on kept root vanished after Cleanup")
	}
}

// TestCleanupRecyclesPooledNodes asserts that a build identical to swept
// garbage is served from the pool free lists: the recycled counter rises and
// pool capacity stays flat instead of allocating new chunks.
func TestCleanupRecyclesPooledNodes(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(12))
	n := 8
	vec := randomAmplitudes(n, rng)

	if _, err := m.FromAmplitudes(vec); err != nil {
		t.Fatal(err)
	}
	m.Cleanup(nil, nil)
	capBefore := m.Pool().Capacity
	recycledBefore := m.Stats().VNodesRecycled

	if _, err := m.FromAmplitudes(vec); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	pool := m.Pool()
	if st.VNodesRecycled <= recycledBefore {
		t.Fatalf("identical rebuild recycled no nodes (recycled %d -> %d)",
			recycledBefore, st.VNodesRecycled)
	}
	if pool.Capacity != capBefore {
		t.Fatalf("identical rebuild grew the pool: capacity %d -> %d", capBefore, pool.Capacity)
	}
}

// TestCleanupCycleIsAllocationFree pins the headline property of the pooled
// memory system: a steady-state build/Cleanup cycle touches only recycled
// pool nodes, pre-grown tables, and the warm weight table — no Go
// allocations at all.
func TestCleanupCycleIsAllocationFree(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(13))
	n := 9
	vec := randomAmplitudes(n, rng)

	cycle := func() {
		if _, err := m.FromAmplitudes(vec); err != nil {
			t.Fatal(err)
		}
		m.Cleanup(nil, nil)
	}
	// Warm up: grow unique tables and intern every weight once.
	for i := 0; i < 3; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(20, cycle); allocs > 0 {
		t.Errorf("steady-state build/Cleanup cycle allocates %.1f objects per run, want 0", allocs)
	}
}
