package dd

import (
	"math"
	"math/rand"
	"testing"
)

// The gate-application benchmarks exercise the memory-system hot path:
// compute-cache lookups (warm), unique-table lookups and node construction
// (cold), and the Cleanup mark/sweep. They use only the dd API so the same
// file benchmarks any manager implementation.

// benchState builds a dense random 12-qubit state (fixed seed) plus a
// Hadamard gate DD on the middle qubit.
func benchState(b *testing.B, m *Manager) (VEdge, MEdge) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	n := 12
	vec := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range vec {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		vec[i] = complex(re, im)
		norm += re*re + im*im
	}
	for i := range vec {
		vec[i] /= complex(math.Sqrt(norm), 0)
	}
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		b.Fatal(err)
	}
	h := m.MakeGateDD(n, [4]complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	}, 6)
	return e, h
}

// BenchmarkGateApplicationWarm measures the cache-hit path: after the first
// two iterations the state cycles and every recursive step is a compute-cache
// and unique-table hit.
func BenchmarkGateApplicationWarm(b *testing.B) {
	m := New()
	state, h := benchState(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = m.MulVec(h, state)
	}
}

// BenchmarkGateApplicationCold measures the cache-miss path: caches are
// cleared every iteration so each gate application recomputes the full
// recursion, stressing unique-table lookups and node construction.
func BenchmarkGateApplicationCold(b *testing.B) {
	m := New()
	state, h := benchState(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		state = m.MulVec(h, state)
	}
}

// BenchmarkGateCircuitFresh runs a fixed 80-gate random Clifford+T layer
// sequence on 10 qubits against a fresh manager per iteration, measuring the
// from-scratch cost including node allocation.
func BenchmarkGateCircuitFresh(b *testing.B) {
	type gate struct {
		u      [4]complex128
		target int
		ctrl   []Control
	}
	rng := rand.New(rand.NewSource(3))
	n := 10
	gateH := [4]complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	}
	gateT := [4]complex128{1, 0, 0, complex(1/math.Sqrt2, 1/math.Sqrt2)}
	gateX := [4]complex128{0, 1, 1, 0}
	gates := make([]gate, 80)
	for i := range gates {
		switch rng.Intn(3) {
		case 0:
			gates[i] = gate{u: gateH, target: rng.Intn(n)}
		case 1:
			gates[i] = gate{u: gateT, target: rng.Intn(n)}
		default:
			t := rng.Intn(n)
			c := rng.Intn(n - 1)
			if c >= t {
				c++
			}
			gates[i] = gate{u: gateX, target: t, ctrl: []Control{PosControl(c)}}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New()
		state := m.ZeroState(n)
		for _, g := range gates {
			op := m.MakeGateDD(n, g.u, g.target, g.ctrl...)
			state = m.MulVec(op, state)
			state = m.NormalizeRootWeight(state)
		}
		if m.IsVZero(state) {
			b.Fatal("state vanished")
		}
	}
}

// BenchmarkGateCleanupCycle measures a build-then-Cleanup cycle on a reused
// manager: with node pooling the steady state recycles every node and the
// sweep allocates nothing.
func BenchmarkGateCleanupCycle(b *testing.B) {
	m := New()
	rng := rand.New(rand.NewSource(9))
	n := 10
	vec := make([]complex128, 1<<uint(n))
	for i := range vec {
		vec[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := m.FromAmplitudes(vec)
		if err != nil {
			b.Fatal(err)
		}
		m.Cleanup(nil, nil)
		_ = e
	}
}
