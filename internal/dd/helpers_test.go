package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

// Test gate matrices (row-major [u00 u01 u10 u11]).
var (
	gateI = [4]complex128{1, 0, 0, 1}
	gateX = [4]complex128{0, 1, 1, 0}
	gateY = [4]complex128{0, -1i, 1i, 0}
	gateZ = [4]complex128{1, 0, 0, -1}
	gateH = [4]complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	}
	gateS = [4]complex128{1, 0, 0, 1i}
	gateT = [4]complex128{1, 0, 0, cmplx.Exp(1i * math.Pi / 4)}
)

func approxEq(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func vecApproxEq(t *testing.T, got, want []complex128, tol float64, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length mismatch %d vs %d", context, len(got), len(want))
	}
	for i := range got {
		if !approxEq(got[i], want[i], tol) {
			t.Fatalf("%s: amplitude %d mismatch: got %v want %v", context, i, got[i], want[i])
		}
	}
}

// vecApproxEqUpToPhase compares amplitude vectors modulo a global phase.
func vecApproxEqUpToPhase(t *testing.T, got, want []complex128, tol float64, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length mismatch %d vs %d", context, len(got), len(want))
	}
	// Find reference index with the largest |want|.
	ref, best := -1, 0.0
	for i, w := range want {
		if a := cmplx.Abs(w); a > best {
			best, ref = a, i
		}
	}
	if ref == -1 {
		vecApproxEq(t, got, want, tol, context)
		return
	}
	if cmplx.Abs(got[ref]) < 1e-14 {
		t.Fatalf("%s: reference amplitude %d is zero in got", context, ref)
	}
	phase := want[ref] / got[ref]
	phase /= complex(cmplx.Abs(phase), 0)
	for i := range got {
		if !approxEq(got[i]*phase, want[i], tol) {
			t.Fatalf("%s: amplitude %d mismatch up to phase: got %v want %v (phase %v)",
				context, i, got[i]*phase, want[i], phase)
		}
	}
}

func randomAmplitudes(n int, rng *rand.Rand) []complex128 {
	vec := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range vec {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		vec[i] = complex(re, im)
		norm += re*re + im*im
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range vec {
		vec[i] *= inv
	}
	return vec
}

// randomSparseAmplitudes returns a normalized vector with roughly `fill`
// fraction of non-zero entries, which produces DDs with interesting shapes.
func randomSparseAmplitudes(n int, fill float64, rng *rand.Rand) []complex128 {
	vec := make([]complex128, 1<<uint(n))
	var norm float64
	nonzero := 0
	for i := range vec {
		if rng.Float64() < fill {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			vec[i] = complex(re, im)
			norm += re*re + im*im
			nonzero++
		}
	}
	if nonzero == 0 {
		vec[0] = 1
		norm = 1
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range vec {
		vec[i] *= inv
	}
	return vec
}

type testGate struct {
	u        [4]complex128
	target   int
	controls []Control
}

func randomGateSeq(n, count int, rng *rand.Rand) []testGate {
	mats := [][4]complex128{gateX, gateY, gateZ, gateH, gateS, gateT}
	gates := make([]testGate, count)
	for i := range gates {
		g := testGate{u: mats[rng.Intn(len(mats))], target: rng.Intn(n)}
		// Half the gates get one or two random controls.
		if n > 1 && rng.Intn(2) == 0 {
			nCtl := 1 + rng.Intn(2)
			used := map[int]bool{g.target: true}
			for c := 0; c < nCtl && len(used) < n; c++ {
				q := rng.Intn(n)
				for used[q] {
					q = rng.Intn(n)
				}
				used[q] = true
				gates[i].controls = append(gates[i].controls,
					Control{Qubit: q, Positive: rng.Intn(4) != 0})
			}
		}
		gates[i].u, gates[i].target = g.u, g.target
	}
	return gates
}

func toDenseControls(cs []Control) []dense.ControlSpec {
	out := make([]dense.ControlSpec, len(cs))
	for i, c := range cs {
		out[i] = dense.ControlSpec{Qubit: c.Qubit, Positive: c.Positive}
	}
	return out
}
