package dd

// CountVNodes returns the number of distinct non-terminal nodes reachable
// from e. This is the paper's "DD size" metric (Table I, "Max. DD Size").
func CountVNodes(e VEdge) int {
	seen := make(map[*VNode]struct{})
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	walk(e.N)
	return len(seen)
}

// CountMNodes returns the number of distinct non-terminal nodes reachable
// from the operation edge e.
func CountMNodes(e MEdge) int {
	seen := make(map[*MNode]struct{})
	var walk func(n *MNode)
	walk = func(n *MNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		for i := 0; i < 4; i++ {
			walk(n.E[i].N)
		}
	}
	walk(e.N)
	return len(seen)
}

// LevelCounts returns the number of distinct nodes per variable, indexed by
// DD level (which coincides with the qubit index only under the identity
// order). Useful for inspecting where a state DD is wide.
func LevelCounts(e VEdge, n int) []int {
	counts := make([]int, n)
	seen := make(map[*VNode]struct{})
	var walk func(node *VNode)
	walk = func(node *VNode) {
		if node == nil || node.IsTerminal() {
			return
		}
		if _, ok := seen[node]; ok {
			return
		}
		seen[node] = struct{}{}
		if int(node.Var) < n {
			counts[node.Var]++
		}
		walk(node.E[0].N)
		walk(node.E[1].N)
	}
	walk(e.N)
	return counts
}

// CollectVNodes returns all distinct non-terminal nodes reachable from e.
// The traversal order is depth-first; callers needing level order should
// sort by Var.
func CollectVNodes(e VEdge) []*VNode {
	var nodes []*VNode
	seen := make(map[*VNode]struct{})
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		nodes = append(nodes, n)
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	walk(e.N)
	return nodes
}
