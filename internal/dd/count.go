package dd

// CountV is CountVNodes against a visited set retained on the manager, so
// the per-gate DD size tracking in sim (the hottest CountVNodes caller by
// far) allocates nothing at steady state. Not reentrant: callers must not
// hold a CountV traversal open across another CountV call.
func (m *Manager) CountV(e VEdge) int {
	if m.visitV == nil {
		m.visitV = make(map[*VNode]struct{}, 256)
	} else {
		clear(m.visitV) // clear keeps the buckets; no reallocation
	}
	m.countVWalk(e.N)
	return len(m.visitV)
}

func (m *Manager) countVWalk(n *VNode) {
	if n == nil || n.IsTerminal() {
		return
	}
	if _, ok := m.visitV[n]; ok {
		return
	}
	m.visitV[n] = struct{}{}
	m.countVWalk(n.E[0].N)
	m.countVWalk(n.E[1].N)
}

// CountVNodes returns the number of distinct non-terminal nodes reachable
// from e. This is the paper's "DD size" metric (Table I, "Max. DD Size").
// Manager.CountV is the allocation-free variant for hot loops.
func CountVNodes(e VEdge) int {
	seen := make(map[*VNode]struct{})
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	walk(e.N)
	return len(seen)
}

// CountMNodes returns the number of distinct non-terminal nodes reachable
// from the operation edge e.
func CountMNodes(e MEdge) int {
	seen := make(map[*MNode]struct{})
	var walk func(n *MNode)
	walk = func(n *MNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		for i := 0; i < 4; i++ {
			walk(n.E[i].N)
		}
	}
	walk(e.N)
	return len(seen)
}

// LevelCounts returns the number of distinct nodes per variable, indexed by
// DD level (which coincides with the qubit index only under the identity
// order). Useful for inspecting where a state DD is wide.
func LevelCounts(e VEdge, n int) []int {
	counts := make([]int, n)
	seen := make(map[*VNode]struct{})
	var walk func(node *VNode)
	walk = func(node *VNode) {
		if node == nil || node.IsTerminal() {
			return
		}
		if _, ok := seen[node]; ok {
			return
		}
		seen[node] = struct{}{}
		if int(node.Var) < n {
			counts[node.Var]++
		}
		walk(node.E[0].N)
		walk(node.E[1].N)
	}
	walk(e.N)
	return counts
}

// CollectVNodes returns all distinct non-terminal nodes reachable from e.
// The traversal order is depth-first; callers needing level order should
// sort by Var.
func CollectVNodes(e VEdge) []*VNode {
	var nodes []*VNode
	seen := make(map[*VNode]struct{})
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		nodes = append(nodes, n)
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	walk(e.N)
	return nodes
}
