package dd

import "fmt"

// MakeGateDD builds the n-qubit operation DD for a single-qubit gate u
// (row-major [u00 u01 u10 u11]) applied to target, optionally guarded by an
// arbitrary set of positive/negative controls. Target and control qubits are
// placed at their levels under the manager's variable order; the
// construction extends the 2×2 gate level by level: identity structure on
// uninvolved levels, identity-vs-gate branching at control levels.
func (m *Manager) MakeGateDD(n int, u [4]complex128, target int, controls ...Control) MEdge {
	if target < 0 || target >= n {
		panic(fmt.Sprintf("dd: gate target %d out of range for %d qubits", target, n))
	}
	tLevel := m.QubitLevel(target)
	if tLevel >= n {
		panic(fmt.Sprintf("dd: gate target %d maps to level %d beyond the %d-qubit register", target, tLevel, n))
	}
	// ctrl is keyed by level, where the construction consumes it.
	ctrl := make(map[int]bool, len(controls))
	for _, c := range controls {
		if c.Qubit < 0 || c.Qubit >= n {
			panic(fmt.Sprintf("dd: control qubit %d out of range for %d qubits", c.Qubit, n))
		}
		if c.Qubit == target {
			panic("dd: control coincides with target")
		}
		cLevel := m.QubitLevel(c.Qubit)
		if cLevel >= n {
			panic(fmt.Sprintf("dd: control qubit %d maps to level %d beyond the %d-qubit register", c.Qubit, cLevel, n))
		}
		if _, dup := ctrl[cLevel]; dup {
			panic(fmt.Sprintf("dd: duplicate control on qubit %d", c.Qubit))
		}
		ctrl[cLevel] = c.Positive
	}

	// Quadrants of the operation restricted to levels [0, q), assuming all
	// controls below the target level are satisfied.
	em := [4]MEdge{
		m.mEdge(u[0], m.mTerminal),
		m.mEdge(u[1], m.mTerminal),
		m.mEdge(u[2], m.mTerminal),
		m.mEdge(u[3], m.mTerminal),
	}
	zero := m.MZero()

	for q := 0; q < tLevel; q++ {
		idBelow := m.Identity(q)
		if positive, isCtrl := ctrl[q]; isCtrl {
			// If the control is not satisfied the whole operation is the
			// identity, which contributes only to the diagonal quadrants.
			for i := 0; i < 4; i++ {
				diag := i == 0 || i == 3
				idPart := zero
				if diag {
					idPart = idBelow
				}
				if positive {
					em[i] = m.MakeMNode(int32(q), [4]MEdge{idPart, zero, zero, em[i]})
				} else {
					em[i] = m.MakeMNode(int32(q), [4]MEdge{em[i], zero, zero, idPart})
				}
			}
		} else {
			for i := 0; i < 4; i++ {
				em[i] = m.MakeMNode(int32(q), [4]MEdge{em[i], zero, zero, em[i]})
			}
		}
	}

	e := m.MakeMNode(int32(tLevel), em)

	for q := tLevel + 1; q < n; q++ {
		idBelow := m.Identity(q)
		if positive, isCtrl := ctrl[q]; isCtrl {
			if positive {
				e = m.MakeMNode(int32(q), [4]MEdge{idBelow, zero, zero, e})
			} else {
				e = m.MakeMNode(int32(q), [4]MEdge{e, zero, zero, idBelow})
			}
		} else {
			e = m.MakeMNode(int32(q), [4]MEdge{e, zero, zero, e})
		}
	}
	return e
}

// ExtendMatrix lifts an operation DD covering qubits [0, fromLevel) to the
// full n-qubit system, optionally adding controls on qubits ≥ fromLevel.
// Controls below fromLevel are rejected. This is how Shor's controlled
// modular-multiplication permutation matrices are embedded into the
// 3n-qubit system. ExtendMatrix (like MakePermutationDD) addresses levels
// directly and requires the identity variable order; the simulation layer
// rejects reordering for circuits carrying permutation gates.
func (m *Manager) ExtendMatrix(e MEdge, fromLevel, n int, controls ...Control) MEdge {
	if fromLevel < 0 || fromLevel > n {
		panic(fmt.Sprintf("dd: ExtendMatrix fromLevel %d out of range for %d qubits", fromLevel, n))
	}
	ctrl := make(map[int]bool, len(controls))
	for _, c := range controls {
		if c.Qubit < fromLevel || c.Qubit >= n {
			panic(fmt.Sprintf("dd: ExtendMatrix control %d outside [%d,%d)", c.Qubit, fromLevel, n))
		}
		if _, dup := ctrl[c.Qubit]; dup {
			panic(fmt.Sprintf("dd: duplicate control on qubit %d", c.Qubit))
		}
		ctrl[c.Qubit] = c.Positive
	}
	zero := m.MZero()
	for q := fromLevel; q < n; q++ {
		idBelow := m.Identity(q)
		if positive, isCtrl := ctrl[q]; isCtrl {
			if positive {
				e = m.MakeMNode(int32(q), [4]MEdge{idBelow, zero, zero, e})
			} else {
				e = m.MakeMNode(int32(q), [4]MEdge{e, zero, zero, idBelow})
			}
		} else {
			e = m.MakeMNode(int32(q), [4]MEdge{e, zero, zero, e})
		}
	}
	return e
}
