package dd

import "repro/internal/cnum"

// Power-of-two compute caches with overwrite-on-collision eviction. Each
// entry carries a generation tag; ClearCaches bumps the manager's cache
// generation, instantly invalidating every entry without touching memory.
// Caches start small (fresh managers are cheap, a per-job pattern the batch
// engine relies on) and double under miss pressure up to a fixed cap, so
// cache memory stays bounded no matter how long a manager lives. Entries
// key on node pointers (valid within a generation — recycling only happens
// in Cleanup, which bumps the generation) but hash on node ids and
// interned-weight hashes, so cache behaviour, and hence the order weights
// are interned in, is deterministic across runs.

const (
	// cacheInitialSize is each cache's starting entry count.
	cacheInitialSize = 1 << 10
	// addCacheMax / mulCacheMax bound the hot vector caches; the matrix and
	// inner-product caches stay smaller.
	addCacheMax  = 1 << 15
	maddCacheMax = 1 << 13
	mulCacheMax  = 1 << 15
	mmCacheMax   = 1 << 13
	ipCacheMax   = 1 << 13
	// cacheGrowMissFactor: a cache doubles when the misses accumulated since
	// its last resize exceed this multiple of its size.
	cacheGrowMissFactor = 4
)

type addEntry struct {
	a, b *VNode
	r    *cnum.Value
	res  VEdge
	gen  uint32
}

type maddEntry struct {
	a, b *MNode
	r    *cnum.Value
	res  MEdge
	gen  uint32
}

type mulEntry struct {
	m   *MNode
	v   *VNode
	res VEdge
	gen uint32
}

type mmEntry struct {
	a, b *MNode
	res  MEdge
	gen  uint32
}

type ipEntry struct {
	a, b *VNode
	res  complex128
	gen  uint32
}

// CacheStats counts one compute cache's lookups and evictions.
type CacheStats struct {
	Hits, Misses uint64
	// Evictions counts stores that overwrote a live entry for a different
	// key (the cost of the bounded-memory eviction policy).
	Evictions uint64
}

// HitRatio returns Hits/(Hits+Misses), or 0 when the cache was never probed.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func cacheHash(vals ...uint64) uint64 {
	var h uint64
	for _, v := range vals {
		h = hashCombine(h, v)
	}
	return hashFinish(h)
}

// growCache reports whether a cache of the given size should double, based
// on the misses it accumulated since its last resize. Resizes rehash live
// entries into the doubled window (see the grow* funcs) so hot results
// survive the growth.
func growCache(size, max int, misses, missMark uint64) bool {
	return size < max && misses-missMark > uint64(cacheGrowMissFactor*size)
}

// Cache growth over retained backing arrays. Each cache is the prefix window
// back[:n]; doubling extends the window in place when the backing is already
// big enough (a reused manager re-growing after Reset) and allocates a bigger
// backing only the first time a size is reached. The in-place rehash is safe
// because with power-of-two sizes an entry at index i moves to i or i+n —
// never onto an unprocessed live slot — and anything stale left in the upper
// half is dead by generation.

func (m *Manager) growAdd() {
	old := len(m.addCache)
	n := 2 * old
	if n > len(m.addBack) {
		m.addBack = make([]addEntry, n)
		for i := range m.addCache {
			if e := &m.addCache[i]; e.gen == m.cacheGen {
				m.addBack[cacheHash(e.a.id, e.b.id, e.r.Hash())&uint64(n-1)] = *e
			}
		}
		m.addCache = m.addBack
		return
	}
	nc := m.addBack[:n]
	mask := uint64(n - 1)
	for i := 0; i < old; i++ {
		e := &nc[i]
		if e.gen != m.cacheGen {
			continue
		}
		if idx := cacheHash(e.a.id, e.b.id, e.r.Hash()) & mask; int(idx) != i {
			nc[idx] = *e
			e.gen = 0
		}
	}
	m.addCache = nc
}

func (m *Manager) growMAdd() {
	old := len(m.maddCache)
	n := 2 * old
	if n > len(m.maddBack) {
		m.maddBack = make([]maddEntry, n)
		for i := range m.maddCache {
			if e := &m.maddCache[i]; e.gen == m.cacheGen {
				m.maddBack[cacheHash(e.a.id, e.b.id, e.r.Hash())&uint64(n-1)] = *e
			}
		}
		m.maddCache = m.maddBack
		return
	}
	nc := m.maddBack[:n]
	mask := uint64(n - 1)
	for i := 0; i < old; i++ {
		e := &nc[i]
		if e.gen != m.cacheGen {
			continue
		}
		if idx := cacheHash(e.a.id, e.b.id, e.r.Hash()) & mask; int(idx) != i {
			nc[idx] = *e
			e.gen = 0
		}
	}
	m.maddCache = nc
}

func (m *Manager) growMul() {
	old := len(m.mulCache)
	n := 2 * old
	if n > len(m.mulBack) {
		m.mulBack = make([]mulEntry, n)
		for i := range m.mulCache {
			if e := &m.mulCache[i]; e.gen == m.cacheGen {
				m.mulBack[cacheHash(e.m.id, e.v.id)&uint64(n-1)] = *e
			}
		}
		m.mulCache = m.mulBack
		return
	}
	nc := m.mulBack[:n]
	mask := uint64(n - 1)
	for i := 0; i < old; i++ {
		e := &nc[i]
		if e.gen != m.cacheGen {
			continue
		}
		if idx := cacheHash(e.m.id, e.v.id) & mask; int(idx) != i {
			nc[idx] = *e
			e.gen = 0
		}
	}
	m.mulCache = nc
}

func (m *Manager) growMM() {
	old := len(m.mmCache)
	n := 2 * old
	if n > len(m.mmBack) {
		m.mmBack = make([]mmEntry, n)
		for i := range m.mmCache {
			if e := &m.mmCache[i]; e.gen == m.cacheGen {
				m.mmBack[cacheHash(e.a.id, e.b.id)&uint64(n-1)] = *e
			}
		}
		m.mmCache = m.mmBack
		return
	}
	nc := m.mmBack[:n]
	mask := uint64(n - 1)
	for i := 0; i < old; i++ {
		e := &nc[i]
		if e.gen != m.cacheGen {
			continue
		}
		if idx := cacheHash(e.a.id, e.b.id) & mask; int(idx) != i {
			nc[idx] = *e
			e.gen = 0
		}
	}
	m.mmCache = nc
}

func (m *Manager) growIP() {
	old := len(m.ipCache)
	n := 2 * old
	if n > len(m.ipBack) {
		m.ipBack = make([]ipEntry, n)
		for i := range m.ipCache {
			if e := &m.ipCache[i]; e.gen == m.cacheGen {
				m.ipBack[cacheHash(e.a.id, e.b.id)&uint64(n-1)] = *e
			}
		}
		m.ipCache = m.ipBack
		return
	}
	nc := m.ipBack[:n]
	mask := uint64(n - 1)
	for i := 0; i < old; i++ {
		e := &nc[i]
		if e.gen != m.cacheGen {
			continue
		}
		if idx := cacheHash(e.a.id, e.b.id) & mask; int(idx) != i {
			nc[idx] = *e
			e.gen = 0
		}
	}
	m.ipCache = nc
}

func (m *Manager) addLookup(a, b *VNode, r *cnum.Value) (VEdge, bool) {
	e := &m.addCache[cacheHash(a.id, b.id, r.Hash())&uint64(len(m.addCache)-1)]
	if e.gen == m.cacheGen && e.a == a && e.b == b && e.r == r {
		m.addStats.Hits++
		return e.res, true
	}
	m.addStats.Misses++
	return VEdge{}, false
}

func (m *Manager) addStore(a, b *VNode, r *cnum.Value, res VEdge) {
	if growCache(len(m.addCache), addCacheMax, m.addStats.Misses, m.addMissMark) {
		m.growAdd()
		m.addMissMark = m.addStats.Misses
	}
	e := &m.addCache[cacheHash(a.id, b.id, r.Hash())&uint64(len(m.addCache)-1)]
	if e.gen == m.cacheGen {
		m.addStats.Evictions++
	}
	*e = addEntry{a: a, b: b, r: r, res: res, gen: m.cacheGen}
}

func (m *Manager) maddLookup(a, b *MNode, r *cnum.Value) (MEdge, bool) {
	e := &m.maddCache[cacheHash(a.id, b.id, r.Hash())&uint64(len(m.maddCache)-1)]
	if e.gen == m.cacheGen && e.a == a && e.b == b && e.r == r {
		m.maddStats.Hits++
		return e.res, true
	}
	m.maddStats.Misses++
	return MEdge{}, false
}

func (m *Manager) maddStore(a, b *MNode, r *cnum.Value, res MEdge) {
	if growCache(len(m.maddCache), maddCacheMax, m.maddStats.Misses, m.maddMissMark) {
		m.growMAdd()
		m.maddMissMark = m.maddStats.Misses
	}
	e := &m.maddCache[cacheHash(a.id, b.id, r.Hash())&uint64(len(m.maddCache)-1)]
	if e.gen == m.cacheGen {
		m.maddStats.Evictions++
	}
	*e = maddEntry{a: a, b: b, r: r, res: res, gen: m.cacheGen}
}

func (m *Manager) mulLookup(mn *MNode, vn *VNode) (VEdge, bool) {
	e := &m.mulCache[cacheHash(mn.id, vn.id)&uint64(len(m.mulCache)-1)]
	if e.gen == m.cacheGen && e.m == mn && e.v == vn {
		m.mulStats.Hits++
		return e.res, true
	}
	m.mulStats.Misses++
	return VEdge{}, false
}

func (m *Manager) mulStore(mn *MNode, vn *VNode, res VEdge) {
	if growCache(len(m.mulCache), mulCacheMax, m.mulStats.Misses, m.mulMissMark) {
		m.growMul()
		m.mulMissMark = m.mulStats.Misses
	}
	e := &m.mulCache[cacheHash(mn.id, vn.id)&uint64(len(m.mulCache)-1)]
	if e.gen == m.cacheGen {
		m.mulStats.Evictions++
	}
	*e = mulEntry{m: mn, v: vn, res: res, gen: m.cacheGen}
}

func (m *Manager) mmLookup(a, b *MNode) (MEdge, bool) {
	e := &m.mmCache[cacheHash(a.id, b.id)&uint64(len(m.mmCache)-1)]
	if e.gen == m.cacheGen && e.a == a && e.b == b {
		m.mmStats.Hits++
		return e.res, true
	}
	m.mmStats.Misses++
	return MEdge{}, false
}

func (m *Manager) mmStore(a, b *MNode, res MEdge) {
	if growCache(len(m.mmCache), mmCacheMax, m.mmStats.Misses, m.mmMissMark) {
		m.growMM()
		m.mmMissMark = m.mmStats.Misses
	}
	e := &m.mmCache[cacheHash(a.id, b.id)&uint64(len(m.mmCache)-1)]
	if e.gen == m.cacheGen {
		m.mmStats.Evictions++
	}
	*e = mmEntry{a: a, b: b, res: res, gen: m.cacheGen}
}

func (m *Manager) ipLookup(a, b *VNode) (complex128, bool) {
	e := &m.ipCache[cacheHash(a.id, b.id)&uint64(len(m.ipCache)-1)]
	if e.gen == m.cacheGen && e.a == a && e.b == b {
		m.ipStats.Hits++
		return e.res, true
	}
	m.ipStats.Misses++
	return 0, false
}

func (m *Manager) ipStore(a, b *VNode, res complex128) {
	if growCache(len(m.ipCache), ipCacheMax, m.ipStats.Misses, m.ipMissMark) {
		m.growIP()
		m.ipMissMark = m.ipStats.Misses
	}
	e := &m.ipCache[cacheHash(a.id, b.id)&uint64(len(m.ipCache)-1)]
	if e.gen == m.cacheGen {
		m.ipStats.Evictions++
	}
	*e = ipEntry{a: a, b: b, res: res, gen: m.cacheGen}
}
