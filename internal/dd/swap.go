package dd

import "fmt"

// SwapAdjacentLevels exchanges the variables at levels l and l+1 of the
// vector DDs rooted at roots, returning the rewritten roots in order. This is
// the adjacent-swap primitive of dynamic reordering (Rudell sifting): only
// nodes at level l+1 and above are rebuilt — everything below the swapped
// pair is shared untouched — and the manager's qubit→level map is updated so
// the states keep their meaning.
//
// The rebuilt nodes go through the unique tables like any other creation;
// the displaced originals stay interned (and structurally valid) until the
// next Cleanup sweeps them onto the pool free lists. Compute-cache entries
// key on node identity and stay sound, but operation DDs built under the old
// order are semantically stale for the new one — callers owning gate caches
// must drop them (the simulation session does, and Sift finishes with a
// Cleanup that also recycles the transients).
//
// Edges reachable from the manager but not listed in roots are not rewritten
// and keep their old-order meaning; like Cleanup, callers must pass every
// edge they intend to keep using.
func (m *Manager) SwapAdjacentLevels(l int, roots []VEdge) []VEdge {
	if l < 0 {
		panic(fmt.Sprintf("dd: SwapAdjacentLevels level %d negative", l))
	}
	upper := int32(l + 1)
	memo := make(map[*VNode]VEdge)
	var rewrite func(n *VNode) VEdge
	rewrite = func(n *VNode) VEdge {
		if n.IsTerminal() || n.Var < upper {
			// Below the swapped pair: shared as-is.
			return VEdge{W: m.CN.One, N: n}
		}
		if e, ok := memo[n]; ok {
			return e
		}
		var res VEdge
		if n.Var > upper {
			var ch [2]VEdge
			for i := 0; i < 2; i++ {
				if m.IsVZero(n.E[i]) {
					ch[i] = m.VZero()
					continue
				}
				sub := rewrite(n.E[i].N)
				ch[i] = m.ScaleV(sub, n.E[i].W.Complex())
			}
			res = m.MakeVNode(n.Var, ch[0], ch[1])
		} else {
			// n is at the upper swapped level: its sub-block over (old upper
			// bit i, old lower bit j) transposes to (j, i).
			//
			//   F(x_up=i, x_lo=j) = w_i · F_i(j)   with F_i = n.E[i]
			//
			// The new upper child for j holds the old upper bit as its own
			// branching bit: G_j = node(l, F_{0j}, F_{1j}).
			sub := func(i, j int) VEdge {
				fi := n.E[i]
				if m.IsVZero(fi) {
					return m.VZero()
				}
				// Quasi-reduced invariant: a non-zero child of a level-(l+1)
				// node is a node at level l, so fi.N.E[j] is well-defined.
				return m.ScaleV(fi.N.E[j], fi.W.Complex())
			}
			g0 := m.MakeVNode(int32(l), sub(0, 0), sub(1, 0))
			g1 := m.MakeVNode(int32(l), sub(0, 1), sub(1, 1))
			res = m.MakeVNode(upper, g0, g1)
		}
		memo[n] = res
		return res
	}

	out := make([]VEdge, len(roots))
	for i, r := range roots {
		if m.IsVZero(r) || r.N.IsTerminal() || r.N.Var < upper {
			out[i] = r
			continue
		}
		nr := rewrite(r.N)
		out[i] = m.ScaleV(nr, r.W.Complex())
	}
	m.swapOrderLevels(l)
	m.levelSwaps++
	return out
}

// countRootNodes returns the number of distinct non-terminal nodes reachable
// from any of the roots (the combined DD size sifting minimizes).
func countRootNodes(roots []VEdge) int {
	seen := make(map[*VNode]struct{})
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n == nil || n.IsTerminal() {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(n.E[0].N)
		walk(n.E[1].N)
	}
	for _, r := range roots {
		walk(r.N)
	}
	return len(seen)
}
