package dd

import "repro/internal/cnum"

// TerminalVar is the Var value of the terminal node.
const TerminalVar int32 = -1

// VNode is a vector (state) DD node. Nodes must only be created through
// Manager.MakeVNode so that they are normalized and interned.
type VNode struct {
	id   uint64
	hash uint64 // unique-table hash of (child weights, child ids)
	next *VNode // unique-table bucket chain / pool free list
	gen  uint32 // GC mark stamp (== Manager.gcGen when live at last sweep)
	Var  int32  // qubit index; TerminalVar for the terminal
	E    [2]VEdge
}

// ID returns the node's unique creation id (stable for the Manager lifetime).
func (n *VNode) ID() uint64 { return n.id }

// IsTerminal reports whether n is the terminal node.
func (n *VNode) IsTerminal() bool { return n.Var == TerminalVar }

// VEdge is a weighted edge to a vector node. The zero edge is represented
// canonically as {W: table.Zero, N: terminal}.
type VEdge struct {
	W *cnum.Value
	N *VNode
}

// MNode is a matrix (operation) DD node. Children are indexed row-major:
// E[2*r+c] is the quadrant for output bit r and input bit c of the node's
// qubit. Nodes must only be created through Manager.MakeMNode.
type MNode struct {
	id   uint64
	hash uint64
	next *MNode
	gen  uint32
	Var  int32
	E    [4]MEdge
}

// ID returns the node's unique creation id.
func (n *MNode) ID() uint64 { return n.id }

// IsTerminal reports whether n is the terminal node.
func (n *MNode) IsTerminal() bool { return n.Var == TerminalVar }

// MEdge is a weighted edge to a matrix node. The zero edge is represented
// canonically as {W: table.Zero, N: terminal}.
type MEdge struct {
	W *cnum.Value
	N *MNode
}

// Control describes a control qubit of a gate. Positive controls trigger on
// |1⟩, negative controls on |0⟩.
type Control struct {
	Qubit    int
	Positive bool
}

// PosControl is shorthand for a positive control on qubit q.
func PosControl(q int) Control { return Control{Qubit: q, Positive: true} }

// NegControl is shorthand for a negative control on qubit q.
func NegControl(q int) Control { return Control{Qubit: q, Positive: false} }
