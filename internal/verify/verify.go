package verify

import (
	"fmt"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// Result reports an equivalence check.
type Result struct {
	// Equivalent is true when the circuits match up to global phase.
	Equivalent bool
	// Phase is the global phase e^{iθ} relating the circuits when
	// equivalent (1 when also phase-equal).
	Phase complex128
	// MaxDDSize is the largest intermediate product DD observed.
	MaxDDSize int
}

// Equivalent checks whether two circuits implement the same unitary up to
// global phase, by reducing V†·U toward the identity.
func Equivalent(u, v *circuit.Circuit) (*Result, error) {
	if u.NumQubits != v.NumQubits {
		return nil, fmt.Errorf("verify: qubit counts differ (%d vs %d)", u.NumQubits, v.NumQubits)
	}
	n := u.NumQubits
	m := dd.New()
	vInv, err := v.Inverse()
	if err != nil {
		return nil, fmt.Errorf("verify: inverting second circuit: %w", err)
	}

	// Product V†·U = (gates of V†, applied after the gates of U). Build
	// left-to-right: start with I, multiply U's gates from the right side
	// first (they act first), then V†'s gates.
	prod := m.Identity(n)
	res := &Result{MaxDDSize: dd.CountMNodes(prod)}
	apply := func(c *circuit.Circuit) error {
		for _, g := range c.Gates() {
			gd, err := gateDD(m, g, n)
			if err != nil {
				return err
			}
			prod = m.MulMat(gd, prod)
			if size := dd.CountMNodes(prod); size > res.MaxDDSize {
				res.MaxDDSize = size
			}
		}
		return nil
	}
	if err := apply(u); err != nil {
		return nil, err
	}
	if err := apply(vInv); err != nil {
		return nil, err
	}

	res.Equivalent, res.Phase = isIdentityUpToPhase(m, prod, n)
	return res, nil
}

func gateDD(m *dd.Manager, g circuit.Gate, n int) (dd.MEdge, error) {
	switch g.Kind {
	case circuit.KindUnitary:
		u, err := g.Matrix()
		if err != nil {
			return dd.MEdge{}, err
		}
		return m.MakeGateDD(n, u, g.Target, g.Controls...), nil
	case circuit.KindPerm:
		base, err := m.MakePermutationDD(g.Perm)
		if err != nil {
			return dd.MEdge{}, err
		}
		return m.ExtendMatrix(base, g.PermWidth, n, g.Controls...), nil
	default:
		return dd.MEdge{}, fmt.Errorf("verify: unknown gate kind %d", g.Kind)
	}
}

// isIdentityUpToPhase checks whether the operation DD is λ·I for some unit
// scalar λ. With the largest-magnitude normalization an identity DD has the
// identity chain structure and the phase sits in the root weight.
func isIdentityUpToPhase(m *dd.Manager, e dd.MEdge, n int) (bool, complex128) {
	if m.IsMZero(e) {
		return false, 0
	}
	// Structural check: node of Identity(n) is interned, so pointer
	// comparison decides instantly.
	id := m.Identity(n)
	if e.N != id.N {
		// Numerical fallback: normalization tolerance can in principle
		// leave a structurally different but numerically-identity DD.
		return isNumericallyIdentity(m, e, n)
	}
	w := e.W.Complex()
	if absErr := cmplx.Abs(w) - 1; absErr > 1e-9 || absErr < -1e-9 {
		return false, 0
	}
	return true, w
}

func isNumericallyIdentity(m *dd.Manager, e dd.MEdge, n int) (bool, complex128) {
	if n > 12 {
		// Dense expansion is 4^n; beyond this the structural check is
		// authoritative in practice.
		return false, 0
	}
	mat := m.ToMatrix(e, n)
	phase := mat[0][0]
	if cmplx.Abs(phase) < 1e-9 {
		return false, 0
	}
	for r := range mat {
		for c := range mat[r] {
			want := complex(0, 0)
			if r == c {
				want = phase
			}
			if cmplx.Abs(mat[r][c]-want) > 1e-9 {
				return false, 0
			}
		}
	}
	return true, phase / complex(cmplx.Abs(phase), 0)
}

// StateEquivalent checks whether two circuits act identically on the |0...0⟩
// input (a weaker but cheaper property than full unitary equivalence),
// returning the fidelity between the two final states.
func StateEquivalent(u, v *circuit.Circuit) (bool, float64, error) {
	if u.NumQubits != v.NumQubits {
		return false, 0, fmt.Errorf("verify: qubit counts differ (%d vs %d)", u.NumQubits, v.NumQubits)
	}
	n := u.NumQubits
	m := dd.New()
	run := func(c *circuit.Circuit) (dd.VEdge, error) {
		state := m.ZeroState(n)
		for _, g := range c.Gates() {
			gd, err := gateDD(m, g, n)
			if err != nil {
				return dd.VEdge{}, err
			}
			state = m.MulVec(gd, state)
			state = m.NormalizeRootWeight(state)
		}
		return state, nil
	}
	su, err := run(u)
	if err != nil {
		return false, 0, err
	}
	sv, err := run(v)
	if err != nil {
		return false, 0, err
	}
	f := m.Fidelity(su, sv)
	return f > 1-1e-9, f, nil
}
