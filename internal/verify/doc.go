// Package verify implements DD-based equivalence checking of quantum
// circuits, the verification use case of the JKQ tool family the paper's
// simulator belongs to (Burgholzer/Wille, "Advanced equivalence checking for
// quantum circuits").
//
// Two circuits U and V over the same qubits are equivalent (up to global
// phase) iff V†·U is the identity. Building V†·U gate by gate as a matrix
// DD keeps the intermediate product close to the identity when the circuits
// are in fact equivalent, which is exactly the regime where decision
// diagrams stay small. The optimizer's tests and the QASM round-trip tests
// both lean on this check, and the equiv command exposes it on the CLI.
package verify
