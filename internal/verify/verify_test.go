package verify

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
)

func TestIdenticalCircuitsEquivalent(t *testing.T) {
	c := gen.QFT(5)
	res, err := Equivalent(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("circuit not equivalent to itself")
	}
	if cmplx.Abs(res.Phase-1) > 1e-9 {
		t.Errorf("self-equivalence phase %v, want 1", res.Phase)
	}
}

func TestSwapDecompositionEquivalence(t *testing.T) {
	// swap via 3 CNOTs == swap via permutation gate.
	a := circuit.New(4, "swap-cx")
	a.SWAP(1, 3)
	b := circuit.New(4, "swap-perm")
	// Permutation on all 4 qubits swapping bits 1 and 3.
	perm := make([]int, 16)
	for x := range perm {
		b1 := x >> 1 & 1
		b3 := x >> 3 & 1
		y := x &^ (1<<1 | 1<<3)
		y |= b1<<3 | b3<<1
		perm[x] = y
	}
	b.Permutation(perm, 4)
	res, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("swap decomposition not recognized as equivalent")
	}
}

func TestGlobalPhaseEquivalence(t *testing.T) {
	// rz(π) and Z differ by the global phase e^{-iπ/2}.
	a := circuit.New(2, "rz")
	a.RZ(math.Pi, 0)
	b := circuit.New(2, "z")
	b.Z(0)
	res, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("rz(π) ≢ Z up to phase")
	}
	if math.Abs(cmplx.Abs(res.Phase)-1) > 1e-9 {
		t.Errorf("phase %v not unit", res.Phase)
	}
	if cmplx.Abs(res.Phase-1) < 1e-9 {
		t.Error("phase reported as exactly 1; expected a non-trivial global phase")
	}
}

func TestInequivalentCircuitsDetected(t *testing.T) {
	a := gen.QFT(4)
	b := gen.QFT(4)
	b.T(2) // sabotage
	res, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Error("sabotaged circuit reported equivalent")
	}
}

func TestQFTInverseCancellation(t *testing.T) {
	// QFT followed by its inverse is the identity: check against the empty
	// circuit.
	n := 5
	c := gen.QFT(n)
	c.AppendCircuit(gen.InverseQFT(n))
	empty := circuit.New(n, "empty")
	res, err := Equivalent(c, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("QFT·QFT† not equivalent to identity")
	}
}

func TestCircuitInverseIsAdjoint(t *testing.T) {
	// c followed by c.Inverse() must be the identity for a gate soup.
	c := circuit.New(4, "soup")
	c.H(0)
	c.CX(0, 2)
	c.T(1)
	c.RY(0.7, 3)
	c.CP(0.3, 2, 1)
	c.SWAP(0, 3)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	both := circuit.New(4, "both")
	both.AppendCircuit(c)
	both.AppendCircuit(inv)
	res, err := Equivalent(both, circuit.New(4, "empty"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("c·c† is not the identity")
	}
}

func TestMismatchedQubitCounts(t *testing.T) {
	if _, err := Equivalent(gen.GHZ(3), gen.GHZ(4)); err == nil {
		t.Error("mismatched registers accepted")
	}
	if _, _, err := StateEquivalent(gen.GHZ(3), gen.GHZ(4)); err == nil {
		t.Error("mismatched registers accepted by StateEquivalent")
	}
}

func TestStateEquivalent(t *testing.T) {
	// GHZ built top-down vs bottom-up: different unitaries, same action on
	// |0...0⟩ up to the entanglement ordering — construct two circuits with
	// identical final states.
	n := 4
	a := gen.GHZ(n)
	b := circuit.New(n, "ghz-alt")
	b.H(n - 1)
	// Fan out from the top qubit directly.
	for q := 0; q < n-1; q++ {
		b.CX(n-1, q)
	}
	ok, f, err := StateEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("GHZ variants differ on |0⟩ input: fidelity %v", f)
	}
	// And a genuinely different state.
	cDiff := circuit.New(n, "w")
	cDiff.H(0)
	ok, f, err = StateEquivalent(a, cDiff)
	if err != nil {
		t.Fatal(err)
	}
	if ok || f > 0.9 {
		t.Errorf("different states reported equivalent (f=%v)", f)
	}
}

func TestEquivalentTracksDDSize(t *testing.T) {
	c := gen.QFT(6)
	res, err := Equivalent(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDDSize < 6 {
		t.Errorf("max DD size %d suspiciously small", res.MaxDDSize)
	}
}
