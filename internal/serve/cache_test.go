package serve

import (
	"bytes"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", []byte("pa"))
	c.put("b", []byte("pb"))
	if v, ok := c.get("a"); !ok || !bytes.Equal(v, []byte("pa")) {
		t.Fatalf("get a: %q %v", v, ok)
	}
	// "a" is now most recently used, so inserting "c" evicts "b".
	c.put("c", []byte("pc"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived")
	}
	st := c.stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("hit/miss counters: %+v", st)
	}
	// Re-putting refreshes the payload in place.
	c.put("a", []byte("pa2"))
	if v, _ := c.get("a"); !bytes.Equal(v, []byte("pa2")) {
		t.Errorf("refresh lost: %q", v)
	}
	if got := c.stats().Entries; got != 2 {
		t.Errorf("re-put grew the cache: %d entries", got)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put("a", []byte("pa"))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache must never hit")
	}
}

func TestContentHashProperties(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(nil)
	base := JobRequest{QASM: ghzQASM, Shots: 16}
	h := func(r JobRequest) string {
		c, err := s.compile(r)
		if err != nil {
			t.Fatal(err)
		}
		return c.hash
	}
	if a, b := h(base), h(base); a != b {
		t.Error("hash must be deterministic")
	}
	named := base
	named.Name = "different label"
	if h(base) != h(named) {
		t.Error("job name must not affect the content hash")
	}
	timed := base
	timed.TimeoutMS = 1234
	if h(base) != h(timed) {
		t.Error("timeout must not affect the content hash")
	}
	seeded := base
	seeded.Seed = 5
	if h(base) == h(seeded) {
		t.Error("explicit seed must affect the content hash")
	}
	strat := base
	strat.Strategy = StrategyMemory
	strat.Threshold = 64
	strat.RoundFidelity = 0.9
	if h(base) == h(strat) {
		t.Error("strategy must affect the content hash")
	}
	shots := base
	shots.Shots = 17
	if h(base) == h(shots) {
		t.Error("shot count must affect the content hash")
	}

	// Normalization: semantically identical submissions hash identically.
	explicitExact := base
	explicitExact.Strategy = StrategyExact
	if h(base) != h(explicitExact) {
		t.Error("default strategy and explicit \"exact\" must hash identically")
	}
	strayParams := explicitExact
	strayParams.Threshold = 512
	strayParams.RoundFidelity = 0.9
	if h(explicitExact) != h(strayParams) {
		t.Error("strategy-irrelevant parameters must not affect an exact job's hash")
	}
	memDefault := base
	memDefault.Strategy = StrategyMemory
	memDefault.Threshold = 64
	memDefault.RoundFidelity = 0.9
	memExplicitGrowth := memDefault
	memExplicitGrowth.Growth = 2
	if h(memDefault) != h(memExplicitGrowth) {
		t.Error("omitted growth and the explicit default 2 must hash identically")
	}
	fid := base
	fid.Strategy = StrategyFidelity
	fid.FinalFidelity = 0.8
	fid.RoundFidelity = 0.9
	fidStray := fid
	fidStray.Threshold = 64
	fidStray.Growth = 3
	if h(fid) != h(fidStray) {
		t.Error("threshold/growth must not affect a fidelity-driven job's hash")
	}
}
