package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/dd"
	"repro/internal/sim"
)

// Job status values reported by the API.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
	StatusDeadline = "deadline_exceeded"
)

// Machine-readable error codes carried in the error envelope's "code" field,
// so clients can map rejections back to typed sentinels (batch.ErrQueueFull,
// batch.ErrShutdown, batch.ErrCanceled) instead of matching message text.
const (
	CodeQueueFull = "queue_full"
	CodeShutdown  = "shutdown"
	CodeCanceled  = "canceled"
)

// errorCode classifies an error into an API error code ("" when untyped).
func errorCode(err error) string {
	switch {
	case errors.Is(err, batch.ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, batch.ErrShutdown):
		return CodeShutdown
	case errors.Is(err, batch.ErrCanceled):
		return CodeCanceled
	}
	return ""
}

// Config sizes a Server. The zero value selects sensible defaults
// everywhere: one worker per CPU, a 4×workers submission queue, a
// 1024-entry result cache, fresh managers per job, and no qubit/shot/time
// limits.
type Config struct {
	// Workers is the simulation worker count (≤ 0 = one per CPU).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; beyond it,
	// submissions are rejected with 503 so callers can shed load (≤ 0 =
	// 4×Workers).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (0 = 1024,
	// negative = caching disabled).
	CacheEntries int
	// DefaultJobTimeout bounds jobs that do not set timeout_ms (0 = none).
	DefaultJobTimeout time.Duration
	// MaxQubits rejects circuits above this register width (0 = no limit).
	MaxQubits int
	// MaxShots rejects submissions requesting more samples (0 = no limit).
	MaxShots int
	// MaxBodyBytes bounds the request body (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxJobs bounds the job registry: when more jobs than this are
	// retained, the oldest finished ones are evicted (their ids start
	// returning 404; running and queued jobs are never evicted). 0 selects
	// 4096, negative disables the bound. This keeps a long-running server's
	// memory proportional to the bound, not to its submission history.
	MaxJobs int
	// EventBufferSize bounds each job's retained event stream (per-gate
	// sizes, approximation rounds, cleanups) served on
	// GET /v1/jobs/{id}/events. When a simulation emits more events than
	// this, the oldest are evicted and streams report the gap; 0 selects
	// 1024, the minimum is 16. The buffer never blocks the simulation.
	EventBufferSize int
	// ReuseManagers keeps one DD manager per worker across jobs, reset
	// between jobs: warm memory under heavy traffic with results still
	// bit-identical to fresh managers (see batch.Options.ReuseManagers).
	// The default builds a fresh manager per job.
	ReuseManagers bool
	// Arena sizes the per-worker memory arenas when ReuseManagers is set
	// (pre-warmed node pools, bounded retention); see batch.ArenaConfig.
	Arena batch.ArenaConfig
	// BaseSeed participates in derived measurement seeds only through
	// jobs submitted with an explicit seed of 0 — those derive from the
	// content hash instead, so this is reserved and currently unused
	// except as the pool's base seed for defense in depth.
	BaseSeed int64
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
	if c.EventBufferSize <= 0 {
		c.EventBufferSize = 1024
	}
	if c.MaxJobs < 0 {
		c.MaxJobs = 0 // unbounded
	}
	return c
}

// Server is an asynchronous simulation-as-a-service frontend over the batch
// worker pool: submissions become pool jobs, results are retained per job id
// and deduplicated across identical submissions through a content-addressed
// LRU cache. Create with New, mount via Handler or ServeHTTP, and stop with
// Shutdown.
type Server struct {
	cfg   Config
	pool  *batch.Pool
	cache *resultCache
	mux   *http.ServeMux

	mu       sync.Mutex
	closed   bool
	nextID   int
	jobs     map[string]*jobState
	order    []string         // job ids in submission order, for listing
	workerDD map[int]WorkerDD // last DD-manager snapshot per pool worker
	reorder  ReorderStats     // lifetime reordering aggregates for /v1/stats
}

// jobState tracks one submission from POST to result retrieval.
type jobState struct {
	id      string
	name    string
	hash    string
	cached  bool
	created time.Time

	handle *batch.Handle // nil for cache hits

	// events buffers the job's simulation event stream for
	// GET /v1/jobs/{id}/events; always non-nil (cache hits get a
	// pre-closed buffer holding just the terminal status event).
	events *eventBuffer

	// done flips once the job reaches a terminal state (set after status
	// below); the registry's eviction scan reads it without taking mu.
	done atomic.Bool

	mu      sync.Mutex
	status  string // terminal status; "" while queued/running
	errMsg  string
	payload []byte // marshaled ResultPayload when status == done
}

// New returns a running Server (its worker pool is live immediately).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		pool: batch.NewPool(batch.PoolOptions{
			Workers:       cfg.Workers,
			QueueDepth:    cfg.QueueDepth,
			BaseSeed:      cfg.BaseSeed,
			ReuseManagers: cfg.ReuseManagers,
			Arena:         cfg.Arena,
		}),
		cache:    newResultCache(cfg.CacheEntries),
		jobs:     make(map[string]*jobState),
		workerDD: make(map[int]WorkerDD),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux = mux
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops accepting submissions and drains queued and running jobs.
// When ctx expires first, the remaining jobs are canceled and Shutdown
// returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.pool.Shutdown(ctx)
}

// JobStatus is the API's per-job envelope.
type JobStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Status string `json:"status"`
	// Cached marks submissions answered from the result cache.
	Cached bool `json:"cached"`
	// Hash is the submission's content address (sha256, hex).
	Hash      string `json:"hash"`
	Submitted string `json:"submitted_at"`
	Error     string `json:"error,omitempty"`
	// Result is present once Status is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// RoundPayload is one approximation round in a result.
type RoundPayload struct {
	GateIndex  int     `json:"gate_index"`
	SizeBefore int     `json:"size_before"`
	SizeAfter  int     `json:"size_after"`
	Achieved   float64 `json:"achieved_fidelity"`
	// RemovedNodes counts nodes whose subtrees were zeroed (delete-based
	// rounds); ReplacedNodes counts nodes swapped for cheaper substitutes
	// (strategy=replace). A replace round can report both when the delete
	// fallback finished the job.
	RemovedNodes  int `json:"removed_nodes"`
	ReplacedNodes int `json:"replaced_nodes,omitempty"`
}

// ResultPayload is the JSON body of a finished job.
type ResultPayload struct {
	NumQubits int    `json:"num_qubits"`
	GateCount int    `json:"gate_count"`
	Strategy  string `json:"strategy"`
	// ResolvedStrategy and ResolvedStrategyParams are the registry name and
	// JSON parameters the job actually ran under — for strategy=auto
	// submissions, the atlas winner that was installed. They are set for
	// every job (auto or explicit), so an auto submission's payload stays
	// byte-identical to an explicit submission of the same configuration.
	ResolvedStrategy       string          `json:"resolved_strategy"`
	ResolvedStrategyParams json.RawMessage `json:"resolved_strategy_params,omitempty"`
	// Backend is the state representation the job ran on ("statevector"
	// or "density").
	Backend string `json:"backend"`
	// Noise and NoiseParams echo the resolved noise channel (canonical
	// parameter spelling); absent on noiseless jobs.
	Noise       string             `json:"noise,omitempty"`
	NoiseParams map[string]float64 `json:"noise_params,omitempty"`
	// Purity is Tr(ρ²) of the final density matrix (density backend only):
	// 1 for pure states, 1/2^n for the maximally mixed state.
	Purity float64 `json:"purity,omitempty"`
	// ChannelApplications counts noise-channel applications: every exact
	// superoperator application on the density backend, only sampled
	// non-identity Kraus branches (quantum jumps) on a trajectory.
	ChannelApplications int            `json:"channel_applications,omitempty"`
	Seed                int64          `json:"seed"`
	MaxDDSize           int            `json:"max_dd_size"`
	FinalDDSize         int            `json:"final_dd_size"`
	EstimatedFidelity   float64        `json:"estimated_fidelity"`
	FidelityBound       float64        `json:"fidelity_bound"`
	Rounds              []RoundPayload `json:"rounds,omitempty"`
	// Samples maps basis-state bitstrings (qubit n−1 ... qubit 0) to
	// counts; present when the submission requested shots.
	Samples map[string]int `json:"samples,omitempty"`
	// RuntimeMS is the simulation wall-clock time. On cache hits the
	// original run's value is returned (the payload is byte-identical).
	RuntimeMS float64 `json:"runtime_ms"`
	DD        DDStats `json:"dd"`
	// InitialOrder and FinalOrder are the qubit→level variable orders the
	// run started and ended under; present only when the job ran a
	// reordering strategy. They differ only when dynamic sifting ran.
	InitialOrder []int `json:"initial_order,omitempty"`
	FinalOrder   []int `json:"final_order,omitempty"`
	// SiftPasses and SiftSwaps count dynamic reordering passes and their
	// adjacent-level swaps.
	SiftPasses int `json:"sift_passes,omitempty"`
	SiftSwaps  int `json:"sift_swaps,omitempty"`
}

// DDStats is the subset of dd.Stats surfaced per result.
type DDStats struct {
	VNodesCreated uint64 `json:"v_nodes_created"`
	MNodesCreated uint64 `json:"m_nodes_created"`
	NodesRecycled uint64 `json:"nodes_recycled"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	Cleanups      uint64 `json:"cleanups"`
	ComplexValues int    `json:"complex_values"`
}

// WorkerDD is the most recent per-worker DD-manager snapshot, captured on
// the worker goroutine at job finalization (the only safe point).
type WorkerDD struct {
	Stats dd.Stats     `json:"stats"`
	Pool  dd.PoolStats `json:"pool"`
}

// ReorderStats aggregates variable-reordering activity across finished jobs
// for /v1/stats.
type ReorderStats struct {
	// Jobs counts finished jobs that ran under a reordering strategy.
	Jobs int64 `json:"jobs"`
	// SiftPasses and SiftSwaps total the dynamic passes and adjacent-level
	// swaps those jobs performed.
	SiftPasses int64 `json:"sift_passes"`
	SiftSwaps  int64 `json:"sift_swaps"`
}

// Stats is the /v1/stats body.
type Stats struct {
	// Jobs counts registered jobs by status (cache hits count as done).
	Jobs map[string]int `json:"jobs"`
	// Cache reports result-cache hits/misses/evictions and occupancy.
	Cache CacheStats `json:"cache"`
	// Pool reports worker-pool occupancy and lifetime throughput.
	Pool batch.PoolState `json:"pool"`
	// Workers maps pool worker ids to their manager's latest memory-system
	// snapshot (dd.Stats plus node-pool occupancy).
	Workers map[string]WorkerDD `json:"workers"`
	// Reorder aggregates variable-reordering activity (jobs that chose a
	// non-default order, sifting passes, level swaps).
	Reorder ReorderStats `json:"reorder"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding submission: %w", err))
		return
	}
	comp, err := s.compile(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server shutting down: %w", batch.ErrShutdown))
		return
	}
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.mu.Unlock()

	// Content-addressed fast path: identical submissions (by circuit and
	// result-relevant options) are answered from the cache without
	// touching the pool.
	if payload, ok := s.cache.get(comp.hash); ok {
		js := &jobState{
			id: id, name: req.Name, hash: comp.hash, cached: true,
			created: time.Now(), status: StatusDone, payload: payload,
			events: newEventBuffer(16),
		}
		// Cache hits never ran, so their stream is just the terminal event.
		js.events.close(Event{Type: EventStatus, Status: StatusDone})
		js.done.Store(true)
		s.register(js)
		writeJSON(w, http.StatusOK, s.statusOf(js, true))
		return
	}

	js := &jobState{
		id: id, name: req.Name, hash: comp.hash, created: time.Now(),
		events: newEventBuffer(s.cfg.EventBufferSize),
	}
	job := batch.Job{
		Name:    req.Name,
		Circuit: comp.circuit,
		Options: sim.Options{
			InitialState:    comp.req.InitialState,
			MeasurementSeed: comp.seed,
			Backend:         comp.backend,
			Noise:           comp.noise,
		},
		NewStrategy: comp.newStrategy,
		Observer:    jobObserver{buf: js.events},
		Timeout:     comp.timeout,
		Finalize:    s.finalizer(js, comp),
	}
	handle, err := s.pool.Submit(job)
	if err != nil {
		if errors.Is(err, batch.ErrQueueFull) {
			s.writeBackpressure(w, err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	js.handle = handle
	s.register(js)
	writeJSON(w, http.StatusAccepted, s.statusOf(js, false))
}

// finalizer builds the batch.Job Finalize hook: it runs on the worker while
// the job's DD manager is still exclusively owned, samples the final state,
// marshals the result payload, stores it on the job, feeds the cache, and
// snapshots the worker's manager for /v1/stats.
func (s *Server) finalizer(js *jobState, comp *compiled) func(*batch.JobResult) {
	return func(jr *batch.JobResult) {
		status, errMsg := classify(jr)
		var payload []byte
		if status == StatusDone {
			p := buildPayload(jr, comp)
			var err error
			if payload, err = json.Marshal(p); err != nil {
				status, errMsg = StatusFailed, fmt.Sprintf("marshaling result: %v", err)
			}
		}
		if jr.Result != nil {
			s.mu.Lock()
			s.workerDD[jr.Worker] = WorkerDD{
				Stats: jr.Result.DDStats,
				Pool:  jr.Result.Manager.Pool(),
			}
			if jr.Result.InitialOrder != nil {
				s.reorder.Jobs++
				s.reorder.SiftPasses += int64(jr.Result.SiftPasses)
				s.reorder.SiftSwaps += int64(jr.Result.SiftSwaps)
			}
			s.mu.Unlock()
		}
		// Feed the cache before publishing the done status: a client that
		// polls until done and instantly resubmits must find the entry.
		if status == StatusDone {
			s.cache.put(js.hash, payload)
		}
		js.mu.Lock()
		js.status, js.errMsg, js.payload = status, errMsg, payload
		js.mu.Unlock()
		js.done.Store(true)
		// Terminate the event stream last, once the result is readable:
		// a client that sees the terminal event can immediately fetch it.
		js.events.close(Event{Type: EventStatus, Status: status, Error: errMsg})
	}
}

func buildPayload(jr *batch.JobResult, comp *compiled) ResultPayload {
	res := jr.Result
	p := ResultPayload{
		NumQubits:              res.NumQubits,
		GateCount:              res.GateCount,
		Strategy:               res.StrategyName,
		ResolvedStrategy:       comp.stratName,
		ResolvedStrategyParams: comp.stratParams,
		Backend:                string(res.Backend),
		ChannelApplications:    res.ChannelApplications,
		Seed:                   comp.seed,
		MaxDDSize:              res.MaxDDSize,
		FinalDDSize:            res.FinalDDSize,
		EstimatedFidelity:      res.EstimatedFidelity,
		FidelityBound:          res.FidelityBound,
		RuntimeMS:              float64(res.Runtime) / float64(time.Millisecond),
		DD: DDStats{
			VNodesCreated: res.DDStats.VNodesCreated,
			MNodesCreated: res.DDStats.MNodesCreated,
			NodesRecycled: res.DDStats.VNodesRecycled + res.DDStats.MNodesRecycled,
			CacheHits:     res.DDStats.CacheHits,
			CacheMisses:   res.DDStats.CacheMisses,
			Cleanups:      res.DDStats.Cleanups,
			ComplexValues: res.DDStats.ComplexValues,
		},
		InitialOrder: res.InitialOrder,
		FinalOrder:   res.FinalOrder,
		SiftPasses:   res.SiftPasses,
		SiftSwaps:    res.SiftSwaps,
	}
	if comp.noise != nil {
		p.Noise = string(comp.noise.Kind)
		p.NoiseParams = map[string]float64{"p": comp.noise.P}
		if comp.noise.Seed != 0 {
			p.NoiseParams["seed"] = float64(comp.noise.Seed)
		}
	}
	if res.Density != nil {
		p.Purity = res.Purity
	}
	for _, r := range res.Rounds {
		p.Rounds = append(p.Rounds, RoundPayload{
			GateIndex:     r.GateIndex,
			SizeBefore:    r.Report.SizeBefore,
			SizeAfter:     r.Report.SizeAfter,
			Achieved:      r.Report.Achieved,
			RemovedNodes:  r.Report.RemovedNodes,
			ReplacedNodes: r.Report.ReplacedNodes,
		})
	}
	if shots := comp.req.Shots; shots > 0 {
		// Safe here (and only here): with manager reuse the final state
		// dies when the worker picks up its next job.
		rng := rand.New(rand.NewSource(comp.seed))
		var hist map[uint64]int
		if res.Density != nil {
			hist = res.Density.SampleMany(shots, rng)
		} else {
			hist = res.Manager.SampleMany(res.Final, res.NumQubits, shots, rng)
		}
		p.Samples = make(map[string]int, len(hist))
		for idx, count := range hist {
			p.Samples[fmt.Sprintf("%0*b", res.NumQubits, idx)] = count
		}
	}
	return p
}

// classify maps a pool job outcome to an API status.
func classify(jr *batch.JobResult) (status, errMsg string) {
	switch {
	case jr.Err == nil:
		return StatusDone, ""
	case errors.Is(jr.Err, sim.ErrDeadlineExceeded):
		return StatusDeadline, jr.Err.Error()
	case jr.Canceled():
		return StatusCanceled, jr.Err.Error()
	default:
		return StatusFailed, jr.Err.Error()
	}
}

func (s *Server) register(js *jobState) {
	s.mu.Lock()
	s.jobs[js.id] = js
	s.order = append(s.order, js.id)
	// Bound the registry: evict finished jobs from the old end beyond
	// MaxJobs — amortized O(1) per submission. Eviction pauses while the
	// oldest retained job is still in flight (its handle is live); since
	// at most QueueDepth+Workers jobs are ever unfinished, the registry
	// exceeds the bound only until that job terminates.
	if max := s.cfg.MaxJobs; max > 0 {
		for len(s.order) > max {
			head := s.jobs[s.order[0]]
			if head != nil && !head.done.Load() {
				break
			}
			delete(s.jobs, s.order[0])
			s.order = s.order[1:]
		}
		// Re-slicing leaves evicted ids in the backing array; compact
		// occasionally so it cannot grow without bound.
		if cap(s.order) > 2*max && cap(s.order) > 2*len(s.order) {
			s.order = append(make([]string, 0, len(s.order)), s.order...)
		}
	}
	s.mu.Unlock()
}

func (s *Server) job(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// statusOf renders a job's current state. includeResult attaches the result
// payload for finished jobs.
func (s *Server) statusOf(js *jobState, includeResult bool) JobStatus {
	js.mu.Lock()
	defer js.mu.Unlock()
	st := JobStatus{
		ID:        js.id,
		Name:      js.name,
		Cached:    js.cached,
		Hash:      js.hash,
		Submitted: js.created.UTC().Format(time.RFC3339Nano),
		Error:     js.errMsg,
	}
	switch {
	case js.status != "":
		st.Status = js.status
	case js.handle != nil && js.handle.Started():
		st.Status = StatusRunning
	default:
		st.Status = StatusQueued
	}
	if includeResult && st.Status == StatusDone {
		st.Result = json.RawMessage(js.payload)
	}
	return st
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if js := s.job(id); js != nil {
			out = append(out, s.statusOf(js, false))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js := s.job(r.PathValue("id"))
	if js == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(js, true))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	js := s.job(r.PathValue("id"))
	if js == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	js.mu.Lock()
	status, payload, errMsg := js.status, js.payload, js.errMsg
	js.mu.Unlock()
	switch status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(payload)
	case "":
		writeError(w, http.StatusConflict, errors.New("job has not finished"))
	default:
		writeJSON(w, http.StatusConflict, map[string]string{"status": status, "error": errMsg})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js := s.job(r.PathValue("id"))
	if js == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if js.handle != nil && !js.done.Load() {
		js.handle.Cancel(context.Canceled)
	}
	// The response reports the job's current (possibly still running)
	// status rather than asserting "canceled": a job on its last gate may
	// legitimately finish before it observes the cancellation, and this
	// endpoint never claims a terminal state that did not happen. Poll
	// until the status is terminal to learn the outcome.
	writeJSON(w, http.StatusOK, s.statusOf(js, false))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Jobs:    map[string]int{},
		Cache:   s.cache.stats(),
		Pool:    s.pool.State(),
		Workers: map[string]WorkerDD{},
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	for worker, snap := range s.workerDD {
		st.Workers[fmt.Sprintf("%d", worker)] = snap
	}
	st.Reorder = s.reorder
	s.mu.Unlock()
	for _, id := range ids {
		if js := s.job(id); js != nil {
			st.Jobs[s.statusOf(js, false).Status]++
		}
	}
	st.Jobs["total"] = len(ids)
	writeJSON(w, http.StatusOK, st)
}

// Serve listens on addr and serves the API until ctx is canceled, then
// shuts the HTTP listener and the worker pool down gracefully, bounded by
// grace (0 means wait for in-flight jobs indefinitely).
func Serve(ctx context.Context, addr string, cfg Config, grace time.Duration) error {
	s := New(cfg)
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		// Listen failed (e.g. address in use): tear the worker pool down
		// too, or every failed Serve call would leak its workers.
		s.Shutdown(context.Background())
		return err
	case <-ctx.Done():
	}
	shutdownCtx := context.Background()
	if grace > 0 {
		var cancel context.CancelFunc
		shutdownCtx, cancel = context.WithTimeout(shutdownCtx, grace)
		defer cancel()
	}
	httpErr := hs.Shutdown(shutdownCtx)
	poolErr := s.Shutdown(shutdownCtx)
	if httpErr != nil {
		return httpErr
	}
	if poolErr != nil && !errors.Is(poolErr, context.DeadlineExceeded) {
		return poolErr
	}
	return nil
}

// writeBackpressure renders a queue-full rejection as a *retriable* 503: a
// Retry-After header (whole seconds, the HTTP-standard knob) plus
// retry_after_ms and queue_depth envelope fields carrying the precise
// estimate, so routers and clients can back off proportionally to the
// backlog instead of hammering a saturated backend.
func (s *Server) writeBackpressure(w http.ResponseWriter, err error) {
	st := s.pool.State()
	retry := retryAfterEstimate(st)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
	writeErrorEnvelope(w, http.StatusServiceUnavailable, err, map[string]any{
		"queue_depth":    st.Queued,
		"retry_after_ms": retry.Milliseconds(),
	})
}

// retryAfterEstimate projects how long the backlog should take to drain: a
// retried submission has about (queued/workers + 1) service times ahead of
// it, each costing the pool's lifetime average busy time per finished job.
// Clamped to [100ms, 30s]; with no service history the floor applies.
func retryAfterEstimate(st batch.PoolState) time.Duration {
	var busy time.Duration
	jobs := 0
	for _, w := range st.PerWorker {
		busy += w.Busy
		jobs += w.Jobs
	}
	avg := time.Duration(0)
	if jobs > 0 {
		avg = busy / time.Duration(jobs)
	}
	workers := st.Workers
	if workers < 1 {
		workers = 1
	}
	d := avg * time.Duration(st.Queued/workers+1)
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// retryAfterSeconds rounds a backoff up to whole seconds for the Retry-After
// header (minimum 1: zero means "now", which defeats the point).
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeErrorEnvelope(w, code, err, nil)
}

// writeErrorEnvelope renders the error envelope ({"error": ..., "code": ...})
// plus any extra machine-readable fields (queue_depth, retry_after_ms).
func writeErrorEnvelope(w http.ResponseWriter, code int, err error, extra map[string]any) {
	body := map[string]any{"error": err.Error()}
	if c := errorCode(err); c != "" {
		body["code"] = c
	}
	for k, v := range extra {
		body[k] = v
	}
	writeJSON(w, code, body)
}
