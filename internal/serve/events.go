package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
)

// Event types streamed on GET /v1/jobs/{id}/events.
const (
	// EventGate reports one applied gate and the state-DD size after it.
	EventGate = "gate"
	// EventApproximation reports an approximation round that modified the
	// state.
	EventApproximation = "approximation"
	// EventCleanup reports a mark-sweep node-pool collection.
	EventCleanup = "cleanup"
	// EventReorder reports a dynamic variable-reordering (sifting) pass.
	EventReorder = "reorder"
	// EventChannel reports a noise-channel application: every exact
	// superoperator application on the density backend, each sampled
	// non-identity Kraus branch (quantum jump) on a trajectory.
	EventChannel = "channel"
	// EventFinish summarizes the simulation the moment it ends on the
	// worker (before the job result is published).
	EventFinish = "finish"
	// EventStatus is the terminal event of every stream: the job's final
	// API status. Its arrival means no further events follow.
	EventStatus = "status"
)

// Event is one entry of a job's event stream, sourced from the simulation
// Observer. Seq increases by one per event; the per-job buffer is bounded,
// so a slow consumer may observe gaps (Dropped counts events evicted
// immediately before this one).
type Event struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"`
	// GateIndex is set on gate, approximation, and cleanup events.
	GateIndex int `json:"gate_index,omitempty"`
	// Size is the state-DD node count: after the gate (gate events) or at
	// the end of the run (finish events).
	Size int `json:"size,omitempty"`
	// Round carries the approximation report on approximation events.
	Round *RoundPayload `json:"round,omitempty"`
	// Live and Freed describe cleanup events.
	Live  int `json:"live,omitempty"`
	Freed int `json:"freed,omitempty"`
	// SizeBefore, Swaps, and Order describe reorder events (Size carries
	// the node count after the pass; Order is the qubit→level map).
	SizeBefore int   `json:"size_before,omitempty"`
	Swaps      int   `json:"swaps,omitempty"`
	Order      []int `json:"order,omitempty"`
	// Qubit, Kind, Strength, and Branch describe channel events (Size
	// carries the state-DD node count after the application; Branch is -1
	// for an exact superoperator application, the sampled Kraus index for
	// a trajectory jump).
	Qubit    int     `json:"qubit,omitempty"`
	Kind     string  `json:"kind,omitempty"`
	Strength float64 `json:"strength,omitempty"`
	Branch   int     `json:"branch,omitempty"`
	// MaxSize, Rounds, and Fidelity summarize finish events.
	MaxSize  int     `json:"max_size,omitempty"`
	Rounds   int     `json:"rounds,omitempty"`
	Fidelity float64 `json:"fidelity,omitempty"`
	// Status and Error are set on the terminal status event.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Dropped counts events evicted from the bounded buffer between the
	// previous delivered event and this one (0 when the stream is gapless).
	Dropped int64 `json:"dropped,omitempty"`
}

// eventBuffer is a bounded ring of a job's events. The producer is the
// worker goroutine running the simulation (via jobObserver); consumers are
// SSE handlers, each holding its own cursor. When producers outrun the ring,
// the oldest events are overwritten and consumers see a Dropped gap — the
// buffer never blocks the simulation.
type eventBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []Event
	next   int64 // seq of the next event to append; ring holds [max(0,next-len), next)
	closed bool
}

func newEventBuffer(capacity int) *eventBuffer {
	if capacity < 16 {
		capacity = 16
	}
	b := &eventBuffer{ring: make([]Event, capacity)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// append stamps the event's Seq and stores it, evicting the oldest entry
// once the ring is full.
func (b *eventBuffer) append(e Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	e.Seq = b.next
	b.ring[b.next%int64(len(b.ring))] = e
	b.next++
	b.mu.Unlock()
	b.cond.Broadcast()
}

// close marks the stream complete after appending the terminal event.
func (b *eventBuffer) close(terminal Event) {
	b.mu.Lock()
	if !b.closed {
		terminal.Seq = b.next
		b.ring[b.next%int64(len(b.ring))] = terminal
		b.next++
		b.closed = true
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// collect appends to dst every buffered event with Seq >= cursor, returning
// the new cursor, the dropped-event count (cursor fell off the ring), and
// whether the stream is complete and fully consumed. It never blocks.
func (b *eventBuffer) collect(dst []Event, cursor int64) (out []Event, nextCursor int64, dropped int64, done bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	oldest := b.next - int64(len(b.ring))
	if oldest < 0 {
		oldest = 0
	}
	if cursor < oldest {
		dropped = oldest - cursor
		cursor = oldest
	}
	for ; cursor < b.next; cursor++ {
		dst = append(dst, b.ring[cursor%int64(len(b.ring))])
	}
	return dst, cursor, dropped, b.closed
}

// wait blocks until an event with Seq >= cursor exists, the stream closes,
// or stop returns true (checked after every wake-up; pair with kick to make
// an external condition observable).
func (b *eventBuffer) wait(cursor int64, stop func() bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for cursor >= b.next && !b.closed && !stop() {
		b.cond.Wait()
	}
}

// kick wakes every waiter so it re-evaluates its stop condition.
func (b *eventBuffer) kick() { b.cond.Broadcast() }

// jobObserver adapts the simulation Observer to a job's event buffer. It
// runs on the worker goroutine; appends are mutex-bounded and never block on
// consumers.
type jobObserver struct {
	buf *eventBuffer
}

func (o jobObserver) OnGate(e core.GateEvent) {
	o.buf.append(Event{Type: EventGate, GateIndex: e.Index, Size: e.Size})
}

func (o jobObserver) OnApproximation(r core.Round) {
	rp := RoundPayload{
		GateIndex:     r.GateIndex,
		SizeBefore:    r.Report.SizeBefore,
		SizeAfter:     r.Report.SizeAfter,
		Achieved:      r.Report.Achieved,
		RemovedNodes:  r.Report.RemovedNodes,
		ReplacedNodes: r.Report.ReplacedNodes,
	}
	o.buf.append(Event{Type: EventApproximation, GateIndex: r.GateIndex, Round: &rp})
}

func (o jobObserver) OnCleanup(e core.CleanupEvent) {
	o.buf.append(Event{Type: EventCleanup, GateIndex: e.GateIndex, Live: e.Live, Freed: e.Freed})
}

func (o jobObserver) OnReorder(e core.ReorderEvent) {
	o.buf.append(Event{
		Type:       EventReorder,
		GateIndex:  e.GateIndex,
		Size:       e.SizeAfter,
		SizeBefore: e.SizeBefore,
		Swaps:      e.Swaps,
		Order:      e.Order,
	})
}

func (o jobObserver) OnChannel(e core.ChannelEvent) {
	o.buf.append(Event{
		Type:      EventChannel,
		GateIndex: e.GateIndex,
		Qubit:     e.Qubit,
		Kind:      e.Kind,
		Strength:  e.Strength,
		Branch:    e.Branch,
		Size:      e.Size,
	})
}

func (o jobObserver) OnFinish(e core.FinishEvent) {
	ev := Event{
		Type:     EventFinish,
		Size:     e.FinalDDSize,
		MaxSize:  e.MaxDDSize,
		Rounds:   e.Rounds,
		Fidelity: e.EstimatedFidelity,
	}
	if e.Err != nil {
		ev.Error = e.Err.Error()
	}
	o.buf.append(ev)
}

// handleEvents serves GET /v1/jobs/{id}/events: a Server-Sent Events stream
// of the job's buffered simulation events followed by one terminal `status`
// event. Finished (and cached) jobs replay their retained events and close
// immediately; running jobs stream live. Reconnecting clients resume with
// the standard Last-Event-ID header (or a `from` query parameter) — events
// still in the bounded buffer are replayed, older ones are reported via the
// `dropped` field.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js := s.job(r.PathValue("id"))
	if js == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	cursor := int64(0)
	if from := firstNonEmpty(r.Header.Get("Last-Event-ID"), r.URL.Query().Get("from")); from != "" {
		n, err := strconv.ParseInt(from, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed event cursor %q", from))
			return
		}
		if r.Header.Get("Last-Event-ID") != "" {
			n++ // the header names the last event received, not the next
		}
		cursor = n
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ctx := r.Context()
	// Wake the wait loop when the client disconnects; the request context
	// is always canceled by the time the handler returns, so this goroutine
	// cannot leak.
	go func() {
		<-ctx.Done()
		js.events.kick()
	}()
	var batch []Event
	for {
		var dropped int64
		var done bool
		batch, cursor, dropped, done = js.events.collect(batch[:0], cursor)
		if len(batch) > 0 {
			if dropped > 0 {
				batch[0].Dropped = dropped
			}
			for _, e := range batch {
				if err := writeSSE(w, e); err != nil {
					return
				}
			}
			flusher.Flush()
		}
		if done && len(batch) == 0 {
			return
		}
		if done {
			continue // drain anything appended between collect and now
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
		js.events.wait(cursor, func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		})
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// writeSSE renders one event in Server-Sent Events framing.
func writeSSE(w http.ResponseWriter, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
