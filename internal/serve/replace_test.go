package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// replaceRequest is the entangled-pairs workload submitted under the
// node-replacement strategy.
func replaceRequest(n int, params string) JobRequest {
	req := JobRequest{Name: "pairs-replace", Qubits: n, Strategy: StrategyReplace,
		StrategyParams: json.RawMessage(params)}
	for i := 0; i < n/2; i++ {
		req.Gates = append(req.Gates,
			GateSpec{Name: "h", Target: i},
			GateSpec{Name: "x", Target: i + n/2, Controls: []int{i}})
	}
	return req
}

// TestReplaceStrategyOverHTTP submits the pairs workload under
// strategy=replace twice. Without a floor the node budget is a hard
// ceiling: every round must end at or under it. With a floor the floor
// takes precedence — rounds still shrink, but may stop above the budget
// rather than overdraw the loss allowance — and the estimated fidelity
// must respect it.
func TestReplaceStrategyOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})

	fetch := func(params string) ResultPayload {
		t.Helper()
		st := c.await(c.submit(replaceRequest(12, params), http.StatusAccepted).ID)
		if st.Status != StatusDone {
			t.Fatalf("replace job %s: %+v", params, st)
		}
		var res ResultPayload
		if err := json.Unmarshal(st.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Strategy != "replace" {
			t.Fatalf("strategy name = %q", res.Strategy)
		}
		if len(res.Rounds) == 0 {
			t.Fatalf("no approximation rounds at budget 24 (%s): %+v", params, res)
		}
		replaced := 0
		for _, r := range res.Rounds {
			replaced += r.ReplacedNodes
			if r.SizeAfter >= r.SizeBefore {
				t.Fatalf("round did not shrink the state: %+v", r)
			}
		}
		if replaced == 0 {
			t.Fatalf("no replaced_nodes in any round (%s): %+v", params, res.Rounds)
		}
		return res
	}

	// No floor: the budget is a hard ceiling.
	res := fetch(`{"node_budget":24}`)
	for _, r := range res.Rounds {
		if r.SizeAfter > 24 {
			t.Fatalf("round ended above the node budget: %+v", r)
		}
	}

	// With a floor the floor wins over the budget, and the tracked
	// estimate (the product of achieved round fidelities) must respect it.
	res = fetch(`{"node_budget":24,"fidelity_floor":0.5}`)
	if res.EstimatedFidelity < 0.5-1e-9 || res.EstimatedFidelity > 1+1e-9 {
		t.Fatalf("estimated fidelity %v outside the floor", res.EstimatedFidelity)
	}
}

// TestReplaceRoundsOverSSE checks the approximation events of a replace job
// carry the replaced_nodes field through the SSE replay.
func TestReplaceRoundsOverSSE(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	st := c.await(c.submit(replaceRequest(12, `{"node_budget":24}`), http.StatusAccepted).ID)
	if st.Status != StatusDone {
		t.Fatalf("job: %+v", st)
	}
	code, body := c.do("GET", "/v1/jobs/"+st.ID+"/events", nil)
	if code != http.StatusOK {
		t.Fatalf("events: HTTP %d", code)
	}
	if !strings.Contains(string(body), `"replaced_nodes"`) {
		t.Fatalf("no replaced_nodes in SSE replay:\n%s", body)
	}
	found := false
	for _, frame := range strings.Split(string(body), "\n\n") {
		for _, line := range strings.Split(frame, "\n") {
			data, ok := strings.CutPrefix(line, "data: ")
			if !ok {
				continue
			}
			var e Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatal(err)
			}
			if e.Type == EventApproximation && e.Round != nil && e.Round.ReplacedNodes > 0 {
				if e.Round.SizeBefore <= e.Round.SizeAfter || e.Round.Achieved <= 0 {
					t.Fatalf("malformed replace round event: %+v", e.Round)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no approximation event with replaced_nodes > 0 in SSE replay")
	}
}

// TestReplaceComposedUnderReorder runs replace as the inner strategy of the
// reorder wrapper over HTTP, which must compose through the registry without
// any serve-side special case.
func TestReplaceComposedUnderReorder(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := replaceRequest(12, "")
	req.Strategy = StrategyReorder
	req.StrategyParams = json.RawMessage(`{"order":"identity","inner":"replace","inner_params":{"node_budget":24}}`)
	st := c.await(c.submit(req, http.StatusAccepted).ID)
	if st.Status != StatusDone {
		t.Fatalf("composed job: %+v", st)
	}
	var res ResultPayload
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "reorder(identity)+replace" {
		t.Fatalf("strategy name = %q", res.Strategy)
	}
	replaced := 0
	for _, r := range res.Rounds {
		replaced += r.ReplacedNodes
	}
	if replaced == 0 {
		t.Fatalf("inner replace never ran under reorder: %+v", res.Rounds)
	}
}

// TestReplaceParamsValidatedAtSubmit rejects malformed replace params with a
// 400 at submission time (compile validates by building one instance).
func TestReplaceParamsValidatedAtSubmit(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	for _, params := range []string{
		`{"node_budget":0}`,
		`{"node_budget":16,"fidelity_floor":1.5}`,
		`{"node_budget":16,"kinds":["vanish"]}`,
	} {
		t.Run(params, func(t *testing.T) {
			req := replaceRequest(4, params)
			resp := c.submit(req, http.StatusBadRequest)
			if resp.Error == "" {
				t.Fatalf("no error in %+v", resp)
			}
		})
	}
}

// TestReplaceHashDistinguishesParams: different replace parameters must hash
// to different content addresses (and identical ones must collide into the
// cache).
func TestReplaceHashDistinguishesParams(t *testing.T) {
	a, err := CanonicalHash(replaceRequest(8, `{"node_budget":16}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalHash(replaceRequest(8, `{"node_budget":32}`))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := CanonicalHash(replaceRequest(8, `{"node_budget":16}`))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different node budgets hash identically")
	}
	if a != a2 {
		t.Fatalf("identical submissions hash differently: %s vs %s", a, a2)
	}
}
