package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/qasm"
)

const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
`

// slowGates returns an inline request body for a circuit slow enough that
// cancellation and deadline paths are exercised deterministically (the
// simulator checks both between gates).
func slowGates() JobRequest {
	c := gen.RandomCliffordT(14, 100000, 1)
	req := JobRequest{Name: "slow", Qubits: 14}
	for _, g := range c.Gates() {
		gs := GateSpec{Name: g.Name, Params: g.Params, Target: g.Target}
		for _, ctl := range g.Controls {
			if ctl.Positive {
				gs.Controls = append(gs.Controls, ctl.Qubit)
			} else {
				gs.NegControls = append(gs.NegControls, ctl.Qubit)
			}
		}
		req.Gates = append(req.Gates, gs)
	}
	return req
}

type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func newTestServer(t *testing.T, cfg Config) (*Server, *client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, &client{t: t, base: hs.URL, http: hs.Client()}
}

func (c *client) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func (c *client) submit(req JobRequest, wantCode int) JobStatus {
	c.t.Helper()
	code, body := c.do("POST", "/v1/jobs", req)
	if code != wantCode {
		c.t.Fatalf("submit: HTTP %d (want %d): %s", code, wantCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatalf("submit response: %v: %s", err, body)
	}
	return st
}

// await polls the job until it leaves the queued/running states.
func (c *client) await(id string) JobStatus {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := c.do("GET", "/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			c.t.Fatalf("status: HTTP %d: %s", code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			c.t.Fatal(err)
		}
		if st.Status != StatusQueued && st.Status != StatusRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("job %s did not finish in time", id)
	return JobStatus{}
}

func (c *client) stats() Stats {
	c.t.Helper()
	code, body := c.do("GET", "/v1/stats", nil)
	if code != http.StatusOK {
		c.t.Fatalf("stats: HTTP %d: %s", code, body)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

// TestCacheHitEndToEnd is the acceptance path: the same QASM circuit
// submitted twice with identical options — the second response must be a
// cache hit with byte-identical results, verified via /v1/stats counters.
func TestCacheHitEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	req := JobRequest{
		Name: "ghz4", QASM: ghzQASM,
		Strategy: StrategyFidelity, FinalFidelity: 0.8, RoundFidelity: 0.9,
		Shots: 256,
	}
	first := c.submit(req, http.StatusAccepted)
	if first.Cached {
		t.Fatal("first submission must not be a cache hit")
	}
	done := c.await(first.ID)
	if done.Status != StatusDone {
		t.Fatalf("first job: %+v", done)
	}
	code, res1 := c.do("GET", "/v1/jobs/"+first.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, res1)
	}

	second := c.submit(req, http.StatusOK)
	if !second.Cached || second.Status != StatusDone {
		t.Fatalf("second submission should be a finished cache hit: %+v", second)
	}
	if second.ID == first.ID {
		t.Error("cache hits must still mint a fresh job id")
	}
	if second.Hash != first.Hash {
		t.Errorf("content hashes differ: %s vs %s", first.Hash, second.Hash)
	}
	code, res2 := c.do("GET", "/v1/jobs/"+second.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("cached result: HTTP %d: %s", code, res2)
	}
	if !bytes.Equal(res1, res2) {
		t.Errorf("cache hit is not byte-identical:\n%s\nvs\n%s", res1, res2)
	}

	st := c.stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache counters: hits=%d misses=%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Jobs[StatusDone] != 2 || st.Jobs["total"] != 2 {
		t.Errorf("job counters: %+v", st.Jobs)
	}

	var payload ResultPayload
	if err := json.Unmarshal(res1, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.NumQubits != 4 || payload.Strategy != "fidelity-driven" {
		t.Errorf("payload: %+v", payload)
	}
	total := 0
	for bits, n := range payload.Samples {
		if bits != "0000" && bits != "1111" {
			t.Errorf("GHZ sample %q", bits)
		}
		total += n
	}
	if total != 256 {
		t.Errorf("sample total %d, want 256", total)
	}
}

// TestInlineAndQASMShareCache checks content addressing across submission
// formats: the same circuit as inline gates and as QASM text must collide.
func TestInlineAndQASMShareCache(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	inline := JobRequest{
		Name: "bell-inline", Qubits: 2,
		Gates: []GateSpec{
			{Name: "h", Target: 0},
			{Name: "x", Target: 1, Controls: []int{0}},
		},
		Shots: 64, Seed: 7,
	}
	viaQASM := JobRequest{
		Name:  "bell-qasm",
		QASM:  "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		Shots: 64, Seed: 7,
	}
	a := c.submit(inline, http.StatusAccepted)
	if st := c.await(a.ID); st.Status != StatusDone {
		t.Fatalf("inline job: %+v", st)
	}
	b := c.submit(viaQASM, http.StatusOK)
	if !b.Cached {
		t.Fatalf("QASM form of the same circuit should hit the inline form's cache entry (hashes %s vs %s)", a.Hash, b.Hash)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	slow := slowGates()
	running := c.submit(slow, http.StatusAccepted)
	// Distinct seed → distinct hash → no cache/dedup interference.
	slow2 := slow
	slow2.Seed = 99
	queued := c.submit(slow2, http.StatusAccepted)

	// Cancel the queued job first: it must end canceled without ever
	// running. The acknowledgment arrives when the (currently busy) worker
	// pops it from the queue, so it is awaited after the running job is
	// canceled below.
	code, _ := c.do("DELETE", "/v1/jobs/"+queued.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel queued: HTTP %d", code)
	}

	// Wait for the head job to actually start, then cancel it mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := c.do("GET", "/v1/jobs/"+running.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("status: HTTP %d", code)
		}
		var st JobStatus
		json.Unmarshal(body, &st)
		if st.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := c.do("DELETE", "/v1/jobs/"+running.ID, nil); code != http.StatusOK {
		t.Fatalf("cancel running: HTTP %d", code)
	}
	st := c.await(running.ID)
	if st.Status != StatusCanceled {
		t.Fatalf("running job after cancel: %+v", st)
	}
	// The status flips to canceled when the worker acknowledges the
	// cancellation; the error message lands at the same time (the loop
	// below only guards against scheduling delay).
	ackDeadline := time.Now().Add(10 * time.Second)
	for st.Error == "" && time.Now().Before(ackDeadline) {
		time.Sleep(5 * time.Millisecond)
		code, body := c.do("GET", "/v1/jobs/"+running.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("status: HTTP %d", code)
		}
		json.Unmarshal(body, &st)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Errorf("cancel error message: %q", st.Error)
	}
	// With the worker free, the canceled queued job is acknowledged: it
	// ends canceled without ever having run.
	if st := c.await(queued.ID); st.Status != StatusCanceled {
		t.Fatalf("queued job after cancel: %+v", st)
	}
	// Canceled jobs must not enter the result cache.
	if got := c.stats(); got.Cache.Entries != 0 {
		t.Errorf("canceled jobs leaked into the cache: %+v", got.Cache)
	}
	// And their result endpoint reports the terminal state, not a payload.
	if code, body := c.do("GET", "/v1/jobs/"+running.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("result of canceled job: HTTP %d: %s", code, body)
	}
}

func TestDeadlinePath(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := slowGates()
	req.TimeoutMS = 30
	st := c.submit(req, http.StatusAccepted)
	final := c.await(st.ID)
	if final.Status != StatusDeadline {
		t.Fatalf("status %q, want %q (err %q)", final.Status, StatusDeadline, final.Error)
	}
	if !strings.Contains(final.Error, "deadline exceeded") {
		t.Errorf("deadline error message: %q", final.Error)
	}
}

func TestServerDefaultDeadline(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, DefaultJobTimeout: 30 * time.Millisecond})
	st := c.submit(slowGates(), http.StatusAccepted)
	if final := c.await(st.ID); final.Status != StatusDeadline {
		t.Fatalf("status %q, want server-default deadline to apply", final.Status)
	}
}

func TestValidationErrors(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxQubits: 8, MaxShots: 10})
	cases := []JobRequest{
		{}, // no circuit
		{QASM: ghzQASM, Qubits: 2, Gates: []GateSpec{{Name: "h"}}}, // both forms
		{QASM: "OPENQASM 9;"}, // parse error
		{Qubits: 2, Gates: []GateSpec{{Name: "warp", Target: 0}}}, // unknown gate
		{Qubits: 2, Gates: []GateSpec{{Name: "h", Target: 5}}},    // qubit range
		{QASM: ghzQASM, Strategy: "psychic"},                      // unknown strategy
		{QASM: ghzQASM, Strategy: StrategyMemory, Threshold: -1, RoundFidelity: 0.9},
		{QASM: ghzQASM, Strategy: StrategyFidelity, FinalFidelity: 0.9, RoundFidelity: 0.5},
		{QASM: ghzQASM, Shots: 11},                             // above MaxShots
		{Qubits: 9, Gates: []GateSpec{{Name: "h", Target: 0}}}, // above MaxQubits
		{Qubits: 2, Gates: []GateSpec{{Name: "h", Target: 0}}, Blocks: []int{3}},
	}
	for i, req := range cases {
		if code, body := c.do("POST", "/v1/jobs", req); code != http.StatusBadRequest {
			t.Errorf("case %d: HTTP %d (want 400): %s", i, code, body)
		}
	}
	// Unknown fields are rejected too (catches misspelled options that
	// would otherwise silently change what the cache key means).
	code, _ := c.do("POST", "/v1/jobs", map[string]any{"qasm": ghzQASM, "sots": 5})
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", code)
	}
	if code, _ := c.do("GET", "/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Error("unknown job id should 404")
	}
}

func TestQueueFullReturns503(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := slowGates()
	first := c.submit(slow, http.StatusAccepted)
	// Wait for the worker to pick the head job up so the queue is empty,
	// then fill the single queue slot and overflow it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := c.do("GET", "/v1/jobs/"+first.ID, nil)
		var st JobStatus
		if code == http.StatusOK {
			json.Unmarshal(body, &st)
		}
		if st.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("head job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	q := slow
	q.Seed = 2
	c.submit(q, http.StatusAccepted)
	over := slow
	over.Seed = 3
	raw, err := json.Marshal(over)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("overflow body: %s", body)
	}
	// The rejection is retriable: a Retry-After header (whole seconds) plus
	// the precise backoff and current backlog in the envelope, so routers
	// and clients can back off proportionally.
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After header %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	// The envelope carries a machine-readable code alongside the message so
	// clients can map the failure back to a typed sentinel.
	var env struct {
		Code         string `json:"code"`
		QueueDepth   int    `json:"queue_depth"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("overflow body not JSON: %s", body)
	}
	if env.Code != CodeQueueFull {
		t.Errorf("overflow code %q, want %q", env.Code, CodeQueueFull)
	}
	if env.QueueDepth != 1 {
		t.Errorf("queue_depth %d, want 1 (the one queued job)", env.QueueDepth)
	}
	if env.RetryAfterMS < 100 {
		t.Errorf("retry_after_ms %d, want >= the 100ms floor", env.RetryAfterMS)
	}
}

func TestListAndStatsShapes(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		req := JobRequest{QASM: ghzQASM, Seed: int64(i + 1), Shots: 4}
		st := c.submit(req, http.StatusAccepted)
		c.await(st.ID)
	}
	code, body := c.do("GET", "/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list.Jobs))
	}
	for i, js := range list.Jobs {
		if js.ID != fmt.Sprintf("job-%06d", i+1) {
			t.Errorf("job %d id %q: listing must preserve submission order", i, js.ID)
		}
		if js.Result != nil {
			t.Error("listing must not attach result payloads")
		}
	}
	st := c.stats()
	if st.Pool.Workers != 2 {
		t.Errorf("pool workers %d, want 2", st.Pool.Workers)
	}
	if st.Pool.Finished != 3 {
		t.Errorf("pool finished %d, want 3", st.Pool.Finished)
	}
	if st.Pool.Uptime <= 0 {
		t.Error("stats should report pool uptime")
	}
	if len(st.Pool.PerWorker) != 2 {
		t.Fatalf("stats carry %d per-worker pool entries, want 2", len(st.Pool.PerWorker))
	}
	perWorkerJobs := 0
	for w, ws := range st.Pool.PerWorker {
		perWorkerJobs += ws.Jobs
		if ws.Jobs > 0 && (ws.Busy <= 0 || ws.Utilization <= 0) {
			t.Errorf("worker %d ran %d jobs with busy=%v utilization=%v",
				w, ws.Jobs, ws.Busy, ws.Utilization)
		}
	}
	if perWorkerJobs != 3 {
		t.Errorf("per-worker jobs sum to %d, want 3", perWorkerJobs)
	}
	if len(st.Workers) == 0 {
		t.Error("stats should carry at least one per-worker DD snapshot")
	}
	for id, w := range st.Workers {
		if w.Stats.VNodesCreated == 0 || w.Pool.Capacity == 0 {
			t.Errorf("worker %s DD snapshot looks empty: %+v", id, w)
		}
	}
}

func TestShutdownCancelsPendingJobs(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	running := c.submit(slowGates(), http.StatusAccepted)
	q := slowGates()
	q.Seed = 5
	queued := c.submit(q, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("expected Shutdown to report the expired grace period")
	}
	for _, id := range []string{running.ID, queued.ID} {
		st := c.await(id)
		if st.Status != StatusCanceled {
			t.Errorf("job %s after shutdown: %+v", id, st)
		}
	}
	if code, body := c.do("POST", "/v1/jobs", JobRequest{QASM: ghzQASM}); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: HTTP %d: %s", code, body)
	}
}

func TestDerivedSeedIsStableAcrossEviction(t *testing.T) {
	// Capacity 1: the second distinct submission evicts the first, so the
	// third (repeating the first) recomputes — and must reproduce the same
	// samples because seedless jobs derive their seed from the content hash.
	_, c := newTestServer(t, Config{Workers: 1, CacheEntries: 1})
	req := JobRequest{QASM: ghzQASM, Shots: 128}
	first := c.submit(req, http.StatusAccepted)
	c.await(first.ID)
	_, res1 := c.do("GET", "/v1/jobs/"+first.ID+"/result", nil)

	other := JobRequest{QASM: ghzQASM, Shots: 128, Seed: 42}
	o := c.submit(other, http.StatusAccepted)
	c.await(o.ID)

	third := c.submit(req, http.StatusAccepted)
	if third.Cached {
		t.Fatal("entry should have been evicted (capacity 1)")
	}
	done := c.await(third.ID)
	if done.Status != StatusDone {
		t.Fatalf("recomputed job: %+v", done)
	}
	_, res3 := c.do("GET", "/v1/jobs/"+third.ID+"/result", nil)
	var p1, p3 ResultPayload
	if err := json.Unmarshal(res1, &p1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(res3, &p3); err != nil {
		t.Fatal(err)
	}
	if p1.Seed != p3.Seed {
		t.Errorf("derived seeds differ across eviction: %d vs %d", p1.Seed, p3.Seed)
	}
	if fmt.Sprint(p1.Samples) != fmt.Sprint(p3.Samples) {
		t.Errorf("samples differ across eviction:\n%v\nvs\n%v", p1.Samples, p3.Samples)
	}
	st := c.stats()
	if st.Cache.Evictions == 0 {
		t.Errorf("expected at least one eviction: %+v", st.Cache)
	}
}

// TestJobRegistryBounded submits more jobs than MaxJobs retains and checks
// the oldest finished ones are evicted while newer ones stay addressable.
func TestJobRegistryBounded(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxJobs: 3, CacheEntries: -1})
	var ids []string
	for i := 0; i < 5; i++ {
		st := c.submit(JobRequest{QASM: ghzQASM, Seed: int64(i + 1)}, http.StatusAccepted)
		c.await(st.ID)
		ids = append(ids, st.ID)
	}
	for _, id := range ids[:2] {
		if code, _ := c.do("GET", "/v1/jobs/"+id, nil); code != http.StatusNotFound {
			t.Errorf("evicted job %s still addressable (HTTP %d)", id, code)
		}
	}
	for _, id := range ids[2:] {
		if code, _ := c.do("GET", "/v1/jobs/"+id, nil); code != http.StatusOK {
			t.Errorf("retained job %s lost (HTTP %d)", id, code)
		}
	}
	if st := c.stats(); st.Jobs["total"] != 3 {
		t.Errorf("registry retained %d jobs, want 3", st.Jobs["total"])
	}
}

// TestServeReleasesPoolOnListenFailure binds the same address twice: the
// second Serve must fail fast without leaking its worker pool.
func TestServeReleasesPoolOnListenFailure(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		err := Serve(context.Background(), "256.256.256.256:0", Config{Workers: 4}, time.Second)
		if err == nil {
			t.Fatal("Serve on an invalid address should fail")
		}
	}
	// Workers exit synchronously inside Serve's shutdown path; allow a
	// moment for goroutine bookkeeping to settle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines grew from %d to %d: worker pools leaked", before, g)
	}
}

// TestQASMParsesLikeLibrary pins the QASM front door to the library parser,
// so service submissions and qasm.Parse agree on the IR (and therefore on
// content hashes).
func TestQASMParsesLikeLibrary(t *testing.T) {
	prog, err := qasm.Parse(ghzQASM, "ghz")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumQubits != 4 || prog.Circuit.Len() != 4 {
		t.Fatalf("unexpected GHZ IR: %s", prog.Circuit)
	}
}
