// Package serve turns the simulator into an asynchronous HTTP/JSON service:
// simulation-as-a-service on top of the internal/batch worker pool, so many
// callers can submit circuits — each with its own accuracy/cost trade-off —
// against one bounded set of simulation workers.
//
// The API (mounted by Server.Handler, served standalone by cmd/simd):
//
//	POST   /v1/jobs             submit a circuit (OpenQASM 2.0 source or an
//	                            inline gate list) with a per-job
//	                            approximation strategy — a builtin (exact,
//	                            memory, fidelity) or any name registered
//	                            via core.RegisterStrategy, parameterized by
//	                            flat fields or strategy_params JSON — plus
//	                            shots, seed, and timeout
//	GET    /v1/jobs             list submissions with their statuses
//	GET    /v1/jobs/{id}        poll one job (result attached when done)
//	GET    /v1/jobs/{id}/result fetch the raw result payload
//	GET    /v1/jobs/{id}/events stream the job's simulation events (SSE):
//	                            per-gate sizes, approximation rounds,
//	                            cleanups, then a terminal status frame
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/stats            cache, pool, and DD memory-system counters
//	GET    /healthz             liveness probe
//
// Results are content-addressed: each submission is hashed over the
// canonical circuit encoding (circuit.AppendCanonical) plus every
// result-relevant option, and finished payloads enter a bounded LRU cache.
// An identical submission — whether it arrives as the same QASM text, as
// equivalent inline gates, or from a different caller — is answered from
// the cache byte-for-byte, without occupying a worker. Seedless submissions
// derive their measurement seed from the content hash itself, so results
// are reproducible from the request alone, even after cache eviction.
//
// Job execution, cancellation, deadlines, and seeding all delegate to
// batch.Pool; response payloads are assembled in the job's Finalize hook on
// the worker goroutine, the only point where the final state DD is
// guaranteed valid when managers are reused. Each job carries a bounded
// event ring (Config.EventBufferSize) fed by the simulation Observer on the
// worker — appends never block on consumers, slow or reconnecting SSE
// readers see an explicit dropped-count gap instead. The public client
// package wraps the whole API in typed calls, including the event stream.
// docs/API.md documents every endpoint with request/response examples.
package serve
