package serve

import (
	"container/list"
	"sync"
)

// CacheStats reports result-cache effectiveness, surfaced on /v1/stats.
type CacheStats struct {
	// Entries and Capacity are the current and maximum entry counts.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits, Misses, and Evictions count lookups served from the cache,
	// lookups that fell through to a fresh simulation, and entries dropped
	// by the LRU bound.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// resultCache is an LRU map from canonical circuit+options hashes to the
// exact marshaled result payload served for that submission. Storing the
// serialized bytes (rather than re-marshaling a struct) makes cache hits
// byte-identical to the original response.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key     string
	payload []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the payload stored under key and bumps it to most recently
// used. Every call counts as a hit or a miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).payload, true
	}
	c.misses++
	return nil, false
}

// put stores payload under key, evicting least-recently-used entries beyond
// the capacity. Re-putting an existing key refreshes its payload and recency.
func (c *resultCache) put(key string, payload []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).payload = payload
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
	for len(c.entries) > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
