package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/atlas"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/qasm"
	"repro/internal/sim"
)

// Builtin strategy names accepted in JobRequest.Strategy. Any further name
// registered through core.RegisterStrategy is accepted as well, with its
// parameters passed via JobRequest.StrategyParams — this is how user-defined
// strategies become reachable over HTTP.
const (
	StrategyExact    = "exact"
	StrategyMemory   = "memory"
	StrategyFidelity = "fidelity"
	// StrategyReplace is node replacement (arXiv 2507.04335): low-
	// contribution nodes are swapped for cheaper substitutes instead of
	// zeroed. Parameters via StrategyParams (core.ReplaceDrivenParams),
	// e.g. {"node_budget":512,"fidelity_floor":0.9,"kinds":["collapse","promote"]}.
	StrategyReplace = "replace"
	// StrategyReorder wraps any other strategy with variable reordering; it
	// takes parameters only through StrategyParams (see order.Params), e.g.
	// {"order":"scored","sift":true,"inner":"memory","inner_params":{...}}.
	StrategyReorder = "reorder"
	// StrategyAuto classifies the submitted circuit by gate mix
	// (gen.Classify) and installs the committed approximability-atlas winner
	// for its workload class (internal/atlas, docs/ATLAS.md). It resolves
	// before hashing, so an auto submission shares its cache entry — and its
	// byte-identical payload — with an explicit submission of the winning
	// configuration; ResultPayload.ResolvedStrategy reports what was
	// installed. Auto takes no parameters and only runs noiseless
	// statevector jobs (the atlas is measured there).
	StrategyAuto = "auto"
)

// GateSpec is one gate of an inline circuit submission.
type GateSpec struct {
	// Name is a gate from the standard set the circuit IR accepts (h, x,
	// cx via controls, rz, u, ...), or "measure"/"reset".
	Name string `json:"name"`
	// Params are the gate's rotation angles, when it takes any.
	Params []float64 `json:"params,omitempty"`
	// Target is the target qubit (bit Target of the basis-state index).
	Target int `json:"target"`
	// Controls and NegControls list positive and negative control qubits.
	Controls    []int `json:"controls,omitempty"`
	NegControls []int `json:"neg_controls,omitempty"`
}

// JobRequest is the submission body accepted by POST /v1/jobs. Exactly one
// of QASM or (Qubits, Gates) describes the circuit.
type JobRequest struct {
	// Name labels the job in listings; it does not affect results or
	// caching.
	Name string `json:"name,omitempty"`

	// QASM is an OpenQASM 2.0 program (barriers become block boundaries).
	QASM string `json:"qasm,omitempty"`
	// Qubits and Gates describe an inline circuit.
	Qubits int        `json:"qubits,omitempty"`
	Gates  []GateSpec `json:"gates,omitempty"`
	// Blocks lists gate indices after which a block boundary sits (the
	// fidelity-driven strategy places approximation rounds at boundaries).
	Blocks []int `json:"blocks,omitempty"`

	// Strategy selects the approximation mode: "exact" (default),
	// "memory" (Section IV-B), "fidelity" (Section IV-C), or any name
	// registered through core.RegisterStrategy.
	Strategy string `json:"strategy,omitempty"`
	// StrategyParams carries the strategy's JSON parameters verbatim to
	// its registered factory. For the builtins it replaces the flat fields
	// below (setting both is an error); for registered strategies it is
	// the only way to pass parameters.
	StrategyParams json.RawMessage `json:"strategy_params,omitempty"`
	// Threshold is the memory-driven initial node-count threshold.
	Threshold int `json:"threshold,omitempty"`
	// Growth is the memory-driven threshold multiplier (default 2).
	Growth float64 `json:"growth,omitempty"`
	// RoundFidelity is the per-round target fidelity f_round (both
	// strategies).
	RoundFidelity float64 `json:"round_fidelity,omitempty"`
	// FinalFidelity is the fidelity-driven end-to-end lower bound f_final.
	FinalFidelity float64 `json:"final_fidelity,omitempty"`

	// Backend selects the state representation: "statevector" (the
	// default) or "density" (exact noisy simulation on a density matrix).
	// A submission that sets noise but leaves the backend empty runs on
	// the density backend; "statevector" with noise runs one seeded
	// quantum-trajectory sample instead.
	Backend string `json:"backend,omitempty"`
	// Noise names a built-in channel applied after every gate to each
	// touched qubit: depolarizing, amplitude_damping, dephasing, bit_flip,
	// or phase_flip. Empty means noiseless.
	Noise string `json:"noise,omitempty"`
	// NoiseParams parameterizes the channel: "p" (or "gamma", the
	// amplitude-damping spelling) is the channel strength in [0,1], "seed"
	// seeds trajectory branch sampling on the statevector backend.
	NoiseParams map[string]float64 `json:"noise_params,omitempty"`

	// InitialState selects the starting basis state |InitialState⟩.
	InitialState uint64 `json:"initial_state,omitempty"`
	// Shots draws that many samples from the final state (0 = none).
	Shots int `json:"shots,omitempty"`
	// Seed seeds mid-circuit measurements and sampling. 0 derives a stable
	// seed from the submission's content hash, so identical submissions
	// yield identical samples even across cache evictions.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS bounds the simulation in milliseconds; 0 uses the server
	// default. The timeout does not participate in the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// compiled is a validated submission ready for the pool.
type compiled struct {
	req     JobRequest
	circuit *circuit.Circuit
	hash    string // hex sha256 over circuit + result-relevant options
	seed    int64  // resolved measurement/sampling seed (never 0)
	timeout time.Duration

	// stratName and stratParams are the resolved registry name and JSON
	// parameters the job's per-run strategy instances are built from.
	stratName   string
	stratParams json.RawMessage

	// backend is the resolved simulation backend (never empty) and noise
	// the parsed channel model (nil when the submission is noiseless).
	backend sim.Backend
	noise   *sim.NoiseModel
}

// resolveCircuit builds the submission's circuit IR from whichever of the
// two circuit encodings (QASM, inline gates) the request carries.
func resolveCircuit(req JobRequest) (*circuit.Circuit, error) {
	switch {
	case req.QASM != "" && len(req.Gates) > 0:
		return nil, fmt.Errorf("submission carries both qasm and inline gates; pick one")
	case req.QASM != "":
		prog, err := qasm.Parse(req.QASM, req.Name)
		if err != nil {
			return nil, fmt.Errorf("qasm: %w", err)
		}
		return prog.Circuit, nil
	case len(req.Gates) > 0:
		return buildInline(req)
	default:
		return nil, fmt.Errorf("submission carries no circuit (set qasm or qubits+gates)")
	}
}

// CanonicalHash resolves a submission's content address: the hex sha256 over
// the canonical circuit encoding and every result-relevant option — the same
// key the in-server result cache stores under. It applies no server limits,
// so routing tiers (the cluster router, hash-affine clients) can compute the
// key for any well-formed submission without owning a Server; a request this
// function rejects would be rejected by every backend too.
func CanonicalHash(req JobRequest) (string, error) {
	circ, err := resolveCircuit(req)
	if err != nil {
		return "", err
	}
	req, err = resolveAuto(req, circ)
	if err != nil {
		return "", err
	}
	return contentHash(circ, normalizeForHash(req)), nil
}

// resolveAuto rewrites a strategy=auto submission into the committed atlas
// winner for the circuit's workload class. It runs right after circuit
// resolution in both compile and CanonicalHash — before strategy validation
// and hashing — so routing tiers and backends agree on the key, and an auto
// submission is indistinguishable (hash, cache entry, result payload) from
// explicitly submitting the winning configuration.
func resolveAuto(req JobRequest, circ *circuit.Circuit) (JobRequest, error) {
	if req.Strategy != StrategyAuto {
		return req, nil
	}
	if len(req.StrategyParams) > 0 {
		return req, fmt.Errorf("strategy %q picks its own parameters; strategy_params may not be set", StrategyAuto)
	}
	if req.Threshold != 0 || req.Growth != 0 || req.RoundFidelity != 0 || req.FinalFidelity != 0 {
		return req, fmt.Errorf("strategy %q picks its own parameters; the flat threshold/growth/round_fidelity/final_fidelity fields may not be set", StrategyAuto)
	}
	if req.Noise != "" || sim.Backend(req.Backend) == sim.BackendDensity {
		return req, fmt.Errorf("strategy %q resolves from the noiseless statevector atlas; noisy or density jobs must pick a strategy explicitly", StrategyAuto)
	}
	win := atlas.Resolve(gen.Classify(circ))
	req.Strategy = win.Strategy
	if win.Params != "" {
		req.StrategyParams = json.RawMessage(win.Params)
	}
	return req, nil
}

// compile validates the request against the server limits and resolves the
// circuit, strategy parameters, content hash, and seed.
func (s *Server) compile(req JobRequest) (*compiled, error) {
	circ, err := resolveCircuit(req)
	if err != nil {
		return nil, err
	}
	req, err = resolveAuto(req, circ)
	if err != nil {
		return nil, err
	}
	if max := s.cfg.MaxQubits; max > 0 && circ.NumQubits > max {
		return nil, fmt.Errorf("circuit has %d qubits, above the server limit of %d", circ.NumQubits, max)
	}
	if req.Shots < 0 {
		return nil, fmt.Errorf("shots %d must be ≥ 0", req.Shots)
	}
	if max := s.cfg.MaxShots; max > 0 && req.Shots > max {
		return nil, fmt.Errorf("shots %d above the server limit of %d", req.Shots, max)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d must be ≥ 0", req.TimeoutMS)
	}

	// Resolve the strategy through the core registry (builtins and
	// user-registered alike) and validate by building + Init'ing one
	// instance up front, so submissions fail with a 400 instead of a
	// failed job.
	name, params, err := resolveStrategy(req)
	if err != nil {
		return nil, err
	}
	st, err := core.NewStrategyByName(name, params)
	if err != nil {
		return nil, err
	}
	if err := st.Init(circ.Len(), circ.Blocks()); err != nil {
		return nil, err
	}

	backend, noise, err := resolveNoise(req)
	if err != nil {
		return nil, err
	}
	if backend == sim.BackendDensity {
		// The density backend evolves ρ exactly; approximation strategies
		// rewrite statevector DDs and cannot run on it. Reject here with a
		// 400 instead of a failed job.
		if _, exact := st.(core.Exact); !exact {
			return nil, fmt.Errorf("backend %q requires the exact strategy, got %q", backend, name)
		}
	}

	c := &compiled{req: req, circuit: circ, stratName: name, stratParams: params,
		backend: backend, noise: noise}
	c.hash = contentHash(circ, normalizeForHash(req))
	c.seed = req.Seed
	if c.seed == 0 {
		c.seed = seedFromHash(c.hash)
	}
	c.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	if c.timeout == 0 {
		c.timeout = s.cfg.DefaultJobTimeout
	}
	return c, nil
}

// resolveStrategy maps a submission onto a registry (name, params) pair. The
// flat fields (threshold, growth, round/final fidelity) remain the builtin
// shorthand; strategy_params passes JSON through to any registered factory
// and may not be combined with the flat fields.
func resolveStrategy(req JobRequest) (string, json.RawMessage, error) {
	name := req.Strategy
	if name == "" {
		name = StrategyExact
	}
	flat := req.Threshold != 0 || req.Growth != 0 || req.RoundFidelity != 0 || req.FinalFidelity != 0
	if len(req.StrategyParams) > 0 {
		if flat {
			return "", nil, fmt.Errorf("submission carries both strategy_params and flat strategy fields (threshold/growth/round_fidelity/final_fidelity); pick one")
		}
		return name, req.StrategyParams, nil
	}
	switch name {
	case StrategyExact:
		return name, nil, nil
	case StrategyMemory:
		params, err := json.Marshal(core.MemoryDrivenParams{
			Threshold:     req.Threshold,
			RoundFidelity: req.RoundFidelity,
			Growth:        req.Growth,
		})
		return name, params, err
	case StrategyFidelity:
		params, err := json.Marshal(core.FidelityDrivenParams{
			FinalFidelity: req.FinalFidelity,
			RoundFidelity: req.RoundFidelity,
		})
		return name, params, err
	default:
		// Registered strategies take parameters only through
		// strategy_params; silently ignoring the flat shorthand would run
		// the job with the factory's defaults.
		if flat {
			return "", nil, fmt.Errorf("strategy %q takes parameters via strategy_params, not the flat threshold/growth/round_fidelity/final_fidelity fields", name)
		}
		return name, nil, nil
	}
}

// resolveNoise validates the submission's backend and noise fields and
// resolves the effective backend: an empty backend means statevector for
// noiseless jobs and density for noisy ones (exact noisy results are what a
// noise-carrying submission is asking for; trajectory sampling is the
// explicit statevector+noise opt-in).
func resolveNoise(req JobRequest) (sim.Backend, *sim.NoiseModel, error) {
	var noise *sim.NoiseModel
	switch {
	case req.Noise != "":
		n, err := sim.ParseNoise(req.Noise, req.NoiseParams)
		if err != nil {
			return "", nil, err
		}
		noise = &n
	case len(req.NoiseParams) > 0:
		return "", nil, fmt.Errorf("noise_params given without noise")
	}
	backend := sim.Backend(req.Backend)
	switch backend {
	case "":
		backend = sim.BackendStatevector
		if noise != nil {
			backend = sim.BackendDensity
		}
	case sim.BackendStatevector, sim.BackendDensity:
	default:
		return "", nil, fmt.Errorf("unknown backend %q (have %v)", req.Backend, sim.Backends())
	}
	return backend, noise, nil
}

// newStrategy builds a fresh strategy instance for one run (strategies are
// stateful, so each run needs its own). compile already validated the
// (name, params) pair and the registry is append-only, so the error path is
// defensive: it surfaces as a failed job rather than a panic.
func (c *compiled) newStrategy() core.Strategy {
	st, err := core.NewStrategyByName(c.stratName, c.stratParams)
	if err != nil {
		return brokenStrategy{err}
	}
	return st
}

// brokenStrategy fails the run at Init with the construction error.
type brokenStrategy struct{ err error }

func (b brokenStrategy) Name() string          { return "broken" }
func (b brokenStrategy) Init(int, []int) error { return b.err }
func (b brokenStrategy) AfterGate(_ *dd.Manager, _, _ int, state dd.VEdge) (dd.VEdge, *core.Round, error) {
	return state, nil, nil
}

func buildInline(req JobRequest) (*circuit.Circuit, error) {
	if req.Qubits <= 0 {
		return nil, fmt.Errorf("inline circuit needs qubits ≥ 1, got %d", req.Qubits)
	}
	for i, b := range req.Blocks {
		if b < 0 || b >= len(req.Gates) {
			return nil, fmt.Errorf("block boundary %d outside gate range [0,%d)", b, len(req.Gates))
		}
		if i > 0 && b <= req.Blocks[i-1] {
			return nil, fmt.Errorf("block boundaries must be strictly increasing")
		}
	}
	c := circuit.New(req.Qubits, req.Name)
	next := 0
	for i, g := range req.Gates {
		if err := appendGate(c, g); err != nil {
			return nil, fmt.Errorf("gate %d: %w", i, err)
		}
		// EndBlock marks a boundary after the most recent gate, so replay
		// the requested boundaries in step with appending.
		if next < len(req.Blocks) && req.Blocks[next] == i {
			c.EndBlock()
			next++
		}
	}
	return c, nil
}

func appendGate(c *circuit.Circuit, g GateSpec) (err error) {
	// The IR panics on out-of-range qubits; surface that as a request error.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	switch g.Name {
	case "":
		return fmt.Errorf("missing gate name")
	case "measure":
		c.Measure(g.Target)
		return nil
	case "reset":
		c.Reset(g.Target)
		return nil
	}
	controls := make([]dd.Control, 0, len(g.Controls)+len(g.NegControls))
	for _, q := range g.Controls {
		controls = append(controls, dd.PosControl(q))
	}
	for _, q := range g.NegControls {
		controls = append(controls, dd.NegControl(q))
	}
	// Validate the gate name eagerly: Apply stores it, but an unknown name
	// would only fail at simulation time.
	if _, err := circuit.Matrix1Q(g.Name, g.Params); err != nil {
		return err
	}
	c.Apply(g.Name, g.Params, g.Target, controls...)
	return nil
}

// normalizeForHash rewrites the request to its canonical form so that
// semantically identical submissions hash identically: the default strategy
// spells out as "exact", parameters irrelevant to the selected strategy are
// zeroed (an exact job with a stray threshold simulates the same), and
// omitted defaults are filled in (memory-driven growth 0 means 2, exactly
// as core.MemoryDriven.Init applies it).
func normalizeForHash(req JobRequest) JobRequest {
	switch req.Strategy {
	case "", StrategyExact:
		req.Strategy = StrategyExact
		req.Threshold, req.Growth, req.RoundFidelity, req.FinalFidelity = 0, 0, 0, 0
		req.StrategyParams = nil // the exact factory ignores parameters
	case StrategyMemory:
		if len(req.StrategyParams) == 0 && req.Growth == 0 {
			req.Growth = 2
		}
		req.FinalFidelity = 0
	case StrategyFidelity:
		req.Threshold, req.Growth = 0, 0
	default:
		// Registered strategies take parameters only through
		// strategy_params; the flat fields cannot affect the run.
		req.Threshold, req.Growth, req.RoundFidelity, req.FinalFidelity = 0, 0, 0, 0
	}
	// Backend and noise canonicalize the same way compile resolves them: the
	// empty backend spells out as the effective one, and noise parameters
	// collapse to their parsed form so the "gamma" spelling of amplitude
	// damping hashes identically to "p". Malformed noise is left verbatim —
	// compile rejects it on every backend, so its hash addresses nothing.
	if req.Noise == "" {
		req.NoiseParams = nil
		if req.Backend == "" {
			req.Backend = string(sim.BackendStatevector)
		}
	} else {
		if req.Backend == "" {
			req.Backend = string(sim.BackendDensity)
		}
		if n, err := sim.ParseNoise(req.Noise, req.NoiseParams); err == nil {
			req.Noise = string(n.Kind)
			req.NoiseParams = map[string]float64{"p": n.P}
			if n.Seed != 0 {
				req.NoiseParams["seed"] = float64(n.Seed)
			}
		}
	}
	return req
}

// contentHash is the content-addressing key: sha256 over the canonical
// circuit encoding plus every result-relevant option (callers pass the
// request through normalizeForHash first). Job name and timeout are
// excluded (they cannot change the result payload); an explicit seed is
// included, while seed 0 hashes as 0 and then derives deterministically from
// this very hash, so the derived seed never makes identical submissions
// diverge.
func contentHash(c *circuit.Circuit, req JobRequest) string {
	b := make([]byte, 0, 1024)
	b = append(b, "repro-serve-v2\x00"...)
	b = c.AppendCanonical(b)
	b = append(b, req.Strategy...)
	b = append(b, 0)
	b = append(b, req.Backend...)
	b = append(b, 0)
	b = append(b, req.Noise...)
	b = append(b, 0)
	// normalizeForHash collapsed NoiseParams to at most {"p", "seed"};
	// hashing the two fixed keys keeps the encoding order-independent.
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(req.NoiseParams["p"]))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(req.NoiseParams["seed"]))
	b = binary.BigEndian.AppendUint64(b, uint64(req.Threshold))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(req.Growth))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(req.RoundFidelity))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(req.FinalFidelity))
	b = binary.BigEndian.AppendUint64(b, req.InitialState)
	b = binary.BigEndian.AppendUint64(b, uint64(req.Shots))
	b = binary.BigEndian.AppendUint64(b, uint64(req.Seed))
	// strategy_params hash verbatim (length-prefixed): two submissions
	// with byte-identical params share the entry; the flat-field shorthand
	// and its params spelling address different entries, which costs at
	// most a duplicate cache slot, never a wrong hit.
	b = binary.BigEndian.AppendUint64(b, uint64(len(req.StrategyParams)))
	b = append(b, req.StrategyParams...)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// seedFromHash derives a non-zero measurement seed from the content hash, so
// seedless submissions are reproducible by content alone.
func seedFromHash(hash string) int64 {
	raw, _ := hex.DecodeString(hash[:16])
	seed := int64(binary.BigEndian.Uint64(raw))
	if seed == 0 {
		seed = 1
	}
	return seed
}
