package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/atlas"
	"repro/internal/gen"
	"repro/internal/qasm"
)

// TestAutoStrategyEndToEnd is the atlas acceptance path: a QAOA circuit
// submitted over HTTP with strategy=auto must resolve to the committed
// atlas winner for its class (visible in ResultPayload.ResolvedStrategy)
// and be bit-identical to submitting that winner explicitly — same content
// hash, same cache entry, same payload bytes.
func TestAutoStrategyEndToEnd(t *testing.T) {
	circ := gen.QAOAMaxCut(10, 2, 1)
	if got := gen.Classify(circ); got != gen.ClassQAOA {
		t.Fatalf("workload classified %q, want %q", got, gen.ClassQAOA)
	}
	win := atlas.Resolve(gen.ClassQAOA)
	src, err := qasm.Export(circ)
	if err != nil {
		t.Fatal(err)
	}
	autoReq := JobRequest{Name: "qaoa-auto", QASM: src, Strategy: StrategyAuto, Shots: 64}
	explicitReq := JobRequest{Name: "qaoa-explicit", QASM: src, Strategy: win.Strategy, Shots: 64}
	if win.Params != "" {
		explicitReq.StrategyParams = json.RawMessage(win.Params)
	}

	// The content addresses must agree before any server is involved — the
	// cluster router routes auto submissions by the same key as explicit
	// ones.
	autoHash, err := CanonicalHash(autoReq)
	if err != nil {
		t.Fatal(err)
	}
	explicitHash, err := CanonicalHash(explicitReq)
	if err != nil {
		t.Fatal(err)
	}
	if autoHash != explicitHash {
		t.Fatalf("auto hash %s != explicit winner hash %s", autoHash, explicitHash)
	}

	_, c := newTestServer(t, Config{Workers: 2})
	first := c.submit(autoReq, http.StatusAccepted)
	if first.Hash != autoHash {
		t.Fatalf("submitted hash %s, want %s", first.Hash, autoHash)
	}
	if st := c.await(first.ID); st.Status != StatusDone {
		t.Fatalf("auto job ended %q: %s", st.Status, st.Error)
	}
	code, autoBody := c.do("GET", "/v1/jobs/"+first.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, autoBody)
	}
	var payload ResultPayload
	if err := json.Unmarshal(autoBody, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.ResolvedStrategy != win.Strategy {
		t.Fatalf("resolved_strategy %q, want atlas winner %q", payload.ResolvedStrategy, win.Strategy)
	}
	if string(payload.ResolvedStrategyParams) != win.Params {
		t.Fatalf("resolved_strategy_params %s, want %q", payload.ResolvedStrategyParams, win.Params)
	}

	// Submitting the winner explicitly must hit the auto submission's cache
	// entry and return byte-identical results.
	second := c.submit(explicitReq, http.StatusOK)
	if !second.Cached {
		t.Fatal("explicit winner submission missed the auto submission's cache entry")
	}
	if st := c.await(second.ID); st.Status != StatusDone {
		t.Fatalf("explicit job ended %q: %s", st.Status, st.Error)
	}
	code, explicitBody := c.do("GET", "/v1/jobs/"+second.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, explicitBody)
	}
	if !bytes.Equal(autoBody, explicitBody) {
		t.Fatalf("auto and explicit payloads differ:\nauto:     %s\nexplicit: %s", autoBody, explicitBody)
	}
}

// TestAutoStrategyResolvesEveryClass checks resolveAuto against the
// committed table for one representative circuit per workload class.
func TestAutoStrategyResolvesEveryClass(t *testing.T) {
	circs := map[string]func() (string, error){
		"qft":       func() (string, error) { return qasm.Export(gen.QFT(6)) },
		"qaoa":      func() (string, error) { return qasm.Export(gen.QAOAMaxCut(6, 2, 1)) },
		"vqe":       func() (string, error) { return qasm.Export(gen.VQEAnsatz(6, 2, gen.VQELinear, 1)) },
		"cliffordt": func() (string, error) { return qasm.Export(gen.CliffordT(6, 60, 12, 1)) },
	}
	for class, build := range circs {
		src, err := build()
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		req := JobRequest{QASM: src, Strategy: StrategyAuto}
		circ, err := resolveCircuit(req)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		resolved, err := resolveAuto(req, circ)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		win := atlas.Resolve(class)
		if resolved.Strategy != win.Strategy || string(resolved.StrategyParams) != win.Params {
			t.Errorf("%s: resolved (%s, %s), want (%s, %s)",
				class, resolved.Strategy, resolved.StrategyParams, win.Strategy, win.Params)
		}
	}
}

// TestAutoStrategyRejections covers the 400 cases: auto takes no
// parameters and only resolves noiseless statevector jobs.
func TestAutoStrategyRejections(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	base := JobRequest{QASM: ghzQASM, Strategy: StrategyAuto}

	withParams := base
	withParams.StrategyParams = json.RawMessage(`{"threshold":64}`)
	c.submit(withParams, http.StatusBadRequest)

	withFlat := base
	withFlat.Threshold = 64
	c.submit(withFlat, http.StatusBadRequest)

	withNoise := base
	withNoise.Noise = "depolarizing"
	withNoise.NoiseParams = map[string]float64{"p": 0.01}
	c.submit(withNoise, http.StatusBadRequest)

	withDensity := base
	withDensity.Backend = "density"
	c.submit(withDensity, http.StatusBadRequest)

	// The same rejections apply at the routing tier.
	if _, err := CanonicalHash(withParams); err == nil {
		t.Error("CanonicalHash accepted auto with strategy_params")
	}
	if _, err := CanonicalHash(withNoise); err == nil {
		t.Error("CanonicalHash accepted auto with noise")
	}
}
