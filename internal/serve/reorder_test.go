package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// pairsRequest is the entangled-pairs workload as an inline submission: the
// scored ordering places each (i, i+n/2) couple adjacently, collapsing the
// identity order's exponential cut.
func pairsRequest(n int, params string) JobRequest {
	req := JobRequest{Name: "pairs", Qubits: n, Strategy: "reorder",
		StrategyParams: json.RawMessage(params)}
	for i := 0; i < n/2; i++ {
		req.Gates = append(req.Gates,
			GateSpec{Name: "h", Target: i},
			GateSpec{Name: "x", Target: i + n/2, Controls: []int{i}})
	}
	return req
}

// TestReorderStrategyOverHTTP submits the same circuit under identity and
// scored orderings via strategy_params, checks the scored job's payload
// reports the order and a smaller peak, and that /v1/stats aggregates the
// reordering activity.
func TestReorderStrategyOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})

	ident := c.submit(pairsRequest(12, `{"order":"identity"}`), http.StatusAccepted)
	st := c.await(ident.ID)
	if st.Status != StatusDone {
		t.Fatalf("identity job: %+v", st)
	}
	var identRes ResultPayload
	if err := json.Unmarshal(st.Result, &identRes); err != nil {
		t.Fatal(err)
	}

	scored := c.submit(pairsRequest(12, `{"order":"scored"}`), http.StatusAccepted)
	st = c.await(scored.ID)
	if st.Status != StatusDone {
		t.Fatalf("scored job: %+v", st)
	}
	var scoredRes ResultPayload
	if err := json.Unmarshal(st.Result, &scoredRes); err != nil {
		t.Fatal(err)
	}

	if len(scoredRes.InitialOrder) != 12 || len(scoredRes.FinalOrder) != 12 {
		t.Fatalf("scored payload missing orders: %+v", scoredRes)
	}
	if scoredRes.MaxDDSize*4 > identRes.MaxDDSize {
		t.Fatalf("scored peak %d vs identity peak %d: ordering had no effect over HTTP",
			scoredRes.MaxDDSize, identRes.MaxDDSize)
	}
	if scoredRes.Strategy != "reorder(scored)+exact" {
		t.Fatalf("strategy name = %q", scoredRes.Strategy)
	}

	stats := c.stats()
	if stats.Reorder.Jobs != 2 {
		t.Fatalf("stats.Reorder.Jobs = %d, want 2", stats.Reorder.Jobs)
	}
}

// TestReorderSiftEventsOverSSE runs a sifting job and expects reorder events
// in the SSE replay plus sift counters in the payload and /v1/stats.
func TestReorderSiftEventsOverSSE(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := pairsRequest(12, `{"order":"identity","sift":true,"sift_threshold":8,"sift_max_passes":3}`)
	st := c.await(c.submit(req, http.StatusAccepted).ID)
	if st.Status != StatusDone {
		t.Fatalf("job: %+v", st)
	}
	var res ResultPayload
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.SiftPasses == 0 || res.SiftSwaps == 0 {
		t.Fatalf("no sifting in payload: %+v", res)
	}

	code, body := c.do("GET", "/v1/jobs/"+st.ID+"/events", nil)
	if code != http.StatusOK {
		t.Fatalf("events: HTTP %d", code)
	}
	text := string(body)
	if !strings.Contains(text, "event: reorder") {
		t.Fatalf("no reorder events in SSE replay:\n%s", text)
	}
	var ev Event
	for _, frame := range strings.Split(text, "\n\n") {
		for _, line := range strings.Split(frame, "\n") {
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var e Event
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					t.Fatal(err)
				}
				if e.Type == EventReorder {
					ev = e
				}
			}
		}
	}
	if ev.Type != EventReorder || ev.Swaps == 0 || len(ev.Order) != 12 || ev.SizeBefore <= ev.Size {
		t.Fatalf("reorder event malformed: %+v", ev)
	}

	if stats := c.stats(); stats.Reorder.SiftPasses == 0 || stats.Reorder.SiftSwaps == 0 {
		t.Fatalf("stats missing sift aggregates: %+v", stats.Reorder)
	}
}

// TestReorderValidationOverHTTP: bad ordering names and flat-field misuse
// must be 400s at submission, not failed jobs.
func TestReorderValidationOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	code, body := c.do("POST", "/v1/jobs", pairsRequest(6, `{"order":"sideways"}`))
	if code != http.StatusBadRequest {
		t.Fatalf("bad order name: HTTP %d: %s", code, body)
	}
	req := pairsRequest(6, "")
	req.StrategyParams = nil
	req.Threshold = 64 // flat fields are the builtins' shorthand only
	code, body = c.do("POST", "/v1/jobs", req)
	if code != http.StatusBadRequest {
		t.Fatalf("flat fields with registered strategy: HTTP %d: %s", code, body)
	}
}
