package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/gen"
)

// TestNoisyJobOverHTTP is the serve acceptance path for the density backend:
// a submission carrying noise + noise_params (and no explicit backend) runs
// on the density backend, returns purity/channel counters and samples from
// the density diagonal, and streams channel events over SSE.
func TestNoisyJobOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := JobRequest{
		Name:        "noisy-ghz",
		QASM:        ghzQASM,
		Noise:       "depolarizing",
		NoiseParams: map[string]float64{"p": 0.05},
		Shots:       256,
		Seed:        7,
	}
	st := c.submit(req, http.StatusAccepted)
	final := c.await(st.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}

	code, body := c.do("GET", "/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, body)
	}
	var res ResultPayload
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Backend != "density" {
		t.Errorf("backend = %q, want density (noise defaults to the density backend)", res.Backend)
	}
	if res.Noise != "depolarizing" || res.NoiseParams["p"] != 0.05 {
		t.Errorf("noise echo = %q %v", res.Noise, res.NoiseParams)
	}
	if res.Purity <= 0 || res.Purity >= 1 {
		t.Errorf("purity = %v, want strictly inside (0,1) for a noisy run", res.Purity)
	}
	if res.ChannelApplications == 0 {
		t.Error("channel_applications = 0 on a noisy run")
	}
	total := 0
	for _, n := range res.Samples {
		total += n
	}
	if total != 256 {
		t.Errorf("samples sum to %d, want 256", total)
	}

	channels := 0
	for _, e := range c.readSSE("/v1/jobs/" + st.ID + "/events") {
		if e.Type != EventChannel {
			continue
		}
		channels++
		if e.Kind != "depolarizing" || e.Strength != 0.05 || e.Branch != -1 {
			t.Fatalf("channel event = %+v, want kind depolarizing p=0.05 branch -1", e)
		}
	}
	if channels != res.ChannelApplications {
		t.Errorf("SSE carried %d channel events, result counted %d", channels, res.ChannelApplications)
	}
}

// TestTrajectoryJobOverHTTP: an explicit statevector backend with noise runs
// one seeded quantum trajectory instead of the exact density evolution.
func TestTrajectoryJobOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := JobRequest{
		QASM:        ghzQASM,
		Backend:     "statevector",
		Noise:       "bit_flip",
		NoiseParams: map[string]float64{"p": 1, "seed": 3},
		Shots:       32,
	}
	st := c.submit(req, http.StatusAccepted)
	final := c.await(st.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}
	var res ResultPayload
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Backend != "statevector" {
		t.Errorf("backend = %q, want statevector", res.Backend)
	}
	// p=1 bit flips fire on every touched qubit: one jump per gate qubit.
	if res.ChannelApplications == 0 {
		t.Error("trajectory reported no quantum jumps at p=1")
	}
	if res.Purity != 0 {
		t.Errorf("purity = %v on a statevector run, want omitted (0)", res.Purity)
	}
	jumps := 0
	for _, e := range c.readSSE("/v1/jobs/" + st.ID + "/events") {
		if e.Type == EventChannel {
			jumps++
			if e.Branch < 1 {
				t.Fatalf("trajectory jump event branch = %d, want >= 1", e.Branch)
			}
		}
	}
	if jumps != res.ChannelApplications {
		t.Errorf("SSE carried %d jump events, result counted %d", jumps, res.ChannelApplications)
	}
}

// TestNoiseValidationOverHTTP: malformed noise/backend submissions are
// rejected with 400 at submit time, not as failed jobs.
func TestNoiseValidationOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	bad := []JobRequest{
		{QASM: ghzQASM, Noise: "cosmic_ray"},
		{QASM: ghzQASM, Noise: "depolarizing", NoiseParams: map[string]float64{"p": 1.5}},
		{QASM: ghzQASM, Noise: "depolarizing", NoiseParams: map[string]float64{"q": 0.1}},
		{QASM: ghzQASM, NoiseParams: map[string]float64{"p": 0.1}},
		{QASM: ghzQASM, Backend: "tensor"},
		{QASM: ghzQASM, Backend: "density", Strategy: "memory", Threshold: 16, RoundFidelity: 0.97},
	}
	for i, req := range bad {
		if code, body := c.do("POST", "/v1/jobs", req); code != http.StatusBadRequest {
			t.Errorf("case %d: HTTP %d (want 400): %s", i, code, body)
		}
	}
}

// TestNoiseHashCanonicalization: semantically identical noise spellings
// share a content address; distinct noise configurations do not.
func TestNoiseHashCanonicalization(t *testing.T) {
	base := inlineRequest("", gen.GHZ(4))

	hash := func(mut func(*JobRequest)) string {
		t.Helper()
		req := base
		mut(&req)
		h, err := CanonicalHash(req)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	gamma := hash(func(r *JobRequest) {
		r.Noise = "amplitude_damping"
		r.NoiseParams = map[string]float64{"gamma": 0.1}
	})
	p := hash(func(r *JobRequest) {
		r.Noise = "amplitude_damping"
		r.NoiseParams = map[string]float64{"p": 0.1}
	})
	if gamma != p {
		t.Error("gamma and p spellings of amplitude damping hash differently")
	}

	implicit := hash(func(r *JobRequest) {
		r.Noise = "depolarizing"
		r.NoiseParams = map[string]float64{"p": 0.02}
	})
	explicit := hash(func(r *JobRequest) {
		r.Backend = "density"
		r.Noise = "depolarizing"
		r.NoiseParams = map[string]float64{"p": 0.02}
	})
	if implicit != explicit {
		t.Error("implicit and explicit density backend hash differently for a noisy job")
	}

	noiseless := hash(func(r *JobRequest) {})
	if svExplicit := hash(func(r *JobRequest) { r.Backend = "statevector" }); svExplicit != noiseless {
		t.Error("explicit statevector backend changes the noiseless hash")
	}
	if implicit == noiseless {
		t.Error("noisy and noiseless submissions share a hash")
	}
	trajectory := hash(func(r *JobRequest) {
		r.Backend = "statevector"
		r.Noise = "depolarizing"
		r.NoiseParams = map[string]float64{"p": 0.02}
	})
	if trajectory == implicit {
		t.Error("trajectory and density runs of the same noise share a hash")
	}
}
