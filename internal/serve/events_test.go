package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gen"
)

// inlineRequest converts a circuit into an inline-gates submission.
func inlineRequest(name string, c *circuit.Circuit) JobRequest {
	req := JobRequest{Name: name, Qubits: c.NumQubits}
	for _, g := range c.Gates() {
		gs := GateSpec{Name: g.Name, Params: g.Params, Target: g.Target}
		for _, ctl := range g.Controls {
			if ctl.Positive {
				gs.Controls = append(gs.Controls, ctl.Qubit)
			} else {
				gs.NegControls = append(gs.NegControls, ctl.Qubit)
			}
		}
		req.Gates = append(req.Gates, gs)
	}
	return req
}

// readSSE fetches an event stream and parses every frame.
func (c *client) readSSE(path string) []Event {
	c.t.Helper()
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		c.t.Fatalf("events: content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			c.t.Fatalf("bad event payload %q: %v", line, err)
		}
		events = append(events, e)
		if e.Type == EventStatus {
			break
		}
	}
	if err := sc.Err(); err != nil {
		c.t.Fatal(err)
	}
	return events
}

func TestEventsStreamReplaysFinishedJob(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, EventBufferSize: 4096})
	circ := gen.RandomCliffordT(10, 200, 3)
	req := inlineRequest("events", circ)
	req.Strategy = StrategyMemory
	req.Threshold = 16
	req.RoundFidelity = 0.97
	st := c.submit(req, http.StatusAccepted)
	if got := c.await(st.ID); got.Status != StatusDone {
		t.Fatalf("job ended %q: %s", got.Status, got.Error)
	}

	events := c.readSSE("/v1/jobs/" + st.ID + "/events")
	counts := map[string]int{}
	lastSeq := int64(-1)
	for _, e := range events {
		counts[e.Type]++
		if e.Seq <= lastSeq {
			t.Fatalf("event seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Dropped != 0 {
			t.Errorf("gapless stream reported %d dropped at seq %d", e.Dropped, e.Seq)
		}
	}
	if counts[EventGate] != circ.Len() {
		t.Errorf("%d gate events for %d gates", counts[EventGate], circ.Len())
	}
	if counts[EventApproximation] == 0 {
		t.Error("no approximation events; workload or threshold is wrong")
	}
	if counts[EventFinish] != 1 || counts[EventStatus] != 1 {
		t.Errorf("finish/status events: %v", counts)
	}
	last := events[len(events)-1]
	if last.Type != EventStatus || last.Status != StatusDone {
		t.Errorf("terminal event %+v", last)
	}

	// Approximation events must match the result's rounds.
	var res ResultPayload
	code, body := c.do("GET", "/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if counts[EventApproximation] != len(res.Rounds) {
		t.Errorf("%d approximation events vs %d result rounds", counts[EventApproximation], len(res.Rounds))
	}
}

func TestEventsStreamWhileRunning(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, EventBufferSize: 1 << 14})
	// Big enough that the stream very likely attaches mid-run, small enough
	// to finish promptly; correctness does not depend on the race since the
	// bounded buffer replays whatever was missed.
	req := inlineRequest("live-stream", gen.RandomCliffordT(11, 600, 1))
	req.Strategy = StrategyMemory
	req.Threshold = 64
	req.RoundFidelity = 0.95
	st := c.submit(req, http.StatusAccepted)
	// Connect immediately — the stream must deliver live events and then
	// the terminal status without the client ever polling.
	events := c.readSSE("/v1/jobs/" + st.ID + "/events")
	last := events[len(events)-1]
	if last.Type != EventStatus {
		t.Fatalf("stream ended without terminal status: %+v", last)
	}
	if last.Status != StatusDone {
		t.Fatalf("job ended %q: %s", last.Status, last.Error)
	}
	gates := 0
	for _, e := range events {
		if e.Type == EventGate {
			gates++
		}
	}
	if gates == 0 {
		t.Error("live stream delivered no gate events")
	}
}

func TestEventsCachedJobStreamsTerminalOnly(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := JobRequest{Name: "cached-events", QASM: ghzQASM}
	st := c.submit(req, http.StatusAccepted)
	c.await(st.ID)
	st2 := c.submit(req, http.StatusOK)
	if !st2.Cached {
		t.Fatal("repeat submission missed the cache")
	}
	events := c.readSSE("/v1/jobs/" + st2.ID + "/events")
	if len(events) != 1 || events[0].Type != EventStatus || events[0].Status != StatusDone {
		t.Errorf("cached job stream: %+v", events)
	}
}

func TestEventsUnknownJob(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	code, _ := c.do("GET", "/v1/jobs/nope/events", nil)
	if code != http.StatusNotFound {
		t.Errorf("HTTP %d for unknown job events", code)
	}
}

func TestEventsBoundedBufferReportsGap(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, EventBufferSize: 16})
	circ := gen.QFT(8) // 64 gates: far more events than the ring holds
	st := c.submit(inlineRequest("bounded", circ), http.StatusAccepted)
	if got := c.await(st.ID); got.Status != StatusDone {
		t.Fatalf("job ended %q", got.Status)
	}
	events := c.readSSE("/v1/jobs/" + st.ID + "/events")
	if len(events) > 16 {
		t.Errorf("stream delivered %d events from a 16-slot ring", len(events))
	}
	if events[0].Dropped == 0 {
		t.Errorf("evicted events not reported: first event %+v", events[0])
	}
	if last := events[len(events)-1]; last.Type != EventStatus {
		t.Errorf("terminal event %+v", last)
	}
}

func TestEventsResumeFromCursor(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, EventBufferSize: 4096})
	st := c.submit(inlineRequest("resume", gen.QFT(6)), http.StatusAccepted)
	if got := c.await(st.ID); got.Status != StatusDone {
		t.Fatalf("job ended %q", got.Status)
	}
	all := c.readSSE("/v1/jobs/" + st.ID + "/events")
	if len(all) < 4 {
		t.Fatalf("too few events to test resume: %d", len(all))
	}
	cut := all[len(all)-3]
	tail := c.readSSE(fmt.Sprintf("/v1/jobs/%s/events?from=%d", st.ID, cut.Seq+1))
	if len(tail) != 2 {
		t.Fatalf("resume from %d returned %d events, want 2", cut.Seq+1, len(tail))
	}
	if tail[0].Seq != cut.Seq+1 {
		t.Errorf("resume started at seq %d, want %d", tail[0].Seq, cut.Seq+1)
	}
}

// trimEvery is a user-defined strategy for the end-to-end registry test: it
// approximates to a fixed round fidelity every `period` gates.
type trimEvery struct {
	Period int     `json:"period"`
	Round  float64 `json:"round_fidelity"`
}

func (s *trimEvery) Name() string { return "trim-every" }

func (s *trimEvery) Init(total int, blocks []int) error {
	if s.Period <= 0 {
		return fmt.Errorf("trim-every: period %d must be positive", s.Period)
	}
	if s.Round <= 0 || s.Round > 1 {
		return fmt.Errorf("trim-every: round fidelity %v outside (0, 1]", s.Round)
	}
	return nil
}

func (s *trimEvery) AfterGate(m *dd.Manager, gateIdx, size int, state dd.VEdge) (dd.VEdge, *core.Round, error) {
	if (gateIdx+1)%s.Period != 0 {
		return state, nil, nil
	}
	ne, rep, err := core.ApproximateToFidelity(m, state, s.Round)
	if err != nil || rep.NoOp() {
		return state, nil, err
	}
	return ne, &core.Round{GateIndex: gateIdx, Report: rep}, nil
}

func init() {
	if err := core.RegisterStrategy("trim-every", func(params json.RawMessage) (core.Strategy, error) {
		s := &trimEvery{}
		if len(params) > 0 {
			if err := json.Unmarshal(params, s); err != nil {
				return nil, err
			}
		}
		return s, nil
	}); err != nil {
		panic(err)
	}
}

func TestRegisteredStrategyUsableOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, EventBufferSize: 4096})
	req := inlineRequest("custom-strategy", gen.RandomCliffordT(10, 160, 5))
	req.Strategy = "trim-every"
	req.StrategyParams = json.RawMessage(`{"period": 40, "round_fidelity": 0.9}`)
	st := c.submit(req, http.StatusAccepted)
	final := c.await(st.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}
	var res ResultPayload
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "trim-every" {
		t.Errorf("result strategy %q", res.Strategy)
	}
	if len(res.Rounds) == 0 {
		t.Error("custom strategy never fired")
	}
	// Its rounds stream as events too.
	approx := 0
	for _, e := range c.readSSE("/v1/jobs/" + st.ID + "/events") {
		if e.Type == EventApproximation {
			approx++
		}
	}
	if approx != len(res.Rounds) {
		t.Errorf("%d approximation events vs %d rounds", approx, len(res.Rounds))
	}
}

func TestRegisteredStrategyBadParamsRejected(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := inlineRequest("bad-params", gen.QFT(4))
	req.Strategy = "trim-every"
	req.StrategyParams = json.RawMessage(`{"period": -1}`)
	if code, body := c.do("POST", "/v1/jobs", req); code != http.StatusBadRequest {
		t.Errorf("invalid params: HTTP %d: %s", code, body)
	}

	// The flat builtin shorthand does not reach registered strategies;
	// accepting it silently would run with the factory's defaults.
	flat := inlineRequest("flat-params", gen.QFT(4))
	flat.Strategy = "trim-every"
	flat.Threshold = 4096
	if code, body := c.do("POST", "/v1/jobs", flat); code != http.StatusBadRequest {
		t.Errorf("flat fields on registered strategy: HTTP %d: %s", code, body)
	}
}

func TestStrategyParamsForBuiltins(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	req := inlineRequest("builtin-params", gen.QFT(6))
	req.Strategy = StrategyMemory
	req.StrategyParams = json.RawMessage(`{"threshold": 8, "round_fidelity": 0.95}`)
	st := c.submit(req, http.StatusAccepted)
	if got := c.await(st.ID); got.Status != StatusDone {
		t.Fatalf("job ended %q: %s", got.Status, got.Error)
	}

	// Mixing the params form with the flat shorthand is ambiguous → 400.
	req.Threshold = 8
	if code, body := c.do("POST", "/v1/jobs", req); code != http.StatusBadRequest {
		t.Errorf("mixed strategy forms: HTTP %d: %s", code, body)
	}

	// Unknown names list what is registered.
	bad := inlineRequest("unknown-strategy", gen.QFT(4))
	bad.Strategy = "does-not-exist"
	code, body := c.do("POST", "/v1/jobs", bad)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "memory") {
		t.Errorf("unknown strategy: HTTP %d: %s", code, body)
	}
}
