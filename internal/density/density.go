package density

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dd"
)

// State is an n-qubit density matrix ρ stored as a matrix DD. It borrows the
// owning dd.Manager's unique tables, node pools, compute caches, and variable
// order — a State is just a root edge plus bookkeeping, so the statevector
// and density backends share every piece of PR 2 infrastructure.
//
// Invariant: Tr ρ = 1 (within float tolerance). Unitary application and
// trace-preserving channels maintain it; Check verifies it explicitly.
type State struct {
	M    *dd.Manager
	N    int
	Root dd.MEdge
}

// NewBasis returns the pure density matrix |bits⟩⟨bits| on n qubits.
func NewBasis(m *dd.Manager, n int, bits uint64) *State {
	return FromPure(m, n, m.BasisState(n, bits))
}

// FromPure returns ρ = |v⟩⟨v| for a normalized state DD. This is the bridge
// from the statevector representation: the noiseless differential tests
// compare density evolution against the outer product of the statevector
// result.
func FromPure(m *dd.Manager, n int, v dd.VEdge) *State {
	return &State{M: m, N: n, Root: m.OuterProduct(v, v)}
}

// ApplyUnitary evolves ρ → U ρ U†. U must be an operation DD over the same
// qubits (e.g. from MakeGateDD or MakePermutationDD).
func (s *State) ApplyUnitary(u dd.MEdge) {
	s.Root = s.M.MulMat(s.M.MulMat(u, s.Root), s.M.ConjugateTranspose(u))
}

// ApplyKraus applies the superoperator ρ → Σ_k K_k ρ K_k† for pre-lifted
// n-qubit Kraus operator DDs (see Channel.Lift). This is the exact channel
// application that replaces trajectory averaging.
func (s *State) ApplyKraus(ops []dd.MEdge) {
	sum := s.M.MZero()
	for _, k := range ops {
		term := s.M.MulMat(s.M.MulMat(k, s.Root), s.M.ConjugateTranspose(k))
		sum = s.M.AddMat(sum, term)
	}
	s.Root = sum
}

// ApplyChannel lifts the single-qubit channel to qubit q and applies it.
// Loops that apply the same channel repeatedly should lift once with
// Channel.Lift and call ApplyKraus to reuse the operator DDs.
func (s *State) ApplyChannel(c Channel, q int) {
	s.ApplyKraus(c.Lift(s.M, s.N, q))
}

// Lift builds the n-qubit operation DDs for the channel's Kraus operators
// acting on qubit q. The returned edges are ordinary matrix DDs; callers
// holding them across cleanups must pass them as mRoots.
func (c Channel) Lift(m *dd.Manager, n, q int) []dd.MEdge {
	ops := make([]dd.MEdge, len(c.ops))
	for i, k := range c.ops {
		ops[i] = m.MakeGateDD(n, k, q)
	}
	return ops
}

// Trace returns Tr ρ. Exactly 1 for a valid state; drift signals a broken
// channel or numeric trouble.
func (s *State) Trace() float64 {
	return real(s.M.MTrace(s.Root))
}

// NormalizeTrace rescales ρ so Tr ρ = 1, absorbing accumulated float drift.
// It reports the trace found; a zero trace leaves the state untouched.
func (s *State) NormalizeTrace() float64 {
	tr := s.Trace()
	if tr == 0 || tr == 1 {
		return tr
	}
	s.Root = s.M.ScaleM(s.Root, complex(1/tr, 0))
	return tr
}

// Purity returns Tr ρ² ∈ [2⁻ⁿ, 1]: exactly 1 for pure states, smaller the
// more the channels have mixed the state.
func (s *State) Purity() float64 {
	return real(s.M.MTrace(s.M.MulMat(s.Root, s.Root)))
}

// FidelityPure returns ⟨ψ|ρ|ψ⟩, the fidelity of ρ against a pure reference
// state — the quantity the trajectory backend estimates by averaging
// |⟨ψ|traj⟩|² over Monte-Carlo runs.
func (s *State) FidelityPure(psi dd.VEdge) float64 {
	return real(s.M.InnerProduct(psi, s.M.MulVec(s.Root, psi)))
}

// Probability returns the diagonal entry ρ[idx][idx]: the probability of
// measuring basis state idx. Cost is one root-to-terminal walk.
func (s *State) Probability(idx uint64) float64 {
	w := s.Root.W.Complex()
	node := s.Root.N
	for l := s.N - 1; l >= 0; l-- {
		if w == 0 {
			return 0
		}
		if node.IsTerminal() {
			panic("density: Probability reached terminal early (qubit count mismatch)")
		}
		bit := idx >> uint(s.M.LevelQubit(l)) & 1
		child := node.E[3*bit] // quadrant (0,0) or (1,1)
		w *= child.W.Complex()
		node = child.N
	}
	return clamp01(real(w))
}

// Probabilities expands the full 2^n diagonal. Tests and small systems only.
func (s *State) Probabilities() []float64 {
	out := make([]float64, uint64(1)<<uint(s.N))
	for i := range out {
		out[i] = s.Probability(uint64(i))
	}
	return out
}

// Sample draws one basis state from the diagonal distribution of ρ without
// collapsing it. At each node the conditional bit probabilities are the
// partial diagonal sums Re(W · w_b · tr(child_b)), which are nonnegative for
// a positive semidefinite ρ. The per-subtree traces are memoized in memo
// (pass the same map across shots to amortize the walk).
func (s *State) Sample(rng *rand.Rand, memo map[*dd.MNode]complex128) uint64 {
	if s.M.IsMZero(s.Root) {
		panic("density: Sample on zero state")
	}
	if memo == nil {
		memo = make(map[*dd.MNode]complex128)
	}
	var idx uint64
	w := s.Root.W.Complex()
	node := s.Root.N
	for l := s.N - 1; l >= 0; l-- {
		if node.IsTerminal() {
			panic("density: Sample reached terminal early (qubit count mismatch)")
		}
		c0, c1 := node.E[0], node.E[3]
		p0 := math.Max(0, real(w*c0.W.Complex()*diagTrace(s.M, c0.N, memo)))
		p1 := math.Max(0, real(w*c1.W.Complex()*diagTrace(s.M, c1.N, memo)))
		r := rng.Float64() * (p0 + p1)
		var bit uint64
		if r >= p0 {
			bit = 1
		}
		idx |= bit << uint(s.M.LevelQubit(l))
		child := node.E[3*bit]
		w *= child.W.Complex()
		node = child.N
	}
	return idx
}

// SampleMany draws shots samples and returns a histogram of basis states,
// sharing one trace memo across all shots.
func (s *State) SampleMany(shots int, rng *rand.Rand) map[uint64]int {
	memo := make(map[*dd.MNode]complex128)
	hist := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		hist[s.Sample(rng, memo)]++
	}
	return hist
}

// diagTrace returns the trace of the weight-stripped subtree under n
// (diagonal quadrants only), memoized in memo.
func diagTrace(m *dd.Manager, n *dd.MNode, memo map[*dd.MNode]complex128) complex128 {
	if n.IsTerminal() {
		return 1
	}
	if t, ok := memo[n]; ok {
		return t
	}
	var sum complex128
	for _, q := range [2]int{0, 3} {
		child := n.E[q]
		if m.IsMZero(child) {
			continue
		}
		sum += child.W.Complex() * diagTrace(m, child.N, memo)
	}
	memo[n] = sum
	return sum
}

// ProbabilityOne returns the probability that measuring qubit q yields 1:
// Tr(P₁ ρ) for the lifted projector P₁ = |1⟩⟨1| on q.
func (s *State) ProbabilityOne(q int) float64 {
	if q < 0 || q >= s.N {
		panic(fmt.Sprintf("density: qubit %d out of range", q))
	}
	p1 := s.M.MakeGateDD(s.N, [4]complex128{0, 0, 0, 1}, q)
	return clamp01(real(s.M.MTrace(s.M.MulMat(p1, s.Root))))
}

// MeasureQubit projectively measures qubit q, collapsing ρ → P_b ρ P_b / p_b
// and returning the observed bit. The mixed-state counterpart of
// Manager.MeasureQubit.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	p1 := s.ProbabilityOne(q)
	bit := 0
	if rng.Float64() < p1 {
		bit = 1
	}
	s.ProjectQubit(q, bit)
	return bit
}

// ProjectQubit projects qubit q onto bit and renormalizes. Projecting onto a
// zero-probability branch leaves the zero state.
func (s *State) ProjectQubit(q, bit int) {
	var u [4]complex128
	if bit == 0 {
		u = [4]complex128{1, 0, 0, 0}
	} else {
		u = [4]complex128{0, 0, 0, 1}
	}
	proj := s.M.MakeGateDD(s.N, u, q)
	s.Root = s.M.MulMat(s.M.MulMat(proj, s.Root), proj)
	if s.M.IsMZero(s.Root) {
		return
	}
	s.NormalizeTrace()
}

// Size returns the number of nodes in the density DD.
func (s *State) Size() int {
	return s.M.CountM(s.Root)
}

// Check verifies Tr ρ = 1 within tol and that the DD is not the zero edge,
// the invariants fuzzing asserts after every channel application.
func (s *State) Check(tol float64) error {
	if s.M.IsMZero(s.Root) {
		return fmt.Errorf("density: state collapsed to the zero edge")
	}
	if tr := s.Trace(); math.Abs(tr-1) > tol {
		return fmt.Errorf("density: trace drifted to %v (tolerance %v)", tr, tol)
	}
	return nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
