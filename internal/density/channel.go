package density

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Kind names a built-in single-qubit noise channel. The names double as the
// wire schema: the simulation service accepts them verbatim in the `noise`
// request field, and the trajectory backend keys its per-gate sampling on
// the same values — one source of truth for both representations.
type Kind string

// Built-in channels.
const (
	// Depolarizing applies X, Y, or Z with probability P/3 each:
	// ρ → (1−P)ρ + P/3 (XρX + YρY + ZρZ).
	Depolarizing Kind = "depolarizing"
	// AmplitudeDamping is spontaneous |1⟩→|0⟩ decay with rate P = γ:
	// Kraus K0 = diag(1, √(1−γ)), K1 = √γ |0⟩⟨1|. Not mixed-unitary, so
	// trajectory simulation must sample it state-dependently (quantum
	// jumps), while the density backend applies it exactly.
	AmplitudeDamping Kind = "amplitude_damping"
	// Dephasing applies Z with probability P: ρ → (1−P)ρ + P ZρZ.
	Dephasing Kind = "dephasing"
	// BitFlip applies X with probability P.
	BitFlip Kind = "bit_flip"
	// PhaseFlip applies Z with probability P (an alias kind for Dephasing,
	// kept so both textbook names are routable).
	PhaseFlip Kind = "phase_flip"
)

// Kinds lists every built-in channel kind, in documentation order.
func Kinds() []Kind {
	return []Kind{Depolarizing, AmplitudeDamping, Dephasing, BitFlip, PhaseFlip}
}

// completenessTol bounds the allowed deviation of Σ K†K from the identity
// at channel construction.
const completenessTol = 1e-9

// Channel is a single-qubit noise channel in Kraus form: ρ → Σ_k K_k ρ K_k†.
// Construct with New (built-in kinds) or FromKraus (arbitrary operator
// sets); both verify the completeness relation Σ K†K = I, so a Channel
// value is trace-preserving by construction.
type Channel struct {
	kind Kind
	p    float64
	ops  [][4]complex128
	// probs holds the branch probabilities when every Kraus operator is
	// proportional to a unitary (a mixed-unitary channel): ops[k] = √probs[k]
	// · U_k. Trajectory simulation then samples branch k state-independently
	// with probability probs[k]; nil when the channel is not mixed-unitary.
	probs []float64
}

// New builds a built-in channel. P is the channel strength: the total error
// probability for the mixed-unitary kinds, the damping rate γ for amplitude
// damping. P must lie in [0, 1]; P = 0 yields the identity channel.
func New(kind Kind, p float64) (Channel, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return Channel{}, fmt.Errorf("density: channel %q strength %v outside [0, 1]", kind, p)
	}
	c := Channel{kind: kind, p: p}
	s, d := math.Sqrt(1-p), math.Sqrt(p)
	switch kind {
	case Depolarizing:
		q := math.Sqrt(p / 3)
		c.ops = [][4]complex128{
			{complex(s, 0), 0, 0, complex(s, 0)},  // √(1−p)·I
			{0, complex(q, 0), complex(q, 0), 0},  // √(p/3)·X
			{0, complex(0, -q), complex(0, q), 0}, // √(p/3)·Y
			{complex(q, 0), 0, 0, complex(-q, 0)}, // √(p/3)·Z
		}
		c.probs = []float64{1 - p, p / 3, p / 3, p / 3}
	case AmplitudeDamping:
		c.ops = [][4]complex128{
			{1, 0, 0, complex(s, 0)}, // K0: decay-free evolution
			{0, complex(d, 0), 0, 0}, // K1: |1⟩ → |0⟩ jump
		}
		// Not mixed-unitary: K0 is non-unitary for γ > 0.
	case Dephasing, PhaseFlip:
		c.ops = [][4]complex128{
			{complex(s, 0), 0, 0, complex(s, 0)},
			{complex(d, 0), 0, 0, complex(-d, 0)}, // √p·Z
		}
		c.probs = []float64{1 - p, p}
	case BitFlip:
		c.ops = [][4]complex128{
			{complex(s, 0), 0, 0, complex(s, 0)},
			{0, complex(d, 0), complex(d, 0), 0}, // √p·X
		}
		c.probs = []float64{1 - p, p}
	default:
		return Channel{}, fmt.Errorf("density: unknown channel kind %q (known: %v)", kind, Kinds())
	}
	if err := checkComplete(c.ops); err != nil {
		return Channel{}, fmt.Errorf("density: channel %q (p=%v): %w", kind, p, err)
	}
	return c, nil
}

// FromKraus wraps an arbitrary single-qubit Kraus operator set, verifying
// trace preservation. The kind is recorded as "custom".
func FromKraus(ops [][4]complex128) (Channel, error) {
	if len(ops) == 0 {
		return Channel{}, fmt.Errorf("density: empty Kraus set")
	}
	if err := checkComplete(ops); err != nil {
		return Channel{}, err
	}
	cp := make([][4]complex128, len(ops))
	copy(cp, ops)
	return Channel{kind: "custom", ops: cp}, nil
}

// checkComplete verifies the Kraus completeness relation Σ_k K_k† K_k = I
// within completenessTol — the condition for the superoperator to preserve
// the trace of every ρ.
func checkComplete(ops [][4]complex128) error {
	var sum [4]complex128
	for _, k := range ops {
		// (K†K)[i][j] = Σ_r conj(K[r][i])·K[r][j], with K row-major
		// [k0 k1; k2 k3].
		sum[0] += cmplx.Conj(k[0])*k[0] + cmplx.Conj(k[2])*k[2]
		sum[1] += cmplx.Conj(k[0])*k[1] + cmplx.Conj(k[2])*k[3]
		sum[2] += cmplx.Conj(k[1])*k[0] + cmplx.Conj(k[3])*k[2]
		sum[3] += cmplx.Conj(k[1])*k[1] + cmplx.Conj(k[3])*k[3]
	}
	id := [4]complex128{1, 0, 0, 1}
	for i := range sum {
		if cmplx.Abs(sum[i]-id[i]) > completenessTol {
			return fmt.Errorf("density: Kraus set is not trace-preserving: Σ K†K deviates from I by %g at entry %d",
				cmplx.Abs(sum[i]-id[i]), i)
		}
	}
	return nil
}

// Kind returns the channel's kind name.
func (c Channel) Kind() Kind { return c.kind }

// P returns the channel strength the channel was built with.
func (c Channel) P() float64 { return c.p }

// Kraus returns the channel's Kraus operators (row-major 2×2 matrices). The
// slice is shared; callers must not mutate it.
func (c Channel) Kraus() [][4]complex128 { return c.ops }

// MixedUnitary reports whether every Kraus operator is proportional to a
// unitary, returning the state-independent branch probabilities when so.
// Trajectory simulation uses this to skip per-branch norm computation.
func (c Channel) MixedUnitary() ([]float64, bool) { return c.probs, c.probs != nil }

// Identity reports whether the channel is a no-op (strength zero).
func (c Channel) Identity() bool { return c.p == 0 && c.kind != "custom" }
