package density

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dd"
)

// randomPure builds a random normalized n-qubit state DD plus its dense
// amplitude vector.
func randomPure(t *testing.T, m *dd.Manager, n int, rng *rand.Rand) (dd.VEdge, []complex128) {
	t.Helper()
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	v, err := m.FromAmplitudes(amps)
	if err != nil {
		t.Fatalf("FromAmplitudes: %v", err)
	}
	return v, amps
}

// denseApplyChannel applies a single-qubit Kraus channel to the dense density
// matrix rho on qubit q of n — the O(4^n) oracle the DD path is checked
// against.
func denseApplyChannel(rho [][]complex128, ops [][4]complex128, q, n int) [][]complex128 {
	dim := 1 << uint(n)
	out := make([][]complex128, dim)
	for i := range out {
		out[i] = make([]complex128, dim)
	}
	for _, k := range ops {
		// Lift K to n qubits: K_full[r][c] = K[rb][cb] if all other bits of
		// r and c agree, with rb/cb the q-th bits.
		mask := uint64(1) << uint(q)
		kr := make([][]complex128, dim)
		for r := 0; r < dim; r++ {
			kr[r] = make([]complex128, dim)
			for c := 0; c < dim; c++ {
				if uint64(r)&^mask != uint64(c)&^mask {
					continue
				}
				rb := uint64(r) >> uint(q) & 1
				cb := uint64(c) >> uint(q) & 1
				kr[r][c] = k[2*rb+cb]
			}
		}
		// out += K rho K†
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				var sum complex128
				for a := 0; a < dim; a++ {
					if kr[r][a] == 0 {
						continue
					}
					for b := 0; b < dim; b++ {
						sum += kr[r][a] * rho[a][b] * cmplx.Conj(kr[c][b])
					}
				}
				out[r][c] += sum
			}
		}
	}
	return out
}

func TestChannelConstruction(t *testing.T) {
	for _, kind := range Kinds() {
		for _, p := range []float64{0, 0.01, 0.3, 1} {
			c, err := New(kind, p)
			if err != nil {
				t.Fatalf("New(%s, %v): %v", kind, p, err)
			}
			if c.Kind() != kind || c.P() != p {
				t.Errorf("New(%s, %v) recorded kind=%s p=%v", kind, p, c.Kind(), c.P())
			}
		}
		for _, p := range []float64{-0.1, 1.1, math.NaN()} {
			if _, err := New(kind, p); err == nil {
				t.Errorf("New(%s, %v) accepted invalid strength", kind, p)
			}
		}
	}
	if _, err := New("banana", 0.1); err == nil {
		t.Error("unknown kind accepted")
	}
	// FromKraus must reject a non-trace-preserving set.
	if _, err := FromKraus([][4]complex128{{0.5, 0, 0, 0.5}}); err == nil {
		t.Error("FromKraus accepted a trace-shrinking operator set")
	}
	if _, err := FromKraus(nil); err == nil {
		t.Error("FromKraus accepted an empty set")
	}
	// Mixed-unitary detection: depolarizing yes, amplitude damping no.
	dep, _ := New(Depolarizing, 0.2)
	if probs, ok := dep.MixedUnitary(); !ok || len(probs) != 4 {
		t.Errorf("depolarizing MixedUnitary = %v, %v", probs, ok)
	}
	ad, _ := New(AmplitudeDamping, 0.2)
	if _, ok := ad.MixedUnitary(); ok {
		t.Error("amplitude damping reported mixed-unitary")
	}
}

func TestApplyChannelMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kind := range Kinds() {
		for _, n := range []int{1, 2, 3} {
			m := dd.New()
			v, _ := randomPure(t, m, n, rng)
			s := FromPure(m, n, v)
			want := m.ToMatrix(s.Root, n)
			ch, err := New(kind, 0.17)
			if err != nil {
				t.Fatal(err)
			}
			q := rng.Intn(n)
			s.ApplyChannel(ch, q)
			want = denseApplyChannel(want, ch.Kraus(), q, n)
			got := m.ToMatrix(s.Root, n)
			for r := range want {
				for c := range want[r] {
					if cmplx.Abs(got[r][c]-want[r][c]) > 1e-9 {
						t.Fatalf("%s n=%d q=%d: ρ[%d][%d] = %v, dense oracle %v",
							kind, n, q, r, c, got[r][c], want[r][c])
					}
				}
			}
			if err := s.Check(1e-9); err != nil {
				t.Fatalf("%s n=%d: %v", kind, n, err)
			}
		}
	}
}

func TestApplyUnitaryMatchesPureEvolution(t *testing.T) {
	m := dd.New()
	rng := rand.New(rand.NewSource(7))
	n := 3
	v, _ := randomPure(t, m, n, rng)
	s := FromPure(m, n, v)
	h := complex(1/math.Sqrt2, 0)
	u := m.MakeGateDD(n, [4]complex128{h, h, h, -h}, 1, dd.PosControl(0))
	s.ApplyUnitary(u)
	evolved := m.NormalizeRootWeight(m.MulVec(u, v))
	want := m.ToMatrix(m.OuterProduct(evolved, evolved), n)
	got := m.ToMatrix(s.Root, n)
	for r := range want {
		for c := range want[r] {
			if cmplx.Abs(got[r][c]-want[r][c]) > 1e-9 {
				t.Fatalf("UρU† [%d][%d] = %v, |Uv⟩⟨Uv| = %v", r, c, got[r][c], want[r][c])
			}
		}
	}
	if p := s.Purity(); math.Abs(p-1) > 1e-9 {
		t.Errorf("purity of pure state after unitary = %v", p)
	}
	if f := s.FidelityPure(evolved); math.Abs(f-1) > 1e-9 {
		t.Errorf("fidelity against own pure state = %v", f)
	}
}

func TestAmplitudeDampingLimits(t *testing.T) {
	m := dd.New()
	// γ = 1 maps |1⟩⟨1| to |0⟩⟨0| exactly.
	s := NewBasis(m, 2, 0b11)
	ch, _ := New(AmplitudeDamping, 1)
	s.ApplyChannel(ch, 0)
	s.ApplyChannel(ch, 1)
	if p := s.Probability(0); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(|00⟩) after full damping = %v, want 1", p)
	}
	if p := s.Probability(0b11); p > 1e-12 {
		t.Errorf("P(|11⟩) after full damping = %v, want 0", p)
	}
	// Partial damping of |1⟩⟨1|: P(1) = 1 − γ.
	s2 := NewBasis(m, 1, 1)
	ch2, _ := New(AmplitudeDamping, 0.3)
	s2.ApplyChannel(ch2, 0)
	if p := s2.Probability(1); math.Abs(p-0.7) > 1e-12 {
		t.Errorf("P(|1⟩) after γ=0.3 damping = %v, want 0.7", p)
	}
	if err := s2.Check(1e-12); err != nil {
		t.Error(err)
	}
}

func TestDepolarizingMixesTowardIdentity(t *testing.T) {
	m := dd.New()
	n := 2
	s := NewBasis(m, n, 0)
	ch, _ := New(Depolarizing, 0.5)
	before := s.Purity()
	for q := 0; q < n; q++ {
		s.ApplyChannel(ch, q)
	}
	after := s.Purity()
	if after >= before {
		t.Errorf("purity did not decrease: %v → %v", before, after)
	}
	if tr := s.Trace(); math.Abs(tr-1) > 1e-12 {
		t.Errorf("trace after depolarizing = %v", tr)
	}
	// p = 3/4 depolarizing is the fully depolarizing channel on one qubit:
	// the marginal becomes I/2, so both outcomes of that qubit are equally
	// likely.
	s2 := NewBasis(m, 1, 0)
	full, _ := New(Depolarizing, 0.75)
	s2.ApplyChannel(full, 0)
	if p := s2.Probability(0); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("fully depolarized P(0) = %v, want 0.5", p)
	}
	if pur := s2.Purity(); math.Abs(pur-0.5) > 1e-12 {
		t.Errorf("fully depolarized purity = %v, want 0.5", pur)
	}
}

func TestSampleMatchesDiagonal(t *testing.T) {
	m := dd.New()
	rng := rand.New(rand.NewSource(123))
	n := 3
	v, _ := randomPure(t, m, n, rng)
	s := FromPure(m, n, v)
	ch, _ := New(Depolarizing, 0.2)
	s.ApplyChannel(ch, 1)
	probs := s.Probabilities()
	var total float64
	for _, p := range probs {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("diagonal sums to %v", total)
	}
	const shots = 200000
	hist := s.SampleMany(shots, rng)
	for idx, p := range probs {
		got := float64(hist[uint64(idx)]) / shots
		if math.Abs(got-p) > 0.01 {
			t.Errorf("P(%03b): sampled %v, diagonal %v", idx, got, p)
		}
	}
}

func TestMeasureQubitCollapses(t *testing.T) {
	m := dd.New()
	rng := rand.New(rand.NewSource(9))
	// Bell-like mixture: H on qubit 0 of |00⟩, then CX — measuring either
	// qubit forces the other.
	v := m.BasisState(2, 0)
	h := complex(1/math.Sqrt2, 0)
	v = m.NormalizeRootWeight(m.MulVec(m.MakeGateDD(2, [4]complex128{h, h, h, -h}, 0), v))
	v = m.NormalizeRootWeight(m.MulVec(m.MakeGateDD(2, [4]complex128{0, 1, 1, 0}, 1, dd.PosControl(0)), v))
	s := FromPure(m, 2, v)
	if p := s.ProbabilityOne(0); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(q0=1) = %v, want 0.5", p)
	}
	bit := s.MeasureQubit(0, rng)
	if err := s.Check(1e-9); err != nil {
		t.Fatal(err)
	}
	if p := s.ProbabilityOne(1); math.Abs(p-float64(bit)) > 1e-9 {
		t.Errorf("after measuring q0=%d, P(q1=1) = %v", bit, p)
	}
	// Projecting onto an impossible branch yields the zero state.
	s2 := NewBasis(m, 1, 0)
	s2.ProjectQubit(0, 1)
	if !m.IsMZero(s2.Root) {
		t.Error("projection onto zero-probability branch is not the zero edge")
	}
}

func TestNormalizeTrace(t *testing.T) {
	m := dd.New()
	s := NewBasis(m, 2, 1)
	s.Root = m.ScaleM(s.Root, complex(2, 0))
	if tr := s.NormalizeTrace(); math.Abs(tr-2) > 1e-12 {
		t.Errorf("NormalizeTrace reported %v, want 2", tr)
	}
	if tr := s.Trace(); math.Abs(tr-1) > 1e-12 {
		t.Errorf("trace after normalize = %v", tr)
	}
	if s.Size() == 0 {
		t.Error("Size() = 0 for nonzero state")
	}
}
