// Package density implements exact noisy quantum-circuit simulation with
// density matrices on matrix decision diagrams.
//
// A State wraps a matrix DD root edge owned by a dd.Manager, so the density
// representation reuses the manager's unique tables, node pools, compute
// caches, and variable order. Gates evolve the state as ρ → U ρ U†; noise is
// applied exactly as a superoperator ρ → Σ_k K_k ρ K_k† from a Channel's
// Kraus operators, replacing the Monte-Carlo trajectory averaging in
// internal/sim/noise.go with a single deterministic run.
//
// Built-in channels (depolarizing, amplitude damping, dephasing, bit flip,
// phase flip) are validated against the Kraus completeness relation
// Σ K†K = I at construction, so every Channel value is trace-preserving.
// Extraction helpers cover the quantities the rest of the system needs:
// Trace, Purity (Tr ρ²), FidelityPure (⟨ψ|ρ|ψ⟩), diagonal probabilities,
// and sampling without collapse.
//
// The package is driven through the backend seam in internal/sim: a Session
// with Options.Backend = BackendDensity routes the same gate loop, observer
// events, and cleanup triggers through a State instead of a statevector.
package density
