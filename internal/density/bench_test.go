package density

import (
	"math"
	"testing"

	"repro/internal/dd"
)

// benchDensity builds an entangled 8-qubit ρ (GHZ-style ladder) and the gate
// and channel DDs the benchmarks apply to it.
func benchDensity(b *testing.B) (*dd.Manager, *State, dd.MEdge, []dd.MEdge) {
	b.Helper()
	const n = 8
	m := dd.New()
	s := NewBasis(m, n, 0)
	h := [4]complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	}
	x := [4]complex128{0, 1, 1, 0}
	s.ApplyUnitary(m.MakeGateDD(n, h, 0))
	for q := 1; q < n; q++ {
		s.ApplyUnitary(m.MakeGateDD(n, x, q, dd.PosControl(q-1)))
	}
	ch, err := New(Depolarizing, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	return m, s, m.MakeGateDD(n, h, n/2), ch.Lift(m, n, n/2)
}

// BenchmarkDensityGate measures one unitary application on ρ: two matrix-
// matrix multiplications (UρU†) against the statevector backend's one
// matrix-vector product.
func BenchmarkDensityGate(b *testing.B) {
	m, s, h, _ := benchDensity(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyUnitary(h)
	}
	if m.IsMZero(s.Root) {
		b.Fatal("density state vanished")
	}
}

// BenchmarkDensityChannel measures one exact superoperator application
// ρ → Σ_k K_k ρ K_k† of the lifted depolarizing channel (four Kraus terms:
// eight matrix products plus three additions per application).
func BenchmarkDensityChannel(b *testing.B) {
	_, s, _, kraus := benchDensity(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyKraus(kraus)
	}
	if tr := s.Trace(); math.Abs(tr-1) > 1e-6 {
		b.Fatalf("trace drifted to %v", tr)
	}
}
