package density

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// FuzzKrausChannel drives channel construction and application over fuzzed
// parameters: any (kind, strength) pair must either be rejected at
// construction or produce a trace-preserving superoperator that leaves ρ a
// well-formed DD — trace pinned to 1, purity in (0, 1], diagonal a
// probability distribution, and no severed (zero) root. The strength arrives
// as raw float64 bits so the mutation engine reaches NaN, infinities, and
// subnormals, not just in-range values.
func FuzzKrausChannel(f *testing.F) {
	kinds := Kinds()
	f.Add(uint8(0), math.Float64bits(0.1), int64(1), uint8(0)) // depolarizing mid-strength
	f.Add(uint8(1), math.Float64bits(1), int64(2), uint8(2))   // amplitude damping, full decay
	f.Add(uint8(2), math.Float64bits(0), int64(3), uint8(1))   // dephasing, identity channel
	f.Add(uint8(3), math.Float64bits(0.5), int64(4), uint8(1)) // bit flip, maximal mixing
	f.Add(uint8(4), math.Float64bits(1.5), int64(5), uint8(0)) // out of range: must reject
	f.Add(uint8(0), math.Float64bits(math.NaN()), int64(6), uint8(0))
	f.Add(uint8(1), math.Float64bits(math.Inf(1)), int64(7), uint8(2))
	f.Add(uint8(2), math.Float64bits(5e-324), int64(8), uint8(2)) // smallest subnormal
	f.Fuzz(func(t *testing.T, kindIdx uint8, pBits uint64, stateSeed int64, qubit uint8) {
		kind := kinds[int(kindIdx)%len(kinds)]
		p := math.Float64frombits(pBits)
		ch, err := New(kind, p)
		if err != nil {
			if p >= 0 && p <= 1 && !math.IsNaN(p) {
				t.Fatalf("New(%s, %v) rejected an in-contract strength: %v", kind, p, err)
			}
			return
		}
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("New(%s, %v) accepted an out-of-contract strength", kind, p)
		}

		// Build a random entangled state, evolve it through the channel on a
		// fuzzed qubit (twice, with a unitary in between, so the invariants
		// survive composition), and check ρ stays a density matrix.
		const n = 3
		m := dd.New()
		rng := rand.New(rand.NewSource(stateSeed))
		amps := make([]complex128, 1<<n)
		var norm float64
		for i := range amps {
			amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := range amps {
			amps[i] *= inv
		}
		v, err := m.FromAmplitudes(amps)
		if err != nil {
			t.Skip() // the all-zero draw
		}
		den := FromPure(m, n, v)
		q := int(qubit) % n
		den.ApplyChannel(ch, q)
		hadamard, err := circuit.Matrix1Q("h", nil)
		if err != nil {
			t.Fatal(err)
		}
		den.ApplyUnitary(m.MakeGateDD(n, hadamard, (q+1)%n))
		den.ApplyChannel(ch, (q+2)%n)

		if err := den.Check(1e-9); err != nil {
			t.Fatalf("%s p=%v: %v", kind, p, err)
		}
		if tr := den.Trace(); math.Abs(tr-1) > 1e-9 {
			t.Fatalf("%s p=%v: trace drifted to %v", kind, p, tr)
		}
		if pur := den.Purity(); pur <= 0 || pur > 1+1e-9 {
			t.Fatalf("%s p=%v: purity %v outside (0,1]", kind, p, pur)
		}
		var sum float64
		for _, prob := range den.Probabilities() {
			if prob < 0 || prob > 1 {
				t.Fatalf("%s p=%v: diagonal entry %v outside [0,1]", kind, p, prob)
			}
			sum += prob
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s p=%v: diagonal sums to %v", kind, p, sum)
		}
	})
}
