package cnum

import (
	"math"
	"sync"
	"sync/atomic"
)

// DefaultTolerance is the grid spacing used to decide when two floating-point
// complex values are considered the same weight. It matches the order of
// magnitude used by production DD packages: large enough to absorb rounding
// drift from long gate sequences, small enough not to merge distinct
// amplitudes of the circuits under study.
const DefaultTolerance = 1e-10

type cellKey struct{ re, im int64 }

const (
	// numShards splits the cell map so a shared table contends on per-shard
	// locks instead of one global lock. Must be a power of two. Per-manager
	// (unshared) tables use the same sharding with the locks compiled out of
	// the hot path, so both modes run the same interning policy.
	numShards = 8
	// valueChunk is the number of Values allocated per arena chunk.
	valueChunk = 1024
)

// tableShard is one slice of the cell map. The trailing pad keeps shards on
// separate cache lines so per-shard locks in shared mode do not false-share.
type tableShard struct {
	mu    sync.Mutex
	cells map[cellKey]*Value
	_     [40]byte
}

// shardOf selects a shard from well-mixed high multiply bits, so neighbouring
// cells spread across shards.
func shardOf(k cellKey) int {
	h := uint64(k.re)*0x9E3779B97F4A7C15 ^ uint64(k.im)*0xC6A4A7935BD1E995
	return int(h >> (64 - 3)) // top log2(numShards) bits
}

// cellHash derives the canonical Value hash from the grid cell alone. Two
// tables at the same tolerance therefore assign equal hashes to equal
// weights regardless of interning order — the "canonical-hash bridge" that
// keeps DD node hashes, and hence every downstream structure, bit-identical
// across fresh, reused, and per-worker managers.
func cellHash(k cellKey) uint64 {
	h := Mix64(uint64(k.re) ^ 0x9E3779B97F4A7C15)
	return Mix64(h + uint64(k.im))
}

// Table interns complex values on a tolerance grid. The zero value is not
// usable; construct with NewTable (single-goroutine, the per-manager default)
// or NewSharedTable (per-shard locking for concurrent interning). Stats
// counters are atomic in both modes, so observers may read them while another
// goroutine interns.
type Table struct {
	tol    float64
	shared bool

	shards [numShards]tableShard

	// Canonical values. Zero and One are used pervasively by the DD engine
	// for pointer-identity fast paths; Reset keeps their pointer identity.
	Zero *Value
	One  *Value

	// Value arena: values are allocated from retained chunks and harvested
	// onto a free list by Reset, so steady-state interning after a Reset
	// allocates nothing.
	arenaMu   sync.Mutex // guards chunk/chunkNext/free in shared mode
	chunk     []Value
	chunkNext int
	free      []*Value

	lookups atomic.Int64
	misses  atomic.Int64 // lookups that interned a new value
	size    atomic.Int64
	peak    atomic.Int64
}

// NewTable returns a single-goroutine table with DefaultTolerance.
func NewTable() *Table { return NewTableTol(DefaultTolerance) }

// NewTableTol returns a single-goroutine table with the given tolerance.
// tol must be positive.
func NewTableTol(tol float64) *Table { return newTable(tol, false) }

// NewSharedTable returns a table safe for concurrent Lookup from multiple
// goroutines, using per-shard locks; it has DefaultTolerance. Per-cell
// canonicalization (same cell ⇒ same pointer) holds under concurrency;
// cross-cell tolerance snapping is best-effort when two goroutines intern
// values straddling a cell boundary at the same moment, so bit-level
// reproducibility guarantees require the per-manager unshared tables.
func NewSharedTable() *Table { return NewSharedTableTol(DefaultTolerance) }

// NewSharedTableTol is NewSharedTable with an explicit tolerance.
func NewSharedTableTol(tol float64) *Table { return newTable(tol, true) }

func newTable(tol float64, shared bool) *Table {
	if tol <= 0 {
		panic("cnum: tolerance must be positive")
	}
	t := &Table{tol: tol, shared: shared}
	for i := range t.shards {
		t.shards[i].cells = make(map[cellKey]*Value, 128)
	}
	t.Zero = t.Lookup(0)
	t.One = t.Lookup(1)
	return t
}

// Tolerance returns the table tolerance.
func (t *Table) Tolerance() float64 { return t.tol }

// Size returns the number of currently interned values.
func (t *Table) Size() int { return int(t.size.Load()) }

// Peak returns the high-water mark of Size since the table was created or
// last Reset, so per-job table pressure stays observable when managers are
// reused across jobs.
func (t *Table) Peak() int { return int(t.peak.Load()) }

// Stats returns lookup and hit counters. Both counters are monotonic over
// the table lifetime (Reset does not rewind them), so callers measuring one
// run take deltas. Safe to call concurrently with lookups on shared tables.
func (t *Table) Stats() (lookups, hits int64) {
	l := t.lookups.Load()
	return l, l - t.misses.Load()
}

func (t *Table) key(re, im float64) cellKey {
	return cellKey{int64(math.Round(re / t.tol)), int64(math.Round(im / t.tol))}
}

// CanonicalHash returns the hash a value interned for c would carry. It
// depends only on the tolerance grid cell, never on interning order, so
// separate tables at the same tolerance can compare weights by hash.
func (t *Table) CanonicalHash(c complex128) uint64 {
	re, im := real(c), imag(c)
	if re == 0 {
		re = 0
	}
	if im == 0 {
		im = 0
	}
	return cellHash(t.key(re, im))
}

// Lookup interns c and returns the canonical Value pointer. Values within the
// tolerance of an already-interned value return the existing pointer; the
// neighbouring grid cells are also probed so values straddling a cell
// boundary still unify.
func (t *Table) Lookup(c complex128) *Value {
	return t.LookupFloat(real(c), imag(c))
}

// LookupFloat is Lookup for separate real/imaginary parts.
func (t *Table) LookupFloat(re, im float64) *Value {
	t.lookups.Add(1)
	// Canonicalize signed zeros so -0.0 and +0.0 intern identically.
	if re == 0 {
		re = 0
	}
	if im == 0 {
		im = 0
	}
	k := t.key(re, im)
	s := &t.shards[shardOf(k)]
	if t.shared {
		s.mu.Lock()
		v, ok := s.cells[k]
		s.mu.Unlock()
		if ok {
			return v
		}
	} else if v, ok := s.cells[k]; ok {
		return v
	}
	return t.lookupSlow(k, re, im)
}

// lookupSlow handles the exact-cell miss: neighbour probing, canonical
// constant snapping, and interning a new value.
func (t *Table) lookupSlow(k cellKey, re, im float64) *Value {
	// Probe the 8 neighbouring cells: a value within tol of an existing one
	// may round to an adjacent cell.
	for dr := int64(-1); dr <= 1; dr++ {
		for di := int64(-1); di <= 1; di++ {
			if dr == 0 && di == 0 {
				continue
			}
			nk := cellKey{k.re + dr, k.im + di}
			ns := &t.shards[shardOf(nk)]
			if t.shared {
				ns.mu.Lock()
			}
			v, ok := ns.cells[nk]
			if t.shared {
				ns.mu.Unlock()
			}
			if ok && math.Abs(v.Re-re) <= t.tol && math.Abs(v.Im-im) <= t.tol {
				return v
			}
		}
	}
	// Snap near-exact constants so canonical values keep pointer identity.
	if math.Abs(re) <= t.tol && math.Abs(im) <= t.tol {
		if t.Zero != nil {
			return t.Zero
		}
		re, im = 0, 0
	} else if math.Abs(re-1) <= t.tol && math.Abs(im) <= t.tol {
		if t.One != nil {
			return t.One
		}
		re, im = 1, 0
	}
	v := t.allocValue()
	*v = Value{Re: re, Im: im, hash: cellHash(k)}
	s := &t.shards[shardOf(k)]
	if t.shared {
		s.mu.Lock()
		if w, ok := s.cells[k]; ok {
			// Another goroutine interned this cell between our probe and the
			// insert; keep the winner and recycle our candidate.
			s.mu.Unlock()
			t.freeValue(v)
			return w
		}
		s.cells[k] = v
		s.mu.Unlock()
	} else {
		s.cells[k] = v
	}
	t.misses.Add(1)
	sz := t.size.Add(1)
	for {
		p := t.peak.Load()
		if sz <= p || t.peak.CompareAndSwap(p, sz) {
			break
		}
	}
	return v
}

// allocValue hands out a Value from the free list or the current chunk.
func (t *Table) allocValue() *Value {
	if t.shared {
		t.arenaMu.Lock()
		defer t.arenaMu.Unlock()
	}
	if n := len(t.free); n > 0 {
		v := t.free[n-1]
		t.free = t.free[:n-1]
		return v
	}
	if t.chunkNext == len(t.chunk) {
		t.chunk = make([]Value, valueChunk)
		t.chunkNext = 0
	}
	v := &t.chunk[t.chunkNext]
	t.chunkNext++
	return v
}

func (t *Table) freeValue(v *Value) {
	if t.shared {
		t.arenaMu.Lock()
		defer t.arenaMu.Unlock()
	}
	t.free = append(t.free, v)
}

// Reset empties the table, harvesting every interned value (except the
// canonical Zero and One, whose pointer identity survives) onto the arena
// free list so subsequent interning reuses their memory. Lookup/hit counters
// keep accumulating; Peak restarts at the post-reset size so it reports
// per-epoch pressure. The caller must guarantee quiescence: Reset must not
// race with Lookup, even on shared tables.
func (t *Table) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		for _, v := range s.cells {
			if v == t.Zero || v == t.One {
				continue
			}
			t.free = append(t.free, v)
		}
		clear(s.cells)
	}
	zk := t.key(0, 0)
	ok := t.key(1, 0)
	t.shards[shardOf(zk)].cells[zk] = t.Zero
	t.shards[shardOf(ok)].cells[ok] = t.One
	t.size.Store(2)
	t.peak.Store(2)
}

// Trim releases the arena free list and spare chunk capacity to the garbage
// collector. Only meaningful right after Reset (when no interned value
// outside Zero/One pins a chunk); the batch arena uses it to cap per-worker
// retained memory.
func (t *Table) Trim() {
	t.free = nil
	t.chunk = nil
	t.chunkNext = 0
}

// Mix64 is the SplitMix64 finalizer: a cheap bijective mixer whose output
// bits all depend on all input bits. The table uses it to spread grid-cell
// coordinates into well-distributed Value hashes, and the decision-diagram
// tables reuse it to finish their combined key hashes.
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// IsZero reports whether v is the canonical zero of this table.
func (t *Table) IsZero(v *Value) bool { return v == t.Zero }

// IsOne reports whether v is the canonical one of this table.
func (t *Table) IsOne(v *Value) bool { return v == t.One }
