package cnum

import "math"

// DefaultTolerance is the grid spacing used to decide when two floating-point
// complex values are considered the same weight. It matches the order of
// magnitude used by production DD packages: large enough to absorb rounding
// drift from long gate sequences, small enough not to merge distinct
// amplitudes of the circuits under study.
const DefaultTolerance = 1e-10

type cellKey struct{ re, im int64 }

// Table interns complex values. The zero value is not usable; construct with
// NewTable. Tables are not safe for concurrent mutation.
type Table struct {
	tol   float64
	cells map[cellKey]*Value

	// Canonical values. Zero and One are used pervasively by the DD engine
	// for pointer-identity fast paths.
	Zero *Value
	One  *Value

	lookups int64
	hits    int64
	seq     uint64 // interning counter feeding Value hashes
}

// NewTable returns a table with DefaultTolerance.
func NewTable() *Table { return NewTableTol(DefaultTolerance) }

// NewTableTol returns a table with the given tolerance. tol must be positive.
func NewTableTol(tol float64) *Table {
	if tol <= 0 {
		panic("cnum: tolerance must be positive")
	}
	t := &Table{tol: tol, cells: make(map[cellKey]*Value, 1024)}
	t.Zero = t.Lookup(0)
	t.One = t.Lookup(1)
	return t
}

// Tolerance returns the table tolerance.
func (t *Table) Tolerance() float64 { return t.tol }

// Size returns the number of interned values.
func (t *Table) Size() int { return len(t.cells) }

// Peak returns the high-water mark of Size over the table's lifetime. The
// table never shrinks, so this is simply Size; callers reporting table
// pressure should use Peak so the metric survives future compaction.
func (t *Table) Peak() int { return len(t.cells) }

// Stats returns lookup and hit counters (for instrumentation).
func (t *Table) Stats() (lookups, hits int64) { return t.lookups, t.hits }

func (t *Table) key(re, im float64) cellKey {
	return cellKey{int64(math.Round(re / t.tol)), int64(math.Round(im / t.tol))}
}

// Lookup interns c and returns the canonical Value pointer. Values within the
// tolerance of an already-interned value return the existing pointer; the
// neighbouring grid cells are also probed so values straddling a cell
// boundary still unify.
func (t *Table) Lookup(c complex128) *Value {
	return t.LookupFloat(real(c), imag(c))
}

// LookupFloat is Lookup for separate real/imaginary parts.
func (t *Table) LookupFloat(re, im float64) *Value {
	t.lookups++
	// Canonicalize signed zeros so -0.0 and +0.0 intern identically.
	if re == 0 {
		re = 0
	}
	if im == 0 {
		im = 0
	}
	k := t.key(re, im)
	if v, ok := t.cells[k]; ok {
		t.hits++
		return v
	}
	// Probe the 8 neighbouring cells: a value within tol of an existing one
	// may round to an adjacent cell.
	for dr := int64(-1); dr <= 1; dr++ {
		for di := int64(-1); di <= 1; di++ {
			if dr == 0 && di == 0 {
				continue
			}
			if v, ok := t.cells[cellKey{k.re + dr, k.im + di}]; ok {
				if math.Abs(v.Re-re) <= t.tol && math.Abs(v.Im-im) <= t.tol {
					t.hits++
					return v
				}
			}
		}
	}
	// Snap near-exact constants so canonical values keep pointer identity.
	if math.Abs(re) <= t.tol && math.Abs(im) <= t.tol {
		if t.Zero != nil {
			t.hits++
			return t.Zero
		}
		re, im = 0, 0
	} else if math.Abs(re-1) <= t.tol && math.Abs(im) <= t.tol {
		if t.One != nil {
			t.hits++
			return t.One
		}
		re, im = 1, 0
	}
	t.seq++
	v := &Value{Re: re, Im: im, hash: Mix64(t.seq + 0x9E3779B97F4A7C15)}
	t.cells[k] = v
	return v
}

// Mix64 is the SplitMix64 finalizer: a cheap bijective mixer whose output
// bits all depend on all input bits. The table uses it to turn the
// sequential interning counter into a well-spread Value hash, and the
// decision-diagram tables reuse it to finish their combined key hashes.
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// IsZero reports whether v is the canonical zero of this table.
func (t *Table) IsZero(v *Value) bool { return v == t.Zero }

// IsOne reports whether v is the canonical one of this table.
func (t *Table) IsOne(v *Value) bool { return v == t.One }
