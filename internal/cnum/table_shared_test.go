package cnum

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestSharedTableConcurrentLookup hammers one shared table from many
// goroutines over an overlapping value set. Run under -race this checks the
// sharded locking; the per-cell canonicalization check holds regardless of
// interleaving: every goroutine looking up the same float pair must get the
// same pointer.
func TestSharedTableConcurrentLookup(t *testing.T) {
	tb := NewSharedTable()
	const (
		goroutines = 8
		valuesPer  = 5000
		distinct   = 512
	)
	results := make([]map[complex128]*Value, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			got := make(map[complex128]*Value, distinct)
			for i := 0; i < valuesPer; i++ {
				// Values on a coarse lattice so goroutines collide constantly.
				c := complex(float64(rng.Intn(distinct))/64, float64(rng.Intn(distinct))/64)
				v := tb.Lookup(c)
				if prev, ok := got[c]; ok && prev != v {
					t.Errorf("goroutine %d: Lookup(%v) changed pointer", g, c)
					return
				}
				got[c] = v
				// Concurrent stats reads must be safe too.
				if i%1000 == 0 {
					tb.Stats()
					tb.Size()
					tb.Peak()
				}
			}
			results[g] = got
		}(g)
	}
	wg.Wait()
	// Cross-goroutine canonicalization: same value ⇒ same pointer everywhere.
	merged := make(map[complex128]*Value)
	for g, got := range results {
		for c, v := range got {
			if prev, ok := merged[c]; ok && prev != v {
				t.Fatalf("goroutine %d: Lookup(%v) returned a different pointer than another goroutine", g, c)
			}
			merged[c] = v
		}
	}
	lookups, hits := tb.Stats()
	if lookups != goroutines*valuesPer+2 { // +2 for the Zero/One construction lookups
		t.Errorf("lookups = %d, want %d", lookups, goroutines*valuesPer+2)
	}
	if misses := lookups - hits; misses != int64(tb.Size()) {
		t.Errorf("misses = %d but table holds %d values", misses, tb.Size())
	}
}

// TestCanonicalHashBridge: equal weights carry equal hashes across tables,
// independent of interning order — the property that keeps DD hashing
// bit-identical across fresh, reused, and per-worker managers.
func TestCanonicalHashBridge(t *testing.T) {
	a := NewTable()
	b := NewTable()
	vals := []complex128{
		complex(1/math.Sqrt2, 0),
		complex(0, -1),
		complex(0.5, 0.5),
		complex(-0.25, 1e-3),
		complex(0.123456789, -0.987654321),
	}
	// Intern in opposite orders.
	for _, c := range vals {
		a.Lookup(c)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Lookup(vals[i])
	}
	for _, c := range vals {
		va, vb := a.Lookup(c), b.Lookup(c)
		if va.Hash() != vb.Hash() {
			t.Errorf("hash of %v differs across tables: %x vs %x", c, va.Hash(), vb.Hash())
		}
		if va.Hash() != a.CanonicalHash(c) {
			t.Errorf("CanonicalHash(%v) = %x, interned hash %x", c, a.CanonicalHash(c), va.Hash())
		}
	}
	if a.Zero.Hash() != b.Zero.Hash() || a.One.Hash() != b.One.Hash() {
		t.Error("canonical constants hash differently across tables")
	}
}

// TestResetKeepsCanonicalPointersAndRecyclesMemory: Reset must preserve
// Zero/One pointer identity, restore a logically fresh table, and serve
// subsequent interning from the harvested free list.
func TestResetReusesValues(t *testing.T) {
	tb := NewTable()
	zero, one := tb.Zero, tb.One
	for i := 0; i < 100; i++ {
		tb.LookupFloat(float64(i)/7, float64(-i)/13)
	}
	if tb.Size() <= 2 {
		t.Fatal("setup interned nothing")
	}
	peakBefore := tb.Peak()
	tb.Reset()
	if tb.Zero != zero || tb.One != one {
		t.Fatal("Reset changed canonical pointers")
	}
	if tb.Size() != 2 {
		t.Fatalf("Size after Reset = %d, want 2", tb.Size())
	}
	if tb.Peak() != 2 {
		t.Fatalf("Peak after Reset = %d, want 2", tb.Peak())
	}
	if len(tb.free) == 0 {
		t.Fatal("Reset harvested no values onto the free list")
	}
	if tb.Lookup(0) != zero || tb.Lookup(1) != one {
		t.Fatal("canonical constants not interned after Reset")
	}
	// Re-interning must pop the free list, not grow the chunk.
	freeBefore := len(tb.free)
	v := tb.Lookup(complex(0.25, 0.75))
	if len(tb.free) != freeBefore-1 {
		t.Errorf("Lookup after Reset did not reuse a pooled value (free %d -> %d)", freeBefore, len(tb.free))
	}
	if v.Complex() != complex(0.25, 0.75) {
		t.Errorf("recycled value holds %v", v.Complex())
	}
	if tb.Peak() < peakBefore {
		// Peak restarted; just exercise the accessor for the grown epoch.
		if tb.Peak() != 3 {
			t.Errorf("Peak after one post-reset interning = %d, want 3", tb.Peak())
		}
	}
	// Trim right after a fresh Reset releases the arena.
	tb.Reset()
	tb.Trim()
	if len(tb.free) != 0 || tb.chunk != nil {
		t.Error("Trim left arena memory retained")
	}
	if tb.Lookup(complex(0.1, 0.2)) == nil {
		t.Error("Lookup after Trim failed")
	}
}
