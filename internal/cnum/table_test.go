package cnum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonicalZeroOne(t *testing.T) {
	tb := NewTable()
	if tb.Zero == nil || tb.One == nil {
		t.Fatal("canonical values not initialized")
	}
	if tb.Lookup(0) != tb.Zero {
		t.Error("Lookup(0) is not the canonical zero")
	}
	if tb.Lookup(1) != tb.One {
		t.Error("Lookup(1) is not the canonical one")
	}
	if !tb.IsZero(tb.Lookup(complex(0, 0))) {
		t.Error("IsZero failed for looked-up zero")
	}
	if !tb.IsOne(tb.Lookup(complex(1, 0))) {
		t.Error("IsOne failed for looked-up one")
	}
}

func TestSignedZeroCanonicalization(t *testing.T) {
	tb := NewTable()
	negZero := math.Copysign(0, -1)
	if tb.LookupFloat(negZero, 0) != tb.Zero {
		t.Error("-0.0 did not intern to canonical zero")
	}
	if tb.LookupFloat(0, negZero) != tb.Zero {
		t.Error("0-0i did not intern to canonical zero")
	}
	if tb.LookupFloat(1, negZero) != tb.One {
		t.Error("1-0i did not intern to canonical one")
	}
}

func TestInterningIdempotent(t *testing.T) {
	tb := NewTable()
	vals := []complex128{
		complex(1/math.Sqrt2, 0),
		complex(0, -1),
		complex(0.5, 0.5),
		complex(-0.25, 1e-3),
	}
	for _, c := range vals {
		a := tb.Lookup(c)
		b := tb.Lookup(c)
		if a != b {
			t.Errorf("Lookup(%v) not idempotent", c)
		}
	}
}

func TestToleranceUnification(t *testing.T) {
	tb := NewTable()
	base := tb.Lookup(complex(1/math.Sqrt2, 0))
	// A value within tolerance must intern to the same pointer, even if its
	// grid cell differs.
	for _, eps := range []float64{1e-12, -1e-12, 4.9e-11, -4.9e-11} {
		got := tb.Lookup(complex(1/math.Sqrt2+eps, eps/2))
		if got != base {
			t.Errorf("value offset by %g did not unify (got %v want %v)", eps, got, base)
		}
	}
}

func TestDistinctValuesStayDistinct(t *testing.T) {
	tb := NewTable()
	a := tb.Lookup(complex(0.3, 0))
	b := tb.Lookup(complex(0.300001, 0))
	if a == b {
		t.Error("values 1e-6 apart were merged at tolerance 1e-10")
	}
}

func TestNearOneSnaps(t *testing.T) {
	tb := NewTable()
	if tb.Lookup(complex(1+1e-12, -1e-12)) != tb.One {
		t.Error("value within tol of 1 did not snap to canonical one")
	}
	if tb.Lookup(complex(1e-12, -1e-12)) != tb.Zero {
		t.Error("value within tol of 0 did not snap to canonical zero")
	}
}

func TestValueAccessors(t *testing.T) {
	tb := NewTable()
	v := tb.Lookup(complex(3, -4))
	if v.Complex() != complex(3, -4) {
		t.Errorf("Complex() = %v", v.Complex())
	}
	if v.Abs2() != 25 {
		t.Errorf("Abs2() = %v, want 25", v.Abs2())
	}
	if v.Abs() != 5 {
		t.Errorf("Abs() = %v, want 5", v.Abs())
	}
	var nilV *Value
	if nilV.Complex() != 0 || nilV.Abs2() != 0 {
		t.Error("nil Value accessors should be zero")
	}
}

func TestValueString(t *testing.T) {
	tb := NewTable()
	cases := []struct {
		c    complex128
		want string
	}{
		{complex(1, 0), "1"},
		{complex(0, 1), "1i"},
		{complex(0.5, 0.5), "0.5+0.5i"},
		{complex(0.5, -0.5), "0.5-0.5i"},
	}
	for _, tc := range cases {
		if got := tb.Lookup(tc.c).String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.c, got, tc.want)
		}
	}
	var nilV *Value
	if nilV.String() != "<nil>" {
		t.Error("nil String()")
	}
}

func TestStatsAndSize(t *testing.T) {
	tb := NewTable()
	before := tb.Size()
	tb.Lookup(complex(0.123, 0.456))
	if tb.Size() != before+1 {
		t.Errorf("Size did not grow by 1")
	}
	tb.Lookup(complex(0.123, 0.456))
	lookups, hits := tb.Stats()
	if lookups == 0 || hits == 0 {
		t.Errorf("Stats not counting: lookups=%d hits=%d", lookups, hits)
	}
}

func TestBadToleranceRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTableTol(0) did not panic")
		}
	}()
	NewTableTol(0)
}

// Property: interning any float pair twice yields the same pointer, and the
// interned value is within tolerance of the input.
func TestQuickInterning(t *testing.T) {
	tb := NewTable()
	f := func(re, im float64) bool {
		// Constrain to a sane range; NaN/Inf weights never occur in DDs.
		re = math.Mod(re, 4)
		im = math.Mod(im, 4)
		if math.IsNaN(re) || math.IsNaN(im) {
			return true
		}
		a := tb.LookupFloat(re, im)
		b := tb.LookupFloat(re, im)
		return a == b &&
			math.Abs(a.Re-re) <= 2*tb.Tolerance() &&
			math.Abs(a.Im-im) <= 2*tb.Tolerance()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: values farther apart than 3*tol never unify.
func TestQuickSeparation(t *testing.T) {
	tb := NewTable()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		re := rng.Float64()*2 - 1
		im := rng.Float64()*2 - 1
		d := 3*tb.Tolerance() + rng.Float64()*1e-6
		a := tb.LookupFloat(re, im)
		b := tb.LookupFloat(re+d, im)
		if a == b {
			t.Fatalf("values %g apart unified at tol %g", d, tb.Tolerance())
		}
	}
}
