// Package cnum provides an interning table for complex edge weights used by
// decision diagrams.
//
// Decision-diagram canonicity requires that numerically equal (within a
// tolerance) complex values are represented by the same object, so that node
// equality can be decided by pointer comparison. The design follows the
// complex-number tables of Zulehner, Hillmich, and Wille ("How to efficiently
// handle complex values? Implementing decision diagrams for quantum
// computing", ICCAD 2019): values are bucketed on a tolerance grid and looked
// up before insertion.
//
// The cell map is split into shards. Per-manager tables (NewTable) are
// single-goroutine and skip all locking; NewSharedTable enables per-shard
// locks so many goroutines can intern concurrently against one table.
// Lookup/hit counters are atomic in both modes, and the batch engine's
// per-worker managers each own an unshared table, so nothing is shared hot.
//
// Every interned Value carries a stable 64-bit hash derived from its
// tolerance-grid cell (Value.Hash): equal weights hash equally in every
// table at the same tolerance, independent of interning order. The dd
// package combines these with node ids to key its unique tables and compute
// caches, keeping all hashing independent of pointer values and therefore
// deterministic across runs, worker counts, and manager reuse. Values are
// allocated from retained chunks; Reset harvests them onto a free list so a
// reused manager's interning runs allocation-free at steady state. The table
// also tracks lookup/hit counters and a per-epoch peak size (Stats, Peak),
// which sim surfaces per run as weight-table pressure.
package cnum
