// Package cnum provides an interning table for complex edge weights used by
// decision diagrams.
//
// Decision-diagram canonicity requires that numerically equal (within a
// tolerance) complex values are represented by the same object, so that node
// equality can be decided by pointer comparison. The design follows the
// complex-number tables of Zulehner, Hillmich, and Wille ("How to efficiently
// handle complex values? Implementing decision diagrams for quantum
// computing", ICCAD 2019): values are bucketed on a tolerance grid and looked
// up before insertion.
//
// Every interned Value carries a stable 64-bit hash assigned at interning
// time (Value.Hash); the dd package combines these with node ids to key its
// unique tables and compute caches, keeping all hashing independent of
// pointer values and therefore deterministic across runs. The table also
// tracks lookup/hit counters and a lifetime peak size (Stats, Peak), which
// sim surfaces per run as weight-table pressure.
package cnum
