package cnum

import (
	"fmt"
	"math"
)

// Value is an interned complex number. Within a single Table two Values that
// compare equal within the table tolerance are the same pointer, so edge
// weights can be compared by pointer identity.
type Value struct {
	Re, Im float64

	// hash is a well-spread 64-bit identifier assigned by the owning Table
	// at interning time. It is stable for the Value's lifetime and
	// deterministic across runs (it depends only on the interning order),
	// which lets decision-diagram tables hash on weights without touching
	// pointer values.
	hash uint64
}

// Hash returns the stable 64-bit hash assigned when the value was interned.
func (v *Value) Hash() uint64 {
	if v == nil {
		return 0
	}
	return v.hash
}

// Complex returns the value as a complex128.
func (v *Value) Complex() complex128 {
	if v == nil {
		return 0
	}
	return complex(v.Re, v.Im)
}

// Abs2 returns the squared magnitude |v|².
func (v *Value) Abs2() float64 {
	if v == nil {
		return 0
	}
	return v.Re*v.Re + v.Im*v.Im
}

// Abs returns the magnitude |v|.
func (v *Value) Abs() float64 { return math.Sqrt(v.Abs2()) }

// String formats the value in a compact a+bi form.
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	switch {
	case v.Im == 0:
		return fmt.Sprintf("%g", v.Re)
	case v.Re == 0:
		return fmt.Sprintf("%gi", v.Im)
	case v.Im < 0:
		return fmt.Sprintf("%g-%gi", v.Re, -v.Im)
	default:
		return fmt.Sprintf("%g+%gi", v.Re, v.Im)
	}
}
