// Package shor implements Shor's factoring algorithm on top of the DD
// simulator, matching the paper's fidelity-driven benchmarks: a 3n-qubit
// order-finding circuit (2n counting qubits, n work qubits) whose modular
// multiplications are controlled permutation-matrix DDs, plus the classical
// pre- and post-processing (gcd, modular exponentiation, continued
// fractions, order → factors).
//
// Instances are named shor_N_a as in Table I. Run simulates order finding
// with a fidelity-driven approximation budget (the paper shows 50% final
// fidelity still factors reliably, E5) and Factor drives the full loop from
// an integer to its factors, including the classical lucky paths that skip
// simulation entirely.
package shor
