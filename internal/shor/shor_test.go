package shor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestInstanceValidation(t *testing.T) {
	if _, err := NewInstance(15, 7); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if _, err := NewInstance(16, 3); err == nil {
		t.Error("even N accepted")
	}
	if _, err := NewInstance(15, 5); err == nil {
		t.Error("non-coprime base accepted")
	}
	if _, err := NewInstance(15, 1); err == nil {
		t.Error("a = 1 accepted")
	}
	if _, err := NewInstance(3, 2); err == nil {
		t.Error("tiny N accepted")
	}
}

func TestInstanceQubitCountsMatchPaper(t *testing.T) {
	// Table I qubit counts: shor_33_5 → 18, shor_55_2 → 18, shor_69_2 → 21,
	// shor_221_4 → 24, shor_323_8 → 27, shor_629_8 → 30, shor_1157_8 → 33.
	cases := []struct {
		n, a   uint64
		qubits int
	}{
		{33, 5, 18}, {55, 2, 18}, {69, 2, 21}, {221, 4, 24},
		{323, 8, 27}, {629, 8, 30}, {1157, 8, 33},
	}
	for _, c := range cases {
		in, err := NewInstance(c.n, c.a)
		if err != nil {
			t.Fatal(err)
		}
		if in.Qubits != c.qubits {
			t.Errorf("%s: %d qubits, want %d (Table I)", in.Name(), in.Qubits, c.qubits)
		}
	}
}

func TestShorCircuitBlocks(t *testing.T) {
	// Fig. 2 structure: an H block, 2n controlled modular multiplications,
	// then the inverse QFT split into per-qubit groups (plus its swap
	// block). Every boundary is a candidate approximation location.
	in, err := NewInstance(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	c := in.BuildCircuit()
	blocks := c.Blocks()
	// 1 (H) + 2n (mod-muls) + 1 (swaps) + 2n (iqft qubit groups)
	want := 1 + 2*in.Bits + 1 + 2*in.Bits
	if len(blocks) != want {
		t.Errorf("%d block boundaries, want %d", len(blocks), want)
	}
	counts := c.CountByName()
	if counts["perm"] != 2*in.Bits {
		t.Errorf("%d modular multiplications, want %d", counts["perm"], 2*in.Bits)
	}
	if counts["h"] != 2*in.Bits+2*in.Bits {
		// 2n initial Hadamards + 2n inside the inverse QFT.
		t.Errorf("%d Hadamards, want %d", counts["h"], 4*in.Bits)
	}
}

func TestModMulPermutationIsBijection(t *testing.T) {
	in, err := NewInstance(21, 2)
	if err != nil {
		t.Fatal(err)
	}
	perm := in.modMulPermutation(2)
	seen := make([]bool, len(perm))
	for _, y := range perm {
		if seen[y] {
			t.Fatal("modular multiplication permutation is not a bijection")
		}
		seen[y] = true
	}
	// x ≥ N fixed.
	for x := int(in.N); x < len(perm); x++ {
		if perm[x] != x {
			t.Errorf("perm[%d] = %d, want identity above N", x, perm[x])
		}
	}
}

func TestCountingDistributionExactN15(t *testing.T) {
	// For N=15, a=7 the order is 4 and 4 | Q, so the exact counting
	// distribution is uniform over {0, Q/4, Q/2, 3Q/4}.
	in, err := NewInstance(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	res, err := s.Run(in.BuildCircuit(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	Q := uint64(1) << uint(in.CountingQubits())
	rng := rand.New(rand.NewSource(1))
	peaks := map[uint64]int{}
	const shots = 4000
	for i := 0; i < shots; i++ {
		y := in.ExtractCounting(res.Manager.Sample(res.Final, in.Qubits, rng))
		peaks[y]++
	}
	wantPeaks := map[uint64]bool{0: true, Q / 4: true, Q / 2: true, 3 * Q / 4: true}
	for y, count := range peaks {
		if !wantPeaks[y] {
			t.Fatalf("sampled off-peak counting value %d (count %d)", y, count)
		}
		frac := float64(count) / shots
		if math.Abs(frac-0.25) > 0.05 {
			t.Errorf("peak %d frequency %v, want 0.25", y, frac)
		}
	}
}

func TestShorFactorsExactly(t *testing.T) {
	for _, c := range []struct{ n, a uint64 }{{15, 7}, {15, 2}, {21, 2}} {
		in, err := NewInstance(c.n, c.a)
		if err != nil {
			t.Fatal(err)
		}
		out, err := in.Run(RunOptions{Shots: 64, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Factors.Success {
			t.Fatalf("%s: exact simulation failed to factor", in.Name())
		}
		if out.Factors.Factor1*out.Factors.Factor2 != c.n {
			t.Fatalf("%s: wrong factors %d × %d", in.Name(),
				out.Factors.Factor1, out.Factors.Factor2)
		}
	}
}

func TestShorFactorsAtHalfFidelity(t *testing.T) {
	// The paper's headline claim (Sections I, IV-C, VI): with the
	// fidelity-driven strategy at f_final = 0.5, f_round = 0.9, Shor still
	// factors correctly while the DD shrinks.
	in, err := NewInstance(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	out, err := in.Run(RunOptions{
		FinalFidelity: 0.5,
		RoundFidelity: 0.9,
		Shots:         128,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sim.FidelityBound < 0.5-1e-9 {
		t.Errorf("fidelity bound %v dropped below 0.5", out.Sim.FidelityBound)
	}
	if !out.Factors.Success {
		t.Fatal("approximate Shor (f_final = 0.5) failed to factor 15")
	}
	if out.Factors.Factor1*out.Factors.Factor2 != 15 {
		t.Fatalf("wrong factors %d × %d", out.Factors.Factor1, out.Factors.Factor2)
	}
}

func TestFactorTopLevel(t *testing.T) {
	out, err := Factor(15, RunOptions{Shots: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Factors.Success || out.Factors.Factor1*out.Factors.Factor2 != 15 {
		t.Fatalf("Factor(15) = %+v", out.Factors)
	}
	// Classical preprocessing shortcuts: even and prime-power inputs are
	// factored without simulation, primes are rejected.
	even, err := Factor(16, RunOptions{})
	if err != nil || !even.Factors.Success || even.Factors.Factor1*even.Factors.Factor2 != 16 {
		t.Errorf("Factor(16): %+v, %v", even, err)
	}
	pp, err := Factor(27, RunOptions{})
	if err != nil || !pp.Factors.Success || pp.Factors.Factor1*pp.Factors.Factor2 != 27 {
		t.Errorf("Factor(27): %+v, %v", pp, err)
	}
	if _, err := Factor(17, RunOptions{}); err == nil {
		t.Error("prime N accepted by Factor")
	}
	if _, err := Factor(2, RunOptions{}); err == nil {
		t.Error("tiny N accepted by Factor")
	}
}
