package shor

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
)

// FactorResult reports the classical post-processing over samples from the
// (possibly approximate) final state.
type FactorResult struct {
	// Factor1, Factor2 are the recovered non-trivial factors (0 if none).
	Factor1, Factor2 uint64
	// Success reports whether the factors were recovered from any sample.
	Success bool
	// Shots is the number of samples drawn.
	Shots int
	// OrderHits counts samples whose phase led to a verified order.
	OrderHits int
	// FactorHits counts samples that produced non-trivial factors.
	FactorHits int
}

// SuccessRate returns the per-shot factoring success fraction.
func (r FactorResult) SuccessRate() float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.FactorHits) / float64(r.Shots)
}

// PostProcess runs the classical part of Shor on samples drawn from the
// final state: for each sample, extract the counting value y, recover a
// candidate order via continued fractions, and try to split N. This is the
// step the paper performs to validate that 50 % fidelity still factors
// correctly ("we were able to correctly factorize the numbers given in the
// benchmarks by performing the non-quantum postprocessing steps").
func (in *Instance) PostProcess(res *sim.Result, shots int, rng *rand.Rand) FactorResult {
	out := FactorResult{Shots: shots}
	Q := uint64(1) << uint(in.CountingQubits())
	for i := 0; i < shots; i++ {
		sample := res.Manager.Sample(res.Final, in.Qubits, rng)
		y := in.ExtractCounting(sample)
		r, ok := OrderFromPhase(y, Q, in.A, in.N)
		if !ok {
			continue
		}
		out.OrderHits++
		f1, f2, ok := FactorsFromOrder(in.A, r, in.N)
		if !ok {
			continue
		}
		out.FactorHits++
		if !out.Success {
			out.Factor1, out.Factor2, out.Success = f1, f2, true
		}
	}
	return out
}

// RunOptions configures an end-to-end Shor run.
type RunOptions struct {
	// FinalFidelity / RoundFidelity configure the fidelity-driven strategy;
	// FinalFidelity = 1 (or 0) disables approximation (exact run).
	FinalFidelity float64
	RoundFidelity float64
	// Shots drawn from the final state for post-processing (default 128).
	Shots int
	// Seed for sampling.
	Seed int64
	// CollectSizeHistory forwards to sim.Options.
	CollectSizeHistory bool
}

// Outcome bundles the simulation result and the factoring post-processing.
type Outcome struct {
	Instance *Instance
	Sim      *sim.Result
	Factors  FactorResult
}

// Run builds the circuit, simulates it (exactly or fidelity-driven), samples
// the final state and post-processes the samples into factors.
func (in *Instance) Run(opts RunOptions) (*Outcome, error) {
	c := in.BuildCircuit()
	simOpts := sim.Options{CollectSizeHistory: opts.CollectSizeHistory}
	if opts.FinalFidelity > 0 && opts.FinalFidelity < 1 {
		if opts.RoundFidelity <= 0 {
			return nil, fmt.Errorf("shor: round fidelity required with final fidelity %v", opts.FinalFidelity)
		}
		strat := core.NewFidelityDriven(opts.FinalFidelity, opts.RoundFidelity)
		// Spread the rounds across the inverse QFT (the paper's placement):
		// the DD size peaks early in the IQFT, so covering the whole region
		// caps the peak far better than clustering rounds at the end.
		strat.Locations = in.IQFTBoundaries(c)
		simOpts.Strategy = strat
	}
	s := sim.New()
	res, err := s.Run(c, simOpts)
	if err != nil {
		return nil, err
	}
	shots := opts.Shots
	if shots <= 0 {
		shots = 128
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	return &Outcome{
		Instance: in,
		Sim:      res,
		Factors:  in.PostProcess(res, shots, rng),
	}, nil
}

// Factor is the top-level convenience: run Shor's classical preprocessing
// (reject primes, peel off even and perfect-power factors), then try random
// coprime bases until the quantum order-finding (simulated with the given
// options) yields a non-trivial split. The base sequence is deterministic
// per seed.
func Factor(n uint64, opts RunOptions) (*Outcome, error) {
	switch class, f1, f2 := Classify(n); class {
	case ClassTooSmall:
		return nil, fmt.Errorf("shor: N = %d too small to factor", n)
	case ClassPrime:
		return nil, fmt.Errorf("shor: N = %d is prime", n)
	case ClassEven, ClassPrimePower:
		return &Outcome{
			Factors: FactorResult{Factor1: f1, Factor2: f2, Success: true},
		}, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for attempt := 0; attempt < 16; attempt++ {
		a := 2 + rng.Uint64()%(n-3)
		if g := Gcd(a, n); g != 1 {
			// Lucky classical factor; report it without simulation.
			in, _ := NewInstance(n, 3) // placeholder instance for context
			return &Outcome{
				Instance: in,
				Factors: FactorResult{
					Factor1: g, Factor2: n / g, Success: true, Shots: 0,
				},
			}, nil
		}
		in, err := NewInstance(n, a)
		if err != nil {
			return nil, err
		}
		out, err := in.Run(opts)
		if err != nil {
			return nil, err
		}
		if out.Factors.Success {
			return out, nil
		}
	}
	return nil, fmt.Errorf("shor: failed to factor %d in 16 attempts", n)
}
