package shor

import "fmt"

// Gcd returns the greatest common divisor of a and b.
func Gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ModMul returns (a*b) mod m without overflow for m < 2^32.
func ModMul(a, b, m uint64) uint64 {
	if m == 0 {
		panic("shor: modulus zero")
	}
	if m < 1<<32 {
		return (a % m) * (b % m) % m
	}
	// Double-and-add fallback for large moduli (not hit by the paper's
	// instances, kept for completeness).
	a %= m
	b %= m
	var res uint64
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % m
		}
		a = (a + a) % m
		b >>= 1
	}
	return res
}

// ModPow returns a^e mod m.
func ModPow(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	res := uint64(1)
	base := a % m
	for e > 0 {
		if e&1 == 1 {
			res = ModMul(res, base, m)
		}
		base = ModMul(base, base, m)
		e >>= 1
	}
	return res
}

// MultiplicativeOrder returns the order of a modulo n (the smallest r > 0
// with a^r ≡ 1), computed classically by iteration. Used by tests and to
// grade sampled results; the quantum circuit of course does not call it.
func MultiplicativeOrder(a, n uint64) (uint64, error) {
	if Gcd(a, n) != 1 {
		return 0, fmt.Errorf("shor: %d and %d are not coprime", a, n)
	}
	x := a % n
	for r := uint64(1); r <= n; r++ {
		if x == 1 {
			return r, nil
		}
		x = ModMul(x, a, n)
	}
	return 0, fmt.Errorf("shor: order of %d mod %d not found", a, n)
}

// Convergent is one continued-fraction convergent p/q of a rational number.
type Convergent struct {
	P, Q uint64
}

// ContinuedFraction expands num/den into its sequence of convergents.
func ContinuedFraction(num, den uint64) []Convergent {
	if den == 0 {
		panic("shor: zero denominator")
	}
	var out []Convergent
	// p[-1]=1, p[-2]=0; q[-1]=0, q[-2]=1
	pPrev, p := uint64(1), uint64(0)
	qPrev, q := uint64(0), uint64(1)
	a, b := num, den
	for b != 0 {
		coeff := a / b
		a, b = b, a%b
		pPrev, p = coeff*pPrev+p, pPrev
		qPrev, q = coeff*qPrev+q, qPrev
		out = append(out, Convergent{P: pPrev, Q: qPrev})
	}
	return out
}

// OrderFromPhase recovers the multiplicative order r of a mod n from a
// measured counting-register value y out of Q = 2^t possibilities:
// y/Q ≈ s/r for an unknown s. It tries every continued-fraction convergent
// denominator q ≤ n (and small multiples, which handle gcd(s, r) > 1) and
// returns the first verified order.
func OrderFromPhase(y, q2t, a, n uint64) (uint64, bool) {
	if y == 0 {
		return 0, false // s = 0 carries no information
	}
	for _, c := range ContinuedFraction(y, q2t) {
		if c.Q == 0 || c.Q > n {
			continue
		}
		for mult := uint64(1); mult*c.Q <= n; mult++ {
			r := mult * c.Q
			if r > 0 && ModPow(a, r, n) == 1 {
				return r, true
			}
		}
	}
	return 0, false
}

// FactorsFromOrder derives non-trivial factors of n from the order r of a:
// if r is even and a^(r/2) ≢ −1 (mod n), then gcd(a^(r/2)±1, n) splits n.
func FactorsFromOrder(a, r, n uint64) (uint64, uint64, bool) {
	if r == 0 || r%2 != 0 {
		return 0, 0, false
	}
	h := ModPow(a, r/2, n)
	if h == n-1 { // a^(r/2) ≡ −1: the classic failure case
		return 0, 0, false
	}
	f1 := Gcd(h+1, n)
	f2 := Gcd(h+n-1, n)
	for _, f := range []uint64{f1, f2} {
		if f != 1 && f != n && n%f == 0 {
			return f, n / f, true
		}
	}
	return 0, 0, false
}

// BitLen returns the number of bits needed to represent n.
func BitLen(n uint64) int {
	bits := 0
	for n > 0 {
		bits++
		n >>= 1
	}
	return bits
}
