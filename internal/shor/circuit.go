package shor

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gen"
)

// Instance is one Shor benchmark "shor_N_a" in the paper's naming: factor N
// using coprime base a.
type Instance struct {
	N uint64 // the number to factor
	A uint64 // the coprime base
	// Bits is n = ⌈log₂(N+1)⌉, the work-register width.
	Bits int
	// Qubits is the full register width 3n (2n counting + n work),
	// matching the qubit counts of Table I (e.g. shor_33_5 → 18).
	Qubits int
}

// NewInstance validates the pair (N, a) and computes register sizes.
func NewInstance(n, a uint64) (*Instance, error) {
	if n < 4 {
		return nil, fmt.Errorf("shor: N = %d too small", n)
	}
	if n%2 == 0 {
		return nil, fmt.Errorf("shor: N = %d is even; factor 2 classically first", n)
	}
	if a < 2 || a >= n {
		return nil, fmt.Errorf("shor: base a = %d outside [2, N)", a)
	}
	if g := Gcd(a, n); g != 1 {
		return nil, fmt.Errorf("shor: gcd(a, N) = %d already factors N", g)
	}
	bits := BitLen(n)
	return &Instance{N: n, A: a, Bits: bits, Qubits: 3 * bits}, nil
}

// Name returns the paper-style benchmark name, e.g. "shor_33_5".
func (in *Instance) Name() string { return fmt.Sprintf("shor_%d_%d", in.N, in.A) }

// CountingQubits returns the number of counting qubits (2n).
func (in *Instance) CountingQubits() int { return 2 * in.Bits }

// modMulPermutation builds the permutation x → (c·x) mod N on the work
// register (identity on x ≥ N, which keeps the map a bijection).
func (in *Instance) modMulPermutation(c uint64) []int {
	dim := 1 << uint(in.Bits)
	perm := make([]int, dim)
	for x := 0; x < dim; x++ {
		if uint64(x) < in.N {
			perm[x] = int(ModMul(c, uint64(x), in.N))
		} else {
			perm[x] = x
		}
	}
	return perm
}

// BuildCircuit constructs the order-finding circuit of Fig. 2:
//
//	qubits [0, n)        work register, initialized to |1⟩
//	qubits [n, 3n)       counting register (qubit n+j holds bit j of y)
//
// H on every counting qubit, then for each j a controlled modular
// multiplication U_{a^{2^j} mod N} (a permutation-matrix DD) controlled by
// counting qubit j, then the inverse QFT on the counting register. Block
// boundaries are recorded after every modular multiplication and after every
// inverse-QFT qubit group, the candidate locations of Section IV-C.
func (in *Instance) BuildCircuit() *circuit.Circuit {
	n := in.Bits
	t := 2 * n
	c := circuit.New(in.Qubits, in.Name())

	// Work register |1⟩.
	c.X(0)
	// Counting register into uniform superposition.
	for j := 0; j < t; j++ {
		c.H(n + j)
	}
	c.EndBlock()

	// Controlled U_{a^{2^j}}: precompute c_j = a^(2^j) mod N classically.
	cj := in.A % in.N
	for j := 0; j < t; j++ {
		perm := in.modMulPermutation(cj)
		c.Permutation(perm, n, dd.PosControl(n+j))
		c.EndBlock()
		cj = ModMul(cj, cj, in.N)
	}

	// Inverse QFT over the counting qubits (LSB first = qubit n).
	qs := make([]int, t)
	for j := 0; j < t; j++ {
		qs[j] = n + j
	}
	gen.AppendInverseQFT(c, qs, true, true)
	return c
}

// ExtractCounting pulls the counting-register value y out of a sampled full
// basis state.
func (in *Instance) ExtractCounting(sample uint64) uint64 {
	return sample >> uint(in.Bits) & ((1 << uint(2*in.Bits)) - 1)
}

// IQFTBoundaries returns the block boundaries of c that lie inside the
// inverse QFT — the region where the paper places Shor's approximation
// rounds ("we exploited the knowledge that the inverse QFT ... required by
// far the most time"). The circuit layout records one boundary for the H
// layer and one per modular multiplication before the IQFT begins.
func (in *Instance) IQFTBoundaries(c *circuit.Circuit) []int {
	blocks := c.Blocks()
	prefix := 1 + 2*in.Bits // H block + 2n modular multiplications
	if len(blocks) <= prefix {
		return nil
	}
	return blocks[prefix:]
}
