package shor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGcd(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{12, 18, 6}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {48, 36, 12}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := Gcd(c.a, c.b); got != c.want {
			t.Errorf("Gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestModPow(t *testing.T) {
	cases := []struct{ a, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{7, 0, 15, 1},
		{7, 4, 15, 1}, // order of 7 mod 15 is 4
		{5, 3, 33, 26},
		{3, 100, 7, ModPow(3, 100%6, 7)}, // Fermat: ord divides 6
	}
	for _, c := range cases {
		if got := ModPow(c.a, c.e, c.m); got != c.want {
			t.Errorf("ModPow(%d,%d,%d) = %d, want %d", c.a, c.e, c.m, got, c.want)
		}
	}
}

func TestModMulMatchesBigModulus(t *testing.T) {
	// Exercise the double-and-add path with a modulus above 2^32.
	m := uint64(1) << 40
	a := uint64(1)<<39 + 12345
	b := uint64(1)<<39 + 67890
	want := ModMul(a%97, b%97, 97) // sanity on small path first
	if want != (a%97)*(b%97)%97 {
		t.Fatal("small path broken")
	}
	got := ModMul(a, b, m)
	// Verify against iterated addition on a smaller but >2^32 modulus using
	// the identity (a*b) mod m computed via math/big-free double-and-add:
	var ref uint64
	x, y := a%m, b%m
	for y > 0 {
		if y&1 == 1 {
			ref = (ref + x) % m
		}
		x = (x + x) % m
		y >>= 1
	}
	if got != ref {
		t.Errorf("ModMul big path: %d, want %d", got, ref)
	}
}

func TestMultiplicativeOrder(t *testing.T) {
	cases := []struct{ a, n, want uint64 }{
		{7, 15, 4}, {2, 15, 4}, {5, 33, 10}, {2, 21, 6}, {2, 55, 20}, {8, 1157, 0},
	}
	for _, c := range cases {
		got, err := MultiplicativeOrder(c.a, c.n)
		if err != nil {
			t.Fatalf("order(%d,%d): %v", c.a, c.n, err)
		}
		if c.want != 0 && got != c.want {
			t.Errorf("order(%d,%d) = %d, want %d", c.a, c.n, got, c.want)
		}
		if ModPow(c.a, got, c.n) != 1 {
			t.Errorf("a^r mod n != 1 for order %d", got)
		}
	}
	if _, err := MultiplicativeOrder(6, 15); err == nil {
		t.Error("non-coprime pair accepted")
	}
}

func TestContinuedFractionOfGoldenish(t *testing.T) {
	// 355/113 ≈ π has convergents 3/1, 22/7, 355/113.
	conv := ContinuedFraction(355, 113)
	found22_7 := false
	for _, c := range conv {
		if c.P == 22 && c.Q == 7 {
			found22_7 = true
		}
	}
	if !found22_7 {
		t.Errorf("convergents of 355/113 = %v missing 22/7", conv)
	}
	last := conv[len(conv)-1]
	if last.P != 355 || last.Q != 113 {
		t.Errorf("final convergent %v, want 355/113", last)
	}
}

func TestContinuedFractionRecoversExactRatio(t *testing.T) {
	// Property: last convergent of p/q equals p/q in lowest terms.
	f := func(p, q uint16) bool {
		if q == 0 {
			return true
		}
		conv := ContinuedFraction(uint64(p), uint64(q))
		if len(conv) == 0 {
			return false
		}
		last := conv[len(conv)-1]
		g := Gcd(uint64(p), uint64(q))
		if g == 0 {
			return true
		}
		return last.P == uint64(p)/g && last.Q == uint64(q)/g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestOrderFromPhaseIdealMeasurements(t *testing.T) {
	// For y = s·Q/r (exact phase peaks), the order must be recovered for
	// some s; aggregate over all s as the sampler would.
	cases := []struct{ a, n uint64 }{
		{7, 15}, {2, 21}, {5, 33}, {2, 55}, {4, 221 % 63}, // last: small sanity
	}
	for _, c := range cases {
		if Gcd(c.a, c.n) != 1 {
			continue
		}
		r, err := MultiplicativeOrder(c.a, c.n)
		if err != nil {
			t.Fatal(err)
		}
		bits := BitLen(c.n)
		Q := uint64(1) << uint(2*bits)
		recovered := false
		for s := uint64(1); s < r; s++ {
			y := s * Q / r // floor; close enough for CF recovery
			if got, ok := OrderFromPhase(y, Q, c.a, c.n); ok && got == r {
				recovered = true
			}
		}
		if !recovered && r > 1 {
			t.Errorf("order %d of %d mod %d never recovered from ideal phases", r, c.a, c.n)
		}
	}
}

func TestOrderFromPhaseZeroUninformative(t *testing.T) {
	if _, ok := OrderFromPhase(0, 256, 7, 15); ok {
		t.Error("y=0 produced an order")
	}
}

func TestFactorsFromOrder(t *testing.T) {
	// 7 mod 15 has order 4: 7² = 49 ≡ 4; gcd(5,15)=5, gcd(3,15)=3.
	f1, f2, ok := FactorsFromOrder(7, 4, 15)
	if !ok || f1*f2 != 15 || f1 == 1 || f2 == 1 {
		t.Errorf("FactorsFromOrder(7,4,15) = %d,%d,%v", f1, f2, ok)
	}
	// Odd order fails.
	if _, _, ok := FactorsFromOrder(4, 3, 15); ok {
		t.Error("odd order accepted")
	}
	// a^(r/2) ≡ −1 case: a=14, N=15: 14² = 196 ≡ 1, order 2, 14 ≡ −1.
	if _, _, ok := FactorsFromOrder(14, 2, 15); ok {
		t.Error("a^(r/2) ≡ −1 case produced factors")
	}
}

func TestFactorsFromOrderRandomized(t *testing.T) {
	// Property over random semiprimes: whenever FactorsFromOrder succeeds,
	// the factors are correct; and for a fair share of bases it succeeds.
	semiprimes := []uint64{15, 21, 33, 35, 55, 77, 91, 143, 221, 323}
	rng := rand.New(rand.NewSource(90))
	for _, n := range semiprimes {
		wins := 0
		tries := 0
		for i := 0; i < 30; i++ {
			a := 2 + rng.Uint64()%(n-3)
			if Gcd(a, n) != 1 {
				continue
			}
			tries++
			r, err := MultiplicativeOrder(a, n)
			if err != nil {
				t.Fatal(err)
			}
			if f1, f2, ok := FactorsFromOrder(a, r, n); ok {
				if f1*f2 != n {
					t.Fatalf("wrong factors %d×%d for %d", f1, f2, n)
				}
				wins++
			}
		}
		if tries > 4 && wins == 0 {
			t.Errorf("no base factored %d out of %d coprime tries (expected ≥ ~half)", n, tries)
		}
	}
}

func TestBitLen(t *testing.T) {
	cases := map[uint64]int{1: 1, 2: 2, 3: 2, 15: 4, 16: 5, 33: 6, 1157: 11}
	for n, want := range cases {
		if got := BitLen(n); got != want {
			t.Errorf("BitLen(%d) = %d, want %d", n, got, want)
		}
	}
}
