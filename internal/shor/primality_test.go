package shor

import (
	"testing"
	"testing/quick"
)

func TestIsProbablePrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 17: true,
		19: true, 23: true, 97: true, 101: true, 1009: true, 10007: true,
		104729: true, 2147483647: true, // Mersenne prime 2^31-1
	}
	composites := []uint64{0, 1, 4, 6, 9, 15, 21, 33, 55, 91, 221, 323, 561,
		1105, 1729, 2465, 6601, 8911, // Carmichael numbers
		1157, 341, 645, 2147483649}
	for p := range primes {
		if !IsProbablePrime(p) {
			t.Errorf("%d reported composite", p)
		}
	}
	for _, c := range composites {
		if IsProbablePrime(c) {
			t.Errorf("%d reported prime", c)
		}
	}
}

func TestIsProbablePrimeVsTrialDivision(t *testing.T) {
	for n := uint64(2); n < 5000; n++ {
		want := true
		for d := uint64(2); d*d <= n; d++ {
			if n%d == 0 {
				want = false
				break
			}
		}
		if got := IsProbablePrime(n); got != want {
			t.Fatalf("IsProbablePrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestPerfectPower(t *testing.T) {
	cases := []struct {
		n  uint64
		b  uint64
		k  int
		ok bool
	}{
		{4, 2, 2, true}, {8, 2, 3, true}, {9, 3, 2, true}, {27, 3, 3, true},
		{32, 2, 5, true}, {121, 11, 2, true}, {3125, 5, 5, true},
		{1 << 40, 2, 2, true}, // many representations; smallest k=2 found first: 2^40 = (2^20)²
		{6, 0, 0, false}, {15, 0, 0, false}, {100, 10, 2, true},
		{3, 0, 0, false}, {2, 0, 0, false},
	}
	for _, tc := range cases {
		b, k, ok := PerfectPower(tc.n)
		if ok != tc.ok {
			t.Errorf("PerfectPower(%d) ok=%v, want %v", tc.n, ok, tc.ok)
			continue
		}
		if ok && powUint64(b, k) != tc.n {
			t.Errorf("PerfectPower(%d) = %d^%d = %d", tc.n, b, k, powUint64(b, k))
		}
	}
}

func TestPerfectPowerQuick(t *testing.T) {
	// Property: b^k for random b,k is always detected.
	f := func(b8 uint8, k8 uint8) bool {
		b := uint64(b8%60) + 2
		k := int(k8%4) + 2
		n := powUint64(b, k)
		if n > 1<<40 {
			return true
		}
		_, _, ok := PerfectPower(n)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		n     uint64
		class InputClass
	}{
		{2, ClassTooSmall}, {3, ClassTooSmall},
		{10, ClassEven}, {4, ClassEven},
		{17, ClassPrime}, {10007, ClassPrime},
		{9, ClassPrimePower}, {27, ClassPrimePower}, {3125, ClassPrimePower},
		{15, ClassComposite}, {1157, ClassComposite}, {221, ClassComposite},
	}
	for _, tc := range cases {
		class, f1, f2 := Classify(tc.n)
		if class != tc.class {
			t.Errorf("Classify(%d) = %v, want %v", tc.n, class, tc.class)
			continue
		}
		if class == ClassEven || class == ClassPrimePower {
			if f1*f2 != tc.n && f1*f2 != 0 {
				// For prime powers we return (b, n/b), product must be n.
				t.Errorf("Classify(%d) factors %d × %d", tc.n, f1, f2)
			}
		}
	}
}
