package shor

import "math"

// IsProbablePrime reports whether n is prime using deterministic
// Miller–Rabin for 64-bit inputs (the witness set {2, 3, 5, 7, 11, 13, 17,
// 19, 23, 29, 31, 37} is exact below 3.3·10^24). Shor's classical
// preprocessing rejects primes before running the quantum part.
func IsProbablePrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// n-1 = d·2^s with d odd.
	d := n - 1
	s := 0
	for d%2 == 0 {
		d /= 2
		s++
	}
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := ModPow(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for r := 1; r < s; r++ {
			x = ModMul(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// PerfectPower returns (b, k, true) if n = b^k for some k ≥ 2. Shor's
// preprocessing handles prime powers classically (order finding cannot
// split p^k for prime p via the gcd trick in all cases, and p is found
// faster by root extraction).
func PerfectPower(n uint64) (uint64, int, bool) {
	if n < 4 {
		return 0, 0, false
	}
	maxK := int(math.Log2(float64(n))) + 1
	for k := 2; k <= maxK; k++ {
		b := integerKthRoot(n, k)
		if b >= 2 && powUint64(b, k) == n {
			return b, k, true
		}
	}
	return 0, 0, false
}

// integerKthRoot returns ⌊n^(1/k)⌋.
func integerKthRoot(n uint64, k int) uint64 {
	if n == 0 {
		return 0
	}
	// Float seed, then adjust.
	b := uint64(math.Pow(float64(n), 1/float64(k)))
	for b > 1 && powSaturating(b, k) > n {
		b--
	}
	for powSaturating(b+1, k) <= n {
		b++
	}
	return b
}

// powSaturating computes b^k, saturating at MaxUint64 on overflow.
func powSaturating(b uint64, k int) uint64 {
	result := uint64(1)
	for i := 0; i < k; i++ {
		if b != 0 && result > math.MaxUint64/b {
			return math.MaxUint64
		}
		result *= b
	}
	return result
}

func powUint64(b uint64, k int) uint64 { return powSaturating(b, k) }

// ClassifyInput categorizes n for Shor preprocessing.
type InputClass int

// Input classes returned by Classify.
const (
	ClassTooSmall   InputClass = iota // n < 4: nothing to factor
	ClassEven                         // factor 2 classically
	ClassPrime                        // no non-trivial factors
	ClassPrimePower                   // b^k: factor by root extraction
	ClassComposite                    // needs order finding
)

// Classify runs the classical preprocessing of Shor's algorithm.
func Classify(n uint64) (InputClass, uint64, uint64) {
	switch {
	case n < 4:
		return ClassTooSmall, 0, 0
	case n%2 == 0:
		return ClassEven, 2, n / 2
	case IsProbablePrime(n):
		return ClassPrime, 0, 0
	default:
		if b, k, ok := PerfectPower(n); ok {
			return ClassPrimePower, b, powUint64(b, k-1)
		}
		return ClassComposite, 0, 0
	}
}
