package xeb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

// supremacyState runs a 3x3 depth-48 supremacy circuit (deep enough to be
// Porter–Thomas distributed) and returns the
// simulator (for its manager) and result.
func supremacyState(t testing.TB, strategy core.Strategy) (*sim.Simulator, *sim.Result) {
	cfg := supremacy.Config{Rows: 3, Cols: 3, Depth: 48, Seed: 3}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	res, err := s.Run(c, sim.Options{Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestXEBIdealSamplesScoreNearOne(t *testing.T) {
	s, res := supremacyState(t, nil)
	rng := rand.New(rand.NewSource(1))
	score, err := Score(s.M, res.Final, res.Final, 9, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Porter–Thomas statistics: variance of the estimator at 4000 shots is
	// a few percent.
	if math.Abs(score-1) > 0.15 {
		t.Errorf("ideal-vs-ideal XEB = %v, want ≈ 1", score)
	}
}

func TestXEBUniformBaselineNearZero(t *testing.T) {
	s, res := supremacyState(t, nil)
	rng := rand.New(rand.NewSource(2))
	score, err := UniformBaseline(s.M, res.Final, 9, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score) > 0.15 {
		t.Errorf("uniform XEB = %v, want ≈ 0", score)
	}
}

func TestXEBTracksApproximationFidelity(t *testing.T) {
	// Samples from an approximated state score ≈ the tracked fidelity
	// against the exact state — the sample-based validation of the paper's
	// fidelity accounting.
	s, exact := supremacyState(t, nil)
	strat := &core.MemoryDriven{Threshold: 64, RoundFidelity: 0.95, Growth: 1.2}
	cfg := supremacy.Config{Rows: 3, Cols: 3, Depth: 48, Seed: 3}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// The approximate run shares the manager: keep the exact final state
	// out of the node pool's reach while it executes.
	approx, err := s.Run(c, sim.Options{Strategy: strat, KeepAlive: []dd.VEdge{exact.Final}})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Rounds) == 0 {
		t.Fatal("approximation did not trigger")
	}
	trueFid := s.M.Fidelity(exact.Final, approx.Final)
	rng := rand.New(rand.NewSource(3))
	score, err := Score(s.M, exact.Final, approx.Final, 9, 6000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// XEB ≈ fidelity only in the chaotic regime; allow generous slack but
	// require the right order of magnitude and ordering.
	if score > 1.2 || score < trueFid-0.35 {
		t.Errorf("approx XEB = %v vs true fidelity %v — not tracking", score, trueFid)
	}
	// And it must clearly separate from the uniform baseline when fidelity
	// is substantial.
	if trueFid > 0.5 && score < 0.2 {
		t.Errorf("XEB %v too close to uniform for fidelity %v", score, trueFid)
	}
}

func TestXEBValidation(t *testing.T) {
	s, res := supremacyState(t, nil)
	if _, err := Linear(s.M, res.Final, 9, nil); err == nil {
		t.Error("empty samples accepted")
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := Score(s.M, res.Final, res.Final, 9, 0, rng); err == nil {
		t.Error("zero shots accepted")
	}
	if _, err := UniformBaseline(s.M, res.Final, 9, -1, rng); err == nil {
		t.Error("negative shots accepted")
	}
}
