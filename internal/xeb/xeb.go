// Package xeb implements linear cross-entropy benchmarking (XEB), the
// fidelity estimator used for the quantum-supremacy circuits the paper
// benchmarks against (Arute et al. 2019 [4]; Markov et al. 2020 [14]).
//
// For a chaotic (Porter–Thomas distributed) ideal state ψ and samples
// x_1..x_k drawn from a test distribution, the linear XEB score
//
//	F_XEB = 2^n · mean_i |⟨x_i|ψ⟩|² − 1
//
// is ≈ 1 when sampling from the ideal distribution, ≈ 0 when sampling
// uniformly, and ≈ F when sampling from a state with fidelity F to the
// ideal. This provides an independent, sample-based check of the paper's
// tracked approximation fidelities on supremacy workloads.
package xeb

import (
	"fmt"
	"math/rand"

	"repro/internal/dd"
)

// Linear scores samples against the ideal n-qubit state.
func Linear(m *dd.Manager, ideal dd.VEdge, n int, samples []uint64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("xeb: no samples")
	}
	dim := float64(uint64(1) << uint(n))
	var sum float64
	for _, x := range samples {
		sum += m.Probability(ideal, x, n)
	}
	mean := sum / float64(len(samples))
	return dim*mean - 1, nil
}

// Score draws shots samples from the test state and computes their linear
// XEB against the ideal state. Both states must live in the same manager.
func Score(m *dd.Manager, ideal, test dd.VEdge, n, shots int, rng *rand.Rand) (float64, error) {
	if shots <= 0 {
		return 0, fmt.Errorf("xeb: shots must be positive")
	}
	samples := make([]uint64, shots)
	for i := range samples {
		samples[i] = m.Sample(test, n, rng)
	}
	return Linear(m, ideal, n, samples)
}

// UniformBaseline scores uniformly random bitstrings against the ideal
// state; for any normalized ideal state its expectation is exactly 0.
func UniformBaseline(m *dd.Manager, ideal dd.VEdge, n, shots int, rng *rand.Rand) (float64, error) {
	if shots <= 0 {
		return 0, fmt.Errorf("xeb: shots must be positive")
	}
	samples := make([]uint64, shots)
	mask := uint64(1)<<uint(n) - 1
	for i := range samples {
		samples[i] = rng.Uint64() & mask
	}
	return Linear(m, ideal, n, samples)
}
