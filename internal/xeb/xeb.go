package xeb

import (
	"fmt"
	"math/rand"

	"repro/internal/dd"
)

// Linear scores samples against the ideal n-qubit state.
func Linear(m *dd.Manager, ideal dd.VEdge, n int, samples []uint64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("xeb: no samples")
	}
	dim := float64(uint64(1) << uint(n))
	var sum float64
	for _, x := range samples {
		sum += m.Probability(ideal, x, n)
	}
	mean := sum / float64(len(samples))
	return dim*mean - 1, nil
}

// Score draws shots samples from the test state and computes their linear
// XEB against the ideal state. Both states must live in the same manager.
func Score(m *dd.Manager, ideal, test dd.VEdge, n, shots int, rng *rand.Rand) (float64, error) {
	if shots <= 0 {
		return 0, fmt.Errorf("xeb: shots must be positive")
	}
	samples := make([]uint64, shots)
	for i := range samples {
		samples[i] = m.Sample(test, n, rng)
	}
	return Linear(m, ideal, n, samples)
}

// UniformBaseline scores uniformly random bitstrings against the ideal
// state; for any normalized ideal state its expectation is exactly 0.
func UniformBaseline(m *dd.Manager, ideal dd.VEdge, n, shots int, rng *rand.Rand) (float64, error) {
	if shots <= 0 {
		return 0, fmt.Errorf("xeb: shots must be positive")
	}
	samples := make([]uint64, shots)
	mask := uint64(1)<<uint(n) - 1
	for i := range samples {
		samples[i] = rng.Uint64() & mask
	}
	return Linear(m, ideal, n, samples)
}
