// Package xeb implements linear cross-entropy benchmarking (XEB), the
// fidelity estimator used for the quantum-supremacy circuits the paper
// benchmarks against (Arute et al. 2019 [4]; Markov et al. 2020 [14]).
//
// For a chaotic (Porter–Thomas distributed) ideal state ψ and samples
// x_1..x_k drawn from a test distribution, the linear XEB score
//
//	F_XEB = 2^n · mean_i |⟨x_i|ψ⟩|² − 1
//
// is ≈ 1 when sampling from the ideal distribution, ≈ 0 when sampling
// uniformly, and ≈ F when sampling from a state with fidelity F to the
// ideal. This provides an independent, sample-based check of the paper's
// tracked approximation fidelities on supremacy workloads.
package xeb
