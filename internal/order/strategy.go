package order

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/dd"
)

// Strategy wraps an inner approximation strategy with a variable-reordering
// policy: the session installs the named static order before the initial
// state is built and, when sifting is enabled, runs dynamic passes at the
// between-gate safe point. The inner strategy (default exact) still decides
// approximation, so reordering composes with exact/memory/fidelity — and
// with any registered strategy — rather than replacing them.
//
// Registered as "reorder"; see Params for the JSON parameters accepted over
// HTTP via strategy_params and in-process via core.NewStrategyByName.
type Strategy struct {
	policy core.ReorderPolicy
	inner  core.Strategy
}

// NewReorder wraps inner (nil = exact) with the given reordering policy.
func NewReorder(policy core.ReorderPolicy, inner core.Strategy) *Strategy {
	if inner == nil {
		inner = core.Exact{}
	}
	return &Strategy{policy: policy, inner: inner}
}

// Name implements core.Strategy.
func (s *Strategy) Name() string {
	static := s.policy.Static
	if static == "" {
		static = "current"
	}
	name := "reorder(" + static
	if s.policy.Sift {
		name += "+sift"
	}
	return name + ")+" + s.inner.Name()
}

// Init implements core.Strategy: it validates the policy and initializes the
// inner strategy.
func (s *Strategy) Init(totalGates int, blocks []int) error {
	if s.policy.Static != "" && !Valid(s.policy.Static) {
		return fmt.Errorf("order: unknown ordering %q (supported: %v)", s.policy.Static, Names())
	}
	if s.policy.SiftThreshold < 0 || s.policy.SiftMaxPasses < 0 || s.policy.SiftMaxVars < 0 {
		return fmt.Errorf("order: sift bounds must be ≥ 0")
	}
	return s.inner.Init(totalGates, blocks)
}

// AfterGate implements core.Strategy by delegating to the inner strategy.
func (s *Strategy) AfterGate(m *dd.Manager, gateIdx, size int, state dd.VEdge) (dd.VEdge, *core.Round, error) {
	return s.inner.AfterGate(m, gateIdx, size, state)
}

// ReorderPolicy implements core.Reorderer.
func (s *Strategy) ReorderPolicy() core.ReorderPolicy { return s.policy }

// Params are the JSON parameters of the "reorder" strategy.
type Params struct {
	// Order is the static ordering installed at session start: "identity"
	// (default), "reversed", or "scored".
	Order string `json:"order,omitempty"`
	// Sift enables dynamic sifting passes; the remaining fields bound them
	// (zero values select the session defaults).
	Sift          bool `json:"sift,omitempty"`
	SiftThreshold int  `json:"sift_threshold,omitempty"`
	SiftMaxPasses int  `json:"sift_max_passes,omitempty"`
	SiftMaxVars   int  `json:"sift_max_vars,omitempty"`
	// Inner selects the wrapped approximation strategy by registry name
	// (default "exact"); InnerParams carries its JSON parameters verbatim.
	Inner       string          `json:"inner,omitempty"`
	InnerParams json.RawMessage `json:"inner_params,omitempty"`
}

func init() {
	err := core.RegisterStrategy("reorder", func(params json.RawMessage) (core.Strategy, error) {
		var p Params
		if len(params) > 0 {
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, err
			}
		}
		if p.Order == "" {
			p.Order = Identity
		}
		if !Valid(p.Order) {
			return nil, fmt.Errorf("order: unknown ordering %q (supported: %v)", p.Order, Names())
		}
		if p.Inner == "reorder" {
			return nil, fmt.Errorf("order: reorder cannot wrap itself")
		}
		inner, err := core.NewStrategyByName(p.Inner, p.InnerParams)
		if err != nil {
			return nil, err
		}
		return NewReorder(core.ReorderPolicy{
			Static:        p.Order,
			Sift:          p.Sift,
			SiftThreshold: p.SiftThreshold,
			SiftMaxPasses: p.SiftMaxPasses,
			SiftMaxVars:   p.SiftMaxVars,
		}, inner), nil
	})
	if err != nil {
		panic(err)
	}
}
