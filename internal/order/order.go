package order

import (
	"fmt"

	"repro/internal/circuit"
)

// Ordering names accepted by Compute and the "reorder" strategy.
const (
	// Identity keeps qubit q at level q.
	Identity = "identity"
	// Reversed places qubit q at level n−1−q.
	Reversed = "reversed"
	// Scored is the gate-locality heuristic: qubits that interact in
	// multi-qubit gates are placed on adjacent levels (Kimura-style static
	// scoring).
	Scored = "scored"
)

// Names returns the supported ordering names, sorted.
func Names() []string { return []string{Identity, Reversed, Scored} }

// Valid reports whether name is a supported ordering.
func Valid(name string) bool {
	switch name {
	case Identity, Reversed, Scored:
		return true
	}
	return false
}

// Compute resolves an ordering name against a circuit, returning the
// qubit→level permutation to install before simulation. Circuits carrying
// permutation gates only admit the identity order (their payloads address DD
// levels directly), so any other request is an error for them.
func Compute(name string, c *circuit.Circuit) ([]int, error) {
	n := c.NumQubits
	switch name {
	case Identity:
		return identity(n), nil
	case Reversed, Scored:
		if HasPermGate(c) {
			return nil, fmt.Errorf("order: circuit %q carries permutation gates, which require the identity order", c.Name)
		}
		if name == Reversed {
			perm := make([]int, n)
			for q := range perm {
				perm[q] = n - 1 - q
			}
			return perm, nil
		}
		return scored(c), nil
	default:
		return nil, fmt.Errorf("order: unknown ordering %q (supported: %v)", name, Names())
	}
}

// HasPermGate reports whether the circuit contains a permutation gate.
func HasPermGate(c *circuit.Circuit) bool {
	for _, g := range c.Gates() {
		if g.Kind == circuit.KindPerm {
			return true
		}
	}
	return false
}

func identity(n int) []int {
	perm := make([]int, n)
	for q := range perm {
		perm[q] = q
	}
	return perm
}

// scored builds the gate-locality ordering: an interaction graph weighted by
// how often qubit pairs appear in the same gate, then a greedy chain
// placement — start from the most-connected qubit and repeatedly append the
// unplaced qubit most connected to the placed set, assigning levels top-down
// so interacting qubits end up adjacent. Deterministic: all ties break on
// the lower qubit index.
func scored(c *circuit.Circuit) []int {
	n := c.NumQubits
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for _, g := range c.Gates() {
		qs := make([]int, 0, 1+len(g.Controls))
		qs = append(qs, g.Target)
		for _, ctl := range g.Controls {
			qs = append(qs, ctl.Qubit)
		}
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				a, b := qs[i], qs[j]
				w[a][b]++
				w[b][a]++
			}
		}
	}
	total := make([]float64, n)
	for q := range w {
		for r := range w[q] {
			total[q] += w[q][r]
		}
	}

	placed := make([]int, 0, n)
	used := make([]bool, n)
	pick := func(score func(q int) float64) int {
		best, bestScore := -1, 0.0
		for q := 0; q < n; q++ {
			if used[q] {
				continue
			}
			s := score(q)
			if best == -1 || s > bestScore {
				best, bestScore = q, s
			}
		}
		return best
	}
	start := pick(func(q int) float64 { return total[q] })
	placed = append(placed, start)
	used[start] = true
	conn := make([]float64, n)
	for len(placed) < n {
		last := placed[len(placed)-1]
		for q := 0; q < n; q++ {
			conn[q] += w[last][q]
		}
		// Prefer connection to the placed set; break ties toward overall
		// activity, then the lower index (via pick's scan order).
		next := pick(func(q int) float64 { return conn[q]*float64(n+1) + total[q]/(total[q]+1) })
		placed = append(placed, next)
		used[next] = true
	}

	perm := make([]int, n)
	for i, q := range placed {
		perm[q] = n - 1 - i
	}
	return perm
}
