// Package order computes variable orderings for decision-diagram simulation
// and exposes them as a composable strategy.
//
// DD size is governed as much by the qubit→level order as by the paper's
// fidelity-driven truncations: the right order can shrink a diagram by
// orders of magnitude (cf. the "Reorder Trick" of Shen et al. and the
// scoring-based static orderings of Kimura et al.), and the two effects
// compound. This package supplies the static side — identity, reversed, and
// a gate-locality "scored" heuristic that places interacting qubits on
// adjacent levels — and the policy plumbing for the dynamic side (sifting,
// executed by the simulation session through dd.Manager.Sift).
//
// The "reorder" registry strategy (see Strategy and Params) makes ordering
// reachable everywhere strategies are: in-process via core.NewStrategyByName
// or NewReorder, over HTTP via the strategy_params field, and through the
// typed client. It wraps an inner strategy, so reordering composes with
// exact, memory-driven, and fidelity-driven approximation.
package order
