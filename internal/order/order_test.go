package order

import (
	"encoding/json"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
)

func pairsCircuit(n int) *circuit.Circuit {
	c := circuit.New(n, "pairs")
	for i := 0; i < n/2; i++ {
		c.H(i)
		c.CX(i, i+n/2)
	}
	return c
}

func isPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, l := range p {
		if l < 0 || l >= len(p) || seen[l] {
			return false
		}
		seen[l] = true
	}
	return true
}

func TestComputeBasics(t *testing.T) {
	c := pairsCircuit(6)
	for _, name := range Names() {
		perm, err := Compute(name, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(perm) != 6 || !isPerm(perm) {
			t.Fatalf("%s: not a permutation: %v", name, perm)
		}
	}
	id, _ := Compute(Identity, c)
	rev, _ := Compute(Reversed, c)
	for q := range id {
		if id[q] != q {
			t.Fatalf("identity[%d] = %d", q, id[q])
		}
		if rev[q] != 5-q {
			t.Fatalf("reversed[%d] = %d", q, rev[q])
		}
	}
	if _, err := Compute("bogus", c); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}

// TestScoredPlacesPartnersAdjacent is the heuristic's core property on the
// pairs workload: each (i, i+n/2) couple must land on adjacent levels.
func TestScoredPlacesPartnersAdjacent(t *testing.T) {
	const n = 8
	perm, err := Compute(Scored, pairsCircuit(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/2; i++ {
		d := perm[i] - perm[i+n/2]
		if d != 1 && d != -1 {
			t.Fatalf("scored order %v: qubits %d and %d are %d levels apart", perm, i, i+n/2, d)
		}
	}
}

func TestScoredDeterministic(t *testing.T) {
	a, _ := Compute(Scored, pairsCircuit(8))
	b, _ := Compute(Scored, pairsCircuit(8))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scored ordering not deterministic: %v vs %v", a, b)
		}
	}
}

func TestPermGateForcesIdentity(t *testing.T) {
	c := circuit.New(3, "perm")
	c.Permutation([]int{1, 0, 3, 2}, 2)
	if !HasPermGate(c) {
		t.Fatal("HasPermGate missed the permutation gate")
	}
	if _, err := Compute(Scored, c); err == nil {
		t.Fatal("scored ordering accepted a permutation-gate circuit")
	}
	if _, err := Compute(Identity, c); err != nil {
		t.Fatalf("identity must stay allowed: %v", err)
	}
}

func TestReorderStrategyRegistry(t *testing.T) {
	st, err := core.NewStrategyByName("reorder", json.RawMessage(
		`{"order":"scored","sift":true,"sift_threshold":512,"inner":"memory","inner_params":{"threshold":1024,"round_fidelity":0.9}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(10, nil); err != nil {
		t.Fatal(err)
	}
	ro, ok := st.(core.Reorderer)
	if !ok {
		t.Fatal("reorder strategy does not implement core.Reorderer")
	}
	pol := ro.ReorderPolicy()
	if pol.Static != Scored || !pol.Sift || pol.SiftThreshold != 512 {
		t.Fatalf("policy = %+v", pol)
	}
	if got := st.Name(); got != "reorder(scored+sift)+memory-driven" {
		t.Fatalf("Name() = %q", got)
	}

	if _, err := core.NewStrategyByName("reorder", json.RawMessage(`{"order":"nope"}`)); err == nil {
		t.Fatal("bad ordering name accepted")
	}
	if _, err := core.NewStrategyByName("reorder", json.RawMessage(`{"inner":"reorder"}`)); err == nil {
		t.Fatal("self-nesting accepted")
	}
	if _, err := core.NewStrategyByName("reorder", json.RawMessage(`{"inner":"memory","inner_params":{"threshold":-3}}`)); err != nil {
		t.Fatalf("inner construction should defer validation to Init: %v", err)
	}
}

func TestReorderStrategyDefaults(t *testing.T) {
	st, err := core.NewStrategyByName("reorder", nil)
	if err != nil {
		t.Fatal(err)
	}
	pol := st.(core.Reorderer).ReorderPolicy()
	if pol.Static != Identity || pol.Sift {
		t.Fatalf("default policy = %+v", pol)
	}
	if err := st.Init(1, nil); err != nil {
		t.Fatal(err)
	}
}
