package sim

import (
	"testing"

	"repro/internal/gen"
)

// TestWarmRunsAllocateFarLessThanCold proves the arena story at the
// simulator level: a Reset simulator replays a job out of retained memory
// (node pools, compute-cache backing arrays, gate-DD scratch), so warm
// steady-state runs allocate a small fraction of what a cold simulator
// pays building all of that from scratch.
func TestWarmRunsAllocateFarLessThanCold(t *testing.T) {
	c := gen.RandomCliffordT(8, 150, 1)

	cold := testing.AllocsPerRun(5, func() {
		if _, err := New().Run(c, Options{}); err != nil {
			t.Fatal(err)
		}
	})

	s := New()
	if _, err := s.Run(c, Options{}); err != nil { // prime pools and caches
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(5, func() {
		s.Reset()
		if _, err := s.Run(c, Options{}); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("allocs/run: cold=%.0f warm=%.0f (%.1fx)", cold, warm, cold/warm)
	if warm*5 > cold {
		t.Errorf("warm runs allocate %.0f/run, want <1/5 of cold (%.0f/run)", warm, cold)
	}
}
