package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/density"
)

// NoiseModel configures a per-qubit, per-gate noise channel by name. It is
// the single noise schema shared by both backends — and therefore by serve's
// `noise`/`noise_params` request fields:
//
//   - the density backend applies the channel exactly as a superoperator
//     ρ → Σ_k K_k ρ K_k† after every gate, on every qubit the gate touched;
//   - the statevector backend simulates one Monte-Carlo trajectory, sampling
//     a single Kraus branch per touched qubit (for mixed-unitary channels
//     this reduces to the classic random-Pauli injection; for amplitude
//     damping it is the quantum-jump method with state-dependent branch
//     probabilities).
//
// A single trajectory stays a pure state — exactly the regime where DD
// simulation (and the paper's approximation on top of it) applies; averaging
// over trajectories converges to the density-matrix answer, which the
// differential tests assert.
type NoiseModel struct {
	// Kind names the channel (density.Depolarizing, density.AmplitudeDamping,
	// density.Dephasing, density.BitFlip, density.PhaseFlip). Empty defaults
	// to depolarizing, the historical behavior of this model.
	Kind density.Kind
	// P is the channel strength in [0, 1]: the per-qubit, per-gate error
	// probability for the mixed-unitary kinds, the damping rate γ for
	// amplitude damping.
	P float64
	// Seed makes trajectory branch sampling deterministic. The density
	// backend ignores it (exact evolution has no randomness).
	Seed int64
}

// Channel materializes the model's Kraus channel, applying the depolarizing
// default and validating the strength.
func (n NoiseModel) Channel() (density.Channel, error) {
	kind := n.Kind
	if kind == "" {
		kind = density.Depolarizing
	}
	return density.New(kind, n.P)
}

// ParseNoise builds a NoiseModel from the wire schema used by serve: a kind
// name plus a params map holding "p" (the channel strength). Unknown kinds
// and unknown parameter keys are errors, so request typos fail loudly
// instead of silently simulating noiselessly.
func ParseNoise(kind string, params map[string]float64) (NoiseModel, error) {
	n := NoiseModel{Kind: density.Kind(kind)}
	known := false
	for _, k := range density.Kinds() {
		if n.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return NoiseModel{}, fmt.Errorf("sim: unknown noise kind %q (known: %v)", kind, density.Kinds())
	}
	for key, v := range params {
		switch key {
		case "p", "gamma":
			n.P = v
		case "seed":
			n.Seed = int64(v)
		default:
			return NoiseModel{}, fmt.Errorf("sim: unknown noise parameter %q (known: p, gamma, seed)", key)
		}
	}
	if _, err := n.Channel(); err != nil {
		return NoiseModel{}, err
	}
	return n, nil
}

// RunTrajectory simulates one noisy trajectory of the circuit: the given
// options run on the statevector backend with stochastic Kraus-branch
// sampling after every gate. It returns the trajectory result and the number
// of non-identity branches taken (quantum jumps).
func (s *Simulator) RunTrajectory(c *circuit.Circuit, opts Options, noise NoiseModel) (*Result, int, error) {
	if _, err := noise.Channel(); err != nil {
		return nil, 0, err
	}
	if noise.P == 0 {
		res, err := s.Run(c, opts)
		return res, 0, err
	}
	opts.Backend = BackendStatevector
	opts.Noise = &noise
	res, err := s.Run(c, opts)
	if err != nil {
		return nil, 0, err
	}
	return res, res.ChannelApplications, nil
}

// TrajectoryFidelity estimates the channel fidelity at the given noise level
// by averaging |⟨ideal|trajectory⟩|² over `trajectories` runs. The ideal
// state is simulated exactly once in the same manager. The density backend
// computes the same quantity — ⟨ideal|ρ|ideal⟩ — exactly in a single run;
// this Monte-Carlo estimator converges to it at the usual 1/√N rate.
func TrajectoryFidelity(c *circuit.Circuit, noise NoiseModel, trajectories int) (float64, error) {
	if trajectories < 1 {
		return 0, fmt.Errorf("sim: need at least one trajectory")
	}
	s := New()
	ideal, err := s.Run(c, Options{})
	if err != nil {
		return 0, err
	}
	var sum float64
	for k := 0; k < trajectories; k++ {
		tn := noise
		tn.Seed = noise.Seed + int64(k)*7919
		// Trajectories share the ideal run's manager: the ideal final state
		// must survive each trajectory's node-pool sweeps.
		res, _, err := s.RunTrajectory(c, Options{KeepAlive: []dd.VEdge{ideal.Final}}, tn)
		if err != nil {
			return 0, err
		}
		sum += s.M.Fidelity(ideal.Final, res.Final)
	}
	return sum / float64(trajectories), nil
}

// gateTouches lists the qubits a gate acts on — the qubits that suffer noise
// after it under either backend.
func gateTouches(g circuit.Gate) []int {
	var qs []int
	switch g.Kind {
	case circuit.KindPerm:
		for q := 0; q < g.PermWidth; q++ {
			qs = append(qs, q)
		}
	case circuit.KindMeasure, circuit.KindReset:
		return nil // measurement is classical readout; no gate noise
	default:
		qs = append(qs, g.Target)
	}
	for _, ctl := range g.Controls {
		qs = append(qs, ctl.Qubit)
	}
	return qs
}
