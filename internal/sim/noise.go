package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// NoiseModel configures Monte-Carlo Pauli noise for trajectory simulation.
// After every gate, each qubit the gate touched suffers X, Y or Z with
// probability Depolarizing/3 each. A single trajectory stays a pure state —
// exactly the regime where DD simulation (and the paper's approximation on
// top of it) applies; averaging over trajectories emulates the depolarizing
// channel, connecting the simulator to the noisy-hardware fidelities the
// paper cites (~1 % for the supremacy experiments).
type NoiseModel struct {
	// Depolarizing is the per-qubit, per-gate error probability in [0, 1).
	Depolarizing float64
	// Seed makes the trajectory deterministic.
	Seed int64
}

// RunTrajectory simulates one noisy trajectory of the circuit: the given
// options run as usual, with random Pauli errors injected after every gate.
// It returns the trajectory result and the number of injected errors.
func (s *Simulator) RunTrajectory(c *circuit.Circuit, opts Options, noise NoiseModel) (*Result, int, error) {
	if noise.Depolarizing < 0 || noise.Depolarizing >= 1 {
		return nil, 0, fmt.Errorf("sim: depolarizing probability %v outside [0, 1)", noise.Depolarizing)
	}
	if noise.Depolarizing == 0 {
		res, err := s.Run(c, opts)
		return res, 0, err
	}
	rng := rand.New(rand.NewSource(noise.Seed))
	noisy := circuit.New(c.NumQubits, c.Name+"_noisy")
	errs := 0
	paulis := []string{"x", "y", "z"}
	for _, g := range c.Gates() {
		noisy.Append(g)
		for _, q := range gateTouches(g) {
			if rng.Float64() < noise.Depolarizing {
				noisy.Apply(paulis[rng.Intn(3)], nil, q)
				errs++
			}
		}
	}
	res, err := s.Run(noisy, opts)
	return res, errs, err
}

// TrajectoryFidelity estimates the channel fidelity at the given noise level
// by averaging |⟨ideal|trajectory⟩|² over `trajectories` runs. The ideal
// state is simulated exactly once in the same manager.
func TrajectoryFidelity(c *circuit.Circuit, noise NoiseModel, trajectories int) (float64, error) {
	if trajectories < 1 {
		return 0, fmt.Errorf("sim: need at least one trajectory")
	}
	s := New()
	ideal, err := s.Run(c, Options{})
	if err != nil {
		return 0, err
	}
	var sum float64
	for k := 0; k < trajectories; k++ {
		tn := noise
		tn.Seed = noise.Seed + int64(k)*7919
		// Trajectories share the ideal run's manager: the ideal final state
		// must survive each trajectory's node-pool sweeps.
		res, _, err := s.RunTrajectory(c, Options{KeepAlive: []dd.VEdge{ideal.Final}}, tn)
		if err != nil {
			return 0, err
		}
		sum += s.M.Fidelity(ideal.Final, res.Final)
	}
	return sum / float64(trajectories), nil
}

func gateTouches(g circuit.Gate) []int {
	var qs []int
	switch g.Kind {
	case circuit.KindPerm:
		for q := 0; q < g.PermWidth; q++ {
			qs = append(qs, q)
		}
	case circuit.KindMeasure, circuit.KindReset:
		return nil // measurement is classical readout; no gate noise
	default:
		qs = append(qs, g.Target)
	}
	for _, ctl := range g.Controls {
		qs = append(qs, ctl.Qubit)
	}
	return qs
}
