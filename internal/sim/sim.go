package sim

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
)

// Options configures one simulation run.
type Options struct {
	// Strategy decides when to approximate. nil means exact simulation.
	Strategy core.Strategy
	// InitialState selects the starting basis state |InitialState⟩.
	InitialState uint64
	// CollectSizeHistory records the DD size after every gate (costs memory
	// but no extra time; sizes are computed anyway).
	CollectSizeHistory bool
	// CleanupHighWater is the live-node pool occupancy (across both node
	// kinds) that triggers a mark-sweep Cleanup, returning dead nodes to
	// the manager's pools for recycling; 0 selects a sensible default. The
	// threshold adapts upward when a sweep leaves the pool mostly live.
	CleanupHighWater int
	// Deadline aborts the run with ErrDeadlineExceeded once exceeded
	// (checked between gates), mirroring the paper's 3 h timeout column.
	// The zero value means no deadline.
	Deadline time.Time
	// Context, when non-nil, cancels the run between gates once done; the
	// returned error wraps the context's error. This is how the batch
	// engine aborts in-flight simulations.
	Context context.Context
	// MeasurementSeed seeds the RNG used by mid-circuit measurement and
	// reset gates (deterministic per seed).
	MeasurementSeed int64
	// KeepAlive lists state edges from earlier runs on the same manager
	// that must survive this run's Cleanup sweeps (the node pool recycles
	// anything not reachable from a root). RunAndCompare and the Table I
	// true-fidelity column use this to keep the exact reference state valid
	// while the approximate run executes.
	KeepAlive []dd.VEdge
	// Observer, when non-nil, receives lifecycle events (per-gate sizes,
	// approximation rounds, cleanups, completion) as the run executes. It
	// is invoked on the simulating goroutine between gates; nil selects
	// the no-op observer.
	Observer core.Observer
}

// Measurement records one mid-circuit measurement outcome.
type Measurement struct {
	GateIndex int
	Qubit     int
	Outcome   int
}

// ErrDeadlineExceeded is returned (wrapped) when a run hits Options.Deadline.
var ErrDeadlineExceeded = errors.New("sim: deadline exceeded")

// Result reports a finished simulation.
type Result struct {
	// Manager owns the final state; callers use it to sample, compute
	// amplitudes, or compare fidelities.
	Manager *dd.Manager
	// Final is the final state DD.
	Final dd.VEdge
	// NumQubits of the simulated register.
	NumQubits int
	// GateCount applied.
	GateCount int
	// MaxDDSize is the maximum node count of the state DD observed after
	// any gate (the paper's "Max. DD Size" column).
	MaxDDSize int
	// FinalDDSize is the node count of the final state.
	FinalDDSize int
	// SizeHistory holds the per-gate DD sizes when requested.
	SizeHistory []int
	// Rounds lists the approximation rounds that modified the state.
	Rounds []core.Round
	// EstimatedFidelity is the tracked end-to-end fidelity versus the exact
	// state: the product of the per-round measured fidelities (Section V).
	// Lemma 1 makes the product exact for back-to-back truncations; with
	// unitaries between rounds it is the paper's tracked estimate and
	// empirically tight (see the sim tests, which bound the deviation).
	EstimatedFidelity float64
	// FidelityBound is the product of the per-round target fidelities — the
	// quantity the fidelity-driven strategy budgets with ⌊log_fround
	// f_final⌋ so that it stays above the requested f_final.
	FidelityBound float64
	// Runtime is the wall-clock simulation time.
	Runtime time.Duration
	// StrategyName identifies the approximation strategy used.
	StrategyName string
	// Cleanups counts occupancy-triggered mark-sweep node-pool collections
	// (one OnCleanup event each). Sifting passes end in their own sweep,
	// reported via OnReorder and included in DDStats.Cleanups only.
	Cleanups int
	// InitialOrder and FinalOrder record the qubit→level variable order the
	// run started and ended under (nil when no reordering strategy was
	// active, i.e. the identity order throughout). They differ only when
	// dynamic sifting passes ran.
	InitialOrder []int
	FinalOrder   []int
	// SiftPasses and SiftSwaps count dynamic reordering passes and the
	// adjacent-level swaps they performed.
	SiftPasses int
	SiftSwaps  int
	// Measurements lists mid-circuit measurement outcomes in gate order.
	Measurements []Measurement
	// DDStats snapshots the manager's memory-system counters (unique-table
	// sizes, node pool traffic, per-cache hits/misses/evictions) at the end
	// of the run. With a shared manager the counters span its lifetime, not
	// just this run.
	DDStats dd.Stats
	// WeightTable reports complex-weight-table pressure over this run, so
	// long sweeps can spot unbounded interning growth.
	WeightTable WeightTableStats
}

// WeightTableStats describes cnum.Table pressure during one simulation run.
type WeightTableStats struct {
	// Peak is the table's lifetime high-water interned-value count as of
	// the end of the run (per-run when the manager is fresh).
	Peak int
	// Lookups and Hits count table probes during this run only.
	Lookups, Hits int64
}

// HitRatio returns Hits/Lookups, or 0 when the table was never probed.
func (w WeightTableStats) HitRatio() float64 {
	if w.Lookups == 0 {
		return 0
	}
	return float64(w.Hits) / float64(w.Lookups)
}

// Simulator runs circuits on a dedicated DD manager. A simulator can run
// several circuits in sequence; states from different runs share the manager
// and may be compared with Fidelity.
type Simulator struct {
	M *dd.Manager
}

// New returns a Simulator with a fresh manager.
func New() *Simulator { return &Simulator{M: dd.New()} }

// Recycle sweeps the manager's node pools with no roots, returning every
// node built by previous runs to the free lists for reuse. Edges from
// earlier Results (including Result.Final) become invalid; the batch engine
// calls this between jobs when managers are reused.
func (s *Simulator) Recycle() { s.M.Cleanup(nil, nil) }

// Run simulates the circuit under the given options. It is a thin loop over
// a Session — results are identical to stepping a session to completion —
// kept allocation-neutral by holding the session on the stack.
func (s *Simulator) Run(c *circuit.Circuit, opts Options) (*Result, error) {
	var ses Session
	if err := ses.init(s, c, opts); err != nil {
		return nil, err
	}
	return ses.Finish()
}

// gateDD builds (or fetches) the operation DD for a gate.
func (s *Simulator) gateDD(g circuit.Gate, n int, cache map[string]dd.MEdge) (dd.MEdge, error) {
	switch g.Kind {
	case circuit.KindUnitary:
		sig := gateSignature(g)
		if e, ok := cache[sig]; ok {
			return e, nil
		}
		u, err := g.Matrix()
		if err != nil {
			return dd.MEdge{}, err
		}
		e := s.M.MakeGateDD(n, u, g.Target, g.Controls...)
		cache[sig] = e
		return e, nil
	case circuit.KindPerm:
		if !s.M.OrderIsIdentity() {
			return dd.MEdge{}, fmt.Errorf("permutation gates require the identity variable order")
		}
		base, err := s.M.MakePermutationDD(g.Perm)
		if err != nil {
			return dd.MEdge{}, err
		}
		return s.M.ExtendMatrix(base, g.PermWidth, n, g.Controls...), nil
	default:
		return dd.MEdge{}, fmt.Errorf("unknown gate kind %d", g.Kind)
	}
}

func gateSignature(g circuit.Gate) string {
	var b strings.Builder
	b.WriteString(g.Name)
	for _, p := range g.Params {
		b.WriteByte('(')
		b.WriteString(strconv.FormatFloat(p, 'g', -1, 64))
	}
	b.WriteByte('@')
	b.WriteString(strconv.Itoa(g.Target))
	for _, c := range g.Controls {
		if c.Positive {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(c.Qubit))
	}
	return b.String()
}
