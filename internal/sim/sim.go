package sim

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/density"
)

// Options configures one simulation run.
type Options struct {
	// Strategy decides when to approximate. nil means exact simulation.
	Strategy core.Strategy
	// Backend selects the state representation: BackendStatevector (the
	// default, also chosen by the empty string) evolves a pure state on a
	// vector DD; BackendDensity evolves a density matrix on a matrix DD,
	// which applies Noise exactly but requires exact simulation (no
	// approximation strategy, no reordering).
	Backend Backend
	// Noise, when non-nil, applies the named channel to every qubit each
	// gate touches: exactly (as a superoperator) on the density backend,
	// as one sampled Kraus branch per application (a Monte-Carlo
	// trajectory) on the statevector backend. nil simulates noiselessly.
	Noise *NoiseModel
	// InitialState selects the starting basis state |InitialState⟩.
	InitialState uint64
	// CollectSizeHistory records the DD size after every gate (costs memory
	// but no extra time; sizes are computed anyway).
	CollectSizeHistory bool
	// CleanupHighWater is the live-node pool occupancy (across both node
	// kinds) that triggers a mark-sweep Cleanup, returning dead nodes to
	// the manager's pools for recycling; 0 selects a sensible default. The
	// threshold adapts upward when a sweep leaves the pool mostly live.
	CleanupHighWater int
	// Deadline aborts the run with ErrDeadlineExceeded once exceeded
	// (checked between gates), mirroring the paper's 3 h timeout column.
	// The zero value means no deadline.
	Deadline time.Time
	// Context, when non-nil, cancels the run between gates once done; the
	// returned error wraps the context's error. This is how the batch
	// engine aborts in-flight simulations.
	Context context.Context
	// MeasurementSeed seeds the RNG used by mid-circuit measurement and
	// reset gates (deterministic per seed).
	MeasurementSeed int64
	// KeepAlive lists state edges from earlier runs on the same manager
	// that must survive this run's Cleanup sweeps (the node pool recycles
	// anything not reachable from a root). RunAndCompare and the Table I
	// true-fidelity column use this to keep the exact reference state valid
	// while the approximate run executes.
	KeepAlive []dd.VEdge
	// Observer, when non-nil, receives lifecycle events (per-gate sizes,
	// approximation rounds, cleanups, completion) as the run executes. It
	// is invoked on the simulating goroutine between gates; nil selects
	// the no-op observer.
	Observer core.Observer
}

// Measurement records one mid-circuit measurement outcome.
type Measurement struct {
	GateIndex int
	Qubit     int
	Outcome   int
}

// ErrDeadlineExceeded is returned (wrapped) when a run hits Options.Deadline.
var ErrDeadlineExceeded = errors.New("sim: deadline exceeded")

// Result reports a finished simulation.
type Result struct {
	// Manager owns the final state; callers use it to sample, compute
	// amplitudes, or compare fidelities.
	Manager *dd.Manager
	// Final is the final state DD (statevector backend; the zero value on
	// the density backend, where Density holds the final state).
	Final dd.VEdge
	// Backend is the representation the run executed under.
	Backend Backend
	// Noise echoes the noise model the run was configured with (nil for a
	// noiseless run).
	Noise *NoiseModel
	// Density is the final density matrix (density backend only). Like
	// Final, it is owned by Manager and stays valid only until the next
	// run on the same manager recycles its nodes.
	Density *density.State
	// Purity is Tr ρ² of the final density matrix (density backend only;
	// 1 for a pure state, 2⁻ⁿ for the maximally mixed state).
	Purity float64
	// ChannelApplications counts noise applications: on the density
	// backend every exact superoperator application (touched qubits ×
	// gates), on the statevector backend only the sampled non-identity
	// Kraus branches (quantum jumps).
	ChannelApplications int
	// NumQubits of the simulated register.
	NumQubits int
	// GateCount applied.
	GateCount int
	// MaxDDSize is the maximum node count of the state DD observed after
	// any gate (the paper's "Max. DD Size" column).
	MaxDDSize int
	// FinalDDSize is the node count of the final state.
	FinalDDSize int
	// SizeHistory holds the per-gate DD sizes when requested.
	SizeHistory []int
	// Rounds lists the approximation rounds that modified the state.
	Rounds []core.Round
	// EstimatedFidelity is the tracked end-to-end fidelity versus the exact
	// state: the product of the per-round measured fidelities (Section V).
	// Lemma 1 makes the product exact for back-to-back truncations; with
	// unitaries between rounds it is the paper's tracked estimate and
	// empirically tight (see the sim tests, which bound the deviation).
	EstimatedFidelity float64
	// FidelityBound is the product of the per-round target fidelities — the
	// quantity the fidelity-driven strategy budgets with ⌊log_fround
	// f_final⌋ so that it stays above the requested f_final.
	FidelityBound float64
	// Runtime is the wall-clock simulation time.
	Runtime time.Duration
	// StrategyName identifies the approximation strategy used.
	StrategyName string
	// Cleanups counts occupancy-triggered mark-sweep node-pool collections
	// (one OnCleanup event each). Sifting passes end in their own sweep,
	// reported via OnReorder and included in DDStats.Cleanups only.
	Cleanups int
	// InitialOrder and FinalOrder record the qubit→level variable order the
	// run started and ended under (nil when no reordering strategy was
	// active, i.e. the identity order throughout). They differ only when
	// dynamic sifting passes ran.
	InitialOrder []int
	FinalOrder   []int
	// SiftPasses and SiftSwaps count dynamic reordering passes and the
	// adjacent-level swaps they performed.
	SiftPasses int
	SiftSwaps  int
	// Measurements lists mid-circuit measurement outcomes in gate order.
	Measurements []Measurement
	// DDStats snapshots the manager's memory-system counters (unique-table
	// sizes, node pool traffic, per-cache hits/misses/evictions) at the end
	// of the run. With a shared manager the counters span its lifetime, not
	// just this run.
	DDStats dd.Stats
	// WeightTable reports complex-weight-table pressure over this run, so
	// long sweeps can spot unbounded interning growth.
	WeightTable WeightTableStats
}

// WeightTableStats describes cnum.Table pressure during one simulation run.
type WeightTableStats struct {
	// Peak is the table's lifetime high-water interned-value count as of
	// the end of the run (per-run when the manager is fresh).
	Peak int
	// Lookups and Hits count table probes during this run only.
	Lookups, Hits int64
}

// HitRatio returns Hits/Lookups, or 0 when the table was never probed.
func (w WeightTableStats) HitRatio() float64 {
	if w.Lookups == 0 {
		return 0
	}
	return float64(w.Hits) / float64(w.Lookups)
}

// Simulator runs circuits on a dedicated DD manager. A simulator can run
// several circuits in sequence; states from different runs share the manager
// and may be compared with Fidelity.
type Simulator struct {
	M *dd.Manager

	// Gate-DD cache. sigSlots maps gate signatures to slots and survives
	// Reset — the signature strings are allocated once per distinct gate
	// over the simulator's lifetime, not once per job. gateDDs holds the
	// per-epoch operation DDs (an edge with a nil node is unbuilt);
	// invalidation (session start/end, Reset, reorder passes) zeroes the
	// slice without touching the map, so warm jobs rebuild gate DDs out of
	// pooled nodes with zero cache-key churn. Sessions on one simulator are
	// sequential by contract, so sharing the cache is safe.
	sigSlots map[string]int
	gateDDs  []dd.MEdge
	// sigBuf is the reusable gate-signature buffer; slot lookups go through
	// sigSlots[string(sigBuf)] so a hit allocates nothing.
	sigBuf []byte
	// mRoots is the reusable mark-phase root buffer for mid-run Cleanup.
	mRoots []dd.MEdge
}

// New returns a Simulator with a fresh manager.
func New() *Simulator { return &Simulator{M: dd.New()} }

// Recycle sweeps the manager's node pools with no roots, returning every
// node built by previous runs to the free lists for reuse. Edges from
// earlier Results (including Result.Final) become invalid; Reset is the
// stronger variant that also restores bit-level reproducibility.
func (s *Simulator) Recycle() { s.M.Cleanup(nil, nil) }

// Reset restores the simulator to a logically fresh state while keeping its
// accumulated memory (node pools, cache backings, interned-weight arena) for
// reuse: the next run behaves bit-identically to one on a brand-new
// Simulator, but allocates almost nothing. Edges from earlier Results become
// invalid. The batch engine calls this between jobs when managers are
// reused.
func (s *Simulator) Reset() {
	s.M.Reset()
	s.clearGateCache()
}

// clearGateCache invalidates every cached operation DD while keeping the
// signature-to-slot map (and its interned key strings) intact.
func (s *Simulator) clearGateCache() {
	clear(s.gateDDs) // zero the elements; slots and capacity survive
}

// Run simulates the circuit under the given options. It is a thin loop over
// a Session — results are identical to stepping a session to completion —
// kept allocation-neutral by holding the session on the stack.
func (s *Simulator) Run(c *circuit.Circuit, opts Options) (*Result, error) {
	var ses Session
	if err := ses.init(s, c, opts); err != nil {
		return nil, err
	}
	return ses.Finish()
}

// gateDD builds (or fetches) the operation DD for a gate.
func (s *Simulator) gateDD(g circuit.Gate, n int) (dd.MEdge, error) {
	switch g.Kind {
	case circuit.KindUnitary:
		s.sigBuf = appendGateSignature(s.sigBuf[:0], g)
		slot, ok := s.sigSlots[string(s.sigBuf)]
		if !ok {
			if s.sigSlots == nil {
				s.sigSlots = make(map[string]int, 32)
			}
			slot = len(s.gateDDs)
			s.sigSlots[string(s.sigBuf)] = slot
			s.gateDDs = append(s.gateDDs, dd.MEdge{})
		}
		if e := s.gateDDs[slot]; e.N != nil {
			return e, nil
		}
		u, err := g.Matrix()
		if err != nil {
			return dd.MEdge{}, err
		}
		e := s.M.MakeGateDD(n, u, g.Target, g.Controls...)
		s.gateDDs[slot] = e
		return e, nil
	case circuit.KindPerm:
		if !s.M.OrderIsIdentity() {
			return dd.MEdge{}, fmt.Errorf("permutation gates require the identity variable order")
		}
		base, err := s.M.MakePermutationDD(g.Perm)
		if err != nil {
			return dd.MEdge{}, err
		}
		return s.M.ExtendMatrix(base, g.PermWidth, n, g.Controls...), nil
	default:
		return dd.MEdge{}, fmt.Errorf("unknown gate kind %d", g.Kind)
	}
}

// appendGateSignature appends the gate's cache key to buf. Callers look the
// key up via cache[string(buf)], which the compiler recognizes as a
// no-allocation map access — so a cache hit costs zero allocations and only
// a miss materializes the string (as the stored key).
func appendGateSignature(buf []byte, g circuit.Gate) []byte {
	buf = append(buf, g.Name...)
	for _, p := range g.Params {
		buf = append(buf, '(')
		buf = strconv.AppendFloat(buf, p, 'g', -1, 64)
	}
	buf = append(buf, '@')
	buf = strconv.AppendInt(buf, int64(g.Target), 10)
	for _, c := range g.Controls {
		if c.Positive {
			buf = append(buf, '+')
		} else {
			buf = append(buf, '-')
		}
		buf = strconv.AppendInt(buf, int64(c.Qubit), 10)
	}
	return buf
}
