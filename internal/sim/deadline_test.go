package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestDeadlineExceededIsTyped(t *testing.T) {
	s := New()
	_, err := s.Run(gen.QFT(8), Options{Deadline: time.Now().Add(-time.Second)})
	if err == nil {
		t.Fatal("expired deadline accepted")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("error %v does not wrap ErrDeadlineExceeded", err)
	}
}

func TestCanceledContextAbortsRun(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancelCause(context.Background())
	boom := errors.New("boom")
	cancel(boom)
	_, err := s.Run(gen.QFT(8), Options{Context: ctx})
	if err == nil {
		t.Fatal("canceled context accepted")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the cancellation cause", err)
	}
}

func TestLiveContextDoesNotInterfere(t *testing.T) {
	s := New()
	if _, err := s.Run(gen.QFT(6), Options{Context: context.Background()}); err != nil {
		t.Fatalf("live context rejected run: %v", err)
	}
}

func TestNoDeadlineMeansNoLimit(t *testing.T) {
	s := New()
	if _, err := s.Run(gen.QFT(6), Options{}); err != nil {
		t.Fatalf("zero deadline rejected run: %v", err)
	}
}

func TestSizeHistoryMatchesGateCount(t *testing.T) {
	c := gen.GHZ(5)
	s := New()
	res, err := s.Run(c, Options{CollectSizeHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SizeHistory) != c.Len() {
		t.Fatalf("history length %d, want %d", len(res.SizeHistory), c.Len())
	}
	// GHZ sizes grow monotonically by construction of the ladder.
	for i := 1; i < len(res.SizeHistory); i++ {
		if res.SizeHistory[i] < res.SizeHistory[i-1] {
			t.Errorf("GHZ size history not monotone: %v", res.SizeHistory)
			break
		}
	}
	if res.MaxDDSize != res.SizeHistory[len(res.SizeHistory)-1] {
		t.Errorf("max %d != last history entry %d", res.MaxDDSize, res.SizeHistory[len(res.SizeHistory)-1])
	}
}
