package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkSessionOverhead proves the Session refactor is free: Run (now a
// thin loop over a stack-held Session) against explicit stepping, on the same
// workload, with allocation counts reported. CI archives both lines in
// BENCH_dd.json so the time and allocs/op trajectories are tracked PR over
// PR; Run must stay within noise of the explicit session loop and of the
// pre-Session numbers.
func BenchmarkSessionOverhead(b *testing.B) {
	circ := gen.QFT(12)
	newStrategy := func() core.Strategy {
		return &core.MemoryDriven{Threshold: 1 << 10, RoundFidelity: 0.99, Growth: 1.05}
	}
	b.Run("run", func(b *testing.B) {
		b.ReportAllocs()
		s := New()
		for i := 0; i < b.N; i++ {
			s.Recycle()
			if _, err := s.Run(circ, Options{Strategy: newStrategy()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session_steps", func(b *testing.B) {
		b.ReportAllocs()
		s := New()
		for i := 0; i < b.N; i++ {
			s.Recycle()
			ses, err := s.NewSession(circ, Options{Strategy: newStrategy()})
			if err != nil {
				b.Fatal(err)
			}
			for {
				if err := ses.Step(); err == ErrSessionDone {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ses.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("run_observed", func(b *testing.B) {
		// The no-op observer's cost on the hot path.
		b.ReportAllocs()
		s := New()
		for i := 0; i < b.N; i++ {
			s.Recycle()
			if _, err := s.Run(circ, Options{Strategy: newStrategy(), Observer: core.NopObserver{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
