package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
)

// BenchmarkSessionOverhead proves the Session refactor is free: Run (now a
// thin loop over a stack-held Session) against explicit stepping, on the same
// workload, with allocation counts reported. CI archives both lines in
// BENCH_dd.json so the time and allocs/op trajectories are tracked PR over
// PR; Run must stay within noise of the explicit session loop and of the
// pre-Session numbers.
func BenchmarkSessionOverhead(b *testing.B) {
	circ := gen.QFT(12)
	newStrategy := func() core.Strategy {
		return &core.MemoryDriven{Threshold: 1 << 10, RoundFidelity: 0.99, Growth: 1.05}
	}
	b.Run("run", func(b *testing.B) {
		b.ReportAllocs()
		s := New()
		for i := 0; i < b.N; i++ {
			s.Recycle()
			if _, err := s.Run(circ, Options{Strategy: newStrategy()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session_steps", func(b *testing.B) {
		b.ReportAllocs()
		s := New()
		for i := 0; i < b.N; i++ {
			s.Recycle()
			ses, err := s.NewSession(circ, Options{Strategy: newStrategy()})
			if err != nil {
				b.Fatal(err)
			}
			for {
				if err := ses.Step(); err == ErrSessionDone {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ses.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("run_observed", func(b *testing.B) {
		// The no-op observer's cost on the hot path.
		b.ReportAllocs()
		s := New()
		for i := 0; i < b.N; i++ {
			s.Recycle()
			if _, err := s.Run(circ, Options{Strategy: newStrategy(), Observer: core.NopObserver{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSessionOrdering runs the entangled-pairs workload (qubit i
// entangled with qubit i+n/2 — exponential in n/2 under the identity order,
// linear with partners adjacent) under each static ordering, reporting the
// peak state-DD node count as the peak_nodes metric. CI's bench-check gate
// asserts scored stays below identity, pinning the reordering win PR over
// PR alongside the ns/op trajectories.
func BenchmarkSessionOrdering(b *testing.B) {
	const n = 16
	circ := circuit.New(n, "pairs")
	for i := 0; i < n/2; i++ {
		circ.H(i)
		circ.CX(i, i+n/2)
	}
	for _, mode := range []string{"identity", "scored"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			params := json.RawMessage(`{"order":"` + mode + `"}`)
			peak := 0
			s := New()
			for i := 0; i < b.N; i++ {
				s.Recycle()
				st, err := core.NewStrategyByName("reorder", params)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(circ, Options{Strategy: st})
				if err != nil {
					b.Fatal(err)
				}
				peak = res.MaxDDSize
			}
			b.ReportMetric(float64(peak), "peak_nodes")
		})
	}
}
