package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/density"
	"repro/internal/order"
)

// Session errors.
var (
	// ErrSessionDone is returned by Step/StepN/Seek once every gate has
	// been applied (or after Finish); the session still holds its result.
	ErrSessionDone = errors.New("sim: session complete")
	// ErrSessionAborted is returned by every session method after Abort.
	ErrSessionAborted = errors.New("sim: session aborted")
)

// Session is a resumable, gate-level simulation of one circuit: the unit the
// whole simulator is built around. Run is a thin loop over a Session, and the
// stepping API (Step, StepN, Seek) lets callers observe and steer a
// simulation in flight — inspect the state between gates, drive custom
// approximation policy from outside, or abandon a run early.
//
// A session is single-goroutine: it borrows its Simulator's DD manager and
// must not be interleaved with other runs on the same manager (states from
// earlier runs survive only if listed in Options.KeepAlive). Obtain one with
// Simulator.NewSession or the package-level NewSession, then either call
// Finish to run to completion or step explicitly. After a mid-run error the
// session is dead: every method returns the same sticky error.
type Session struct {
	sim      *Simulator
	c        *circuit.Circuit
	opts     Options
	strategy core.Strategy
	obs      core.Observer
	tracker  *core.FidelityTracker
	res      *Result

	ctx    context.Context    // nil when neither Context nor Deadline is set
	cancel context.CancelFunc // non-nil iff a deadline context was derived

	measureRNG *rand.Rand // lazily created on first measurement

	state     dd.VEdge
	next      int // index of the next gate to apply
	highWater int

	// Backend seam (see backend.go). den is non-nil on the density backend;
	// channel/chanDDs/noiseRNG are populated when Options.Noise is active:
	// the lifted per-qubit Kraus operator DDs (cleanup mark roots) and the
	// trajectory branch RNG (statevector backend only).
	den      *density.State
	channel  density.Channel
	chanDDs  [][]dd.MEdge
	noiseRNG *rand.Rand

	// Dynamic reordering (populated when the strategy implements
	// core.Reorderer with Sift enabled; see maybeSift).
	sift          bool
	siftThreshold int
	siftCfg       dd.SiftConfig
	siftMaxPasses int

	start                   time.Time
	startLookups, startHits int64

	err      error // sticky failure; nil while healthy
	finished bool  // Finish completed; res is final
}

// NewSession starts a resumable simulation of the circuit on this simulator's
// manager. The circuit is validated and the initial state prepared eagerly,
// so errors surface here rather than on the first Step.
func (s *Simulator) NewSession(c *circuit.Circuit, opts Options) (*Session, error) {
	ses := &Session{}
	if err := ses.init(s, c, opts); err != nil {
		return nil, err
	}
	return ses, nil
}

// NewSession starts a resumable simulation on a fresh simulator (one new DD
// manager owned by the session).
func NewSession(c *circuit.Circuit, opts Options) (*Session, error) {
	return New().NewSession(c, opts)
}

// init prepares the session. It is split from NewSession so Run can hold the
// Session on the stack and stay allocation-neutral with the pre-Session loop.
func (ses *Session) init(s *Simulator, c *circuit.Circuit, opts Options) error {
	strategy := opts.Strategy
	if strategy == nil {
		strategy = core.Exact{}
	}
	if err := strategy.Init(c.Len(), c.Blocks()); err != nil {
		return err
	}
	obs := opts.Observer
	if obs == nil {
		obs = core.NopObserver{}
	}
	highWater := opts.CleanupHighWater
	if highWater <= 0 {
		highWater = 1 << 17
	}

	// Deadline and context cancellation share one mechanism: when a
	// deadline is set, derive a context carrying ErrDeadlineExceeded as its
	// cancellation cause, so the single between-gate check in step()
	// handles both abort paths.
	ctx := opts.Context
	var cancel context.CancelFunc
	if !opts.Deadline.IsZero() {
		parent := ctx
		if parent == nil {
			parent = context.Background()
		}
		ctx, cancel = context.WithDeadlineCause(parent, opts.Deadline, ErrDeadlineExceeded)
	}

	m := s.M

	// Variable ordering. A strategy implementing core.Reorderer chooses the
	// qubit→level order the whole run executes under; it must be installed
	// before the initial state is built. Reordering is incompatible with
	// cross-run KeepAlive states (they were built under the previous order
	// and would silently change meaning) and with permutation gates (their
	// payloads address DD levels directly). Runs without a reordering
	// strategy restore the identity order so results stay reproducible when
	// managers are reused across jobs.
	// fail releases the derived deadline timer on an init error exit.
	fail := func(err error) error {
		if cancel != nil {
			cancel()
		}
		return err
	}
	var policy core.ReorderPolicy
	reorderer, hasReorder := strategy.(core.Reorderer)
	if hasReorder {
		policy = reorderer.ReorderPolicy()
	}
	var initialOrder []int
	if hasReorder {
		if len(opts.KeepAlive) > 0 {
			return fail(fmt.Errorf("sim: reordering cannot be combined with KeepAlive states from earlier runs"))
		}
		if (policy.Sift || (policy.Static != "" && policy.Static != order.Identity)) && order.HasPermGate(c) {
			return fail(fmt.Errorf("sim: circuit %q carries permutation gates, which require the identity order", c.Name))
		}
		if policy.Static != "" {
			perm, err := order.Compute(policy.Static, c)
			if err != nil {
				return fail(err)
			}
			if err := m.SetOrder(perm); err != nil {
				return fail(err)
			}
		}
		initialOrder = m.Order(c.NumQubits)
	} else if !m.OrderIsIdentity() && len(opts.KeepAlive) == 0 {
		m.ResetOrder()
	}

	startLookups, startHits := m.CN.Stats()
	backend := opts.Backend
	if backend == "" {
		backend = BackendStatevector
	}
	res := &Result{
		Manager:      m,
		NumQubits:    c.NumQubits,
		GateCount:    c.Len(),
		StrategyName: strategy.Name(),
		InitialOrder: initialOrder,
		Backend:      backend,
		Noise:        opts.Noise,
	}
	if opts.CollectSizeHistory {
		res.SizeHistory = make([]int, 0, c.Len())
	}

	// Invalidate the simulator's retained gate cache: stale operation DDs
	// from an earlier run can never leak in, but the signature slots (and
	// the slice capacity) survive across jobs on a reused manager.
	s.clearGateCache()

	*ses = Session{
		sim:          s,
		c:            c,
		opts:         opts,
		strategy:     strategy,
		obs:          obs,
		tracker:      core.NewFidelityTracker(),
		res:          res,
		ctx:          ctx,
		cancel:       cancel,
		highWater:    highWater,
		start:        time.Now(),
		startLookups: startLookups,
		startHits:    startHits,
	}
	// Backend-specific state: the density matrix (or the vector initial
	// state) and any lifted noise-channel DDs. Built after the variable
	// order is settled above, since lifted operators address DD levels
	// through the current order.
	if err := ses.initBackend(m, c, opts); err != nil {
		return fail(err)
	}
	if ses.den == nil {
		ses.state = m.BasisState(c.NumQubits, opts.InitialState)
	}
	res.MaxDDSize = ses.curSize()
	if hasReorder && policy.Sift {
		ses.sift = true
		ses.siftThreshold = policy.SiftThreshold
		if ses.siftThreshold <= 0 {
			ses.siftThreshold = 4096
		}
		ses.siftMaxPasses = policy.SiftMaxPasses
		if ses.siftMaxPasses <= 0 {
			ses.siftMaxPasses = 2
		}
		ses.siftCfg = dd.SiftConfig{MaxVars: policy.SiftMaxVars}
	}
	return nil
}

// Pos returns the index of the next gate to apply (== the number of gates
// applied so far; == GateCount once the circuit is exhausted).
func (ses *Session) Pos() int { return ses.next }

// Remaining returns the number of gates not yet applied.
func (ses *Session) Remaining() int { return ses.c.Len() - ses.next }

// State returns the current state DD (statevector backend; the zero edge on
// the density backend). The edge is live only while the session's manager
// performs no further gates or cleanups; copy amplitudes out
// (Manager.ToVector) before stepping on if you need them to persist.
func (ses *Session) State() dd.VEdge { return ses.state }

// Density returns the current density-matrix state (density backend only;
// nil otherwise). The same liveness caveat as State applies.
func (ses *Session) Density() *density.State { return ses.den }

// Err returns the sticky error that ended the session early, if any.
func (ses *Session) Err() error { return ses.err }

// Step applies the next gate (including any approximation round and node-pool
// cleanup it triggers). It returns ErrSessionDone when no gates remain and
// the sticky error after a failure or Abort.
func (ses *Session) Step() error {
	if ses.err != nil {
		return ses.err
	}
	if ses.next >= ses.c.Len() {
		return ErrSessionDone
	}
	if err := ses.step(); err != nil {
		return ses.fail(err)
	}
	return nil
}

// StepN applies up to k gates, stopping early at the end of the circuit,
// and returns the number of gates applied. Reaching the end while applying
// gates is success; a call with no gates left (and k > 0) returns
// (0, ErrSessionDone) so driver loops terminate like Step loops do.
func (ses *Session) StepN(k int) (int, error) {
	if ses.err != nil {
		return 0, ses.err
	}
	if k > 0 && ses.next >= ses.c.Len() {
		return 0, ErrSessionDone
	}
	applied := 0
	for applied < k && ses.next < ses.c.Len() {
		if err := ses.step(); err != nil {
			return applied, ses.fail(err)
		}
		applied++
	}
	return applied, nil
}

// Seek advances the session until the next gate to apply is gateIndex.
// Sessions only move forward (a DD state cannot be un-applied); seeking
// backward or past the circuit end is an error that does not damage the
// session.
func (ses *Session) Seek(gateIndex int) error {
	if ses.err != nil {
		return ses.err
	}
	if gateIndex < ses.next {
		return fmt.Errorf("sim: cannot seek backward to gate %d (session is at %d); start a new session", gateIndex, ses.next)
	}
	if gateIndex > ses.c.Len() {
		return fmt.Errorf("sim: seek target %d beyond circuit length %d", gateIndex, ses.c.Len())
	}
	for ses.next < gateIndex {
		if err := ses.step(); err != nil {
			return ses.fail(err)
		}
	}
	return nil
}

// Finish applies every remaining gate and finalizes the Result. Calling
// Finish again returns the same Result. After a failure (or Abort) it
// returns the sticky error.
func (ses *Session) Finish() (*Result, error) {
	if ses.err != nil {
		return nil, ses.err
	}
	if ses.finished {
		return ses.res, nil
	}
	for ses.next < ses.c.Len() {
		if err := ses.step(); err != nil {
			return nil, ses.fail(err)
		}
	}
	ses.finished = true
	ses.release()
	res := ses.res
	m := ses.sim.M
	if ses.den != nil {
		// Absorb accumulated float drift so downstream probability reads
		// sum to 1, then snapshot the mixedness of the final state.
		ses.den.NormalizeTrace()
		res.Density = ses.den
		res.Purity = ses.den.Purity()
		res.FinalDDSize = m.CountM(ses.den.Root)
	} else {
		res.Final = ses.state
		res.FinalDDSize = m.CountV(ses.state)
	}
	if res.InitialOrder != nil {
		res.FinalOrder = m.Order(res.NumQubits)
	}
	res.DDStats = m.Stats()
	endLookups, endHits := m.CN.Stats()
	res.WeightTable = WeightTableStats{
		Peak:    m.CN.Peak(),
		Lookups: endLookups - ses.startLookups,
		Hits:    endHits - ses.startHits,
	}
	res.Rounds = ses.tracker.Rounds()
	res.EstimatedFidelity = ses.tracker.Achieved()
	res.FidelityBound = ses.tracker.Bound()
	res.Runtime = time.Since(ses.start)
	ses.obs.OnFinish(core.FinishEvent{
		GatesApplied:      ses.next,
		MaxDDSize:         res.MaxDDSize,
		FinalDDSize:       res.FinalDDSize,
		Rounds:            len(res.Rounds),
		EstimatedFidelity: res.EstimatedFidelity,
	})
	return res, nil
}

// Abort ends the session early and returns its pooled nodes: every node not
// reachable from Options.KeepAlive goes back to the manager's free lists
// (states from this session, including the one State returned, become
// invalid). Subsequent calls on the session return ErrSessionAborted.
// Aborting a finished or already-failed session is a no-op.
func (ses *Session) Abort() {
	if ses.err != nil || ses.finished {
		return
	}
	ses.err = ErrSessionAborted
	ses.release()
	finalSize := ses.curSize() // before the sweep frees these nodes
	ses.sim.M.Cleanup(ses.opts.KeepAlive, nil)
	ses.obs.OnFinish(core.FinishEvent{
		GatesApplied:      ses.next,
		MaxDDSize:         ses.res.MaxDDSize,
		FinalDDSize:       finalSize,
		Rounds:            ses.tracker.Count(),
		EstimatedFidelity: ses.tracker.Achieved(),
		Aborted:           true,
	})
}

// fail records a mid-run error, releases the deadline timer, and reports the
// end of the session to the observer.
func (ses *Session) fail(err error) error {
	ses.err = err
	ses.release()
	ses.obs.OnFinish(core.FinishEvent{
		GatesApplied:      ses.next,
		MaxDDSize:         ses.res.MaxDDSize,
		FinalDDSize:       ses.curSize(),
		Rounds:            ses.tracker.Count(),
		EstimatedFidelity: ses.tracker.Achieved(),
		Err:               err,
	})
	return err
}

// release stops the derived deadline timer, if any.
func (ses *Session) release() {
	if ses.cancel != nil {
		ses.cancel()
		ses.cancel = nil
	}
}

// step applies gate ses.next: the single between-gate interruption check,
// the gate itself, strategy consultation, and occupancy-triggered cleanup.
func (ses *Session) step() error {
	if ses.den != nil {
		return ses.stepDensity()
	}
	i := ses.next
	c, m := ses.c, ses.sim.M
	if ses.ctx != nil {
		if err := context.Cause(ses.ctx); err != nil {
			if errors.Is(err, ErrDeadlineExceeded) {
				return fmt.Errorf("after gate %d of %d: %w", i, c.Len(), err)
			}
			return fmt.Errorf("sim: canceled after gate %d of %d: %w", i, c.Len(), err)
		}
	}
	g := c.Gates()[i]
	switch g.Kind {
	case circuit.KindMeasure, circuit.KindReset:
		if ses.measureRNG == nil {
			ses.measureRNG = rand.New(rand.NewSource(ses.opts.MeasurementSeed))
		}
		bit, collapsed := m.MeasureQubit(ses.state, g.Target, c.NumQubits, ses.measureRNG)
		ses.res.Measurements = append(ses.res.Measurements, Measurement{
			GateIndex: i, Qubit: g.Target, Outcome: bit,
		})
		ses.state = collapsed
		if g.Kind == circuit.KindReset && bit == 1 {
			x := m.MakeGateDD(c.NumQubits, [4]complex128{0, 1, 1, 0}, g.Target)
			ses.state = m.MulVec(x, ses.state)
		}
		ses.state = m.NormalizeRootWeight(ses.state)
	default:
		op, err := ses.sim.gateDD(g, c.NumQubits)
		if err != nil {
			return fmt.Errorf("sim: gate %d (%s): %w", i, g.String(), err)
		}
		ses.state = m.MulVec(op, ses.state)
		ses.state = m.NormalizeRootWeight(ses.state)
	}
	if m.IsVZero(ses.state) {
		return fmt.Errorf("sim: state vanished after gate %d (%s)", i, g.String())
	}
	if ses.chanDDs != nil {
		if err := ses.injectNoise(i, g); err != nil {
			return err
		}
	}
	size := m.CountV(ses.state)
	if size > ses.res.MaxDDSize {
		ses.res.MaxDDSize = size
	}
	if ses.opts.CollectSizeHistory {
		ses.res.SizeHistory = append(ses.res.SizeHistory, size)
	}
	ses.obs.OnGate(core.GateEvent{Index: i, Size: size})
	newState, round, err := ses.strategy.AfterGate(m, i, size, ses.state)
	if err != nil {
		return fmt.Errorf("sim: approximation after gate %d: %w", i, err)
	}
	if round != nil {
		ses.tracker.Record(*round)
		ses.state = newState
		ses.obs.OnApproximation(*round)
	}
	ses.maybeSift(i, size, round != nil)
	if live := m.Pool().Live; live > ses.highWater {
		roots := append([]dd.VEdge{ses.state}, ses.opts.KeepAlive...)
		mRoots := ses.sim.mRoots[:0]
		for _, e := range ses.sim.gateDDs {
			if e.N != nil {
				mRoots = append(mRoots, e)
			}
		}
		for _, ops := range ses.chanDDs {
			mRoots = append(mRoots, ops...)
		}
		ses.sim.mRoots = mRoots
		m.Cleanup(roots, mRoots)
		ses.res.Cleanups++
		after := m.Pool().Live
		// If the sweep freed little, most of the pool is genuinely
		// live: raise the trigger so we don't sweep every gate.
		if 4*after > ses.highWater {
			ses.highWater = 4 * after
		}
		ses.obs.OnCleanup(core.CleanupEvent{GateIndex: i, Live: after, Freed: live - after})
	}
	ses.next = i + 1
	return nil
}

// maybeSift runs one dynamic variable-reordering pass at the between-gate
// safe point when sifting is enabled and the state has outgrown the trigger
// threshold. The pass is an exact transformation (amplitudes are unchanged,
// so no fidelity round is recorded); the session drops its gate cache — the
// cached operation DDs were built under the old order — and the pass's
// closing Cleanup returns both the stale gates and the exploration
// transients to the node pools.
func (ses *Session) maybeSift(gateIdx, size int, approximated bool) {
	if !ses.sift || ses.res.SiftPasses >= ses.siftMaxPasses {
		return
	}
	if approximated {
		// An approximation round replaced the state after `size` was
		// counted; only then is a recount needed.
		size = ses.sim.M.CountV(ses.state)
	}
	if size <= ses.siftThreshold {
		return
	}
	m := ses.sim.M
	roots, rep := m.Sift(ses.c.NumQubits, []dd.VEdge{ses.state}, ses.siftCfg)
	ses.state = roots[0]
	ses.sim.clearGateCache()
	// Lifted channel DDs were built under the old order; rebuild them.
	for q := range ses.chanDDs {
		ses.chanDDs[q] = ses.channel.Lift(m, ses.c.NumQubits, q)
	}
	ses.res.SiftPasses++
	ses.res.SiftSwaps += rep.Swaps
	// Raise the trigger past the size sifting reached: if the pass could
	// not compress below the threshold, re-running it after every gate
	// would only burn time.
	if t := 2 * rep.SizeAfter; t > ses.siftThreshold {
		ses.siftThreshold = t
	}
	ses.obs.OnReorder(core.ReorderEvent{
		GateIndex:  gateIdx,
		SizeBefore: rep.SizeBefore,
		SizeAfter:  rep.SizeAfter,
		Swaps:      rep.Swaps,
		Order:      m.Order(ses.c.NumQubits),
	})
}
