package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
)

// pairsCircuit builds the entangled-pairs workload: H on the low half, then
// CX(i, i+n/2) — the structured state whose identity-order DD peaks
// exponentially, the frontier workload for delete-vs-replace comparisons.
func pairsCircuit(n int) *circuit.Circuit {
	c := circuit.New(n, "pairs")
	for i := 0; i < n/2; i++ {
		c.Apply("h", nil, i)
		c.Apply("x", nil, i+n/2, dd.PosControl(i))
	}
	return c
}

// sizeDriven is the delete-based analogue of core.ReplaceDriven: the same
// fixed node budget enforced after every gate, but by node deletion. It
// exists so the differential test compares the two passes at a genuinely
// equal budget, round for round.
type sizeDriven struct{ budget int }

func (s *sizeDriven) Name() string          { return "size-delete" }
func (s *sizeDriven) Init(int, []int) error { return nil }
func (s *sizeDriven) AfterGate(m *dd.Manager, gateIdx, size int, state dd.VEdge) (dd.VEdge, *core.Round, error) {
	if size <= s.budget {
		return state, nil, nil
	}
	ne, rep, err := core.ApproximateToSize(m, state, s.budget)
	if err != nil || rep.NoOp() {
		return state, nil, err
	}
	return ne, &core.Round{GateIndex: gateIdx, Report: rep}, nil
}

// vecFidelity is |⟨a|b⟩|² on expanded vectors, usable across managers.
func vecFidelity(a, b []complex128) float64 {
	var ip complex128
	for i := range a {
		ip += cmplx.Conj(a[i]) * b[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// TestReplaceBeatsDeleteOnPairs is the differential claim of the replace
// strategy (arXiv 2507.04335) on this repo's frontier workload: simulated
// end to end under the same per-gate node budget, node replacement must end
// with fidelity at least as high as node deletion, at every budget on the
// sweep.
func TestReplaceBeatsDeleteOnPairs(t *testing.T) {
	const n = 12
	c := pairsCircuit(n)

	exact, err := New().Run(c, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	exactVec := exact.Manager.ToVector(exact.Final, n)

	for _, budget := range []int{12, 16, 24, 32, 48} {
		del, err := New().Run(c, NewOptions(WithStrategy(&sizeDriven{budget: budget})))
		if err != nil {
			t.Fatalf("budget %d delete: %v", budget, err)
		}
		rep, err := New().Run(c, NewOptions(WithStrategy(&core.ReplaceDriven{NodeBudget: budget})))
		if err != nil {
			t.Fatalf("budget %d replace: %v", budget, err)
		}
		fDel := vecFidelity(exactVec, del.Manager.ToVector(del.Final, n))
		fRep := vecFidelity(exactVec, rep.Manager.ToVector(rep.Final, n))
		sDel := dd.CountVNodes(del.Final)
		sRep := dd.CountVNodes(rep.Final)
		t.Logf("budget %d: delete fid %.6f (%d nodes), replace fid %.6f (%d nodes)",
			budget, fDel, sDel, fRep, sRep)
		if fRep < fDel-1e-9 {
			t.Errorf("budget %d: replace fidelity %v below delete %v", budget, fRep, fDel)
		}
		if sRep > budget && sRep > sDel {
			// Budgets below the minimal chain size are unreachable for both
			// passes; replace must never end larger than delete.
			t.Errorf("budget %d: replace final size %d above budget and delete size %d", budget, sRep, sDel)
		}
	}
}

// TestReplaceFrontierDominatesOnFinalState sweeps budgets over the exact
// peak state of the pairs workload and checks the one-shot primitives: at
// every equal node budget, the replace pass keeps fidelity ≥ the delete
// pass.
func TestReplaceFrontierDominatesOnFinalState(t *testing.T) {
	const n = 14
	c := pairsCircuit(n)
	exact, err := New().Run(c, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, e := exact.Manager, exact.Final
	before := dd.CountVNodes(e)
	for _, budget := range []int{before / 2, before / 4, before / 8, n + 2} {
		if budget < 1 {
			continue
		}
		nd, repDel, err := core.ApproximateToSize(m, e, budget)
		if err != nil {
			t.Fatal(err)
		}
		nr, repRep, err := core.ApproximateToSizeReplace(m, e, budget, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		fDel, fRep := m.Fidelity(e, nd), m.Fidelity(e, nr)
		t.Logf("budget %d: delete fid %.6f (%d nodes), replace fid %.6f (%d nodes)",
			budget, fDel, repDel.SizeAfter, fRep, repRep.SizeAfter)
		if fRep < fDel-1e-9 {
			t.Errorf("budget %d: replace fidelity %v below delete %v", budget, fRep, fDel)
		}
		// Delete may overshoot far below the budget; replace within the
		// budget is a win. Only over-budget AND over-delete is dominated.
		if repRep.SizeAfter > budget && repRep.SizeAfter > repDel.SizeAfter {
			t.Errorf("budget %d: replace size %d above budget and delete size %d", budget, repRep.SizeAfter, repDel.SizeAfter)
		}
	}
}

// chiSquared compares sampled frequencies to expected probabilities. Bins
// with expected count < 5 are pooled (the standard χ² validity rule);
// returns the statistic and the degrees of freedom.
func chiSquared(hist map[uint64]int, probs []float64, shots int) (float64, int) {
	stat, dof := 0.0, -1
	restExp, restObs := 0.0, 0
	for idx, p := range probs {
		exp := float64(shots) * p
		obs := float64(hist[uint64(idx)])
		if exp < 5 {
			restExp += exp
			restObs += hist[uint64(idx)]
			continue
		}
		d := obs - exp
		stat += d * d / exp
		dof++
	}
	if restExp > 0 {
		d := float64(restObs) - restExp
		stat += d * d / restExp
		dof++
	}
	if dof < 1 {
		dof = 1
	}
	return stat, dof
}

// TestSamplingMatchesAmplitudesDifferential is the trajectory-vs-amplitude
// oracle: for small circuits simulated under the delete and replace
// strategies (and exactly), Sample frequencies over many shots must converge
// to the |amplitude|² distribution of the very state being sampled — a χ²
// test with a ~5σ bound, deterministic under the fixed seed.
func TestSamplingMatchesAmplitudesDifferential(t *testing.T) {
	const shots = 40000
	cases := []struct {
		name     string
		circ     *circuit.Circuit
		strategy func() core.Strategy
	}{
		{"pairs-exact", pairsCircuit(8), func() core.Strategy { return core.Exact{} }},
		{"pairs-delete", pairsCircuit(8), func() core.Strategy { return &sizeDriven{budget: 10} }},
		{"pairs-replace", pairsCircuit(8), func() core.Strategy { return &core.ReplaceDriven{NodeBudget: 10} }},
		{"random-delete", randomCircuit(6, 40, rand.New(rand.NewSource(7))), func() core.Strategy {
			return &sizeDriven{budget: 12}
		}},
		{"random-replace", randomCircuit(6, 40, rand.New(rand.NewSource(7))), func() core.Strategy {
			return &core.ReplaceDriven{NodeBudget: 12}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := New().Run(tc.circ, NewOptions(WithStrategy(tc.strategy())))
			if err != nil {
				t.Fatal(err)
			}
			n := tc.circ.NumQubits
			vec := res.Manager.ToVector(res.Final, n)
			probs := make([]float64, len(vec))
			for i, a := range vec {
				probs[i] = real(a)*real(a) + imag(a)*imag(a)
			}
			rng := rand.New(rand.NewSource(42))
			hist := res.Manager.SampleMany(res.Final, n, shots, rng)
			for idx, count := range hist {
				if probs[idx] == 0 && count > 0 {
					t.Fatalf("sampled zero-probability state %b %d times", idx, count)
				}
			}
			stat, dof := chiSquared(hist, probs, shots)
			// ~5σ upper bound for χ²(dof): mean dof, variance 2·dof.
			bound := float64(dof) + 5*math.Sqrt(2*float64(dof)) + 10
			t.Logf("χ² = %.2f, dof = %d, bound = %.2f", stat, dof, bound)
			if stat > bound {
				t.Errorf("sampling diverges from amplitudes: χ² = %v > %v (dof %d)", stat, bound, dof)
			}
		})
	}
}
