package sim

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dd"
)

// Option mutates an Options value. The functional-option constructors below
// are the preferred way to configure a run or session at the API facade;
// Options stays the underlying representation, so struct-literal callers
// (and the batch engine, which fills fields programmatically) keep working.
type Option func(*Options)

// NewOptions folds functional options into an Options value.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithStrategy selects the approximation strategy (nil means exact). The
// instance must be fresh per run — strategies are stateful.
func WithStrategy(s core.Strategy) Option {
	return func(o *Options) { o.Strategy = s }
}

// WithObserver wires a lifecycle-event observer into the run.
func WithObserver(obs core.Observer) Option {
	return func(o *Options) { o.Observer = obs }
}

// WithDeadline aborts the run with ErrDeadlineExceeded once the deadline
// passes (checked between gates).
func WithDeadline(t time.Time) Option {
	return func(o *Options) { o.Deadline = t }
}

// WithTimeout is WithDeadline relative to now.
func WithTimeout(d time.Duration) Option {
	return func(o *Options) { o.Deadline = time.Now().Add(d) }
}

// WithContext cancels the run between gates once ctx is done.
func WithContext(ctx context.Context) Option {
	return func(o *Options) { o.Context = ctx }
}

// WithSeed seeds mid-circuit measurement and reset outcomes.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.MeasurementSeed = seed }
}

// WithInitialState starts the run from the basis state |b⟩.
func WithInitialState(b uint64) Option {
	return func(o *Options) { o.InitialState = b }
}

// WithSizeHistory records the DD size after every gate in
// Result.SizeHistory.
func WithSizeHistory() Option {
	return func(o *Options) { o.CollectSizeHistory = true }
}

// WithCleanupHighWater overrides the node-pool occupancy that triggers a
// mark-sweep cleanup.
func WithCleanupHighWater(n int) Option {
	return func(o *Options) { o.CleanupHighWater = n }
}

// WithKeepAlive protects state edges from earlier runs on the same manager
// across this run's cleanup sweeps.
func WithKeepAlive(edges ...dd.VEdge) Option {
	return func(o *Options) { o.KeepAlive = append(o.KeepAlive, edges...) }
}

// WithBackend selects the state representation (statevector or density).
func WithBackend(b Backend) Option {
	return func(o *Options) { o.Backend = b }
}

// WithNoise applies the named noise channel to every qubit each gate
// touches — exactly on the density backend, as one Monte-Carlo trajectory
// on the statevector backend.
func WithNoise(n NoiseModel) Option {
	return func(o *Options) { o.Noise = &n }
}
