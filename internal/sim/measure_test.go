package sim

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestMidCircuitMeasurementGHZ(t *testing.T) {
	// Measure one qubit of a GHZ state mid-circuit: the remaining qubits
	// must collapse to agree with the outcome.
	n := 5
	sawOutcome := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		c := circuit.New(n, "ghz-measure")
		c.H(n - 1)
		for q := n - 1; q > 0; q-- {
			c.CX(q, q-1)
		}
		c.Measure(0)
		s := New()
		res, err := s.Run(c, Options{MeasurementSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Measurements) != 1 {
			t.Fatalf("%d measurements recorded", len(res.Measurements))
		}
		out := res.Measurements[0].Outcome
		sawOutcome[out] = true
		want := uint64(0)
		if out == 1 {
			want = 1<<uint(n) - 1
		}
		if p := s.M.Probability(res.Final, want, n); math.Abs(p-1) > 1e-9 {
			t.Fatalf("seed %d: GHZ collapse broken: P(|%0*b⟩) = %v", seed, n, want, p)
		}
	}
	if !sawOutcome[0] || !sawOutcome[1] {
		t.Error("20 seeds produced only one measurement outcome")
	}
}

func TestMeasurementDeterministicPerSeed(t *testing.T) {
	c := circuit.New(3, "m")
	c.H(0)
	c.H(1)
	c.Measure(0)
	c.Measure(1)
	run := func() []Measurement {
		s := New()
		res, err := s.Run(c, Options{MeasurementSeed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res.Measurements
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("measurement %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestResetGate(t *testing.T) {
	// Prepare |+⟩, reset, qubit must be |0⟩ regardless of the outcome.
	for seed := int64(0); seed < 10; seed++ {
		c := circuit.New(2, "reset")
		c.H(0)
		c.Reset(0)
		s := New()
		res, err := s.Run(c, Options{MeasurementSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if p := s.M.ProbabilityOne(res.Final, 0, 2); p > 1e-9 {
			t.Fatalf("seed %d: qubit not reset: P(1) = %v", seed, p)
		}
	}
}

func TestTeleportationCircuit(t *testing.T) {
	// One-qubit teleportation with mid-circuit measurement and classically
	// controlled corrections unrolled into measurement + conditional gates:
	// since the IR has no classical control, verify the statistics instead:
	// teleporting |ψ⟩ = ry(0.8)|0⟩ from qubit 0 to qubit 2 and checking the
	// marginal of qubit 2 over many seeds. With corrections omitted, the
	// outcome-conditioned states differ, but measuring in the computational
	// basis after projecting corrections is equivalent to applying X^m1 Z^m0
	// — here we apply the corrections via the recorded outcomes.
	theta := 0.8
	wantP1 := math.Pow(math.Sin(theta/2), 2)
	var sum float64
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		c := circuit.New(3, "teleport")
		c.RY(theta, 0) // the state to teleport
		// Bell pair between 1 and 2.
		c.H(1)
		c.CX(1, 2)
		// Bell measurement on 0,1.
		c.CX(0, 1)
		c.H(0)
		c.Measure(0)
		c.Measure(1)
		s := New()
		res, err := s.Run(c, Options{MeasurementSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m0 := res.Measurements[0].Outcome
		m1 := res.Measurements[1].Outcome
		state := res.Final
		if m1 == 1 {
			x := s.M.MakeGateDD(3, [4]complex128{0, 1, 1, 0}, 2)
			state = s.M.MulVec(x, state)
		}
		if m0 == 1 {
			z := s.M.MakeGateDD(3, [4]complex128{1, 0, 0, -1}, 2)
			state = s.M.MulVec(z, state)
		}
		sum += s.M.ProbabilityOne(state, 2, 3)
	}
	got := sum / trials
	// Every individual teleportation is exact, so the mean is exact too.
	if math.Abs(got-wantP1) > 1e-9 {
		t.Errorf("teleported marginal P(1) = %v, want %v", got, wantP1)
	}
}

func TestMeasureInverseRejected(t *testing.T) {
	c := circuit.New(2, "m")
	c.H(0)
	c.Measure(0)
	if _, err := c.Inverse(); err == nil {
		t.Error("circuit with measurement inverted")
	}
}
